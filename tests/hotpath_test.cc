/**
 * @file
 * Property tests for the hot-path data structures rewritten in the
 * engine performance program: the structure-of-arrays LruTable is
 * pinned against the frozen array-of-structs reference
 * (tests/reference_lru_table.hh) under seeded random workloads, the
 * RingQueue against std::deque, and every refactored structure's
 * state codec round-trips. Behavioural equivalence to the historical
 * layouts is the contract that keeps sweep output bitwise identical.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <random>
#include <vector>

#include "common/arena.hh"
#include "common/circular_buffer.hh"
#include "common/lru_table.hh"
#include "common/state_codec.hh"
#include "core/stream.hh"
#include "reference_lru_table.hh"

using namespace stems;

namespace {

/**
 * Drive the SoA table and the reference with an identical op mix
 * (findOrInsert / find / peek / erase / occupancy) and require the
 * same observable result at every step, plus byte-identical
 * serialized state at the end.
 */
void
lruEquivalenceRun(std::uint64_t seed, std::size_t entries,
                  std::size_t ways, std::uint64_t key_span,
                  std::size_t ops)
{
    std::mt19937_64 rng(seed);
    LruTable<std::uint64_t> table(entries, ways);
    ReferenceLruTable<std::uint64_t> oracle(entries, ways);

    std::vector<std::pair<std::uint64_t, std::uint64_t>> evTable;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> evOracle;
    for (std::size_t i = 0; i < ops; ++i) {
        std::uint64_t key = rng() % key_span;
        switch (rng() % 8) {
        case 0: { // find
            std::uint64_t *a = table.find(key);
            std::uint64_t *b = oracle.find(key);
            ASSERT_EQ(a != nullptr, b != nullptr) << "op " << i;
            if (a) {
                ASSERT_EQ(*a, *b) << "op " << i;
            }
            break;
        }
        case 1: { // peek
            const std::uint64_t *a = table.peek(key);
            const std::uint64_t *b = oracle.peek(key);
            ASSERT_EQ(a != nullptr, b != nullptr) << "op " << i;
            if (a) {
                ASSERT_EQ(*a, *b) << "op " << i;
            }
            break;
        }
        case 2: // erase
            ASSERT_EQ(table.erase(key), oracle.erase(key))
                << "op " << i;
            break;
        case 3: // occupancy
            ASSERT_EQ(table.occupancy(), oracle.occupancy())
                << "op " << i;
            break;
        default: { // findOrInsert with eviction observers
            evTable.clear();
            evOracle.clear();
            std::uint64_t &a = table.findOrInsert(
                key, [&](std::uint64_t k, std::uint64_t &v) {
                    evTable.emplace_back(k, v);
                });
            std::uint64_t &b = oracle.findOrInsert(
                key, [&](std::uint64_t k, std::uint64_t &v) {
                    evOracle.emplace_back(k, v);
                });
            ASSERT_EQ(evTable, evOracle) << "op " << i;
            ASSERT_EQ(a, b) << "op " << i;
            a += key + 1;
            b += key + 1;
            break;
        }
        }
    }

    // Same victims, same slots: the serialized state (which encodes
    // slot positions, keys, stamps and values) must match byte for
    // byte.
    StateWriter wa, wb;
    auto save = [](StateWriter &w, const std::uint64_t &v) {
        w.u64(v);
    };
    table.saveState(wa, save);
    oracle.saveState(wb, save);
    ASSERT_EQ(wa.bytes(), wb.bytes());
}

TEST(HotpathLruTable, MatchesReferenceHitHeavy)
{
    // Key span well inside capacity: mostly hits, no evictions.
    lruEquivalenceRun(1, 256, 4, 100, 20000);
}

TEST(HotpathLruTable, MatchesReferenceEvictHeavy)
{
    // Key span far beyond capacity: the victim scan dominates.
    lruEquivalenceRun(2, 64, 4, 5000, 20000);
}

TEST(HotpathLruTable, MatchesReferenceFullyAssociative)
{
    lruEquivalenceRun(3, 16, 16, 300, 20000);
}

TEST(HotpathLruTable, MatchesReferenceDirectMapped)
{
    lruEquivalenceRun(4, 128, 1, 1000, 20000);
}

TEST(HotpathLruTable, MatchesReferenceManySeeds)
{
    for (std::uint64_t seed = 10; seed < 20; ++seed)
        lruEquivalenceRun(seed, 96, 3, 700, 5000);
}

TEST(HotpathLruTable, StateRoundTripRestoresBehaviour)
{
    LruTable<std::uint64_t> a(64, 4);
    std::mt19937_64 rng(99);
    for (int i = 0; i < 5000; ++i)
        a.findOrInsert(rng() % 400) += 1;
    a.erase(rng() % 400);

    StateWriter w;
    auto save = [](StateWriter &wr, const std::uint64_t &v) {
        wr.u64(v);
    };
    a.saveState(w, save);

    LruTable<std::uint64_t> b(64, 4);
    StateReader r(w.bytes().data(), w.bytes().size());
    b.loadState(r, [](StateReader &rd, std::uint64_t &v) {
        v = rd.u64();
    });
    ASSERT_TRUE(r.atEnd());
    ASSERT_EQ(a.occupancy(), b.occupancy());

    // Identical continuations: drive both further and compare the
    // serialized end states (victim choices depend on the restored
    // stamps, so divergence would show up here).
    for (int i = 0; i < 5000; ++i) {
        std::uint64_t key = rng() % 400;
        a.findOrInsert(key) += 2;
        b.findOrInsert(key) += 2;
    }
    StateWriter wa, wb;
    a.saveState(wa, save);
    b.saveState(wb, save);
    ASSERT_EQ(wa.bytes(), wb.bytes());
}

TEST(HotpathLruTable, LoadRejectsGeometryMismatch)
{
    LruTable<std::uint64_t> a(64, 4);
    StateWriter w;
    a.saveState(w,
                [](StateWriter &wr, const std::uint64_t &v) {
                    wr.u64(v);
                });
    LruTable<std::uint64_t> b(64, 8);
    StateReader r(w.bytes().data(), w.bytes().size());
    b.loadState(r, [](StateReader &rd, std::uint64_t &v) {
        v = rd.u64();
    });
    ASSERT_FALSE(r.ok());
}

TEST(HotpathLruTable, ForEachVisitsExactlyValidEntries)
{
    LruTable<std::uint64_t> t(32, 4);
    ReferenceLruTable<std::uint64_t> o(32, 4);
    std::mt19937_64 rng(7);
    for (int i = 0; i < 2000; ++i) {
        std::uint64_t key = rng() % 100;
        if (rng() % 4 == 0) {
            t.erase(key);
            o.erase(key);
        } else {
            t.findOrInsert(key) = key * 3;
            o.findOrInsert(key) = key * 3;
        }
    }
    std::vector<std::pair<std::uint64_t, std::uint64_t>> got, want;
    t.forEach([&](std::uint64_t k, std::uint64_t &v) {
        got.emplace_back(k, v);
    });
    o.forEach([&](std::uint64_t k, std::uint64_t &v) {
        want.emplace_back(k, v);
    });
    ASSERT_EQ(got, want);
}

// ---- RingQueue vs std::deque ----------------------------------

TEST(HotpathRingQueue, MatchesDequeUnderRandomOps)
{
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
        std::mt19937_64 rng(seed);
        RingQueue<std::uint64_t> ring;
        std::deque<std::uint64_t> oracle;
        for (int i = 0; i < 30000; ++i) {
            switch (rng() % 5) {
            case 0:
            case 1:
            case 2: { // push (biased: queues grow in bursts)
                std::uint64_t v = rng();
                ring.push_back(v);
                oracle.push_back(v);
                break;
            }
            case 3:
                if (!oracle.empty()) {
                    ASSERT_EQ(ring.front(), oracle.front());
                    ring.pop_front();
                    oracle.pop_front();
                }
                break;
            case 4: { // dropFront of a random prefix
                std::size_t k = oracle.empty()
                                    ? 0
                                    : rng() % oracle.size();
                ring.dropFront(k);
                oracle.erase(oracle.begin(), oracle.begin() + k);
                break;
            }
            }
            ASSERT_EQ(ring.size(), oracle.size());
            ASSERT_EQ(ring.empty(), oracle.empty());
            if (!oracle.empty()) {
                std::size_t probe = rng() % oracle.size();
                ASSERT_EQ(ring[probe], oracle[probe]);
            }
        }
    }
}

TEST(HotpathRingQueue, ClearRetainsCapacity)
{
    RingQueue<std::uint64_t> ring;
    for (int i = 0; i < 1000; ++i)
        ring.push_back(i);
    std::size_t cap = ring.capacity();
    ASSERT_GE(cap, 1000u);
    ring.clear();
    ASSERT_TRUE(ring.empty());
    ASSERT_EQ(ring.capacity(), cap);
    for (int i = 0; i < 1000; ++i)
        ring.push_back(i * 2);
    ASSERT_EQ(ring.capacity(), cap);
    ASSERT_EQ(ring[999], 1998u);
}

TEST(HotpathRingQueue, AssignReplacesContents)
{
    RingQueue<std::uint64_t> ring;
    ring.push_back(1);
    ring.push_back(2);
    std::vector<std::uint64_t> src{7, 8, 9};
    ring.assign(src.begin(), src.end());
    ASSERT_EQ(ring.size(), 3u);
    ASSERT_EQ(ring[0], 7u);
    ASSERT_EQ(ring[2], 9u);
}

TEST(HotpathRingQueue, WrapAroundGrowthRelinearizes)
{
    // Force head_ far from zero, then grow: the re-linearization
    // must preserve order across the old wrap point.
    RingQueue<std::uint64_t> ring;
    for (std::uint64_t i = 0; i < 12; ++i)
        ring.push_back(i);
    for (std::uint64_t i = 0; i < 10; ++i)
        ring.pop_front();
    for (std::uint64_t i = 12; i < 40; ++i)
        ring.push_back(i); // wraps, then grows
    ASSERT_EQ(ring.size(), 30u);
    for (std::size_t k = 0; k < ring.size(); ++k)
        ASSERT_EQ(ring[k], k + 10);
}

// ---- InlineVec / ScratchPool ----------------------------------

TEST(HotpathInlineVec, BasicInvariants)
{
    InlineVec<int, 4> v;
    ASSERT_TRUE(v.empty());
    ASSERT_EQ(v.capacity(), 4u);
    v.push_back(1);
    v.emplace_back(2);
    ASSERT_EQ(v.size(), 2u);
    ASSERT_FALSE(v.full());
    ASSERT_EQ(v[0], 1);
    ASSERT_EQ(v.back(), 2);
    int sum = 0;
    for (int x : v)
        sum += x;
    ASSERT_EQ(sum, 3);
    v.push_back(3);
    v.push_back(4);
    ASSERT_TRUE(v.full());
    v.clear();
    ASSERT_TRUE(v.empty());
}

TEST(HotpathScratchPool, RecyclesCapacity)
{
    ScratchPool<std::uint64_t> pool;
    const std::uint64_t *data = nullptr;
    {
        auto h = pool.acquire();
        ASSERT_TRUE(h->empty());
        for (int i = 0; i < 500; ++i)
            h->push_back(i);
        data = h->data();
    }
    ASSERT_EQ(pool.idle(), 1u);
    {
        // The recycled vector keeps its allocation: same backing
        // pointer, cleared contents.
        auto h = pool.acquire();
        ASSERT_TRUE(h->empty());
        ASSERT_GE(h->capacity(), 500u);
        ASSERT_EQ(h->data(), data);
    }
    {
        auto a = pool.acquire();
        auto b = pool.acquire(); // pool empty: fresh vector
        a->push_back(1);
        b->push_back(2);
        ASSERT_NE(a->data(), b->data());
    }
    ASSERT_EQ(pool.idle(), 2u);
}

// ---- StreamQueueSet round-trip with ring-backed pending -------

TEST(HotpathStreamQueues, StateRoundTripPreservesPending)
{
    StreamQueueSet a;
    std::uint64_t refills = 0;
    auto refill = [&](RingQueue<Addr> &pending, std::uint64_t &pos) {
        for (int i = 0; i < 4; ++i)
            pending.push_back(0x1000 * (++pos));
        ++refills;
    };
    std::vector<Addr> initial{0x40, 0x80, 0xC0, 0x100, 0x140};
    int id = a.allocate(initial, refill, false, 1);
    for (int i = 0; i < 3; ++i)
        a.onHit(id);
    std::vector<PrefetchRequest> reqs;
    a.drainRequests(reqs);

    StateWriter w;
    a.saveState(w);

    StreamQueueSet b;
    StateReader r(w.bytes().data(), w.bytes().size());
    b.loadState(r, refill);
    ASSERT_TRUE(r.ok());

    // Identical continuations must emit identical request streams.
    std::vector<PrefetchRequest> ra, rb;
    for (int i = 0; i < 20; ++i) {
        a.onHit(id);
        b.onHit(id);
    }
    a.drainRequests(ra);
    b.drainRequests(rb);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i)
        ASSERT_EQ(ra[i].addr, rb[i].addr);

    StateWriter wa, wb;
    a.saveState(wa);
    b.saveState(wb);
    ASSERT_EQ(wa.bytes(), wb.bytes());
}

} // namespace
