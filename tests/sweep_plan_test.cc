/**
 * @file
 * SweepPlan contract tests: the canonical JSON form round-trips
 * byte-identically (the property the wire digest check and the
 * plan-file workflow rest on), the binary form round-trips without
 * mis-decoding, unknown fields and schema drift are rejected, the
 * plan digest is pinned, and ExperimentDriver::run(plan) reproduces
 * the legacy setter-driven path bitwise.
 */

#include <gtest/gtest.h>

#include "sim/driver.hh"
#include "sim/sweep_plan.hh"
#include "store/keys.hh"
#include "test_util.hh"

namespace stems {
namespace {

/** A plan exercising every field away from its default. */
SweepPlan
fullPlan()
{
    SweepPlan plan;
    plan.workloads = {"oltp-db2", "web-apache"};
    PlanEngine tms{"tms", "", {}};
    PlanEngine deep{"stems", "stems-la24", {}};
    deep.options.lookahead = 24;
    deep.options.bufferEntries = 128 * 1024;
    deep.options.streamQueues = 4;
    deep.options.displacementWindow = 1;
    deep.options.smsUseCounters = false;
    deep.options.scientific = true;
    plan.engines = {tms, deep};
    plan.records = 123'456;
    plan.seed = 7;
    plan.warmupFraction = 0.25;
    plan.warmupRecords = 10'000;
    plan.timing = true;
    plan.jobs = 3;
    plan.batch = false;
    plan.segments = 4;
    plan.checkpointEvery = 5'000;
    plan.speculate = true;
    plan.heartbeatSeconds = 1.5;
    plan.unitGranularity = UnitGranularity::kSegment;
    return plan;
}

TEST(SweepPlanJson, RoundTripsByteIdentically)
{
    const SweepPlan plan = fullPlan();
    const std::string first = sweepPlanJson(plan);
    SweepPlan reparsed;
    std::string error;
    ASSERT_TRUE(parseSweepPlanJson(first, reparsed, &error))
        << error;
    EXPECT_EQ(first, sweepPlanJson(reparsed));
}

TEST(SweepPlanJson, DefaultPlanRoundTripsByteIdentically)
{
    const SweepPlan plan; // all defaults, empty arrays
    const std::string first = sweepPlanJson(plan);
    SweepPlan reparsed;
    ASSERT_TRUE(parseSweepPlanJson(first, reparsed));
    EXPECT_EQ(first, sweepPlanJson(reparsed));
}

TEST(SweepPlanJson, DigestIsPinned)
{
    // Pinned across releases: a digest change means the canonical
    // JSON changed, which invalidates every wire/plan-file digest
    // comparison in flight. Bump deliberately or not at all.
    SweepPlan plan;
    plan.workloads = {"oltp-db2"};
    plan.engines = {PlanEngine{"stems", "", {}}};
    plan.records = 100'000;
    const std::uint64_t digest = sweepPlanDigest(plan);
    EXPECT_EQ(digest, sweepPlanDigest(plan)) << "digest unstable";
    EXPECT_EQ(digest, UINT64_C(0x9f13b28ff370d1a0));
}

TEST(SweepPlanJson, RejectsUnknownFields)
{
    const std::string base = sweepPlanJson(fullPlan());
    SweepPlan out;

    // Top level.
    std::string doctored = base;
    doctored.replace(doctored.find("\"batch\""), 7,
                     "\"zzz\": 1,\n  \"batch\"");
    EXPECT_FALSE(parseSweepPlanJson(doctored, out));

    // Engine level.
    doctored = base;
    doctored.replace(doctored.find("\"engine\""), 8,
                     "\"zzz\": 1,\n      \"engine\"");
    EXPECT_FALSE(parseSweepPlanJson(doctored, out));

    // Options level.
    doctored = base;
    doctored.replace(doctored.find("\"lookahead\""), 11,
                     "\"zzz\": 1,\n        \"lookahead\"");
    EXPECT_FALSE(parseSweepPlanJson(doctored, out));
}

TEST(SweepPlanJson, RejectsSchemaDriftAndTrailingContent)
{
    const SweepPlan plan = fullPlan();
    const std::string base = sweepPlanJson(plan);
    SweepPlan out;

    std::string wrong_schema = base;
    const std::string schema = kSweepPlanSchema;
    wrong_schema.replace(wrong_schema.find(schema), schema.size(),
                         "stems-sweep-plan-v0");
    EXPECT_FALSE(parseSweepPlanJson(wrong_schema, out));

    EXPECT_FALSE(parseSweepPlanJson(base + "x", out));
    EXPECT_FALSE(parseSweepPlanJson("", out));
    EXPECT_FALSE(parseSweepPlanJson("[]", out));
}

TEST(SweepPlanJson, GranularityRoundTripsAndRejectsUnknownNames)
{
    SweepPlan plan;
    for (UnitGranularity g :
         {UnitGranularity::kWorkload, UnitGranularity::kCell,
          UnitGranularity::kSegment}) {
        plan.unitGranularity = g;
        SweepPlan reparsed;
        std::string error;
        ASSERT_TRUE(parseSweepPlanJson(sweepPlanJson(plan),
                                       reparsed, &error))
            << error;
        EXPECT_EQ(reparsed.unitGranularity, g);

        UnitGranularity parsed;
        ASSERT_TRUE(
            parseUnitGranularity(unitGranularityName(g), parsed));
        EXPECT_EQ(parsed, g);
    }

    std::string doctored = sweepPlanJson(plan);
    const std::string name = "\"segment\"";
    doctored.replace(doctored.find(name), name.size(),
                     "\"per-epoch\"");
    SweepPlan out;
    EXPECT_FALSE(parseSweepPlanJson(doctored, out));

    UnitGranularity parsed;
    EXPECT_FALSE(parseUnitGranularity("per-epoch", parsed));
}

TEST(SweepPlanBinary, RoundTripsExactly)
{
    const SweepPlan plan = fullPlan();
    const std::vector<std::uint8_t> bytes = encodeSweepPlan(plan);
    SweepPlan decoded;
    ASSERT_TRUE(decodeSweepPlan(bytes, decoded));
    // The canonical JSON covers every field, so byte-equal JSON is
    // field-equal plans.
    EXPECT_EQ(sweepPlanJson(plan), sweepPlanJson(decoded));
}

TEST(SweepPlanBinary, RejectsTruncationAnywhere)
{
    const std::vector<std::uint8_t> bytes =
        encodeSweepPlan(fullPlan());
    SweepPlan decoded;
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        std::vector<std::uint8_t> truncated(bytes.begin(),
                                            bytes.begin() + cut);
        EXPECT_FALSE(decodeSweepPlan(truncated, decoded))
            << "accepted truncation at " << cut;
    }
    // Trailing garbage is rejected too (atEnd contract).
    std::vector<std::uint8_t> extended = bytes;
    extended.push_back(0);
    EXPECT_FALSE(decodeSweepPlan(extended, decoded));
}

TEST(SweepPlanDriver, RunPlanMatchesLegacySetterPath)
{
    SweepPlan plan;
    plan.workloads = {"oltp-db2"};
    plan.engines = {PlanEngine{"tms", "", {}},
                    PlanEngine{"stems", "", {}}};
    plan.records = 20'000;
    plan.timing = true;
    plan.jobs = 2;
    plan.batch = false;

    ExperimentDriver planned;
    const auto via_plan = planned.run(plan);

    ExperimentConfig cfg;
    cfg.traceRecords = 20'000;
    cfg.enableTiming = true;
    ExperimentDriver legacy(cfg, 2);
    legacy.setBatching(false);
    const auto via_setters =
        legacy.run({"oltp-db2"}, engineSpecs({"tms", "stems"}));

    test::expectSameResults(via_plan, via_setters);
}

TEST(SweepPlanDriver, PlanEngineSpecsCarryOptionsAndLabels)
{
    SweepPlan plan;
    PlanEngine deep{"stems", "stems-la24", {}};
    deep.options.lookahead = 24;
    plan.engines = {PlanEngine{"tms", "", {}}, deep};
    const auto specs = planEngineSpecs(plan);
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[0].engine, "tms");
    EXPECT_TRUE(specs[0].label.empty()); // reported as "tms"
    EXPECT_EQ(specs[1].label, "stems-la24");
    ASSERT_TRUE(specs[1].options.lookahead.has_value());
    EXPECT_EQ(*specs[1].options.lookahead, 24u);
}

} // namespace
} // namespace stems
