/**
 * @file
 * Tests for the observability layer: metrics registry (concurrent
 * counting, histogram bucket edges, snapshot determinism and JSON
 * round-trips), Chrome-trace span collection (JSON validity via
 * parse-back, zero-overhead no-op when detached), run manifests,
 * the leveled logger, and the contract that matters most — sweep
 * results are bitwise identical with observability on or off.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/log.hh"
#include "common/mini_json.hh"
#include "obs/manifest.hh"
#include "obs/metrics.hh"
#include "obs/trace_span.hh"
#include "sim/driver.hh"
#include "store/trace_store.hh"
#include "test_util.hh"

namespace stems {
namespace {

using test::smallConfig;

// ---- LatencyHistogram ----

TEST(Histogram, BucketEdges)
{
    // Bucket 0 holds exactly the value 0; bucket i (i >= 1) holds
    // [2^(i-1), 2^i). Pin the edges around every boundary.
    EXPECT_EQ(LatencyHistogram::bucketIndex(0), 0);
    EXPECT_EQ(LatencyHistogram::bucketIndex(1), 1);
    EXPECT_EQ(LatencyHistogram::bucketIndex(2), 2);
    EXPECT_EQ(LatencyHistogram::bucketIndex(3), 2);
    EXPECT_EQ(LatencyHistogram::bucketIndex(4), 3);
    EXPECT_EQ(LatencyHistogram::bucketIndex(7), 3);
    EXPECT_EQ(LatencyHistogram::bucketIndex(8), 4);
    EXPECT_EQ(LatencyHistogram::bucketIndex(~std::uint64_t(0)), 64);

    for (int i = 1; i < LatencyHistogram::kBuckets; ++i) {
        std::uint64_t lb = LatencyHistogram::lowerBound(i);
        EXPECT_EQ(LatencyHistogram::bucketIndex(lb), i)
            << "lower bound of bucket " << i;
        EXPECT_EQ(LatencyHistogram::bucketIndex(lb - 1), i - 1)
            << "value below bucket " << i;
    }
    EXPECT_EQ(LatencyHistogram::lowerBound(0), 0u);
}

TEST(Histogram, RecordsCountSumMinMax)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u); // empty histogram reports 0, not ~0
    EXPECT_EQ(h.max(), 0u);

    h.record(100);
    h.record(7);
    h.record(100000);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 100107u);
    EXPECT_EQ(h.min(), 7u);
    EXPECT_EQ(h.max(), 100000u);
    EXPECT_EQ(h.bucketCount(LatencyHistogram::bucketIndex(7)), 1u);

    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
}

// ---- registry ----

TEST(Metrics, ConcurrentCountersSumExactly)
{
    MetricsRegistry registry;
    constexpr int kThreads = 8;
    constexpr int kIncrements = 10000;
    // Resolve once, hammer from many threads: the sum must be exact.
    Counter &counter = registry.counter("test.concurrent");
    LatencyHistogram &hist = registry.histogram("test.latency");
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kIncrements; ++i) {
                counter.add();
                hist.record(static_cast<std::uint64_t>(t + 1));
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(counter.value(),
              std::uint64_t(kThreads) * kIncrements);
    EXPECT_EQ(hist.count(), std::uint64_t(kThreads) * kIncrements);
    EXPECT_EQ(hist.min(), 1u);
    EXPECT_EQ(hist.max(), std::uint64_t(kThreads));
}

TEST(Metrics, SameInstrumentForSameName)
{
    MetricsRegistry registry;
    Counter &a = registry.counter("x");
    Counter &b = registry.counter("x");
    EXPECT_EQ(&a, &b);
    a.add(3);
    EXPECT_EQ(b.value(), 3u);
}

TEST(Metrics, SnapshotJsonDeterministicAndSorted)
{
    MetricsRegistry registry;
    // Insert in non-alphabetical order; the snapshot map sorts.
    registry.counter("z.last").add(1);
    registry.counter("a.first").add(2);
    registry.gauge("m.middle").set(0.5);
    registry.histogram("h.hist").record(42);

    MetricsSnapshot snap = registry.snapshot();
    std::string doc = metricsJson(snap);
    EXPECT_EQ(doc, metricsJson(registry.snapshot()))
        << "equal snapshots must serialize byte-identically";
    EXPECT_LT(doc.find("a.first"), doc.find("z.last"));

    // The document is well-formed JSON with the expected schema.
    JsonParser parser(doc);
    JsonValue root;
    ASSERT_TRUE(parser.parseValue(root)) << parser.error;
    EXPECT_EQ(root.str("schema"), "stems-metrics-v1");
}

TEST(Metrics, JsonRoundTrip)
{
    MetricsRegistry registry;
    registry.counter("c.one").add(123456789012345ull);
    registry.gauge("g.rate").set(3.14159);
    LatencyHistogram &h = registry.histogram("h.ns");
    h.record(0);
    h.record(1000);
    h.record(1500);
    MetricsSnapshot snap = registry.snapshot();

    std::string path =
        test::uniqueTempPath("obs_metrics", ".json");
    std::string error;
    ASSERT_TRUE(writeMetricsJson(path, snap, &error)) << error;

    MetricsSnapshot loaded;
    ASSERT_TRUE(loadMetricsJson(path, loaded, &error)) << error;
    EXPECT_EQ(metricsJson(loaded), metricsJson(snap))
        << "load(write(snap)) must reproduce the document exactly";
    EXPECT_EQ(loaded.counters.at("c.one"), 123456789012345ull);
    EXPECT_EQ(loaded.histograms.at("h.ns").count, 3u);
    EXPECT_EQ(loaded.histograms.at("h.ns").min, 0u);
    EXPECT_EQ(loaded.histograms.at("h.ns").max, 1500u);
    std::remove(path.c_str());
}

TEST(Metrics, MarkdownRendersCountersAndDeltas)
{
    MetricsSnapshot old_snap;
    old_snap.counters["hits"] = 10;
    MetricsSnapshot new_snap;
    new_snap.counters["hits"] = 25;
    new_snap.counters["misses"] = 4;

    std::string plain = renderMetricsMarkdown(new_snap, nullptr);
    EXPECT_NE(plain.find("# Metrics snapshot"), std::string::npos);
    EXPECT_NE(plain.find("`hits` | 25"), std::string::npos);

    std::string delta =
        renderMetricsMarkdown(new_snap, &old_snap);
    EXPECT_NE(delta.find("# Metrics delta"), std::string::npos);
    EXPECT_NE(delta.find("+15"), std::string::npos);
    // `misses` is new: old value renders as 0, delta +4.
    EXPECT_NE(delta.find("`misses` | 0 | 4 | +4"),
              std::string::npos);
}

// ---- spans ----

TEST(Spans, NoopWhenDetached)
{
    SpanCollector collector; // never attached
    {
        ScopedSpan span("unobserved", "test");
        EXPECT_FALSE(span.active());
        span.arg("ignored", std::uint64_t(1));
    }
    EXPECT_EQ(collector.eventCount(), 0u);
    EXPECT_EQ(SpanCollector::active(), nullptr);
}

TEST(Spans, ChromeJsonParsesBack)
{
    SpanCollector collector;
    collector.attach();
    {
        ScopedSpan outer("outer", "test");
        outer.arg("records", std::uint64_t(42));
        outer.arg("workload", std::string("oltp \"q1\""));
        ScopedSpan inner("inner", "test");
    }
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([] {
            ScopedSpan span("worker", "test");
        });
    }
    for (auto &thread : threads)
        thread.join();
    collector.detach();
    EXPECT_EQ(collector.eventCount(), 6u);

    std::string doc = collector.chromeJson();
    JsonParser parser(doc);
    JsonValue root;
    ASSERT_TRUE(parser.parseValue(root)) << parser.error;
    const JsonValue *events = root.get("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->kind, JsonValue::Kind::kArray);

    std::size_t complete = 0, metadata = 0, with_args = 0;
    for (const JsonValue &event : events->items) {
        ASSERT_EQ(event.kind, JsonValue::Kind::kObject);
        const std::string ph = event.str("ph");
        if (ph == "X") {
            ++complete;
            EXPECT_FALSE(event.str("name").empty());
            EXPECT_NE(event.get("ts"), nullptr);
            EXPECT_NE(event.get("dur"), nullptr);
            if (const JsonValue *args = event.get("args")) {
                if (!args->members.empty())
                    ++with_args;
            }
        } else {
            EXPECT_EQ(ph, "M");
            ++metadata;
        }
    }
    EXPECT_EQ(complete, 6u);
    EXPECT_GE(metadata, 1u) << "thread-name metadata events";
    EXPECT_EQ(with_args, 1u) << "only `outer` carried args";
}

TEST(Spans, DetachStopsCollection)
{
    SpanCollector collector;
    collector.attach();
    { ScopedSpan span("seen", "test"); }
    collector.detach();
    { ScopedSpan span("unseen", "test"); }
    EXPECT_EQ(collector.eventCount(), 1u);
}

// ---- manifest ----

TEST(Manifest, JsonParsesBack)
{
    RunManifest manifest;
    manifest.tool = "obs_test";
    manifest.host = hostNote();
    manifest.config = {{"records", "60000"}, {"seed", "42"}};
    manifest.phaseNs = {{"sweep", 1234567}, {"report", 89}};
    manifest.wallNs = 1234656;
    MetricsRegistry registry;
    registry.counter("c").add(7);
    manifest.metrics = registry.snapshot();

    std::string doc = runManifestJson(manifest);
    JsonParser parser(doc);
    JsonValue root;
    ASSERT_TRUE(parser.parseValue(root)) << parser.error;
    EXPECT_EQ(root.str("schema"), "stems-manifest-v1");
    EXPECT_EQ(root.str("tool"), "obs_test");
    EXPECT_FALSE(root.str("host").empty());
    const JsonValue *phases = root.get("phase_ns");
    ASSERT_NE(phases, nullptr);
    EXPECT_EQ(phases->uint("sweep"), 1234567u);
    const JsonValue *metrics = root.get("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_EQ(metrics->str("schema"), "stems-metrics-v1");
}

// ---- logger ----

TEST(Log, ThresholdFiltersLevels)
{
    LogLevel saved = logThreshold();
    setLogThreshold(LogLevel::kWarn);
    EXPECT_TRUE(logEnabled(LogLevel::kError));
    EXPECT_TRUE(logEnabled(LogLevel::kWarn));
    EXPECT_FALSE(logEnabled(LogLevel::kInfo));
    EXPECT_FALSE(logEnabled(LogLevel::kDebug));
    setLogThreshold(saved);
}

TEST(Log, ParsesNamesAndNumbers)
{
    LogLevel level = LogLevel::kInfo;
    EXPECT_TRUE(parseLogLevel("error", level));
    EXPECT_EQ(level, LogLevel::kError);
    EXPECT_TRUE(parseLogLevel("3", level));
    EXPECT_EQ(level, LogLevel::kDebug);
    EXPECT_FALSE(parseLogLevel("verbose", level));
    EXPECT_EQ(level, LogLevel::kDebug) << "left untouched on error";
    EXPECT_FALSE(parseLogLevel(nullptr, level));
}

// ---- the identity contract ----

TEST(ObsIdentity, ResultsBitwiseIdenticalUnderObservation)
{
    const std::vector<std::string> workloads{"oltp-db2", "sparse"};
    const auto engines = engineSpecs({"stems", "sms"});

    ExperimentDriver plain(smallConfig(true, 30000), 2);
    const auto expected = plain.run(workloads, engines);

    // Same sweep with a span collector attached, the registry hot
    // and the heartbeat ticking: observability must not perturb a
    // single bit. (Heartbeat lines go to stderr at info; silence
    // them so ctest output stays readable.)
    LogLevel saved = logThreshold();
    setLogThreshold(LogLevel::kWarn);
    SpanCollector collector;
    collector.attach();
    ExperimentDriver observed(smallConfig(true, 30000), 2);
    observed.setHeartbeatSeconds(0.05);
    const auto actual = observed.run(workloads, engines);
    collector.detach();
    setLogThreshold(saved);

    test::expectSameResults(expected, actual);
    EXPECT_GT(collector.eventCount(), 0u)
        << "driver instrumentation should have recorded spans";
}

// ---- speculation counters and spans ----

class SpeculationObsTest : public test::TempDirTest
{
};

TEST_F(SpeculationObsTest, MispredictRunPinsCountersAndSpans)
{
    // A forced mixed commit/mispredict run with known counts: the
    // store is seeded with warmup 7000 over checkpoint boundaries
    // every 3000 records, then the speculative run uses warmup 9500
    // on the *same* trace. Boundaries 3000 and 6000 precede both
    // warmups (the state there is unmeasured either way) so they
    // commit; boundary 9000 carries measurement history from 7000
    // the live run doesn't have, so it mispredicts and everything
    // after it rolls back. Per speculative cell: 2 commits, 1
    // mispredict — and the sweep has exactly two cells (baseline +
    // sms).
    const auto engines = engineSpecs({"sms"});
    ExperimentConfig store_cfg = smallConfig(false, 20000);
    store_cfg.warmupRecords = 7000;

    LogLevel saved = logThreshold();
    setLogThreshold(LogLevel::kWarn); // silence store info notes

    ExperimentDriver seeder(store_cfg, 2);
    seeder.setCheckpointEvery(3000);
    seeder.setStore(std::make_shared<TraceStore>(dir_));
    seeder.run({"dss-qry17"}, engines);
    ASSERT_GT(seeder.checkpointsWritten(), 0u);

    // Counters are process-global: pin the *delta* across the run.
    MetricsSnapshot before = MetricsRegistry::instance().snapshot();
    auto counter = [](const MetricsSnapshot &snap, const char *name) {
        auto it = snap.counters.find(name);
        return it == snap.counters.end() ? 0ull : it->second;
    };

    ExperimentConfig run_cfg = store_cfg;
    run_cfg.warmupRecords = 9500;
    SpanCollector collector;
    collector.attach();
    ExperimentDriver speculative(run_cfg, 2);
    speculative.setSpeculate(true);
    speculative.setStore(std::make_shared<TraceStore>(dir_));
    speculative.run({"dss-qry17"}, engines);
    collector.detach();
    setLogThreshold(saved);

    MetricsSnapshot after = MetricsRegistry::instance().snapshot();
    EXPECT_EQ(counter(after, "driver.cell.speculative") -
                  counter(before, "driver.cell.speculative"),
              2u);
    EXPECT_EQ(counter(after, "ckpt.speculate.commit") -
                  counter(before, "ckpt.speculate.commit"),
              4u);
    EXPECT_EQ(counter(after, "ckpt.speculate.mispredict") -
                  counter(before, "ckpt.speculate.mispredict"),
              2u);
    EXPECT_EQ(speculative.speculativeCells(), 2u);
    EXPECT_EQ(speculative.speculativeCommits(), 4u);
    EXPECT_EQ(speculative.speculativeMispredicts(), 2u);

    // The trace carries one driver.speculate span per speculative
    // cell, category "ckpt", with the validation tallies as args.
    std::string doc = collector.chromeJson();
    JsonParser parser(doc);
    JsonValue root;
    ASSERT_TRUE(parser.parseValue(root)) << parser.error;
    const JsonValue *events = root.get("traceEvents");
    ASSERT_NE(events, nullptr);
    std::size_t speculate_spans = 0;
    for (const JsonValue &event : events->items) {
        if (event.str("name") != "driver.speculate")
            continue;
        ++speculate_spans;
        EXPECT_EQ(event.str("cat"), "ckpt");
        const JsonValue *args = event.get("args");
        ASSERT_NE(args, nullptr);
        EXPECT_EQ(args->str("workload"), "dss-qry17");
        // 3000..18000 boundaries plus whatever end-of-trace index
        // the generator produced — at least 4 segments either way.
        EXPECT_GE(args->uint("segments"), 4u);
        EXPECT_EQ(args->uint("commits"), 2u);
        EXPECT_EQ(args->uint("mispredicts"), 1u);
        EXPECT_GT(args->uint("replayed_records"), 0u);
    }
    EXPECT_EQ(speculate_spans, 2u);
}

} // namespace
} // namespace stems
