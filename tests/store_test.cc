/**
 * @file
 * Tests for the persistent TraceStore and its driver integration:
 * content-addressed trace entries, baseline caching keyed by trace
 * digest, cross-process reuse (a fresh store instance over the same
 * directory), eviction under a size budget, and the headline
 * guarantee — a warm-store re-run of a (workloads x engines) sweep
 * performs zero trace generations, zero baseline simulations and
 * zero engine simulations (every cell served from the engine-result
 * cache) and produces results bitwise identical to a cold run and to
 * the serial ExperimentRunner reference.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "sim/checkpoint.hh"
#include "sim/driver.hh"
#include "sim/experiment.hh"
#include "store/trace_store.hh"
#include "test_util.hh"
#include "trace/text_trace.hh"
#include "trace/trace_io.hh"
#include "workloads/registry.hh"
#include "workloads/trace_workload.hh"

namespace stems {
namespace {

using test::expectSameResults;
using test::expectSameTrace;
using test::sampleTrace;
using test::smallConfig;

const std::vector<std::string> kWorkloads = {"web-apache",
                                             "dss-qry17", "em3d"};
const std::vector<std::string> kEngines = {"tms", "sms", "stems"};

class TraceStoreTest : public test::TempDirTest
{
};

TEST_F(TraceStoreTest, PutFindLoadRoundTrip)
{
    TraceStore store(dir_);
    ASSERT_TRUE(store.usable());
    Trace t = sampleTrace();
    TraceKey key{"unit-test", 500, 42};

    EXPECT_FALSE(store.findTrace(key).has_value());
    auto info = store.putTrace(key, t);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->digest, traceDigest(t));
    EXPECT_EQ(info->records, t.size());

    auto found = store.findTrace(key);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->digest, info->digest);
    EXPECT_EQ(found->key.workload, "unit-test");

    Trace loaded;
    ASSERT_TRUE(store.loadTrace(key, loaded));
    expectSameTrace(t, loaded);
    EXPECT_EQ(store.traceHits(), 1u);

    // Different records/seed are different entries.
    EXPECT_FALSE(store.findTrace({"unit-test", 500, 43}).has_value());
    EXPECT_FALSE(store.findTrace({"unit-test", 501, 42}).has_value());
    EXPECT_FALSE(store.loadTrace({"other", 500, 42}, loaded));
    EXPECT_GT(store.traceMisses(), 0u);
}

TEST_F(TraceStoreTest, CrossProcessReuse)
{
    Trace t = sampleTrace();
    TraceKey key{"cross-proc", 500, 7};
    std::uint64_t digest = 0;
    {
        TraceStore writer(dir_);
        auto info = writer.putTrace(key, t);
        ASSERT_TRUE(info.has_value());
        digest = info->digest;
    }
    // A fresh instance over the same directory — as a new process
    // would construct — sees the entry.
    TraceStore reader(dir_);
    auto found = reader.findTrace(key);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->digest, digest);
    Trace loaded;
    ASSERT_TRUE(reader.loadTrace(key, loaded));
    expectSameTrace(t, loaded);
}

TEST_F(TraceStoreTest, OpenTraceStreamsViaMmap)
{
    TraceStore store(dir_);
    Trace t = sampleTrace();
    TraceKey key{"mmap", 500, 1};
    ASSERT_TRUE(store.putTrace(key, t).has_value());
    auto src = store.openTrace(key);
    ASSERT_NE(src, nullptr);
    EXPECT_EQ(src->size(), t.size());
    Trace replayed;
    src->readAll(replayed);
    expectSameTrace(t, replayed);
}

TEST_F(TraceStoreTest, CorruptEntryIsDroppedNotServed)
{
    TraceStore store(dir_);
    Trace t = sampleTrace();
    TraceKey key{"corrupt", 500, 1};
    ASSERT_TRUE(store.putTrace(key, t).has_value());

    // Flip a payload byte of the stored .trc file.
    for (const auto &de : std::filesystem::recursive_directory_iterator(
             dir_)) {
        if (de.path().extension() != ".trc")
            continue;
        std::fstream f(de.path(),
                       std::ios::in | std::ios::out |
                           std::ios::binary);
        f.seekp(40);
        f.put('\x7f');
    }

    Trace loaded;
    EXPECT_FALSE(store.loadTrace(key, loaded));
    // The corrupt entry was dropped entirely.
    EXPECT_FALSE(store.findTrace(key).has_value());
}

TEST_F(TraceStoreTest, BaselineRoundTripIsBitExact)
{
    TraceStore store(dir_);
    StoredBaseline b;
    b.misses = 123456789;
    b.cycles = 1.0 / 3.0;
    b.strideCycles = 98765.4321e7;
    b.strideIpc = 0.7071067811865476;
    b.haveStride = true;
    b.haveTiming = true;
    ASSERT_TRUE(store.putBaseline(0xABCD, 0x1234, b));

    auto loaded = store.loadBaseline(0xABCD, 0x1234);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->misses, b.misses);
    EXPECT_EQ(loaded->cycles, b.cycles);
    EXPECT_EQ(loaded->strideCycles, b.strideCycles);
    EXPECT_EQ(loaded->strideIpc, b.strideIpc);
    EXPECT_TRUE(loaded->haveStride);
    EXPECT_TRUE(loaded->haveTiming);

    EXPECT_FALSE(store.loadBaseline(0xABCD, 0x9999).has_value());
    EXPECT_FALSE(store.loadBaseline(0xDCBA, 0x1234).has_value());
    EXPECT_EQ(store.baselineHits(), 1u);
    EXPECT_EQ(store.baselineMisses(), 2u);
}

TEST_F(TraceStoreTest, EvictionRemovesOldestFirstUnderBudget)
{
    TraceStore::Options opts;
    opts.sizeBudgetBytes = 0; // manual gc only
    TraceStore store(dir_, opts);
    for (std::uint64_t i = 0; i < 4; ++i) {
        ASSERT_TRUE(store
                        .putTrace({"evict", 500, i},
                                  sampleTrace(i))
                        .has_value());
    }
    // Assign explicit, strictly-increasing mtimes so LRU order is
    // deterministic regardless of filesystem clock granularity.
    int rank = 4;
    std::vector<std::filesystem::path> trcs;
    for (const auto &de : std::filesystem::directory_iterator(
             dir_ + std::string("/traces")))
        if (de.path().extension() == ".trc")
            trcs.push_back(de.path());
    ASSERT_EQ(trcs.size(), 4u);
    std::sort(trcs.begin(), trcs.end());
    auto now = std::filesystem::file_time_type::clock::now();
    for (const auto &p : trcs)
        std::filesystem::last_write_time(
            p, now - std::chrono::seconds(rank--));

    std::uint64_t total = store.totalBytes();
    ASSERT_GT(total, 0u);
    std::uint64_t per_entry = total / 4;
    std::uint64_t removed =
        store.evictWithin(total - per_entry); // force >= 1 eviction
    EXPECT_GT(removed, 0u);
    EXPECT_LE(store.totalBytes(), total - per_entry);

    // The oldest-touched (first in trcs order) was evicted; the
    // newest survives.
    EXPECT_FALSE(std::filesystem::exists(trcs.front()));
    EXPECT_TRUE(std::filesystem::exists(trcs.back()));

    // Full gc empties the store.
    store.evictWithin(0);
    EXPECT_EQ(store.totalBytes(), 0u);
    EXPECT_TRUE(store.list().empty());
}

TEST_F(TraceStoreTest, ListDescribesEntries)
{
    TraceStore store(dir_);
    store.putTrace({"lister", 500, 9}, sampleTrace());
    StoredBaseline b;
    b.misses = 1;
    store.putBaseline(1, 2, b);
    auto entries = store.list();
    ASSERT_EQ(entries.size(), 2u);
    bool have_trace = false, have_baseline = false;
    for (const StoreEntry &e : entries) {
        if (e.kind == StoreEntry::Kind::kTrace) {
            have_trace = true;
            EXPECT_NE(e.description.find("lister"),
                      std::string::npos);
            EXPECT_GT(e.bytes, 0u);
        } else {
            have_baseline = true;
        }
    }
    EXPECT_TRUE(have_trace);
    EXPECT_TRUE(have_baseline);
}

TEST_F(TraceStoreTest, UnusableDirectoryDegradesGracefully)
{
    // A path under a regular file cannot be created.
    std::string file = testing::TempDir() + "stems_store_blocker";
    std::ofstream(file) << "x";
    TraceStore store(file + "/store");
    EXPECT_FALSE(store.usable());
    EXPECT_FALSE(store.putTrace({"w", 1, 1}, sampleTrace())
                     .has_value());
    Trace t;
    EXPECT_FALSE(store.loadTrace({"w", 1, 1}, t));
    EXPECT_FALSE(store.loadBaseline(1, 2).has_value());
    std::remove(file.c_str());
}

// ---- driver integration ----

TEST_F(TraceStoreTest, WarmSweepDoesZeroGenerationsAndBaselines)
{
    ExperimentConfig cfg = smallConfig(true);

    // Cold run: fresh store, everything computed and persisted.
    ExperimentDriver cold(cfg, 2);
    cold.setStore(std::make_shared<TraceStore>(dir_));
    auto cold_results = cold.run(kWorkloads, engineSpecs(kEngines));
    EXPECT_EQ(cold.traceGenerations(), kWorkloads.size());
    EXPECT_EQ(cold.baselineRuns(), 2 * kWorkloads.size());
    EXPECT_EQ(cold.engineRuns(),
              kWorkloads.size() * kEngines.size());

    // Warm run: fresh driver AND fresh store instance over the same
    // directory, as a separate process would see it. Every engine
    // cell is served from the result cache, so nothing at all is
    // simulated — not even the traces are decoded.
    ExperimentDriver warm(cfg, 4);
    warm.setStore(std::make_shared<TraceStore>(dir_));
    auto warm_results = warm.run(kWorkloads, engineSpecs(kEngines));
    EXPECT_EQ(warm.traceGenerations(), 0u);
    EXPECT_EQ(warm.baselineRuns(), 0u);
    EXPECT_EQ(warm.engineRuns(), 0u);
    EXPECT_EQ(warm.store()->resultHits(),
              kWorkloads.size() * kEngines.size());
    EXPECT_EQ(warm.store()->traceHits(), 0u);

    // Bitwise-identical merged results: warm vs cold...
    expectSameResults(cold_results, warm_results);

    // ...and both vs the independent serial reference.
    ExperimentRunner runner(cfg);
    std::vector<WorkloadResult> reference;
    for (const std::string &name : kWorkloads) {
        auto w = makeWorkload(name);
        ASSERT_NE(w, nullptr);
        reference.push_back(runner.runWorkload(*w, kEngines));
    }
    expectSameResults(reference, warm_results);
}

TEST_F(TraceStoreTest, SecondSweepInSameDriverUsesMemoryCache)
{
    ExperimentConfig cfg = smallConfig(false);
    ExperimentDriver driver(cfg, 2);
    driver.setStore(std::make_shared<TraceStore>(dir_));
    driver.run({"dss-qry17"}, engineSpecs({"sms"}));
    std::uint64_t baseline_loads = driver.store()->baselineHits() +
                                   driver.store()->baselineMisses();
    driver.run({"dss-qry17"}, engineSpecs({"sms", "stems"}));
    // The in-memory baseline cache answers first; the store is not
    // probed again for baselines.
    EXPECT_EQ(driver.store()->baselineHits() +
                  driver.store()->baselineMisses(),
              baseline_loads);
    EXPECT_EQ(driver.traceGenerations(), 1u);
}

TEST_F(TraceStoreTest, FunctionalEntryDoesNotServeTimingRun)
{
    // A functional-only run persists baselines without cycle data; a
    // later timing run must recompute rather than trust them.
    ExperimentDriver functional(smallConfig(false), 2);
    functional.setStore(std::make_shared<TraceStore>(dir_));
    functional.run({"dss-qry17"}, engineSpecs({"sms"}));
    EXPECT_EQ(functional.baselineRuns(), 1u);

    ExperimentDriver timed(smallConfig(true), 2);
    timed.setStore(std::make_shared<TraceStore>(dir_));
    timed.run({"dss-qry17"}, engineSpecs({"sms"}));
    EXPECT_EQ(timed.traceGenerations(), 0u); // trace still reused
    EXPECT_EQ(timed.baselineRuns(), 2u);     // baselines recomputed
    // The functional run's cached engine result carries no cycle
    // data; the timing run keys results separately and re-simulates.
    EXPECT_EQ(timed.engineRuns(), 1u);

    // The upgraded (timed) entry now serves both kinds of run.
    ExperimentDriver warm(smallConfig(true), 2);
    warm.setStore(std::make_shared<TraceStore>(dir_));
    warm.run({"dss-qry17"}, engineSpecs({"sms"}));
    EXPECT_EQ(warm.baselineRuns(), 0u);
}

TEST_F(TraceStoreTest, DifferentSeedMissesTheStore)
{
    ExperimentConfig cfg = smallConfig(false);
    ExperimentDriver a(cfg, 2);
    a.setStore(std::make_shared<TraceStore>(dir_));
    a.run({"dss-qry17"}, engineSpecs({"sms"}));

    cfg.seed = 43;
    ExperimentDriver b(cfg, 2);
    b.setStore(std::make_shared<TraceStore>(dir_));
    b.run({"dss-qry17"}, engineSpecs({"sms"}));
    EXPECT_EQ(b.traceGenerations(), 1u);
    EXPECT_EQ(b.baselineRuns(), 1u);
}

TEST_F(TraceStoreTest, ForEachTraceReplaysFromStore)
{
    ExperimentConfig cfg = smallConfig(false);
    cfg.traceRecords = 20000;

    ExperimentDriver cold(cfg, 2);
    cold.setStore(std::make_shared<TraceStore>(dir_));
    std::vector<std::size_t> cold_sizes(kWorkloads.size());
    cold.forEachTrace(kWorkloads,
                      [&](std::size_t i, const Workload &,
                          const Trace &t) { cold_sizes[i] = t.size(); });
    EXPECT_EQ(cold.traceGenerations(), kWorkloads.size());

    ExperimentDriver warm(cfg, 2);
    warm.setStore(std::make_shared<TraceStore>(dir_));
    std::vector<std::size_t> warm_sizes(kWorkloads.size());
    warm.forEachTrace(kWorkloads,
                      [&](std::size_t i, const Workload &,
                          const Trace &t) { warm_sizes[i] = t.size(); });
    EXPECT_EQ(warm.traceGenerations(), 0u);
    EXPECT_EQ(warm_sizes, cold_sizes);
}

TEST_F(TraceStoreTest, ExternalTraceDigestKeysStoredBaselines)
{
    // runWorkload with a caller-vouched content digest caches the
    // baselines in the store even though the name-keyed paths are
    // bypassed — this is what `stems_trace run --store` relies on.
    Trace t = sampleTrace();
    std::uint64_t digest = traceDigest(t);
    FixedTraceWorkload w("captured", Trace(t));

    ExperimentDriver first(smallConfig(false), 2);
    first.setStore(std::make_shared<TraceStore>(dir_));
    auto a = first.runWorkload(w, engineSpecs({"sms"}), digest);
    EXPECT_EQ(first.baselineRuns(), 1u);

    // Fresh driver + store instance (a new process): baseline hits.
    ExperimentDriver second(smallConfig(false), 2);
    second.setStore(std::make_shared<TraceStore>(dir_));
    auto b = second.runWorkload(w, engineSpecs({"sms"}), digest);
    EXPECT_EQ(second.baselineRuns(), 0u);
    EXPECT_EQ(a.baselineMisses, b.baselineMisses);
    EXPECT_EQ(a.find("sms")->coverage, b.find("sms")->coverage);

    // Without a digest the store is (correctly) not consulted.
    ExperimentDriver third(smallConfig(false), 2);
    third.setStore(std::make_shared<TraceStore>(dir_));
    third.runWorkload(w, engineSpecs({"sms"}));
    EXPECT_EQ(third.baselineRuns(), 1u);
}

TEST_F(TraceStoreTest, ImportedTraceRunsThroughDriverWithAllEngines)
{
    // Round-trip a real workload capture through the external text
    // format — as if it had been dumped by another simulator — then
    // ingest it into the store and sweep every registered engine
    // over it.
    auto w = makeWorkload("oltp-db2");
    ASSERT_NE(w, nullptr);
    Trace captured = w->generate(42, 30000);
    std::string csv = dir_ + "_external.csv";
    ASSERT_TRUE(exportTextTrace(csv, captured));
    Trace imported;
    std::string error;
    ASSERT_TRUE(importTextTrace(csv, imported, &error)) << error;
    std::remove(csv.c_str());
    expectSameTrace(captured, imported);

    // Ingest into the store and replay out of it, as the tool does.
    TraceStore store(dir_);
    TraceKey key{"external:capture", imported.size(), 0};
    ASSERT_TRUE(store.putTrace(key, imported).has_value());
    Trace replayed;
    ASSERT_TRUE(store.loadTrace(key, replayed));
    expectSameTrace(imported, replayed);

    // Drive every registered engine over it.
    FixedTraceWorkload workload("external:capture",
                                std::move(replayed));
    ExperimentDriver driver(ExperimentConfig{}, 2);
    WorkloadResult r = driver.runWorkload(
        workload,
        engineSpecs({"stride", "tms", "sms", "stems", "tms+sms"}));
    ASSERT_EQ(r.engines.size(), 5u);
    EXPECT_GT(r.baselineMisses, 0u);
    double best = 0.0;
    for (const EngineResult &e : r.engines) {
        EXPECT_GE(e.coverage, 0.0) << e.engine;
        best = std::max(best, e.coverage);
    }
    // The OLTP capture is predictable: some engine must cover it.
    EXPECT_GT(best, 0.05);
}

// ---- engine-result cache ----

TEST_F(TraceStoreTest, EngineResultRoundTripIsBitExact)
{
    TraceStore store(dir_);
    StoredEngineResult r;
    r.stats.records = 123456;
    r.stats.reads = 100000;
    r.stats.writes = 20000;
    r.stats.invalidates = 3456;
    r.stats.l1Hits = 90000;
    r.stats.l2Hits = 5000;
    r.stats.l2PrefetchHits = 1234;
    r.stats.svbHits = 2345;
    r.stats.offChipReads = 1421;
    r.stats.offChipWrites = 777;
    r.stats.prefetchesIssued = 4242;
    r.stats.overpredictions = 663;
    r.stats.cycles = 1.0 / 7.0;
    r.stats.instructions = 987654321;
    r.extra["placed"] = 0.30000000000000004;
    r.extra["within2"] = 0.9999999999999999;
    ASSERT_TRUE(store.putResult(0xA, 0xB, 0xC, r,
                                {"wl", "eng", 1000, 42, 0.5, 0.9,
                                 1.25, true}));

    auto loaded = store.loadResult(0xA, 0xB, 0xC);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->stats.records, r.stats.records);
    EXPECT_EQ(loaded->stats.l2PrefetchHits,
              r.stats.l2PrefetchHits);
    EXPECT_EQ(loaded->stats.svbHits, r.stats.svbHits);
    EXPECT_EQ(loaded->stats.offChipReads, r.stats.offChipReads);
    EXPECT_EQ(loaded->stats.prefetchesIssued,
              r.stats.prefetchesIssued);
    EXPECT_EQ(loaded->stats.overpredictions,
              r.stats.overpredictions);
    EXPECT_EQ(loaded->stats.cycles, r.stats.cycles); // bitwise
    EXPECT_EQ(loaded->stats.instructions, r.stats.instructions);
    EXPECT_EQ(loaded->extra, r.extra);

    // Any other key misses.
    EXPECT_FALSE(store.loadResult(0xA, 0xB, 0xD).has_value());
    EXPECT_FALSE(store.loadResult(0xA, 0xD, 0xC).has_value());
    EXPECT_FALSE(store.loadResult(0xD, 0xB, 0xC).has_value());
    EXPECT_EQ(store.resultHits(), 1u);
    EXPECT_EQ(store.resultMisses(), 3u);

    // The sidecar is enumerable.
    auto infos = store.listResults();
    ASSERT_EQ(infos.size(), 1u);
    EXPECT_EQ(infos[0].meta.workload, "wl");
    EXPECT_EQ(infos[0].meta.engine, "eng");
    EXPECT_EQ(infos[0].meta.records, 1000u);
    EXPECT_EQ(infos[0].meta.coverage, 0.5);
    EXPECT_TRUE(infos[0].meta.timing);
    EXPECT_GT(infos[0].savedAtUnix, 0);
}

TEST_F(TraceStoreTest, CorruptResultEntryFallsBackToSimulation)
{
    ExperimentConfig cfg = smallConfig(false);
    ExperimentDriver cold(cfg, 2);
    cold.setStore(std::make_shared<TraceStore>(dir_));
    auto cold_results = cold.run({"dss-qry17"}, engineSpecs({"sms"}));
    EXPECT_EQ(cold.engineRuns(), 1u);

    // Flip a byte in the middle of the stored .res payload.
    for (const auto &de :
         std::filesystem::recursive_directory_iterator(dir_)) {
        if (de.path().extension() != ".res")
            continue;
        std::fstream f(de.path(), std::ios::in | std::ios::out |
                                      std::ios::binary);
        f.seekp(24);
        f.put('\x7f');
    }

    ExperimentDriver warm(cfg, 2);
    warm.setStore(std::make_shared<TraceStore>(dir_));
    auto warm_results = warm.run({"dss-qry17"}, engineSpecs({"sms"}));
    EXPECT_EQ(warm.engineRuns(), 1u); // cache rejected, re-simulated
    EXPECT_EQ(warm.store()->resultHits(), 0u);
    expectSameResults(cold_results, warm_results);

    // The re-simulation re-persisted a good entry.
    ExperimentDriver third(cfg, 2);
    third.setStore(std::make_shared<TraceStore>(dir_));
    expectSameResults(cold_results,
                      third.run({"dss-qry17"}, engineSpecs({"sms"})));
    EXPECT_EQ(third.engineRuns(), 0u);
}

TEST_F(TraceStoreTest, TruncatedResultEntryFallsBackToSimulation)
{
    ExperimentConfig cfg = smallConfig(false);
    ExperimentDriver cold(cfg, 2);
    cold.setStore(std::make_shared<TraceStore>(dir_));
    auto cold_results = cold.run({"dss-qry17"}, engineSpecs({"sms"}));

    for (const auto &de :
         std::filesystem::recursive_directory_iterator(dir_)) {
        if (de.path().extension() != ".res")
            continue;
        std::filesystem::resize_file(de.path(), 10);
    }

    ExperimentDriver warm(cfg, 2);
    warm.setStore(std::make_shared<TraceStore>(dir_));
    auto warm_results = warm.run({"dss-qry17"}, engineSpecs({"sms"}));
    EXPECT_EQ(warm.engineRuns(), 1u);
    expectSameResults(cold_results, warm_results);
}

TEST_F(TraceStoreTest, EvictionSharesBudgetAcrossAllEntryKinds)
{
    TraceStore::Options opts;
    opts.sizeBudgetBytes = 0; // manual gc only
    TraceStore store(dir_, opts);
    ASSERT_TRUE(
        store.putTrace({"evict", 500, 1}, sampleTrace(1)).has_value());
    StoredBaseline b;
    b.misses = 7;
    ASSERT_TRUE(store.putBaseline(1, 2, b));
    StoredEngineResult r;
    r.stats.records = 1;
    ASSERT_TRUE(store.putResult(1, 2, 3, r,
                                {"wl", "eng", 500, 1, 0, 0, 0,
                                 false}));

    // totalBytes counts all three kinds.
    std::uint64_t total = store.totalBytes();
    std::uint64_t listed = 0;
    bool have_result = false;
    for (const StoreEntry &e : store.list()) {
        listed += e.bytes;
        have_result |= e.kind == StoreEntry::Kind::kResult;
    }
    EXPECT_TRUE(have_result);
    // list() reports payload bytes; meta sidecars add the rest.
    EXPECT_LE(listed, total);
    EXPECT_GT(listed, 0u);

    // Make the result entry the oldest; evicting to just below the
    // total must remove it first, as a .res/.meta pair.
    auto now = std::filesystem::file_time_type::clock::now();
    for (const auto &de :
         std::filesystem::recursive_directory_iterator(dir_)) {
        bool is_result = de.path().parent_path().filename() ==
                         "results";
        std::filesystem::last_write_time(
            de.path(),
            now - std::chrono::seconds(is_result ? 1000 : 10));
    }
    std::uint64_t removed = store.evictWithin(total - 1);
    EXPECT_GT(removed, 0u);
    EXPECT_FALSE(store.loadResult(1, 2, 3).has_value());
    EXPECT_TRUE(store.listResults().empty());
    // The newer trace and baseline survive.
    EXPECT_TRUE(store.findTrace({"evict", 500, 1}).has_value());
    EXPECT_TRUE(store.loadBaseline(1, 2).has_value());

    // Full gc removes everything, results included.
    store.evictWithin(0);
    EXPECT_EQ(store.totalBytes(), 0u);
    EXPECT_TRUE(store.list().empty());
}

TEST_F(TraceStoreTest, ExternalTraceHitsResultCacheByDigest)
{
    // stems_trace run --store: the caller vouches for the trace's
    // content digest, so even the engine cells of an external trace
    // become incremental across processes.
    Trace t = sampleTrace();
    std::uint64_t digest = traceDigest(t);
    FixedTraceWorkload w("captured", Trace(t));

    ExperimentDriver first(smallConfig(false), 2);
    first.setStore(std::make_shared<TraceStore>(dir_));
    auto a =
        first.runWorkload(w, engineSpecs({"sms", "stems"}), digest);
    EXPECT_EQ(first.engineRuns(), 2u);

    ExperimentDriver second(smallConfig(false), 2);
    second.setStore(std::make_shared<TraceStore>(dir_));
    auto b =
        second.runWorkload(w, engineSpecs({"sms", "stems"}), digest);
    EXPECT_EQ(second.engineRuns(), 0u);
    EXPECT_EQ(second.baselineRuns(), 0u);
    EXPECT_EQ(second.store()->resultHits(), 2u);
    expectSameResults({a}, {b});

    // Without a digest nothing is cached or served.
    ExperimentDriver third(smallConfig(false), 2);
    third.setStore(std::make_shared<TraceStore>(dir_));
    third.runWorkload(w, engineSpecs({"sms", "stems"}));
    EXPECT_EQ(third.engineRuns(), 2u);
}

TEST_F(TraceStoreTest, AnonymousProbeBypassesResultCache)
{
    // A probe is opaque code: without a stable probeId the cell must
    // re-simulate every run (the cached extras could be stale).
    ExperimentConfig cfg = smallConfig(false);
    EngineSpec spec("stems");
    spec.probe = [](const Prefetcher &, EngineResult &er) {
        er.extra["marker"] = 1.0;
    };

    ExperimentDriver cold(cfg, 2);
    cold.setStore(std::make_shared<TraceStore>(dir_));
    cold.run({"dss-qry17"}, {spec});
    EXPECT_EQ(cold.engineRuns(), 1u);

    ExperimentDriver warm(cfg, 2);
    warm.setStore(std::make_shared<TraceStore>(dir_));
    auto results = warm.run({"dss-qry17"}, {spec});
    EXPECT_EQ(warm.engineRuns(), 1u); // not served from the cache
    EXPECT_EQ(results.at(0).engines.at(0).extra.at("marker"), 1.0);
}

TEST_F(TraceStoreTest, NamedProbeRoundTripsExtrasThroughCache)
{
    ExperimentConfig cfg = smallConfig(false);
    EngineSpec spec("stems");
    spec.probe = [](const Prefetcher &, EngineResult &er) {
        er.extra["marker"] = 2.5;
        er.extra["other"] = -0.125;
    };
    spec.probeId = "marker-probe-v1";

    ExperimentDriver cold(cfg, 2);
    cold.setStore(std::make_shared<TraceStore>(dir_));
    auto cold_results = cold.run({"dss-qry17"}, {spec});
    EXPECT_EQ(cold.engineRuns(), 1u);

    ExperimentDriver warm(cfg, 2);
    warm.setStore(std::make_shared<TraceStore>(dir_));
    auto warm_results = warm.run({"dss-qry17"}, {spec});
    EXPECT_EQ(warm.engineRuns(), 0u);
    const auto &extra = warm_results.at(0).engines.at(0).extra;
    EXPECT_EQ(extra.at("marker"), 2.5);
    EXPECT_EQ(extra.at("other"), -0.125);
    expectSameResults(cold_results, warm_results);

    // A different probe identity is a different cache key.
    spec.probeId = "marker-probe-v2";
    ExperimentDriver bumped(cfg, 2);
    bumped.setStore(std::make_shared<TraceStore>(dir_));
    bumped.run({"dss-qry17"}, {spec});
    EXPECT_EQ(bumped.engineRuns(), 1u);
}

// ---- checkpoint entries ----

/** A real (small, engineless) simulator snapshot to store. */
std::vector<std::uint8_t>
sampleCheckpointBlob(std::uint64_t index)
{
    PrefetchSimulator sim(SimParams{}, nullptr);
    Trace t = sampleTrace();
    for (std::uint64_t i = 0; i < index && i < t.size(); ++i)
        sim.step(t[static_cast<std::size_t>(i)]);
    return encodeCheckpoint(sim, index);
}

TEST_F(TraceStoreTest, CheckpointRoundTripAndIndexListing)
{
    TraceStore store(dir_);
    auto blob = sampleCheckpointBlob(100);
    StoredCheckpointMeta meta{"wl", "stems", 100, 40};
    ASSERT_TRUE(store.putCheckpoint(0xA, 0xB, 100, 0xC, blob, meta));
    ASSERT_TRUE(store.putCheckpoint(0xA, 0xB, 50, 0xD,
                                    sampleCheckpointBlob(50),
                                    {"wl", "stems", 50, 40}));

    auto loaded = store.loadCheckpoint(0xA, 0xB, 100, 0xC);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(*loaded, blob); // byte-for-byte

    // Indices enumerate ascending across state digests.
    EXPECT_EQ(store.listCheckpointIndices(0xA, 0xB),
              (std::vector<std::uint64_t>{50, 100}));
    EXPECT_TRUE(store.listCheckpointIndices(0xA, 0xE).empty());
    EXPECT_TRUE(store.listCheckpointIndices(0xE, 0xB).empty());

    // Any other key misses.
    EXPECT_FALSE(store.loadCheckpoint(0xA, 0xB, 100, 0xD)
                     .has_value());
    EXPECT_FALSE(store.loadCheckpoint(0xA, 0xB, 99, 0xC)
                     .has_value());
    EXPECT_EQ(store.checkpointHits(), 1u);
    EXPECT_EQ(store.checkpointMisses(), 2u);

    // The listing carries the new entry kind with its identity.
    bool have_ckpt = false;
    for (const StoreEntry &e : store.list()) {
        if (e.kind != StoreEntry::Kind::kCheckpoint)
            continue;
        have_ckpt = true;
        EXPECT_NE(e.description.find("wl x stems"),
                  std::string::npos)
            << e.description;
        EXPECT_GT(e.bytes, 0u);
    }
    EXPECT_TRUE(have_ckpt);
}

TEST_F(TraceStoreTest, CorruptCheckpointEntryIsDroppedNotServed)
{
    TraceStore store(dir_);
    ASSERT_TRUE(store.putCheckpoint(1, 2, 100, 3,
                                    sampleCheckpointBlob(100),
                                    {"wl", "sms", 100, 0}));
    for (const auto &de :
         std::filesystem::recursive_directory_iterator(dir_)) {
        if (de.path().extension() != ".ckpt")
            continue;
        std::fstream f(de.path(), std::ios::in | std::ios::out |
                                      std::ios::binary);
        f.seekp(40);
        f.put('\x7f');
    }
    EXPECT_FALSE(store.loadCheckpoint(1, 2, 100, 3).has_value());
    // Both files of the pair are gone, so the index listing is too.
    EXPECT_TRUE(store.listCheckpointIndices(1, 2).empty());
}

TEST_F(TraceStoreTest, CheckpointsShareTheEvictionBudget)
{
    TraceStore::Options opts;
    opts.sizeBudgetBytes = 0; // manual gc only
    TraceStore store(dir_, opts);
    ASSERT_TRUE(
        store.putTrace({"evict", 500, 1}, sampleTrace(1)).has_value());
    ASSERT_TRUE(store.putCheckpoint(7, 8, 100, 9,
                                    sampleCheckpointBlob(100),
                                    {"wl", "stems", 100, 0}));

    std::uint64_t total = store.totalBytes();
    ASSERT_GT(total, 0u);

    // Make the checkpoint pair the oldest: a below-total budget must
    // evict it first, .meta sidecar included, like a .res pair.
    auto now = std::filesystem::file_time_type::clock::now();
    for (const auto &de :
         std::filesystem::recursive_directory_iterator(dir_)) {
        bool is_ckpt = de.path().parent_path().filename() ==
                       "checkpoints";
        std::filesystem::last_write_time(
            de.path(),
            now - std::chrono::seconds(is_ckpt ? 1000 : 10));
    }
    EXPECT_GT(store.evictWithin(total - 1), 0u);
    EXPECT_FALSE(store.loadCheckpoint(7, 8, 100, 9).has_value());
    EXPECT_TRUE(store.listCheckpointIndices(7, 8).empty());
    bool meta_left = false;
    for (const auto &de : std::filesystem::directory_iterator(
             dir_ + "/checkpoints"))
        meta_left |= de.path().extension() == ".meta";
    EXPECT_FALSE(meta_left);
    // The newer trace survives.
    EXPECT_TRUE(store.findTrace({"evict", 500, 1}).has_value());

    // Full gc removes everything, checkpoints included.
    store.evictWithin(0);
    EXPECT_EQ(store.totalBytes(), 0u);
}

TEST_F(TraceStoreTest, ConcurrentCheckpointWritesAllLand)
{
    // Parallel driver tasks persist checkpoints concurrently — both
    // to distinct keys (different boundaries/states) and, when two
    // cells share a checkpoint identity, to the same key with the
    // same bytes. No write may be lost, torn, or cross-wired.
    TraceStore store(dir_);
    const std::uint64_t spec = 0x51EC, cfg = 0xC0F;
    auto shared_blob = sampleCheckpointBlob(500);

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < 8; ++t) {
        threads.emplace_back([&, t] {
            // Distinct key per thread...
            std::uint64_t index = 100 * (t + 1);
            ASSERT_TRUE(store.putCheckpoint(
                spec, cfg, index, /*state=*/t,
                sampleCheckpointBlob(index),
                {"wl", "stems", index, 0}));
            // ...plus everyone racing on one shared key.
            ASSERT_TRUE(store.putCheckpoint(
                spec, cfg, 500, /*state=*/0xABC, shared_blob,
                {"wl", "stems", 500, 0}));
        });
    }
    for (std::thread &th : threads)
        th.join();

    // Every distinct key round-trips byte-for-byte.
    for (unsigned t = 0; t < 8; ++t) {
        std::uint64_t index = 100 * (t + 1);
        auto loaded = store.loadCheckpoint(spec, cfg, index, t);
        ASSERT_TRUE(loaded.has_value()) << "thread " << t;
        EXPECT_EQ(*loaded, sampleCheckpointBlob(index));
    }
    auto shared = store.loadCheckpoint(spec, cfg, 500, 0xABC);
    ASSERT_TRUE(shared.has_value());
    EXPECT_EQ(*shared, shared_blob);

    // The key listing sees all of them, sorted, no duplicates.
    auto keys = store.listCheckpoints(spec, cfg);
    ASSERT_EQ(keys.size(), 9u);
    for (std::size_t i = 1; i < keys.size(); ++i) {
        EXPECT_TRUE(keys[i - 1].index < keys[i].index ||
                    (keys[i - 1].index == keys[i].index &&
                     keys[i - 1].stateDigest <
                         keys[i].stateDigest));
    }
}

TEST_F(TraceStoreTest, ListCheckpointsOnMixedStore)
{
    // listCheckpoints() is the speculation candidate source: it must
    // enumerate every well-formed key of the requested identity —
    // including multiple state digests per index and entries whose
    // blob is corrupt (integrity is loadCheckpoint's job) — while
    // skipping foreign identities and malformed filenames.
    TraceStore store(dir_);
    const std::uint64_t spec = 0xFEED, cfg = 0xBEEF;
    ASSERT_TRUE(store.putCheckpoint(spec, cfg, 100, 1,
                                    sampleCheckpointBlob(100),
                                    {"wl", "stems", 100, 0}));
    ASSERT_TRUE(store.putCheckpoint(spec, cfg, 100, 2,
                                    sampleCheckpointBlob(100),
                                    {"wl", "stems", 100, 0}));
    ASSERT_TRUE(store.putCheckpoint(spec, cfg, 50, 9,
                                    sampleCheckpointBlob(50),
                                    {"wl", "stems", 50, 0}));
    // Foreign config and foreign spec: same directory, other runs.
    ASSERT_TRUE(store.putCheckpoint(spec, 0x0DD, 100, 1,
                                    sampleCheckpointBlob(100),
                                    {"wl", "stems", 100, 0}));
    ASSERT_TRUE(store.putCheckpoint(0x0DD, cfg, 100, 1,
                                    sampleCheckpointBlob(100),
                                    {"wl", "stems", 100, 0}));

    // Corrupt one on-identity blob: still *listed* (the filename is
    // the key), only loadCheckpoint rejects it.
    {
        char stem[80];
        std::snprintf(stem, sizeof(stem),
                      "%016llx-%016llx-%016llx-%016llx",
                      static_cast<unsigned long long>(spec),
                      static_cast<unsigned long long>(cfg), 50ull,
                      9ull);
        std::fstream f(dir_ + "/checkpoints/" + stem + ".ckpt",
                       std::ios::in | std::ios::out |
                           std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekp(40);
        f.put('\x7f');
    }

    // Malformed filenames sharing the identity prefix: skipped.
    char prefix[40];
    std::snprintf(prefix, sizeof(prefix), "%016llx-%016llx-",
                  static_cast<unsigned long long>(spec),
                  static_cast<unsigned long long>(cfg));
    for (const std::string &junk :
         {std::string(prefix) + "junk.ckpt",
          std::string(prefix) + "0000000000000100.ckpt",
          std::string(prefix) +
              "0000000000000100_0000000000000001.ckpt",
          std::string("garbage.ckpt")}) {
        std::ofstream(dir_ + "/checkpoints/" + junk) << "x";
    }

    auto keys = store.listCheckpoints(spec, cfg);
    ASSERT_EQ(keys.size(), 3u);
    EXPECT_EQ(keys[0].index, 50u);
    EXPECT_EQ(keys[0].stateDigest, 9u);
    EXPECT_EQ(keys[1].index, 100u);
    EXPECT_EQ(keys[1].stateDigest, 1u);
    EXPECT_EQ(keys[2].index, 100u);
    EXPECT_EQ(keys[2].stateDigest, 2u);

    // The corrupt entry is listed but not served.
    EXPECT_FALSE(store.loadCheckpoint(spec, cfg, 50, 9).has_value());
    EXPECT_TRUE(store.loadCheckpoint(spec, cfg, 100, 1).has_value());

    // Unknown identities stay empty.
    EXPECT_TRUE(store.listCheckpoints(spec, 0x123).empty());
    EXPECT_TRUE(store.listCheckpoints(0x123, cfg).empty());
}

TEST_F(TraceStoreTest, DifferentEngineOptionsAreDifferentResults)
{
    ExperimentConfig cfg = smallConfig(false);
    EngineOptions small_rmob;
    small_rmob.bufferEntries = 256;

    ExperimentDriver cold(cfg, 2);
    cold.setStore(std::make_shared<TraceStore>(dir_));
    cold.run({"dss-qry17"}, {EngineSpec("stems")});
    EXPECT_EQ(cold.engineRuns(), 1u);

    // Same engine name, different overrides: must not be served
    // from the default-options entry.
    ExperimentDriver swept(cfg, 2);
    swept.setStore(std::make_shared<TraceStore>(dir_));
    swept.run({"dss-qry17"},
              {EngineSpec("stems", "stems-small", small_rmob)});
    EXPECT_EQ(swept.engineRuns(), 1u);

    // While a *label-only* change shares the entry (labels are
    // cosmetic; the simulation is identical).
    ExperimentDriver relabeled(cfg, 2);
    relabeled.setStore(std::make_shared<TraceStore>(dir_));
    auto results = relabeled.run(
        {"dss-qry17"}, {EngineSpec("stems", "stems-renamed")});
    EXPECT_EQ(relabeled.engineRuns(), 0u);
    EXPECT_EQ(results.at(0).engines.at(0).engine, "stems-renamed");
}

} // namespace
} // namespace stems