/**
 * @file
 * Unit tests for the engine and workload registries: builtin
 * contents, stable enumeration order, unknown-name behaviour,
 * duplicate rejection, runtime extension, and override application.
 */

#include <gtest/gtest.h>

#include "prefetch/engine_registry.hh"
#include "prefetch/tms.hh"
#include "sim/config.hh"
#include "workloads/registry.hh"

namespace stems {
namespace {

std::vector<std::string>
prefix(const std::vector<std::string> &v, std::size_t n)
{
    return {v.begin(), v.begin() + std::min(n, v.size())};
}

// ---- engine registry ----

TEST(EngineRegistryTest, BuiltinsInRankOrder)
{
    const std::vector<std::string> expected = {"stride", "tms", "sms",
                                               "stems", "tms+sms"};
    EXPECT_EQ(prefix(EngineRegistry::instance().names(), 5),
              expected);
    for (const std::string &name : expected)
        EXPECT_TRUE(EngineRegistry::instance().contains(name))
            << name;
}

TEST(EngineRegistryTest, EnumerationIsStable)
{
    auto a = EngineRegistry::instance().names();
    auto b = EngineRegistry::instance().names();
    EXPECT_EQ(a, b);
}

TEST(EngineRegistryTest, UnknownNameReturnsNull)
{
    SystemConfig sys = defaultSystemConfig();
    EXPECT_EQ(EngineRegistry::instance().make("bogus", sys), nullptr);
    EXPECT_FALSE(EngineRegistry::instance().contains("bogus"));
}

TEST(EngineRegistryTest, MakeBuildsEveryBuiltin)
{
    SystemConfig sys = defaultSystemConfig();
    for (const std::string &name :
         EngineRegistry::instance().names()) {
        auto engine = EngineRegistry::instance().make(name, sys);
        ASSERT_NE(engine, nullptr) << name;
    }
}

TEST(EngineRegistryTest, DuplicateRegistrationRejected)
{
    EXPECT_FALSE(EngineRegistry::instance().add(
        "stride", 999, 42,
        [](const SystemConfig &, const EngineOptions &) {
            return std::unique_ptr<Prefetcher>();
        }));
    // The original registration's state version survives too.
    EXPECT_EQ(EngineRegistry::instance().stateVersion("stride"), 1u);
    // The original factory survives.
    SystemConfig sys = defaultSystemConfig();
    auto stride = EngineRegistry::instance().make("stride", sys);
    ASSERT_NE(stride, nullptr);
    EXPECT_EQ(stride->name(), "stride");
}

TEST(EngineRegistryTest, RuntimeExtensionEnumeratesAfterBuiltins)
{
    ASSERT_TRUE(EngineRegistry::instance().add(
        "test-null-engine", 1000, 7,
        [](const SystemConfig &sys, const EngineOptions &opt) {
            return std::make_unique<TmsPrefetcher>(
                tmsParamsFor(sys, opt));
        }));
    EXPECT_EQ(
        EngineRegistry::instance().stateVersion("test-null-engine"),
        7u);
    auto names = EngineRegistry::instance().names();
    ASSERT_FALSE(names.empty());
    EXPECT_EQ(names.back(), "test-null-engine");
    SystemConfig sys = defaultSystemConfig();
    EXPECT_NE(EngineRegistry::instance().make("test-null-engine",
                                              sys),
              nullptr);
}

TEST(EngineRegistryTest, StateVersionFoldsIntoSpecDescription)
{
    // Every builtin's version appears in its spec description, so a
    // bump changes every result/checkpoint digest derived from it.
    for (const std::string &name :
         EngineRegistry::instance().names()) {
        std::uint32_t v = EngineRegistry::instance().stateVersion(name);
        std::string spec = describeEngineSpec(name, {});
        EXPECT_NE(spec.find("stateVersion=" + std::to_string(v) +
                            "\n"),
                  std::string::npos)
            << spec;
    }
    EXPECT_EQ(EngineRegistry::instance().stateVersion("no-such"), 0u);
}

TEST(EngineRegistryTest, StateVersionBumpChangesSpecDescription)
{
    std::string before = describeEngineSpec("stems", {});
    std::uint32_t old_version =
        EngineRegistry::instance().setStateVersion("stems", 99);
    std::string bumped = describeEngineSpec("stems", {});
    EngineRegistry::instance().setStateVersion("stems", old_version);
    EXPECT_NE(before, bumped);
    EXPECT_EQ(describeEngineSpec("stems", {}), before);
    // Unknown names are a no-op.
    EXPECT_EQ(EngineRegistry::instance().setStateVersion("no-such", 5),
              0u);
    EXPECT_EQ(EngineRegistry::instance().stateVersion("no-such"), 0u);
}

TEST(EngineRegistryTest, TmsOverridesApply)
{
    SystemConfig sys = defaultSystemConfig();

    EngineOptions none;
    EXPECT_EQ(tmsParamsFor(sys, none).lookahead, sys.tms.lookahead);

    EngineOptions sci;
    sci.scientific = true;
    EXPECT_EQ(tmsParamsFor(sys, sci).lookahead, 12u);

    EngineOptions explicit_wins;
    explicit_wins.scientific = true;
    explicit_wins.lookahead = 5;
    explicit_wins.bufferEntries = 4096;
    explicit_wins.streamQueues = 3;
    TmsParams p = tmsParamsFor(sys, explicit_wins);
    EXPECT_EQ(p.lookahead, 5u);
    EXPECT_EQ(p.bufferEntries, 4096u);
    EXPECT_EQ(p.numStreams, 3u);
}

// ---- workload registry ----

TEST(WorkloadRegistryTest, PaperSuiteInFigureOrder)
{
    const std::vector<std::string> expected = {
        "web-apache", "web-zeus", "oltp-db2", "oltp-oracle",
        "dss-qry2",   "dss-qry16", "dss-qry17", "em3d",
        "ocean",      "sparse"};
    EXPECT_EQ(prefix(WorkloadRegistry::instance().names(), 10),
              expected);
}

TEST(WorkloadRegistryTest, EnumerationIsStable)
{
    auto a = WorkloadRegistry::instance().names();
    auto b = WorkloadRegistry::instance().names();
    EXPECT_EQ(a, b);
}

TEST(WorkloadRegistryTest, UnknownNameReturnsNull)
{
    EXPECT_EQ(WorkloadRegistry::instance().make("no-such"), nullptr);
    EXPECT_EQ(makeWorkload("no-such"), nullptr);
    EXPECT_FALSE(WorkloadRegistry::instance().contains("no-such"));
}

TEST(WorkloadRegistryTest, MakeAllMatchesNames)
{
    auto names = WorkloadRegistry::instance().names();
    auto all = makeAllWorkloads();
    ASSERT_EQ(all.size(), names.size());
    for (std::size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(all[i]->name(), names[i]);
}

TEST(WorkloadRegistryTest, DuplicateRegistrationRejected)
{
    EXPECT_FALSE(WorkloadRegistry::instance().add(
        "oltp-db2", 999, [] {
            return std::unique_ptr<Workload>();
        }));
    EXPECT_NE(makeWorkload("oltp-db2"), nullptr);
}

/** Minimal workload for runtime-extension tests. */
class TinyWorkload : public Workload
{
  public:
    std::string name() const override { return "test-tiny"; }
    WorkloadClass
    workloadClass() const override
    {
        return WorkloadClass::kOltp;
    }
    Trace
    generate(std::uint64_t seed,
             std::size_t target_records) const override
    {
        TraceBuilder b;
        Rng rng(seed);
        while (b.size() < target_records)
            b.read(0x100000 + rng.below(64) * kBlockBytes, 0x1);
        return b.take();
    }
};

TEST(WorkloadRegistryTest, RuntimeExtensionEnumeratesAfterSuite)
{
    ASSERT_TRUE(WorkloadRegistry::instance().add(
        "test-tiny", 1000,
        [] { return std::make_unique<TinyWorkload>(); }));
    auto names = WorkloadRegistry::instance().names();
    ASSERT_FALSE(names.empty());
    EXPECT_EQ(names.back(), "test-tiny");
    auto w = makeWorkload("test-tiny");
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->generate(1, 100).size(), 100u);
}

} // namespace
} // namespace stems
