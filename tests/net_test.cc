/**
 * @file
 * Sweep-service tests: the frame codec's reject-never-misdecode
 * contract under truncation, corruption and hostile lengths; the
 * protocol payload codecs; and the end-to-end loopback property the
 * whole service is built on — a coordinator plus N workers over a
 * shared store produces results bitwise identical to a
 * single-process sweep of the same plan, including when a worker
 * vanishes mid-sweep and its unit is requeued.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <thread>

#include "common/state_codec.hh"
#include "net/coord.hh"
#include "net/frame.hh"
#include "net/protocol.hh"
#include "net/socket.hh"
#include "net/worker.hh"
#include "obs/metrics.hh"
#include "sim/driver.hh"
#include "store/trace_store.hh"
#include "test_util.hh"

namespace stems {
namespace {

std::vector<std::uint8_t>
bytesOf(const char *text)
{
    return std::vector<std::uint8_t>(
        text, text + std::strlen(text));
}

// ---- frame codec -------------------------------------------------

TEST(Frame, RoundTripsThroughArbitraryChunking)
{
    const std::vector<std::uint8_t> payload =
        bytesOf("hello sweep service");
    const std::vector<std::uint8_t> wire = encodeFrame(7, payload);

    for (std::size_t chunk = 1; chunk <= wire.size(); ++chunk) {
        FrameParser parser;
        for (std::size_t at = 0; at < wire.size(); at += chunk)
            parser.feed(wire.data() + at,
                        std::min(chunk, wire.size() - at));
        Frame out;
        ASSERT_TRUE(parser.next(out)) << "chunk " << chunk;
        EXPECT_EQ(out.type, 7u);
        EXPECT_EQ(out.payload, payload);
        EXPECT_FALSE(parser.next(out));
        EXPECT_FALSE(parser.error());
    }
}

TEST(Frame, BackToBackFramesDecodeInOrder)
{
    std::vector<std::uint8_t> wire = encodeFrame(1, bytesOf("a"));
    const auto second = encodeFrame(2, bytesOf("bb"));
    const auto third = encodeFrame(3, {});
    wire.insert(wire.end(), second.begin(), second.end());
    wire.insert(wire.end(), third.begin(), third.end());

    FrameParser parser;
    parser.feed(wire.data(), wire.size());
    Frame out;
    ASSERT_TRUE(parser.next(out));
    EXPECT_EQ(out.type, 1u);
    ASSERT_TRUE(parser.next(out));
    EXPECT_EQ(out.type, 2u);
    ASSERT_TRUE(parser.next(out));
    EXPECT_EQ(out.type, 3u);
    EXPECT_TRUE(out.payload.empty());
    EXPECT_FALSE(parser.next(out));
    EXPECT_EQ(parser.bufferedBytes(), 0u);
}

TEST(Frame, TruncationIsNotAFrame)
{
    const auto wire = encodeFrame(5, bytesOf("payload"));
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
        FrameParser parser;
        parser.feed(wire.data(), cut);
        Frame out;
        EXPECT_FALSE(parser.next(out)) << "cut " << cut;
        EXPECT_FALSE(parser.error()) << "cut " << cut;
    }
}

TEST(Frame, BadMagicLatchesError)
{
    auto wire = encodeFrame(5, bytesOf("payload"));
    wire[0] ^= 0xFF;
    FrameParser parser;
    parser.feed(wire.data(), wire.size());
    Frame out;
    EXPECT_FALSE(parser.next(out));
    EXPECT_TRUE(parser.error());
    // Latched: later valid bytes are ignored.
    const auto good = encodeFrame(1, {});
    parser.feed(good.data(), good.size());
    EXPECT_FALSE(parser.next(out));
    EXPECT_TRUE(parser.error());
}

TEST(Frame, OversizedLengthRejectedWithoutBuffering)
{
    // A hostile header announcing a huge payload must be rejected
    // from the 20 header bytes alone — nothing buffered, no
    // allocation sized from the length field.
    auto wire = encodeFrame(5, bytesOf("x"));
    const std::uint64_t huge = ~std::uint64_t(0);
    std::memcpy(wire.data() + 8, &huge, sizeof(huge));
    FrameParser parser;
    parser.feed(wire.data(), kFrameHeaderBytes);
    EXPECT_TRUE(parser.error());
    EXPECT_EQ(parser.bufferedBytes(), 0u);

    // Just over the cap is rejected; the cap itself is not.
    auto over = encodeFrame(5, {});
    const std::uint64_t limit = kMaxFramePayload + 1;
    std::memcpy(over.data() + 8, &limit, sizeof(limit));
    FrameParser parser2;
    parser2.feed(over.data(), over.size());
    EXPECT_TRUE(parser2.error());
}

TEST(Frame, PayloadCorruptionFailsTheChecksum)
{
    const auto payload = bytesOf("the checksummed payload bytes");
    for (std::size_t bit = 0; bit < payload.size() * 8; bit += 13) {
        auto wire = encodeFrame(9, payload);
        wire[kFrameHeaderBytes + bit / 8] ^=
            static_cast<std::uint8_t>(1u << (bit % 8));
        FrameParser parser;
        parser.feed(wire.data(), wire.size());
        Frame out;
        EXPECT_FALSE(parser.next(out)) << "bit " << bit;
        EXPECT_TRUE(parser.error()) << "bit " << bit;
    }
}

TEST(Frame, FuzzedStreamsNeverMisdecode)
{
    // Deterministic xorshift fuzz: flip random bytes in a valid
    // multi-frame stream. Every outcome must be either the original
    // frames or a latched error — never a different decoded frame,
    // never unbounded buffering.
    const auto payload = bytesOf("fuzz target payload");
    std::vector<std::uint8_t> clean;
    for (std::uint32_t t = 1; t <= 4; ++t) {
        const auto f = encodeFrame(t, payload);
        clean.insert(clean.end(), f.begin(), f.end());
    }
    std::uint64_t state = 0x9e3779b97f4a7c15ULL;
    auto next_rand = [&state]() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    };
    for (int round = 0; round < 500; ++round) {
        auto fuzzed = clean;
        const int flips = 1 + static_cast<int>(next_rand() % 3);
        for (int i = 0; i < flips; ++i)
            fuzzed[next_rand() % fuzzed.size()] ^=
                static_cast<std::uint8_t>(next_rand() % 255 + 1);
        FrameParser parser;
        parser.feed(fuzzed.data(), fuzzed.size());
        Frame out;
        std::uint32_t expect_type = 1;
        while (parser.next(out)) {
            ASSERT_LE(expect_type, 4u);
            EXPECT_EQ(out.type, expect_type);
            EXPECT_EQ(out.payload, payload);
            expect_type++;
        }
        EXPECT_LE(parser.bufferedBytes(), fuzzed.size());
    }
}

// ---- protocol payloads -------------------------------------------

UnitMsg
sampleUnit()
{
    UnitMsg unit;
    unit.unitIndex = 3;
    unit.workload = "oltp-db2";
    unit.kind = UnitKind::kSegment;
    unit.column = 1;
    unit.segBegin = 10'000;
    unit.segEnd = 20'000;
    unit.finalSegment = true;
    unit.prefetchWorkload = "web-apache";
    return unit;
}

TEST(Protocol, PayloadsRoundTrip)
{
    HelloMsg hello;
    hello.sessionId = 0x77;
    HelloMsg hello2;
    ASSERT_TRUE(decodeHello(encodeHello(hello), hello2));
    EXPECT_EQ(hello2.version, kNetProtocolVersion);
    EXPECT_EQ(hello2.sessionId, 0x77u);

    PlanMsg plan;
    plan.planDigest = 0x1234567890abcdefULL;
    plan.planJson = "{\"k\": 1}\n";
    plan.sessionId = 9;
    PlanMsg plan2;
    ASSERT_TRUE(decodePlanMsg(encodePlanMsg(plan), plan2));
    EXPECT_EQ(plan2.planDigest, plan.planDigest);
    EXPECT_EQ(plan2.planJson, plan.planJson);
    EXPECT_EQ(plan2.sessionId, 9u);

    PlanAckMsg ack{42};
    PlanAckMsg ack2;
    ASSERT_TRUE(decodePlanAck(encodePlanAck(ack), ack2));
    EXPECT_EQ(ack2.planDigest, 42u);

    const UnitMsg unit = sampleUnit();
    UnitMsg unit2;
    ASSERT_TRUE(decodeUnit(encodeUnit(unit), unit2));
    EXPECT_EQ(unit2.unitIndex, 3u);
    EXPECT_EQ(unit2.workload, "oltp-db2");
    EXPECT_EQ(unit2.kind, UnitKind::kSegment);
    EXPECT_EQ(unit2.column, 1);
    EXPECT_EQ(unit2.segBegin, 10'000u);
    EXPECT_EQ(unit2.segEnd, 20'000u);
    EXPECT_TRUE(unit2.finalSegment);
    EXPECT_EQ(unit2.prefetchWorkload, "web-apache");

    // The baseline column (-1) survives the biased encoding.
    UnitMsg baseline = sampleUnit();
    baseline.column = -1;
    UnitMsg baseline2;
    ASSERT_TRUE(decodeUnit(encodeUnit(baseline), baseline2));
    EXPECT_EQ(baseline2.column, -1);

    UnitDoneMsg done{3};
    UnitDoneMsg done2;
    ASSERT_TRUE(decodeUnitDone(encodeUnitDone(done), done2));
    EXPECT_EQ(done2.unitIndex, 3u);

    ResumeMsg resume;
    resume.sessionId = 5;
    resume.unitIndex = 12;
    resume.lastCheckpointIndex = 30'000;
    ResumeMsg resume2;
    ASSERT_TRUE(decodeResume(encodeResume(resume), resume2));
    EXPECT_EQ(resume2.sessionId, 5u);
    EXPECT_EQ(resume2.unitIndex, 12u);
    EXPECT_EQ(resume2.lastCheckpointIndex, 30'000u);

    ResumeAckMsg verdict;
    verdict.unitIndex = 12;
    verdict.accepted = true;
    ResumeAckMsg verdict2;
    ASSERT_TRUE(
        decodeResumeAck(encodeResumeAck(verdict), verdict2));
    EXPECT_EQ(verdict2.unitIndex, 12u);
    EXPECT_TRUE(verdict2.accepted);
}

TEST(Protocol, RejectsTruncationAndWrongTags)
{
    const auto unit = encodeUnit(sampleUnit());
    UnitMsg out;
    for (std::size_t cut = 0; cut < unit.size(); ++cut)
        EXPECT_FALSE(decodeUnit(
            std::vector<std::uint8_t>(unit.begin(),
                                      unit.begin() + cut),
            out))
            << "cut " << cut;
    ResumeMsg resume_in;
    const auto resume = encodeResume(resume_in);
    ResumeMsg resume_out;
    for (std::size_t cut = 0; cut < resume.size(); ++cut)
        EXPECT_FALSE(decodeResume(
            std::vector<std::uint8_t>(resume.begin(),
                                      resume.begin() + cut),
            resume_out))
            << "cut " << cut;
    // A different message's bytes are not a unit (or a resume).
    HelloMsg hello;
    EXPECT_FALSE(decodeUnit(encodeHello(hello), out));
    EXPECT_FALSE(decodeResume(encodeUnit(sampleUnit()),
                              resume_out));
    UnitDoneMsg done_out;
    EXPECT_FALSE(decodeUnitDone(encodeUnit(sampleUnit()),
                                done_out));
    ResumeAckMsg verdict_out;
    EXPECT_FALSE(decodeResumeAck(encodeUnitDone(UnitDoneMsg{1}),
                                 verdict_out));
}

TEST(Protocol, V1ShortHelloStillDecodes)
{
    // The v1 Hello stopped after the version word. Decoding it —
    // rather than rejecting — is what lets a v2 coordinator read an
    // old peer's greeting and refuse it with a polite kMsgBye
    // instead of slamming the socket mid-handshake.
    StateWriter w;
    w.tag(stateTag('N', 'H', 'L', 'O'));
    w.u32(1);
    HelloMsg out;
    ASSERT_TRUE(decodeHello(w.take(), out));
    EXPECT_EQ(out.version, 1u);
    EXPECT_EQ(out.sessionId, 0u);
}

TEST(Protocol, ByteFlipFuzzNeverMisdecodes)
{
    // Reject-never-misdecode, payload layer: flip bytes in every
    // message type's canonical encoding. Any mutation the decoder
    // accepts must re-encode to exactly the mutated bytes — i.e.
    // acceptance means the bytes really are some valid message, not
    // a misreading of a corrupted one. (The frame CRC below this
    // layer catches wire corruption; this pins the codec's own
    // honesty against anything that slips through.)
    struct Case
    {
        const char *name;
        std::vector<std::uint8_t> clean;
        std::function<bool(const std::vector<std::uint8_t> &,
                           std::vector<std::uint8_t> &)>
            recode;
    };
    HelloMsg hello;
    hello.sessionId = 3;
    PlanMsg plan;
    plan.planDigest = 0xfeedULL;
    plan.planJson = "{\"records\": 1000}\n";
    plan.sessionId = 2;
    ResumeMsg resume;
    resume.sessionId = 4;
    resume.unitIndex = 7;
    resume.lastCheckpointIndex = 123;
    ResumeAckMsg verdict;
    verdict.unitIndex = 7;
    verdict.accepted = true;
    std::vector<Case> cases;
    cases.push_back(
        {"hello", encodeHello(hello),
         [](const std::vector<std::uint8_t> &in,
            std::vector<std::uint8_t> &again) {
             HelloMsg m;
             if (!decodeHello(in, m))
                 return false;
             again = encodeHello(m);
             return true;
         }});
    cases.push_back(
        {"plan", encodePlanMsg(plan),
         [](const std::vector<std::uint8_t> &in,
            std::vector<std::uint8_t> &again) {
             PlanMsg m;
             if (!decodePlanMsg(in, m))
                 return false;
             again = encodePlanMsg(m);
             return true;
         }});
    cases.push_back(
        {"unit", encodeUnit(sampleUnit()),
         [](const std::vector<std::uint8_t> &in,
            std::vector<std::uint8_t> &again) {
             UnitMsg m;
             if (!decodeUnit(in, m))
                 return false;
             again = encodeUnit(m);
             return true;
         }});
    cases.push_back(
        {"resume", encodeResume(resume),
         [](const std::vector<std::uint8_t> &in,
            std::vector<std::uint8_t> &again) {
             ResumeMsg m;
             if (!decodeResume(in, m))
                 return false;
             again = encodeResume(m);
             return true;
         }});
    cases.push_back(
        {"resume-ack", encodeResumeAck(verdict),
         [](const std::vector<std::uint8_t> &in,
            std::vector<std::uint8_t> &again) {
             ResumeAckMsg m;
             if (!decodeResumeAck(in, m))
                 return false;
             again = encodeResumeAck(m);
             return true;
         }});

    std::uint64_t state = 0x2545f4914f6cdd1dULL;
    auto next_rand = [&state]() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    };
    for (const Case &c : cases) {
        // Exhaustive single-byte flips plus random multi-flips.
        for (std::size_t at = 0; at < c.clean.size(); ++at) {
            for (std::uint8_t bit = 0; bit < 8; ++bit) {
                auto fuzzed = c.clean;
                fuzzed[at] ^= static_cast<std::uint8_t>(1u << bit);
                std::vector<std::uint8_t> again;
                if (c.recode(fuzzed, again)) {
                    EXPECT_EQ(again, fuzzed)
                        << c.name << " byte " << at << " bit "
                        << int(bit);
                }
            }
        }
        for (int round = 0; round < 200; ++round) {
            auto fuzzed = c.clean;
            const int flips = 1 + static_cast<int>(next_rand() % 4);
            for (int i = 0; i < flips; ++i)
                fuzzed[next_rand() % fuzzed.size()] ^=
                    static_cast<std::uint8_t>(next_rand() % 255 +
                                              1);
            std::vector<std::uint8_t> again;
            if (c.recode(fuzzed, again)) {
                EXPECT_EQ(again, fuzzed) << c.name;
            }
        }
    }
}

// ---- loopback coordinator/worker sweeps --------------------------

class NetSweepTest : public test::TempDirTest
{
  protected:
    SweepPlan
    smallPlan(std::vector<std::string> workloads) const
    {
        SweepPlan plan;
        plan.workloads = std::move(workloads);
        plan.engines = {PlanEngine{"tms", "", {}},
                        PlanEngine{"stems", "", {}}};
        plan.records = 20'000;
        plan.jobs = 2;
        return plan;
    }

    std::vector<WorkloadResult>
    referenceRun(const SweepPlan &plan) const
    {
        ExperimentDriver driver;
        return driver.run(plan);
    }

    /** Serve `plan` to the given worker option sets (one thread
     *  each), then merge over the warm store. */
    std::vector<WorkloadResult>
    distributedRun(const SweepPlan &plan,
                   std::vector<WorkerOptions> workers,
                   SweepCoordinator &coord)
    {
        std::filesystem::create_directories(dir_);
        std::string error;
        EXPECT_TRUE(coord.listen(0, &error)) << error;
        std::vector<std::thread> threads;
        std::vector<WorkerReport> reports(workers.size());
        std::vector<std::string> worker_errors(workers.size());
        std::vector<bool> worker_ok(workers.size(), false);
        for (std::size_t i = 0; i < workers.size(); ++i) {
            workers[i].port = coord.port();
            threads.emplace_back([&, i] {
                worker_ok[i] = runWorker(
                    workers[i], &reports[i], &worker_errors[i]);
            });
        }
        const bool served = coord.serve(120.0, &error);
        for (std::thread &t : threads)
            t.join();
        EXPECT_TRUE(served) << error;
        for (std::size_t i = 0; i < workers.size(); ++i)
            EXPECT_TRUE(worker_ok[i])
                << "worker " << i << ": " << worker_errors[i];

        ExperimentDriver merge;
        merge.setStore(std::make_shared<TraceStore>(dir_));
        return merge.run(plan);
    }
};

TEST_F(NetSweepTest, TwoWorkersMatchSingleProcessBitwise)
{
    const SweepPlan plan =
        smallPlan({"oltp-db2", "web-apache", "em3d"});
    SweepCoordinator coord(plan);
    WorkerOptions worker;
    worker.storeDir = dir_;
    const auto distributed =
        distributedRun(plan, {worker, worker}, coord);
    EXPECT_EQ(coord.unitsCompleted(), 3u);
    EXPECT_EQ(coord.unitsRequeued(), 0u);

    test::expectSameResults(distributed, referenceRun(plan));

    // A later client over the warm store must simulate nothing:
    // zero trace generations, zero baseline sims, zero engine sims
    // (counter deltas in the process-wide registry).
    const MetricsSnapshot before =
        MetricsRegistry::instance().snapshot();
    ExperimentDriver warm;
    warm.setStore(std::make_shared<TraceStore>(dir_));
    test::expectSameResults(warm.run(plan), distributed);
    const MetricsSnapshot after =
        MetricsRegistry::instance().snapshot();
    auto delta = [&](const char *name) {
        auto get = [&](const MetricsSnapshot &s) {
            auto it = s.counters.find(name);
            return it == s.counters.end() ? std::uint64_t(0)
                                          : it->second;
        };
        return get(after) - get(before);
    };
    EXPECT_EQ(delta("driver.trace.generated"), 0u);
    EXPECT_EQ(delta("driver.cell.baseline"), 0u);
    EXPECT_EQ(delta("driver.cell.engine"), 0u);
}

TEST_F(NetSweepTest, AbandonedUnitIsRequeuedAndResultsMatch)
{
    const SweepPlan plan =
        smallPlan({"oltp-db2", "web-apache", "em3d"});
    SweepCoordinator coord(plan);
    WorkerOptions quitter;
    quitter.storeDir = dir_;
    quitter.abandonAfterUnits = 1; // vanish on the second unit
    WorkerOptions steady;
    steady.storeDir = dir_;
    const auto distributed =
        distributedRun(plan, {quitter, steady}, coord);
    EXPECT_EQ(coord.unitsCompleted(), 3u);

    test::expectSameResults(distributed, referenceRun(plan));
}

TEST_F(NetSweepTest, ServeTimesOutWithoutWorkers)
{
    const SweepPlan plan = smallPlan({"oltp-db2"});
    SweepCoordinator coord(plan);
    std::string error;
    ASSERT_TRUE(coord.listen(0, &error)) << error;
    EXPECT_FALSE(coord.serve(0.3, &error));
    EXPECT_NE(error.find("timed out"), std::string::npos) << error;
}

TEST_F(NetSweepTest, WorkerRefusesMissingStore)
{
    WorkerOptions worker;
    worker.storeDir = dir_ + "/does-not-exist";
    worker.port = 1; // never reached
    worker.connectTimeoutSeconds = 0.1;
    std::string error;
    EXPECT_FALSE(runWorker(worker, nullptr, &error));
    EXPECT_NE(error.find("store"), std::string::npos) << error;
}

// ---- cross-version handshakes ------------------------------------

TEST_F(NetSweepTest, OldWorkerHelloIsRefusedWithCleanBye)
{
    // A v1 peer greets with the short Hello form. The v2
    // coordinator must read it, answer kMsgBye, and close — a clean
    // refusal the old peer can report, never a hang or a
    // mid-handshake reset.
    const SweepPlan plan = smallPlan({"oltp-db2"});
    SweepCoordinator coord(plan);
    std::string error;
    ASSERT_TRUE(coord.listen(0, &error)) << error;

    bool got_bye = false;
    bool peer_done = false;
    std::thread peer([&] {
        int fd = connectWithRetry("127.0.0.1", coord.port(), 5.0);
        ASSERT_GE(fd, 0);
        FramedConn conn(fd);
        StateWriter w;
        w.tag(stateTag('N', 'H', 'L', 'O'));
        w.u32(1); // protocol version 1, pre-sessionId layout
        ASSERT_TRUE(conn.sendFrame(kMsgHello, w.take()));
        Frame frame;
        if (conn.recvFrame(frame))
            got_bye = frame.type == kMsgBye;
        // EOF follows: the coordinator closed after the Bye.
        Frame extra;
        EXPECT_FALSE(conn.recvFrame(extra));
        peer_done = true;
    });
    // No unit ever completes, so serve() must exit on its own
    // timeout — proving the refused peer did not wedge the loop.
    EXPECT_FALSE(coord.serve(2.0, &error));
    peer.join();
    EXPECT_TRUE(peer_done);
    EXPECT_TRUE(got_bye);
    EXPECT_EQ(coord.unitsCompleted(), 0u);
}

TEST_F(NetSweepTest, FutureVersionHelloIsRefusedWithCleanBye)
{
    const SweepPlan plan = smallPlan({"oltp-db2"});
    SweepCoordinator coord(plan);
    std::string error;
    ASSERT_TRUE(coord.listen(0, &error)) << error;

    bool got_bye = false;
    std::thread peer([&] {
        int fd = connectWithRetry("127.0.0.1", coord.port(), 5.0);
        ASSERT_GE(fd, 0);
        FramedConn conn(fd);
        HelloMsg hello;
        hello.version = kNetProtocolVersion + 7;
        ASSERT_TRUE(conn.sendFrame(kMsgHello, encodeHello(hello)));
        Frame frame;
        if (conn.recvFrame(frame))
            got_bye = frame.type == kMsgBye;
    });
    EXPECT_FALSE(coord.serve(2.0, &error));
    peer.join();
    EXPECT_TRUE(got_bye);
}

TEST_F(NetSweepTest, OldCoordinatorClosingOnHelloFailsCleanlyNoHang)
{
    // The inverse skew: a v1 coordinator cannot decode the longer
    // v2 Hello, so the best a worker can observe is a dropped
    // connection at the handshake stage. The worker must surface
    // that as a bounded, clean failure — not reconnect forever and
    // not hang.
    std::filesystem::create_directories(dir_);
    TraceStore seed(dir_); // materialize a usable store directory

    TcpListener listener;
    std::string error;
    ASSERT_TRUE(listener.open(0, &error)) << error;
    std::thread old_coord([&] {
        int fd = -1;
        while (fd < 0)
            fd = listener.accept();
        FramedConn conn(fd);
        // Read the greeting (an old decoder would reject it), then
        // slam the door the way a failed v1 handshake does.
        conn.readAvailable();
        conn.close();
    });

    WorkerOptions worker;
    worker.storeDir = dir_;
    worker.port = listener.port();
    worker.connectTimeoutSeconds = 2.0;
    std::string worker_error;
    EXPECT_FALSE(runWorker(worker, nullptr, &worker_error));
    EXPECT_FALSE(worker_error.empty());
    old_coord.join();
}

} // namespace
} // namespace stems
