/**
 * @file
 * Unit tests for trace records, the builder and binary trace I/O.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "trace/trace.hh"
#include "trace/trace_io.hh"

namespace stems {
namespace {

TEST(TraceBuilder, ReadWriteInvalidate)
{
    TraceBuilder b;
    b.read(0x1000, 0x400, 3);
    b.write(0x2000, 0x404, 1);
    b.invalidate(0x3000);
    Trace t = b.take();
    ASSERT_EQ(t.size(), 3u);
    EXPECT_TRUE(t[0].isRead());
    EXPECT_TRUE(t[1].isWrite());
    EXPECT_TRUE(t[2].isInvalidate());
    EXPECT_EQ(t[0].cpuOps, 3u);
    EXPECT_EQ(t[1].pc, 0x404u);
}

TEST(TraceBuilder, DependenceChaining)
{
    TraceBuilder b;
    b.read(0x1000, 1);
    b.read(0x2000, 2, 0, /*dep_on_prev_read=*/true);
    b.write(0x2040, 3);
    b.read(0x3000, 4, 0, true); // depends on read at index 1
    Trace t = b.take();
    EXPECT_EQ(t[0].depDist, 0u);
    EXPECT_EQ(t[1].depDist, 1u);
    EXPECT_EQ(t[3].depDist, 2u); // two records back (skips the write)
}

TEST(TraceBuilder, BreakChainClearsDependence)
{
    TraceBuilder b;
    b.read(0x1000, 1);
    b.breakChain();
    b.read(0x2000, 2, 0, true); // no prior read to depend on
    Trace t = b.take();
    EXPECT_EQ(t[1].depDist, 0u);
}

TEST(TraceSummary, Counts)
{
    TraceBuilder b;
    b.read(0x1000, 1, 5);
    b.read(0x1040, 1, 5, true);
    b.write(0x80000, 2, 2);
    b.invalidate(0x1000);
    TraceSummary s = summarize(b.take());
    EXPECT_EQ(s.records, 4u);
    EXPECT_EQ(s.reads, 2u);
    EXPECT_EQ(s.writes, 1u);
    EXPECT_EQ(s.invalidates, 1u);
    EXPECT_EQ(s.dependentReads, 1u);
    EXPECT_EQ(s.cpuOps, 12u);
    // 0x1000 and 0x1040 are separate blocks in the same region;
    // 0x80000 is its own block and region.
    EXPECT_EQ(s.distinctBlocks, 3u);
    EXPECT_EQ(s.distinctRegions, 2u);
}

class TraceIoTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = testing::TempDir() + "stems_trace_io_test.bin";
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

TEST_F(TraceIoTest, RoundTrip)
{
    TraceBuilder b;
    for (int i = 0; i < 100; ++i) {
        b.read(0x1000 + i * 64, 0x400 + i, i % 7,
               /*dep_on_prev_read=*/(i % 3) == 0 && i > 0);
        if (i % 10 == 0)
            b.write(0x90000 + i * 64, 0x500);
        if (i % 25 == 0)
            b.invalidate(0x1000 + i * 64);
    }
    Trace original = b.take();

    ASSERT_TRUE(writeTraceFile(path_, original));
    Trace loaded;
    ASSERT_TRUE(readTraceFile(path_, loaded));

    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(loaded[i].vaddr, original[i].vaddr);
        EXPECT_EQ(loaded[i].pc, original[i].pc);
        EXPECT_EQ(loaded[i].cpuOps, original[i].cpuOps);
        EXPECT_EQ(loaded[i].depDist, original[i].depDist);
        EXPECT_EQ(loaded[i].kind, original[i].kind);
    }
}

TEST_F(TraceIoTest, RejectsGarbage)
{
    std::FILE *f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "this is not a trace file at all";
    std::fwrite(junk, sizeof(junk), 1, f);
    std::fclose(f);

    Trace t;
    EXPECT_FALSE(readTraceFile(path_, t));
}

TEST_F(TraceIoTest, MissingFileFails)
{
    Trace t;
    EXPECT_FALSE(readTraceFile(path_ + ".does-not-exist", t));
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips)
{
    Trace empty;
    ASSERT_TRUE(writeTraceFile(path_, empty));
    Trace loaded;
    ASSERT_TRUE(readTraceFile(path_, loaded));
    EXPECT_TRUE(loaded.empty());
}

} // namespace
} // namespace stems
