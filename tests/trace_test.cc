/**
 * @file
 * Unit tests for trace records, the builder, binary trace I/O (both
 * encodings, including corruption/truncation rejection), the
 * TraceSource/mmap replay path, text-trace import/export, and the
 * randomized v2-codec property tests: arbitrary record streams
 * round-trip bitwise, and random single-byte corruption is always
 * rejected, never mis-decoded.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/rng.hh"
#include "test_util.hh"
#include "trace/text_trace.hh"
#include "trace/trace.hh"
#include "trace/trace_io.hh"
#include "trace/trace_source.hh"

namespace stems {
namespace {

using test::expectSameTrace;
using test::uniqueTestTag;

TEST(TraceBuilder, ReadWriteInvalidate)
{
    TraceBuilder b;
    b.read(0x1000, 0x400, 3);
    b.write(0x2000, 0x404, 1);
    b.invalidate(0x3000);
    Trace t = b.take();
    ASSERT_EQ(t.size(), 3u);
    EXPECT_TRUE(t[0].isRead());
    EXPECT_TRUE(t[1].isWrite());
    EXPECT_TRUE(t[2].isInvalidate());
    EXPECT_EQ(t[0].cpuOps, 3u);
    EXPECT_EQ(t[1].pc, 0x404u);
}

TEST(TraceBuilder, DependenceChaining)
{
    TraceBuilder b;
    b.read(0x1000, 1);
    b.read(0x2000, 2, 0, /*dep_on_prev_read=*/true);
    b.write(0x2040, 3);
    b.read(0x3000, 4, 0, true); // depends on read at index 1
    Trace t = b.take();
    EXPECT_EQ(t[0].depDist, 0u);
    EXPECT_EQ(t[1].depDist, 1u);
    EXPECT_EQ(t[3].depDist, 2u); // two records back (skips the write)
}

TEST(TraceBuilder, BreakChainClearsDependence)
{
    TraceBuilder b;
    b.read(0x1000, 1);
    b.breakChain();
    b.read(0x2000, 2, 0, true); // no prior read to depend on
    Trace t = b.take();
    EXPECT_EQ(t[1].depDist, 0u);
}

TEST(TraceSummary, Counts)
{
    TraceBuilder b;
    b.read(0x1000, 1, 5);
    b.read(0x1040, 1, 5, true);
    b.write(0x80000, 2, 2);
    b.invalidate(0x1000);
    TraceSummary s = summarize(b.take());
    EXPECT_EQ(s.records, 4u);
    EXPECT_EQ(s.reads, 2u);
    EXPECT_EQ(s.writes, 1u);
    EXPECT_EQ(s.invalidates, 1u);
    EXPECT_EQ(s.dependentReads, 1u);
    EXPECT_EQ(s.cpuOps, 12u);
    // 0x1000 and 0x1040 are separate blocks in the same region;
    // 0x80000 is its own block and region.
    EXPECT_EQ(s.distinctBlocks, 3u);
    EXPECT_EQ(s.distinctRegions, 2u);
}

/**
 * A trace exercising every MemRecord field: all three kinds,
 * non-zero PCs, dependence links, compute gaps, huge and backward
 * address jumps, and repeated-PC runs.
 */
Trace
fullFieldTrace()
{
    TraceBuilder b;
    b.read(0x1000, 0x400, 3);
    b.read(0x2000, 0x404, 0, /*dep_on_prev_read=*/true);
    b.write(0x2040, 0x404, 1);            // repeated PC
    b.read((Addr{1} << 47) + 0x40, 0x9);  // forward jump
    b.read(0x80, 0x9, 7, true);           // backward jump, dep
    b.invalidate(0x2000);                 // pc 0
    b.readWithProducer(0x3000, 0x500, 2, 0); // long dep link
    b.write(0x3040, 0x500, 0);
    b.invalidate((Addr{1} << 47) + 0x40);
    b.read(0x3080, 0x500, UINT32_MAX); // cpuOps at the type limit
    return b.take();
}

class TraceIoTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = testing::TempDir() + "stems_trace_io_test_" +
                uniqueTestTag() + ".bin";
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

TEST_F(TraceIoTest, RoundTrip)
{
    TraceBuilder b;
    for (int i = 0; i < 100; ++i) {
        b.read(0x1000 + i * 64, 0x400 + i, i % 7,
               /*dep_on_prev_read=*/(i % 3) == 0 && i > 0);
        if (i % 10 == 0)
            b.write(0x90000 + i * 64, 0x500);
        if (i % 25 == 0)
            b.invalidate(0x1000 + i * 64);
    }
    Trace original = b.take();

    ASSERT_TRUE(writeTraceFile(path_, original));
    Trace loaded;
    ASSERT_TRUE(readTraceFile(path_, loaded));

    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(loaded[i].vaddr, original[i].vaddr);
        EXPECT_EQ(loaded[i].pc, original[i].pc);
        EXPECT_EQ(loaded[i].cpuOps, original[i].cpuOps);
        EXPECT_EQ(loaded[i].depDist, original[i].depDist);
        EXPECT_EQ(loaded[i].kind, original[i].kind);
    }
}

TEST_F(TraceIoTest, RejectsGarbage)
{
    std::FILE *f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "this is not a trace file at all";
    std::fwrite(junk, sizeof(junk), 1, f);
    std::fclose(f);

    Trace t;
    EXPECT_FALSE(readTraceFile(path_, t));
}

TEST_F(TraceIoTest, MissingFileFails)
{
    Trace t;
    EXPECT_FALSE(readTraceFile(path_ + ".does-not-exist", t));
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips)
{
    Trace empty;
    ASSERT_TRUE(writeTraceFile(path_, empty));
    Trace loaded;
    ASSERT_TRUE(readTraceFile(path_, loaded));
    EXPECT_TRUE(loaded.empty());
}

TEST_F(TraceIoTest, EmptyTraceRoundTripsV2)
{
    Trace empty;
    ASSERT_TRUE(writeTraceFileV2(path_, empty));
    Trace loaded;
    ASSERT_TRUE(readTraceFile(path_, loaded));
    EXPECT_TRUE(loaded.empty());
}

TEST_F(TraceIoTest, EveryFieldRoundTripsV1)
{
    Trace original = fullFieldTrace();
    ASSERT_TRUE(writeTraceFile(path_, original));
    Trace loaded;
    ASSERT_TRUE(readTraceFile(path_, loaded));
    expectSameTrace(original, loaded);
}

TEST_F(TraceIoTest, EveryFieldRoundTripsV2)
{
    Trace original = fullFieldTrace();
    ASSERT_TRUE(writeTraceFileV2(path_, original));
    Trace loaded;
    ASSERT_TRUE(readTraceFile(path_, loaded));
    expectSameTrace(original, loaded);
}

TEST_F(TraceIoTest, DigestIsOrderAndFieldSensitive)
{
    Trace t = fullFieldTrace();
    std::uint64_t d = traceDigest(t);
    Trace swapped = t;
    std::swap(swapped[0], swapped[1]);
    EXPECT_NE(traceDigest(swapped), d);
    Trace tweaked = t;
    tweaked[3].cpuOps += 1;
    EXPECT_NE(traceDigest(tweaked), d);
    EXPECT_EQ(traceDigest(t), d); // stable
}

TEST_F(TraceIoTest, V2IsSmallerThanV1)
{
    TraceBuilder b;
    for (int i = 0; i < 2000; ++i)
        b.read(0x100000 + i * 64, 0x400, 2, i % 5 == 1);
    Trace t = b.take();
    ASSERT_TRUE(writeTraceFile(path_, t));
    std::FILE *f = std::fopen(path_.c_str(), "rb");
    std::fseek(f, 0, SEEK_END);
    long v1_bytes = std::ftell(f);
    std::fclose(f);
    ASSERT_TRUE(writeTraceFileV2(path_, t));
    f = std::fopen(path_.c_str(), "rb");
    std::fseek(f, 0, SEEK_END);
    long v2_bytes = std::ftell(f);
    std::fclose(f);
    EXPECT_LT(v2_bytes * 3, v1_bytes);
}

class TraceCorruptionTest : public TraceIoTest,
                            public ::testing::WithParamInterface<bool>
{
  protected:
    bool
    writeTestFile(const Trace &t)
    {
        return GetParam() ? writeTraceFileV2(path_, t)
                          : writeTraceFile(path_, t);
    }

    long
    fileSize()
    {
        std::FILE *f = std::fopen(path_.c_str(), "rb");
        std::fseek(f, 0, SEEK_END);
        long n = std::ftell(f);
        std::fclose(f);
        return n;
    }

    void
    truncateTo(long bytes)
    {
        std::FILE *f = std::fopen(path_.c_str(), "rb");
        std::vector<char> data(static_cast<std::size_t>(bytes));
        ASSERT_EQ(std::fread(data.data(), 1, data.size(), f),
                  data.size());
        std::fclose(f);
        f = std::fopen(path_.c_str(), "wb");
        ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), f),
                  data.size());
        std::fclose(f);
    }

    void
    flipByteAt(long offset)
    {
        std::FILE *f = std::fopen(path_.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        std::fseek(f, offset, SEEK_SET);
        int c = std::fgetc(f);
        std::fseek(f, offset, SEEK_SET);
        std::fputc(c ^ 0x5A, f);
        std::fclose(f);
    }
};

TEST_P(TraceCorruptionTest, TruncatedFileRejected)
{
    Trace t = fullFieldTrace();
    ASSERT_TRUE(writeTestFile(t));
    long full = fileSize();
    // Every strictly-shorter prefix must be rejected — including
    // cuts at record boundaries, which the pre-CRC v1 reader
    // silently accepted as a partial trace.
    for (long cut : {full - 1, full - 4, full - 5, full / 2, 21L}) {
        ASSERT_TRUE(writeTestFile(t));
        truncateTo(cut);
        Trace loaded;
        EXPECT_FALSE(readTraceFile(path_, loaded))
            << "accepted a file truncated to " << cut << " of "
            << full << " bytes";
    }
}

TEST_P(TraceCorruptionTest, CorruptPayloadByteRejected)
{
    Trace t = fullFieldTrace();
    ASSERT_TRUE(writeTestFile(t));
    long full = fileSize();
    // Flip single bytes across the record payload (past the
    // 20/32-byte headers): the CRC must catch each one.
    for (long off = 33; off < full - 4; off += 7) {
        ASSERT_TRUE(writeTestFile(t));
        flipByteAt(off);
        Trace loaded;
        EXPECT_FALSE(readTraceFile(path_, loaded))
            << "accepted a corrupt byte at offset " << off;
    }
}

TEST_P(TraceCorruptionTest, CorruptHeaderByteRejected)
{
    // The count/payload-length header fields are not covered by the
    // record CRC; a corrupt value there must fail cleanly (no giant
    // allocation, no crash), whatever byte it lands on.
    Trace t = fullFieldTrace();
    for (long off = 8; off < 32; ++off) {
        ASSERT_TRUE(writeTestFile(t));
        if (off >= fileSize())
            break;
        flipByteAt(off);
        Trace loaded;
        EXPECT_FALSE(readTraceFile(path_, loaded))
            << "accepted a corrupt header byte at offset " << off;
        if (GetParam()) {
            EXPECT_EQ(MmapTraceSource::open(path_), nullptr);
        }
    }
}

TEST_P(TraceCorruptionTest, TrailingGarbageRejected)
{
    Trace t = fullFieldTrace();
    ASSERT_TRUE(writeTestFile(t));
    std::FILE *f = std::fopen(path_.c_str(), "ab");
    std::fputc('x', f);
    std::fclose(f);
    Trace loaded;
    EXPECT_FALSE(readTraceFile(path_, loaded));
}

INSTANTIATE_TEST_SUITE_P(V1AndV2, TraceCorruptionTest,
                         ::testing::Values(false, true),
                         [](const auto &info) {
                             return info.param ? "v2" : "v1";
                         });

TEST_F(TraceIoTest, MmapSourceReplaysExactly)
{
    Trace original = fullFieldTrace();
    ASSERT_TRUE(writeTraceFileV2(path_, original));
    auto src = MmapTraceSource::open(path_);
    ASSERT_NE(src, nullptr);
    EXPECT_EQ(src->size(), original.size());
    Trace replayed;
    src->readAll(replayed);
    expectSameTrace(original, replayed);

    // reset() rewinds to the first record.
    src->reset();
    MemRecord r;
    ASSERT_TRUE(src->next(r));
    EXPECT_EQ(r.vaddr, original[0].vaddr);
}

TEST_F(TraceIoTest, MmapSourceRejectsV1AndCorruptFiles)
{
    Trace t = fullFieldTrace();
    ASSERT_TRUE(writeTraceFile(path_, t)); // v1
    EXPECT_EQ(MmapTraceSource::open(path_), nullptr);
    EXPECT_EQ(MmapTraceSource::open(path_ + ".missing"), nullptr);

    // openTraceSource falls back to an in-memory source for v1.
    auto src = openTraceSource(path_);
    ASSERT_NE(src, nullptr);
    Trace replayed;
    src->readAll(replayed);
    expectSameTrace(t, replayed);
}

class TextTraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = testing::TempDir() + "stems_text_trace_test_" +
                uniqueTestTag() + ".csv";
    }

    void TearDown() override { std::remove(path_.c_str()); }

    void
    writeText(const std::string &content)
    {
        std::ofstream out(path_);
        out << content;
    }

    std::string path_;
};

TEST_F(TextTraceTest, ParsesChampSimStyleLines)
{
    writeText("# comment line\n"
              "\n"
              "0x400,0x10000,R\n"
              "0x404 0x10040 W   # trailing comment\n"
              "1028,65664,0\n" // decimal fields, is_write=0
              "0x408,0x10080,1\n"
              "0,0x10000,I\n"
              "0x40c,0x100c0,r,3,2\n");
    Trace t;
    std::string error;
    ASSERT_TRUE(importTextTrace(path_, t, &error)) << error;
    ASSERT_EQ(t.size(), 6u);
    EXPECT_EQ(t[0].pc, 0x400u);
    EXPECT_EQ(t[0].vaddr, 0x10000u);
    EXPECT_TRUE(t[0].isRead());
    EXPECT_TRUE(t[1].isWrite());
    EXPECT_EQ(t[2].pc, 1028u);
    EXPECT_EQ(t[2].vaddr, 65664u);
    EXPECT_TRUE(t[2].isRead());
    EXPECT_TRUE(t[3].isWrite());
    EXPECT_TRUE(t[4].isInvalidate());
    EXPECT_EQ(t[5].cpuOps, 3u);
    EXPECT_EQ(t[5].depDist, 2u);
}

TEST_F(TextTraceTest, RejectsMalformedLinesWithLineNumbers)
{
    struct Case
    {
        const char *text;
        const char *needle;
    };
    const Case cases[] = {
        {"0x400,0x1000\n", "line 1"},          // too few fields
        {"0x400,0x1000,R\nzz,0x1,R\n", "line 2"},
        {"0x400,0x1000,X\n", "bad op"},
        {"0x400,0x1000,R,notanum\n", "bad cpuOps"},
        {"0x400,0x1000,R,1,2,3\n", "fields"},  // too many fields
    };
    for (const Case &c : cases) {
        writeText(c.text);
        Trace t;
        std::string error;
        EXPECT_FALSE(importTextTrace(path_, t, &error)) << c.text;
        EXPECT_NE(error.find(c.needle), std::string::npos)
            << "error was: " << error;
    }
}

TEST_F(TextTraceTest, ImportExportRoundTripIsExact)
{
    writeText("0x400,0x10000,R\n"
              "0x404,0x10040,W,5\n"
              "0,0x10000,I\n"
              "0x408,0x10080,R,0,3\n");
    Trace first;
    ASSERT_TRUE(importTextTrace(path_, first, nullptr));

    std::string exported = testing::TempDir() +
                           "stems_text_trace_export_" +
                           uniqueTestTag() + ".csv";
    ASSERT_TRUE(exportTextTrace(exported, first));
    Trace second;
    std::string error;
    ASSERT_TRUE(importTextTrace(exported, second, &error)) << error;
    std::remove(exported.c_str());
    expectSameTrace(first, second);
}

TEST_F(TextTraceTest, GeneratedWorkloadSurvivesTextRoundTrip)
{
    // Full-field records (dep links, cpuOps, invalidates) from the
    // builder survive export -> import exactly.
    Trace t = fullFieldTrace();
    ASSERT_TRUE(exportTextTrace(path_, t));
    Trace back;
    std::string error;
    ASSERT_TRUE(importTextTrace(path_, back, &error)) << error;
    expectSameTrace(t, back);
}

// ---- randomized codec properties ----

/**
 * Arbitrary record stream generator for the codec property tests.
 * Deliberately adversarial for the delta/varint v2 encoding: runs of
 * identical PCs (samePc tag paths), zero-stride address runs, huge
 * forward/backward jumps (maximum-width zigzag varints), optional
 * fields absent/small/at the 32-bit limit, and all three kinds.
 */
Trace
randomTrace(Rng &rng, std::size_t records)
{
    Trace t;
    t.reserve(records);
    Addr addr = 0x10000;
    Pc pc = 0x400;
    while (t.size() < records) {
        // Shape runs, not independent records: codec paths like
        // same-PC and zero-delta only trigger across neighbors.
        unsigned run = 1 + rng.below(8);
        unsigned shape = rng.below(6);
        for (unsigned i = 0; i < run && t.size() < records; ++i) {
            MemRecord r;
            switch (shape) {
            case 0: // sequential blocks, same PC
                addr += kBlockBytes;
                break;
            case 1: // zero-stride: same address repeated
                break;
            case 2: // huge random jump, random PC
                addr = rng.next64();
                pc = rng.next64();
                break;
            case 3: // backward jump
                addr -= rng.below(1 << 20);
                break;
            case 4: // new page, fresh small PC
                addr = (Addr{rng.next()} << 12);
                pc = rng.below(1 << 16);
                break;
            default: // small strided walk
                addr += (rng.below(9) - 4) * kBlockBytes;
                break;
            }
            r.vaddr = addr;
            r.pc = pc;
            unsigned kind = rng.below(10);
            r.kind = kind < 7 ? AccessKind::kRead
                     : kind < 9 ? AccessKind::kWrite
                                : AccessKind::kInvalidate;
            switch (rng.below(4)) {
            case 0:
                r.cpuOps = 0;
                break;
            case 1:
                r.cpuOps = rng.below(100);
                break;
            case 2:
                r.cpuOps = UINT32_MAX;
                break;
            default:
                r.cpuOps = rng.next();
                break;
            }
            r.depDist =
                rng.chance(0.3) ? rng.below(300) : 0;
            if (rng.chance(0.1))
                r.depDist = UINT32_MAX;
            t.push_back(r);
        }
    }
    return t;
}

TEST_F(TraceIoTest, PropertyRandomTracesRoundTripBitwise)
{
    // Seeded, so a failure reproduces; 24 shapes x both encodings x
    // both decode paths (materializing reader and mmap replay).
    Rng rng(0x7e57);
    for (int trial = 0; trial < 24; ++trial) {
        SCOPED_TRACE("trial " + std::to_string(trial));
        Trace original =
            randomTrace(rng, 1 + rng.below(1500));

        ASSERT_TRUE(writeTraceFileV2(path_, original));
        Trace via_reader;
        ASSERT_TRUE(readTraceFile(path_, via_reader));
        expectSameTrace(original, via_reader);

        auto src = MmapTraceSource::open(path_);
        ASSERT_NE(src, nullptr);
        Trace via_mmap;
        src->readAll(via_mmap);
        expectSameTrace(original, via_mmap);

        ASSERT_TRUE(writeTraceFile(path_, original)); // v1
        Trace via_v1;
        ASSERT_TRUE(readTraceFile(path_, via_v1));
        expectSameTrace(original, via_v1);
    }
}

TEST_F(TraceIoTest, PropertyRandomCorruptionAlwaysRejected)
{
    // Any single corrupted byte — header, payload or CRC — must make
    // every decode path reject the file; a mis-decode (success with
    // different records) is the one unacceptable outcome.
    Rng rng(0xBADF00D);
    Trace original = randomTrace(rng, 400);
    ASSERT_TRUE(writeTraceFileV2(path_, original));
    std::ifstream in(path_, std::ios::binary);
    std::vector<char> pristine(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    in.close();

    for (int trial = 0; trial < 80; ++trial) {
        std::vector<char> corrupt = pristine;
        std::size_t offset = rng.below(
            static_cast<std::uint32_t>(corrupt.size()));
        char flip = static_cast<char>(1 + rng.below(255));
        corrupt[offset] ^= flip;
        {
            std::ofstream out(path_, std::ios::binary);
            out.write(corrupt.data(),
                      static_cast<std::streamsize>(corrupt.size()));
        }
        SCOPED_TRACE("byte " + std::to_string(offset) + " xor " +
                     std::to_string(static_cast<int>(flip)));
        Trace loaded;
        EXPECT_FALSE(readTraceFile(path_, loaded));
        EXPECT_EQ(MmapTraceSource::open(path_), nullptr);
    }
}

TEST_F(TraceIoTest, PrefixDigestsMatchStandaloneHashes)
{
    Rng rng(0x5eed);
    Trace t = randomTrace(rng, 600);
    std::vector<std::size_t> indices = {0, 1, 299, 600};
    auto digests = tracePrefixDigests(t, indices);
    ASSERT_EQ(digests.size(), indices.size());
    // Each prefix digest equals hashing that prefix alone.
    for (std::size_t i = 0; i < indices.size(); ++i) {
        Trace prefix(t.begin(),
                     t.begin() + static_cast<std::ptrdiff_t>(
                                     indices[i]));
        auto alone = tracePrefixDigests(prefix, {indices[i]});
        EXPECT_EQ(digests[i], alone.at(0)) << indices[i];
    }
    // And a different prefix content changes the digest.
    Trace tweaked = t;
    tweaked[100].vaddr ^= 1;
    EXPECT_NE(tracePrefixDigests(tweaked, {299}).at(0),
              digests[2]);
    EXPECT_EQ(tracePrefixDigests(tweaked, {1}).at(0), digests[1]);
}

} // namespace
} // namespace stems
