/**
 * @file
 * Unit tests for the cache model, the two-level hierarchy and the
 * streamed value buffer.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "mem/svb.hh"

namespace stems {
namespace {

// A tiny cache keeps the tests deterministic: 4 blocks, 2 ways = 2 sets.
Cache
tinyCache()
{
    return Cache("tiny", 4 * kBlockBytes, 2);
}

TEST(Cache, MissThenHit)
{
    Cache c = tinyCache();
    EXPECT_FALSE(c.access(0x1000));
    c.insert(0x1000);
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_EQ(c.accesses(), 2u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, SameBlockDifferentBytes)
{
    Cache c = tinyCache();
    c.insert(0x1000);
    EXPECT_TRUE(c.access(0x1004));
    EXPECT_TRUE(c.access(0x103f));
    EXPECT_FALSE(c.contains(0x1040));
}

TEST(Cache, LruEvictionWithinSet)
{
    Cache c = tinyCache(); // 2 sets: block number parity selects set
    // Three blocks mapping to set 0 (even block numbers).
    Addr a = 0 * kBlockBytes;
    Addr b = 4 * kBlockBytes;
    Addr d = 8 * kBlockBytes;
    c.insert(a);
    c.insert(b);
    c.access(a); // b becomes LRU
    auto victim = c.insert(d);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->addr, b);
    EXPECT_TRUE(c.contains(a));
    EXPECT_FALSE(c.contains(b));
    EXPECT_TRUE(c.contains(d));
}

TEST(Cache, ReinsertResidentDoesNotEvict)
{
    Cache c = tinyCache();
    c.insert(0x0);
    c.insert(0x100); // same set (block numbers 0 and 4)
    auto victim = c.insert(0x0);
    EXPECT_FALSE(victim.has_value());
    EXPECT_TRUE(c.contains(0x100));
}

TEST(Cache, InvalidateRemovesBlock)
{
    Cache c = tinyCache();
    c.insert(0x2000);
    auto v = c.invalidate(0x2000);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->addr, 0x2000u);
    EXPECT_FALSE(c.contains(0x2000));
    EXPECT_FALSE(c.invalidate(0x2000).has_value());
}

TEST(Cache, PrefetchTagLifecycle)
{
    Cache c = tinyCache();
    c.insert(0x3000, /*prefetched=*/true);
    EXPECT_TRUE(c.isPrefetchedUnreferenced(0x3000));
    c.access(0x3000);
    EXPECT_FALSE(c.isPrefetchedUnreferenced(0x3000));
}

TEST(Cache, VictimReportsPrefetchMetadata)
{
    Cache c = tinyCache();
    Addr a = 0 * kBlockBytes;
    Addr b = 4 * kBlockBytes;
    Addr d = 8 * kBlockBytes;
    c.insert(a, true); // prefetched, never referenced
    c.insert(b);
    c.access(b);
    auto victim = c.insert(d); // evicts a (LRU)
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->addr, a);
    EXPECT_TRUE(victim->prefetched);
    EXPECT_FALSE(victim->referenced);
}

TEST(Hierarchy, L1ThenL2ThenMemory)
{
    HierarchyParams p;
    p.l1Bytes = 4 * kBlockBytes;
    p.l1Ways = 2;
    p.l2Bytes = 16 * kBlockBytes;
    p.l2Ways = 4;
    Hierarchy h(p);

    EXPECT_FALSE(h.accessL1(0x1000));
    EXPECT_FALSE(h.accessL2(0x1000).hit);
    h.fill(0x1000);
    EXPECT_TRUE(h.accessL1(0x1000));

    // Push 0x1000 out of tiny L1 with same-set fills.
    h.fill(0x1000 + 4 * kBlockBytes);
    h.fill(0x1000 + 8 * kBlockBytes);
    EXPECT_FALSE(h.accessL1(0x1000));
    EXPECT_TRUE(h.accessL2(0x1000).hit);
}

TEST(Hierarchy, L1EvictCallbackFires)
{
    HierarchyParams p;
    p.l1Bytes = 4 * kBlockBytes;
    p.l1Ways = 2;
    p.l2Bytes = 64 * kBlockBytes;
    p.l2Ways = 4;
    Hierarchy h(p);

    std::vector<Addr> evicted;
    h.setL1EvictCallback([&](Addr a) { evicted.push_back(a); });

    h.fill(0x0);
    h.fill(0x100);
    h.fill(0x200); // evicts 0x0 from L1 set 0
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0], 0x0u);

    h.invalidate(0x100);
    ASSERT_EQ(evicted.size(), 2u);
    EXPECT_EQ(evicted[1], 0x100u);
}

TEST(Hierarchy, PrefetchCoverageDetection)
{
    HierarchyParams p;
    p.l1Bytes = 4 * kBlockBytes;
    p.l1Ways = 2;
    p.l2Bytes = 64 * kBlockBytes;
    p.l2Ways = 4;
    Hierarchy h(p);

    h.fillPrefetchL2(0x5000);
    auto r = h.accessL2(0x5000);
    EXPECT_TRUE(r.hit);
    EXPECT_TRUE(r.coveredByPrefetch);

    // Second touch is an ordinary hit.
    r = h.accessL2(0x5000);
    EXPECT_TRUE(r.hit);
    EXPECT_FALSE(r.coveredByPrefetch);
}

TEST(Hierarchy, UnusedPrefetchDropCallback)
{
    HierarchyParams p;
    p.l1Bytes = 4 * kBlockBytes;
    p.l1Ways = 2;
    p.l2Bytes = 4 * kBlockBytes;
    p.l2Ways = 2;
    Hierarchy h(p);

    std::vector<Addr> dropped;
    h.setL2PrefetchDropCallback([&](Addr a) { dropped.push_back(a); });

    h.fillPrefetchL2(0x0);
    h.fill(0x100);
    h.fill(0x200); // evicts 0x0 (prefetched, unreferenced) from L2
    ASSERT_EQ(dropped.size(), 1u);
    EXPECT_EQ(dropped[0], 0x0u);

    // Invalidation of an unused prefetch also reports a drop.
    h.fillPrefetchL2(0x300);
    h.invalidate(0x300);
    ASSERT_EQ(dropped.size(), 2u);
    EXPECT_EQ(dropped[1], 0x300u);
}

TEST(Svb, InsertConsume)
{
    StreamedValueBuffer svb(4);
    svb.insert({0x1000, 3, 100});
    EXPECT_TRUE(svb.contains(0x1000));
    EXPECT_TRUE(svb.contains(0x1004)); // same block
    auto e = svb.consume(0x1004);
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->addr, 0x1000u);
    EXPECT_EQ(e->streamId, 3);
    EXPECT_EQ(e->readyTime, 100u);
    EXPECT_FALSE(svb.contains(0x1000));
}

TEST(Svb, LruEvictionReturnsUnused)
{
    StreamedValueBuffer svb(2);
    EXPECT_FALSE(svb.insert({0x0, 0, 0}).has_value());
    EXPECT_FALSE(svb.insert({0x40, 0, 0}).has_value());
    auto victim = svb.insert({0x80, 1, 0});
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->addr, 0x0u);
    EXPECT_EQ(svb.occupancy(), 2u);
}

TEST(Svb, ReinsertRefreshesInsteadOfEvicting)
{
    StreamedValueBuffer svb(2);
    svb.insert({0x0, 0, 0});
    svb.insert({0x40, 0, 0});
    EXPECT_FALSE(svb.insert({0x0, 5, 9}).has_value());
    auto e = svb.consume(0x0);
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->streamId, 5);
}

TEST(Svb, StreamOccupancy)
{
    StreamedValueBuffer svb(8);
    svb.insert({0x0, 1, 0});
    svb.insert({0x40, 1, 0});
    svb.insert({0x80, 2, 0});
    EXPECT_EQ(svb.occupancyForStream(1), 2u);
    EXPECT_EQ(svb.occupancyForStream(2), 1u);
    EXPECT_EQ(svb.occupancyForStream(3), 0u);
    EXPECT_EQ(svb.occupancy(), 3u);
}

TEST(Svb, InvalidateDrops)
{
    StreamedValueBuffer svb(4);
    svb.insert({0x1000, 0, 0});
    auto e = svb.invalidate(0x1000);
    EXPECT_TRUE(e.has_value());
    EXPECT_FALSE(svb.contains(0x1000));
}

} // namespace
} // namespace stems
