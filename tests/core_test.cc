/**
 * @file
 * Unit tests for the STeMS core: PST, RMOB, AGT, reconstruction
 * (including the paper's Figure 5 example), stream queues and the
 * assembled engine.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/stats.hh"
#include "core/agt.hh"
#include "core/pst.hh"
#include "core/reconstruction.hh"
#include "core/rmob.hh"
#include "core/stems.hh"
#include "core/stream.hh"
#include "sim/prefetch_sim.hh"

namespace stems {
namespace {

// ---- PST ----

TEST(Pst, TrainLookupRoundTrip)
{
    PatternSequenceTable pst;
    std::vector<SpatialElement> seq = {{4, 0}, {2, 1}, {31, 1}};
    std::uint32_t mask = (1u << 4) | (1u << 2) | (1u << 31);
    pst.train(7, seq, mask);
    pst.train(7, seq, mask); // counters reach the threshold

    std::vector<SpatialElement> out;
    ASSERT_TRUE(pst.lookup(7, out));
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].offset, 4);
    EXPECT_EQ(out[0].delta, 0);
    EXPECT_EQ(out[1].offset, 2);
    EXPECT_EQ(out[1].delta, 1);
    EXPECT_EQ(out[2].offset, 31);
}

TEST(Pst, SingleTrainingBelowThreshold)
{
    PatternSequenceTable pst;
    pst.train(7, {{4, 0}}, 1u << 4);
    std::vector<SpatialElement> out;
    EXPECT_TRUE(pst.lookup(7, out)); // entry exists...
    EXPECT_TRUE(out.empty());        // ...but nothing predicts yet
    EXPECT_EQ(pst.predictedMask(7), 0u);
}

TEST(Pst, CountersDecayForAbsentOffsets)
{
    PatternSequenceTable pst;
    std::uint32_t m49 = (1u << 4) | (1u << 9);
    pst.train(7, {{4, 0}, {9, 0}}, m49);
    pst.train(7, {{4, 0}, {9, 0}}, m49);
    pst.train(7, {{4, 0}}, 1u << 4);
    pst.train(7, {{4, 0}}, 1u << 4);
    // Offset 9 trained twice then decayed twice: back below
    // threshold; offset 4 saturated.
    EXPECT_EQ(pst.predictedMask(7), 1u << 4);
}

TEST(Pst, UnknownIndexFails)
{
    PatternSequenceTable pst;
    std::vector<SpatialElement> out;
    EXPECT_FALSE(pst.lookup(99, out));
    EXPECT_EQ(pst.predictedMask(99), 0u);
}

TEST(Pst, AccessMaskTrainsCountersWithoutSequence)
{
    PatternSequenceTable pst;
    // Blocks 5 and 6 touched but only 5 missed (6 was cache
    // resident): both counters must rise.
    pst.train(3, {{5, 0}}, (1u << 5) | (1u << 6));
    pst.train(3, {{5, 0}}, (1u << 5) | (1u << 6));
    EXPECT_EQ(pst.predictedMask(3), (1u << 5) | (1u << 6));
}

// ---- RMOB ----

TEST(Rmob, AppendLookup)
{
    RegionMissOrderBuffer rmob(16);
    auto p0 = rmob.append(0x1000, 0xAA, 0);
    auto p1 = rmob.append(0x2000, 0xBB, 3);
    EXPECT_EQ(p0, 0u);
    EXPECT_EQ(p1, 1u);
    auto e = rmob.at(p1);
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->addr, 0x2000u);
    EXPECT_EQ(e->pc16, 0xBB);
    EXPECT_EQ(e->delta, 3);
    EXPECT_EQ(rmob.lookup(0x1000).value(), p0);
}

TEST(Rmob, LookupReturnsMostRecent)
{
    RegionMissOrderBuffer rmob(16);
    rmob.append(0x1000, 1, 0);
    rmob.append(0x2000, 2, 0);
    auto p = rmob.append(0x1000, 3, 0);
    EXPECT_EQ(rmob.lookup(0x1000).value(), p);
}

TEST(Rmob, StaleIndexDetectedAfterWrap)
{
    RegionMissOrderBuffer rmob(4);
    rmob.append(0x1000, 1, 0);
    for (int i = 0; i < 4; ++i)
        rmob.append(0x9000 + Addr(i) * 64, 2, 0);
    // 0x1000's position was overwritten.
    EXPECT_FALSE(rmob.lookup(0x1000).has_value());
    EXPECT_FALSE(rmob.at(0).has_value());
}

TEST(Rmob, DeltaClamps)
{
    RegionMissOrderBuffer rmob(4);
    auto p = rmob.append(0x1000, 1, 10000);
    EXPECT_EQ(rmob.at(p)->delta, 255);
}

// ---- AGT ----

TEST(StemsAgtTest, OpenAccumulateEnd)
{
    StemsAgt agt;
    std::vector<StemsGeneration> ended;
    agt.setEndCallback(
        [&](const StemsGeneration &g) { ended.push_back(g); });

    Addr region = 0x40000;
    StemsGeneration &g = agt.open(region);
    g.mask = 1u << 3;
    g.accessMask = 1u << 3;
    g.sequence.push_back({7, 0});
    g.mask |= 1u << 7;

    // Removing an untouched block: nothing.
    agt.blockRemoved(addrFromRegionOffset(region, 20));
    EXPECT_TRUE(ended.empty());

    agt.blockRemoved(addrFromRegionOffset(region, 7));
    ASSERT_EQ(ended.size(), 1u);
    EXPECT_EQ(ended[0].sequence.size(), 1u);
    EXPECT_EQ(agt.find(region), nullptr);
}

TEST(StemsAgtTest, CapacityEvictionEndsVictim)
{
    StemsAgtParams p;
    p.entries = 2;
    StemsAgt agt(p);
    int ended = 0;
    agt.setEndCallback([&](const StemsGeneration &) { ++ended; });
    agt.open(0x10000).mask = 1;
    agt.open(0x20000).mask = 1;
    agt.open(0x30000).mask = 1; // evicts one of the first two
    EXPECT_EQ(ended, 1);
}

// ---- Reconstruction ----

/**
 * The paper's Figure 5 example: RMOB holds A,B,C,D with deltas such
 * that the reconstruction interleaves each region's spatial sequence
 * into the total order. We build the same structure with our delta
 * semantics (delta = elements strictly between; see DESIGN.md) and
 * verify the reconstructed order.
 *
 * Target order: A A+4 A+2 B B+6 A-1 C D D+1 D+2
 * Positions:    0  1   2  3  4   5  6 7  8   9
 */
TEST(Reconstruction, Figure5Example)
{
    Addr region_a = 0x100000 + kRegionBytes; // room for A-1
    Addr region_b = 0x200000;
    Addr region_c = 0x300000;
    Addr region_d = 0x400000;
    Addr a = addrFromRegionOffset(region_a, 8);
    Addr b = addrFromRegionOffset(region_b, 4);
    Addr c = addrFromRegionOffset(region_c, 2);
    Addr d = addrFromRegionOffset(region_d, 1);

    // Spatial sequences (offset, delta) relative to each trigger,
    // with deltas counting interleaved misses:
    // A: +4 at pos1 (delta 0), +2 at pos2 (delta 0), -1 at pos5
    //    (delta 2: B and B+6 intervene).
    // B: +6 at pos4 (delta 0).
    // D: +1 (delta 0), +2 (delta 0).
    PatternSequenceTable pst;
    auto train = [&](std::uint16_t pc, unsigned trig_off,
                     std::vector<SpatialElement> seq) {
        std::uint32_t mask = 0;
        for (auto &el : seq)
            mask |= 1u << el.offset;
        std::uint64_t idx = stemsPatternIndex(pc, trig_off);
        pst.train(idx, seq, mask);
        pst.train(idx, seq, mask);
    };
    train(0x1, 8, {{12, 0}, {10, 0}, {7, 2}});  // A+4, A+2, A-1
    train(0x2, 4, {{10, 0}});                   // B+6
    train(0x4, 1, {{2, 0}, {3, 0}});            // D+1, D+2

    // RMOB deltas: number of misses strictly between consecutive
    // RMOB entries in the target order:
    // A@0, B@3 (A+4, A+2 between: delta 2), C@6 (B+6, A-1: delta 2),
    // D@7 (delta 0).
    RegionMissOrderBuffer rmob(16);
    auto pos_a = rmob.append(a, 0x1, 0);
    rmob.append(b, 0x2, 2);
    rmob.append(c, 0x3, 2);
    rmob.append(d, 0x4, 0);

    Reconstructor recon(rmob, pst);
    auto w = recon.reconstruct(pos_a);
    ASSERT_TRUE(w.valid);

    std::vector<Addr> expect = {
        a,
        addrFromRegionOffset(region_a, 12), // A+4
        addrFromRegionOffset(region_a, 10), // A+2
        b,
        addrFromRegionOffset(region_b, 10), // B+6
        addrFromRegionOffset(region_a, 7),  // A-1
        c,
        d,
        addrFromRegionOffset(region_d, 2), // D+1
        addrFromRegionOffset(region_d, 3), // D+2
    };
    EXPECT_EQ(w.sequence, expect);
    // Everything fit in its original slot.
    EXPECT_EQ(recon.displacements().count(0),
              recon.displacements().total());
    EXPECT_EQ(recon.dropped(), 0u);
}

TEST(Reconstruction, DisplacementSearchResolvesCollisions)
{
    // Two regions whose spatial elements collide on the same slot.
    PatternSequenceTable pst;
    std::vector<SpatialElement> seq = {{5, 0}};
    pst.train(stemsPatternIndex(0x1, 0), seq, 1u << 5);
    pst.train(stemsPatternIndex(0x1, 0), seq, 1u << 5);
    pst.train(stemsPatternIndex(0x2, 0), seq, 1u << 5);
    pst.train(stemsPatternIndex(0x2, 0), seq, 1u << 5);

    RegionMissOrderBuffer rmob(8);
    Addr r1 = 0x100000, r2 = 0x200000;
    // Both entries delta 0: entry2 lands at slot 1, but region 1's
    // spatial element also wants slot 1.
    auto p = rmob.append(addrFromRegionOffset(r1, 0), 0x1, 0);
    rmob.append(addrFromRegionOffset(r2, 0), 0x2, 0);

    Reconstructor recon(rmob, pst);
    auto w = recon.reconstruct(p);
    ASSERT_TRUE(w.valid);
    // All four addresses must be present despite the collision.
    EXPECT_EQ(w.sequence.size(), 4u);
    EXPECT_GT(recon.displacements().fractionWithin(2), 0.99);
}

TEST(Reconstruction, InvalidStartPosition)
{
    PatternSequenceTable pst;
    RegionMissOrderBuffer rmob(4);
    Reconstructor recon(rmob, pst);
    auto w = recon.reconstruct(0);
    EXPECT_FALSE(w.valid);
    EXPECT_TRUE(w.sequence.empty());
}

TEST(Reconstruction, WindowEndsAtBufferSlots)
{
    PatternSequenceTable pst;
    RegionMissOrderBuffer rmob(1024);
    for (int i = 0; i < 600; ++i)
        rmob.append(0x100000 + Addr(i) * kRegionBytes, 0x1, 0);
    ReconstructionParams rp;
    rp.bufferSlots = 64;
    Reconstructor recon(rmob, pst, rp);
    auto w = recon.reconstruct(0);
    ASSERT_TRUE(w.valid);
    EXPECT_EQ(w.sequence.size(), 64u);
    EXPECT_EQ(w.nextPos, 64u);
    // Resuming covers the next window.
    auto w2 = recon.reconstruct(w.nextPos);
    ASSERT_TRUE(w2.valid);
    EXPECT_EQ(w2.sequence.front(),
              0x100000 + Addr(64) * kRegionBytes);
}

// ---- Stream queues ----

std::vector<PrefetchRequest>
drainStreams(StreamQueueSet &s)
{
    std::vector<PrefetchRequest> out;
    s.drainRequests(out);
    return out;
}

TEST(StreamQueues, ConfidenceRamp)
{
    StreamQueueSet s;
    int id = s.allocate({0x1000, 0x2000, 0x3000}, nullptr);
    auto reqs = drainStreams(s);
    ASSERT_EQ(reqs.size(), 1u); // ramp: one block
    EXPECT_EQ(reqs[0].addr, 0x1000u);
    EXPECT_EQ(reqs[0].streamId, id);

    s.onHit(id); // confirmed: opens to the lookahead
    reqs = drainStreams(s);
    EXPECT_EQ(reqs.size(), 2u);
}

TEST(StreamQueues, ConfirmedAllocationSkipsRamp)
{
    StreamParams p;
    p.lookahead = 4;
    StreamQueueSet s(p);
    s.allocate({0x1000, 0x2000, 0x3000, 0x4000, 0x5000}, nullptr,
               /*confirmed=*/true);
    EXPECT_EQ(drainStreams(s).size(), 4u);
}

TEST(StreamQueues, ResyncSkipsAhead)
{
    StreamQueueSet s;
    int id = s.allocate({0x1000, 0x2000, 0x3000, 0x4000}, nullptr);
    drainStreams(s); // 0x1000 issued
    // Demand missed 0x3000: within the resync window.
    EXPECT_TRUE(s.resync(0x3000));
    auto reqs = drainStreams(s);
    ASSERT_FALSE(reqs.empty());
    EXPECT_EQ(reqs[0].addr, 0x4000u);
    EXPECT_EQ(reqs[0].streamId, id);
    EXPECT_FALSE(s.resync(0x77777000)); // unknown address
}

TEST(StreamQueues, StaleIdIgnoredAfterReallocation)
{
    StreamParams p;
    p.numStreams = 1;
    StreamQueueSet s(p);
    int id1 = s.allocate({0x1000, 0x2000}, nullptr);
    drainStreams(s);
    int id2 = s.allocate({0x9000, 0xA000}, nullptr);
    EXPECT_NE(id1, id2);
    drainStreams(s);
    // A hit for the dead stream must not advance the new one.
    s.onHit(id1);
    EXPECT_TRUE(drainStreams(s).empty());
    // The live stream still works.
    s.onHit(id2);
    EXPECT_FALSE(drainStreams(s).empty());
}

TEST(StreamQueues, RefillExtendsStream)
{
    StreamParams p;
    p.lookahead = 2;
    p.refillLowWater = 2;
    StreamQueueSet s(p);
    int calls = 0;
    auto refill = [&](RingQueue<Addr> &pending, std::uint64_t &) {
        if (calls++ < 3)
            for (int i = 0; i < 4; ++i)
                pending.push_back(0x100000 + Addr(calls) * 0x1000 +
                                  Addr(i) * 64);
    };
    int id = s.allocate({0x1000}, refill);
    drainStreams(s);
    for (int i = 0; i < 12; ++i)
        s.onHit(id);
    drainStreams(s);
    EXPECT_GE(calls, 3);
}

// ---- Assembled engine ----

SimParams
tinySystem()
{
    SimParams p;
    p.hierarchy.l1Bytes = 16 * kBlockBytes;
    p.hierarchy.l1Ways = 2;
    p.hierarchy.l2Bytes = 64 * kBlockBytes;
    p.hierarchy.l2Ways = 4;
    return p;
}

TEST(StemsEngine, CoversRepeatedTemporalSequence)
{
    TraceBuilder b;
    for (int it = 0; it < 8; ++it)
        for (int i = 0; i < 400; ++i)
            b.read(0x1000000 + Addr(i) * 0x10000, 0x40, 0, true);
    Trace t = b.take();

    StemsPrefetcher engine;
    PrefetchSimulator sim(tinySystem(), &engine);
    sim.run(t, 800);
    const SimStats &s = sim.stats();
    EXPECT_GT(ratio(s.covered(), s.offChipReadEvents()), 0.9);
}

TEST(StemsEngine, SpatialOnlyStreamsCoverCompulsoryRegions)
{
    // DSS-style scan: fresh regions, same dense pattern, same code.
    TraceBuilder b;
    for (int page = 0; page < 400; ++page) {
        Addr base = 0x4000000 + Addr(page) * kRegionBytes;
        for (unsigned off = 0; off < 10; ++off)
            b.read(addrFromRegionOffset(base, off),
                   0x900 + off * 4, 0, false);
    }
    Trace t = b.take();

    StemsPrefetcher engine;
    PrefetchSimulator sim(tinySystem(), &engine);
    sim.run(t, t.size() / 2);
    const SimStats &s = sim.stats();
    // Triggers are compulsory; the other 9 blocks per page are
    // spatially predictable via spatial-only streams.
    EXPECT_GT(ratio(s.covered(), s.offChipReadEvents()), 0.7);
    EXPECT_GT(engine.spatialOnlyStreams(), 100u);
}

TEST(StemsEngine, FiltersSpatiallyPredictedMissesFromRmob)
{
    TraceBuilder b;
    for (int page = 0; page < 300; ++page) {
        Addr base = 0x4000000 + Addr(page) * kRegionBytes;
        for (unsigned off = 0; off < 8; ++off)
            b.read(addrFromRegionOffset(base, off),
                   0x900 + off * 4, 0, false);
    }
    Trace t = b.take();

    StemsPrefetcher engine;
    PrefetchSimulator sim(tinySystem(), &engine);
    sim.run(t);
    // Once the pattern trains, the 7 non-trigger misses per page stop
    // entering the RMOB (paper Section 4.1).
    EXPECT_GT(engine.filteredMisses(), 1000u);
    EXPECT_LT(engine.rmob().frontier(),
              sim.stats().offChipReadEvents());
}

TEST(StemsEngine, UncorrelatedTrafficStaysQuiet)
{
    Rng rng(5);
    TraceBuilder b;
    for (int i = 0; i < 3000; ++i)
        b.read((Addr{1} << 33) + Addr(rng.next()) * kBlockBytes,
               0x10 + rng.below(64) * 4, 0, false);
    Trace t = b.take();

    StemsPrefetcher engine;
    PrefetchSimulator sim(tinySystem(), &engine);
    sim.run(t);
    const SimStats &s = sim.stats();
    EXPECT_EQ(s.covered(), 0u);
    // No spurious prefetch storms on random traffic.
    EXPECT_LT(s.prefetchesIssued, 600u);
}

} // namespace
} // namespace stems
