/**
 * @file
 * Unit and property tests for the Sequitur grammar-inference engine.
 *
 * Correctness oracle: the grammar expansion must reproduce the input
 * exactly, and the two Sequitur invariants (digram uniqueness, rule
 * utility) must hold after every construction.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/sequitur.hh"
#include "common/rng.hh"

namespace stems {
namespace {

std::vector<std::uint64_t>
fromString(const std::string &s)
{
    std::vector<std::uint64_t> v;
    for (char c : s)
        v.push_back(static_cast<std::uint64_t>(c));
    return v;
}

void
buildAndVerify(const std::vector<std::uint64_t> &input, Sequitur &seq)
{
    for (auto v : input)
        seq.append(v);
    EXPECT_EQ(seq.expand(), input);
    EXPECT_TRUE(seq.checkInvariants());
}

TEST(Sequitur, EmptyAndSingle)
{
    Sequitur s;
    EXPECT_EQ(s.expand().size(), 0u);
    EXPECT_TRUE(s.checkInvariants());
    s.append(42);
    EXPECT_EQ(s.expand(), std::vector<std::uint64_t>{42});
    EXPECT_TRUE(s.checkInvariants());
}

TEST(Sequitur, ClassicPaperExample)
{
    // "abcdbcabcd" is the canonical example from the JAIR paper:
    // rules for "bc" and "abcd" should emerge.
    Sequitur s;
    buildAndVerify(fromString("abcdbcabcd"), s);
    EXPECT_GE(s.ruleCount(), 2u);
}

TEST(Sequitur, RepeatedPairs)
{
    Sequitur s;
    buildAndVerify(fromString("abababab"), s);
    EXPECT_GE(s.ruleCount(), 1u);
}

TEST(Sequitur, RunsOfOneSymbol)
{
    Sequitur s;
    buildAndVerify(fromString("aaaaaaaaaaaaaaaa"), s);
}

TEST(Sequitur, NoRepetitionNoRules)
{
    Sequitur s;
    buildAndVerify(fromString("abcdefghij"), s);
    EXPECT_EQ(s.ruleCount(), 0u);
}

TEST(Sequitur, LongRepeatedSequence)
{
    // Three occurrences of the same 50-symbol sequence.
    std::vector<std::uint64_t> unit;
    for (int i = 0; i < 50; ++i)
        unit.push_back(1000 + i);
    std::vector<std::uint64_t> input;
    for (int r = 0; r < 3; ++r)
        input.insert(input.end(), unit.begin(), unit.end());

    Sequitur s;
    buildAndVerify(input, s);

    auto c = s.classify();
    EXPECT_EQ(c.total(), input.size());
    // First occurrence trains; the following two occurrences are
    // almost entirely "opportunity".
    EXPECT_GE(c.opportunity, 90u);
    EXPECT_LE(c.head, 8u);
    EXPECT_EQ(c.nonRepetitive, 0u);
}

TEST(Sequitur, ClassifyUniqueSymbols)
{
    Sequitur s;
    for (std::uint64_t v = 0; v < 40; ++v)
        s.append(v * 7 + 3);
    auto c = s.classify();
    EXPECT_EQ(c.nonRepetitive, 40u);
    EXPECT_EQ(c.opportunity, 0u);
}

TEST(Sequitur, ClassifyTotalAlwaysMatchesInput)
{
    Rng rng(7);
    Sequitur s;
    std::size_t n = 500;
    for (std::size_t i = 0; i < n; ++i)
        s.append(rng.below(20));
    auto c = s.classify();
    EXPECT_EQ(c.total(), n);
}

struct RandomCase
{
    std::uint32_t alphabet;
    std::size_t length;
    std::uint64_t seed;
};

class SequiturPropertyTest
    : public ::testing::TestWithParam<RandomCase>
{};

TEST_P(SequiturPropertyTest, ExpansionAndInvariants)
{
    const RandomCase &rc = GetParam();
    Rng rng(rc.seed);
    std::vector<std::uint64_t> input;
    input.reserve(rc.length);
    for (std::size_t i = 0; i < rc.length; ++i)
        input.push_back(rng.below(rc.alphabet));

    Sequitur s;
    buildAndVerify(input, s);
    auto c = s.classify();
    EXPECT_EQ(c.total(), input.size());
}

INSTANTIATE_TEST_SUITE_P(
    RandomInputs, SequiturPropertyTest,
    ::testing::Values(
        // Tiny alphabets force maximal rule churn (worst case for the
        // invariant maintenance).
        RandomCase{2, 2000, 1}, RandomCase{2, 2000, 2},
        RandomCase{2, 5000, 3}, RandomCase{3, 3000, 4},
        RandomCase{3, 3000, 5}, RandomCase{4, 4000, 6},
        RandomCase{5, 2000, 7}, RandomCase{8, 4000, 8},
        RandomCase{16, 4000, 9}, RandomCase{64, 4000, 10},
        RandomCase{256, 8000, 11}, RandomCase{1024, 8000, 12}));

class SequiturStructuredTest
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(SequiturStructuredTest, RepeatedBlocksWithNoise)
{
    // Structured input resembling a miss trace: repeated sequences
    // of varying length interleaved with unique noise addresses.
    Rng rng(GetParam());
    std::vector<std::vector<std::uint64_t>> library;
    for (int i = 0; i < 5; ++i) {
        std::vector<std::uint64_t> seq;
        std::size_t len = 10 + rng.below(40);
        for (std::size_t j = 0; j < len; ++j)
            seq.push_back(100000 + i * 1000 + j);
        library.push_back(seq);
    }

    std::vector<std::uint64_t> input;
    std::uint64_t fresh = 1;
    for (int step = 0; step < 60; ++step) {
        if (rng.chance(0.7)) {
            const auto &seq = library[rng.below(5)];
            input.insert(input.end(), seq.begin(), seq.end());
        } else {
            for (int j = 0; j < 5; ++j)
                input.push_back(fresh++);
        }
    }

    Sequitur s;
    buildAndVerify(input, s);
    auto c = s.classify();
    EXPECT_EQ(c.total(), input.size());
    // Repetition dominates this input, so Sequitur must find
    // substantial opportunity.
    EXPECT_GT(c.opportunity, c.total() / 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SequiturStructuredTest,
                         ::testing::Values(21, 22, 23, 24, 25));

} // namespace
} // namespace stems
