/**
 * @file
 * Unit tests for the common infrastructure: address geometry, RNG,
 * saturating counters, circular buffer, LRU table, histogram, table.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/circular_buffer.hh"
#include "common/lru_table.hh"
#include "common/rng.hh"
#include "common/sat_counter.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/types.hh"

namespace stems {
namespace {

TEST(Types, BlockGeometry)
{
    EXPECT_EQ(kBlockBytes, 64u);
    EXPECT_EQ(kRegionBytes, 2048u);
    EXPECT_EQ(kBlocksPerRegion, 32u);

    Addr a = 0x12345;
    EXPECT_EQ(blockAlign(a), 0x12340u);
    EXPECT_EQ(blockNumber(a), 0x12345u >> 6);
    EXPECT_EQ(regionBase(a), 0x12000u);
}

TEST(Types, RegionOffsetRoundTrip)
{
    for (unsigned off = 0; off < kBlocksPerRegion; ++off) {
        Addr base = 0xabc000;
        Addr a = addrFromRegionOffset(base, off);
        EXPECT_EQ(regionBase(a), base);
        EXPECT_EQ(regionOffset(a), off);
    }
}

TEST(Types, RegionOffsetIgnoresByteOffset)
{
    Addr a = addrFromRegionOffset(0x4000, 7) + 13;
    EXPECT_EQ(regionOffset(a), 7u);
    EXPECT_EQ(blockAlign(a), addrFromRegionOffset(0x4000, 7));
}

TEST(Rng, Deterministic)
{
    Rng a(42, 7);
    Rng b(42, 7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, StreamsDiffer)
{
    Rng a(42, 1);
    Rng b(42, 2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowBounds)
{
    Rng r(1);
    for (int i = 0; i < 1000; ++i) {
        auto v = r.below(17);
        EXPECT_LT(v, 17u);
    }
    EXPECT_EQ(r.below(0), 0u);
    EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(2);
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 2000; ++i) {
        auto v = r.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(3);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng r(4);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (r.chance(0.25))
            ++hits;
    EXPECT_NEAR(hits / double(n), 0.25, 0.02);
}

TEST(Rng, ForkIndependent)
{
    Rng parent(99);
    Rng c1 = parent.fork(1);
    Rng c2 = parent.fork(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (c1.next() == c2.next())
            ++same;
    EXPECT_LT(same, 4);
}

TEST(SatCounter, SaturatesBothEnds)
{
    SatCounter c(2, 0);
    EXPECT_EQ(c.value(), 0u);
    c.decrement();
    EXPECT_EQ(c.value(), 0u);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3u);
    EXPECT_EQ(c.max(), 3u);
}

TEST(SatCounter, PredictsUpperHalf)
{
    SatCounter c(2, 0);
    EXPECT_FALSE(c.predicts());
    c.increment();
    EXPECT_FALSE(c.predicts());
    c.increment();
    EXPECT_TRUE(c.predicts());
    c.increment();
    EXPECT_TRUE(c.predicts());
}

TEST(SatCounter, ClampsInitial)
{
    SatCounter c(2, 9);
    EXPECT_EQ(c.value(), 3u);
}

TEST(CircularBuffer, AppendAndRead)
{
    CircularBuffer<int> buf(4);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(buf.append(i * 10), static_cast<std::uint64_t>(i));
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(buf.at(i).value(), i * 10);
}

TEST(CircularBuffer, OverwriteDetection)
{
    CircularBuffer<int> buf(4);
    for (int i = 0; i < 10; ++i)
        buf.append(i);
    EXPECT_EQ(buf.size(), 10u);
    EXPECT_EQ(buf.oldest(), 6u);
    EXPECT_FALSE(buf.at(5).has_value());
    EXPECT_TRUE(buf.at(6).has_value());
    EXPECT_EQ(buf.at(9).value(), 9);
    EXPECT_FALSE(buf.at(10).has_value());
    EXPECT_EQ(buf.live(), 4u);
}

TEST(CircularBuffer, LiveBeforeWrap)
{
    CircularBuffer<int> buf(8);
    buf.append(1);
    buf.append(2);
    EXPECT_EQ(buf.live(), 2u);
    EXPECT_EQ(buf.oldest(), 0u);
}

TEST(LruTable, InsertFindPeek)
{
    LruTable<int> t(8, 2);
    t.findOrInsert(100) = 7;
    EXPECT_NE(t.find(100), nullptr);
    EXPECT_EQ(*t.find(100), 7);
    EXPECT_EQ(t.find(200), nullptr);
    EXPECT_NE(t.peek(100), nullptr);
}

TEST(LruTable, EvictsLruWithinSet)
{
    // Single-set table: capacity 2, ways 2.
    LruTable<int> t(2, 2);
    t.findOrInsert(1) = 10;
    t.findOrInsert(2) = 20;
    // Touch 1 so 2 becomes LRU.
    EXPECT_NE(t.find(1), nullptr);
    std::uint64_t evicted_key = 0;
    t.findOrInsert(3, [&](std::uint64_t k, int &) {
        evicted_key = k;
    }) = 30;
    EXPECT_EQ(evicted_key, 2u);
    EXPECT_NE(t.find(1), nullptr);
    EXPECT_EQ(t.find(2), nullptr);
    EXPECT_NE(t.find(3), nullptr);
}

TEST(LruTable, EraseAndOccupancy)
{
    LruTable<int> t(16, 4);
    for (std::uint64_t k = 0; k < 10; ++k)
        t.findOrInsert(k * 977) = static_cast<int>(k);
    EXPECT_EQ(t.occupancy(), 10u);
    EXPECT_TRUE(t.erase(0));
    EXPECT_FALSE(t.erase(0));
    EXPECT_EQ(t.occupancy(), 9u);
}

TEST(LruTable, ForEachVisitsAllValid)
{
    LruTable<int> t(64, 4);
    for (std::uint64_t k = 1; k <= 20; ++k)
        t.findOrInsert(k) = 1;
    int n = 0;
    t.forEach([&](std::uint64_t, int &v) { n += v; });
    EXPECT_EQ(n, 20);
}

TEST(Histogram, BasicCountsAndFractions)
{
    Histogram h;
    h.add(1, 80);
    h.add(2, 10);
    h.add(-3, 10);
    EXPECT_EQ(h.total(), 100u);
    EXPECT_EQ(h.count(1), 80u);
    EXPECT_DOUBLE_EQ(h.fractionWithin(2), 0.9);
    EXPECT_DOUBLE_EQ(h.fractionWithin(3), 1.0);
    EXPECT_DOUBLE_EQ(h.fractionBetween(1, 2), 0.9);
    EXPECT_EQ(h.minBucket(), -3);
    EXPECT_EQ(h.maxBucket(), 2);
}

TEST(Histogram, Mean)
{
    Histogram h;
    h.add(2, 2);
    h.add(-2, 2);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    h.add(4, 4);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(Histogram, EmptyIsSafe)
{
    Histogram h;
    EXPECT_EQ(h.total(), 0u);
    EXPECT_DOUBLE_EQ(h.fractionWithin(5), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Stats, RatioAndFormat)
{
    EXPECT_DOUBLE_EQ(ratio(1, 4), 0.25);
    EXPECT_DOUBLE_EQ(ratio(1, 0), 0.0);
    EXPECT_EQ(fmtPct(0.621), "62.1%");
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtX(1.308), "1.31x");
}

TEST(Table, RendersAllCells)
{
    Table t({"workload", "coverage"});
    t.addRow({"oltp-db2", "55.0%"});
    t.addSeparator();
    t.addRow({"mean", "62.0%"});
    std::string s = t.str();
    EXPECT_NE(s.find("workload"), std::string::npos);
    EXPECT_NE(s.find("oltp-db2"), std::string::npos);
    EXPECT_NE(s.find("62.0%"), std::string::npos);
}

TEST(TableDeathTest, ArityMismatchPanics)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "arity");
}

} // namespace
} // namespace stems
