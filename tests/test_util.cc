#include "test_util.hh"

#include <filesystem>

namespace stems {
namespace test {

std::string
uniqueTestTag()
{
    std::string name = ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name();
    for (char &c : name)
        if (c == '/')
            c = '_';
    return name;
}

std::string
uniqueTempPath(const std::string &stem, const std::string &suffix)
{
    return testing::TempDir() + stem + "_" + uniqueTestTag() +
           suffix;
}

void
TempDirTest::SetUp()
{
    dir_ = uniqueTempPath("stems_test_dir");
    std::filesystem::remove_all(dir_);
}

void
TempDirTest::TearDown()
{
    std::filesystem::remove_all(dir_);
}

Trace
sampleTrace(std::uint64_t salt)
{
    TraceBuilder b;
    for (int i = 0; i < 500; ++i) {
        b.read(0x10000 + (i * 64) + salt * 0x100000, 0x400 + i % 7,
               i % 3, i % 5 == 1);
        if (i % 20 == 0)
            b.write(0x90000 + i * 64, 0x500);
        if (i % 50 == 0)
            b.invalidate(0x10000 + i * 64);
    }
    return b.take();
}

ExperimentConfig
smallConfig(bool timing, std::size_t records)
{
    ExperimentConfig cfg;
    cfg.traceRecords = records;
    cfg.enableTiming = timing;
    return cfg;
}

void
expectSameTrace(const Trace &a, const Trace &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].vaddr, b[i].vaddr) << "record " << i;
        EXPECT_EQ(a[i].pc, b[i].pc) << "record " << i;
        EXPECT_EQ(a[i].cpuOps, b[i].cpuOps) << "record " << i;
        EXPECT_EQ(a[i].depDist, b[i].depDist) << "record " << i;
        EXPECT_EQ(a[i].kind, b[i].kind) << "record " << i;
    }
}

void
expectSameStats(const SimStats &a, const SimStats &b)
{
    EXPECT_EQ(a.records, b.records);
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_EQ(a.invalidates, b.invalidates);
    EXPECT_EQ(a.l1Hits, b.l1Hits);
    EXPECT_EQ(a.l2Hits, b.l2Hits);
    EXPECT_EQ(a.l2PrefetchHits, b.l2PrefetchHits);
    EXPECT_EQ(a.svbHits, b.svbHits);
    EXPECT_EQ(a.offChipReads, b.offChipReads);
    EXPECT_EQ(a.offChipWrites, b.offChipWrites);
    EXPECT_EQ(a.prefetchesIssued, b.prefetchesIssued);
    EXPECT_EQ(a.overpredictions, b.overpredictions);
    // Bitwise, not approximate: determinism is the contract.
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
}

void
expectSameResults(const std::vector<WorkloadResult> &a,
                  const std::vector<WorkloadResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].workload, b[i].workload);
        EXPECT_EQ(a[i].workloadClass, b[i].workloadClass);
        EXPECT_EQ(a[i].baselineMisses, b[i].baselineMisses);
        EXPECT_EQ(a[i].baselineIpc, b[i].baselineIpc);
        EXPECT_EQ(a[i].baselineCycles, b[i].baselineCycles);
        EXPECT_EQ(a[i].strideCycles, b[i].strideCycles);
        ASSERT_EQ(a[i].engines.size(), b[i].engines.size());
        for (std::size_t j = 0; j < a[i].engines.size(); ++j) {
            const EngineResult &ea = a[i].engines[j];
            const EngineResult &eb = b[i].engines[j];
            EXPECT_EQ(ea.engine, eb.engine);
            EXPECT_EQ(ea.coverage, eb.coverage);
            EXPECT_EQ(ea.uncovered, eb.uncovered);
            EXPECT_EQ(ea.overprediction, eb.overprediction);
            EXPECT_EQ(ea.speedup, eb.speedup);
            expectSameStats(ea.stats, eb.stats);
        }
    }
}

} // namespace test
} // namespace stems
