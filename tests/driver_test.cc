/**
 * @file
 * Tests for the parallel ExperimentDriver: bitwise determinism
 * across thread counts, equivalence with the serial
 * ExperimentRunner reference, batched-vs-unbatched execution
 * identity (including mixed warm/cold batches over a persistent
 * store and anonymous-probe cells), baseline caching, engine
 * overrides, probes, and the forEachTrace analysis path.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>

#include "sim/driver.hh"
#include "sim/experiment.hh"
#include "store/trace_store.hh"
#include "test_util.hh"
#include "workloads/registry.hh"

namespace stems {
namespace {

using test::expectSameResults;
using test::expectSameStats;
using test::smallConfig;

const std::vector<std::string> kWorkloads = {"web-apache",
                                             "dss-qry17", "em3d"};
const std::vector<std::string> kEngines = {"tms", "sms", "stems"};

TEST(Driver, DeterministicAcrossThreadCounts)
{
    ExperimentDriver serial(smallConfig(true), 1);
    ExperimentDriver parallel(smallConfig(true), 8);
    EXPECT_EQ(serial.jobs(), 1u);
    EXPECT_EQ(parallel.jobs(), 8u);
    auto a = serial.run(kWorkloads, engineSpecs(kEngines));
    auto b = parallel.run(kWorkloads, engineSpecs(kEngines));
    expectSameResults(a, b);
}

TEST(Driver, MatchesSerialRunnerReference)
{
    ExperimentConfig cfg = smallConfig(true);
    ExperimentRunner runner(cfg);
    std::vector<WorkloadResult> reference;
    for (const std::string &name : kWorkloads) {
        auto w = makeWorkload(name);
        ASSERT_NE(w, nullptr);
        reference.push_back(runner.runWorkload(*w, kEngines));
    }

    ExperimentDriver driver(cfg, 4);
    auto results = driver.run(kWorkloads, engineSpecs(kEngines));
    expectSameResults(reference, results);
}

TEST(Driver, BatchedMatchesUnbatchedAcrossJobs)
{
    // The batch toggle is pure execution strategy: for every
    // (jobs, batching) combination the sweep must be bitwise
    // identical, and the diagnostics must attribute the work to the
    // right mode.
    ExperimentConfig cfg = smallConfig(true);
    std::vector<std::vector<WorkloadResult>> runs;
    for (unsigned jobs : {1u, 8u}) {
        for (bool batch : {true, false}) {
            ExperimentDriver driver(cfg, jobs);
            driver.setBatching(batch);
            runs.push_back(
                driver.run(kWorkloads, engineSpecs(kEngines)));
            if (batch)
                EXPECT_GT(driver.batchedRuns(), 0u);
            else
                EXPECT_EQ(driver.batchedRuns(), 0u);
        }
    }
    for (std::size_t i = 1; i < runs.size(); ++i)
        expectSameResults(runs[0], runs[i]);
}

/** Unique-per-test temporary store directory (ctest runs test
 *  binaries concurrently). */
std::string
tempStoreDir()
{
    std::string dir = test::uniqueTempPath("stems_driver_store");
    std::filesystem::remove_all(dir);
    return dir;
}

TEST(Driver, BatchMergesWarmCellsAndBatchesColdOnes)
{
    // A batch over a partially warm store must only simulate the
    // cold cells; warm neighbors merge from the cache, and the
    // combined result is bitwise identical to a storeless sweep.
    std::string dir = tempStoreDir();
    ExperimentConfig cfg = smallConfig(false);
    {
        auto store = std::make_shared<TraceStore>(dir);
        ASSERT_TRUE(store->usable());
        ExperimentDriver cold(cfg, 4);
        cold.setStore(store);
        cold.run({"dss-qry17"}, engineSpecs({"tms", "sms"}));
        EXPECT_EQ(cold.engineRuns(), 2u);
    }
    auto store = std::make_shared<TraceStore>(dir);
    ASSERT_TRUE(store->usable());
    ExperimentDriver mixed(cfg, 4);
    mixed.setStore(store);
    auto results =
        mixed.run({"dss-qry17"}, engineSpecs({"tms", "sms", "stems"}));
    // Only the stems cell was cold; the baseline and the other two
    // engine cells came from the store.
    EXPECT_EQ(mixed.engineRuns(), 1u);
    EXPECT_EQ(mixed.baselineRuns(), 0u);
    EXPECT_EQ(mixed.batchedRuns(), 1u);

    ExperimentDriver reference(cfg, 4);
    auto expected = reference.run({"dss-qry17"},
                                  engineSpecs({"tms", "sms", "stems"}));
    expectSameResults(expected, results);
    std::filesystem::remove_all(dir);
}

TEST(Driver, AnonymousProbeJoinsBatchWithoutPoisoningCache)
{
    // An anonymous probe (no probeId) makes a spec uncacheable: its
    // cell must re-simulate inside the batch even when a cached
    // result for the same engine exists, must not overwrite that
    // cached entry, and warm neighbors must stay warm.
    std::string dir = tempStoreDir();
    ExperimentConfig cfg = smallConfig(false);
    {
        auto store = std::make_shared<TraceStore>(dir);
        ASSERT_TRUE(store->usable());
        ExperimentDriver warm(cfg, 2);
        warm.setStore(store);
        warm.run({"dss-qry17"}, engineSpecs({"stems", "sms"}));
        EXPECT_EQ(warm.engineRuns(), 2u);
    }

    EngineSpec probed("stems");
    probed.probe = [](const Prefetcher &engine, EngineResult &er) {
        er.extra["bufferCapacity"] =
            static_cast<double>(engine.bufferCapacity());
    };
    {
        auto store = std::make_shared<TraceStore>(dir);
        ASSERT_TRUE(store->usable());
        ExperimentDriver driver(cfg, 2);
        driver.setStore(store);
        auto results = driver.run({"dss-qry17"},
                                  {probed, EngineSpec("sms")});
        EXPECT_EQ(driver.engineRuns(), 1u); // probed cell only
        EXPECT_EQ(driver.batchedRuns(), 1u);
        ASSERT_EQ(results.size(), 1u);
        const EngineResult *stems = results[0].find("stems");
        ASSERT_NE(stems, nullptr);
        EXPECT_EQ(stems->extra.count("bufferCapacity"), 1u);
    }

    // The probed run did not poison the cache: a plain stems sweep
    // is still served entirely from the store, probe-free and
    // bitwise identical to a storeless reference.
    auto store = std::make_shared<TraceStore>(dir);
    ASSERT_TRUE(store->usable());
    ExperimentDriver replay(cfg, 2);
    replay.setStore(store);
    auto cached = replay.run({"dss-qry17"}, engineSpecs({"stems"}));
    EXPECT_EQ(replay.engineRuns(), 0u);
    ASSERT_EQ(cached.size(), 1u);
    EXPECT_TRUE(cached[0].find("stems")->extra.empty());

    ExperimentDriver reference(cfg, 2);
    auto expected =
        reference.run({"dss-qry17"}, engineSpecs({"stems"}));
    expectSameResults(expected, cached);
    std::filesystem::remove_all(dir);
}

TEST(Driver, BaselinesCachedAcrossCalls)
{
    ExperimentDriver driver(smallConfig(true), 4);
    auto first =
        driver.run({"dss-qry17"}, engineSpecs({"sms"}));
    std::uint64_t baselines = driver.baselineRuns();
    EXPECT_EQ(baselines, 2u); // no-prefetch + stride

    auto second =
        driver.run({"dss-qry17"}, engineSpecs({"sms", "stems"}));
    EXPECT_EQ(driver.baselineRuns(), baselines);
    EXPECT_EQ(first.at(0).baselineMisses,
              second.at(0).baselineMisses);
    EXPECT_EQ(first.at(0).strideCycles, second.at(0).strideCycles);
    EXPECT_EQ(first.at(0).find("sms")->coverage,
              second.at(0).find("sms")->coverage);

    driver.clearBaselineCache();
    driver.run({"dss-qry17"}, engineSpecs({"sms"}));
    EXPECT_EQ(driver.baselineRuns(), baselines + 2);
}

TEST(Driver, FunctionalRunSkipsStrideBaseline)
{
    // Without timing there is no speedup normalization, so only the
    // no-prefetch baseline cell is scheduled.
    ExperimentConfig functional = smallConfig(false);
    ExperimentDriver driver(functional, 2);
    auto plain = driver.run({"dss-qry17"}, engineSpecs({"sms"}));
    EXPECT_EQ(plain.at(0).find("sms")->speedup, 0.0);
    EXPECT_EQ(driver.baselineRuns(), 1u); // no stride needed
}

TEST(Driver, UnknownNamesAreSkipped)
{
    ExperimentDriver driver(smallConfig(false), 2);
    auto results = driver.run({"dss-qry17", "no-such-workload"},
                              engineSpecs({"sms", "no-such-engine"}));
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].workload, "dss-qry17");
    ASSERT_EQ(results[0].engines.size(), 1u);
    EXPECT_EQ(results[0].engines[0].engine, "sms");
    EXPECT_EQ(results[0].find("no-such-engine"), nullptr);
}

TEST(Driver, SpecLabelsAndOverridesProduceDistinctCells)
{
    EngineOptions shallow;
    shallow.lookahead = 2;
    EngineOptions deep;
    deep.lookahead = 24;
    std::vector<EngineSpec> specs = {{"stems", "la2", shallow},
                                     {"stems", "la24", deep}};
    ExperimentDriver driver(smallConfig(false), 4);
    auto results = driver.run({"em3d"}, specs);
    ASSERT_EQ(results.size(), 1u);
    const EngineResult *la2 = results[0].find("la2");
    const EngineResult *la24 = results[0].find("la24");
    ASSERT_NE(la2, nullptr);
    ASSERT_NE(la24, nullptr);
    // A 12x lookahead difference must change prefetch behaviour.
    EXPECT_NE(la2->stats.prefetchesIssued,
              la24->stats.prefetchesIssued);
}

TEST(Driver, ProbeCollectsExtraMetrics)
{
    EngineSpec spec("stems");
    spec.probe = [](const Prefetcher &engine, EngineResult &er) {
        er.extra["bufferCapacity"] =
            static_cast<double>(engine.bufferCapacity());
    };
    ExperimentDriver driver(smallConfig(false), 2);
    auto results = driver.run({"dss-qry17"}, {spec});
    ASSERT_EQ(results.size(), 1u);
    const EngineResult *e = results[0].find("stems");
    ASSERT_NE(e, nullptr);
    ASSERT_EQ(e->extra.count("bufferCapacity"), 1u);
    EXPECT_GT(e->extra.at("bufferCapacity"), 0.0);
}

TEST(Driver, RunWorkloadAcceptsExternalWorkload)
{
    // A workload that is not in the registry still runs (engine
    // cells sharded in parallel).
    class LocalWorkload : public Workload
    {
      public:
        std::string name() const override { return "local"; }
        WorkloadClass
        workloadClass() const override
        {
            return WorkloadClass::kDss;
        }
        Trace
        generate(std::uint64_t seed,
                 std::size_t target_records) const override
        {
            TraceBuilder b;
            Rng rng(seed);
            while (b.size() < target_records) {
                Addr page = (Addr{1} << 33) +
                            Addr(rng.below(4096)) * kRegionBytes;
                for (unsigned off = 0; off < 8; ++off)
                    b.read(addrFromRegionOffset(page, off), 0x9);
            }
            return b.take();
        }
    };

    LocalWorkload w;
    ExperimentDriver driver(smallConfig(false), 4);
    WorkloadResult r =
        driver.runWorkload(w, engineSpecs({"sms", "stems"}));
    EXPECT_EQ(r.workload, "local");
    EXPECT_GT(r.baselineMisses, 0u);
    ASSERT_EQ(r.engines.size(), 2u);
    EXPECT_GT(r.find("sms")->coverage, 0.0);

    // External instances bypass the name-keyed baseline cache: a
    // second call recomputes rather than trusting the name.
    std::uint64_t baselines = driver.baselineRuns();
    driver.runWorkload(w, engineSpecs({"sms"}));
    EXPECT_GT(driver.baselineRuns(), baselines);
}

TEST(Driver, ForEachTraceVisitsEveryWorkloadOnce)
{
    ExperimentConfig cfg = smallConfig(false);
    cfg.traceRecords = 20000;
    ExperimentDriver driver(cfg, 4);
    std::vector<std::string> names(kWorkloads.size());
    std::vector<std::size_t> sizes(kWorkloads.size());
    std::atomic<int> calls{0};
    driver.forEachTrace(
        kWorkloads,
        [&](std::size_t index, const Workload &w, const Trace &t) {
            names[index] = w.name();
            sizes[index] = t.size();
            ++calls;
        });
    EXPECT_EQ(calls.load(), 3);
    for (std::size_t i = 0; i < kWorkloads.size(); ++i) {
        EXPECT_EQ(names[i], kWorkloads[i]);
        EXPECT_GE(sizes[i], 20000u);
    }
}

TEST(Driver, ScientificLookaheadAppliedPerWorkloadClass)
{
    // The driver must reproduce the runner's per-class lookahead
    // handling; this is implied by MatchesSerialRunnerReference but
    // pinned explicitly here for the scientific workload.
    ExperimentConfig cfg = smallConfig(false);
    ExperimentRunner runner(cfg);
    auto w = makeWorkload("em3d");
    auto reference = runner.runWorkload(*w, {"tms"});

    ExperimentDriver driver(cfg, 2);
    auto results = driver.run({"em3d"}, engineSpecs({"tms"}));
    ASSERT_EQ(results.size(), 1u);
    expectSameStats(reference.find("tms")->stats,
                    results[0].find("tms")->stats);
}

} // namespace
} // namespace stems
