/**
 * @file
 * Checkpointing tests.
 *
 * The contract under test is bitwise equivalence: for every
 * registered engine, serializing a mid-trace PrefetchSimulator and
 * resuming it in a freshly-constructed one must be indistinguishable
 * — stat for stat, cycle for cycle — from never having stopped.
 * Split points are randomized (seeded Rng) so the property is probed
 * across warmup boundaries, stream states and generation lifetimes
 * rather than at one hand-picked index.
 *
 * On top of that sit the driver-level guarantees: segmented
 * execution (checkpoint at every boundary, resume from the newest
 * match) is bitwise identical to a continuous run across
 * {jobs 1, 8} x {batched, unbatched} for every registered engine,
 * and re-running a sweep with more records over a warm store
 * re-simulates only the new suffix (resumedRuns()/
 * resumedRecordsSkipped() diagnostics).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/rng.hh"
#include "prefetch/engine_registry.hh"
#include "sim/checkpoint.hh"
#include "sim/driver.hh"
#include "store/trace_store.hh"
#include "test_util.hh"
#include "workloads/registry.hh"

namespace stems {
namespace {

using test::expectSameResults;
using test::expectSameStats;
using test::smallConfig;

/** The trace every per-engine property test runs over: a real
 *  workload mix (temporal+spatial structure) so all engines train. */
Trace
propertyTrace()
{
    auto w = makeWorkload("web-apache");
    EXPECT_NE(w, nullptr);
    return w->generate(/*seed=*/9, /*records=*/20000);
}

SimParams
timedParams()
{
    SystemConfig sys = defaultSystemConfig();
    SimParams p;
    p.hierarchy = sys.hierarchy;
    p.enableTiming = true;
    p.timing = sys.timing;
    return p;
}

std::unique_ptr<Prefetcher>
makeEngine(const std::string &name)
{
    return EngineRegistry::instance().make(name,
                                           defaultSystemConfig());
}

/** Step records [first, last) with the standard warmup flip, i.e.
 *  exactly what PrefetchSimulator::run does over that span. */
void
stepSpan(PrefetchSimulator &sim, const Trace &trace,
         std::size_t first, std::size_t last, std::size_t warmup)
{
    for (std::size_t i = first; i < last; ++i) {
        if (i == warmup)
            sim.setMeasuring(true);
        sim.step(trace[i]);
    }
}

TEST(Checkpoint, SnapshotResumeMatchesContinuousForEveryEngine)
{
    Trace trace = propertyTrace();
    const std::size_t warmup = trace.size() / 3;
    SimParams params = timedParams();

    for (const std::string &name :
         EngineRegistry::instance().names()) {
        SCOPED_TRACE("engine " + name);

        // Continuous reference.
        auto ref_engine = makeEngine(name);
        ASSERT_NE(ref_engine, nullptr);
        PrefetchSimulator ref(params, ref_engine.get());
        ref.setMeasuring(false);
        stepSpan(ref, trace, 0, trace.size(), warmup);
        ref.finish();

        // Random split points, spread over warmup and measurement.
        Rng rng(0xC0FFEE ^ std::hash<std::string>{}(name));
        for (int trial = 0; trial < 4; ++trial) {
            std::size_t split =
                1 + rng.below(static_cast<std::uint32_t>(
                        trace.size() - 1));
            SCOPED_TRACE("split " + std::to_string(split));

            auto prefix_engine = makeEngine(name);
            PrefetchSimulator prefix(params, prefix_engine.get());
            prefix.setMeasuring(false);
            stepSpan(prefix, trace, 0, split, warmup);
            std::vector<std::uint8_t> blob =
                encodeCheckpoint(prefix, split);

            std::uint64_t index = 0;
            ASSERT_TRUE(checkpointRecordIndex(blob, index));
            EXPECT_EQ(index, split);

            auto resumed_engine = makeEngine(name);
            PrefetchSimulator resumed(params,
                                      resumed_engine.get());
            ASSERT_TRUE(decodeCheckpoint(blob, resumed, &index));
            EXPECT_EQ(index, split);
            stepSpan(resumed, trace, split, trace.size(), warmup);
            resumed.finish();

            expectSameStats(ref.stats(), resumed.stats());
        }
    }
}

TEST(Checkpoint, DoubleSplitResumeStillMatches)
{
    // Checkpoint, resume, checkpoint again later, resume again: the
    // state must survive arbitrary chains of snapshots.
    Trace trace = propertyTrace();
    const std::size_t warmup = trace.size() / 3;
    SimParams params = timedParams();

    auto ref_engine = makeEngine("stems");
    PrefetchSimulator ref(params, ref_engine.get());
    ref.setMeasuring(false);
    stepSpan(ref, trace, 0, trace.size(), warmup);
    ref.finish();

    std::size_t first = trace.size() / 4;
    std::size_t second = (trace.size() * 3) / 4;

    auto e1 = makeEngine("stems");
    PrefetchSimulator s1(params, e1.get());
    s1.setMeasuring(false);
    stepSpan(s1, trace, 0, first, warmup);
    auto blob1 = encodeCheckpoint(s1, first);

    auto e2 = makeEngine("stems");
    PrefetchSimulator s2(params, e2.get());
    ASSERT_TRUE(decodeCheckpoint(blob1, s2));
    stepSpan(s2, trace, first, second, warmup);
    auto blob2 = encodeCheckpoint(s2, second);

    auto e3 = makeEngine("stems");
    PrefetchSimulator s3(params, e3.get());
    ASSERT_TRUE(decodeCheckpoint(blob2, s3));
    stepSpan(s3, trace, second, trace.size(), warmup);
    s3.finish();

    expectSameStats(ref.stats(), s3.stats());
}

TEST(Checkpoint, RandomSingleByteCorruptionIsAlwaysRejected)
{
    Trace trace = propertyTrace();
    SimParams params = timedParams();
    auto engine = makeEngine("stems");
    PrefetchSimulator sim(params, engine.get());
    sim.setMeasuring(false);
    stepSpan(sim, trace, 0, trace.size() / 2, trace.size() / 3);
    std::vector<std::uint8_t> blob =
        encodeCheckpoint(sim, trace.size() / 2);
    ASSERT_TRUE(checkpointValid(blob));

    Rng rng(1234);
    for (int trial = 0; trial < 60; ++trial) {
        std::vector<std::uint8_t> corrupt = blob;
        std::size_t offset = rng.below(
            static_cast<std::uint32_t>(corrupt.size()));
        std::uint8_t flip = static_cast<std::uint8_t>(
            1 + rng.below(255)); // never a no-op
        corrupt[offset] ^= flip;
        EXPECT_FALSE(checkpointValid(corrupt))
            << "byte " << offset << " xor "
            << static_cast<int>(flip);
        auto fresh_engine = makeEngine("stems");
        PrefetchSimulator fresh(params, fresh_engine.get());
        EXPECT_FALSE(decodeCheckpoint(corrupt, fresh));
    }

    // Truncations are rejected too, at any cut.
    for (std::size_t cut : {std::size_t{0}, std::size_t{10},
                            blob.size() / 2, blob.size() - 1}) {
        std::vector<std::uint8_t> shorter(blob.begin(),
                                          blob.begin() + cut);
        EXPECT_FALSE(checkpointValid(shorter)) << "cut " << cut;
    }
}

TEST(Checkpoint, MismatchedEngineOrStructureFailsCleanly)
{
    Trace trace = propertyTrace();
    SimParams params = timedParams();

    auto stems_engine = makeEngine("stems");
    PrefetchSimulator sim(params, stems_engine.get());
    sim.setMeasuring(false);
    stepSpan(sim, trace, 0, 5000, 6000);
    auto blob = encodeCheckpoint(sim, 5000);

    // Same blob into a differently-shaped simulator: CRC passes but
    // the payload structure must be rejected, not mis-decoded.
    auto tms_engine = makeEngine("tms");
    PrefetchSimulator wrong_engine(params, tms_engine.get());
    EXPECT_FALSE(decodeCheckpoint(blob, wrong_engine));

    PrefetchSimulator no_engine(params, nullptr);
    EXPECT_FALSE(decodeCheckpoint(blob, no_engine));

    SimParams functional = params;
    functional.enableTiming = false;
    auto other = makeEngine("stems");
    PrefetchSimulator wrong_timing(functional, other.get());
    EXPECT_FALSE(decodeCheckpoint(blob, wrong_timing));
}

// ---- driver-level segmented execution ----

class SegmentedDriverTest : public test::TempDirTest
{
};

TEST_F(SegmentedDriverTest,
       SegmentedMatchesContinuousAcrossJobsAndBatchForEveryEngine)
{
    // The acceptance bar: for every registered engine, a segmented
    // run (checkpoints written and, across combos, resumed) is
    // bitwise identical to a continuous storeless run, whatever the
    // jobs count and batching mode.
    std::vector<EngineSpec> engines;
    for (const std::string &name :
         EngineRegistry::instance().names())
        engines.emplace_back(name);
    ExperimentConfig cfg = smallConfig(true, 30000);

    ExperimentDriver reference(cfg, 4);
    auto expected = reference.run({"dss-qry17"}, engines);

    int combo = 0;
    for (unsigned jobs : {1u, 8u}) {
        for (bool batch : {true, false}) {
            SCOPED_TRACE("jobs " + std::to_string(jobs) +
                         (batch ? " batched" : " unbatched"));
            // A fresh store per combo keeps every cell cold, so the
            // segmented execution path itself runs each time.
            std::string dir =
                dir_ + "_combo" + std::to_string(combo++);
            ExperimentDriver segmented(cfg, jobs);
            segmented.setBatching(batch);
            segmented.setSegments(4);
            segmented.setStore(
                std::make_shared<TraceStore>(dir));
            auto results = segmented.run({"dss-qry17"}, engines);
            EXPECT_GT(segmented.checkpointsWritten(), 0u);
            // Even within one cold sweep a resume can legitimately
            // happen: the stride *baseline* cell and the stride
            // *engine* cell share a checkpoint identity (same
            // simulation), so whichever runs second may reuse the
            // first one's end-of-trace checkpoint when the
            // dispatch order serializes them.
            EXPECT_LE(segmented.resumedRuns(), 1u);
            expectSameResults(expected, results);
            std::filesystem::remove_all(dir);
        }
    }
}

TEST_F(SegmentedDriverTest, SecondSegmentedRunResumesFromCheckpoints)
{
    // Same sweep twice over one store, but with the result cache
    // defeated by an anonymous probe: the second run must execute
    // its cell by resuming from the first run's final checkpoint
    // instead of re-simulating the whole trace.
    ExperimentConfig cfg = smallConfig(false, 20000);
    EngineSpec probed("stems");
    probed.probe = [](const Prefetcher &, EngineResult &er) {
        er.extra["probe"] = 1.0;
    };

    ExperimentDriver first(cfg, 2);
    first.setSegments(3);
    first.setStore(std::make_shared<TraceStore>(dir_));
    auto a = first.run({"dss-qry17"}, {probed});
    EXPECT_GT(first.checkpointsWritten(), 0u);
    EXPECT_EQ(first.resumedRuns(), 0u);

    ExperimentDriver second(cfg, 2);
    second.setSegments(3);
    second.setStore(std::make_shared<TraceStore>(dir_));
    auto b = second.run({"dss-qry17"}, {probed});
    // The probed cell re-executed (engineRuns counts it) but
    // resumed at the end-of-trace checkpoint: zero records
    // re-stepped. The baseline cell stayed warm via the baseline
    // cache, so exactly one cell resumed.
    EXPECT_EQ(second.engineRuns(), 1u);
    EXPECT_EQ(second.resumedRuns(), 1u);
    auto trace_size =
        makeWorkload("dss-qry17")->generate(cfg.seed, 20000).size();
    EXPECT_EQ(second.resumedRecordsSkipped(), trace_size);
    expectSameResults(a, b);
}

TEST_F(SegmentedDriverTest, ExtendedRecordsSimulateOnlyTheSuffix)
{
    // The incremental-sweep headline: extend --records over a warm
    // store and only the unseen suffix is simulated. The warmup
    // boundary is pinned absolutely so the prefix simulation is
    // identical in both runs, and checkpoint boundaries use the
    // absolute interval so both runs share the boundary schedule.
    const std::vector<std::string> engines = {"sms", "stems"};
    ExperimentConfig short_cfg = smallConfig(false, 20000);
    short_cfg.warmupRecords = 8000;

    ExperimentDriver first(short_cfg, 2);
    first.setCheckpointEvery(6000);
    first.setStore(std::make_shared<TraceStore>(dir_));
    first.run({"dss-qry17"}, engineSpecs(engines));
    EXPECT_GT(first.checkpointsWritten(), 0u);
    std::size_t short_size =
        makeWorkload("dss-qry17")->generate(short_cfg.seed, 20000)
            .size();

    ExperimentConfig long_cfg = smallConfig(false, 40000);
    long_cfg.warmupRecords = 8000;
    ExperimentDriver extended(long_cfg, 2);
    extended.setCheckpointEvery(6000);
    extended.setStore(std::make_shared<TraceStore>(dir_));
    auto results =
        extended.run({"dss-qry17"}, engineSpecs(engines));

    // Every cell (baseline + both engines) resumed exactly at the
    // short run's end-of-trace checkpoint: the warm prefix cost 0
    // redundant record-steps.
    EXPECT_EQ(extended.resumedRuns(), 1u + engines.size());
    EXPECT_EQ(extended.resumedRecordsSkipped(),
              (1u + engines.size()) * short_size);
    EXPECT_EQ(extended.traceGenerations(), 1u); // new length: cold

    // And the extended results are bitwise identical to a storeless
    // continuous run of the long configuration.
    ExperimentDriver reference(long_cfg, 2);
    auto expected =
        reference.run({"dss-qry17"}, engineSpecs(engines));
    expectSameResults(expected, results);
}

TEST_F(SegmentedDriverTest, CorruptCheckpointFallsBackToColdRun)
{
    ExperimentConfig cfg = smallConfig(false, 20000);
    EngineSpec probed("stems"); // probe defeats the result cache
    probed.probe = [](const Prefetcher &, EngineResult &er) {
        er.extra["probe"] = 1.0;
    };

    ExperimentDriver first(cfg, 2);
    first.setSegments(2);
    first.setStore(std::make_shared<TraceStore>(dir_));
    auto a = first.run({"dss-qry17"}, {probed});

    // Flip a byte in every stored checkpoint payload.
    for (const auto &de :
         std::filesystem::recursive_directory_iterator(dir_)) {
        if (de.path().extension() != ".ckpt")
            continue;
        std::fstream f(de.path(), std::ios::in | std::ios::out |
                                      std::ios::binary);
        f.seekp(64);
        f.put('\x7f');
    }

    ExperimentDriver second(cfg, 2);
    second.setSegments(2);
    second.setStore(std::make_shared<TraceStore>(dir_));
    auto b = second.run({"dss-qry17"}, {probed});
    EXPECT_EQ(second.resumedRuns(), 0u); // every blob rejected
    expectSameResults(a, b);
}

TEST_F(SegmentedDriverTest, CheckpointsNeedAStore)
{
    // Without a store, segment settings are inert: the run stays
    // continuous and bitwise identical.
    std::vector<EngineSpec> engines = engineSpecs({"sms"});
    ExperimentConfig cfg = smallConfig(false, 20000);
    ExperimentDriver plain(cfg, 2);
    auto expected = plain.run({"dss-qry17"}, engines);

    ExperimentDriver segmented(cfg, 2);
    segmented.setSegments(4);
    auto results = segmented.run({"dss-qry17"}, engines);
    EXPECT_EQ(segmented.checkpointsWritten(), 0u);
    EXPECT_EQ(segmented.resumedRuns(), 0u);
    expectSameResults(expected, results);
}

} // namespace
} // namespace stems
