/**
 * @file
 * Unit and property tests for the workload generators: determinism,
 * structural sanity and the per-class statistical signatures the
 * paper's characterization (Figures 6-8) relies on.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "analysis/coverage.hh"
#include "common/stats.hh"
#include "workloads/commercial.hh"
#include "workloads/dss.hh"
#include "workloads/registry.hh"
#include "workloads/scientific.hh"
#include "workloads/workload.hh"

namespace stems {
namespace {

TEST(PageAllocator, NeverRepeatsAndAligned)
{
    PageAllocator a(Rng(1), 1 << 20);
    std::set<Addr> seen;
    for (int i = 0; i < 20000; ++i) {
        Addr p = a.alloc();
        EXPECT_EQ(p % kRegionBytes, 0u);
        EXPECT_TRUE(seen.insert(p).second) << "page repeated";
    }
    EXPECT_EQ(a.allocated(), 20000u);
}

TEST(PageAllocator, DeterministicForSeed)
{
    PageAllocator a(Rng(7), 1 << 16);
    PageAllocator b(Rng(7), 1 << 16);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.alloc(), b.alloc());
}

TEST(SpatialPattern, StableOffsetsAlwaysPresent)
{
    Rng rng(3);
    SpatialPattern p(rng, 4, 3, 0.5);
    ASSERT_EQ(p.stableOffsets().size(), 4u);
    Rng visit(9);
    for (int i = 0; i < 50; ++i) {
        auto offs = p.materialize(visit);
        for (unsigned stable : p.stableOffsets()) {
            bool found = false;
            for (unsigned o : offs)
                if (o == stable)
                    found = true;
            EXPECT_TRUE(found);
        }
        EXPECT_GE(offs.size(), 4u);
        EXPECT_LE(offs.size(), 7u);
    }
}

TEST(SpatialPattern, SequentialLayout)
{
    Rng rng(3);
    SpatialPattern p(rng, 8, 0, 0.0, /*sequential=*/true);
    auto offs = p.materialize(rng);
    ASSERT_EQ(offs.size(), 8u);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(offs[i], i);
}

TEST(SpatialPattern, OffsetsAreDistinctAndInRange)
{
    Rng rng(11);
    for (int trial = 0; trial < 20; ++trial) {
        SpatialPattern p(rng, 10, 6, 1.0);
        auto offs = p.materialize(rng);
        std::set<unsigned> set(offs.begin(), offs.end());
        EXPECT_EQ(set.size(), offs.size());
        for (unsigned o : offs)
            EXPECT_LT(o, kBlocksPerRegion);
    }
}

TEST(SequenceLibrary, ReplayWithoutGlitchesIsExact)
{
    Rng rng(5);
    SequenceLibrary lib(rng, 1000, 10, 20, 30);
    Rng run(6);
    auto a = lib.replay(3, run, {});
    auto b = lib.replay(3, run, {});
    EXPECT_EQ(a, b);
    EXPECT_GE(a.size(), 20u);
    EXPECT_LE(a.size(), 30u);
}

TEST(SequenceLibrary, GlitchesPerturbBounded)
{
    Rng rng(5);
    SequenceLibrary lib(rng, 1000, 4, 100, 100);
    Rng run(6);
    auto clean = lib.replay(0, run, {});
    SequenceLibrary::GlitchModel g{0.1, 0.05, 0.05};
    auto noisy = lib.replay(0, run, g);
    // Length stays in the right ballpark.
    EXPECT_GT(noisy.size(), 70u);
    EXPECT_LT(noisy.size(), 130u);
}

TEST(SequenceLibrary, PickIsBiasedTowardRecent)
{
    Rng rng(5);
    SequenceLibrary lib(rng, 100, 50, 10, 10);
    Rng run(8);
    int repeats = 0;
    std::size_t prev = lib.pick(run);
    for (int i = 0; i < 500; ++i) {
        std::size_t cur = lib.pick(run);
        if (cur == prev)
            ++repeats;
        prev = cur;
    }
    // Uniform picking would repeat ~2% of the time; recency bias must
    // push this far higher.
    EXPECT_GT(repeats, 40);
}

// ---- whole-suite properties ----

class WorkloadSuiteTest : public ::testing::TestWithParam<std::string>
{};

TEST_P(WorkloadSuiteTest, DeterministicGeneration)
{
    auto w = makeWorkload(GetParam());
    ASSERT_NE(w, nullptr);
    Trace a = w->generate(42, 20000);
    Trace b = w->generate(42, 20000);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].vaddr, b[i].vaddr);
        ASSERT_EQ(a[i].pc, b[i].pc);
        ASSERT_EQ(a[i].kind, b[i].kind);
        ASSERT_EQ(a[i].depDist, b[i].depDist);
    }
}

TEST_P(WorkloadSuiteTest, SeedChangesTrace)
{
    auto w = makeWorkload(GetParam());
    ASSERT_NE(w, nullptr);
    Trace a = w->generate(1, 5000);
    Trace b = w->generate(2, 5000);
    // Some generators (ocean's regular sweeps) have seed-independent
    // address streams; the random draws (access kinds, compute gaps)
    // must still differ.
    bool differs = a.size() != b.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i) {
        differs = a[i].vaddr != b[i].vaddr ||
                  a[i].kind != b[i].kind ||
                  a[i].cpuOps != b[i].cpuOps;
    }
    EXPECT_TRUE(differs);
}

TEST_P(WorkloadSuiteTest, StructuralSanity)
{
    auto w = makeWorkload(GetParam());
    ASSERT_NE(w, nullptr);
    Trace t = w->generate(42, 50000);
    ASSERT_GE(t.size(), 50000u);
    // Generators stop at a natural boundary shortly past the target.
    EXPECT_LT(t.size(), 50000u + 2'000'000u);
    TraceSummary s = summarize(t);
    EXPECT_GT(s.reads, s.records / 2);
    EXPECT_GT(s.distinctRegions, 50u);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadSuiteTest,
    ::testing::Values("web-apache", "web-zeus", "oltp-db2",
                      "oltp-oracle", "dss-qry2", "dss-qry16",
                      "dss-qry17", "em3d", "ocean", "sparse"));

TEST(Registry, SuiteOrderMatchesPaper)
{
    auto all = makeAllWorkloads();
    ASSERT_EQ(all.size(), 10u);
    EXPECT_EQ(all[0]->name(), "web-apache");
    EXPECT_EQ(all[3]->name(), "oltp-oracle");
    EXPECT_EQ(all[4]->name(), "dss-qry2");
    EXPECT_EQ(all[7]->name(), "em3d");
    EXPECT_EQ(all[9]->name(), "sparse");
}

TEST(Registry, UnknownNameReturnsNull)
{
    EXPECT_EQ(makeWorkload("no-such-workload"), nullptr);
}

// ---- class signatures (coarse versions of Figure 6) ----

TEST(WorkloadSignature, DssIsSpatiallyNotTemporallyPredictable)
{
    auto w = makeWorkload("dss-qry17");
    Trace t = w->generate(42, 300000);
    JointCoverageAnalyzer a;
    a.run(t);
    const JointCoverage &jc = a.result();
    ASSERT_GT(jc.total(), 1000u);
    EXPECT_GT(jc.spatialFraction(), 0.5);
    EXPECT_LT(jc.temporalFraction(), 0.3);
}

TEST(WorkloadSignature, Em3dIsTemporallyNearPerfect)
{
    auto w = makeWorkload("em3d");
    Trace t = w->generate(42, 700000);
    JointCoverageAnalyzer a;
    a.run(t);
    const JointCoverage &jc = a.result();
    ASSERT_GT(jc.total(), 1000u);
    // After the first (training) iteration the traversal repeats
    // exactly.
    EXPECT_GT(jc.temporalFraction(), 0.6);
}

TEST(WorkloadSignature, OltpHasAllFourClasses)
{
    auto w = makeWorkload("oltp-db2");
    Trace t = w->generate(42, 800000);
    JointCoverageAnalyzer a;
    // Measure from warmed state, as the paper does.
    a.run(t, t.size() / 2);
    const JointCoverage &jc = a.result();
    ASSERT_GT(jc.total(), 1000u);
    // Every class is a significant fraction (paper Figure 6). The
    // thresholds are loose because this test trace is much shorter
    // than the benchmark traces (temporal training is still ramping).
    EXPECT_GT(ratio(jc.both, jc.total()), 0.03);
    EXPECT_GT(ratio(jc.tmsOnly, jc.total()), 0.025);
    EXPECT_GT(ratio(jc.smsOnly, jc.total()), 0.05);
    EXPECT_GT(ratio(jc.neither, jc.total()), 0.15);
}

} // namespace
} // namespace stems
