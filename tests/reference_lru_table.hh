/**
 * @file
 * Reference oracle for LruTable property tests.
 *
 * Verbatim copy of the historical array-of-structs LruTable (before
 * the structure-of-arrays rewrite in common/lru_table.hh). The
 * property tests in hotpath_test.cc drive both implementations with
 * identical seeded workloads and require the same hit/miss/victim
 * sequences and byte-identical serialized state. Do not "improve"
 * this file — its value is that it is the old behaviour, frozen.
 */

#ifndef STEMS_TESTS_REFERENCE_LRU_TABLE_HH
#define STEMS_TESTS_REFERENCE_LRU_TABLE_HH

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace stems {

/**
 * A set-associative table mapping a 64-bit key to a value, with
 * per-set LRU replacement.
 *
 * @tparam V  value type; must be default-constructible.
 */
template <typename V>
class ReferenceLruTable
{
  public:
    /**
     * Construct a table.
     *
     * @param entries  total entry count (rounded up to a multiple of
     *                 the associativity).
     * @param ways     associativity (> 0).
     */
    ReferenceLruTable(std::size_t entries, std::size_t ways)
        : ways_(ways)
    {
        assert(ways > 0 && entries > 0);
        sets_ = (entries + ways - 1) / ways;
        slots_.resize(sets_ * ways_);
    }

    /**
     * Find a value, promoting it to MRU on hit.
     *
     * @return pointer to the value, or nullptr on miss.
     */
    V *
    find(std::uint64_t key)
    {
        Slot *s = findSlot(key);
        if (!s)
            return nullptr;
        touch(*s);
        return &s->value;
    }

    /** Find without updating recency. @return nullptr on miss. */
    const V *
    peek(std::uint64_t key) const
    {
        const Slot *s = findSlot(key);
        return s ? &s->value : nullptr;
    }

    /**
     * Find or insert (default-constructed) a value; promotes to MRU.
     *
     * When insertion evicts a valid victim, the optional callback is
     * invoked with the victim's key and value before it is destroyed.
     *
     * @return reference to the (possibly new) value.
     */
    V &
    findOrInsert(std::uint64_t key,
                 const std::function<void(std::uint64_t, V &)>
                     &on_evict = nullptr)
    {
        if (V *v = find(key))
            return *v;
        Slot &victim = victimSlot(key);
        if (victim.valid && on_evict)
            on_evict(victim.key, victim.value);
        victim.valid = true;
        victim.key = key;
        victim.value = V();
        touch(victim);
        return victim.value;
    }

    /** Remove an entry if present. @return true when removed. */
    bool
    erase(std::uint64_t key)
    {
        Slot *s = findSlot(key);
        if (!s)
            return false;
        s->valid = false;
        return true;
    }

    /** Number of valid entries across all sets. */
    std::size_t
    occupancy() const
    {
        std::size_t n = 0;
        for (const Slot &s : slots_)
            if (s.valid)
                ++n;
        return n;
    }

    /** Total capacity. */
    std::size_t capacity() const { return sets_ * ways_; }

    /**
     * Visit every valid entry (key, value).
     */
    void
    forEach(const std::function<void(std::uint64_t, V &)> &fn)
    {
        for (Slot &s : slots_)
            if (s.valid)
                fn(s.key, s.value);
    }

    /**
     * Serialize the full table state (checkpointing). Slot positions
     * are preserved exactly: which way of a set holds an entry decides
     * future victim scans, so positional identity is part of the
     * behavioural state.
     *
     * @param save_value  (Writer &, const V &) serializer for values.
     */
    template <typename Writer, typename SaveFn>
    void
    saveState(Writer &w, SaveFn &&save_value) const
    {
        w.u64(ways_);
        w.u64(sets_);
        w.u64(clock_);
        for (const Slot &s : slots_) {
            w.boolean(s.valid);
            if (s.valid) {
                w.u64(s.key);
                w.u64(s.lru);
                save_value(w, s.value);
            }
        }
    }

    /**
     * Restore state written by saveState into a table of identical
     * geometry (fails the reader otherwise).
     *
     * @param load_value  (Reader &, V &) deserializer for values.
     */
    template <typename Reader, typename LoadFn>
    void
    loadState(Reader &r, LoadFn &&load_value)
    {
        if (r.u64() != ways_ || r.u64() != sets_) {
            r.fail();
            return;
        }
        clock_ = r.u64();
        for (Slot &s : slots_) {
            s = Slot{};
            s.valid = r.boolean();
            if (s.valid) {
                s.key = r.u64();
                s.lru = r.u64();
                load_value(r, s.value);
            }
            if (!r.ok())
                return;
        }
    }

  private:
    struct Slot
    {
        bool valid = false;
        std::uint64_t key = 0;
        std::uint64_t lru = 0;
        V value{};
    };

    std::size_t setIndex(std::uint64_t key) const
    {
        // Multiplicative hash spreads structured keys (PC+offset
        // concatenations) across sets.
        return static_cast<std::size_t>(
            (key * 0x9e3779b97f4a7c15ULL) >> 32) % sets_;
    }

    Slot *
    findSlot(std::uint64_t key)
    {
        std::size_t base = setIndex(key) * ways_;
        for (std::size_t w = 0; w < ways_; ++w) {
            Slot &s = slots_[base + w];
            if (s.valid && s.key == key)
                return &s;
        }
        return nullptr;
    }

    const Slot *
    findSlot(std::uint64_t key) const
    {
        std::size_t base = setIndex(key) * ways_;
        for (std::size_t w = 0; w < ways_; ++w) {
            const Slot &s = slots_[base + w];
            if (s.valid && s.key == key)
                return &s;
        }
        return nullptr;
    }

    Slot &
    victimSlot(std::uint64_t key)
    {
        std::size_t base = setIndex(key) * ways_;
        Slot *victim = &slots_[base];
        for (std::size_t w = 0; w < ways_; ++w) {
            Slot &s = slots_[base + w];
            if (!s.valid)
                return s;
            if (s.lru < victim->lru)
                victim = &s;
        }
        return *victim;
    }

    void touch(Slot &s) { s.lru = ++clock_; }

    std::size_t ways_;
    std::size_t sets_ = 0;
    std::uint64_t clock_ = 0;
    std::vector<Slot> slots_;
};

} // namespace stems

#endif // STEMS_TESTS_REFERENCE_LRU_TABLE_HH
