/**
 * @file
 * Shared test utilities: unique temp paths (ctest runs test binaries
 * concurrently, so fixed paths collide), a temp-directory fixture,
 * small canned traces/configs, and the bitwise result/stats/trace
 * comparators the determinism contracts are pinned with. Extracted
 * from the store/driver/trace suites so every suite asserts
 * equality the same way.
 */

#ifndef STEMS_TESTS_TEST_UTIL_HH
#define STEMS_TESTS_TEST_UTIL_HH

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/experiment.hh"
#include "trace/trace.hh"

namespace stems {
namespace test {

/** Current test name, safe for use in a filename. */
std::string uniqueTestTag();

/** TempDir()-rooted path unique to the running test:
 *  <TempDir>/<stem>_<test-name><suffix>. Nothing is created. */
std::string uniqueTempPath(const std::string &stem,
                           const std::string &suffix = "");

/**
 * Fixture owning a unique, initially-absent temp directory (dir_),
 * removed again on teardown. Base class for store-backed suites.
 */
class TempDirTest : public ::testing::Test
{
  protected:
    void SetUp() override;
    void TearDown() override;

    std::string dir_;
};

/** Small deterministic mixed-kind trace (reads with dependence
 *  links, periodic writes and invalidates); `salt` shifts the
 *  address range so distinct traces do not alias. */
Trace sampleTrace(std::uint64_t salt = 0);

/** The shared small sweep configuration of the driver/store suites. */
ExperimentConfig smallConfig(bool timing,
                             std::size_t records = 60000);

/** Record-for-record equality (every MemRecord field). */
void expectSameTrace(const Trace &a, const Trace &b);

/** Field-for-field equality, bitwise for the cycle counts —
 *  determinism is the contract, not approximation. */
void expectSameStats(const SimStats &a, const SimStats &b);

/** Full sweep-result equality: workloads, baselines, every engine's
 *  normalized metrics and raw stats, all bitwise. */
void expectSameResults(const std::vector<WorkloadResult> &a,
                       const std::vector<WorkloadResult> &b);

} // namespace test
} // namespace stems

#endif // STEMS_TESTS_TEST_UTIL_HH
