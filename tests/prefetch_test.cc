/**
 * @file
 * Unit tests for the stride, SMS, TMS and naive-hybrid engines,
 * exercised both directly (hook-level) and through the simulator on
 * crafted traces.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "prefetch/hybrid.hh"
#include "prefetch/sms.hh"
#include "prefetch/stride.hh"
#include "prefetch/tms.hh"
#include "sim/prefetch_sim.hh"

namespace stems {
namespace {

std::vector<PrefetchRequest>
drain(Prefetcher &p)
{
    std::vector<PrefetchRequest> out;
    p.drainRequests(out);
    return out;
}

/** Tiny hierarchy so crafted traces miss deterministically. */
SimParams
tinySystem()
{
    SimParams p;
    p.hierarchy.l1Bytes = 16 * kBlockBytes;
    p.hierarchy.l1Ways = 2;
    p.hierarchy.l2Bytes = 64 * kBlockBytes;
    p.hierarchy.l2Ways = 4;
    return p;
}

// ---- stride ----

TEST(Stride, DetectsUnitStride)
{
    StridePrefetcher s;
    // Three accesses with stride 1 block train the confidence.
    for (int i = 0; i < 6; ++i)
        s.onL1Access(0x1000 + i * kBlockBytes, 0x400, false);
    auto reqs = drain(s);
    ASSERT_FALSE(reqs.empty());
    // The last prediction targets the blocks after the last access.
    Addr last = 0x1000 + 5 * kBlockBytes;
    EXPECT_EQ(reqs[reqs.size() - 2].addr, last + 1 * kBlockBytes);
    EXPECT_EQ(reqs[reqs.size() - 1].addr, last + 2 * kBlockBytes);
}

TEST(Stride, DetectsNegativeStride)
{
    StridePrefetcher s;
    for (int i = 0; i < 6; ++i)
        s.onL1Access(0x100000 - i * kBlockBytes, 0x400, false);
    auto reqs = drain(s);
    ASSERT_FALSE(reqs.empty());
    Addr last = 0x100000 - 5 * kBlockBytes;
    EXPECT_EQ(blockNumber(reqs[reqs.size() - 2].addr),
              blockNumber(last) - 1);
}

TEST(Stride, IgnoresRandomPattern)
{
    StridePrefetcher s;
    Addr addrs[] = {0x1000, 0x88000, 0x3040, 0x910000, 0x5280,
                    0x66000, 0x10c0, 0x72980};
    for (Addr a : addrs)
        s.onL1Access(a, 0x400, false);
    EXPECT_TRUE(drain(s).empty());
}

TEST(Stride, SameBlockDoesNotTrain)
{
    StridePrefetcher s;
    for (int i = 0; i < 10; ++i)
        s.onL1Access(0x2000 + (i % 2) * 4, 0x400, false);
    EXPECT_TRUE(drain(s).empty());
}

TEST(Stride, PerPcTracking)
{
    StridePrefetcher s;
    // Two interleaved streams with different PCs and strides.
    for (int i = 0; i < 6; ++i) {
        s.onL1Access(0x10000 + i * kBlockBytes, 0xA, false);
        s.onL1Access(0x900000 + i * 4 * kBlockBytes, 0xB, false);
    }
    auto reqs = drain(s);
    ASSERT_GE(reqs.size(), 4u);
    bool saw_unit = false;
    bool saw_four = false;
    for (const auto &r : reqs) {
        if (r.addr > 0x900000 &&
            (blockNumber(r.addr) - blockNumber(Addr{0x900000})) % 4 ==
                0) {
            saw_four = true;
        }
        if (r.addr < 0x900000)
            saw_unit = true;
    }
    EXPECT_TRUE(saw_unit);
    EXPECT_TRUE(saw_four);
}

TEST(Stride, BufferCapacityMatchesTable1)
{
    StridePrefetcher s;
    EXPECT_EQ(s.bufferCapacity(), 32u);
}

// ---- SMS ----

constexpr Addr kRegionX = 0x400000;

Addr
blk(Addr region, unsigned off)
{
    return addrFromRegionOffset(region, off);
}

/** Train one generation with the given offsets and end it. */
void
trainGeneration(SmsPrefetcher &sms, Addr region, Pc pc,
                const std::vector<unsigned> &offsets)
{
    for (unsigned off : offsets)
        sms.onL1Access(blk(region, off), pc + off * 4, false);
    // Evicting the trigger block ends the generation.
    sms.onL1BlockRemoved(blk(region, offsets[0]));
}

TEST(Sms, PredictsLearnedPatternInNewRegion)
{
    SmsPrefetcher sms;
    std::vector<unsigned> pattern = {3, 7, 12, 20};

    // Two training generations bring the counters to threshold.
    trainGeneration(sms, kRegionX, 0x500, pattern);
    drain(sms);
    trainGeneration(sms, kRegionX + kRegionBytes, 0x500, pattern);
    drain(sms);

    // A fresh region touched by the same code at the same offset.
    Addr fresh = kRegionX + 64 * kRegionBytes;
    sms.onL1Access(blk(fresh, 3), 0x500 + 3 * 4, false);
    auto reqs = drain(sms);
    ASSERT_EQ(reqs.size(), 3u); // pattern minus the trigger block
    std::set<Addr> want = {blk(fresh, 7), blk(fresh, 12),
                           blk(fresh, 20)};
    std::set<Addr> got;
    for (const auto &r : reqs) {
        EXPECT_EQ(r.sink, PrefetchSink::kL2);
        got.insert(r.addr);
    }
    EXPECT_EQ(got, want);
}

TEST(Sms, SingleTrainingIsBelowThreshold)
{
    SmsPrefetcher sms;
    trainGeneration(sms, kRegionX, 0x500, {3, 7, 12});
    drain(sms);
    Addr fresh = kRegionX + 64 * kRegionBytes;
    sms.onL1Access(blk(fresh, 3), 0x500 + 12, false);
    EXPECT_TRUE(drain(sms).empty());
}

TEST(Sms, CountersForgiveOneUnstableMiss)
{
    SmsPrefetcher sms;
    // Offset 9 appears in 3 of 4 generations: its counter stays at
    // or above threshold.
    trainGeneration(sms, kRegionX, 0x500, {3, 9});
    trainGeneration(sms, kRegionX + kRegionBytes, 0x500, {3, 9});
    trainGeneration(sms, kRegionX + 2 * kRegionBytes, 0x500, {3});
    trainGeneration(sms, kRegionX + 3 * kRegionBytes, 0x500, {3, 9});
    drain(sms);

    Addr fresh = kRegionX + 64 * kRegionBytes;
    sms.onL1Access(blk(fresh, 3), 0x500 + 3 * 4, false);
    auto reqs = drain(sms);
    ASSERT_EQ(reqs.size(), 1u);
    EXPECT_EQ(reqs[0].addr, blk(fresh, 9));
}

TEST(Sms, BitVectorModeForgetsInstantly)
{
    SmsParams p;
    p.useCounters = false;
    SmsPrefetcher sms(p);
    trainGeneration(sms, kRegionX, 0x500, {3, 9});
    trainGeneration(sms, kRegionX + kRegionBytes, 0x500, {3});
    drain(sms);

    // The last generation replaced the pattern: only offset 3 set,
    // and the trigger is 3 itself, so nothing is predicted.
    Addr fresh = kRegionX + 64 * kRegionBytes;
    sms.onL1Access(blk(fresh, 3), 0x500 + 3 * 4, false);
    EXPECT_TRUE(drain(sms).empty());
}

TEST(Sms, DifferentPcDifferentPattern)
{
    SmsPrefetcher sms;
    for (int rep = 0; rep < 2; ++rep) {
        trainGeneration(sms, kRegionX + rep * kRegionBytes, 0x500,
                        {3, 7});
        trainGeneration(sms,
                        kRegionX + (rep + 8) * kRegionBytes, 0x900,
                        {3, 25});
    }
    drain(sms);

    Addr fresh = kRegionX + 64 * kRegionBytes;
    sms.onL1Access(blk(fresh, 3), 0x900 + 3 * 4, false);
    auto reqs = drain(sms);
    ASSERT_EQ(reqs.size(), 1u);
    EXPECT_EQ(reqs[0].addr, blk(fresh, 25));
}

TEST(Sms, GenerationEndsOnlyOnTouchedBlockRemoval)
{
    SmsPrefetcher sms;
    sms.onL1Access(blk(kRegionX, 3), 0x500, false);
    sms.onL1Access(blk(kRegionX, 7), 0x504, false);
    // Removing an untouched block does not end the generation.
    sms.onL1BlockRemoved(blk(kRegionX, 30));
    EXPECT_EQ(sms.trainedPatterns(), 0u);
    sms.onL1BlockRemoved(blk(kRegionX, 7));
    EXPECT_EQ(sms.trainedPatterns(), 1u);
}

// ---- TMS ----

TEST(Tms, StreamsRepeatedMissSequence)
{
    // Repeating loop over blocks that always miss (tiny caches).
    TraceBuilder b;
    for (int it = 0; it < 8; ++it)
        for (int i = 0; i < 500; ++i)
            b.read(0x100000 + Addr(i) * 0x10000, 0x400, 0, true);
    Trace t = b.take();

    TmsPrefetcher tms;
    PrefetchSimulator sim(tinySystem(), &tms);
    sim.run(t, 1000); // warm the first two iterations
    const SimStats &s = sim.stats();
    // All measured misses are covered after training.
    EXPECT_GT(ratio(s.covered(), s.offChipReadEvents()), 0.95);
    EXPECT_EQ(tms.streamsStarted(), 1u);
}

TEST(Tms, NoRepetitionNoCoverage)
{
    TraceBuilder b;
    for (int i = 0; i < 4000; ++i)
        b.read(0x100000 + Addr(i) * 0x10000, 0x400, 0, false);
    Trace t = b.take();

    TmsPrefetcher tms;
    PrefetchSimulator sim(tinySystem(), &tms);
    sim.run(t);
    EXPECT_EQ(sim.stats().covered(), 0u);
}

TEST(Tms, ResyncSurvivesSkippedElement)
{
    // Train a sequence, then replay it with one element missing: the
    // stream must resynchronize rather than die.
    std::vector<Addr> seq;
    for (int i = 0; i < 40; ++i)
        seq.push_back(0x200000 + Addr(i) * 0x10000);

    TraceBuilder b;
    for (int it = 0; it < 8; ++it) {
        for (std::size_t i = 0; i < seq.size(); ++i) {
            if (it > 0 && i == 20)
                continue; // skip one element in replays
            b.read(seq[i], 0x400, 0, true);
        }
    }
    Trace t = b.take();

    TmsPrefetcher tms;
    PrefetchSimulator sim(tinySystem(), &tms);
    sim.run(t, seq.size() * 2);
    const SimStats &s = sim.stats();
    EXPECT_GT(ratio(s.covered(), s.offChipReadEvents()), 0.8);
}

TEST(Tms, ConfidenceRampIssuesOneBlockFirst)
{
    TmsPrefetcher tms;
    // Record a sequence A B C D, then miss on A again.
    Addr a = 0x1000000, step = 0x10000;
    for (int i = 0; i < 4; ++i)
        tms.onOffChipRead({a + i * step, 0x1, std::uint64_t(i),
                           false, -1});
    std::vector<PrefetchRequest> out;
    tms.drainRequests(out);
    out.clear();
    tms.onOffChipRead({a, 0x1, 4, false, -1});
    tms.drainRequests(out);
    // New stream: exactly one block (the ramp).
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].addr, a + step);
    int stream_id = out[0].streamId;

    // Consuming it opens the stream up to the lookahead.
    out.clear();
    tms.onPrefetchHit(a + step, stream_id);
    tms.drainRequests(out);
    EXPECT_GE(out.size(), 2u);
}

// ---- hybrid ----

TEST(Hybrid, MergesBothEnginesRequests)
{
    NaiveHybridPrefetcher h;
    // SMS side: train a pattern over two generations.
    std::vector<unsigned> pattern = {2, 6, 11};
    for (int g = 0; g < 2; ++g) {
        Addr region = kRegionX + g * kRegionBytes;
        for (unsigned off : pattern)
            h.onL1Access(blk(region, off), 0x700 + off * 4, false);
        h.onL1BlockRemoved(blk(region, 2));
    }
    std::vector<PrefetchRequest> out;
    h.drainRequests(out);
    out.clear();

    // TMS side: record a miss sequence and revisit it; SMS side:
    // trigger a fresh region.
    Addr a = 0x3000000, step = 0x20000;
    for (int i = 0; i < 4; ++i)
        h.onOffChipRead({a + i * step, 0x9, std::uint64_t(i), false,
                         -1});
    h.drainRequests(out);
    out.clear();

    Addr fresh = kRegionX + 64 * kRegionBytes;
    h.onL1Access(blk(fresh, 2), 0x700 + 2 * 4, false);
    h.onOffChipRead({a, 0x9, 4, false, -1});
    h.drainRequests(out);

    bool saw_l2_sink = false;
    bool saw_buffer_sink = false;
    for (const auto &r : out) {
        if (r.sink == PrefetchSink::kL2)
            saw_l2_sink = true;
        if (r.sink == PrefetchSink::kBuffer)
            saw_buffer_sink = true;
    }
    EXPECT_TRUE(saw_l2_sink);
    EXPECT_TRUE(saw_buffer_sink);
}

} // namespace
} // namespace stems
