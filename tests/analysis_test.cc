/**
 * @file
 * Unit tests for generation tracking, correlation-distance analysis
 * and the joint coverage classifier.
 */

#include <gtest/gtest.h>

#include <vector>

#include "analysis/correlation.hh"
#include "analysis/coverage.hh"
#include "analysis/generations.hh"
#include "trace/trace.hh"

namespace stems {
namespace {

constexpr Addr kRegionA = 0x10000; // region-aligned
constexpr Addr kRegionB = 0x20000;

Addr
blockIn(Addr region, unsigned offset)
{
    return addrFromRegionOffset(region, offset);
}

TEST(GenerationTracker, TriggerAndSequence)
{
    GenerationTracker t;
    auto r1 = t.access(blockIn(kRegionA, 3), 0x100);
    EXPECT_TRUE(r1.wasTrigger);
    EXPECT_TRUE(r1.firstTouchOfBlock);
    EXPECT_EQ(r1.generation->triggerOffset, 3u);
    EXPECT_EQ(r1.generation->index, spatialPatternIndex(0x100, 3));

    auto r2 = t.access(blockIn(kRegionA, 7), 0x104);
    EXPECT_FALSE(r2.wasTrigger);
    EXPECT_TRUE(r2.firstTouchOfBlock);

    // Re-access of block 3: not a first touch.
    auto r3 = t.access(blockIn(kRegionA, 3), 0x100);
    EXPECT_FALSE(r3.firstTouchOfBlock);

    ASSERT_NE(r3.generation, nullptr);
    std::vector<std::uint8_t> expect = {3, 7};
    EXPECT_EQ(r3.generation->sequence, expect);
}

TEST(GenerationTracker, TerminatesOnAccessedBlockRemoval)
{
    GenerationTracker t;
    int terminated = 0;
    Generation last;
    t.setTerminateCallback([&](const Generation &g) {
        ++terminated;
        last = g;
    });

    t.access(blockIn(kRegionA, 1), 0x100);
    t.access(blockIn(kRegionA, 2), 0x100);

    // Removing a block the generation never touched does nothing.
    t.blockRemoved(blockIn(kRegionA, 9));
    EXPECT_EQ(terminated, 0);

    t.blockRemoved(blockIn(kRegionA, 2));
    EXPECT_EQ(terminated, 1);
    EXPECT_EQ(last.sequence.size(), 2u);
    EXPECT_EQ(t.activeCount(), 0u);
}

TEST(GenerationTracker, IndependentRegions)
{
    GenerationTracker t;
    t.access(blockIn(kRegionA, 0), 1);
    t.access(blockIn(kRegionB, 0), 2);
    EXPECT_EQ(t.activeCount(), 2u);
    t.blockRemoved(blockIn(kRegionA, 0));
    EXPECT_EQ(t.activeCount(), 1u);
    EXPECT_EQ(t.activeGeneration(blockIn(kRegionA, 5)), nullptr);
    EXPECT_NE(t.activeGeneration(blockIn(kRegionB, 5)), nullptr);
}

TEST(GenerationTracker, FlushTerminatesAll)
{
    GenerationTracker t;
    int terminated = 0;
    t.setTerminateCallback([&](const Generation &) { ++terminated; });
    t.access(blockIn(kRegionA, 0), 1);
    t.access(blockIn(kRegionB, 0), 1);
    t.flush();
    EXPECT_EQ(terminated, 2);
    EXPECT_EQ(t.activeCount(), 0u);
}

TEST(GenerationTracker, NewGenerationAfterTermination)
{
    GenerationTracker t;
    t.access(blockIn(kRegionA, 4), 9);
    t.blockRemoved(blockIn(kRegionA, 4));
    auto r = t.access(blockIn(kRegionA, 6), 9);
    EXPECT_TRUE(r.wasTrigger);
    EXPECT_EQ(r.generation->triggerOffset, 6u);
}

// Builds a trace that visits a region with a fixed intra-region order
// multiple times, separated by invalidations so each visit is its own
// generation.
Trace
repeatedGenerationTrace(const std::vector<unsigned> &order, int visits,
                        Pc pc)
{
    TraceBuilder b;
    for (int v = 0; v < visits; ++v) {
        for (unsigned off : order)
            b.read(blockIn(kRegionA, off), pc);
        for (unsigned off : order)
            b.invalidate(blockIn(kRegionA, off));
    }
    return b.take();
}

TEST(CorrelationAnalyzer, PerfectRepetitionIsPlusOne)
{
    CorrelationAnalyzer a;
    a.run(repeatedGenerationTrace({2, 5, 9, 14, 21}, 4, 0x700));
    // 3 warm generations x 4 consecutive pairs, all distance +1.
    EXPECT_EQ(a.distances().total(), 12u);
    EXPECT_EQ(a.distances().count(1), 12u);
    EXPECT_DOUBLE_EQ(a.fractionWithinWindow(2), 1.0);
    EXPECT_EQ(a.coldGenerations(), 1u);
    EXPECT_EQ(a.unmatchedPairs(), 0u);
}

TEST(CorrelationAnalyzer, SwappedPairShowsReordering)
{
    // Both visits share the same trigger (offset 2) so they map to the
    // same lookup index; the middle of the sequence is reordered.
    TraceBuilder b;
    for (unsigned off : {2u, 5u, 9u, 14u})
        b.read(blockIn(kRegionA, off), 0x700);
    for (unsigned off : {2u, 5u, 9u, 14u})
        b.invalidate(blockIn(kRegionA, off));
    for (unsigned off : {2u, 9u, 5u, 14u})
        b.read(blockIn(kRegionA, off), 0x700);
    CorrelationAnalyzer a;
    a.run(b.take());
    // Prior sequence positions: 2->0, 5->1, 9->2, 14->3.
    // New pairs: (2,9) dist +2; (9,5) dist -1; (5,14) dist +2.
    EXPECT_EQ(a.distances().count(2), 2u);
    EXPECT_EQ(a.distances().count(-1), 1u);
}

TEST(CorrelationAnalyzer, UnseenOffsetCountsUnmatched)
{
    TraceBuilder b;
    for (unsigned off : {2u, 5u})
        b.read(blockIn(kRegionA, off), 0x700);
    for (unsigned off : {2u, 5u})
        b.invalidate(blockIn(kRegionA, off));
    for (unsigned off : {2u, 31u})
        b.read(blockIn(kRegionA, off), 0x700);
    CorrelationAnalyzer a;
    a.run(b.take());
    EXPECT_EQ(a.unmatchedPairs(), 1u);
    EXPECT_EQ(a.distances().total(), 0u);
}

TEST(JointCoverage, FractionHelpers)
{
    JointCoverage jc;
    jc.both = 30;
    jc.tmsOnly = 10;
    jc.smsOnly = 20;
    jc.neither = 40;
    EXPECT_DOUBLE_EQ(jc.temporalFraction(), 0.4);
    EXPECT_DOUBLE_EQ(jc.spatialFraction(), 0.5);
    EXPECT_DOUBLE_EQ(jc.jointFraction(), 0.6);
    EXPECT_EQ(jc.total(), 100u);
}

TEST(JointCoverageAnalyzer, RepeatedMissSequenceBecomesTemporal)
{
    // A pointer-chase loop over blocks in distinct regions, repeated.
    // Use addresses far apart so they never share cache sets in a way
    // that matters, and invalidate between iterations so every access
    // goes off-chip again.
    std::vector<Addr> chain;
    for (int i = 0; i < 8; ++i)
        chain.push_back(0x100000 + i * 0x10000);

    TraceBuilder b;
    for (int it = 0; it < 6; ++it) {
        for (Addr a : chain)
            b.read(a, 0x900, 0, true);
        for (Addr a : chain)
            b.invalidate(a);
    }

    JointCoverageAnalyzer jca;
    jca.run(b.take());
    const JointCoverage &jc = jca.result();
    EXPECT_EQ(jc.total(), 48u);
    // After the first iteration the successor pairs repeat: at least
    // the 2nd..6th iterations are temporally predictable.
    EXPECT_GE(jc.both + jc.tmsOnly, 35u);
    // Each iteration's accesses are generation triggers in their own
    // region (one block per region), so nothing is spatially
    // predictable.
    EXPECT_EQ(jc.both + jc.smsOnly, 0u);
}

TEST(JointCoverageAnalyzer, RepeatedPatternBecomesSpatial)
{
    // The same PC scans fresh regions with an identical offset
    // pattern: spatially predictable, temporally cold (addresses
    // never repeat).
    std::vector<unsigned> pattern = {0, 3, 7, 12, 20};
    TraceBuilder b;
    for (int region = 0; region < 40; ++region) {
        Addr base = 0x1000000 + Addr(region) * kRegionBytes;
        for (unsigned off : pattern)
            b.read(blockIn(base, off), 0xAAA);
        // Remote invalidations end the generation so the oracle can
        // train on its pattern before the next region is visited.
        for (unsigned off : pattern)
            b.invalidate(blockIn(base, off));
    }

    JointCoverageAnalyzer jca;
    jca.run(b.take());
    const JointCoverage &jc = jca.result();
    EXPECT_EQ(jc.total(), 40u * 5u);
    // After the first generation trains the pattern, the non-trigger
    // accesses of subsequent generations are spatially predictable.
    EXPECT_GE(jc.both + jc.smsOnly, 39u * 4u);
    // Addresses never recur, so temporal prediction finds nothing.
    EXPECT_EQ(jc.both + jc.tmsOnly, 0u);
}

TEST(ExtractMissSequences, TriggersAreSubset)
{
    std::vector<unsigned> pattern = {0, 3, 7};
    TraceBuilder b;
    for (int region = 0; region < 10; ++region) {
        Addr base = 0x2000000 + Addr(region) * kRegionBytes;
        for (unsigned off : pattern)
            b.read(blockIn(base, off), 0xBBB);
    }
    auto seqs = extractMissSequences(b.take());
    EXPECT_EQ(seqs.allMisses.size(), 30u);
    EXPECT_EQ(seqs.triggers.size(), 10u);
    // Every trigger must appear in the full miss sequence.
    for (Addr t : seqs.triggers) {
        bool found = false;
        for (Addr m : seqs.allMisses)
            if (m == t)
                found = true;
        EXPECT_TRUE(found);
    }
}

TEST(ExtractMissSequences, L2HitsAreNotMisses)
{
    TraceBuilder b;
    // Two passes over a small set: second pass hits in L2/L1.
    for (int pass = 0; pass < 2; ++pass)
        for (int i = 0; i < 8; ++i)
            b.read(0x3000000 + i * kBlockBytes, 0xCCC);
    auto seqs = extractMissSequences(b.take());
    EXPECT_EQ(seqs.allMisses.size(), 8u);
}

} // namespace
} // namespace stems
