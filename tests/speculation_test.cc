/**
 * @file
 * Speculative segment-parallel execution tests (sim/speculate.hh and
 * the driver's --speculate path).
 *
 * The contract under test is adversarial: speculation seeds are
 * *predictions*, not trusted state — blobs from shorter runs, from
 * different-seed traces, from other warmup boundaries, from perturbed
 * engine options, or bit-rotted on disk. Whatever mix of stale and
 * genuine seeds is offered, the outcome must be bitwise identical to
 * a continuous run: genuine seeds commit, stale seeds are caught by
 * the byte-compare at their boundary and rolled back, undecodable
 * seeds are dropped before any lane exists.
 *
 * On top of that sit the driver-level differential pins (speculative
 * == continuous across {jobs 1, 8} x {batched, unbatched} for every
 * registered engine), the re-encode byte-identity property that
 * boundary validation relies on, and the engine state-version
 * fencing: bumping kEngineStateVersion must orphan every stored
 * checkpoint of that engine.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "prefetch/engine_registry.hh"
#include "sim/checkpoint.hh"
#include "sim/driver.hh"
#include "sim/speculate.hh"
#include "store/trace_store.hh"
#include "test_util.hh"
#include "workloads/registry.hh"

namespace stems {
namespace {

using test::expectSameResults;
using test::expectSameStats;
using test::smallConfig;

Trace
propertyTrace(std::uint64_t seed = 9)
{
    auto w = makeWorkload("web-apache");
    EXPECT_NE(w, nullptr);
    return w->generate(seed, /*records=*/20000);
}

SimParams
timedParams()
{
    SystemConfig sys = defaultSystemConfig();
    SimParams p;
    p.hierarchy = sys.hierarchy;
    p.enableTiming = true;
    p.timing = sys.timing;
    return p;
}

std::unique_ptr<Prefetcher>
makeEngine(const std::string &name,
           const EngineOptions &options = EngineOptions{})
{
    return EngineRegistry::instance().make(
        name, defaultSystemConfig(), options);
}

/** Step records [first, last) with the standard warmup flip. */
void
stepSpan(PrefetchSimulator &sim, const Trace &trace,
         std::size_t first, std::size_t last, std::size_t warmup)
{
    for (std::size_t i = first; i < last; ++i) {
        if (i == warmup)
            sim.setMeasuring(true);
        sim.step(trace[i]);
    }
}

/** Continuous-run reference stats for one engine over `trace`. */
SimStats
continuousStats(const std::string &engine, const SimParams &params,
                const Trace &trace, std::size_t warmup)
{
    auto e = makeEngine(engine);
    PrefetchSimulator sim(params, e.get());
    sim.setMeasuring(false);
    stepSpan(sim, trace, 0, trace.size(), warmup);
    sim.finish();
    return sim.stats();
}

/** A genuine checkpoint of `trace` at `index` — simulate the prefix
 *  with the given engine/options/warmup and encode. */
std::vector<std::uint8_t>
prefixBlob(const std::string &engine, const SimParams &params,
           const Trace &trace, std::size_t index, std::size_t warmup,
           const EngineOptions &options = EngineOptions{})
{
    auto e = makeEngine(engine, options);
    PrefetchSimulator sim(params, e.get());
    sim.setMeasuring(false);
    stepSpan(sim, trace, 0, index, warmup);
    return encodeCheckpoint(sim, index);
}

// ---- runSpeculativeCell unit/property tests ----

TEST(Speculation, AllGenuineSeedsCommitAndMatchContinuous)
{
    Trace trace = propertyTrace();
    const std::size_t warmup = trace.size() / 3;
    SimParams params = timedParams();

    for (const std::string &name :
         EngineRegistry::instance().names()) {
        SCOPED_TRACE("engine " + name);
        SimStats expected =
            continuousStats(name, params, trace, warmup);

        std::vector<SpeculationSeed> seeds;
        for (std::size_t idx : {trace.size() / 4, trace.size() / 2,
                                (trace.size() * 3) / 4})
            seeds.push_back(
                {idx, prefixBlob(name, params, trace, idx, warmup)});

        auto make = [&] { return makeEngine(name); };
        auto out = runSpeculativeCell(params, warmup, trace, make,
                                      std::move(seeds), 4);
        ASSERT_TRUE(out.has_value());
        EXPECT_EQ(out->segments, 4u);
        EXPECT_EQ(out->commits, 3u);
        EXPECT_EQ(out->mispredicts, 0u);
        EXPECT_EQ(out->replayedRecords, 0u);
        expectSameStats(expected, out->stats);
    }
}

TEST(Speculation, StaleSeedMispredictsAndRollsBackIdentically)
{
    Trace trace = propertyTrace();
    Trace other = propertyTrace(/*seed=*/1234); // plausible but wrong
    const std::size_t warmup = trace.size() / 3;
    SimParams params = timedParams();
    const std::string name = "stems";
    SimStats expected = continuousStats(name, params, trace, warmup);

    const std::size_t good = trace.size() / 4;
    const std::size_t stale = trace.size() / 2;
    std::vector<SpeculationSeed> seeds;
    seeds.push_back(
        {good, prefixBlob(name, params, trace, good, warmup)});
    seeds.push_back(
        {stale, prefixBlob(name, params, other, stale, warmup)});

    auto make = [&] { return makeEngine(name); };
    auto out = runSpeculativeCell(params, warmup, trace, make,
                                  std::move(seeds), 4);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->segments, 3u);
    // The genuine boundary commits; the cross-trace one is caught by
    // the byte compare and everything after it re-executes.
    EXPECT_EQ(out->commits, 1u);
    EXPECT_EQ(out->mispredicts, 1u);
    EXPECT_EQ(out->replayedRecords, trace.size() - stale);
    expectSameStats(expected, out->stats);
}

TEST(Speculation, StaleCheckpointInjectionFuzz)
{
    // Seeded-random adversarial battery: every trial mixes genuine
    // seeds with stale ones (shorter-run prefixes are genuine by
    // construction — a prefix is a prefix — so staleness is injected
    // via different-seed traces, different warmup boundaries, and
    // bit-flipped blobs). The outcome must always be bitwise
    // identical to the continuous run; mis-speculation may only cost
    // replayed records.
    Trace trace = propertyTrace();
    Trace other = propertyTrace(/*seed=*/77);
    const std::size_t warmup = trace.size() / 3;
    const std::size_t other_warmup = (trace.size() * 2) / 3;
    SimParams params = timedParams();
    const std::string name = "stems";
    SimStats expected = continuousStats(name, params, trace, warmup);
    auto make = [&] { return makeEngine(name); };

    Rng rng(0xBADC0DE);
    for (int trial = 0; trial < 6; ++trial) {
        SCOPED_TRACE("trial " + std::to_string(trial));
        const std::size_t nseeds = 1 + rng.below(3);
        std::vector<SpeculationSeed> seeds;
        bool all_genuine = true;
        for (std::size_t s = 0; s < nseeds; ++s) {
            std::size_t idx =
                1 + rng.below(static_cast<std::uint32_t>(
                        trace.size() - 1));
            switch (rng.below(4)) {
            case 0: // genuine prefix of this very trace
                seeds.push_back({idx, prefixBlob(name, params, trace,
                                                 idx, warmup)});
                break;
            case 1: // different-seed trace: plausible alien state
                seeds.push_back({idx, prefixBlob(name, params, other,
                                                 idx, warmup)});
                all_genuine = false;
                break;
            case 2: { // same trace, different warmup boundary
                seeds.push_back(
                    {idx, prefixBlob(name, params, trace, idx,
                                     other_warmup)});
                // Below both warmups the state is identical (still
                // unmeasured), so this seed is genuinely on-path.
                if (idx > std::min(warmup, other_warmup))
                    all_genuine = false;
                break;
            }
            case 3:
            default: { // bit-rot: CRC must reject, seed dropped
                auto blob =
                    prefixBlob(name, params, trace, idx, warmup);
                blob[blob.size() / 2] ^= 0x40;
                seeds.push_back({idx, std::move(blob)});
                break;
            }
            }
        }

        auto out = runSpeculativeCell(params, warmup, trace, make,
                                      std::move(seeds), 4);
        if (!out.has_value())
            continue; // every seed undecodable: normal cold path
        EXPECT_LE(out->mispredicts, 1u);
        if (all_genuine) {
            EXPECT_EQ(out->mispredicts, 0u);
        }
        expectSameStats(expected, out->stats);
    }
}

TEST(Speculation, PerturbedEngineOptionsNeverCorruptTheResult)
{
    // A blob recorded under different engine options either fails
    // the structural decode (dropped before lanes exist) or decodes
    // into a state the boundary byte-compare rejects. Both paths
    // must end bitwise identical to continuous.
    Trace trace = propertyTrace();
    const std::size_t warmup = trace.size() / 3;
    SimParams params = timedParams();
    const std::string name = "stems";
    SimStats expected = continuousStats(name, params, trace, warmup);

    EngineOptions perturbed;
    perturbed.bufferEntries = 64; // non-default RMOB size
    std::vector<SpeculationSeed> seeds;
    seeds.push_back({trace.size() / 2,
                     prefixBlob(name, params, trace, trace.size() / 2,
                                warmup, perturbed)});

    auto make = [&] { return makeEngine(name); };
    auto out = runSpeculativeCell(params, warmup, trace, make,
                                  std::move(seeds), 2);
    if (out.has_value()) {
        EXPECT_EQ(out->mispredicts, 1u);
        expectSameStats(expected, out->stats);
    }
    // nullopt (structural rejection) is equally acceptable: the
    // caller falls back to the plain cold path.
}

TEST(Speculation, ReencodeRoundTripIsByteIdenticalForEveryEngine)
{
    // The property boundary validation rests on: checkpoint payloads
    // are a pure function of logical state. Decoding a blob into a
    // fresh simulator and re-encoding must reproduce the bytes
    // exactly — any hidden iteration-order or history dependence in
    // a serializer would show up here as a spurious mismatch.
    Trace trace = propertyTrace();
    const std::size_t warmup = trace.size() / 3;
    SimParams params = timedParams();

    for (const std::string &name :
         EngineRegistry::instance().names()) {
        SCOPED_TRACE("engine " + name);
        Rng rng(0x5EED ^ std::hash<std::string>{}(name));
        for (int trial = 0; trial < 3; ++trial) {
            std::size_t split =
                1 + rng.below(static_cast<std::uint32_t>(
                        trace.size() - 1));
            SCOPED_TRACE("split " + std::to_string(split));
            auto blob =
                prefixBlob(name, params, trace, split, warmup);

            auto e = makeEngine(name);
            PrefetchSimulator resumed(params, e.get());
            ASSERT_TRUE(decodeCheckpoint(blob, resumed));
            auto again = encodeCheckpoint(resumed, split);
            EXPECT_TRUE(checkpointStateEquals(blob, again));
            EXPECT_EQ(blob, again);
        }
    }
}

// ---- driver-level differential pins ----

class SpeculativeDriverTest : public test::TempDirTest
{
};

TEST_F(SpeculativeDriverTest,
       SpeculativeMatchesContinuousAcrossJobsAndBatchForEveryEngine)
{
    // The acceptance bar: a --speculate re-run over checkpoints left
    // by a shorter run is bitwise identical to a continuous run,
    // whatever the jobs count and batching mode, for every engine.
    std::vector<EngineSpec> engines;
    for (const std::string &name :
         EngineRegistry::instance().names())
        engines.emplace_back(name);

    ExperimentConfig short_cfg = smallConfig(false, 20000);
    short_cfg.warmupRecords = 8000;
    ExperimentConfig long_cfg = smallConfig(false, 30000);
    long_cfg.warmupRecords = 8000;

    // Seed checkpoints with a shorter segmented run.
    std::string seed_dir = dir_ + "_seed";
    {
        ExperimentDriver seeder(short_cfg, 2);
        seeder.setCheckpointEvery(6000);
        seeder.setStore(std::make_shared<TraceStore>(seed_dir));
        seeder.run({"dss-qry17"}, engines);
        EXPECT_GT(seeder.checkpointsWritten(), 0u);
    }

    ExperimentDriver reference(long_cfg, 4);
    auto expected = reference.run({"dss-qry17"}, engines);

    int combo = 0;
    for (unsigned jobs : {1u, 8u}) {
        for (bool batch : {true, false}) {
            SCOPED_TRACE("jobs " + std::to_string(jobs) +
                         (batch ? " batched" : " unbatched"));
            // Fresh copy of the seeded store per combo, so every
            // combo's cells are cold and speculate for real.
            std::string dir =
                dir_ + "_combo" + std::to_string(combo++);
            std::filesystem::copy(
                seed_dir, dir,
                std::filesystem::copy_options::recursive);
            ExperimentDriver speculative(long_cfg, jobs);
            speculative.setBatching(batch);
            speculative.setSpeculate(true);
            speculative.setStore(std::make_shared<TraceStore>(dir));
            auto results =
                speculative.run({"dss-qry17"}, engines);
            EXPECT_GT(speculative.speculativeCells(), 0u);
            EXPECT_GT(speculative.speculativeCommits(), 0u);
            // Same trace prefix, same warmup: every stored boundary
            // predicts the true state, so nothing mispredicts.
            EXPECT_EQ(speculative.speculativeMispredicts(), 0u);
            expectSameResults(expected, results);
            std::filesystem::remove_all(dir);
        }
    }
    std::filesystem::remove_all(seed_dir);
}

TEST_F(SpeculativeDriverTest,
       CrossSeedSpeculationMispredictsAndFallsBackIdentically)
{
    // Checkpoints from a different-seed sweep share the engine spec
    // (trace identity is deliberately not part of the checkpoint
    // key — stale state is the speculation opportunity), so the
    // speculative run picks them up, detects the mismatch at the
    // first boundary, and must still produce the continuous result.
    std::vector<EngineSpec> engines = engineSpecs({"sms"});
    ExperimentConfig store_cfg = smallConfig(false, 20000);
    store_cfg.warmupRecords = 8000;
    store_cfg.seed = 42;
    ExperimentConfig run_cfg = store_cfg;
    run_cfg.seed = 777; // different trace, same checkpoint spec

    ExperimentDriver seeder(store_cfg, 2);
    seeder.setCheckpointEvery(6000);
    seeder.setStore(std::make_shared<TraceStore>(dir_));
    seeder.run({"dss-qry17"}, engines);
    EXPECT_GT(seeder.checkpointsWritten(), 0u);

    ExperimentDriver reference(run_cfg, 2);
    auto expected = reference.run({"dss-qry17"}, engines);

    ExperimentDriver speculative(run_cfg, 2);
    speculative.setSpeculate(true);
    speculative.setStore(std::make_shared<TraceStore>(dir_));
    auto results = speculative.run({"dss-qry17"}, engines);
    EXPECT_GT(speculative.speculativeCells(), 0u);
    EXPECT_EQ(speculative.speculativeCommits(), 0u);
    EXPECT_GT(speculative.speculativeMispredicts(), 0u);
    expectSameResults(expected, results);
}

TEST_F(SpeculativeDriverTest, SpeculationNeedsAStoreAndCandidates)
{
    // Without a store, or over an empty one, --speculate is inert:
    // the run stays continuous and bitwise identical.
    std::vector<EngineSpec> engines = engineSpecs({"sms"});
    ExperimentConfig cfg = smallConfig(false, 20000);
    ExperimentDriver plain(cfg, 2);
    auto expected = plain.run({"dss-qry17"}, engines);

    ExperimentDriver storeless(cfg, 2);
    storeless.setSpeculate(true);
    auto a = storeless.run({"dss-qry17"}, engines);
    EXPECT_EQ(storeless.speculativeCells(), 0u);
    expectSameResults(expected, a);

    ExperimentDriver empty_store(cfg, 2);
    empty_store.setSpeculate(true);
    empty_store.setStore(std::make_shared<TraceStore>(dir_));
    auto b = empty_store.run({"dss-qry17"}, engines);
    EXPECT_EQ(empty_store.speculativeCells(), 0u);
    expectSameResults(expected, b);
}

// ---- engine state-version fencing (kEngineStateVersion) ----

/** RAII guard: bump an engine's state version for one test and
 *  restore it afterwards — the registry is process-global. */
class ScopedStateVersion
{
  public:
    ScopedStateVersion(const std::string &name, std::uint32_t v)
        : name_(name),
          previous_(
              EngineRegistry::instance().setStateVersion(name, v))
    {
    }
    ~ScopedStateVersion()
    {
        EngineRegistry::instance().setStateVersion(name_, previous_);
    }

  private:
    std::string name_;
    std::uint32_t previous_;
};

TEST_F(SpeculativeDriverTest,
       EngineStateVersionBumpOrphansStoredCheckpoints)
{
    // kEngineStateVersion is folded into every engine's checkpoint
    // spec digest, so bumping it (a code change that alters the
    // serialized state) must fence off every stored checkpoint: no
    // trusted resume, no speculation candidates — yet identical
    // results via the cold path.
    std::vector<EngineSpec> engines = engineSpecs({"stems"});
    ExperimentConfig cfg = smallConfig(false, 20000);
    cfg.warmupRecords = 8000;

    ExperimentDriver seeder(cfg, 2);
    seeder.setCheckpointEvery(6000);
    seeder.setStore(std::make_shared<TraceStore>(dir_));
    seeder.run({"dss-qry17"}, engines);
    EXPECT_GT(seeder.checkpointsWritten(), 0u);

    ScopedStateVersion bump(
        "stems",
        EngineRegistry::instance().stateVersion("stems") + 1);

    // The spec digest changed, so the extended run finds nothing:
    // neither the trusted-resume path nor speculation may touch the
    // old-version blobs.
    ExperimentConfig long_cfg = smallConfig(false, 30000);
    long_cfg.warmupRecords = 8000;
    ExperimentDriver extended(long_cfg, 2);
    extended.setSpeculate(true);
    extended.setCheckpointEvery(6000);
    extended.setStore(std::make_shared<TraceStore>(dir_));
    auto results = extended.run({"dss-qry17"}, engines);
    // The fence is per-engine: the *baseline* cell (engineless — no
    // state version in its spec) still speculates over its stored
    // boundaries, while the stems cell finds nothing under the
    // bumped digest and runs cold, with no trusted resume either.
    EXPECT_EQ(extended.speculativeCells(), 1u);
    EXPECT_EQ(extended.resumedRuns(), 0u);

    ExperimentDriver reference(long_cfg, 2);
    auto ref = reference.run({"dss-qry17"}, engines);
    expectSameResults(ref, results);
    // (The old-version blobs still exist on disk; they are simply
    // unreachable from the new spec digest — the orphaning IS the
    // absence pinned by the counters above.)
}

} // namespace
} // namespace stems
