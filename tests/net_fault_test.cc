/**
 * @file
 * Fault-injection battery for the finer-grained distributed work
 * units (net/units.hh): decomposition properties (every record of
 * every cell covered exactly once at every granularity, segment
 * endpoints aligned with the checkpoint schedule, dependency chains
 * cleared by a warm store), and the end-to-end contract that a
 * coordinator plus workers — through worker churn, mid-frame
 * disconnects, duplicate completions, stalled units and
 * reconnect-resume — always produces results bitwise identical to a
 * single-process sweep. Faults may cost wall-clock (requeues,
 * re-execution); they must never cost correctness.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <thread>

#include "net/coord.hh"
#include "net/protocol.hh"
#include "net/socket.hh"
#include "net/units.hh"
#include "net/worker.hh"
#include "obs/metrics.hh"
#include "sim/checkpoint.hh"
#include "sim/driver.hh"
#include "store/trace_store.hh"
#include "test_util.hh"

namespace stems {
namespace {

std::uint64_t
counterDelta(const MetricsSnapshot &before,
             const MetricsSnapshot &after, const char *name)
{
    auto get = [&](const MetricsSnapshot &s) {
        auto it = s.counters.find(name);
        return it == s.counters.end() ? std::uint64_t(0)
                                      : it->second;
    };
    return get(after) - get(before);
}

class NetFaultTest : public test::TempDirTest
{
  protected:
    SweepPlan
    planFor(UnitGranularity granularity,
            std::vector<std::string> workloads) const
    {
        SweepPlan plan;
        plan.workloads = std::move(workloads);
        plan.engines = {PlanEngine{"tms", "", {}},
                        PlanEngine{"stems", "", {}}};
        plan.records = 20'000;
        plan.jobs = 2;
        plan.checkpointEvery = 5'000;
        plan.unitGranularity = granularity;
        return plan;
    }

    std::vector<WorkloadResult>
    referenceRun(const SweepPlan &plan) const
    {
        ExperimentDriver driver;
        return driver.run(plan);
    }

    struct ScenarioResult
    {
        std::vector<WorkloadResult> results;
        std::vector<WorkerReport> reports;
        std::size_t unitCount = 0;
        std::uint64_t completed = 0;
        std::uint64_t requeued = 0;
        std::uint64_t resumed = 0;
    };

    /** One distributed sweep in a fresh store subdirectory: decompose
     *  (seeding the store when the plan asks for segment units),
     *  serve to the given workers, merge over the warm store. */
    ScenarioResult
    runScenario(const SweepPlan &plan, const std::string &tag,
                std::vector<WorkerOptions> workers,
                double grace_seconds = 0.4,
                double unit_timeout_seconds = 0.0)
    {
        ScenarioResult out;
        const std::string store_dir = dir_ + "/" + tag;
        std::filesystem::create_directories(store_dir);
        auto store = std::make_shared<TraceStore>(store_dir);
        EXPECT_TRUE(store->usable());

        std::string error;
        std::vector<WorkUnit> units =
            decomposeSweepPlan(plan, store.get(), &error);
        EXPECT_FALSE(units.empty()) << error;
        SweepCoordinator coord(plan, std::move(units));
        coord.setResumeGraceSeconds(grace_seconds);
        coord.setUnitTimeoutSeconds(unit_timeout_seconds);
        EXPECT_TRUE(coord.listen(0, &error)) << error;

        std::vector<std::thread> threads;
        out.reports.resize(workers.size());
        std::vector<std::string> worker_errors(workers.size());
        std::vector<bool> worker_ok(workers.size(), false);
        for (std::size_t i = 0; i < workers.size(); ++i) {
            workers[i].storeDir = store_dir;
            workers[i].port = coord.port();
            threads.emplace_back([&, i] {
                worker_ok[i] =
                    runWorker(workers[i], &out.reports[i],
                              &worker_errors[i]);
            });
        }
        const bool served = coord.serve(120.0, &error);
        for (std::thread &t : threads)
            t.join();
        EXPECT_TRUE(served) << error;
        for (std::size_t i = 0; i < workers.size(); ++i)
            EXPECT_TRUE(worker_ok[i])
                << "worker " << i << ": " << worker_errors[i];

        out.unitCount = coord.unitCount();
        out.completed = coord.unitsCompleted();
        out.requeued = coord.unitsRequeued();
        out.resumed = coord.unitsResumed();
        EXPECT_EQ(out.completed, out.unitCount);

        ExperimentDriver merge;
        merge.setStore(store);
        out.results = merge.run(plan);
        return out;
    }

    /** The {clean 1-worker, abandon 2-worker, drop-resume 2-worker,
     *  mixed 4-worker} fault matrix at one granularity: every
     *  scenario must reproduce the single-process sweep bitwise. */
    void
    runFaultMatrix(UnitGranularity granularity)
    {
        const SweepPlan plan =
            planFor(granularity, {"oltp-db2", "web-apache"});
        const auto reference = referenceRun(plan);

        // Short re-connect window: a worker whose sweep finished
        // without it (coordinator no longer listening) should
        // conclude so quickly, not pad the test run.
        WorkerOptions steady;
        steady.connectTimeoutSeconds = 2.0;
        WorkerOptions quitter = steady;
        quitter.abandonAfterUnits = 1;
        WorkerOptions dropper = steady;
        dropper.dropAfterUnits = 1;
        dropper.reconnectStallSeconds = 0.5;

        {
            SCOPED_TRACE("clean one worker");
            auto got = runScenario(plan, "clean", {steady});
            EXPECT_EQ(got.requeued, 0u);
            test::expectSameResults(got.results, reference);
        }
        {
            SCOPED_TRACE("abandoning worker, two workers");
            auto got =
                runScenario(plan, "abandon", {quitter, steady});
            test::expectSameResults(got.results, reference);
        }
        {
            SCOPED_TRACE("dropping/resuming worker, two workers");
            auto got =
                runScenario(plan, "resume", {dropper, steady});
            test::expectSameResults(got.results, reference);
        }
        {
            SCOPED_TRACE("mixed faults, four workers");
            auto got = runScenario(
                plan, "mixed",
                {quitter, dropper, steady, steady});
            test::expectSameResults(got.results, reference);
        }
    }
};

// ---- decomposition properties ------------------------------------

TEST_F(NetFaultTest, WorkloadAndCellDecompositionCoverExactlyOnce)
{
    const SweepPlan base =
        planFor(UnitGranularity::kWorkload,
                {"oltp-db2", "web-apache", "em3d"});

    auto whole = decomposeSweepPlan(base, nullptr);
    ASSERT_EQ(whole.size(), base.workloads.size());
    for (std::size_t i = 0; i < whole.size(); ++i) {
        EXPECT_EQ(whole[i].kind, UnitKind::kWorkload);
        EXPECT_EQ(whole[i].workload, base.workloads[i]);
        EXPECT_EQ(whole[i].dependsOn, -1);
    }

    SweepPlan cell_plan = base;
    cell_plan.unitGranularity = UnitGranularity::kCell;
    auto cells = decomposeSweepPlan(cell_plan, nullptr);
    // One unit per (workload, column), columns = baseline + each
    // engine, each pair exactly once.
    std::map<std::pair<std::string, std::int32_t>, int> seen;
    for (const WorkUnit &u : cells) {
        EXPECT_EQ(u.kind, UnitKind::kCell);
        EXPECT_EQ(u.dependsOn, -1);
        seen[{u.workload, u.column}]++;
    }
    EXPECT_EQ(cells.size(),
              base.workloads.size() * (1 + base.engines.size()));
    for (const std::string &w : base.workloads)
        for (std::int32_t c = -1;
             c < static_cast<std::int32_t>(base.engines.size());
             ++c)
            EXPECT_EQ((seen[{w, c}]), 1)
                << w << " column " << c;
}

TEST_F(NetFaultTest, SegmentDecompositionTilesEveryCellOnSchedule)
{
    const SweepPlan plan = planFor(UnitGranularity::kSegment,
                                   {"oltp-db2", "em3d"});
    std::filesystem::create_directories(dir_);
    TraceStore store(dir_);
    std::string error;
    auto units = decomposeSweepPlan(plan, &store, &error);
    ASSERT_FALSE(units.empty()) << error;

    for (const std::string &name : plan.workloads) {
        // The seeding pass materialized the trace; its true length
        // (generators may overshoot plan.records) fixes the
        // boundary schedule.
        Trace trace;
        ASSERT_TRUE(store.loadTrace(
            TraceKey{name, plan.records, plan.seed}, trace));
        const auto bounds = checkpointBounds(
            trace.size(),
            static_cast<std::size_t>(plan.checkpointEvery),
            plan.segments);
        ASSERT_GE(bounds.size(), 2u); // interior cuts exist

        for (std::int32_t c = -1;
             c < static_cast<std::int32_t>(plan.engines.size());
             ++c) {
            std::vector<const WorkUnit *> chain;
            for (const WorkUnit &u : units)
                if (u.workload == name && u.column == c)
                    chain.push_back(&u);
            ASSERT_EQ(chain.size(), bounds.size())
                << name << " column " << c;
            std::uint64_t at = 0;
            for (std::size_t s = 0; s < chain.size(); ++s) {
                const WorkUnit &u = *chain[s];
                EXPECT_EQ(u.kind, UnitKind::kSegment);
                // Contiguous tiling: no gap, no overlap, ending
                // exactly at the trace end.
                EXPECT_EQ(u.segBegin, at);
                EXPECT_EQ(u.segEnd, bounds[s]);
                EXPECT_EQ(u.finalSegment,
                          s + 1 == chain.size());
                // Cold store: every non-first segment waits for
                // its predecessor's boundary checkpoint.
                if (s == 0)
                    EXPECT_EQ(u.dependsOn, -1);
                else
                    EXPECT_GE(u.dependsOn, 0);
                at = u.segEnd;
            }
            EXPECT_EQ(at, trace.size());
        }
    }
}

TEST_F(NetFaultTest, WarmStoreClearsSegmentDependencies)
{
    const SweepPlan plan =
        planFor(UnitGranularity::kSegment, {"oltp-db2"});
    std::filesystem::create_directories(dir_);
    auto store = std::make_shared<TraceStore>(dir_);
    std::string error;
    auto cold = decomposeSweepPlan(plan, store.get(), &error);
    ASSERT_FALSE(cold.empty()) << error;
    bool any_dep = false;
    for (const WorkUnit &u : cold)
        any_dep = any_dep || u.dependsOn >= 0;
    EXPECT_TRUE(any_dep);

    // A full local run persists a trusted checkpoint at every
    // boundary of every lane; re-decomposing over that warm store
    // must find them and emit a fully parallel (dependency-free)
    // unit set.
    ExperimentDriver driver;
    driver.setStore(store);
    driver.run(plan);
    auto warm = decomposeSweepPlan(plan, store.get(), &error);
    ASSERT_EQ(warm.size(), cold.size());
    for (const WorkUnit &u : warm)
        EXPECT_EQ(u.dependsOn, -1)
            << u.workload << " [" << u.segBegin << ", " << u.segEnd
            << ")";
}

TEST_F(NetFaultTest, ResumeBookkeepingTracksCommittedCheckpoints)
{
    const SweepPlan plan =
        planFor(UnitGranularity::kSegment, {"oltp-db2"});
    std::filesystem::create_directories(dir_);
    auto store = std::make_shared<TraceStore>(dir_);
    std::string error;
    auto units = decomposeSweepPlan(plan, store.get(), &error);
    ASSERT_FALSE(units.empty()) << error;

    // The baseline column's chain, in order.
    std::vector<const WorkUnit *> chain;
    for (const WorkUnit &u : units)
        if (u.workload == "oltp-db2" && u.column == -1)
            chain.push_back(&u);
    ASSERT_GE(chain.size(), 3u);

    // Cold store: nothing committed, nothing to resume from.
    EXPECT_EQ(unitLastCheckpointIndex(plan, *chain[0], *store), 0u);
    EXPECT_EQ(unitLastCheckpointIndex(plan, *chain[1], *store), 0u);

    ExperimentDriver driver;
    driver.applyPlan(plan);
    driver.setStore(store);
    ASSERT_TRUE(driver.runCellSegment(
        "oltp-db2", nullptr,
        static_cast<std::size_t>(chain[0]->segBegin),
        static_cast<std::size_t>(chain[0]->segEnd), &error))
        << error;

    // Unit 0 committed its end checkpoint: a resume of unit 0
    // reports exactly its end (nothing left to redo), unit 1
    // exactly its start (it can skip the whole prefix but has not
    // advanced), and later units the same index — the newest
    // committed state, never anything beyond a unit's own end, so
    // the skip accounting cannot double-count records past the
    // unit.
    EXPECT_EQ(unitLastCheckpointIndex(plan, *chain[0], *store),
              chain[0]->segEnd);
    EXPECT_EQ(unitLastCheckpointIndex(plan, *chain[1], *store),
              chain[1]->segBegin);
    EXPECT_EQ(unitLastCheckpointIndex(plan, *chain[2], *store),
              chain[0]->segEnd);
}

// ---- fault matrix, one granularity per test ----------------------

TEST_F(NetFaultTest, FaultMatrixWholeWorkloadUnits)
{
    runFaultMatrix(UnitGranularity::kWorkload);
}

TEST_F(NetFaultTest, FaultMatrixCellUnits)
{
    runFaultMatrix(UnitGranularity::kCell);
}

TEST_F(NetFaultTest, FaultMatrixSegmentUnits)
{
    runFaultMatrix(UnitGranularity::kSegment);
}

// ---- targeted fault scenarios ------------------------------------

TEST_F(NetFaultTest, ReconnectResumeSkipsCommittedPrefix)
{
    // One worker, segment units over one workload: the worker
    // completes the first segment, drops the connection while
    // holding the second, stalls, reconnects under its session and
    // resumes — from the checkpoint the first segment committed,
    // not from record 0.
    const SweepPlan plan =
        planFor(UnitGranularity::kSegment, {"oltp-db2"});
    const auto reference = referenceRun(plan);

    WorkerOptions dropper;
    dropper.dropAfterUnits = 1;
    dropper.reconnectStallSeconds = 0.5;

    const MetricsSnapshot before =
        MetricsRegistry::instance().snapshot();
    auto got = runScenario(plan, "resume-metrics", {dropper},
                           /*grace_seconds=*/5.0);
    const MetricsSnapshot after =
        MetricsRegistry::instance().snapshot();

    EXPECT_GE(got.reports[0].unitsResumed, 1u);
    EXPECT_GE(got.reports[0].reconnects, 1u);
    EXPECT_GE(got.resumed, 1u);
    EXPECT_GE(counterDelta(before, after, "net.unit.resumed"), 1u);
    EXPECT_GT(counterDelta(before, after,
                           "ckpt.resume.skipped_records"),
              0u);
    test::expectSameResults(got.results, reference);
}

TEST_F(NetFaultTest, MidFrameDisconnectAndGarbageAreTolerated)
{
    // A peer that dies halfway through a frame, and one that speaks
    // a different protocol entirely: both must be shed without
    // disturbing the sweep the real worker completes.
    const SweepPlan plan =
        planFor(UnitGranularity::kCell, {"oltp-db2"});
    const auto reference = referenceRun(plan);

    const std::string store_dir = dir_ + "/midframe";
    std::filesystem::create_directories(store_dir);
    auto store = std::make_shared<TraceStore>(store_dir);
    SweepCoordinator coord(plan);
    std::string error;
    ASSERT_TRUE(coord.listen(0, &error)) << error;

    std::thread half_frame([&] {
        int fd = connectWithRetry("127.0.0.1", coord.port(), 5.0);
        ASSERT_GE(fd, 0);
        HelloMsg hello;
        const auto wire =
            encodeFrame(kMsgHello, encodeHello(hello));
        // First half of the frame, then gone mid-message.
        ::send(fd, wire.data(), wire.size() / 2, 0);
        ::close(fd);
    });
    std::thread garbage([&] {
        int fd = connectWithRetry("127.0.0.1", coord.port(), 5.0);
        ASSERT_GE(fd, 0);
        const char junk[] = "GET / HTTP/1.1\r\n\r\n";
        ::send(fd, junk, sizeof(junk) - 1, 0);
        ::close(fd);
    });

    WorkerOptions worker;
    worker.storeDir = store_dir;
    worker.port = coord.port();
    bool worker_ok = false;
    std::string worker_error;
    std::thread worker_thread([&] {
        worker_ok = runWorker(worker, nullptr, &worker_error);
    });
    EXPECT_TRUE(coord.serve(120.0, &error)) << error;
    half_frame.join();
    garbage.join();
    worker_thread.join();
    EXPECT_TRUE(worker_ok) << worker_error;
    EXPECT_EQ(coord.unitsCompleted(), coord.unitCount());

    ExperimentDriver merge;
    merge.setStore(store);
    test::expectSameResults(merge.run(plan), reference);
}

TEST_F(NetFaultTest, DuplicateUnitDoneIsIdempotent)
{
    const SweepPlan plan =
        planFor(UnitGranularity::kCell, {"oltp-db2", "em3d"});
    const auto reference = referenceRun(plan);

    WorkerOptions chatty;
    chatty.duplicateUnitDone = true;
    // The coordinator may finish the sweep with this worker's
    // duplicate kUnitDone still unread, so the close can surface as
    // a reset rather than a kBye; the worker's graceful
    // unanswered-reconnect exit covers it — quickly.
    chatty.connectTimeoutSeconds = 2.0;
    auto got =
        runScenario(plan, "dup-done", {chatty, chatty});
    // Exactly one completion per unit despite every kUnitDone
    // arriving twice.
    EXPECT_EQ(got.completed, got.unitCount);
    test::expectSameResults(got.results, reference);
}

TEST_F(NetFaultTest, WatchdogRequeuesUnitHeldByStalledWorker)
{
    // A worker that accepts a unit and then hangs forever: the
    // slow-worker watchdog must reclaim the unit so the steady
    // worker can finish the sweep.
    const SweepPlan plan =
        planFor(UnitGranularity::kCell, {"oltp-db2"});
    const auto reference = referenceRun(plan);

    const std::string store_dir = dir_ + "/watchdog";
    std::filesystem::create_directories(store_dir);
    auto store = std::make_shared<TraceStore>(store_dir);
    SweepCoordinator coord(plan);
    coord.setUnitTimeoutSeconds(0.75);
    coord.setResumeGraceSeconds(0.2);
    std::string error;
    ASSERT_TRUE(coord.listen(0, &error)) << error;

    const MetricsSnapshot before =
        MetricsRegistry::instance().snapshot();

    std::thread staller([&] {
        int fd = connectWithRetry("127.0.0.1", coord.port(), 5.0);
        ASSERT_GE(fd, 0);
        FramedConn conn(fd);
        HelloMsg hello;
        ASSERT_TRUE(conn.sendFrame(kMsgHello, encodeHello(hello)));
        Frame frame;
        ASSERT_TRUE(conn.recvFrame(frame));
        ASSERT_EQ(frame.type, kMsgPlan);
        PlanMsg plan_msg;
        ASSERT_TRUE(decodePlanMsg(frame.payload, plan_msg));
        PlanAckMsg ack;
        ack.planDigest = plan_msg.planDigest;
        ASSERT_TRUE(
            conn.sendFrame(kMsgPlanAck, encodePlanAck(ack)));
        ASSERT_TRUE(conn.sendFrame(kMsgRequestUnit, {}));
        ASSERT_TRUE(conn.recvFrame(frame));
        ASSERT_EQ(frame.type, kMsgUnit);
        // ... and never a word again. The watchdog must cut this
        // connection; recvFrame returning false is that cut.
        Frame cut;
        EXPECT_FALSE(conn.recvFrame(cut));
    });

    // Start the steady worker only after the staller grabbed its
    // unit — retry loops in connectWithRetry keep this simple:
    // both race the same coordinator, and the watchdog sorts out
    // whichever unit the staller ends up holding.
    WorkerOptions steady;
    steady.storeDir = store_dir;
    steady.port = coord.port();
    bool worker_ok = false;
    std::string worker_error;
    std::thread worker_thread([&] {
        worker_ok = runWorker(steady, nullptr, &worker_error);
    });

    EXPECT_TRUE(coord.serve(120.0, &error)) << error;
    staller.join();
    worker_thread.join();
    EXPECT_TRUE(worker_ok) << worker_error;
    EXPECT_EQ(coord.unitsCompleted(), coord.unitCount());
    EXPECT_GE(coord.unitsRequeued(), 1u);

    const MetricsSnapshot after =
        MetricsRegistry::instance().snapshot();
    EXPECT_GE(counterDelta(before, after, "coord.units.watchdog"),
              1u);

    ExperimentDriver merge;
    merge.setStore(store);
    test::expectSameResults(merge.run(plan), reference);
}

} // namespace
} // namespace stems
