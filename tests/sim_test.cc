/**
 * @file
 * Unit tests for the timing model, the prefetch simulator's coverage
 * and overprediction accounting, the batched multi-lane simulator,
 * and the experiment runner.
 */

#include <gtest/gtest.h>

#include "prefetch/engine_registry.hh"
#include "sim/batch_sim.hh"
#include "sim/config.hh"
#include "sim/experiment.hh"
#include "sim/prefetch_sim.hh"
#include "sim/timing.hh"
#include "trace/trace_source.hh"
#include "workloads/registry.hh"

namespace stems {
namespace {

MemRecord
readRec(Addr a, std::uint32_t ops = 0, std::uint32_t dep = 0)
{
    MemRecord r;
    r.vaddr = a;
    r.pc = 0x40;
    r.cpuOps = ops;
    r.depDist = dep;
    r.kind = AccessKind::kRead;
    return r;
}

TEST(Timing, L1HitsRunAtIssueWidth)
{
    TimingModel tm;
    for (int i = 0; i < 1000; ++i)
        tm.demandAccess(readRec(0x1000, 3), AccessLevel::kL1, 0);
    // 4 instructions per access at width 4: about 1 cycle each.
    EXPECT_NEAR(tm.totalCycles(), 1000.0, 50.0);
    EXPECT_EQ(tm.instructions(), 4000u);
}

TEST(Timing, IndependentMissesOverlap)
{
    TimingParams p;
    TimingModel tm(p);
    for (int i = 0; i < 200; ++i)
        tm.demandAccess(readRec(0x1000 + i * 64, 0),
                        AccessLevel::kMemory, 0);
    // 200 serialized misses would cost 60000 cycles; with ROB/MSHR
    // overlap the total must be far lower (bounded below by the
    // channel: 200 fetches x 4 cycles).
    EXPECT_LT(tm.totalCycles(), 20000.0);
    EXPECT_GT(tm.totalCycles(), 800.0);
}

TEST(Timing, DependentMissesSerialize)
{
    TimingParams p;
    TimingModel tm(p);
    for (int i = 0; i < 100; ++i)
        tm.demandAccess(readRec(0x1000 + i * 64, 0, /*dep=*/1),
                        AccessLevel::kMemory, 0);
    // A 100-deep pointer chase pays full latency per link.
    EXPECT_GT(tm.totalCycles(), 100 * p.memLatency * 0.9);
}

TEST(Timing, CoveredChainRunsAtSvbLatency)
{
    TimingParams p;
    TimingModel chained(p);
    for (int i = 0; i < 100; ++i)
        chained.demandAccess(readRec(0x1000 + i * 64, 0, 1),
                             AccessLevel::kSvb, 0);
    // The same chain with SVB hits costs ~svbLatency per link.
    EXPECT_LT(chained.totalCycles(),
              100.0 * (p.svbLatency + 5));
}

TEST(Timing, LatePrefetchPaysResidual)
{
    TimingParams p;
    TimingModel tm(p);
    tm.demandAccess(readRec(0x1000, 0), AccessLevel::kL1, 0);
    double before = tm.totalCycles();
    // A prefetched block that completes at cycle 1000.
    tm.demandAccess(readRec(0x2000, 0, 1), AccessLevel::kSvb,
                    1000.0);
    EXPECT_GE(tm.totalCycles(), 1000.0 + p.svbLatency);
    EXPECT_GT(tm.totalCycles(), before);
}

TEST(Timing, StoresDoNotStall)
{
    TimingParams p;
    TimingModel tm(p);
    for (int i = 0; i < 100; ++i) {
        MemRecord r = readRec(0x1000 + i * 64, 0, 1);
        r.kind = AccessKind::kWrite;
        r.depDist = 0;
        tm.demandAccess(r, AccessLevel::kMemory, 0);
    }
    // Store-wait-free: 100 off-chip writes cost channel time, not
    // stall time.
    EXPECT_LT(tm.totalCycles(), 2000.0);
}

TEST(Timing, PrefetchesConsumeBandwidth)
{
    TimingParams p;
    TimingModel tm(p);
    double r1 = tm.prefetchIssued();
    double r2 = tm.prefetchIssued();
    EXPECT_DOUBLE_EQ(r2 - r1,
                     static_cast<double>(p.channelInterval));
}

TEST(Timing, BandwidthContentionDelaysDemand)
{
    TimingParams p;
    TimingModel loaded(p);
    for (int i = 0; i < 64; ++i)
        loaded.prefetchIssued();
    loaded.demandAccess(readRec(0x1000, 0), AccessLevel::kMemory, 0);

    TimingModel idle(p);
    idle.demandAccess(readRec(0x1000, 0), AccessLevel::kMemory, 0);
    EXPECT_GT(loaded.totalCycles(), idle.totalCycles() + 100);
}

// ---- simulator accounting ----

SimParams
tinySystem()
{
    SimParams p;
    p.hierarchy.l1Bytes = 16 * kBlockBytes;
    p.hierarchy.l1Ways = 2;
    p.hierarchy.l2Bytes = 64 * kBlockBytes;
    p.hierarchy.l2Ways = 4;
    return p;
}

/** An engine that prefetches a scripted list of blocks once. */
class ScriptedPrefetcher : public Prefetcher
{
  public:
    explicit ScriptedPrefetcher(std::vector<Addr> blocks,
                                PrefetchSink sink)
        : blocks_(std::move(blocks)), sink_(sink)
    {
    }

    std::string name() const override { return "scripted"; }

    void
    drainRequests(std::vector<PrefetchRequest> &out) override
    {
        for (Addr a : blocks_)
            out.push_back({a, 0, sink_});
        blocks_.clear();
    }

    int hits = 0;
    int drops = 0;

    void onPrefetchHit(Addr, int) override { ++hits; }
    void onPrefetchDrop(Addr, int) override { ++drops; }

  private:
    std::vector<Addr> blocks_;
    PrefetchSink sink_;
};

TEST(PrefetchSim, SvbHitCountsAsCovered)
{
    ScriptedPrefetcher engine({0x100000}, PrefetchSink::kBuffer);
    PrefetchSimulator sim(tinySystem(), &engine);
    TraceBuilder b;
    b.read(0x200000, 0x1); // triggers the drain of the script
    b.read(0x100000, 0x1); // demand hits the SVB
    Trace t = b.take();
    sim.run(t);
    EXPECT_EQ(sim.stats().svbHits, 1u);
    EXPECT_EQ(sim.stats().offChipReads, 1u);
    EXPECT_EQ(engine.hits, 1);
}

TEST(PrefetchSim, UnusedPrefetchBecomesOverprediction)
{
    ScriptedPrefetcher engine({0x100000}, PrefetchSink::kBuffer);
    PrefetchSimulator sim(tinySystem(), &engine);
    TraceBuilder b;
    b.read(0x200000, 0x1);
    Trace t = b.take();
    sim.run(t); // finish() drains the never-used block
    EXPECT_EQ(sim.stats().overpredictions, 1u);
    EXPECT_EQ(engine.drops, 1);
}

TEST(PrefetchSim, L2SinkCoverageAndSweep)
{
    ScriptedPrefetcher engine({0x100000, 0x300000},
                              PrefetchSink::kL2);
    PrefetchSimulator sim(tinySystem(), &engine);
    TraceBuilder b;
    b.read(0x200000, 0x1);
    b.read(0x100000, 0x1); // prefetch-tagged L2 hit: covered
    Trace t = b.take();
    sim.run(t);
    EXPECT_EQ(sim.stats().l2PrefetchHits, 1u);
    // 0x300000 was never referenced: end-of-run sweep counts it.
    EXPECT_EQ(sim.stats().overpredictions, 1u);
}

TEST(PrefetchSim, WriteConsumingL2PrefetchAdvancesStream)
{
    // A write hitting a prefetched L2 block is a successful prefetch:
    // the engine must see onPrefetchHit (streams advance past it) and
    // the block must not be swept as an overprediction. Like the SVB
    // write path, it does not count toward covered().
    ScriptedPrefetcher engine({0x100000}, PrefetchSink::kL2);
    PrefetchSimulator sim(tinySystem(), &engine);
    TraceBuilder b;
    b.read(0x200000, 0x1); // triggers the drain of the script
    b.write(0x100000, 0x1); // write consumes the prefetched block
    Trace t = b.take();
    sim.run(t);
    EXPECT_EQ(engine.hits, 1);
    EXPECT_EQ(engine.drops, 0);
    EXPECT_EQ(sim.stats().overpredictions, 0u);
    EXPECT_EQ(sim.stats().l2PrefetchHits, 0u);
    EXPECT_EQ(sim.stats().l2Hits, 1u);
}

TEST(PrefetchSim, WriteConsumingSvbPrefetchAdvancesStream)
{
    // The SVB parity case the L2 path mirrors.
    ScriptedPrefetcher engine({0x100000}, PrefetchSink::kBuffer);
    PrefetchSimulator sim(tinySystem(), &engine);
    TraceBuilder b;
    b.read(0x200000, 0x1);
    b.write(0x100000, 0x1);
    Trace t = b.take();
    sim.run(t);
    EXPECT_EQ(engine.hits, 1);
    EXPECT_EQ(sim.stats().overpredictions, 0u);
    EXPECT_EQ(sim.stats().svbHits, 0u);
}

TEST(PrefetchSim, InvalidatedPrefetchIsOverprediction)
{
    ScriptedPrefetcher engine({0x100000}, PrefetchSink::kBuffer);
    PrefetchSimulator sim(tinySystem(), &engine);
    TraceBuilder b;
    b.read(0x200000, 0x1);
    b.invalidate(0x100000);
    b.read(0x400000, 0x1);
    Trace t = b.take();
    sim.run(t);
    EXPECT_EQ(sim.stats().overpredictions, 1u);
    EXPECT_EQ(sim.stats().svbHits, 0u);
}

TEST(PrefetchSim, WarmupExcludedFromStats)
{
    PrefetchSimulator sim(tinySystem(), nullptr);
    TraceBuilder b;
    for (int i = 0; i < 100; ++i)
        b.read(0x100000 + Addr(i) * 0x10000, 0x1);
    Trace t = b.take();
    sim.run(t, 60);
    EXPECT_EQ(sim.stats().reads, 40u);
    EXPECT_EQ(sim.stats().offChipReads, 40u);
}

TEST(PrefetchSim, BaselineHasNoPrefetchActivity)
{
    PrefetchSimulator sim(tinySystem(), nullptr);
    TraceBuilder b;
    for (int i = 0; i < 50; ++i)
        b.read(0x100000 + Addr(i) * 64, 0x1);
    sim.run(b.take());
    EXPECT_EQ(sim.stats().prefetchesIssued, 0u);
    EXPECT_EQ(sim.stats().covered(), 0u);
}

// ---- batched multi-lane simulator ----

void
expectBitwiseEqualStats(const SimStats &a, const SimStats &b)
{
    EXPECT_EQ(a.records, b.records);
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_EQ(a.invalidates, b.invalidates);
    EXPECT_EQ(a.l1Hits, b.l1Hits);
    EXPECT_EQ(a.l2Hits, b.l2Hits);
    EXPECT_EQ(a.l2PrefetchHits, b.l2PrefetchHits);
    EXPECT_EQ(a.svbHits, b.svbHits);
    EXPECT_EQ(a.offChipReads, b.offChipReads);
    EXPECT_EQ(a.offChipWrites, b.offChipWrites);
    EXPECT_EQ(a.prefetchesIssued, b.prefetchesIssued);
    EXPECT_EQ(a.overpredictions, b.overpredictions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
}

TEST(BatchSim, LanesMatchStandaloneSimulators)
{
    // A batched pass must reproduce each lane's standalone run
    // bitwise — including cycles, so the timing model is exercised.
    auto w = makeWorkload("dss-qry17");
    Trace t = w->generate(7, 30000);
    std::size_t warmup = t.size() / 2;

    SystemConfig system = defaultSystemConfig();
    SimParams params;
    params.hierarchy = system.hierarchy;
    params.enableTiming = true;
    params.timing = system.timing;

    const std::vector<const char *> engines = {"stride", "sms",
                                               "stems"};
    const EngineRegistry &registry = EngineRegistry::instance();

    BatchSimulator batch;
    std::vector<std::unique_ptr<Prefetcher>> lane_engines;
    lane_engines.push_back(nullptr); // no-prefetch baseline lane
    batch.addLane(params, nullptr, warmup);
    for (const char *name : engines) {
        lane_engines.push_back(registry.make(name, system, {}));
        batch.addLane(params, lane_engines.back().get(), warmup);
    }
    batch.run(t);

    for (std::size_t lane = 0; lane < lane_engines.size(); ++lane) {
        std::unique_ptr<Prefetcher> engine =
            lane == 0 ? nullptr
                      : registry.make(engines[lane - 1], system, {});
        PrefetchSimulator solo(params, engine.get());
        solo.run(t, warmup);
        expectBitwiseEqualStats(solo.stats(), batch.stats(lane));
    }
}

TEST(BatchSim, ParallelLanesMatchSerialLanes)
{
    // Lane-level parallelism is an execution detail: jobs > 1 must
    // not change any lane's statistics.
    auto w = makeWorkload("web-apache");
    Trace t = w->generate(3, 20000);
    std::size_t warmup = t.size() / 2;
    SystemConfig system = defaultSystemConfig();
    SimParams params;
    params.hierarchy = system.hierarchy;
    const EngineRegistry &registry = EngineRegistry::instance();

    auto run_with = [&](unsigned jobs) {
        BatchSimulator batch;
        std::vector<std::unique_ptr<Prefetcher>> lane_engines;
        for (const char *name : {"stride", "tms", "sms", "stems"}) {
            lane_engines.push_back(registry.make(name, system, {}));
            batch.addLane(params, lane_engines.back().get(),
                          warmup);
        }
        batch.run(t, jobs);
        std::vector<SimStats> out;
        for (std::size_t i = 0; i < batch.lanes(); ++i)
            out.push_back(batch.stats(i));
        return out;
    };

    auto serial = run_with(1);
    auto parallel = run_with(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectBitwiseEqualStats(serial[i], parallel[i]);
}

TEST(BatchSim, TraceSourceRunMatchesVectorRun)
{
    auto w = makeWorkload("em3d");
    Trace t = w->generate(11, 15000);
    SimParams params = tinySystem();

    BatchSimulator from_vector;
    from_vector.addLane(params, nullptr, 100);
    from_vector.run(t);

    BatchSimulator from_source;
    from_source.addLane(params, nullptr, 100);
    VectorTraceSource source(t);
    from_source.run(source);

    expectBitwiseEqualStats(from_vector.stats(0),
                            from_source.stats(0));
}

TEST(BatchSim, PerLaneWarmupIsHonored)
{
    TraceBuilder b;
    for (int i = 0; i < 200; ++i)
        b.read(0x100000 + Addr(i) * 0x10000, 0x1);
    Trace t = b.take();

    BatchSimulator batch;
    batch.addLane(tinySystem(), nullptr, 0);
    batch.addLane(tinySystem(), nullptr, 120);
    batch.run(t);
    EXPECT_EQ(batch.stats(0).records, 200u);
    EXPECT_EQ(batch.stats(1).records, 80u);
}

// ---- experiment runner ----

TEST(Experiment, MakeEngineKnowsAllNames)
{
    ExperimentRunner runner(ExperimentConfig{});
    for (const char *name :
         {"stride", "tms", "sms", "stems", "tms+sms"}) {
        EXPECT_NE(runner.makeEngine(name, false), nullptr) << name;
    }
    EXPECT_EQ(runner.makeEngine("bogus", false), nullptr);
}

TEST(Experiment, RunWorkloadProducesNormalizedMetrics)
{
    ExperimentConfig cfg;
    cfg.traceRecords = 60000;
    cfg.enableTiming = true;
    ExperimentRunner runner(cfg);
    auto w = makeWorkload("dss-qry17");
    auto r = runner.runWorkload(*w, {"sms"});
    EXPECT_GT(r.baselineMisses, 100u);
    ASSERT_EQ(r.engines.size(), 1u);
    const EngineResult *sms = r.find("sms");
    ASSERT_NE(sms, nullptr);
    EXPECT_GE(sms->coverage, 0.0);
    EXPECT_LE(sms->coverage, 1.2);
    EXPECT_GT(sms->speedup, 0.5);
    EXPECT_EQ(r.find("nope"), nullptr);
}

TEST(Experiment, DescribeSystemMentionsKeyStructures)
{
    std::string d = describeSystem(defaultSystemConfig());
    EXPECT_NE(d.find("L1D"), std::string::npos);
    EXPECT_NE(d.find("STeMS"), std::string::npos);
    EXPECT_NE(d.find("RMOB"), std::string::npos);
    EXPECT_NE(d.find("8 MB"), std::string::npos);
}

} // namespace
} // namespace stems
