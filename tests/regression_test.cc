/**
 * @file
 * Shape-regression tests: small-trace versions of the paper's
 * headline results. These pin the *qualitative* relationships the
 * benches reproduce at full scale, so a mechanism regression is
 * caught in seconds rather than by eyeballing bench output.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "sim/experiment.hh"
#include "workloads/registry.hh"

namespace stems {
namespace {

/** One functional run of the three engines over a workload. */
WorkloadResult
runEngines(const std::string &workload, std::size_t records,
           bool timing = false)
{
    ExperimentConfig cfg;
    cfg.traceRecords = records;
    cfg.enableTiming = timing;
    ExperimentRunner runner(cfg);
    auto w = makeWorkload(workload);
    EXPECT_NE(w, nullptr);
    return runner.runWorkload(
        *w, std::vector<std::string>{"tms", "sms", "stems"});
}

TEST(Regression, Em3dTemporalOrdering)
{
    // Paper Figure 9: TMS essentially perfect on em3d; STeMS falls
    // between SMS and TMS.
    auto r = runEngines("em3d", 700'000);
    double tms = r.find("tms")->coverage;
    double sms = r.find("sms")->coverage;
    double stems_cov = r.find("stems")->coverage;
    EXPECT_GT(tms, 0.9);
    EXPECT_GT(stems_cov, sms - 0.05);
    EXPECT_LT(stems_cov, tms + 0.02);
}

TEST(Regression, DssStemsMatchesSms)
{
    // Paper Section 5.5: in DSS, STeMS achieves essentially the same
    // coverage as SMS while TMS is ineffective.
    auto r = runEngines("dss-qry17", 600'000);
    double tms = r.find("tms")->coverage;
    double sms = r.find("sms")->coverage;
    double stems_cov = r.find("stems")->coverage;
    EXPECT_LT(tms, 0.15);
    EXPECT_GT(sms, 0.5);
    EXPECT_NEAR(stems_cov, sms, 0.06);
}

TEST(Regression, CommercialStemsDominatesTms)
{
    // STeMS must capture far more than TMS alone on OLTP/web (it
    // adds the spatial dimension TMS lacks).
    auto r = runEngines("web-apache", 800'000);
    EXPECT_GT(r.find("stems")->coverage,
              r.find("tms")->coverage + 0.15);
}

TEST(Regression, CommercialOverpredictionInBand)
{
    // Paper: STeMS overpredicts ~29% on average; our commercial
    // workloads land in the 10-40% band.
    auto r = runEngines("oltp-db2", 800'000);
    double over = r.find("stems")->overprediction;
    EXPECT_GT(over, 0.05);
    EXPECT_LT(over, 0.45);
}

TEST(Regression, SparseScientificOrdering)
{
    // Paper Figure 10 sparse: TMS > STeMS > SMS.
    auto r = runEngines("sparse", 900'000, /*timing=*/true);
    double tms = r.find("tms")->speedup;
    double sms = r.find("sms")->speedup;
    double stems_sp = r.find("stems")->speedup;
    EXPECT_GT(tms, stems_sp);
    EXPECT_GT(stems_sp, sms);
    EXPECT_GT(tms, 1.5); // "a factor of four or more" at full scale
}

TEST(Regression, DssTemporalSpeedupIsNil)
{
    // Paper Section 5.6: temporal predictions have virtually no
    // performance impact in DSS.
    auto r = runEngines("dss-qry2", 500'000, /*timing=*/true);
    EXPECT_NEAR(r.find("tms")->speedup, 1.0, 0.05);
    EXPECT_GT(r.find("sms")->speedup, 1.02);
}

TEST(Regression, StemsBestOrTiedOnWeb)
{
    // Paper Figure 10: STeMS achieves a slight speedup advantage in
    // web serving.
    auto r = runEngines("web-zeus", 800'000, /*timing=*/true);
    double stems_sp = r.find("stems")->speedup;
    EXPECT_GE(stems_sp + 0.01, r.find("tms")->speedup);
    EXPECT_GE(stems_sp + 0.01, r.find("sms")->speedup);
    EXPECT_GT(stems_sp, 1.0);
}

TEST(Regression, NaiveHybridShape)
{
    // Paper Section 5.5: the side-by-side combination approaches the
    // joint coverage. (The paper's 2-3x overprediction blow-up does
    // not fully reproduce in this substrate: our SMS prefetches into
    // the L2 and thereby pre-filters TMS's miss stream, dampening
    // the interference — see EXPERIMENTS.md. We pin the coverage
    // property and that the hybrid is at least as wasteful as its
    // cleaner constituent.)
    ExperimentConfig cfg;
    cfg.traceRecords = 800'000;
    ExperimentRunner runner(cfg);
    auto w = makeWorkload("web-apache");
    auto r = runner.runWorkload(
        *w,
        std::vector<std::string>{"tms+sms", "stems", "sms"});
    const EngineResult *hybrid = r.find("tms+sms");
    const EngineResult *stems_r = r.find("stems");
    const EngineResult *sms = r.find("sms");
    EXPECT_GT(hybrid->coverage, stems_r->coverage - 0.08);
    EXPECT_GT(hybrid->overprediction,
              sms->overprediction * 1.5);
}

} // namespace
} // namespace stems
