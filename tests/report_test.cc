/**
 * @file
 * Tests for the run-comparison reporting backend
 * (analysis/report.hh): the `--json` result format round-trips
 * exactly through the shared writer/parser pair, compareRuns flags
 * changes and regressions with correct threshold semantics, and the
 * Markdown/CSV renderings carry the delta table `stems_report`
 * prints.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/report.hh"

namespace stems {
namespace {

class ReportTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = testing::TempDir() + "stems_report_test_" +
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name();
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string
    path(const std::string &name) const
    {
        return dir_ + "/" + name;
    }

    std::string dir_;
};

/** A small synthetic two-workload sweep result. */
std::vector<WorkloadResult>
sampleResults()
{
    std::vector<WorkloadResult> results(2);
    results[0].workload = "oltp-db2";
    results[0].workloadClass = WorkloadClass::kOltp;
    results[0].baselineMisses = 10000;
    results[0].baselineIpc = 0.75;
    results[0].baselineCycles = 1.0e7;
    results[0].strideCycles = 9.0e6;
    EngineResult e;
    e.engine = "stems";
    e.coverage = 0.62;
    e.uncovered = 0.38;
    e.overprediction = 0.29;
    e.speedup = 1.3100000000000001;
    e.stats.svbHits = 5000;
    e.stats.l2PrefetchHits = 1200;
    e.stats.prefetchesIssued = 9000;
    e.stats.offChipReads = 3800;
    e.extra["placed"] = 0.1 + 0.2; // not exactly 0.3
    results[0].engines.push_back(e);
    e.engine = "sms";
    e.coverage = 0.54;
    e.extra.clear();
    results[0].engines.push_back(e);

    results[1].workload = "em3d \"quoted\\name\"";
    results[1].workloadClass = WorkloadClass::kScientific;
    results[1].baselineMisses = 1;
    EngineResult s;
    s.engine = "tms";
    s.coverage = 0.001;
    results[1].engines.push_back(s);
    return results;
}

TEST_F(ReportTest, JsonRoundTripIsExact)
{
    auto results = sampleResults();
    std::string file = path("run.json");
    std::string error;
    ASSERT_TRUE(writeResultsJson(file, 500000, 42, results, &error))
        << error;

    RunData run;
    ASSERT_TRUE(loadResultsJson(file, run, &error)) << error;
    EXPECT_EQ(run.records, 500000u);
    EXPECT_EQ(run.seed, 42u);
    ASSERT_EQ(run.workloads.size(), 2u);

    const RunWorkloadRow &w = run.workloads[0];
    EXPECT_EQ(w.workload, "oltp-db2");
    EXPECT_EQ(w.workloadClass, "OLTP");
    EXPECT_EQ(w.baselineMisses, 10000u);
    EXPECT_EQ(w.baselineIpc, 0.75);
    EXPECT_EQ(w.baselineCycles, 1.0e7);
    EXPECT_EQ(w.strideCycles, 9.0e6);
    ASSERT_EQ(w.engines.size(), 2u);
    const RunEngineRow &e = w.engines[0];
    EXPECT_EQ(e.engine, "stems");
    EXPECT_EQ(e.coverage, 0.62);
    EXPECT_EQ(e.uncovered, 0.38);
    EXPECT_EQ(e.overprediction, 0.29);
    // %.17g doubles round-trip bitwise.
    EXPECT_EQ(e.speedup, 1.3100000000000001);
    EXPECT_EQ(e.prefetchesIssued, 9000u);
    EXPECT_EQ(e.offChipReads, 3800u);
    EXPECT_EQ(e.covered, 6200u); // svbHits + l2PrefetchHits
    ASSERT_EQ(e.extra.count("placed"), 1u);
    EXPECT_EQ(e.extra.at("placed"), 0.1 + 0.2);

    // Escaped workload names survive the trip.
    EXPECT_EQ(run.workloads[1].workload, "em3d \"quoted\\name\"");
    EXPECT_NE(run.find("em3d \"quoted\\name\"", "tms"), nullptr);
    EXPECT_EQ(run.find("nope", "tms"), nullptr);
}

TEST_F(ReportTest, LoadRejectsMissingAndMalformedFiles)
{
    RunData run;
    std::string error;
    EXPECT_FALSE(loadResultsJson(path("absent.json"), run, &error));
    EXPECT_NE(error.find("cannot read"), std::string::npos);

    std::FILE *f = std::fopen(path("bad.json").c_str(), "w");
    std::fputs("{\"records\": 5, \"workloads\": [", f);
    std::fclose(f);
    EXPECT_FALSE(loadResultsJson(path("bad.json"), run, &error));

    f = std::fopen(path("noarray.json").c_str(), "w");
    std::fputs("{\"records\": 5}", f);
    std::fclose(f);
    EXPECT_FALSE(loadResultsJson(path("noarray.json"), run, &error));
    EXPECT_NE(error.find("workloads"), std::string::npos);
}

TEST_F(ReportTest, IdenticalRunsCompareClean)
{
    auto results = sampleResults();
    std::string error;
    ASSERT_TRUE(writeResultsJson(path("a.json"), 1000, 1, results,
                                 &error));
    RunData a, b;
    ASSERT_TRUE(loadResultsJson(path("a.json"), a, &error));
    ASSERT_TRUE(loadResultsJson(path("a.json"), b, &error));

    RunComparison cmp = compareRuns(a, b, 0.0);
    EXPECT_EQ(cmp.rows.size(), 3u);
    EXPECT_EQ(cmp.changed, 0u);
    EXPECT_EQ(cmp.regressions, 0u);
    EXPECT_FALSE(cmp.configMismatch);
    for (const DeltaRow &row : cmp.rows) {
        EXPECT_TRUE(row.inOld);
        EXPECT_TRUE(row.inNew);
        EXPECT_FALSE(row.changed);
    }
}

TEST_F(ReportTest, RegressionAndThresholdSemantics)
{
    auto old_results = sampleResults();
    auto new_results = sampleResults();
    // Coverage drops by 2pp on (oltp-db2, stems).
    new_results[0].engines[0].coverage = 0.60;
    std::string error;
    ASSERT_TRUE(writeResultsJson(path("old.json"), 1000, 1,
                                 old_results, &error));
    ASSERT_TRUE(writeResultsJson(path("new.json"), 1000, 1,
                                 new_results, &error));
    RunData a, b;
    ASSERT_TRUE(loadResultsJson(path("old.json"), a, &error));
    ASSERT_TRUE(loadResultsJson(path("new.json"), b, &error));

    // Exact comparison flags it as a regression.
    RunComparison exact = compareRuns(a, b, 0.0);
    EXPECT_EQ(exact.changed, 1u);
    EXPECT_EQ(exact.regressions, 1u);
    const DeltaRow *row = nullptr;
    for (const DeltaRow &r : exact.rows)
        if (r.workload == "oltp-db2" && r.engine == "stems")
            row = &r;
    ASSERT_NE(row, nullptr);
    EXPECT_TRUE(row->regression);
    EXPECT_EQ(row->covOld, 0.62);
    EXPECT_EQ(row->covNew, 0.60);

    // A tolerant threshold swallows the 2pp delta.
    RunComparison tolerant = compareRuns(a, b, 0.05);
    EXPECT_EQ(tolerant.changed, 0u);
    EXPECT_EQ(tolerant.regressions, 0u);

    // An *improvement* beyond the threshold is changed, not a
    // regression.
    new_results[0].engines[0].coverage = 0.70;
    ASSERT_TRUE(writeResultsJson(path("new.json"), 1000, 1,
                                 new_results, &error));
    ASSERT_TRUE(loadResultsJson(path("new.json"), b, &error));
    RunComparison improved = compareRuns(a, b, 0.0);
    EXPECT_EQ(improved.changed, 1u);
    EXPECT_EQ(improved.regressions, 0u);
}

TEST_F(ReportTest, AddedAndRemovedCellsAreFlagged)
{
    auto old_results = sampleResults();
    auto new_results = sampleResults();
    new_results[0].engines.pop_back(); // drop (oltp-db2, sms)
    EngineResult added;
    added.engine = "stride";
    new_results[1].engines.push_back(added);

    std::string error;
    ASSERT_TRUE(writeResultsJson(path("old.json"), 1000, 1,
                                 old_results, &error));
    ASSERT_TRUE(writeResultsJson(path("new.json"), 1000, 2,
                                 new_results, &error));
    RunData a, b;
    ASSERT_TRUE(loadResultsJson(path("old.json"), a, &error));
    ASSERT_TRUE(loadResultsJson(path("new.json"), b, &error));

    RunComparison cmp = compareRuns(a, b, 0.0);
    EXPECT_TRUE(cmp.configMismatch); // seeds differ
    EXPECT_EQ(cmp.rows.size(), 4u);  // union of cells
    std::size_t removed = 0, added_rows = 0;
    for (const DeltaRow &row : cmp.rows) {
        if (!row.inNew) {
            ++removed;
            EXPECT_EQ(row.engine, "sms");
            EXPECT_TRUE(row.changed);
        }
        if (!row.inOld) {
            ++added_rows;
            EXPECT_EQ(row.engine, "stride");
            EXPECT_TRUE(row.changed);
        }
    }
    EXPECT_EQ(removed, 1u);
    EXPECT_EQ(added_rows, 1u);
}

TEST_F(ReportTest, RenderingsCarryTheDeltaTable)
{
    auto old_results = sampleResults();
    auto new_results = sampleResults();
    new_results[0].engines[0].coverage = 0.60;
    std::string error;
    ASSERT_TRUE(writeResultsJson(path("old.json"), 1000, 1,
                                 old_results, &error));
    ASSERT_TRUE(writeResultsJson(path("new.json"), 1000, 1,
                                 new_results, &error));
    RunData a, b;
    ASSERT_TRUE(loadResultsJson(path("old.json"), a, &error));
    ASSERT_TRUE(loadResultsJson(path("new.json"), b, &error));
    RunComparison cmp = compareRuns(a, b, 0.0);

    std::string md = renderComparisonMarkdown(cmp, a, b, 0.0);
    EXPECT_NE(md.find("REGRESSION"), std::string::npos);
    EXPECT_NE(md.find("62.00% → 60.00%"), std::string::npos);
    EXPECT_NE(md.find("old.json"), std::string::npos);
    EXPECT_NE(md.find("1 regressions"), std::string::npos);

    std::string csv = renderComparisonCsv(cmp);
    // Header + one line per union cell.
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(csv.begin(), csv.end(), '\n')),
              1 + cmp.rows.size());
    EXPECT_NE(csv.find("oltp-db2,stems,REGRESSION"),
              std::string::npos);
    EXPECT_NE(csv.find("oltp-db2,sms,ok"), std::string::npos);
}

TEST_F(ReportTest, PreCoveredFilesSkipTheAccuracyColumn)
{
    // Files written before the "covered" field existed cannot
    // report accuracy; comparing them must not fabricate 0% values
    // (which would flag every cell as changed).
    auto results = sampleResults();
    std::string error;
    ASSERT_TRUE(writeResultsJson(path("new.json"), 1000, 1, results,
                                 &error));
    std::string text;
    {
        std::ifstream in(path("new.json"));
        std::stringstream ss;
        ss << in.rdbuf();
        text = ss.str();
    }
    // Simulate the old writer by stripping the covered field.
    for (std::string::size_type pos;
         (pos = text.find(", \"covered\": ")) != std::string::npos;) {
        auto end = text.find_first_of(",}", pos + 13);
        text.erase(pos, end - pos);
    }
    {
        std::ofstream out(path("old.json"));
        out << text;
    }

    RunData a, b;
    ASSERT_TRUE(loadResultsJson(path("old.json"), a, &error))
        << error;
    ASSERT_TRUE(loadResultsJson(path("new.json"), b, &error));
    EXPECT_FALSE(a.workloads[0].engines[0].hasCovered);
    EXPECT_TRUE(b.workloads[0].engines[0].hasCovered);

    // Identical metrics otherwise: zero changes, zero regressions.
    RunComparison cmp = compareRuns(a, b, 0.0);
    EXPECT_EQ(cmp.changed, 0u);
    EXPECT_EQ(cmp.regressions, 0u);
    for (const DeltaRow &row : cmp.rows)
        EXPECT_FALSE(row.accComparable);

    // The renderings mark the column unavailable instead of 0%.
    std::string md = renderComparisonMarkdown(cmp, a, b, 0.0);
    EXPECT_NE(md.find("n/a"), std::string::npos);
    std::string csv = renderComparisonCsv(cmp);
    EXPECT_NE(csv.find(",ok,"), std::string::npos);
    EXPECT_EQ(csv.find("REGRESSION"), std::string::npos);
}

TEST_F(ReportTest, HistoryRenderingOrdersBySaveTime)
{
    std::vector<StoredResultInfo> entries(2);
    entries[0].meta = {"oltp-db2", "stems", 1000, 42,
                       0.62,       0.81,    1.31, true};
    entries[0].savedAtUnix = 1700000000;
    entries[1].meta = {"em3d", "sms", 1000, 42, 0.57, 0.8, 0.0,
                       false};
    entries[1].savedAtUnix = 1700003600;

    std::string md = renderHistoryMarkdown(entries, "/some/store");
    EXPECT_NE(md.find("/some/store"), std::string::npos);
    auto first = md.find("oltp-db2");
    auto second = md.find("em3d");
    ASSERT_NE(first, std::string::npos);
    ASSERT_NE(second, std::string::npos);
    EXPECT_LT(first, second); // oldest first
    EXPECT_NE(md.find("2023-11-14"), std::string::npos);

    std::string csv = renderHistoryCsv(entries);
    EXPECT_NE(csv.find("1700000000,oltp-db2,stems"),
              std::string::npos);

    EXPECT_NE(renderHistoryMarkdown({}, "/x").find("No cached"),
              std::string::npos);
}

} // namespace
} // namespace stems
