/**
 * @file
 * Ablation (paper Section 4.3): RMOB sizing. Spatial filtering lets
 * STeMS shrink its temporal buffer from TMS's 384K entries (2 MB) to
 * 128K (1 MB); for workloads whose coverage requires capturing an
 * entire iteration (the scientific codes) the reduction matters most.
 * This bench sweeps the STeMS RMOB size and contrasts TMS's
 * sensitivity to the same capacity.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace stems;

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv, 1'000'000);
    BenchObsSession obs(opts, "ablation_rmob");
    requireNoPerf(opts, "ablation sweeps are not the pinned perf sweep");
    requireNoEngineSelection(opts, "fixed STeMS/TMS buffer-size sweep");
    std::cout << banner("Ablation: temporal buffer sizing", opts);

    const std::vector<std::size_t> sizes = {
        16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024, 384 * 1024};
    std::vector<PlanEngine> columns;
    for (std::size_t entries : sizes) {
        EngineOptions o;
        o.bufferEntries = entries;
        std::string label = std::to_string(entries / 1024) + "K";
        columns.push_back(PlanEngine{"stems", "stems " + label, o});
        columns.push_back(PlanEngine{"tms", "tms " + label, o});
    }

    const std::vector<std::string> workloads =
        benchWorkloads(opts, {"em3d", "oltp-db2"});
    const SweepPlan plan = benchPlan(opts, /*timing=*/false,
                                     workloads, std::move(columns));
    ExperimentDriver driver;
    configureBenchDriver(driver, opts);

    Table table({"workload", "entries", "STeMS covered",
                 "TMS covered"});
    const auto results = driver.run(plan);
    maybeWriteJson(opts, results);
    for (const WorkloadResult &r : results) {
        bool first = true;
        for (std::size_t entries : sizes) {
            std::string label = std::to_string(entries / 1024) + "K";
            const EngineResult *stems_r = r.find("stems " + label);
            const EngineResult *tms_r = r.find("tms " + label);
            table.addRow({first ? r.workload : "", label,
                          fmtPct(stems_r->coverage),
                          fmtPct(tms_r->coverage)});
            first = false;
        }
        table.addSeparator();
    }
    table.print(std::cout);

    std::cout << "\nPaper reference (Section 4.3): spatial filtering "
                 "reduces the buffer from\n384K entries (TMS) to 128K "
                 "(STeMS); for scientific access patterns the\n"
                 "reduction can be even more significant.\n";
    reportStoreStats(driver);
    obs.finish();
    return 0;
}
