/**
 * @file
 * Ablation (paper Section 4.3): RMOB sizing. Spatial filtering lets
 * STeMS shrink its temporal buffer from TMS's 384K entries (2 MB) to
 * 128K (1 MB); for workloads whose coverage requires capturing an
 * entire iteration (the scientific codes) the reduction matters most.
 * This bench sweeps the STeMS RMOB size and contrasts TMS's
 * sensitivity to the same capacity.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "core/stems.hh"
#include "prefetch/tms.hh"
#include "sim/prefetch_sim.hh"
#include "workloads/registry.hh"

using namespace stems;

int
main(int argc, char **argv)
{
    std::size_t records = traceRecordsArg(argc, argv, 1'000'000);
    std::cout << banner("Ablation: temporal buffer sizing", records);

    Table table({"workload", "entries", "STeMS covered",
                 "TMS covered"});
    for (const char *name : {"em3d", "oltp-db2"}) {
        auto w = makeWorkload(name);
        bool scientific =
            w->workloadClass() == WorkloadClass::kScientific;
        Trace t = w->generate(42, records);
        std::size_t warmup = t.size() / 2;

        SimParams sp;
        PrefetchSimulator base(sp, nullptr);
        base.run(t, warmup);
        double denom = base.stats().offChipReads;

        for (std::size_t entries :
             {16u * 1024u, 32u * 1024u, 64u * 1024u, 128u * 1024u,
              384u * 1024u}) {
            StemsParams p;
            p.rmobEntries = entries;
            if (scientific)
                p.streams.lookahead = 12;
            StemsPrefetcher stems_engine(p);
            PrefetchSimulator stems_sim(sp, &stems_engine);
            stems_sim.run(t, warmup);

            TmsParams tp;
            tp.bufferEntries = entries;
            if (scientific)
                tp.lookahead = 12;
            TmsPrefetcher tms_engine(tp);
            PrefetchSimulator tms_sim(sp, &tms_engine);
            tms_sim.run(t, warmup);

            table.addRow(
                {entries == 16 * 1024 ? w->name() : "",
                 std::to_string(entries / 1024) + "K",
                 fmtPct(stems_sim.stats().covered() / denom),
                 fmtPct(tms_sim.stats().covered() / denom)});
            std::cout << "." << std::flush;
        }
        table.addSeparator();
    }
    std::cout << "\n";
    table.print(std::cout);

    std::cout << "\nPaper reference (Section 4.3): spatial filtering "
                 "reduces the buffer from\n384K entries (TMS) to 128K "
                 "(STeMS); for scientific access patterns the\n"
                 "reduction can be even more significant.\n";
    return 0;
}
