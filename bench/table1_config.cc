/**
 * @file
 * Table 1 — system and application parameters: prints the modelled
 * node configuration and the synthetic application suite standing in
 * for the paper's workloads (see DESIGN.md Section 1 for the
 * substitution rationale).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "sim/config.hh"
#include "workloads/registry.hh"

using namespace stems;

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv, 200'000);
    BenchObsSession obs(opts, "table1_config");
    requireNoPerf(opts, "the perf trajectory pins fig9, not the config table");
    requireNoEngineSelection(opts, "configuration report runs no engines");
    requireNoJson(opts,
                  "configuration report produces no sweep results");

    std::printf("=== Table 1: system and application parameters ===\n\n");
    std::printf("%s\n", describeSystem(defaultSystemConfig()).c_str());

    std::printf("Application suite (synthetic stand-ins; paper "
                "originals in parentheses)\n");
    std::printf("  web-apache   Web serving (SPECweb99 on Apache "
                "2.0, 16K connections)\n");
    std::printf("  web-zeus     Web serving (SPECweb99 on Zeus 4.3)\n");
    std::printf("  oltp-db2     OLTP (TPC-C v3.0 on DB2 v8 ESE, 100 "
                "warehouses)\n");
    std::printf("  oltp-oracle  OLTP (TPC-C v3.0 on Oracle 10g, 100 "
                "warehouses)\n");
    std::printf("  dss-qry2     DSS (TPC-H Qry 2 on DB2, "
                "join-dominated)\n");
    std::printf("  dss-qry16    DSS (TPC-H Qry 16 on DB2, "
                "join-dominated)\n");
    std::printf("  dss-qry17    DSS (TPC-H Qry 17 on DB2, balanced "
                "scan-join)\n");
    std::printf("  em3d         Scientific (em3d: 3M nodes, degree "
                "2)\n");
    std::printf("  ocean        Scientific (ocean: 1026x1026 grid)\n");
    std::printf("  sparse       Scientific (sparse: 4096x4096 "
                "matrix)\n\n");

    // Sampled summaries, generated in parallel through the driver.
    const std::vector<std::string> workloads = benchWorkloads(opts);
    const SweepPlan plan = benchPlan(opts, /*timing=*/false,
                                     workloads,
                                     std::vector<std::string>{});
    ExperimentDriver driver;
    configureBenchDriver(driver, opts);
    driver.applyPlan(plan);
    std::vector<TraceSummary> summaries(workloads.size());
    driver.forEachTrace(
        workloads,
        [&](std::size_t index, const Workload &, const Trace &t) {
            summaries[index] = summarize(t);
        });

    std::printf("Workload statistics (%zu-record traces, seed "
                "%llu):\n",
                opts.records,
                static_cast<unsigned long long>(opts.seed));
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const TraceSummary &s = summaries[i];
        std::printf("  %-12s %8zu records  %5.1f%% reads  %5.1f%% "
                    "dependent  %7zu regions\n",
                    workloads[i].c_str(), s.records,
                    100.0 * s.reads / s.records,
                    100.0 * s.dependentReads / (s.reads ? s.reads : 1),
                    s.distinctRegions);
    }
    reportStoreStats(driver);
    obs.finish();
    return 0;
}
