/**
 * @file
 * Ablation (paper Section 4.3): stream lookahead. The paper uses a
 * lookahead of 8 for commercial workloads and 12 for scientific ones
 * because it "controls timeliness and mispredictions (particularly at
 * the end of streams)". This bench sweeps the STeMS lookahead on a
 * commercial and a scientific workload.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace stems;

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv, 1'000'000);
    BenchObsSession obs(opts, "ablation_lookahead");
    requireNoPerf(opts, "ablation sweeps are not the pinned perf sweep");
    requireNoEngineSelection(opts, "fixed STeMS lookahead sweep");
    std::cout << banner("Ablation: STeMS stream lookahead", opts);

    std::vector<PlanEngine> columns;
    for (unsigned lookahead : {2u, 4u, 8u, 12u, 16u, 24u}) {
        EngineOptions o;
        o.lookahead = lookahead;
        columns.push_back(
            PlanEngine{"stems", std::to_string(lookahead), o});
    }

    const std::vector<std::string> workloads =
        benchWorkloads(opts, {"oltp-db2", "em3d"});
    const SweepPlan plan = benchPlan(opts, /*timing=*/true,
                                     workloads, std::move(columns));
    ExperimentDriver driver;
    configureBenchDriver(driver, opts);

    Table table({"workload", "lookahead", "covered", "overpred",
                 "speedup"});
    const auto results = driver.run(plan);
    maybeWriteJson(opts, results);
    for (const WorkloadResult &r : results) {
        bool first = true;
        for (const EngineResult &e : r.engines) {
            // Speedup over the no-prefetch system (the historical
            // presentation of this sweep), not the stride baseline.
            table.addRow({first ? r.workload : "", e.engine,
                          fmtPct(e.coverage),
                          fmtPct(e.overprediction),
                          fmtX(r.baselineCycles / e.stats.cycles)});
            first = false;
        }
        table.addSeparator();
    }
    table.print(std::cout);

    std::cout << "\nPaper reference (Section 4.3): lookahead 8 for "
                 "commercial workloads, 12 for\nscientific ones "
                 "(higher bandwidth requirements).\n";
    reportStoreStats(driver);
    obs.finish();
    return 0;
}
