/**
 * @file
 * Ablation (paper Section 4.3): stream lookahead. The paper uses a
 * lookahead of 8 for commercial workloads and 12 for scientific ones
 * because it "controls timeliness and mispredictions (particularly at
 * the end of streams)". This bench sweeps the STeMS lookahead on a
 * commercial and a scientific workload.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "core/stems.hh"
#include "sim/prefetch_sim.hh"
#include "sim/timing.hh"
#include "workloads/registry.hh"

using namespace stems;

int
main(int argc, char **argv)
{
    std::size_t records = traceRecordsArg(argc, argv, 1'000'000);
    std::cout << banner("Ablation: STeMS stream lookahead", records);

    Table table({"workload", "lookahead", "covered", "overpred",
                 "speedup"});
    for (const char *name : {"oltp-db2", "em3d"}) {
        auto w = makeWorkload(name);
        Trace t = w->generate(42, records);
        std::size_t warmup = t.size() / 2;

        SimParams sp;
        sp.enableTiming = true;
        PrefetchSimulator base(sp, nullptr);
        base.run(t, warmup);
        double denom = base.stats().offChipReads;
        double base_cycles = base.stats().cycles;

        for (unsigned lookahead : {2u, 4u, 8u, 12u, 16u, 24u}) {
            StemsParams p;
            p.streams.lookahead = lookahead;
            StemsPrefetcher engine(p);
            PrefetchSimulator sim(sp, &engine);
            sim.run(t, warmup);
            table.addRow(
                {lookahead == 2 ? w->name() : "",
                 std::to_string(lookahead),
                 fmtPct(sim.stats().covered() / denom),
                 fmtPct(sim.stats().overpredictions / denom),
                 fmtX(base_cycles / sim.stats().cycles)});
            std::cout << "." << std::flush;
        }
        table.addSeparator();
    }
    std::cout << "\n";
    table.print(std::cout);

    std::cout << "\nPaper reference (Section 4.3): lookahead 8 for "
                 "commercial workloads, 12 for\nscientific ones "
                 "(higher bandwidth requirements).\n";
    return 0;
}
