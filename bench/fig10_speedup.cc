/**
 * @file
 * Figure 10 — performance improvement of TMS, SMS and STeMS over the
 * baseline system (which includes the Table 1 stride prefetcher).
 *
 * Paper shape: across the commercial workloads STeMS improves on the
 * stride baseline by ~31% and on TMS/SMS by ~18%/~3%; OLTP gains
 * little from SMS despite its coverage, DSS gains nothing from TMS,
 * and TMS accelerates em3d/sparse by 4x or more with STeMS between
 * TMS and SMS.
 */

#include <cmath>
#include <iostream>

#include "bench/bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace stems;

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv, 1'500'000);
    BenchObsSession obs(opts, "fig10_speedup");
    requireNoPerf(opts, "the perf trajectory pins fig9, not the timing sweep");
    requireNoEngineSelection(opts, "fixed TMS/SMS/STeMS table columns");
    std::cout << banner("Figure 10: speedup over the stride baseline",
                        opts);

    const SweepPlan plan =
        benchPlan(opts, /*timing=*/true, benchWorkloads(opts),
                  std::vector<std::string>{"tms", "sms", "stems"});
    ExperimentDriver driver;
    configureBenchDriver(driver, opts);

    Table table({"workload", "base IPC", "TMS", "SMS", "STeMS"});
    // Geometric means over the commercial workloads, as the paper's
    // summary numbers aggregate.
    double log_speedup[3] = {};
    double log_stems_vs[3] = {}; // vs stride, sms, tms
    int commercial = 0;

    const auto results = driver.run(plan);
    maybeWriteJson(opts, results);
    for (const WorkloadResult &r : results) {
        const EngineResult *tms = r.find("tms");
        const EngineResult *sms = r.find("sms");
        const EngineResult *stems_r = r.find("stems");
        table.addRow({r.workload, fmtDouble(r.baselineIpc, 2),
                      fmtPct(tms->speedup - 1.0),
                      fmtPct(sms->speedup - 1.0),
                      fmtPct(stems_r->speedup - 1.0)});
        if (r.workloadClass != WorkloadClass::kScientific) {
            log_speedup[0] += std::log(tms->speedup);
            log_speedup[1] += std::log(sms->speedup);
            log_speedup[2] += std::log(stems_r->speedup);
            log_stems_vs[0] += std::log(stems_r->speedup);
            log_stems_vs[1] +=
                std::log(stems_r->speedup / sms->speedup);
            log_stems_vs[2] +=
                std::log(stems_r->speedup / tms->speedup);
            ++commercial;
        }
    }
    if (commercial > 0) {
        table.addSeparator();
        table.addRow(
            {"gmean (commercial)", "",
             fmtPct(std::exp(log_speedup[0] / commercial) - 1),
             fmtPct(std::exp(log_speedup[1] / commercial) - 1),
             fmtPct(std::exp(log_speedup[2] / commercial) - 1)});
    }
    table.print(std::cout);

    if (commercial > 0) {
        std::cout << "\nSTeMS improvement (gmean over commercial "
                     "workloads):\n";
        std::cout
            << "  over stride baseline : "
            << fmtPct(std::exp(log_stems_vs[0] / commercial) - 1)
            << "  (paper: 31%)\n";
        std::cout
            << "  over SMS             : "
            << fmtPct(std::exp(log_stems_vs[1] / commercial) - 1)
            << "  (paper: 3%)\n";
        std::cout
            << "  over TMS             : "
            << fmtPct(std::exp(log_stems_vs[2] / commercial) - 1)
            << "  (paper: 18%)\n";
    }
    reportStoreStats(driver);
    obs.finish();
    return 0;
}
