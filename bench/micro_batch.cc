/**
 * @file
 * micro_batch — quantifies the batched-execution win: records/sec of
 * one N-engine BatchSimulator pass over a stored trace versus N
 * single-engine passes, each of which (as N independent cold runs
 * would) decodes the trace from the store format itself. This
 * documents the cost model of the repository's execution paths, not
 * a result from the paper.
 *
 * Usage: micro_batch [records] [--records N] [--seed N] [--jobs N]
 *                    [--workloads w] [--engines x,y] [--help]
 * The first selected workload provides the trace; the engine list
 * provides the lanes (default: every registered engine plus a
 * deep-lookahead STeMS variant, 6 lanes).
 */

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "prefetch/engine_registry.hh"
#include "sim/batch_sim.hh"
#include "sim/config.hh"
#include "trace/trace_io.hh"
#include "trace/trace_source.hh"
#include "workloads/registry.hh"

using namespace stems;

namespace {

double
seconds(std::chrono::steady_clock::time_point from,
        std::chrono::steady_clock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

struct LaneSpec
{
    std::string label;
    std::string engine;
    EngineOptions options;
};

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv, 400'000);
    BenchObsSession obs(opts, "micro_batch");
    requireNoPerf(opts, "micro_batch reports its own timings; the perf snapshot comes from fig9/micro_engines");
    requireNoJson(opts, "micro_batch reports timings, not sweep "
                        "results");
    std::fputs(banner("micro_batch: 1-vs-N engine trace passes",
                      opts)
                   .c_str(),
               stdout);

    std::vector<LaneSpec> lanes;
    if (opts.engines.empty()) {
        for (const std::string &name :
             EngineRegistry::instance().names())
            lanes.push_back({name, name, {}});
        LaneSpec deep{"stems-la24", "stems", {}};
        deep.options.lookahead = 24;
        lanes.push_back(deep);
    } else {
        for (const std::string &name : opts.engines)
            lanes.push_back({name, name, {}});
    }

    const std::string workload_name =
        benchWorkloads(opts, {"oltp-db2"}).front();
    auto workload = makeWorkload(workload_name);
    if (!workload) {
        std::fprintf(stderr, "unknown workload '%s'\n",
                     workload_name.c_str());
        return 1;
    }

    // No driver sweep here, but --plan-out still documents the
    // invocation as a plan (one workload, the measured lanes).
    {
        std::vector<PlanEngine> columns;
        for (const LaneSpec &lane : lanes)
            columns.push_back(
                PlanEngine{lane.engine, lane.label, lane.options});
        benchPlan(opts, /*timing=*/false, {workload_name},
                  std::move(columns));
    }

    // The trace sits in the on-disk v2 store format; every pass
    // below replays it through the mmap decoder, exactly as a cold
    // run replaying a stored trace would.
    Trace trace = workload->generate(opts.seed, opts.records);
    const std::size_t n = trace.size();
    const std::size_t warmup = n / 2;
    std::string trc = (std::filesystem::temp_directory_path() /
                       ("micro_batch_" +
                        std::to_string(::getpid()) + ".trc"))
                          .string();
    if (!writeTraceFileV2(trc, trace)) {
        std::fprintf(stderr, "cannot write %s\n", trc.c_str());
        return 1;
    }
    Trace().swap(trace);

    SystemConfig system = defaultSystemConfig();
    SimParams sim_params;
    sim_params.hierarchy = system.hierarchy;

    const EngineRegistry &registry = EngineRegistry::instance();
    bool scientific =
        workload->workloadClass() == WorkloadClass::kScientific;
    auto make_engine = [&](const LaneSpec &lane) {
        EngineOptions options = lane.options;
        options.scientific = options.scientific || scientific;
        return registry.make(lane.engine, system, options);
    };

    auto open_source = [&]() {
        auto src = MmapTraceSource::open(trc);
        if (!src) {
            std::fprintf(stderr, "cannot replay %s\n", trc.c_str());
            std::exit(1);
        }
        return src;
    };

    // ---- N single-engine passes: decode + simulate, per engine ----
    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::uint64_t> single_issued;
    for (const LaneSpec &lane : lanes) {
        auto src = open_source();
        auto engine = make_engine(lane);
        PrefetchSimulator sim(sim_params, engine.get());
        sim.run(*src, warmup);
        single_issued.push_back(sim.stats().prefetchesIssued);
    }
    auto t1 = std::chrono::steady_clock::now();
    double single_s = seconds(t0, t1);

    // ---- one batched N-engine pass: decode once ----
    unsigned lane_jobs = ExperimentDriver::resolveJobs(opts.jobs);
    auto run_batched = [&](unsigned jobs) {
        auto src = open_source();
        BatchSimulator sim;
        std::vector<std::unique_ptr<Prefetcher>> engines;
        for (const LaneSpec &lane : lanes) {
            engines.push_back(make_engine(lane));
            sim.addLane(sim_params, engines.back().get(), warmup);
        }
        auto b0 = std::chrono::steady_clock::now();
        sim.run(*src, jobs);
        auto b1 = std::chrono::steady_clock::now();
        // The batch must reproduce every single pass bitwise.
        for (std::size_t i = 0; i < lanes.size(); ++i) {
            if (sim.stats(i).prefetchesIssued != single_issued[i]) {
                std::fprintf(stderr,
                             "lane %s diverged from its single "
                             "pass\n",
                             lanes[i].label.c_str());
                std::exit(1);
            }
        }
        return seconds(b0, b1);
    };
    double batch_serial_s = run_batched(1);
    double batch_parallel_s =
        lane_jobs > 1 ? run_batched(lane_jobs) : batch_serial_s;

    std::filesystem::remove(trc);

    double work = static_cast<double>(n) *
                  static_cast<double>(lanes.size());
    std::printf("\ntrace: %s, %zu records (v2 store format), "
                "%zu lanes\n",
                workload_name.c_str(), n, lanes.size());
    std::printf("%-34s %8.3f s  %12.0f rec/s\n",
                "single-engine passes (xN)", single_s,
                work / single_s);
    std::printf("%-34s %8.3f s  %12.0f rec/s  (%.2fx)\n",
                "batched pass, serial lanes", batch_serial_s,
                work / batch_serial_s, single_s / batch_serial_s);
    std::printf("%-34s %8.3f s  %12.0f rec/s  (%.2fx, %u threads)\n",
                "batched pass, parallel lanes", batch_parallel_s,
                work / batch_parallel_s,
                single_s / batch_parallel_s, lane_jobs);
    obs.finish();
    return 0;
}
