/**
 * @file
 * Ablation (paper Section 5.5): TMS and SMS operating independently
 * but concurrently. Coverage approaches the joint opportunity, but
 * the engines interfere and generate roughly 2-3x the
 * overpredictions of STeMS in OLTP and web — the result that
 * motivated unified reconstruction.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace stems;

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv, 1'200'000);
    BenchObsSession obs(opts, "ablation_naive_hybrid");
    requireNoPerf(opts, "ablation sweeps are not the pinned perf sweep");
    requireNoEngineSelection(opts, "fixed tms+sms vs stems comparison");
    std::cout << banner(
        "Ablation: naive TMS+SMS hybrid vs unified STeMS", opts);

    const std::vector<std::string> workloads = benchWorkloads(
        opts, {"web-apache", "web-zeus", "oltp-db2",
               "oltp-oracle"});
    const SweepPlan plan =
        benchPlan(opts, /*timing=*/false, workloads,
                  std::vector<std::string>{"tms+sms", "stems"});
    ExperimentDriver driver;
    configureBenchDriver(driver, opts);
    Table table({"workload", "engine", "covered", "overpred",
                 "over ratio"});
    const auto results = driver.run(plan);
    maybeWriteJson(opts, results);
    for (const WorkloadResult &r : results) {
        const EngineResult *hybrid = r.find("tms+sms");
        const EngineResult *stems_r = r.find("stems");
        double over_ratio =
            stems_r->overprediction > 0
                ? hybrid->overprediction / stems_r->overprediction
                : 0.0;
        table.addRow({r.workload, "tms+sms",
                      fmtPct(hybrid->coverage),
                      fmtPct(hybrid->overprediction),
                      fmtDouble(over_ratio, 2) + "x"});
        table.addRow({"", "stems", fmtPct(stems_r->coverage),
                      fmtPct(stems_r->overprediction), "1.00x"});
        table.addSeparator();
    }
    table.print(std::cout);

    std::cout << "\nPaper reference (Section 5.5): the side-by-side "
                 "combination generates\nroughly 2-3x the "
                 "overpredictions of STeMS in OLTP and web.\n";
    reportStoreStats(driver);
    obs.finish();
    return 0;
}
