/**
 * @file
 * Ablation (paper Section 5.5): TMS and SMS operating independently
 * but concurrently. Coverage approaches the joint opportunity, but
 * the engines interfere and generate roughly 2-3x the
 * overpredictions of STeMS in OLTP and web — the result that
 * motivated unified reconstruction.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "sim/experiment.hh"
#include "workloads/registry.hh"

using namespace stems;

int
main(int argc, char **argv)
{
    ExperimentConfig cfg;
    cfg.traceRecords = traceRecordsArg(argc, argv, 1'200'000);
    cfg.enableTiming = false;
    std::cout << banner(
        "Ablation: naive TMS+SMS hybrid vs unified STeMS",
        cfg.traceRecords);

    ExperimentRunner runner(cfg);
    Table table({"workload", "engine", "covered", "overpred",
                 "over ratio"});
    for (const char *name : {"web-apache", "web-zeus", "oltp-db2",
                             "oltp-oracle"}) {
        auto w = makeWorkload(name);
        auto r = runner.runWorkload(
            *w, std::vector<std::string>{"tms+sms", "stems"});
        const EngineResult *hybrid = r.find("tms+sms");
        const EngineResult *stems_r = r.find("stems");
        double over_ratio =
            stems_r->overprediction > 0
                ? hybrid->overprediction / stems_r->overprediction
                : 0.0;
        table.addRow({r.workload, "tms+sms",
                      fmtPct(hybrid->coverage),
                      fmtPct(hybrid->overprediction),
                      fmtDouble(over_ratio, 2) + "x"});
        table.addRow({"", "stems", fmtPct(stems_r->coverage),
                      fmtPct(stems_r->overprediction), "1.00x"});
        table.addSeparator();
        std::cout << "." << std::flush;
    }
    std::cout << "\n";
    table.print(std::cout);

    std::cout << "\nPaper reference (Section 5.5): the side-by-side "
                 "combination generates\nroughly 2-3x the "
                 "overpredictions of STeMS in OLTP and web.\n";
    return 0;
}
