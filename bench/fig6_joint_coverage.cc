/**
 * @file
 * Figure 6 — joint analysis of temporal and spatial memory streaming:
 * each off-chip read miss classified as predictable by both oracles,
 * only one, or neither.
 *
 * Paper shape: OLTP and web show all four classes (OLTP biased
 * temporal, web biased spatial) with 34-38% unpredictable; DSS shows
 * near-zero temporal and >60% spatial-only; scientific workloads are
 * temporally near-perfect.
 */

#include <iostream>

#include "analysis/coverage.hh"
#include "bench/bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace stems;

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv, 1'500'000);
    BenchObsSession obs(opts, "fig6_joint_coverage");
    requireNoPerf(opts, "oracle analysis is not the pinned perf sweep");
    requireNoEngineSelection(opts, "oracle analysis runs no engines");
    requireNoJson(opts, "oracle analysis produces no sweep results");
    std::cout << banner("Figure 6: joint TMS/SMS predictability",
                        opts);

    const std::vector<std::string> workloads = benchWorkloads(opts);
    const SweepPlan plan = benchPlan(opts, /*timing=*/false,
                                     workloads,
                                     std::vector<std::string>{});
    ExperimentDriver driver;
    configureBenchDriver(driver, opts);
    driver.applyPlan(plan);

    // One analysis per workload, sharded over the pool; each worker
    // writes only its own slot.
    std::vector<JointCoverage> results(workloads.size());
    driver.forEachTrace(
        workloads,
        [&](std::size_t index, const Workload &, const Trace &t) {
            JointCoverageAnalyzer a;
            a.run(t, t.size() / 2);
            results[index] = a.result();
        });

    Table table({"workload", "misses", "both", "TMS only",
                 "SMS only", "neither", "T", "S", "joint"});
    JointCoverage sum;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const JointCoverage &jc = results[i];
        sum.both += jc.both;
        sum.tmsOnly += jc.tmsOnly;
        sum.smsOnly += jc.smsOnly;
        sum.neither += jc.neither;
        table.addRow({workloads[i], std::to_string(jc.total()),
                      fmtPct(ratio(jc.both, jc.total())),
                      fmtPct(ratio(jc.tmsOnly, jc.total())),
                      fmtPct(ratio(jc.smsOnly, jc.total())),
                      fmtPct(ratio(jc.neither, jc.total())),
                      fmtPct(jc.temporalFraction()),
                      fmtPct(jc.spatialFraction()),
                      fmtPct(jc.jointFraction())});
    }
    table.addSeparator();
    table.addRow({"mean", std::to_string(sum.total()),
                  fmtPct(ratio(sum.both, sum.total())),
                  fmtPct(ratio(sum.tmsOnly, sum.total())),
                  fmtPct(ratio(sum.smsOnly, sum.total())),
                  fmtPct(ratio(sum.neither, sum.total())),
                  fmtPct(sum.temporalFraction()),
                  fmtPct(sum.spatialFraction()),
                  fmtPct(sum.jointFraction())});
    table.print(std::cout);

    std::cout << "\nPaper reference (Section 1): on average 32% "
                 "temporal, 54% spatial,\n70% joint; 34-38% of "
                 "OLTP/web misses unpredictable by either.\n";
    reportStoreStats(driver);
    obs.finish();
    return 0;
}
