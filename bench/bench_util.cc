#include "bench/bench_util.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <thread>

#include "analysis/report.hh"
#include "common/log.hh"
#include "obs/manifest.hh"
#include "obs/metrics.hh"
#include "prefetch/engine_registry.hh"
#include "store/trace_store.hh"
#include "workloads/registry.hh"

namespace stems {

namespace {

std::vector<std::string>
splitList(const std::string &arg)
{
    std::vector<std::string> items;
    std::stringstream ss(arg);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            items.push_back(item);
    return items;
}

std::string
joinNames(const std::vector<std::string> &names)
{
    std::string out;
    for (const std::string &n : names) {
        if (!out.empty())
            out += ", ";
        out += n;
    }
    return out;
}

[[noreturn]] void
usage(const char *argv0, int status)
{
    std::fprintf(
        stderr,
        "usage: %s [records] [options]\n"
        "  --records N        records per workload trace\n"
        "  --jobs N           worker threads (default: hardware)\n"
        "  --seed N           trace-generation seed (default: 42)\n"
        "  --workloads a,b,c  restrict the workload sweep\n"
        "  --engines x,y      restrict the engine sweep\n"
        "  --store DIR        persistent trace/baseline store\n"
        "                     (default: $STEMS_STORE when set)\n"
        "  --no-store         disable the store even if STEMS_STORE\n"
        "                     is set\n"
        "  --json FILE        also write results as JSON\n"
        "  --perf FILE        also write a records/sec snapshot\n"
        "                     (stems-perf-v1; sweep benches only)\n"
        "  --batch            batched execution: one trace pass\n"
        "                     advances all of a workload's cells\n"
        "                     (default)\n"
        "  --no-batch         one task per cell, re-iterating the\n"
        "                     trace (same results, bitwise)\n"
        "  --segments K       segmented execution: checkpoint each\n"
        "                     cell at K segment boundaries and\n"
        "                     resume warm prefixes (needs --store;\n"
        "                     same results, bitwise)\n"
        "  --checkpoint-every N\n"
        "                     checkpoint every N records instead of\n"
        "                     at relative segment cuts (stable\n"
        "                     boundaries across --records values)\n"
        "  --speculate        speculative segment-parallel cold\n"
        "                     execution from stored checkpoints,\n"
        "                     validated at every boundary (needs\n"
        "                     --store; same results, bitwise)\n"
        "  --warmup-records N warm up exactly N records instead of\n"
        "                     50%% of the trace (keeps prefixes\n"
        "                     comparable across --records values)\n"
        "  --unit-granularity workload|cell|segment\n"
        "                     distributed work-unit size for\n"
        "                     `stems_trace serve` (segment needs a\n"
        "                     checkpoint schedule; same results,\n"
        "                     bitwise)\n"
        "  --metrics-out FILE write a metrics snapshot\n"
        "                     (stems-metrics-v1 JSON)\n"
        "  --trace-out FILE   write Chrome trace-event spans\n"
        "                     (load in Perfetto / chrome://tracing)\n"
        "  --manifest-out FILE\n"
        "                     write a run manifest\n"
        "                     (stems-manifest-v1 JSON)\n"
        "  --progress N       heartbeat every N seconds on stderr\n"
        "                     (cells done, record-steps/s)\n"
        "  --plan-out FILE    write the canonical SweepPlan JSON\n"
        "                     this invocation runs\n"
        "  --list             list registered workloads/engines\n"
        "  --help             this message\n",
        argv0);
    std::exit(status);
}

[[noreturn]] void
listRegistries()
{
    std::printf("workloads: %s\n",
                joinNames(WorkloadRegistry::instance().names())
                    .c_str());
    std::printf("engines  : %s\n",
                joinNames(EngineRegistry::instance().names())
                    .c_str());
    std::exit(0);
}

std::uint64_t
numberArg(const char *argv0, const char *flag, const char *value)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(value, &end, 10);
    // strtoull wraps a leading minus into a huge value: reject it.
    if (end == value || *end != '\0' || value[0] == '-') {
        std::fprintf(stderr, "%s: %s wants a non-negative number, "
                     "got '%s'\n",
                     argv0, flag, value);
        usage(argv0, 1);
    }
    return v;
}

} // namespace

BenchOptions
parseBenchOptions(int argc, char **argv, std::size_t default_records)
{
    BenchOptions options;
    options.records = default_records;
    bool no_store = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s wants a value\n",
                             argv[0], arg.c_str());
                usage(argv[0], 1);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(argv[0], 0);
        } else if (arg == "--list") {
            listRegistries();
        } else if (arg == "--records") {
            // Historical contract: 0 keeps the bench default.
            std::uint64_t v = numberArg(argv[0], "--records",
                                        value());
            options.records = v > 0 ? v : default_records;
        } else if (arg == "--jobs" || arg == "-j") {
            options.jobs = static_cast<unsigned>(
                numberArg(argv[0], "--jobs", value()));
        } else if (arg == "--seed") {
            options.seed = numberArg(argv[0], "--seed", value());
        } else if (arg == "--workloads") {
            options.workloads = splitList(value());
        } else if (arg == "--engines") {
            options.engines = splitList(value());
        } else if (arg == "--store") {
            options.storeDir = value();
        } else if (arg == "--no-store") {
            no_store = true;
        } else if (arg == "--json") {
            options.jsonPath = value();
        } else if (arg == "--perf") {
            options.perfPath = value();
        } else if (arg == "--batch") {
            options.batch = true;
        } else if (arg == "--no-batch") {
            options.batch = false;
        } else if (arg == "--segments") {
            std::uint64_t v =
                numberArg(argv[0], "--segments", value());
            options.segments =
                v > 0 ? static_cast<unsigned>(v) : 1;
        } else if (arg == "--checkpoint-every") {
            options.checkpointEvery = static_cast<std::size_t>(
                numberArg(argv[0], "--checkpoint-every", value()));
        } else if (arg == "--speculate") {
            options.speculate = true;
        } else if (arg == "--warmup-records") {
            options.warmupRecords = static_cast<std::size_t>(
                numberArg(argv[0], "--warmup-records", value()));
        } else if (arg == "--unit-granularity") {
            const char *v = value();
            if (!parseUnitGranularity(v,
                                      options.unitGranularity)) {
                std::fprintf(stderr,
                             "%s: --unit-granularity wants "
                             "workload|cell|segment, got '%s'\n",
                             argv[0], v);
                usage(argv[0], 1);
            }
        } else if (arg == "--metrics-out") {
            options.metricsOutPath = value();
        } else if (arg == "--trace-out") {
            options.traceOutPath = value();
        } else if (arg == "--manifest-out") {
            options.manifestOutPath = value();
        } else if (arg == "--plan-out") {
            options.planOutPath = value();
        } else if (arg == "--progress") {
            const char *v = value();
            char *end = nullptr;
            options.progressSeconds = std::strtod(v, &end);
            if (end == v || *end != '\0' ||
                options.progressSeconds < 0) {
                std::fprintf(stderr,
                             "%s: --progress wants a non-negative "
                             "number of seconds, got '%s'\n",
                             argv[0], v);
                usage(argv[0], 1);
            }
        } else if (!arg.empty() && arg[0] != '-') {
            // Historical positional trace-length override; 0 keeps
            // the bench default.
            std::uint64_t v =
                numberArg(argv[0], "records", arg.c_str());
            options.records = v > 0 ? v : default_records;
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n",
                         argv[0], arg.c_str());
            usage(argv[0], 1);
        }
    }

    if (no_store) {
        options.storeDir.clear();
    } else if (options.storeDir.empty()) {
        if (const char *env = std::getenv("STEMS_STORE"))
            options.storeDir = env;
    }

    if ((options.segments > 1 || options.checkpointEvery > 0 ||
         options.speculate) &&
        options.storeDir.empty()) {
        std::fprintf(stderr,
                     "%s: --segments/--checkpoint-every/--speculate "
                     "need a --store to keep checkpoints in\n",
                     argv[0]);
        std::exit(1);
    }

    for (const std::string &w : options.workloads) {
        if (!WorkloadRegistry::instance().contains(w)) {
            std::fprintf(
                stderr, "%s: unknown workload '%s' (have: %s)\n",
                argv[0], w.c_str(),
                joinNames(WorkloadRegistry::instance().names())
                    .c_str());
            std::exit(1);
        }
    }
    for (const std::string &e : options.engines) {
        if (!EngineRegistry::instance().contains(e)) {
            std::fprintf(
                stderr, "%s: unknown engine '%s' (have: %s)\n",
                argv[0], e.c_str(),
                joinNames(EngineRegistry::instance().names())
                    .c_str());
            std::exit(1);
        }
    }
    return options;
}

SweepPlan
benchPlan(const BenchOptions &options, bool enable_timing,
          std::vector<std::string> workloads,
          std::vector<PlanEngine> engines)
{
    SweepPlan plan;
    plan.workloads = std::move(workloads);
    plan.engines = std::move(engines);
    plan.records = options.records;
    plan.seed = options.seed;
    plan.warmupRecords = options.warmupRecords;
    plan.timing = enable_timing;
    plan.jobs = options.jobs;
    plan.batch = options.batch;
    plan.segments = options.segments;
    plan.checkpointEvery = options.checkpointEvery;
    plan.speculate = options.speculate;
    plan.heartbeatSeconds = options.progressSeconds;
    plan.unitGranularity = options.unitGranularity;
    if (!options.planOutPath.empty()) {
        std::string json = sweepPlanJson(plan);
        std::FILE *f = std::fopen(options.planOutPath.c_str(), "w");
        if (!f || std::fwrite(json.data(), 1, json.size(), f) !=
                      json.size()) {
            if (f)
                std::fclose(f);
            logError("cannot write plan to '" + options.planOutPath +
                     "'");
            std::exit(1);
        }
        std::fclose(f);
        // stderr: bench stdout stays bitwise stable across runs.
        logInfo("[plan] wrote " + options.planOutPath);
    }
    return plan;
}

SweepPlan
benchPlan(const BenchOptions &options, bool enable_timing,
          std::vector<std::string> workloads,
          const std::vector<std::string> &engine_names)
{
    std::vector<PlanEngine> engines;
    engines.reserve(engine_names.size());
    for (const std::string &name : engine_names)
        engines.push_back(PlanEngine{name, std::string(), {}});
    return benchPlan(options, enable_timing, std::move(workloads),
                     std::move(engines));
}

std::vector<std::string>
benchWorkloads(const BenchOptions &options)
{
    if (!options.workloads.empty())
        return options.workloads;
    return WorkloadRegistry::instance().names();
}

std::vector<std::string>
benchWorkloads(const BenchOptions &options,
               std::vector<std::string> defaults)
{
    if (!options.workloads.empty())
        return options.workloads;
    return defaults;
}

std::vector<std::string>
benchEngines(const BenchOptions &options,
             std::vector<std::string> defaults)
{
    if (!options.engines.empty())
        return options.engines;
    return defaults;
}

void
requireNoEngineSelection(const BenchOptions &options,
                         const char *reason)
{
    if (options.engines.empty())
        return;
    std::fprintf(stderr,
                 "--engines is not supported by this bench: %s\n",
                 reason);
    std::exit(1);
}

void
requireNoWorkloadSelection(const BenchOptions &options,
                           const char *reason)
{
    if (options.workloads.empty())
        return;
    std::fprintf(stderr,
                 "--workloads is not supported by this bench: %s\n",
                 reason);
    std::exit(1);
}

void
requireNoJson(const BenchOptions &options, const char *reason)
{
    if (options.jsonPath.empty())
        return;
    std::fprintf(stderr,
                 "--json is not supported by this bench: %s\n",
                 reason);
    std::exit(1);
}

void
requireNoPerf(const BenchOptions &options, const char *reason)
{
    if (options.perfPath.empty())
        return;
    std::fprintf(stderr,
                 "--perf is not supported by this bench: %s\n",
                 reason);
    std::exit(1);
}

void
maybeWritePerf(const BenchOptions &options,
               const std::vector<std::string> &workloads,
               const std::vector<std::string> &engines,
               double wall_seconds)
{
    if (options.perfPath.empty())
        return;
    BenchSnapshot snap;
    snap.schema = "stems-perf-v1";
    snap.records = options.records;
    snap.seed = options.seed;
    snap.workloads = workloads;
    snap.engines = engines;
    snap.wallSeconds = wall_seconds;
    if (const char *c = std::getenv("STEMS_BENCH_COMMENT"))
        snap.comment = c;
    BenchComponentRow row;
    row.name = "sweep";
    row.ops = options.records * workloads.size() * engines.size();
    if (wall_seconds > 0) {
        row.opsPerSec = static_cast<double>(row.ops) / wall_seconds;
        row.nsPerOp = wall_seconds * 1e9 /
                      static_cast<double>(row.ops ? row.ops : 1);
    }
    snap.components.push_back(row);
    std::string error;
    if (!writeBenchSnapshotJson(options.perfPath, snap, &error)) {
        logError(error);
        std::exit(1);
    }
    // stderr: bench stdout stays bitwise stable across runs.
    logInfo("[perf] wrote " + options.perfPath);
}

void
configureBenchDriver(ExperimentDriver &driver,
                     const BenchOptions &options)
{
    if (options.storeDir.empty())
        return;
    auto store = std::make_shared<TraceStore>(options.storeDir);
    if (!store->usable()) {
        logError("cannot open trace store '" + options.storeDir +
                 "'");
        std::exit(1);
    }
    driver.setStore(std::move(store));
}

void
maybeWriteJson(const BenchOptions &options,
               const std::vector<WorkloadResult> &results)
{
    if (options.jsonPath.empty())
        return;
    std::string error;
    if (!writeResultsJson(options.jsonPath, options.records,
                          options.seed, results, &error)) {
        logError(error);
        std::exit(1);
    }
    std::printf("[json] wrote %s\n", options.jsonPath.c_str());
}

namespace {

/**
 * The `[store]` diagnostics line, sourced from the process-wide
 * metrics registry — the single source of truth the driver and
 * store mirror their counters into. One code path for batched and
 * unbatched runs (the counters themselves are what differ), and the
 * exact field layout CI greps (`engineSims=0` on warm re-runs,
 * `resumedSims=[1-9]` on incremental runs) is pinned here.
 */
std::string
storeStatsLine(const MetricsSnapshot &snap)
{
    auto counter = [&](const char *name) -> unsigned long long {
        auto it = snap.counters.find(name);
        return it == snap.counters.end()
                   ? 0ull
                   : static_cast<unsigned long long>(it->second);
    };
    char line[512];
    std::snprintf(
        line, sizeof(line),
        "[store] generations=%llu traceHits=%llu "
        "baselineSims=%llu baselineHits=%llu "
        "engineSims=%llu resultHits=%llu resultMisses=%llu "
        "batchedSims=%llu resumedSims=%llu "
        "skippedRecords=%llu checkpointsWritten=%llu "
        "speculativeSims=%llu specCommits=%llu "
        "specMispredicts=%llu",
        counter("driver.trace.generated"),
        counter("store.trace.hit"),
        counter("driver.cell.baseline"),
        counter("store.baseline.hit"),
        counter("driver.cell.engine"),
        counter("store.result.hit"),
        counter("store.result.miss"),
        counter("driver.cell.batched"),
        counter("driver.cell.resumed"),
        counter("ckpt.resume.skipped_records"),
        counter("ckpt.written"),
        counter("driver.cell.speculative"),
        counter("ckpt.speculate.commit"),
        counter("ckpt.speculate.mispredict"));
    return line;
}

} // namespace

void
reportStoreStats(const ExperimentDriver &driver)
{
    if (!driver.store())
        return;
    // stderr, not stdout: bench stdout must stay bitwise identical
    // between cold and warm runs, while these counters differ.
    logInfo(storeStatsLine(MetricsRegistry::instance().snapshot()));
}

BenchObsSession::BenchObsSession(const BenchOptions &options,
                                 std::string tool)
    : options_(options), tool_(std::move(tool))
{
    if (!options_.traceOutPath.empty())
        collector_.attach();
    startNs_ = collector_.nowNs();
    phaseName_ = "run";
    phaseStartNs_ = startNs_;
}

BenchObsSession::~BenchObsSession()
{
    collector_.detach();
}

void
BenchObsSession::phase(const char *name)
{
    std::uint64_t now = collector_.nowNs();
    phases_.emplace_back(phaseName_, now - phaseStartNs_);
    phaseName_ = name;
    phaseStartNs_ = now;
}

void
BenchObsSession::finish()
{
    if (finished_)
        return;
    finished_ = true;
    collector_.detach();
    const std::uint64_t end_ns = collector_.nowNs();
    phases_.emplace_back(phaseName_, end_ns - phaseStartNs_);

    std::string error;
    if (!options_.traceOutPath.empty()) {
        if (!collector_.writeChromeJson(options_.traceOutPath,
                                        &error)) {
            logError(error);
            std::exit(1);
        }
        logInfo("[obs] wrote trace " + options_.traceOutPath);
    }

    const bool want_metrics = !options_.metricsOutPath.empty();
    const bool want_manifest = !options_.manifestOutPath.empty();
    if (!want_metrics && !want_manifest)
        return;
    MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
    if (want_metrics) {
        if (!writeMetricsJson(options_.metricsOutPath, snap,
                              &error)) {
            logError(error);
            std::exit(1);
        }
        logInfo("[obs] wrote metrics " + options_.metricsOutPath);
    }
    if (want_manifest) {
        RunManifest manifest;
        manifest.tool = tool_;
        manifest.host = hostNote();
        auto add = [&](const char *key, std::string value) {
            manifest.config.emplace_back(key, std::move(value));
        };
        add("records", std::to_string(options_.records));
        add("seed", std::to_string(options_.seed));
        add("jobs", std::to_string(ExperimentDriver::resolveJobs(
                        options_.jobs)));
        add("workloads", options_.workloads.empty()
                             ? "(default)"
                             : joinNames(options_.workloads));
        add("engines", options_.engines.empty()
                           ? "(default)"
                           : joinNames(options_.engines));
        add("store", options_.storeDir.empty() ? "(none)"
                                               : options_.storeDir);
        add("batch", options_.batch ? "1" : "0");
        add("segments", std::to_string(options_.segments));
        add("checkpoint_every",
            std::to_string(options_.checkpointEvery));
        add("speculate", options_.speculate ? "1" : "0");
        add("warmup_records",
            std::to_string(options_.warmupRecords));
        add("unit_granularity",
            unitGranularityName(options_.unitGranularity));
        manifest.phaseNs = phases_;
        manifest.wallNs = end_ns - startNs_;
        manifest.metrics = std::move(snap);
        if (!writeRunManifestJson(options_.manifestOutPath,
                                  manifest, &error)) {
            logError(error);
            std::exit(1);
        }
        logInfo("[obs] wrote manifest " + options_.manifestOutPath);
    }
}

std::string
banner(const std::string &title, const BenchOptions &options)
{
    unsigned jobs = ExperimentDriver::resolveJobs(options.jobs);
    std::string warmup =
        options.warmupRecords > 0
            ? std::to_string(options.warmupRecords) +
                  "-record warmup"
            : std::string("50% warmup");
    return "=== " + title + " ===\n(traces: " +
           std::to_string(options.records) + " records/workload, seed " +
           std::to_string(options.seed) +
           ", measurement after " + warmup + ", " + std::to_string(jobs) +
           (jobs == 1 ? " job" : " jobs") +
           (options.storeDir.empty() ? ""
                                     : ", store " + options.storeDir) +
           ")\n";
}

} // namespace stems
