/**
 * @file
 * Ablation (paper Section 4.3): stream-queue count. "Even though only
 * one stream is typically productive at any time, several stream
 * queues are necessary to prevent thrashing when new streams are
 * initiated on misses." This bench sweeps the STeMS queue count.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace stems;

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv, 1'000'000);
    BenchObsSession obs(opts, "ablation_stream_queues");
    requireNoPerf(opts, "ablation sweeps are not the pinned perf sweep");
    requireNoEngineSelection(opts, "fixed STeMS queue-count sweep");
    std::cout << banner("Ablation: stream-queue count", opts);

    std::vector<PlanEngine> columns;
    for (std::size_t queues : {1u, 2u, 4u, 8u, 16u}) {
        EngineOptions o;
        o.streamQueues = queues;
        columns.push_back(
            PlanEngine{"stems", std::to_string(queues), o});
    }

    const std::vector<std::string> workloads =
        benchWorkloads(opts, {"web-apache", "oltp-db2"});
    const SweepPlan plan = benchPlan(opts, /*timing=*/false,
                                     workloads, std::move(columns));
    ExperimentDriver driver;
    configureBenchDriver(driver, opts);

    Table table({"workload", "queues", "covered", "overpred"});
    const auto results = driver.run(plan);
    maybeWriteJson(opts, results);
    for (const WorkloadResult &r : results) {
        bool first = true;
        for (const EngineResult &e : r.engines) {
            table.addRow({first ? r.workload : "", e.engine,
                          fmtPct(e.coverage),
                          fmtPct(e.overprediction)});
            first = false;
        }
        table.addSeparator();
    }
    table.print(std::cout);

    std::cout << "\nPaper reference (Section 4.3): eight stream "
                 "queues, LRU-victimized.\n";
    reportStoreStats(driver);
    obs.finish();
    return 0;
}
