/**
 * @file
 * Ablation (paper Section 4.3): stream-queue count. "Even though only
 * one stream is typically productive at any time, several stream
 * queues are necessary to prevent thrashing when new streams are
 * initiated on misses." This bench sweeps the STeMS queue count.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "core/stems.hh"
#include "sim/prefetch_sim.hh"
#include "workloads/registry.hh"

using namespace stems;

int
main(int argc, char **argv)
{
    std::size_t records = traceRecordsArg(argc, argv, 1'000'000);
    std::cout << banner("Ablation: stream-queue count", records);

    Table table({"workload", "queues", "covered", "overpred"});
    for (const char *name : {"web-apache", "oltp-db2"}) {
        auto w = makeWorkload(name);
        Trace t = w->generate(42, records);
        std::size_t warmup = t.size() / 2;

        SimParams sp;
        PrefetchSimulator base(sp, nullptr);
        base.run(t, warmup);
        double denom = base.stats().offChipReads;

        for (std::size_t queues : {1u, 2u, 4u, 8u, 16u}) {
            StemsParams p;
            p.streams.numStreams = queues;
            StemsPrefetcher engine(p);
            PrefetchSimulator sim(sp, &engine);
            sim.run(t, warmup);
            table.addRow({queues == 1 ? w->name() : "",
                          std::to_string(queues),
                          fmtPct(sim.stats().covered() / denom),
                          fmtPct(sim.stats().overpredictions /
                                 denom)});
            std::cout << "." << std::flush;
        }
        table.addSeparator();
    }
    std::cout << "\n";
    table.print(std::cout);

    std::cout << "\nPaper reference (Section 4.3): eight stream "
                 "queues, LRU-victimized.\n";
    return 0;
}
