/**
 * @file
 * Figure 9 — comparison of temporal, spatial and spatio-temporal
 * memory streaming: covered, uncovered and overpredicted off-chip
 * read misses, normalized to the no-prefetch baseline.
 *
 * Paper shape: STeMS matches or exceeds the better of TMS/SMS in
 * every commercial workload (8% more than the best in OLTP/web, for
 * 50-56% coverage), matches SMS in DSS, and falls between SMS and TMS
 * in the scientific codes; STeMS predicts on average 62% of misses
 * and overpredicts 29%.
 */

#include <chrono>
#include <iostream>

#include "bench/bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace stems;

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv, 1'500'000);
    BenchObsSession obs(opts, "fig9_streaming_comparison");
    std::cout << banner(
        "Figure 9: TMS vs SMS vs STeMS coverage/overprediction",
        opts);

    const std::vector<std::string> engines =
        benchEngines(opts, {"tms", "sms", "stems"});
    const std::vector<std::string> workloads = benchWorkloads(opts);
    const SweepPlan plan =
        benchPlan(opts, /*timing=*/false, workloads, engines);
    ExperimentDriver driver;
    configureBenchDriver(driver, opts);

    Table table({"workload", "base misses", "engine", "covered",
                 "uncovered", "overpred"});
    std::vector<double> cov_sum(engines.size(), 0.0);
    std::vector<double> over_sum(engines.size(), 0.0);
    int n = 0;
    obs.phase("sweep");
    auto t0 = std::chrono::steady_clock::now();
    const auto results = driver.run(plan);
    double wall_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    obs.phase("report");
    maybeWriteJson(opts, results);
    maybeWritePerf(opts, workloads, engines, wall_s);
    for (const WorkloadResult &r : results) {
        bool first = true;
        for (std::size_t i = 0; i < engines.size(); ++i) {
            const EngineResult *e = r.find(engines[i]);
            table.addRow(
                {first ? r.workload : "",
                 first ? std::to_string(r.baselineMisses) : "",
                 engines[i], fmtPct(e->coverage),
                 fmtPct(e->uncovered), fmtPct(e->overprediction)});
            cov_sum[i] += e->coverage;
            over_sum[i] += e->overprediction;
            first = false;
        }
        table.addSeparator();
        ++n;
    }
    for (std::size_t i = 0; i < engines.size(); ++i) {
        table.addRow({"mean", "", engines[i],
                      fmtPct(cov_sum[i] / n), "",
                      fmtPct(over_sum[i] / n)});
    }
    table.print(std::cout);

    std::cout << "\nPaper reference (Sections 1 and 5.5): STeMS "
                 "covers on average 62% of\noff-chip read misses and "
                 "overpredicts 29%; coverage is equal to or higher\n"
                 "than the better of TMS/SMS on every commercial "
                 "workload.\n";
    reportStoreStats(driver);
    obs.finish();
    return 0;
}
