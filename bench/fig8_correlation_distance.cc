/**
 * @file
 * Figure 8 — temporal repetition within spatial generations: the
 * correlation-distance distribution of consecutive accesses against
 * the prior occurrence of the same generation index (+1 = perfect
 * repetition).
 *
 * Paper shape: >=86% of spatially predictable accesses recur within a
 * reordering window of 2 and >=92% within 4 (96% and 92% excluding
 * Qry16, the outlier).
 */

#include <iostream>

#include "analysis/correlation.hh"
#include "bench/bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace stems;

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv, 1'200'000);
    BenchObsSession obs(opts, "fig8_correlation_distance");
    requireNoPerf(opts, "correlation analysis is not the pinned perf sweep");
    requireNoEngineSelection(opts, "correlation analysis runs no engines");
    requireNoJson(opts,
                  "correlation analysis produces no sweep results");
    std::cout << banner(
        "Figure 8: correlation distance within generations", opts);

    std::vector<std::string> headers = {"workload", "pairs"};
    for (int d = -3; d <= 3; ++d) {
        if (d == 0)
            continue;
        headers.push_back((d > 0 ? "+" : "") + std::to_string(d));
    }
    headers.push_back("|d|<=2");
    headers.push_back("|d|<=4");
    headers.push_back("|d|<=6");
    Table table(headers);

    const std::vector<std::string> workloads = benchWorkloads(opts);
    const SweepPlan plan = benchPlan(opts, /*timing=*/false,
                                     workloads,
                                     std::vector<std::string>{});
    ExperimentDriver driver;
    configureBenchDriver(driver, opts);
    driver.applyPlan(plan);

    std::vector<CorrelationAnalyzer> analyzers(workloads.size());
    driver.forEachTrace(
        workloads,
        [&](std::size_t index, const Workload &, const Trace &t) {
            analyzers[index].run(t);
        });

    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const CorrelationAnalyzer &a = analyzers[i];
        const Histogram &h = a.distances();
        std::vector<std::string> row = {workloads[i],
                                        std::to_string(h.total())};
        for (int d = -3; d <= 3; ++d) {
            if (d == 0)
                continue;
            row.push_back(fmtPct(ratio(h.count(d), h.total())));
        }
        row.push_back(fmtPct(a.fractionWithinWindow(2)));
        row.push_back(fmtPct(a.fractionWithinWindow(4)));
        row.push_back(fmtPct(a.fractionWithinWindow(6)));
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout << "\nPaper reference (Section 5.4): +1 dominates; "
                 ">=86% within a window of 2,\n>=92% within 4; Qry16 "
                 "is the outlier.\n";
    reportStoreStats(driver);
    obs.finish();
    return 0;
}
