/**
 * @file
 * Figure 7 — temporal repetition of miss addresses and spatial
 * triggers, via Sequitur grammar inference.
 *
 * For each workload the off-chip read-miss sequence ("All_Addrs") and
 * its spatial-trigger subsequence ("Triggers") are compressed with
 * Sequitur; each miss is classified as non-repetitive, new (first
 * occurrence of a repeated sequence), head (first element of later
 * occurrences), or opportunity (the coverable remainder).
 *
 * Paper shape: ~45% opportunity for all misses, ~47% for triggers;
 * triggers 5-15% lower than all-misses in OLTP/web, the opposite in
 * DSS.
 */

#include <cstdio>
#include <iostream>

#include "analysis/coverage.hh"
#include "analysis/sequitur.hh"
#include "bench/bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "workloads/registry.hh"

using namespace stems;

namespace {

Sequitur::Classification
classifySequence(const std::vector<Addr> &seq, std::size_t cap)
{
    Sequitur s;
    std::size_t n = std::min(seq.size(), cap);
    for (std::size_t i = 0; i < n; ++i)
        s.append(blockNumber(seq[i]));
    return s.classify();
}

std::vector<std::string>
row(const std::string &label, const Sequitur::Classification &c)
{
    return {label, std::to_string(c.total()),
            fmtPct(ratio(c.opportunity, c.total())),
            fmtPct(ratio(c.head, c.total())),
            fmtPct(ratio(c.newFirst, c.total())),
            fmtPct(ratio(c.nonRepetitive, c.total()))};
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t records = traceRecordsArg(argc, argv, 1'200'000);
    // Sequitur grammars keep every symbol live: cap the analyzed
    // sequence length to bound memory.
    constexpr std::size_t kSymbolCap = 400'000;

    std::cout << banner(
        "Figure 7: Sequitur repetition, all misses vs triggers",
        records);

    Table table({"sequence", "symbols", "opportunity", "head", "new",
                 "non-rep"});
    for (auto &w : makeAllWorkloads()) {
        Trace t = w->generate(42, records);
        MissSequences seqs = extractMissSequences(t);
        table.addRow(row(w->name() + " All_Addrs",
                         classifySequence(seqs.allMisses,
                                          kSymbolCap)));
        table.addRow(row(w->name() + " Triggers",
                         classifySequence(seqs.triggers,
                                          kSymbolCap)));
        table.addSeparator();
    }
    table.print(std::cout);

    std::cout << "\nPaper reference (Section 1): 47% of "
                 "region-granularity misses recur in\nrepetitive "
                 "sequences, similar to the 45% repetition of all "
                 "misses.\n";
    return 0;
}
