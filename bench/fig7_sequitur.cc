/**
 * @file
 * Figure 7 — temporal repetition of miss addresses and spatial
 * triggers, via Sequitur grammar inference.
 *
 * For each workload the off-chip read-miss sequence ("All_Addrs") and
 * its spatial-trigger subsequence ("Triggers") are compressed with
 * Sequitur; each miss is classified as non-repetitive, new (first
 * occurrence of a repeated sequence), head (first element of later
 * occurrences), or opportunity (the coverable remainder).
 *
 * Paper shape: ~45% opportunity for all misses, ~47% for triggers;
 * triggers 5-15% lower than all-misses in OLTP/web, the opposite in
 * DSS.
 */

#include <algorithm>
#include <iostream>

#include "analysis/coverage.hh"
#include "analysis/sequitur.hh"
#include "bench/bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace stems;

namespace {

Sequitur::Classification
classifySequence(const std::vector<Addr> &seq, std::size_t cap)
{
    Sequitur s;
    std::size_t n = std::min(seq.size(), cap);
    for (std::size_t i = 0; i < n; ++i)
        s.append(blockNumber(seq[i]));
    return s.classify();
}

std::vector<std::string>
row(const std::string &label, const Sequitur::Classification &c)
{
    return {label, std::to_string(c.total()),
            fmtPct(ratio(c.opportunity, c.total())),
            fmtPct(ratio(c.head, c.total())),
            fmtPct(ratio(c.newFirst, c.total())),
            fmtPct(ratio(c.nonRepetitive, c.total()))};
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv, 1'200'000);
    BenchObsSession obs(opts, "fig7_sequitur");
    requireNoPerf(opts, "Sequitur analysis is not the pinned perf sweep");
    requireNoEngineSelection(opts, "Sequitur analysis runs no engines");
    requireNoJson(opts, "Sequitur analysis produces no sweep results");
    // Sequitur grammars keep every symbol live: cap the analyzed
    // sequence length to bound memory.
    constexpr std::size_t kSymbolCap = 400'000;

    std::cout << banner(
        "Figure 7: Sequitur repetition, all misses vs triggers",
        opts);

    const std::vector<std::string> workloads = benchWorkloads(opts);
    const SweepPlan plan = benchPlan(opts, /*timing=*/false,
                                     workloads,
                                     std::vector<std::string>{});
    ExperimentDriver driver;
    configureBenchDriver(driver, opts);
    driver.applyPlan(plan);

    std::vector<Sequitur::Classification> all(workloads.size());
    std::vector<Sequitur::Classification> trig(workloads.size());
    driver.forEachTrace(
        workloads,
        [&](std::size_t index, const Workload &, const Trace &t) {
            MissSequences seqs = extractMissSequences(t);
            all[index] =
                classifySequence(seqs.allMisses, kSymbolCap);
            trig[index] =
                classifySequence(seqs.triggers, kSymbolCap);
        });

    Table table({"sequence", "symbols", "opportunity", "head", "new",
                 "non-rep"});
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        table.addRow(row(workloads[i] + " All_Addrs", all[i]));
        table.addRow(row(workloads[i] + " Triggers", trig[i]));
        table.addSeparator();
    }
    table.print(std::cout);

    std::cout << "\nPaper reference (Section 1): 47% of "
                 "region-granularity misses recur in\nrepetitive "
                 "sequences, similar to the 45% repetition of all "
                 "misses.\n";
    reportStoreStats(driver);
    obs.finish();
    return 0;
}
