/**
 * @file
 * Shared helpers for the figure/table benches: argument handling and
 * common formatting.
 *
 * Every bench accepts an optional first argument overriding the trace
 * length (records per workload), e.g. `fig9_streaming_comparison
 * 500000` for a quick run.
 */

#ifndef STEMS_BENCH_BENCH_UTIL_HH
#define STEMS_BENCH_BENCH_UTIL_HH

#include <cstdlib>
#include <string>

namespace stems {

/** Parse the trace-length override (argv[1]); 0 keeps the default. */
inline std::size_t
traceRecordsArg(int argc, char **argv, std::size_t fallback)
{
    if (argc > 1) {
        long v = std::atol(argv[1]);
        if (v > 0)
            return static_cast<std::size_t>(v);
    }
    return fallback;
}

/** Standard bench banner. */
inline std::string
banner(const std::string &title, std::size_t records)
{
    return "=== " + title + " ===\n(traces: " +
           std::to_string(records) +
           " records/workload, seed 42, measurement after 50% "
           "warmup)\n";
}

} // namespace stems

#endif // STEMS_BENCH_BENCH_UTIL_HH
