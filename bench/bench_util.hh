/**
 * @file
 * Shared runner for the figure/table benches and examples: one CLI
 * (records, --jobs, --workloads, --engines, --seed) plus glue that
 * builds the parallel ExperimentDriver, so no bench carries its own
 * sweep loop.
 *
 * Usage accepted by every bench:
 *   bench [records] [--records N] [--jobs N] [--seed N]
 *         [--workloads a,b,c] [--engines x,y]
 *         [--store DIR] [--no-store] [--json FILE]
 *         [--batch] [--no-batch]
 *         [--segments K] [--checkpoint-every N] [--speculate]
 *         [--warmup-records N] [--plan-out FILE] [--list] [--help]
 *
 * The bare positional `records` argument is the historical interface
 * (e.g. `fig9_streaming_comparison 500000` for a quick run) and keeps
 * working.
 *
 * `--store DIR` (or the STEMS_STORE environment variable) attaches a
 * persistent TraceStore, so re-runs replay traces and baselines from
 * disk instead of regenerating/resimulating them; `--no-store` forces
 * the store off even when STEMS_STORE is set. `--json FILE` writes
 * the sweep results machine-readably for perf-trajectory tracking.
 * `--no-batch` disables the driver's batched execution (one trace
 * pass advancing all of a workload's cells) in favor of the
 * one-task-per-cell dispatch; results are bitwise identical either
 * way.
 *
 * `--segments K` / `--checkpoint-every N` enable segmented execution
 * (requires a store): every cell persists simulator checkpoints at
 * segment boundaries and resumes from the newest matching one, so a
 * re-run — including one extended to more --records — simulates only
 * the unseen suffix. `--warmup-records N` pins the warmup boundary
 * absolutely (instead of the 50% fraction), which keeps the prefix
 * identical across record counts; results stay bitwise identical to
 * an unsegmented run either way.
 *
 * `--speculate` (requires a store) turns stored checkpoints — even
 * stale ones from shorter, different-seed or cross-warmup runs —
 * into speculative segment-parallel execution: cold cells split at
 * stored boundaries, run every segment concurrently, validate each
 * boundary by byte-comparing re-executed state against the stored
 * blob, and roll back to sequential re-execution on mismatch.
 * Results stay bitwise identical to a continuous run either way;
 * speculation trades CPU for wall-clock on multi-core hosts.
 */

#ifndef STEMS_BENCH_BENCH_UTIL_HH
#define STEMS_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace_span.hh"
#include "sim/driver.hh"

namespace stems {

/** Parsed bench command line. */
struct BenchOptions
{
    /// Records generated per workload trace.
    std::size_t records = 0;
    /// Worker threads (0 = hardware concurrency).
    unsigned jobs = 0;
    /// Trace-generation seed.
    std::uint64_t seed = 42;
    /// Workloads to sweep; empty = the full registered suite.
    std::vector<std::string> workloads;
    /// Engines to sweep; empty = the bench's default set.
    std::vector<std::string> engines;
    /// Persistent trace/baseline store directory; empty = no store.
    std::string storeDir;
    /// Machine-readable results output path; empty = none.
    std::string jsonPath;
    /// Performance-snapshot output path (--perf; empty = none).
    /// Separate from --json on purpose: sweep results must stay
    /// bitwise identical between runs (the CI cold/warm compare),
    /// while wall-clock throughput never is.
    std::string perfPath;
    /// Batched execution (one trace pass per workload); --no-batch
    /// restores the per-cell dispatch.
    bool batch = true;
    /// Segmented execution: segment count (1 = off).
    unsigned segments = 1;
    /// Segmented execution: absolute checkpoint interval (0 = off;
    /// wins over `segments` when both are set).
    std::size_t checkpointEvery = 0;
    /// Speculative segment-parallel cold execution from stored
    /// checkpoints (--speculate; requires a store).
    bool speculate = false;
    /// Absolute warmup-record override (0 = 50% fraction).
    std::size_t warmupRecords = 0;
    /// Distributed work-unit granularity (--unit-granularity;
    /// "workload" | "cell" | "segment"). Pure scheduling policy for
    /// `stems_trace serve`: results are bitwise identical at any
    /// setting; local (non-serve) runs ignore it.
    UnitGranularity unitGranularity = UnitGranularity::kWorkload;
    /// Metrics-snapshot output path (--metrics-out; empty = none).
    std::string metricsOutPath;
    /// Chrome trace-event output path (--trace-out; empty = none).
    std::string traceOutPath;
    /// Run-manifest output path (--manifest-out; empty = none).
    std::string manifestOutPath;
    /// Progress-heartbeat interval in seconds (--progress; 0 = off).
    double progressSeconds = 0.0;
    /// Canonical SweepPlan JSON output path (--plan-out; empty =
    /// none). Written by benchPlan, so any bench invocation can dump
    /// the exact plan it runs.
    std::string planOutPath;
};

/**
 * Parse the shared bench CLI. Exits with a usage message on --help,
 * --list (registry contents) or malformed/unknown arguments;
 * validates workload and engine names against the registries.
 *
 * @param default_records  trace length when none is given.
 */
BenchOptions parseBenchOptions(int argc, char **argv,
                               std::size_t default_records);

/**
 * THE one place that maps the bench CLI onto a declarative
 * SweepPlan: trace knobs (records/seed/warmup), timing mode, and
 * the whole execution policy (jobs/batch/segments/checkpoint/
 * speculate/heartbeat) come from `options`; the workload and engine
 * columns are the bench's resolved selections. When --plan-out was
 * given, the canonical plan JSON is written as a side effect (note
 * on stderr), so every bench invocation can dump the exact plan it
 * is about to run. Benches whose engine columns carry non-default
 * options use the PlanEngine overload; probe columns are not
 * serializable — such benches still build the plan here and pass
 * their EngineSpecs to ExperimentDriver::run(plan, specs).
 */
SweepPlan benchPlan(const BenchOptions &options, bool enable_timing,
                    std::vector<std::string> workloads,
                    std::vector<PlanEngine> engines);

/** benchPlan with default-option engine columns. */
SweepPlan benchPlan(const BenchOptions &options, bool enable_timing,
                    std::vector<std::string> workloads,
                    const std::vector<std::string> &engine_names);

/** The workloads to sweep: the selection, or the whole registry. */
std::vector<std::string>
benchWorkloads(const BenchOptions &options);

/** The workloads to sweep: the selection, or the bench's default. */
std::vector<std::string>
benchWorkloads(const BenchOptions &options,
               std::vector<std::string> defaults);

/** The engines to sweep: the selection, or the bench's default. */
std::vector<std::string>
benchEngines(const BenchOptions &options,
             std::vector<std::string> defaults);

/**
 * Exit with an error when --engines was given: for benches whose
 * engine set is structural (fixed table columns, parameter sweeps of
 * one engine) a selection would be silently ignored otherwise.
 */
void requireNoEngineSelection(const BenchOptions &options,
                              const char *reason);

/**
 * Exit with an error when --workloads was given: for examples bound
 * to their own workload a selection would be silently ignored.
 */
void requireNoWorkloadSelection(const BenchOptions &options,
                                const char *reason);

/**
 * Exit with an error when --json was given: for analysis benches
 * that do not produce WorkloadResults the flag would be silently
 * ignored.
 */
void requireNoJson(const BenchOptions &options, const char *reason);

/**
 * Exit with an error when --perf was given: only benches that time
 * a full sweep (fig9) emit perf snapshots; elsewhere the flag would
 * be silently ignored.
 */
void requireNoPerf(const BenchOptions &options, const char *reason);

/**
 * When --perf was given, write a "stems-perf-v1" snapshot (see
 * analysis/report.hh) with the sweep's records/sec as its single
 * component. The throughput metric is records x engine lanes /
 * wall seconds — total simulation work per second, stable across
 * engine-set changes only when the lane count is pinned (CI pins
 * both). STEMS_BENCH_COMMENT lands in the comment field.
 */
void maybeWritePerf(const BenchOptions &options,
                    const std::vector<std::string> &workloads,
                    const std::vector<std::string> &engines,
                    double wall_seconds);

/**
 * Attach the persistent TraceStore selected by --store/STEMS_STORE
 * to a driver (no-op when the options carry no store directory;
 * exits with an error when the directory is unusable). Execution
 * policy is NOT applied here any more — it travels in the SweepPlan
 * (benchPlan) and lands via ExperimentDriver::run(plan)/applyPlan.
 */
void configureBenchDriver(ExperimentDriver &driver,
                          const BenchOptions &options);

/**
 * When --json was given, write the sweep results to the selected
 * file (full doubles, stable key order; the writer is
 * analysis/report.hh's writeResultsJson, the same format
 * `stems_report` parses) and print a one-line note. Exits with an
 * error if the file cannot be written.
 */
void maybeWriteJson(const BenchOptions &options,
                    const std::vector<WorkloadResult> &results);

/**
 * When a store is attached, print the driver's cache diagnostics
 * (trace generations/hits, baseline and engine simulations vs
 * cache hits) to stderr — stderr so bench stdout stays bitwise
 * identical between cold and warm runs. CI greps this line for
 * `engineSims=0` on warm re-runs. No-op without a store.
 */
void reportStoreStats(const ExperimentDriver &driver);

/** Standard bench banner (records, seed, jobs). */
std::string banner(const std::string &title,
                   const BenchOptions &options);

/**
 * Observability sinks for one bench run — the --metrics-out /
 * --trace-out / --manifest-out surfaces. Construct right after
 * parseBenchOptions (attaches the span collector when --trace-out
 * was given and starts the wall clock), optionally mark phases with
 * phase(), and call finish() once the sweep is done to write every
 * requested artifact. All output goes to the named files and notes
 * to stderr; bench stdout stays bitwise identical whether or not any
 * sink is attached.
 */
class BenchObsSession
{
  public:
    BenchObsSession(const BenchOptions &options, std::string tool);
    ~BenchObsSession();

    BenchObsSession(const BenchObsSession &) = delete;
    BenchObsSession &operator=(const BenchObsSession &) = delete;

    /** Close the current manifest phase and open `name`. */
    void phase(const char *name);

    /** Detach the collector and write the requested artifacts.
     *  Exits with an error if a requested file cannot be written. */
    void finish();

  private:
    BenchOptions options_;
    std::string tool_;
    SpanCollector collector_;
    std::uint64_t startNs_ = 0;
    std::string phaseName_;
    std::uint64_t phaseStartNs_ = 0;
    std::vector<std::pair<std::string, std::uint64_t>> phases_;
    bool finished_ = false;
};

} // namespace stems

#endif // STEMS_BENCH_BENCH_UTIL_HH
