/**
 * @file
 * micro_engines — per-component engine micro-costs.
 *
 * Times each STeMS predictor structure in isolation (AGT record +
 * end-generation, PST update/lookup, RMOB append/search, the
 * Reconstructor, StreamQueueSet advance, SVB probe, and the
 * open-addressing LruTable against the historical reference layout),
 * driven by a pinned stored trace so successive runs measure the same
 * operation sequence. These document the simulation cost of the
 * repository, not a result from the paper.
 *
 * Usage: micro_engines [records] [--records N] [--seed N]
 *                      [--workloads w] [--json FILE]
 * Each component loop runs `kRepeat` times and reports the best
 * (minimum-time) repetition, which filters scheduler noise without
 * averaging away the achievable cost. `--json FILE` writes a
 * "stems-micro-v1" snapshot (analysis/report.hh) — the format the
 * committed `bench/golden/BENCH_micro.json` baseline and the CI
 * perf-micro gate use; the optional STEMS_BENCH_COMMENT environment
 * variable lands in its comment field (hardware/compiler note).
 */

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "../tests/reference_lru_table.hh"
#include "analysis/report.hh"
#include "bench/bench_util.hh"
#include "core/stems.hh"
#include "mem/svb.hh"
#include "trace/trace_io.hh"
#include "trace/trace_source.hh"
#include "workloads/registry.hh"

using namespace stems;

namespace {

/** Best-of repetitions per component (see file header). */
constexpr unsigned kRepeat = 3;

using Clock = std::chrono::steady_clock;

/** One timed component loop: best-of-kRepeat wall time for a fixed
 *  operation count. */
class Suite
{
  public:
    explicit Suite(const BenchOptions &opts) : opts_(opts) {}

    template <typename Fn>
    void
    component(const std::string &name, std::uint64_t ops, Fn &&body)
    {
        double best = 0.0;
        for (unsigned rep = 0; rep < kRepeat; ++rep) {
            auto t0 = Clock::now();
            body();
            double s =
                std::chrono::duration<double>(Clock::now() - t0)
                    .count();
            if (rep == 0 || s < best)
                best = s;
        }
        BenchComponentRow row;
        row.name = name;
        row.ops = ops;
        row.nsPerOp = ops ? best * 1e9 / static_cast<double>(ops)
                          : 0.0;
        row.opsPerSec = best > 0 ? static_cast<double>(ops) / best
                                 : 0.0;
        rows_.push_back(row);
        std::printf("%-24s %12llu ops  %10.1f ns/op  %12.0f ops/s\n",
                    name.c_str(),
                    static_cast<unsigned long long>(ops),
                    row.nsPerOp, row.opsPerSec);
    }

    const std::vector<BenchComponentRow> &rows() const
    {
        return rows_;
    }

  private:
    BenchOptions opts_;
    std::vector<BenchComponentRow> rows_;
};

/** Defeat dead-code elimination of a computed value. */
volatile std::uint64_t g_sink;

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv, 200'000);
    BenchObsSession obs(opts, "micro_engines");
    std::fputs(banner("micro_engines: per-component costs", opts)
                   .c_str(),
               stdout);

    const std::string workload_name =
        benchWorkloads(opts, {"oltp-db2"}).front();

    // No driver sweep here either, but --plan-out still documents
    // the invocation (one workload, the default engine set).
    benchPlan(opts, /*timing=*/false, {workload_name},
              std::vector<std::string>{});
    auto workload = makeWorkload(workload_name);
    if (!workload) {
        std::fprintf(stderr, "unknown workload '%s'\n",
                     workload_name.c_str());
        return 1;
    }

    // The driving events come from the stored-trace pipeline (the
    // same v2 decode a cold sweep pays), pinned by (workload, seed,
    // records) so every run times the identical sequence.
    Trace generated = workload->generate(opts.seed, opts.records);
    std::string trc = (std::filesystem::temp_directory_path() /
                       ("micro_engines_" +
                        std::to_string(::getpid()) + ".trc"))
                          .string();
    if (!writeTraceFileV2(trc, generated)) {
        std::fprintf(stderr, "cannot write %s\n", trc.c_str());
        return 1;
    }
    Trace().swap(generated);

    std::vector<MemRecord> events;
    {
        auto src = MmapTraceSource::open(trc);
        if (!src) {
            std::fprintf(stderr, "cannot replay %s\n", trc.c_str());
            return 1;
        }
        events.reserve(src->size());
        MemRecord rec;
        while (src->next(rec))
            if (rec.kind == AccessKind::kRead)
                events.push_back(rec);
    }
    std::filesystem::remove(trc);
    const std::size_t n = events.size();
    if (n == 0) {
        std::fprintf(stderr, "trace produced no reads\n");
        return 1;
    }
    std::printf("driving trace: %s, %zu read records\n\n",
                workload_name.c_str(), n);

    Suite suite(opts);

    // ---- LruTable: open-addressing SoA vs reference layout -------
    // Identical keyed workload against both layouts; the ratio of
    // the two rows is the layout win.
    suite.component("lru-table", n, [&] {
        LruTable<std::uint64_t> t(4096, 8);
        std::uint64_t sum = 0;
        for (const MemRecord &e : events)
            sum += t.findOrInsert(blockNumber(e.vaddr)) += 1;
        g_sink = sum;
    });
    suite.component("lru-table-reference", n, [&] {
        ReferenceLruTable<std::uint64_t> t(4096, 8);
        std::uint64_t sum = 0;
        for (const MemRecord &e : events)
            sum += t.findOrInsert(blockNumber(e.vaddr)) += 1;
        g_sink = sum;
    });

    // ---- AGT: generation record + end ---------------------------
    suite.component("agt-record-end", n, [&] {
        StemsAgt agt;
        std::uint64_t ends = 0;
        agt.setEndCallback(
            [&](const StemsGeneration &) { ++ends; });
        std::uint64_t seq = 0;
        for (const MemRecord &e : events) {
            Addr region = regionBase(e.vaddr);
            unsigned off = regionOffset(e.vaddr);
            StemsGeneration *gen = agt.find(region);
            if (!gen) {
                StemsGeneration &g = agt.open(region);
                g.triggerPc16 = pc16Of(e.pc);
                g.triggerOffset = static_cast<std::uint8_t>(off);
                g.mask = 1u << off;
                g.accessMask = 1u << off;
            } else if (!gen->accessed(off)) {
                gen->sequence.push_back(
                    {static_cast<std::uint8_t>(off), 0});
                gen->mask |= 1u << off;
            }
            // Periodic evictions exercise the end-generation path.
            if ((++seq & 0x3F) == 0)
                agt.blockRemoved(events[seq % n].vaddr);
        }
        g_sink = ends;
    });

    // ---- PST: update and lookup ---------------------------------
    PatternSequenceTable pst;
    suite.component("pst-update", n, [&] {
        SpatialElement el[2];
        for (const MemRecord &e : events) {
            unsigned off = regionOffset(e.vaddr);
            el[0] = {static_cast<std::uint8_t>((off + 3) % 32), 0};
            el[1] = {static_cast<std::uint8_t>((off + 9) % 32), 1};
            pst.train(stemsPatternIndex(pc16Of(e.pc), off), el, 2,
                      (1u << off));
        }
    });
    suite.component("pst-lookup", n, [&] {
        std::vector<SpatialElement> out;
        std::uint64_t hits = 0;
        for (const MemRecord &e : events)
            hits += pst.lookup(stemsPatternIndex(
                                   pc16Of(e.pc),
                                   regionOffset(e.vaddr)),
                               out);
        g_sink = hits;
    });

    // ---- RMOB: append and search --------------------------------
    RegionMissOrderBuffer rmob(128 * 1024);
    suite.component("rmob-append", n, [&] {
        for (const MemRecord &e : events)
            rmob.append(e.vaddr, pc16Of(e.pc), 1);
    });
    suite.component("rmob-search", n, [&] {
        std::uint64_t hits = 0;
        for (const MemRecord &e : events)
            hits += rmob.lookup(e.vaddr).has_value();
        g_sink = hits;
    });

    // ---- Reconstructor ------------------------------------------
    // One window per 64 backbone entries over the RMOB/PST trained
    // above (the realistic call rate: one reconstruction per stream
    // start/refill, not per miss).
    const std::uint64_t recon_windows = n / 64 ? n / 64 : 1;
    suite.component("reconstructor", recon_windows, [&] {
        Reconstructor recon(rmob, pst);
        std::uint64_t produced = 0;
        RegionMissOrderBuffer::Position base = rmob.frontier() >
                                                       rmob.live()
                                                   ? rmob.frontier() -
                                                         rmob.live()
                                                   : 0;
        for (std::uint64_t i = 0; i < recon_windows; ++i) {
            auto w = recon.reconstruct(base + i * 64);
            produced += w.sequence.size();
        }
        g_sink = produced;
    });

    // ---- StreamQueueSet: allocate/advance -----------------------
    suite.component("stream-queues", n, [&] {
        StreamQueueSet queues;
        std::uint64_t cursor = 0;
        auto refill = [&](RingQueue<Addr> &pending,
                          std::uint64_t &state) {
            for (unsigned i = 0; i < 16; ++i)
                pending.push_back(
                    events[(state + i) % n].vaddr);
            state += 16;
        };
        std::vector<Addr> initial(8);
        std::vector<PrefetchRequest> reqs;
        int id = -1;
        for (std::size_t i = 0; i < n; ++i) {
            if ((i & 0xFF) == 0) {
                for (std::size_t k = 0; k < initial.size(); ++k)
                    initial[k] = events[(i + k) % n].vaddr;
                id = queues.allocate(initial, refill, false,
                                     cursor);
            }
            queues.onHit(id);
            if ((i & 0x1F) == 0) {
                reqs.clear();
                queues.drainRequests(reqs);
            }
        }
        g_sink = queues.streamsAllocated();
    });

    // ---- SVB: insert/probe/consume ------------------------------
    suite.component("svb-probe", n, [&] {
        StreamedValueBuffer svb(64);
        std::uint64_t consumed = 0;
        for (std::size_t i = 0; i < n; ++i) {
            Addr block = blockAlign(events[i].vaddr);
            svb.insert({block, 1, 0});
            consumed += svb.contains(block);
            // Consume what an earlier insert left behind.
            consumed +=
                svb.consume(blockAlign(events[i / 2].vaddr))
                    .has_value();
        }
        g_sink = consumed;
    });

    // ---- snapshot ------------------------------------------------
    if (!opts.jsonPath.empty()) {
        BenchSnapshot snap;
        snap.schema = "stems-micro-v1";
        snap.records = opts.records;
        snap.seed = opts.seed;
        snap.repeat = kRepeat;
        snap.workloads = {workload_name};
        if (const char *c = std::getenv("STEMS_BENCH_COMMENT"))
            snap.comment = c;
        snap.components = suite.rows();
        std::string error;
        if (!writeBenchSnapshotJson(opts.jsonPath, snap, &error)) {
            std::fprintf(stderr, "%s\n", error.c_str());
            return 1;
        }
        std::fprintf(stderr, "[micro] wrote %s\n",
                     opts.jsonPath.c_str());
    }
    obs.finish();
    return 0;
}
