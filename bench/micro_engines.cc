/**
 * @file
 * Engine micro-costs (google-benchmark): per-event training and
 * prediction throughput of each engine plus the analysis substrates.
 * These document the simulation cost of the repository, not a result
 * from the paper.
 */

#include <benchmark/benchmark.h>

#include "analysis/sequitur.hh"
#include "common/rng.hh"
#include "core/stems.hh"
#include "prefetch/sms.hh"
#include "prefetch/stride.hh"
#include "prefetch/tms.hh"

namespace stems {
namespace {

void
BM_StrideTrain(benchmark::State &state)
{
    StridePrefetcher engine;
    std::vector<PrefetchRequest> sink;
    Rng rng(1);
    Addr a = 0x100000;
    for (auto _ : state) {
        a += kBlockBytes;
        engine.onL1Access(a, 0x400, false);
        engine.drainRequests(sink);
        sink.clear();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StrideTrain);

void
BM_SmsTrainAndPredict(benchmark::State &state)
{
    SmsPrefetcher engine;
    std::vector<PrefetchRequest> sink;
    Rng rng(2);
    for (auto _ : state) {
        Addr region = (Addr{1} << 32) +
                      Addr(rng.below(1 << 16)) * kRegionBytes;
        for (unsigned off : {0u, 3u, 9u})
            engine.onL1Access(addrFromRegionOffset(region, off),
                              0x500 + off * 4, false);
        engine.onL1BlockRemoved(region);
        engine.drainRequests(sink);
        sink.clear();
    }
    state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_SmsTrainAndPredict);

void
BM_TmsMissEvent(benchmark::State &state)
{
    TmsPrefetcher engine;
    std::vector<PrefetchRequest> sink;
    std::uint64_t seq = 0;
    Rng rng(3);
    for (auto _ : state) {
        Addr a = (Addr{1} << 33) +
                 Addr(rng.below(1 << 18)) * kBlockBytes;
        engine.onOffChipRead({a, 0x40, seq++, false, -1});
        engine.drainRequests(sink);
        sink.clear();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TmsMissEvent);

void
BM_StemsMissEvent(benchmark::State &state)
{
    StemsPrefetcher engine;
    std::vector<PrefetchRequest> sink;
    std::uint64_t seq = 0;
    Rng rng(4);
    for (auto _ : state) {
        Addr a = (Addr{1} << 34) +
                 Addr(rng.below(1 << 18)) * kBlockBytes;
        engine.onOffChipRead({a, 0x40, seq++, false, -1});
        engine.drainRequests(sink);
        sink.clear();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StemsMissEvent);

void
BM_StemsReconstruction(benchmark::State &state)
{
    // A trained RMOB/PST pair; measure windowed reconstruction.
    PatternSequenceTable pst;
    RegionMissOrderBuffer rmob(64 * 1024);
    Rng rng(5);
    for (int i = 0; i < 4096; ++i) {
        Addr region = (Addr{1} << 35) + Addr(i) * kRegionBytes;
        std::uint16_t pc = 0x40;
        rmob.append(region, pc, 3);
        std::vector<SpatialElement> seq = {{3, 0}, {9, 1}, {14, 0}};
        std::uint64_t idx = stemsPatternIndex(pc, 0);
        pst.train(idx, seq, (1u << 3) | (1u << 9) | (1u << 14));
    }
    Reconstructor recon(rmob, pst);
    std::uint64_t pos = 0;
    for (auto _ : state) {
        auto w = recon.reconstruct(pos % 4000);
        benchmark::DoNotOptimize(w.sequence.data());
        pos += 17;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StemsReconstruction);

void
BM_SequiturAppend(benchmark::State &state)
{
    Sequitur s;
    Rng rng(6);
    for (auto _ : state)
        s.append(rng.below(4096));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SequiturAppend);

} // namespace
} // namespace stems

BENCHMARK_MAIN();
