/**
 * @file
 * Ablation (paper Section 4.3): reconstruction-buffer displacement.
 * When STeMS tries to place an address in an occupied slot it
 * searches up to two slots forward or backward; the paper reports
 * 99% of addresses place within that window, 92% in their original
 * location. This bench reports the measured displacement
 * distribution per workload, plus a sweep of the search window.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "core/stems.hh"

using namespace stems;

namespace {

/** Stash the reconstructor's displacement stats into the result. */
void
displacementProbe(const Prefetcher &engine, EngineResult &er)
{
    const auto &stems_engine =
        static_cast<const StemsPrefetcher &>(engine);
    const Reconstructor &recon = stems_engine.reconstructor();
    const Histogram &h = recon.displacements();
    er.extra["placed"] = static_cast<double>(h.total());
    er.extra["inPlace"] = static_cast<double>(h.count(0));
    er.extra["within1"] = h.fractionWithin(1);
    er.extra["within2"] = h.fractionWithin(2);
    er.extra["dropped"] = static_cast<double>(recon.dropped());
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv, 1'000'000);
    BenchObsSession obs(opts, "ablation_reconstruction");
    requireNoPerf(opts, "ablation sweeps are not the pinned perf sweep");
    requireNoEngineSelection(opts, "fixed STeMS displacement sweep");
    std::cout << banner(
        "Ablation: reconstruction displacement distribution", opts);

    // Probe columns are not plan-serializable: the plan carries the
    // engine shape (workloads, config, policy) and the probe-bearing
    // EngineSpecs ride alongside via run(plan, specs).
    const SweepPlan plan = benchPlan(
        opts, /*timing=*/false, benchWorkloads(opts),
        std::vector<std::string>{"stems"});
    ExperimentDriver driver;
    configureBenchDriver(driver, opts);

    EngineSpec stems_spec("stems");
    stems_spec.probe = displacementProbe;
    stems_spec.probeId = "displacement-stats-v1";

    Table table({"workload", "placements", "in place", "|d|<=1",
                 "|d|<=2", "dropped"});
    const auto results = driver.run(plan, {stems_spec});
    maybeWriteJson(opts, results);
    for (const WorkloadResult &r : results) {
        const EngineResult *e = r.find("stems");
        double placed = e->extra.at("placed");
        double dropped = e->extra.at("dropped");
        table.addRow(
            {r.workload,
             std::to_string(static_cast<std::uint64_t>(placed)),
             fmtPct(placed > 0 ? e->extra.at("inPlace") / placed
                               : 0.0),
             fmtPct(e->extra.at("within1")),
             fmtPct(e->extra.at("within2")),
             fmtPct(placed + dropped > 0
                        ? dropped / (placed + dropped)
                        : 0.0)});
    }
    table.print(std::cout);

    std::cout << "\nDisplacement-window sweep (oltp-db2):\n";
    Table sweep({"window", "covered", "overpred", "dropped frac"});
    {
        std::vector<EngineSpec> specs;
        for (unsigned window : {0u, 1u, 2u, 4u, 8u}) {
            EngineOptions o;
            o.displacementWindow = window;
            EngineSpec spec("stems",
                            "+-" + std::to_string(window), o);
            spec.probe = displacementProbe;
            spec.probeId = "displacement-stats-v1";
            specs.push_back(std::move(spec));
        }
        for (const WorkloadResult &r :
             driver.run({"oltp-db2"}, specs)) {
            for (const EngineResult &e : r.engines) {
                double placed = e.extra.at("placed");
                double dropped = e.extra.at("dropped");
                sweep.addRow(
                    {e.engine, fmtPct(e.coverage),
                     fmtPct(e.overprediction),
                     fmtPct(placed + dropped > 0
                                ? dropped / (placed + dropped)
                                : 0.0)});
            }
        }
    }
    sweep.print(std::cout);

    std::cout << "\nPaper reference (Section 4.3): searching at most "
                 "two elements forward or\nbackward places 99% of "
                 "addresses (92% in their original location).\n";
    reportStoreStats(driver);
    obs.finish();
    return 0;
}
