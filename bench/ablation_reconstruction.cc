/**
 * @file
 * Ablation (paper Section 4.3): reconstruction-buffer displacement.
 * When STeMS tries to place an address in an occupied slot it
 * searches up to two slots forward or backward; the paper reports
 * 99% of addresses place within that window, 92% in their original
 * location. This bench reports the measured displacement
 * distribution per workload, plus a sweep of the search window.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "core/stems.hh"
#include "sim/prefetch_sim.hh"
#include "workloads/registry.hh"

using namespace stems;

int
main(int argc, char **argv)
{
    std::size_t records = traceRecordsArg(argc, argv, 1'000'000);
    std::cout << banner(
        "Ablation: reconstruction displacement distribution",
        records);

    Table table({"workload", "placements", "in place", "|d|<=1",
                 "|d|<=2", "dropped"});
    for (auto &w : makeAllWorkloads()) {
        Trace t = w->generate(42, records);
        StemsParams p;
        if (w->workloadClass() == WorkloadClass::kScientific)
            p.streams.lookahead = 12;
        StemsPrefetcher engine(p);
        SimParams sp;
        PrefetchSimulator sim(sp, &engine);
        sim.run(t, t.size() / 2);

        const Histogram &h = engine.reconstructor().displacements();
        std::uint64_t placed = h.total();
        std::uint64_t dropped = engine.reconstructor().dropped();
        table.addRow(
            {w->name(), std::to_string(placed),
             fmtPct(ratio(h.count(0), placed)),
             fmtPct(h.fractionWithin(1)), fmtPct(h.fractionWithin(2)),
             fmtPct(ratio(dropped, placed + dropped))});
        std::cout << "." << std::flush;
    }
    std::cout << "\n";
    table.print(std::cout);

    std::cout << "\nDisplacement-window sweep (oltp-db2):\n";
    Table sweep({"window", "covered", "overpred", "dropped frac"});
    {
        auto w = makeWorkload("oltp-db2");
        Trace t = w->generate(42, records);
        SimParams sp;
        PrefetchSimulator base(sp, nullptr);
        base.run(t, t.size() / 2);
        double denom = base.stats().offChipReads;
        for (unsigned window : {0u, 1u, 2u, 4u, 8u}) {
            StemsParams p;
            p.reconstruction.displacementWindow = window;
            StemsPrefetcher engine(p);
            PrefetchSimulator sim(sp, &engine);
            sim.run(t, t.size() / 2);
            std::uint64_t placed =
                engine.reconstructor().displacements().total();
            std::uint64_t dropped = engine.reconstructor().dropped();
            sweep.addRow(
                {"+-" + std::to_string(window),
                 fmtPct(sim.stats().covered() / denom),
                 fmtPct(sim.stats().overpredictions / denom),
                 fmtPct(ratio(dropped, placed + dropped))});
            std::cout << "." << std::flush;
        }
    }
    std::cout << "\n";
    sweep.print(std::cout);

    std::cout << "\nPaper reference (Section 4.3): searching at most "
                 "two elements forward or\nbackward places 99% of "
                 "addresses (92% in their original location).\n";
    return 0;
}
