/**
 * @file
 * Ablation (paper Section 4.3): 2-bit saturating counters vs bit
 * vectors in the spatial history. The paper reports that counters
 * attain the same coverage while roughly halving overpredictions;
 * this bench reproduces the comparison for SMS across the suite.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace stems;

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv, 1'000'000);
    BenchObsSession obs(opts, "ablation_counters");
    requireNoPerf(opts, "ablation sweeps are not the pinned perf sweep");
    requireNoEngineSelection(opts, "fixed SMS counters-vs-bitvector sweep");
    std::cout << banner(
        "Ablation: 2-bit counters vs bit vectors (SMS history)",
        opts);

    EngineOptions counters_on;
    counters_on.smsUseCounters = true;
    EngineOptions counters_off;
    counters_off.smsUseCounters = false;
    const SweepPlan plan = benchPlan(
        opts, /*timing=*/false, benchWorkloads(opts),
        std::vector<PlanEngine>{
            {"sms", "counters", counters_on},
            {"sms", "bit vector", counters_off},
        });
    ExperimentDriver driver;
    configureBenchDriver(driver, opts);

    Table table({"workload", "mode", "covered", "overpred"});
    double over_counter = 0, over_bitvec = 0, cov_counter = 0,
           cov_bitvec = 0;
    int n = 0;
    const auto results = driver.run(plan);
    maybeWriteJson(opts, results);
    for (const WorkloadResult &r : results) {
        bool first = true;
        for (const EngineResult &e : r.engines) {
            bool counters = e.engine == "counters";
            table.addRow({first ? r.workload : "", e.engine,
                          fmtPct(e.coverage),
                          fmtPct(e.overprediction)});
            (counters ? cov_counter : cov_bitvec) += e.coverage;
            (counters ? over_counter : over_bitvec) +=
                e.overprediction;
            first = false;
        }
        table.addSeparator();
        ++n;
    }
    table.addRow({"mean", "counters", fmtPct(cov_counter / n),
                  fmtPct(over_counter / n)});
    table.addRow({"", "bit vector", fmtPct(cov_bitvec / n),
                  fmtPct(over_bitvec / n)});
    table.print(std::cout);

    std::cout << "\nPaper reference (Section 4.3): counters attain "
                 "the same coverage while\nroughly halving "
                 "overpredictions.\n";
    reportStoreStats(driver);
    obs.finish();
    return 0;
}
