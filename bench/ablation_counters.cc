/**
 * @file
 * Ablation (paper Section 4.3): 2-bit saturating counters vs bit
 * vectors in the spatial history. The paper reports that counters
 * attain the same coverage while roughly halving overpredictions;
 * this bench reproduces the comparison for SMS across the suite.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "sim/experiment.hh"
#include "sim/prefetch_sim.hh"
#include "workloads/registry.hh"

using namespace stems;

int
main(int argc, char **argv)
{
    std::size_t records = traceRecordsArg(argc, argv, 1'000'000);
    std::cout << banner(
        "Ablation: 2-bit counters vs bit vectors (SMS history)",
        records);

    Table table({"workload", "mode", "covered", "overpred"});
    double over_counter = 0, over_bitvec = 0, cov_counter = 0,
           cov_bitvec = 0;
    int n = 0;
    for (auto &w : makeAllWorkloads()) {
        Trace t = w->generate(42, records);
        std::size_t warmup = t.size() / 2;

        SimParams sp;
        PrefetchSimulator base(sp, nullptr);
        base.run(t, warmup);
        double denom = base.stats().offChipReads;

        for (bool counters : {true, false}) {
            SmsParams p;
            p.useCounters = counters;
            SmsPrefetcher sms(p);
            PrefetchSimulator sim(sp, &sms);
            sim.run(t, warmup);
            double cov = sim.stats().covered() / denom;
            double over = sim.stats().overpredictions / denom;
            table.addRow({counters ? w->name() : "",
                          counters ? "counters" : "bit vector",
                          fmtPct(cov), fmtPct(over)});
            (counters ? cov_counter : cov_bitvec) += cov;
            (counters ? over_counter : over_bitvec) += over;
        }
        table.addSeparator();
        ++n;
        std::cout << "." << std::flush;
    }
    std::cout << "\n";
    table.addRow({"mean", "counters", fmtPct(cov_counter / n),
                  fmtPct(over_counter / n)});
    table.addRow({"", "bit vector", fmtPct(cov_bitvec / n),
                  fmtPct(over_bitvec / n)});
    table.print(std::cout);

    std::cout << "\nPaper reference (Section 4.3): counters attain "
                 "the same coverage while\nroughly halving "
                 "overpredictions.\n";
    return 0;
}
