/**
 * @file
 * Commercial-workload generator: the parameterized model behind the
 * OLTP (TPC-C on DB2/Oracle) and web-serving (SPECweb99 on
 * Apache/Zeus) traces.
 *
 * Structure of a generated "transaction" (paper Figure 2): a traversal
 * sequence of buffer-pool pages is picked from a recurring library and
 * replayed with glitches; each page visit touches a per-page-type
 * spatial pattern; page-to-page transitions are pointer-dependent.
 * Uncorrelated accesses to fresh memory provide the unpredictable
 * floor, fresh-page content scans provide compulsory/spatial traffic
 * (dominant in web serving), and occasional remote invalidations model
 * coherence activity.
 */

#ifndef STEMS_WORKLOADS_COMMERCIAL_HH
#define STEMS_WORKLOADS_COMMERCIAL_HH

#include "workloads/workload.hh"

namespace stems {

/** Tuning knobs for the commercial generator. */
struct CommercialParams
{
    std::string name = "commercial";
    WorkloadClass cls = WorkloadClass::kOltp;

    /// Hot buffer-pool pages (footprint knob; must exceed the L2).
    std::size_t hotPages = 131072;
    /// Distinct traversal sequences in the library.
    std::size_t numSequences = 160;
    /// Traversal length range, in pages.
    std::size_t minSeqLen = 128;
    std::size_t maxSeqLen = 384;

    /// Distinct page types (each with its own visiting code/pattern).
    unsigned numPageTypes = 24;
    /// Stable blocks per page-visit pattern (range).
    unsigned stableBlocksMin = 3;
    unsigned stableBlocksMax = 6;
    /// Probabilistic blocks per pattern and their appearance rate.
    unsigned unstableBlocks = 2;
    double unstableProb = 0.3;
    /// Intra-page adjacent-swap probability (Figure 8 reordering).
    double intraSwapProb = 0.04;

    /// Glitch model for sequence replay.
    SequenceLibrary::GlitchModel glitches{0.04, 0.02, 0.02};

    /// Probability a page transition is pointer-dependent.
    double chaseProb = 0.85;

    /// Per page visit: probability of an uncorrelated fresh access.
    double noiseProb = 0.5;

    /// Per transaction: probability of a fresh-page content scan.
    double scanBurstProb = 0.0;
    unsigned scanPagesMin = 4;
    unsigned scanPagesMax = 12;
    /// Blocks per scanned page.
    unsigned scanDensity = 16;

    /// Per page visit: probability a recently used block is
    /// invalidated by a remote node.
    double invalidateProb = 0.03;

    /// Fraction of intra-page accesses that are stores.
    double writeProb = 0.1;

    /// Compute gap between accesses (memory-boundedness knob).
    unsigned cpuOpsMin = 1;
    unsigned cpuOpsMax = 4;
};

/**
 * The OLTP/web synthetic application.
 */
class CommercialWorkload : public Workload
{
  public:
    explicit CommercialWorkload(CommercialParams params);

    std::string name() const override { return params_.name; }

    WorkloadClass
    workloadClass() const override
    {
        return params_.cls;
    }

    Trace generate(std::uint64_t seed,
                   std::size_t target_records) const override;

    /** The parameters this instance was built with. */
    const CommercialParams &params() const { return params_; }

  private:
    CommercialParams params_;
};

} // namespace stems

#endif // STEMS_WORKLOADS_COMMERCIAL_HH
