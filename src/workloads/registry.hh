/**
 * @file
 * The paper's application suite (Table 1), instantiated: two web
 * servers, two OLTP databases, three DSS queries and three scientific
 * codes, in the order the paper's figures use.
 */

#ifndef STEMS_WORKLOADS_REGISTRY_HH
#define STEMS_WORKLOADS_REGISTRY_HH

#include <memory>
#include <vector>

#include "workloads/workload.hh"

namespace stems {

/** Factory functions for each paper workload. */
std::unique_ptr<Workload> makeWebApache();
std::unique_ptr<Workload> makeWebZeus();
std::unique_ptr<Workload> makeOltpDb2();
std::unique_ptr<Workload> makeOltpOracle();
std::unique_ptr<Workload> makeDssQry2();
std::unique_ptr<Workload> makeDssQry16();
std::unique_ptr<Workload> makeDssQry17();
std::unique_ptr<Workload> makeEm3d();
std::unique_ptr<Workload> makeOcean();
std::unique_ptr<Workload> makeSparse();

/**
 * The full suite in figure order: Apache, Zeus, DB2, Oracle, Qry2,
 * Qry16, Qry17, em3d, ocean, sparse.
 */
std::vector<std::unique_ptr<Workload>> makeAllWorkloads();

/** Make one workload by name; null when the name is unknown. */
std::unique_ptr<Workload> makeWorkload(const std::string &name);

} // namespace stems

#endif // STEMS_WORKLOADS_REGISTRY_HH
