/**
 * @file
 * Open registry of workloads: name -> factory.
 *
 * The paper's application suite (Table 1: two web servers, two OLTP
 * databases, three DSS queries, three scientific codes) self-registers
 * from the workload translation units in figure order; new workloads
 * drop in the same way — register a factory (statically via
 * WorkloadRegistrar, or at runtime via WorkloadRegistry::add) and
 * every driver, bench and tool that enumerates the registry picks
 * them up. See examples/custom_workload.cpp.
 */

#ifndef STEMS_WORKLOADS_REGISTRY_HH
#define STEMS_WORKLOADS_REGISTRY_HH

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace stems {

/** Builds one workload instance. */
using WorkloadFactory = std::function<std::unique_ptr<Workload>()>;

/**
 * The process-wide workload registry. Thread-safe: registration and
 * lookup may race with driver worker threads.
 */
class WorkloadRegistry
{
  public:
    static WorkloadRegistry &instance();

    /**
     * Register a factory under a name.
     *
     * @param name  workload name ("oltp-db2", ...).
     * @param rank  enumeration position; names() lists ascending
     *              (rank, name). The paper suite uses 0-9 (figure
     *              order); use >= 100 for extensions so the canonical
     *              suite order stays stable.
     * @return false (and no change) when the name is already taken.
     */
    bool add(std::string name, int rank, WorkloadFactory factory);

    /** Instantiate a workload; null when the name is unknown. */
    std::unique_ptr<Workload> make(const std::string &name) const;

    /** True when a factory is registered under the name. */
    bool contains(const std::string &name) const;

    /** All registered names in stable (rank, name) order. */
    std::vector<std::string> names() const;

    /** Instantiate every registered workload, in names() order. */
    std::vector<std::unique_ptr<Workload>> makeAll() const;

  private:
    WorkloadRegistry() = default;

    struct Entry
    {
        int rank = 0;
        WorkloadFactory factory;
    };

    mutable std::mutex mutex_;
    std::map<std::string, Entry> entries_;
};

/** Static-init helper: registers a factory at load time. */
struct WorkloadRegistrar
{
    WorkloadRegistrar(const char *name, int rank,
                      WorkloadFactory factory)
    {
        WorkloadRegistry::instance().add(name, rank,
                                        std::move(factory));
    }
};

/**
 * The full suite in figure order: Apache, Zeus, DB2, Oracle, Qry2,
 * Qry16, Qry17, em3d, ocean, sparse (plus any extensions registered
 * by the process). Equivalent to instance().makeAll().
 */
std::vector<std::unique_ptr<Workload>> makeAllWorkloads();

/** Make one workload by name; null when the name is unknown. */
std::unique_ptr<Workload> makeWorkload(const std::string &name);

} // namespace stems

#endif // STEMS_WORKLOADS_REGISTRY_HH
