#include "workloads/scientific.hh"

#include <algorithm>
#include <vector>

#include "common/log.hh"

namespace stems {

Trace
Em3dWorkload::generate(std::uint64_t seed,
                       std::size_t target_records) const
{
    const Em3dParams &p = params_;
    Rng master(seed ^ 0xe3dE3Dull);
    Rng init = master.fork(1);
    Rng run = master.fork(2);

    // Node regions scattered through memory (graph allocation order).
    PageAllocator alloc(master.fork(3), std::uint64_t{1} << 24);
    std::vector<Addr> region_addr(p.regions);
    for (Addr &a : region_addr)
        a = alloc.alloc();

    // Fixed per-region access pattern: every node shares a common
    // header layout (a contiguous run of blocks from the node base),
    // followed by region-specific adjacency-list blocks. The shared
    // head is what a PC-indexed spatial predictor can learn; the
    // region-dependent tail is what it cannot disambiguate (paper
    // Section 5.5: the same trigger PC leads to many patterns).
    std::vector<std::vector<std::uint8_t>> region_pattern(p.regions);
    for (auto &pat : region_pattern) {
        unsigned blocks = init.range(p.blocksMin, p.blocksMax);
        unsigned head = (blocks * 2 + 2) / 3; // ~2/3 shared layout
        unsigned start = init.below(kBlocksPerRegion);
        bool used[kBlocksPerRegion] = {};
        for (unsigned i = 0; i < head; ++i) {
            unsigned off = (start + i) % kBlocksPerRegion;
            used[off] = true;
            pat.push_back(static_cast<std::uint8_t>(off));
        }
        while (pat.size() < blocks) {
            unsigned off = init.below(kBlocksPerRegion);
            if (!used[off]) {
                used[off] = true;
                pat.push_back(static_cast<std::uint8_t>(off));
            }
        }
    }

    // Fixed traversal order (the node dependence structure).
    std::vector<std::uint32_t> order(p.regions);
    for (std::size_t i = 0; i < p.regions; ++i)
        order[i] = static_cast<std::uint32_t>(i);
    for (std::size_t i = p.regions - 1; i > 0; --i) {
        std::size_t j = init.below(static_cast<std::uint32_t>(i + 1));
        std::swap(order[i], order[j]);
    }

    TraceBuilder b;
    auto cpu_ops = [&]() { return run.range(p.cpuOpsMin, p.cpuOpsMax); };

    while (b.size() < target_records) {
        b.breakChain();
        for (std::uint32_t r : order) {
            const auto &pat = region_pattern[r];
            std::size_t trigger_record = b.size();
            for (std::size_t i = 0; i < pat.size(); ++i) {
                Addr a = addrFromRegionOffset(region_addr[r], pat[i]);
                if (i == 0) {
                    // Locating the node chases a pointer loaded from
                    // the previous node.
                    b.read(a, Pc{0xD0000} + pat[i] * 4, cpu_ops(),
                           true);
                } else {
                    // The node's blocks hang off its header; they
                    // depend on the locate but not on one another.
                    b.readWithProducer(a, Pc{0xD0000} + pat[i] * 4,
                                       cpu_ops(), trigger_record);
                }
            }
            // Update this node's value.
            b.write(addrFromRegionOffset(region_addr[r], pat[0]),
                    Pc{0xD4000}, cpu_ops());
        }
    }
    return b.take();
}

Trace
OceanWorkload::generate(std::uint64_t seed,
                        std::size_t target_records) const
{
    const OceanParams &p = params_;
    Rng master(seed ^ 0x0ceaDull);
    Rng run = master.fork(2);

    // Contiguous grid arrays (row-major sweeps are sequential).
    std::vector<Addr> array_base(p.arrays);
    for (unsigned a = 0; a < p.arrays; ++a) {
        array_base[a] =
            (Addr{1} << 43) + Addr{a} * (Addr{1} << 34);
    }

    TraceBuilder b;
    auto cpu_ops = [&]() { return run.range(p.cpuOpsMin, p.cpuOpsMax); };

    while (b.size() < target_records) {
        for (unsigned a = 0; a < p.arrays; ++a) {
            for (std::size_t r = 0; r < p.regionsPerArray; ++r) {
                Addr base = array_base[a] + r * kRegionBytes;
                for (unsigned off = 0; off < kBlocksPerRegion;
                     ++off) {
                    Addr addr = addrFromRegionOffset(base, off);
                    Pc pc = Pc{0xD8000} + a * 0x100;
                    if (run.chance(p.writeProb))
                        b.write(addr, pc, cpu_ops());
                    else
                        b.read(addr, pc, cpu_ops(), false);
                }
            }
        }
    }
    return b.take();
}

Trace
SparseWorkload::generate(std::uint64_t seed,
                         std::size_t target_records) const
{
    const SparseParams &p = params_;
    Rng master(seed ^ 0x5fa453ull);
    Rng init = master.fork(1);
    Rng run = master.fork(2);

    // Fixed matrix structure: the gather targets of every nonzero.
    const std::size_t nnz = p.rows * p.nnzPerRow;
    std::vector<std::uint32_t> gather_region(nnz);
    std::vector<std::uint8_t> gather_offset(nnz);
    for (std::size_t i = 0; i < nnz; ++i) {
        gather_region[i] = init.below(
            static_cast<std::uint32_t>(p.xRegions));
        gather_offset[i] = static_cast<std::uint8_t>(
            init.below(kBlocksPerRegion));
    }

    const Addr values_base = Addr{1} << 43;
    const Addr colidx_base = Addr{1} << 44;
    const Addr rowptr_base = Addr{1} << 45;
    const Addr y_base = Addr{1} << 46;
    const Addr x_base = Addr{1} << 47;

    TraceBuilder b;
    auto cpu_ops = [&]() { return run.range(p.cpuOpsMin, p.cpuOpsMax); };

    while (b.size() < target_records) {
        for (std::size_t row = 0; row < p.rows; ++row) {
            // rowptr: 8-byte entries, one block per 8 rows.
            if (row % 8 == 0) {
                b.read(rowptr_base + (row / 8) * kBlockBytes,
                       Pc{0xE0000}, cpu_ops(), false);
            }
            // column indices: 4-byte entries, nnzPerRow per row.
            std::size_t colidx_record = b.size();
            b.read(colidx_base +
                       (row * p.nnzPerRow / 16) * kBlockBytes,
                   Pc{0xE0010}, cpu_ops(), false);
            // values: 8-byte entries.
            b.read(values_base +
                       (row * p.nnzPerRow / 8) * kBlockBytes,
                   Pc{0xE0020}, cpu_ops(), false);
            // gathers: the first x[col] of a row waits for the
            // column indices; subsequent gathers chain through the
            // running y accumulation (serial FP adds). A single
            // gather PC makes region patterns alias onto the same
            // pattern-table indices (Section 5.5: delta sequences
            // toggle).
            for (unsigned j = 0; j < p.nnzPerRow; ++j) {
                std::size_t i = row * p.nnzPerRow + j;
                Addr a = addrFromRegionOffset(
                    x_base + Addr{gather_region[i]} * kRegionBytes,
                    gather_offset[i]);
                if (j == 0)
                    b.readWithProducer(a, Pc{0xE0030}, cpu_ops(),
                                       colidx_record);
                else
                    b.read(a, Pc{0xE0030}, cpu_ops(), true);
            }
            // y[row] accumulation: 8-byte entries.
            if (row % 8 == 7) {
                b.write(y_base + (row / 8) * kBlockBytes,
                        Pc{0xE0040}, cpu_ops());
            }
        }
    }
    return b.take();
}

} // namespace stems

// ---- registry hookup (paper suite, figure order) ----

#include "workloads/registry.hh"

namespace stems {
namespace {

const WorkloadRegistrar registerEm3d("em3d", 7, [] {
    return std::unique_ptr<Workload>(new Em3dWorkload());
});
const WorkloadRegistrar registerOcean("ocean", 8, [] {
    return std::unique_ptr<Workload>(new OceanWorkload());
});
const WorkloadRegistrar registerSparse("sparse", 9, [] {
    return std::unique_ptr<Workload>(new SparseWorkload());
});

} // namespace
} // namespace stems
