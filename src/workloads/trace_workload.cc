#include "workloads/trace_workload.hh"

namespace stems {

FixedTraceWorkload::FixedTraceWorkload(std::string name, Trace trace,
                                       WorkloadClass cls)
    : name_(std::move(name)), trace_(std::move(trace)), class_(cls)
{
}

Trace
FixedTraceWorkload::generate(std::uint64_t seed,
                             std::size_t target_records) const
{
    (void)seed;
    (void)target_records;
    return trace_;
}

} // namespace stems
