/**
 * @file
 * Scientific workload generators: em3d, ocean and sparse (paper
 * Table 1), the frame of reference for the commercial results.
 *
 * em3d   -- electromagnetic wave propagation on a bipartite graph:
 *           a fixed traversal over randomly placed node regions whose
 *           per-region patterns differ under a single visiting PC
 *           (temporal sequence perfectly repetitive; spatial index
 *           aliases, paper Section 5.5).
 * ocean  -- regular grid relaxation: dense sequential sweeps over a
 *           few large arrays (stride- and spatial-friendly; temporal
 *           repeats every iteration).
 * sparse -- sparse matrix-vector product: sequential matrix streams
 *           plus x-vector gathers whose region patterns alias onto
 *           shared pattern-table indices, toggling the learned delta
 *           sequences (paper Section 5.5).
 */

#ifndef STEMS_WORKLOADS_SCIENTIFIC_HH
#define STEMS_WORKLOADS_SCIENTIFIC_HH

#include "workloads/workload.hh"

namespace stems {

/** em3d construction knobs. */
struct Em3dParams
{
    /// Node regions in the graph.
    std::size_t regions = 13000;
    /// Blocks per region (range): node data + adjacency lists.
    unsigned blocksMin = 8;
    unsigned blocksMax = 16;
    /// Compute gap between accesses.
    unsigned cpuOpsMin = 6;
    unsigned cpuOpsMax = 12;
};

/**
 * em3d: fixed pointer traversal over scattered node regions.
 */
class Em3dWorkload : public Workload
{
  public:
    explicit Em3dWorkload(Em3dParams params = {}) : params_(params) {}

    std::string name() const override { return "em3d"; }

    WorkloadClass
    workloadClass() const override
    {
        return WorkloadClass::kScientific;
    }

    Trace generate(std::uint64_t seed,
                   std::size_t target_records) const override;

  private:
    Em3dParams params_;
};

/** ocean construction knobs. */
struct OceanParams
{
    /// Grid arrays swept each iteration.
    unsigned arrays = 3;
    /// Regions per array (3 x 2048 regions = 12 MB footprint).
    std::size_t regionsPerArray = 2048;
    /// Fraction of blocks written (the updated grid).
    double writeProb = 0.25;
    /// Compute gap between accesses (stencil arithmetic per point).
    unsigned cpuOpsMin = 8;
    unsigned cpuOpsMax = 16;
};

/**
 * ocean: sequential stencil sweeps over large grid arrays.
 */
class OceanWorkload : public Workload
{
  public:
    explicit OceanWorkload(OceanParams params = {}) : params_(params)
    {
    }

    std::string name() const override { return "ocean"; }

    WorkloadClass
    workloadClass() const override
    {
        return WorkloadClass::kScientific;
    }

    Trace generate(std::uint64_t seed,
                   std::size_t target_records) const override;

  private:
    OceanParams params_;
};

/** sparse construction knobs. */
struct SparseParams
{
    /// Matrix rows.
    std::size_t rows = 48000;
    /// Nonzeros per row (fixed structure).
    unsigned nnzPerRow = 8;
    /// x-vector regions (gather target footprint; must exceed the
    /// L2 so the gather chain is memory-bound, as in the paper).
    std::size_t xRegions = 3072;
    /// Compute gap between accesses.
    unsigned cpuOpsMin = 4;
    unsigned cpuOpsMax = 8;
};

/**
 * sparse: y = A*x with sequential matrix streams and x gathers.
 */
class SparseWorkload : public Workload
{
  public:
    explicit SparseWorkload(SparseParams params = {})
        : params_(params)
    {
    }

    std::string name() const override { return "sparse"; }

    WorkloadClass
    workloadClass() const override
    {
        return WorkloadClass::kScientific;
    }

    Trace generate(std::uint64_t seed,
                   std::size_t target_records) const override;

  private:
    SparseParams params_;
};

} // namespace stems

#endif // STEMS_WORKLOADS_SCIENTIFIC_HH
