#include "workloads/commercial.hh"

#include <vector>

#include "common/log.hh"

namespace stems {

CommercialWorkload::CommercialWorkload(CommercialParams params)
    : params_(std::move(params))
{
    if (params_.hotPages == 0 || params_.numPageTypes == 0)
        fatal("CommercialWorkload: bad parameters");
}

Trace
CommercialWorkload::generate(std::uint64_t seed,
                             std::size_t target_records) const
{
    const CommercialParams &p = params_;
    Rng master(seed ^ 0xc033e4c1a1ULL);
    Rng init = master.fork(1);
    Rng run = master.fork(2);

    // --- Static structure (fixed for a given seed) -----------------

    // Hot buffer pool: pages scattered through the address space.
    PageAllocator hot_alloc(master.fork(3), std::uint64_t{1} << 24);
    std::vector<Addr> hot_pages(p.hotPages);
    for (Addr &a : hot_pages)
        a = hot_alloc.alloc();

    // Page types and their visit patterns. The visiting code for a
    // type uses a distinct PC per touched field so trigger PCs are
    // stable per type.
    std::vector<std::uint16_t> page_type(p.hotPages);
    for (auto &t : page_type)
        t = static_cast<std::uint16_t>(init.below(p.numPageTypes));

    std::vector<SpatialPattern> patterns;
    patterns.reserve(p.numPageTypes);
    for (unsigned t = 0; t < p.numPageTypes; ++t) {
        unsigned stable = init.range(p.stableBlocksMin,
                                     p.stableBlocksMax);
        patterns.emplace_back(init, stable, p.unstableBlocks,
                              p.unstableProb);
    }
    auto type_pc = [](unsigned type) {
        return Pc{0x10000} + Pc{type} * 0x400;
    };

    SequenceLibrary library(init, p.hotPages, p.numSequences,
                            p.minSeqLen, p.maxSeqLen);

    // Fresh memory for uncorrelated noise and content scans.
    PageAllocator fresh_alloc(master.fork(4), std::uint64_t{1} << 24,
                              Addr{1} << 40);

    // --- Dynamic generation ----------------------------------------

    TraceBuilder b;
    std::vector<Addr> recent_blocks; // invalidation candidates
    std::size_t recent_pos = 0;
    constexpr std::size_t kRecentCap = 256;

    auto remember = [&](Addr a) {
        if (recent_blocks.size() < kRecentCap) {
            recent_blocks.push_back(a);
        } else {
            recent_blocks[recent_pos] = a;
            recent_pos = (recent_pos + 1) % kRecentCap;
        }
    };

    auto cpu_ops = [&]() { return run.range(p.cpuOpsMin, p.cpuOpsMax); };

    // Index of the previous page's trigger read: page-to-page
    // chases link header to header, so the chain runs through the
    // triggers while record accesses overlap with the next chase
    // (the out-of-order parallelism that blunts SMS's OLTP gains,
    // paper Section 2.4).
    std::ptrdiff_t prev_trigger = -1;

    auto visit_page = [&](Addr base, unsigned type) {
        auto offsets =
            patterns[type].materialize(run, p.intraSwapProb);
        bool first = true;
        std::size_t trigger_record = 0;
        for (unsigned off : offsets) {
            Addr a = addrFromRegionOffset(base, off);
            Pc pc = type_pc(type) + off * 4;
            if (first) {
                trigger_record = b.size();
                if (prev_trigger >= 0 && run.chance(p.chaseProb)) {
                    b.readWithProducer(
                        a, pc, cpu_ops(),
                        static_cast<std::size_t>(prev_trigger));
                } else {
                    b.read(a, pc, cpu_ops(), false);
                }
                prev_trigger =
                    static_cast<std::ptrdiff_t>(trigger_record);
                first = false;
            } else if (run.chance(p.writeProb)) {
                b.write(a, pc, cpu_ops());
            } else {
                // Record fields are reached through the page header
                // (slot directory): they depend on the trigger load
                // but not on one another.
                b.readWithProducer(a, pc, cpu_ops(), trigger_record);
            }
            remember(a);
        }
    };

    auto noise_access = [&]() {
        // A one-off access to fresh memory: never repeats, no spatial
        // structure -- the unpredictable floor of Figure 6.
        Addr page = fresh_alloc.alloc();
        unsigned off = run.below(kBlocksPerRegion);
        Pc pc = Pc{0x9F000} + run.below(64) * 4;
        b.read(addrFromRegionOffset(page, off), pc, cpu_ops(), false);
    };

    auto scan_burst = [&]() {
        // Content scan over fresh pages: compulsory misses with a
        // dense sequential per-page pattern by a single code site.
        unsigned pages = run.range(p.scanPagesMin, p.scanPagesMax);
        for (unsigned i = 0; i < pages; ++i) {
            Addr base = fresh_alloc.alloc();
            for (unsigned off = 0; off < p.scanDensity; ++off) {
                b.read(addrFromRegionOffset(base, off),
                       Pc{0xA0000} + off * 4, cpu_ops(), false);
            }
        }
    };

    while (b.size() < target_records) {
        std::size_t si = library.pick(run);
        auto pages = library.replay(si, run, p.glitches);
        b.breakChain();
        prev_trigger = -1;
        for (std::uint32_t page_idx : pages) {
            visit_page(hot_pages[page_idx], page_type[page_idx]);
            if (run.chance(p.noiseProb))
                noise_access();
            if (p.invalidateProb > 0 && !recent_blocks.empty() &&
                run.chance(p.invalidateProb)) {
                b.invalidate(recent_blocks[run.below(
                    static_cast<std::uint32_t>(
                        recent_blocks.size()))]);
            }
        }
        if (p.scanBurstProb > 0 && run.chance(p.scanBurstProb))
            scan_burst();
    }
    return b.take();
}

} // namespace stems

// ---- registry hookup (paper suite, figure order) ----

#include "workloads/registry.hh"

namespace stems {
namespace {

std::unique_ptr<Workload>
makeWebApache()
{
    // Web serving: request-metadata pointer chases plus heavy static
    // content scanning over fresh pages -- tilted spatial relative to
    // OLTP, with plenty of off-chip read stalls (Apache benefits the
    // most from prefetching in Figure 10).
    CommercialParams p;
    p.name = "web-apache";
    p.cls = WorkloadClass::kWeb;
    p.hotPages = 98304;
    p.numSequences = 320;
    p.minSeqLen = 96;
    p.maxSeqLen = 224;
    p.numPageTypes = 20;
    p.stableBlocksMin = 3;
    p.stableBlocksMax = 6;
    p.chaseProb = 0.8;
    p.noiseProb = 0.35;
    p.scanBurstProb = 0.5;
    p.scanPagesMin = 6;
    p.scanPagesMax = 16;
    p.scanDensity = 16;
    p.invalidateProb = 0.03;
    p.cpuOpsMin = 8;
    p.cpuOpsMax = 20;
    return std::make_unique<CommercialWorkload>(p);
}

std::unique_ptr<Workload>
makeWebZeus()
{
    // Zeus: same structure as Apache but a leaner event-driven server
    // with fewer off-chip stalls and slightly denser content scans.
    CommercialParams p;
    p.name = "web-zeus";
    p.cls = WorkloadClass::kWeb;
    p.hotPages = 81920;
    p.numSequences = 288;
    p.minSeqLen = 96;
    p.maxSeqLen = 208;
    p.numPageTypes = 16;
    p.stableBlocksMin = 3;
    p.stableBlocksMax = 5;
    p.chaseProb = 0.8;
    p.noiseProb = 0.35;
    p.scanBurstProb = 0.45;
    p.scanPagesMin = 6;
    p.scanPagesMax = 14;
    p.scanDensity = 18;
    p.invalidateProb = 0.03;
    p.cpuOpsMin = 10;
    p.cpuOpsMax = 24;
    return std::make_unique<CommercialWorkload>(p);
}

std::unique_ptr<Workload>
makeOltpDb2()
{
    // TPC-C on DB2: B-tree and buffer-pool pointer chasing with
    // sparse intra-page patterns; biased temporal (Figure 6).
    CommercialParams p;
    p.name = "oltp-db2";
    p.cls = WorkloadClass::kOltp;
    p.hotPages = 131072;
    p.numSequences = 448;
    p.minSeqLen = 96;
    p.maxSeqLen = 288;
    p.numPageTypes = 24;
    p.stableBlocksMin = 2;
    p.stableBlocksMax = 5;
    p.unstableBlocks = 2;
    p.chaseProb = 0.9;
    p.noiseProb = 0.3;
    p.scanBurstProb = 0.0;
    p.invalidateProb = 0.04;
    p.cpuOpsMin = 8;
    p.cpuOpsMax = 20;
    return std::make_unique<CommercialWorkload>(p);
}

std::unique_ptr<Workload>
makeOltpOracle()
{
    // TPC-C on Oracle: larger SGA, more compute between accesses (the
    // paper's baseline spends only a quarter of its time off-chip, so
    // speedups are small).
    CommercialParams p;
    p.name = "oltp-oracle";
    p.cls = WorkloadClass::kOltp;
    p.hotPages = 163840;
    p.numSequences = 512;
    p.minSeqLen = 96;
    p.maxSeqLen = 288;
    p.numPageTypes = 28;
    p.stableBlocksMin = 2;
    p.stableBlocksMax = 5;
    p.unstableBlocks = 2;
    p.chaseProb = 0.9;
    p.noiseProb = 0.3;
    p.scanBurstProb = 0.0;
    p.invalidateProb = 0.04;
    p.cpuOpsMin = 28;
    p.cpuOpsMax = 56;
    return std::make_unique<CommercialWorkload>(p);
}

const WorkloadRegistrar registerApache("web-apache", 0, makeWebApache);
const WorkloadRegistrar registerZeus("web-zeus", 1, makeWebZeus);
const WorkloadRegistrar registerDb2("oltp-db2", 2, makeOltpDb2);
const WorkloadRegistrar registerOracle("oltp-oracle", 3,
                                       makeOltpOracle);

} // namespace
} // namespace stems
