#include "workloads/dss.hh"

#include <vector>

#include "common/log.hh"

namespace stems {

DssWorkload::DssWorkload(DssParams params) : params_(std::move(params))
{
    if (params_.scanDensity == 0 ||
        params_.scanDensity + params_.scanUnstableBlocks >
            kBlocksPerRegion) {
        fatal("DssWorkload: bad scan density");
    }
    if (params_.scanPatternVariants == 0)
        fatal("DssWorkload: need at least one scan pattern");
}

Trace
DssWorkload::generate(std::uint64_t seed,
                      std::size_t target_records) const
{
    const DssParams &p = params_;
    Rng master(seed ^ 0xd55d55d55ULL);
    Rng init = master.fork(1);
    Rng run = master.fork(2);

    // Scanned table: an endless supply of fresh pages.
    PageAllocator table_alloc(master.fork(3), std::uint64_t{1} << 26);

    // Dense sequential scan patterns (database pages share a layout;
    // variants model alternating record layouts).
    std::vector<SpatialPattern> scan_patterns;
    for (unsigned v = 0; v < p.scanPatternVariants; ++v) {
        scan_patterns.emplace_back(init, p.scanDensity,
                                   p.scanUnstableBlocks,
                                   p.scanUnstableProb,
                                   /*sequential=*/true);
    }

    // Join build side: hot pages, sparse per-type patterns, and a
    // small library of directory-walk sequences that recur.
    PageAllocator build_alloc(master.fork(4), std::uint64_t{1} << 24,
                              Addr{1} << 41);
    std::vector<Addr> build_pages(p.joinHotPages);
    for (Addr &a : build_pages)
        a = build_alloc.alloc();
    SpatialPattern probe_pattern(init, 2, 2, 0.4);
    SequenceLibrary dir_library(init, p.joinHotPages,
                                p.numDirSequences, p.dirSeqLen,
                                p.dirSeqLen);

    // Fresh memory the hash probes land in.
    PageAllocator probe_alloc(master.fork(5), std::uint64_t{1} << 26,
                              Addr{1} << 42);

    TraceBuilder b;
    auto cpu_ops = [&]() { return run.range(p.cpuOpsMin, p.cpuOpsMax); };

    // Recently scanned pages (page base + layout variant), the pool
    // reread runs draw from.
    std::vector<std::pair<Addr, unsigned>> scan_history;
    constexpr std::size_t kHistoryCap = 4096;

    auto emit_page = [&](Addr base, unsigned variant) {
        auto offsets = scan_patterns[variant].materialize(
            run, p.intraSwapProb);
        // One scan code site per variant; the per-field PC encodes
        // the offset as in real unrolled scan code.
        Pc pc_base = Pc{0xB0000} + variant * 0x1000;
        for (unsigned off : offsets)
            b.read(addrFromRegionOffset(base, off), pc_base + off * 4,
                   cpu_ops(), false);
    };

    auto scan_page = [&]() {
        Addr base = table_alloc.alloc();
        unsigned variant =
            p.scanPatternVariants == 1
                ? 0
                : run.below(p.scanPatternVariants);
        emit_page(base, variant);
        if (scan_history.size() < kHistoryCap)
            scan_history.push_back({base, variant});
    };

    auto reread_run = [&]() {
        // Re-scan a contiguous run of previously scanned pages in
        // their original order (spool reread).
        if (scan_history.size() < p.rereadRunPages * 2)
            return;
        std::size_t start = run.below(static_cast<std::uint32_t>(
            scan_history.size() - p.rereadRunPages));
        for (unsigned i = 0; i < p.rereadRunPages; ++i) {
            auto [base, variant] = scan_history[start + i];
            emit_page(base, variant);
        }
    };

    auto probe_burst = [&]() {
        for (unsigned i = 0; i < p.probesPerBurst; ++i) {
            if (run.chance(p.probeDirectoryFraction)) {
                // Directory walk: recurring pointer chase over the
                // build side (the small temporal component of DSS).
                std::size_t si = dir_library.pick(run);
                auto walk = dir_library.replay(si, run, {});
                b.breakChain();
                for (std::uint32_t page : walk) {
                    Addr base = build_pages[page];
                    auto offsets = probe_pattern.materialize(run);
                    bool first = true;
                    std::size_t trigger_record = 0;
                    for (unsigned off : offsets) {
                        if (first) {
                            trigger_record = b.size();
                            b.read(addrFromRegionOffset(base, off),
                                   Pc{0xCC000} + off * 4, cpu_ops(),
                                   true);
                            first = false;
                        } else {
                            b.readWithProducer(
                                addrFromRegionOffset(base, off),
                                Pc{0xCC000} + off * 4, cpu_ops(),
                                trigger_record);
                        }
                    }
                }
            } else {
                // Hash probe into fresh memory: unpredictable.
                Addr base = probe_alloc.alloc();
                unsigned off = run.below(kBlocksPerRegion);
                b.read(addrFromRegionOffset(base, off), Pc{0xC8000},
                       cpu_ops(), true);
            }
        }
    };

    while (b.size() < target_records) {
        scan_page();
        if (run.chance(p.joinProbeProb))
            probe_burst();
        if (p.rereadProb > 0 && run.chance(p.rereadProb))
            reread_run();
    }
    return b.take();
}

} // namespace stems

// ---- registry hookup (paper suite, figure order) ----

#include "workloads/registry.hh"

namespace stems {
namespace {

std::unique_ptr<Workload>
makeDssQry2()
{
    // TPC-H Q2 (join-dominated): scans plus frequent probe bursts.
    DssParams p;
    p.name = "dss-qry2";
    p.scanDensity = 12;
    p.intraSwapProb = 0.02;
    p.joinProbeProb = 0.85;
    p.probesPerBurst = 6;
    p.probeDirectoryFraction = 0.3;
    return std::make_unique<DssWorkload>(p);
}

std::unique_ptr<Workload>
makeDssQry16()
{
    // TPC-H Q16 (join-dominated, two record layouts): the alternating
    // scan patterns and higher swap rate reproduce its weak
    // intra-generation repetition (Figure 8's outlier).
    DssParams p;
    p.name = "dss-qry16";
    p.scanDensity = 10;
    p.scanUnstableBlocks = 4;
    p.scanUnstableProb = 0.4;
    p.intraSwapProb = 0.18;
    p.scanPatternVariants = 2;
    p.joinProbeProb = 0.8;
    p.probesPerBurst = 6;
    p.probeDirectoryFraction = 0.25;
    return std::make_unique<DssWorkload>(p);
}

std::unique_ptr<Workload>
makeDssQry17()
{
    // TPC-H Q17 (balanced scan-join): scan-heavy with lighter probes.
    DssParams p;
    p.name = "dss-qry17";
    p.scanDensity = 16;
    p.intraSwapProb = 0.02;
    p.joinProbeProb = 0.75;
    p.probesPerBurst = 5;
    p.probeDirectoryFraction = 0.25;
    return std::make_unique<DssWorkload>(p);
}

const WorkloadRegistrar registerQry2("dss-qry2", 4, makeDssQry2);
const WorkloadRegistrar registerQry16("dss-qry16", 5, makeDssQry16);
const WorkloadRegistrar registerQry17("dss-qry17", 6, makeDssQry17);

} // namespace
} // namespace stems
