/**
 * @file
 * FixedTraceWorkload: adapts a pre-existing trace — loaded from a
 * file, imported from an external text dump, or replayed out of the
 * TraceStore — to the Workload interface, so everything that drives
 * sweeps through the ExperimentDriver (benches, tools, tests) can
 * run captured traces next to the synthetic generators.
 */

#ifndef STEMS_WORKLOADS_TRACE_WORKLOAD_HH
#define STEMS_WORKLOADS_TRACE_WORKLOAD_HH

#include <string>

#include "workloads/workload.hh"

namespace stems {

/** A Workload that replays one fixed trace. */
class FixedTraceWorkload : public Workload
{
  public:
    /**
     * @param name   label reported in results.
     * @param trace  the records to replay.
     * @param cls    workload class; governs the scientific stream
     *               lookahead the driver applies (default: treat an
     *               external trace as commercial).
     */
    FixedTraceWorkload(std::string name, Trace trace,
                       WorkloadClass cls = WorkloadClass::kOltp);

    std::string name() const override { return name_; }
    WorkloadClass workloadClass() const override { return class_; }

    /**
     * Replay the stored records. `seed` and `target_records` are
     * ignored: a captured trace has exactly one materialization.
     */
    Trace generate(std::uint64_t seed,
                   std::size_t target_records) const override;

    /** The underlying records (without copying). */
    const Trace &trace() const { return trace_; }

  private:
    std::string name_;
    Trace trace_;
    WorkloadClass class_;
};

} // namespace stems

#endif // STEMS_WORKLOADS_TRACE_WORKLOAD_HH
