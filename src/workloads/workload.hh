/**
 * @file
 * Workload model base class and the shared building blocks used to
 * synthesize the paper's application suite (Table 1): page allocation,
 * per-PC spatial patterns with stable and unstable offsets, and
 * temporal traversal-sequence libraries with a glitch model.
 *
 * The generators are the repository's substitute for the paper's
 * FLEXUS full-system traces of DB2/Oracle/Apache/Zeus/TPC-H and the
 * scientific codes (see DESIGN.md Section 1). Each generator is tuned
 * so the trace-level statistics the paper reports in Figures 6-8
 * (joint predictability, trigger repetition, intra-generation
 * reordering) land in the reported bands; the prefetcher results
 * (Figures 9-10) then follow from the mechanisms, not from fitting.
 */

#ifndef STEMS_WORKLOADS_WORKLOAD_HH
#define STEMS_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "trace/trace.hh"

namespace stems {

/** Application category (paper Table 1 grouping). */
enum class WorkloadClass
{
    kWeb,
    kOltp,
    kDss,
    kScientific,
};

/**
 * A synthetic application: generates memory-access traces with a
 * given seed and approximate length.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Short identifier, e.g. "oltp-db2". */
    virtual std::string name() const = 0;

    /** Application category. */
    virtual WorkloadClass workloadClass() const = 0;

    /**
     * Generate a trace.
     *
     * @param seed            deterministic seed; the same (seed,
     *                        target) pair always yields the same trace.
     * @param target_records  approximate number of records to emit
     *                        (generators stop at the first natural
     *                        boundary past the target).
     */
    virtual Trace generate(std::uint64_t seed,
                           std::size_t target_records) const = 0;
};

/** Human-readable label for a workload class. */
std::string workloadClassName(WorkloadClass c);

/**
 * Allocates 2 KB pages at randomized, non-repeating region-aligned
 * addresses, modelling a buffer pool or heap whose pages land wherever
 * the allocator put them (paper Figure 2: "pages may be scattered
 * throughout the buffer pool").
 */
class PageAllocator
{
  public:
    /**
     * @param rng          source of placement randomness.
     * @param space_regions size of the address space, in regions.
     * @param base          lowest address handed out.
     */
    PageAllocator(Rng rng, std::uint64_t space_regions,
                  Addr base = Addr{1} << 32);

    /** Allocate a fresh page; never returns the same page twice. */
    Addr alloc();

    /** Pages allocated so far. */
    std::uint64_t allocated() const { return allocated_; }

  private:
    Rng rng_;
    Addr base_;
    std::uint64_t allocated_ = 0;
    /** log2 of the (power-of-two) region space. */
    unsigned bits_ = 0;
    /** Per-round keys of the Feistel permutation. */
    std::uint64_t roundKeys_[4] = {};

    /** Bijective map counter -> region slot over the 2^bits_ space. */
    std::uint64_t permute(std::uint64_t counter) const;
};

/**
 * A spatial access pattern: the set of block offsets one piece of code
 * touches within a page, in order, split into stable offsets (always
 * accessed) and unstable offsets (accessed probabilistically) -- the
 * structure that motivates the 2-bit counters of paper Section 4.3.
 */
class SpatialPattern
{
  public:
    /**
     * Build a random pattern.
     *
     * @param rng             randomness for choosing offsets.
     * @param stable_blocks   number of always-accessed offsets.
     * @param unstable_blocks number of probabilistic offsets.
     * @param unstable_prob   probability an unstable offset appears in
     *                        a given materialization.
     * @param sequential      lay stable offsets out contiguously from
     *                        offset 0 (scan-style) instead of randomly.
     */
    SpatialPattern(Rng &rng, unsigned stable_blocks,
                   unsigned unstable_blocks, double unstable_prob,
                   bool sequential = false);

    /**
     * Materialize one visit: the ordered offsets to access this time.
     *
     * @param rng           per-visit randomness (unstable draws).
     * @param swap_prob     probability of swapping each adjacent pair
     *                      (intra-page reordering glitches, Figure 8).
     */
    std::vector<unsigned> materialize(Rng &rng,
                                      double swap_prob = 0.0) const;

    /** The stable offsets in pattern order. */
    const std::vector<unsigned> &stableOffsets() const
    {
        return stable_;
    }

  private:
    std::vector<unsigned> stable_;
    std::vector<unsigned> unstable_;
    double unstableProb_;
};

/**
 * A library of temporal traversal sequences over a pool of pages,
 * with recency-biased selection and a glitch model (skips, insertions,
 * substitutions) so the miss sequence repeats imperfectly, as observed
 * for commercial workloads (paper Section 5.5).
 */
class SequenceLibrary
{
  public:
    /** Glitch probabilities applied per element on each replay. */
    struct GlitchModel
    {
        double skip = 0.0;    ///< drop this element
        double insert = 0.0;  ///< insert a random hot page before it
        double replace = 0.0; ///< replace with a random hot page
    };

    /**
     * Build a library.
     *
     * @param rng        randomness for construction.
     * @param num_pages  size of the hot-page pool the sequences index.
     * @param num_seqs   number of distinct traversal sequences.
     * @param min_len    minimum sequence length (pages).
     * @param max_len    maximum sequence length (pages).
     */
    SequenceLibrary(Rng &rng, std::size_t num_pages,
                    std::size_t num_seqs, std::size_t min_len,
                    std::size_t max_len);

    /**
     * Pick a sequence index with recency bias: recently replayed
     * sequences are more likely to be picked again.
     */
    std::size_t pick(Rng &rng);

    /**
     * Replay a sequence through the glitch model.
     *
     * @return the page-pool indices to visit, in order.
     */
    std::vector<std::uint32_t> replay(std::size_t seq_index, Rng &rng,
                                      const GlitchModel &glitches);

    /** Number of sequences in the library. */
    std::size_t size() const { return sequences_.size(); }

  private:
    std::size_t numPages_;
    std::vector<std::vector<std::uint32_t>> sequences_;
    std::vector<std::size_t> recent_; ///< small MRU list of indices
};

} // namespace stems

#endif // STEMS_WORKLOADS_WORKLOAD_HH
