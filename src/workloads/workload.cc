#include "workloads/workload.hh"

#include <algorithm>

#include "common/log.hh"

namespace stems {

std::string
workloadClassName(WorkloadClass c)
{
    switch (c) {
      case WorkloadClass::kWeb:
        return "Web";
      case WorkloadClass::kOltp:
        return "OLTP";
      case WorkloadClass::kDss:
        return "DSS";
      case WorkloadClass::kScientific:
        return "Scientific";
    }
    return "?";
}

PageAllocator::PageAllocator(Rng rng, std::uint64_t space_regions,
                             Addr base)
    : rng_(rng), base_(base)
{
    if (space_regions == 0)
        fatal("PageAllocator: empty address space");
    // Round the space up to an even power of two so a balanced
    // Feistel network forms an exact bijection over it; the space is
    // virtual, so rounding up only spreads pages further apart.
    bits_ = 2;
    while ((std::uint64_t{1} << bits_) < space_regions || bits_ % 2)
        ++bits_;
    for (auto &k : roundKeys_)
        k = rng_.next64();
}

std::uint64_t
PageAllocator::permute(std::uint64_t counter) const
{
    // 4-round balanced Feistel network over bits_ bits: a keyed
    // bijection, so distinct counters always yield distinct slots.
    const unsigned half = bits_ / 2;
    const std::uint64_t half_mask = (std::uint64_t{1} << half) - 1;
    std::uint64_t left = (counter >> half) & half_mask;
    std::uint64_t right = counter & half_mask;
    for (std::uint64_t key : roundKeys_) {
        std::uint64_t f = (right ^ key) * 0x9e3779b97f4a7c15ULL;
        f ^= f >> 31;
        std::uint64_t new_right = (left ^ f) & half_mask;
        left = right;
        right = new_right;
    }
    return (left << half) | right;
}

Addr
PageAllocator::alloc()
{
    if (allocated_ >= (std::uint64_t{1} << bits_))
        fatal("PageAllocator: address space exhausted");
    std::uint64_t slot = permute(allocated_);
    ++allocated_;
    return base_ + slot * kRegionBytes;
}

SpatialPattern::SpatialPattern(Rng &rng, unsigned stable_blocks,
                               unsigned unstable_blocks,
                               double unstable_prob, bool sequential)
    : unstableProb_(unstable_prob)
{
    unsigned total = stable_blocks + unstable_blocks;
    if (total > kBlocksPerRegion)
        fatal("SpatialPattern: more blocks than the region holds");

    std::vector<unsigned> chosen;
    if (sequential) {
        for (unsigned i = 0; i < total; ++i)
            chosen.push_back(i);
    } else {
        // Sample distinct offsets.
        bool used[kBlocksPerRegion] = {};
        while (chosen.size() < total) {
            unsigned off = rng.below(kBlocksPerRegion);
            if (!used[off]) {
                used[off] = true;
                chosen.push_back(off);
            }
        }
    }
    stable_.assign(chosen.begin(),
                   chosen.begin() + stable_blocks);
    unstable_.assign(chosen.begin() + stable_blocks, chosen.end());
}

std::vector<unsigned>
SpatialPattern::materialize(Rng &rng, double swap_prob) const
{
    std::vector<unsigned> out = stable_;
    for (unsigned off : unstable_)
        if (rng.chance(unstableProb_))
            out.push_back(off);

    if (swap_prob > 0.0) {
        for (std::size_t i = 0; i + 1 < out.size(); ++i)
            if (rng.chance(swap_prob))
                std::swap(out[i], out[i + 1]);
    }
    return out;
}

SequenceLibrary::SequenceLibrary(Rng &rng, std::size_t num_pages,
                                 std::size_t num_seqs,
                                 std::size_t min_len,
                                 std::size_t max_len)
    : numPages_(num_pages)
{
    if (num_pages == 0 || num_seqs == 0 || min_len == 0 ||
        max_len < min_len) {
        fatal("SequenceLibrary: bad parameters");
    }
    sequences_.resize(num_seqs);
    for (auto &seq : sequences_) {
        std::size_t len =
            min_len +
            rng.below(static_cast<std::uint32_t>(max_len - min_len +
                                                 1));
        seq.reserve(len);
        for (std::size_t i = 0; i < len; ++i)
            seq.push_back(rng.below(
                static_cast<std::uint32_t>(num_pages)));
    }
}

std::size_t
SequenceLibrary::pick(Rng &rng)
{
    // With 60% probability revisit one of the last few sequences
    // (temporal correlation: recent sequences recur); otherwise pick
    // uniformly.
    std::size_t idx;
    if (!recent_.empty() && rng.chance(0.6)) {
        idx = recent_[rng.below(
            static_cast<std::uint32_t>(recent_.size()))];
    } else {
        idx = rng.below(static_cast<std::uint32_t>(size()));
    }
    recent_.push_back(idx);
    if (recent_.size() > 4)
        recent_.erase(recent_.begin());
    return idx;
}

std::vector<std::uint32_t>
SequenceLibrary::replay(std::size_t seq_index, Rng &rng,
                        const GlitchModel &glitches)
{
    const auto &seq = sequences_.at(seq_index);
    std::vector<std::uint32_t> out;
    out.reserve(seq.size() + 4);
    auto random_page = [&] {
        return rng.below(static_cast<std::uint32_t>(numPages_));
    };
    for (std::uint32_t page : seq) {
        if (glitches.skip > 0 && rng.chance(glitches.skip))
            continue;
        if (glitches.insert > 0 && rng.chance(glitches.insert))
            out.push_back(random_page());
        if (glitches.replace > 0 && rng.chance(glitches.replace))
            out.push_back(random_page());
        else
            out.push_back(page);
    }
    return out;
}

} // namespace stems
