#include "workloads/registry.hh"

#include "workloads/commercial.hh"
#include "workloads/dss.hh"
#include "workloads/scientific.hh"

namespace stems {

std::unique_ptr<Workload>
makeWebApache()
{
    // Web serving: request-metadata pointer chases plus heavy static
    // content scanning over fresh pages -- tilted spatial relative to
    // OLTP, with plenty of off-chip read stalls (Apache benefits the
    // most from prefetching in Figure 10).
    CommercialParams p;
    p.name = "web-apache";
    p.cls = WorkloadClass::kWeb;
    p.hotPages = 98304;
    p.numSequences = 320;
    p.minSeqLen = 96;
    p.maxSeqLen = 224;
    p.numPageTypes = 20;
    p.stableBlocksMin = 3;
    p.stableBlocksMax = 6;
    p.chaseProb = 0.8;
    p.noiseProb = 0.35;
    p.scanBurstProb = 0.5;
    p.scanPagesMin = 6;
    p.scanPagesMax = 16;
    p.scanDensity = 16;
    p.invalidateProb = 0.03;
    p.cpuOpsMin = 8;
    p.cpuOpsMax = 20;
    return std::make_unique<CommercialWorkload>(p);
}

std::unique_ptr<Workload>
makeWebZeus()
{
    // Zeus: same structure as Apache but a leaner event-driven server
    // with fewer off-chip stalls and slightly denser content scans.
    CommercialParams p;
    p.name = "web-zeus";
    p.cls = WorkloadClass::kWeb;
    p.hotPages = 81920;
    p.numSequences = 288;
    p.minSeqLen = 96;
    p.maxSeqLen = 208;
    p.numPageTypes = 16;
    p.stableBlocksMin = 3;
    p.stableBlocksMax = 5;
    p.chaseProb = 0.8;
    p.noiseProb = 0.35;
    p.scanBurstProb = 0.45;
    p.scanPagesMin = 6;
    p.scanPagesMax = 14;
    p.scanDensity = 18;
    p.invalidateProb = 0.03;
    p.cpuOpsMin = 10;
    p.cpuOpsMax = 24;
    return std::make_unique<CommercialWorkload>(p);
}

std::unique_ptr<Workload>
makeOltpDb2()
{
    // TPC-C on DB2: B-tree and buffer-pool pointer chasing with
    // sparse intra-page patterns; biased temporal (Figure 6).
    CommercialParams p;
    p.name = "oltp-db2";
    p.cls = WorkloadClass::kOltp;
    p.hotPages = 131072;
    p.numSequences = 448;
    p.minSeqLen = 96;
    p.maxSeqLen = 288;
    p.numPageTypes = 24;
    p.stableBlocksMin = 2;
    p.stableBlocksMax = 5;
    p.unstableBlocks = 2;
    p.chaseProb = 0.9;
    p.noiseProb = 0.3;
    p.scanBurstProb = 0.0;
    p.invalidateProb = 0.04;
    p.cpuOpsMin = 8;
    p.cpuOpsMax = 20;
    return std::make_unique<CommercialWorkload>(p);
}

std::unique_ptr<Workload>
makeOltpOracle()
{
    // TPC-C on Oracle: larger SGA, more compute between accesses (the
    // paper's baseline spends only a quarter of its time off-chip, so
    // speedups are small).
    CommercialParams p;
    p.name = "oltp-oracle";
    p.cls = WorkloadClass::kOltp;
    p.hotPages = 163840;
    p.numSequences = 512;
    p.minSeqLen = 96;
    p.maxSeqLen = 288;
    p.numPageTypes = 28;
    p.stableBlocksMin = 2;
    p.stableBlocksMax = 5;
    p.unstableBlocks = 2;
    p.chaseProb = 0.9;
    p.noiseProb = 0.3;
    p.scanBurstProb = 0.0;
    p.invalidateProb = 0.04;
    p.cpuOpsMin = 28;
    p.cpuOpsMax = 56;
    return std::make_unique<CommercialWorkload>(p);
}

std::unique_ptr<Workload>
makeDssQry2()
{
    // TPC-H Q2 (join-dominated): scans plus frequent probe bursts.
    DssParams p;
    p.name = "dss-qry2";
    p.scanDensity = 12;
    p.intraSwapProb = 0.02;
    p.joinProbeProb = 0.85;
    p.probesPerBurst = 6;
    p.probeDirectoryFraction = 0.3;
    return std::make_unique<DssWorkload>(p);
}

std::unique_ptr<Workload>
makeDssQry16()
{
    // TPC-H Q16 (join-dominated, two record layouts): the alternating
    // scan patterns and higher swap rate reproduce its weak
    // intra-generation repetition (Figure 8's outlier).
    DssParams p;
    p.name = "dss-qry16";
    p.scanDensity = 10;
    p.scanUnstableBlocks = 4;
    p.scanUnstableProb = 0.4;
    p.intraSwapProb = 0.18;
    p.scanPatternVariants = 2;
    p.joinProbeProb = 0.8;
    p.probesPerBurst = 6;
    p.probeDirectoryFraction = 0.25;
    return std::make_unique<DssWorkload>(p);
}

std::unique_ptr<Workload>
makeDssQry17()
{
    // TPC-H Q17 (balanced scan-join): scan-heavy with lighter probes.
    DssParams p;
    p.name = "dss-qry17";
    p.scanDensity = 16;
    p.intraSwapProb = 0.02;
    p.joinProbeProb = 0.75;
    p.probesPerBurst = 5;
    p.probeDirectoryFraction = 0.25;
    return std::make_unique<DssWorkload>(p);
}

std::unique_ptr<Workload>
makeEm3d()
{
    return std::make_unique<Em3dWorkload>();
}

std::unique_ptr<Workload>
makeOcean()
{
    return std::make_unique<OceanWorkload>();
}

std::unique_ptr<Workload>
makeSparse()
{
    return std::make_unique<SparseWorkload>();
}

std::vector<std::unique_ptr<Workload>>
makeAllWorkloads()
{
    std::vector<std::unique_ptr<Workload>> all;
    all.push_back(makeWebApache());
    all.push_back(makeWebZeus());
    all.push_back(makeOltpDb2());
    all.push_back(makeOltpOracle());
    all.push_back(makeDssQry2());
    all.push_back(makeDssQry16());
    all.push_back(makeDssQry17());
    all.push_back(makeEm3d());
    all.push_back(makeOcean());
    all.push_back(makeSparse());
    return all;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name)
{
    for (auto &w : makeAllWorkloads())
        if (w->name() == name)
            return std::move(w);
    return nullptr;
}

} // namespace stems
