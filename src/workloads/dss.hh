/**
 * @file
 * Decision-support (TPC-H on DB2) workload generator.
 *
 * DSS queries are dominated by scans over previously untouched data
 * (compulsory misses TMS fundamentally cannot predict, paper Section
 * 2.2) with dense, code-correlated per-page patterns that SMS learns
 * rapidly. Join processing adds hash probes into fresh memory (the
 * unpredictable floor) and a small amount of revisited build-side
 * metadata (the only temporal component).
 */

#ifndef STEMS_WORKLOADS_DSS_HH
#define STEMS_WORKLOADS_DSS_HH

#include "workloads/workload.hh"

namespace stems {

/** Tuning knobs for the DSS generator. */
struct DssParams
{
    std::string name = "dss";

    /// Blocks accessed per scanned page.
    unsigned scanDensity = 18;
    /// Probabilistic extra blocks per scanned page.
    unsigned scanUnstableBlocks = 3;
    double scanUnstableProb = 0.3;
    /// Intra-page adjacent-swap probability (order stability knob;
    /// raised for Qry16, which shows the weakest Figure 8 repetition).
    double intraSwapProb = 0.02;
    /// Number of alternating scan patterns (2 destabilizes the PST
    /// index the way Qry16's two record layouts do).
    unsigned scanPatternVariants = 1;

    /// Per scanned page: probability of a join-probe burst.
    double joinProbeProb = 0.35;
    /// Probes per burst.
    unsigned probesPerBurst = 3;
    /// Hot build-side pages revisited by the join. Together with the
    /// scan stream continuously flushing the L2, this must be large
    /// enough that directory revisits miss off-chip.
    std::size_t joinHotPages = 32768;
    /// Fraction of probes that walk the (temporally repetitive)
    /// build-side directory instead of hashing into fresh memory.
    double probeDirectoryFraction = 0.25;

    /// Directory walk length (pages) and recurrence library size.
    std::size_t numDirSequences = 24;
    std::size_t dirSeqLen = 24;

    /// Per scanned page: probability of re-scanning a recently
    /// scanned run in order (spool/temp-table rereads -- the small
    /// temporal component visible in the paper's Figure 6 DSS bars).
    double rereadProb = 0.004;
    /// Pages per reread run.
    unsigned rereadRunPages = 24;

    /// Compute gap between accesses (predicate evaluation per tuple).
    unsigned cpuOpsMin = 20;
    unsigned cpuOpsMax = 48;
};

/**
 * The TPC-H query synthetic application.
 */
class DssWorkload : public Workload
{
  public:
    explicit DssWorkload(DssParams params);

    std::string name() const override { return params_.name; }

    WorkloadClass
    workloadClass() const override
    {
        return WorkloadClass::kDss;
    }

    Trace generate(std::uint64_t seed,
                   std::size_t target_records) const override;

    /** The parameters this instance was built with. */
    const DssParams &params() const { return params_; }

  private:
    DssParams params_;
};

} // namespace stems

#endif // STEMS_WORKLOADS_DSS_HH
