/**
 * @file
 * Process-wide, thread-safe metrics registry.
 *
 * Every execution layer (driver, batch simulator, trace store,
 * checkpointing) records into one registry under hierarchical
 * dot-separated names — `store.result.hit`, `driver.cell.engine_ns`,
 * `batch.chunk_ns`, `ckpt.resume.skipped_records` — so a sweep's
 * runtime behaviour has a single source of truth instead of counters
 * hand-threaded through each subsystem. Three instrument kinds:
 *
 *  - Counter: monotonically increasing u64 (lock-free add).
 *  - Gauge: last-written double (set/add).
 *  - LatencyHistogram: power-of-two buckets (one per bit width, 65
 *    total) plus exact count/sum/min/max. Recording is a handful of
 *    relaxed atomics — cheap enough to leave on unconditionally.
 *
 * Instrument references returned by the registry are stable for the
 * registry's lifetime (instruments are never removed), so hot paths
 * can resolve a name once and keep the pointer.
 *
 * Snapshots serialize to JSON with the same conventions as
 * analysis/report: stable (sorted) key order, exact u64 integers,
 * `%.17g` doubles — byte-identical output for identical states.
 * Snapshots never touch stdout; the bitwise-identity contract on
 * sweep output is unaffected by observability being attached.
 */

#ifndef STEMS_OBS_METRICS_HH
#define STEMS_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace stems {

/** Monotonic event counter. */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        value_.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-written scalar (e.g. store size, lane count). */
class Gauge
{
  public:
    void
    set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        value_.store(0.0, std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Latency/size histogram with one bucket per bit width: bucket 0
 * holds the value 0, bucket i (1..64) holds [2^(i-1), 2^i). The
 * power-of-two layout needs no configuration, covers the full u64
 * range, and keeps recording to a few relaxed atomic adds.
 */
class LatencyHistogram
{
  public:
    static constexpr int kBuckets = 65;

    void record(std::uint64_t value);

    std::uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

    /** Smallest recorded value; 0 when empty. */
    std::uint64_t min() const;

    std::uint64_t
    max() const
    {
        return max_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    bucketCount(int i) const
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }

    /** Inclusive lower bound of bucket i (0, 1, 2, 4, 8, ...). */
    static std::uint64_t lowerBound(int i);

    /** Bucket index for a value (its bit width). */
    static int bucketIndex(std::uint64_t value);

    void reset();

  private:
    std::atomic<std::uint64_t> buckets_[kBuckets] = {};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> min_{~std::uint64_t(0)};
    std::atomic<std::uint64_t> max_{0};
};

/** Point-in-time copy of one histogram, for snapshots/JSON. */
struct HistogramSnapshot
{
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    /** Nonzero buckets only, as (inclusive lower bound, count). */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;

    double
    mean() const
    {
        return count ? static_cast<double>(sum) /
                           static_cast<double>(count)
                     : 0.0;
    }
};

/**
 * Point-in-time copy of a whole registry. std::map keys give the
 * deterministic (sorted) order the JSON writer relies on.
 */
struct MetricsSnapshot
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    bool
    empty() const
    {
        return counters.empty() && gauges.empty() &&
               histograms.empty();
    }
};

/**
 * Named-instrument registry. Lookup takes a mutex; the returned
 * references stay valid for the registry's lifetime, so per-sweep
 * hot paths resolve once and record lock-free afterwards.
 *
 * `instance()` is the process-wide registry every subsystem records
 * into; separate instances exist for tests.
 */
class MetricsRegistry
{
  public:
    /** The process-wide registry. */
    static MetricsRegistry &instance();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    LatencyHistogram &histogram(const std::string &name);

    MetricsSnapshot snapshot() const;

    /** Zero every instrument (names stay registered). Tests and
     *  multi-sweep tools use this between runs. */
    void reset();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<LatencyHistogram>>
        histograms_;
};

/** Snapshot -> JSON document (schema "stems-metrics-v1"),
 *  deterministic byte-for-byte for equal snapshots. */
std::string metricsJson(const MetricsSnapshot &snap);

/** Write metricsJson() to `path`. @return false (with *error set)
 *  on I/O failure. */
bool writeMetricsJson(const std::string &path,
                      const MetricsSnapshot &snap,
                      std::string *error = nullptr);

/** Parse a stems-metrics-v1 document back into a snapshot. */
bool loadMetricsJson(const std::string &path, MetricsSnapshot &out,
                     std::string *error = nullptr);

/** Render one snapshot — or the delta between two — as markdown
 *  (the `stems_report metrics` surface). `old_snap` may be null. */
std::string renderMetricsMarkdown(const MetricsSnapshot &snap,
                                  const MetricsSnapshot *old_snap);

} // namespace stems

#endif // STEMS_OBS_METRICS_HH
