/**
 * @file
 * RAII scoped spans emitting Chrome trace-event JSON.
 *
 * A SpanCollector owns per-thread event buffers; while one is
 * attached (made the process-wide active collector), every
 * ScopedSpan records a complete event — name, category, start
 * timestamp, duration, thread id, optional args — into its calling
 * thread's buffer. The collector serializes them as Chrome
 * trace-event JSON (`ph:"X"` complete events plus `M` thread-name
 * metadata), which loads directly in Perfetto or chrome://tracing.
 *
 * Zero overhead when off: with no collector attached, constructing
 * a ScopedSpan is a single relaxed atomic load and no clock read —
 * the instrumentation can stay in the hot paths permanently. The
 * sweep's stdout/--json output is bitwise identical either way;
 * spans only ever write to the file the caller asks for.
 *
 * Threading contract: spans may be recorded from any thread (each
 * thread appends to its own buffer; the buffer registry is mutex-
 * protected and buffers outlive their threads). detach() and
 * chromeJson()/writeChromeJson() must be called after the threads
 * recording spans have finished their work — in this codebase,
 * after ExperimentDriver::run returns and its pool has joined.
 */

#ifndef STEMS_OBS_TRACE_SPAN_HH
#define STEMS_OBS_TRACE_SPAN_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace stems {

/** One completed span, staged for JSON serialization. */
struct SpanEvent
{
    const char *name;     ///< static string (span call sites)
    const char *category; ///< static string; Chrome "cat" field
    std::uint64_t startNs; ///< relative to collector creation
    std::uint64_t durNs;
    /** Args as (key, pre-rendered JSON value text) pairs. */
    std::vector<std::pair<std::string, std::string>> args;
};

class SpanCollector;

namespace span_detail {

struct ThreadBuffer
{
    std::mutex mutex;
    std::vector<SpanEvent> events;
    int tid = 0;
};

} // namespace span_detail

/**
 * Collects span events from all threads and serializes them to
 * Chrome trace-event JSON. Create one per observed run, attach() it
 * for the duration, detach() after worker threads have joined, then
 * write the file.
 */
class SpanCollector
{
  public:
    SpanCollector();
    ~SpanCollector();

    SpanCollector(const SpanCollector &) = delete;
    SpanCollector &operator=(const SpanCollector &) = delete;

    /** Make this the process-wide active collector. */
    void attach();

    /** Stop collecting (idempotent; also run by the destructor). */
    void detach();

    /** The active collector, or nullptr (one relaxed load). */
    static SpanCollector *
    active()
    {
        return activeCell().load(std::memory_order_acquire);
    }

    /** Nanoseconds since this collector was created. */
    std::uint64_t nowNs() const;

    /** The calling thread's buffer (created and registered on
     *  first use; cached thread-locally afterwards). */
    span_detail::ThreadBuffer &threadBuffer();

    /** Total recorded events across all threads. */
    std::size_t eventCount() const;

    /** Serialize everything recorded so far as a Chrome trace-event
     *  JSON document. Deterministic given the recorded events. */
    std::string chromeJson() const;

    /** Write chromeJson() to `path`. */
    bool writeChromeJson(const std::string &path,
                         std::string *error = nullptr) const;

  private:
    static std::atomic<SpanCollector *> &activeCell();

    mutable std::mutex mutex_;
    std::vector<std::shared_ptr<span_detail::ThreadBuffer>>
        buffers_;
    std::uint64_t epochNs_ = 0; ///< steady-clock origin
    std::uint64_t generation_ = 0;
};

/**
 * RAII span: records [construction, destruction) as one complete
 * event when a collector is attached; otherwise a no-op. `name` and
 * `category` must be string literals (stored by pointer).
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const char *name,
                        const char *category = "stems")
        : collector_(SpanCollector::active())
    {
        if (!collector_)
            return;
        event_.name = name;
        event_.category = category;
        event_.startNs = collector_->nowNs();
    }

    ~ScopedSpan()
    {
        if (!collector_)
            return;
        event_.durNs = collector_->nowNs() - event_.startNs;
        auto &buffer = collector_->threadBuffer();
        std::lock_guard<std::mutex> lock(buffer.mutex);
        buffer.events.push_back(std::move(event_));
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    bool
    active() const
    {
        return collector_ != nullptr;
    }

    /** Attach an integer arg (shown in the Perfetto args pane). */
    void arg(const char *key, std::uint64_t value);

    /** Attach a string arg. */
    void arg(const char *key, const std::string &value);

  private:
    SpanCollector *collector_;
    SpanEvent event_{};
};

} // namespace stems

#endif // STEMS_OBS_TRACE_SPAN_HH
