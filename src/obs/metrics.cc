#include "obs/metrics.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/mini_json.hh"

namespace stems {

// ---- LatencyHistogram ----

int
LatencyHistogram::bucketIndex(std::uint64_t value)
{
    int width = 0;
    while (value) {
        ++width;
        value >>= 1;
    }
    return width; // 0 for value 0, else the bit width (1..64)
}

std::uint64_t
LatencyHistogram::lowerBound(int i)
{
    return i == 0 ? 0 : std::uint64_t(1) << (i - 1);
}

void
LatencyHistogram::record(std::uint64_t value)
{
    buckets_[bucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t seen = min_.load(std::memory_order_relaxed);
    while (value < seen &&
           !min_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
    seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
}

std::uint64_t
LatencyHistogram::min() const
{
    return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

void
LatencyHistogram::reset()
{
    for (auto &bucket : buckets_)
        bucket.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(~std::uint64_t(0), std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
}

// ---- MetricsRegistry ----

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot.reset(new Counter());
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot.reset(new Gauge());
    return *slot;
}

LatencyHistogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot.reset(new LatencyHistogram());
    return *slot;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    for (const auto &kv : counters_)
        snap.counters[kv.first] = kv.second->value();
    for (const auto &kv : gauges_)
        snap.gauges[kv.first] = kv.second->value();
    for (const auto &kv : histograms_) {
        const LatencyHistogram &h = *kv.second;
        HistogramSnapshot hs;
        hs.count = h.count();
        hs.sum = h.sum();
        hs.min = h.min();
        hs.max = h.max();
        for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
            std::uint64_t n = h.bucketCount(i);
            if (n)
                hs.buckets.emplace_back(
                    LatencyHistogram::lowerBound(i), n);
        }
        snap.histograms[kv.first] = std::move(hs);
    }
    return snap;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &kv : counters_)
        kv.second->reset();
    for (auto &kv : gauges_)
        kv.second->reset();
    for (auto &kv : histograms_)
        kv.second->reset();
}

// ---- JSON snapshot ----

namespace {

std::string
u64Text(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

std::string
metricsJson(const MetricsSnapshot &snap)
{
    std::ostringstream out;
    out << "{\n  \"schema\": \"stems-metrics-v1\",\n";
    out << "  \"counters\": {";
    bool first = true;
    for (const auto &kv : snap.counters) {
        out << (first ? "\n" : ",\n") << "    \""
            << jsonEscape(kv.first) << "\": " << u64Text(kv.second);
        first = false;
    }
    out << (first ? "},\n" : "\n  },\n");
    out << "  \"gauges\": {";
    first = true;
    for (const auto &kv : snap.gauges) {
        out << (first ? "\n" : ",\n") << "    \""
            << jsonEscape(kv.first)
            << "\": " << jsonDouble(kv.second);
        first = false;
    }
    out << (first ? "},\n" : "\n  },\n");
    out << "  \"histograms\": {";
    first = true;
    for (const auto &kv : snap.histograms) {
        const HistogramSnapshot &h = kv.second;
        out << (first ? "\n" : ",\n") << "    \""
            << jsonEscape(kv.first) << "\": {\"count\": "
            << u64Text(h.count) << ", \"sum\": " << u64Text(h.sum)
            << ", \"min\": " << u64Text(h.min)
            << ", \"max\": " << u64Text(h.max) << ", \"buckets\": [";
        for (std::size_t i = 0; i < h.buckets.size(); ++i) {
            if (i)
                out << ", ";
            out << "[" << u64Text(h.buckets[i].first) << ", "
                << u64Text(h.buckets[i].second) << "]";
        }
        out << "]}";
        first = false;
    }
    out << (first ? "}\n" : "\n  }\n") << "}\n";
    return out.str();
}

bool
writeMetricsJson(const std::string &path,
                 const MetricsSnapshot &snap, std::string *error)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        if (error)
            *error = "cannot write '" + path + "'";
        return false;
    }
    out << metricsJson(snap);
    out.flush();
    if (!out) {
        if (error)
            *error = "write to '" + path + "' failed";
        return false;
    }
    return true;
}

bool
loadMetricsJson(const std::string &path, MetricsSnapshot &out,
                std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = "cannot read '" + path + "'";
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    JsonParser parser(text);
    JsonValue root;
    if (!parser.parseValue(root) ||
        root.kind != JsonValue::Kind::kObject) {
        if (error)
            *error = "'" + path + "': " +
                     (parser.error.empty() ? "not a JSON object"
                                           : parser.error);
        return false;
    }
    if (root.str("schema") != "stems-metrics-v1") {
        if (error)
            *error = "'" + path + "': not a stems-metrics-v1 file";
        return false;
    }
    out = MetricsSnapshot();
    if (const JsonValue *counters = root.get("counters")) {
        for (const auto &kv : counters->members) {
            if (kv.second.kind == JsonValue::Kind::kNumber)
                out.counters[kv.first] =
                    kv.second.isInteger
                        ? kv.second.integer
                        : static_cast<std::uint64_t>(
                              kv.second.number);
        }
    }
    if (const JsonValue *gauges = root.get("gauges")) {
        for (const auto &kv : gauges->members) {
            if (kv.second.kind == JsonValue::Kind::kNumber)
                out.gauges[kv.first] = kv.second.number;
        }
    }
    if (const JsonValue *hists = root.get("histograms")) {
        for (const auto &kv : hists->members) {
            if (kv.second.kind != JsonValue::Kind::kObject)
                continue;
            HistogramSnapshot hs;
            hs.count = kv.second.uint("count");
            hs.sum = kv.second.uint("sum");
            hs.min = kv.second.uint("min");
            hs.max = kv.second.uint("max");
            if (const JsonValue *buckets =
                    kv.second.get("buckets")) {
                for (const JsonValue &pair : buckets->items) {
                    if (pair.kind != JsonValue::Kind::kArray ||
                        pair.items.size() != 2)
                        continue;
                    auto exact =
                        [](const JsonValue &v) -> std::uint64_t {
                        return v.isInteger
                                   ? v.integer
                                   : static_cast<std::uint64_t>(
                                         v.number);
                    };
                    hs.buckets.emplace_back(exact(pair.items[0]),
                                            exact(pair.items[1]));
                }
            }
            out.histograms[kv.first] = std::move(hs);
        }
    }
    return true;
}

// ---- markdown rendering ----

namespace {

std::string
deltaText(std::uint64_t old_v, std::uint64_t new_v)
{
    if (new_v == old_v)
        return "0";
    if (new_v > old_v)
        return "+" + u64Text(new_v - old_v);
    return "-" + u64Text(old_v - new_v);
}

std::string
doubleText(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

} // namespace

std::string
renderMetricsMarkdown(const MetricsSnapshot &snap,
                      const MetricsSnapshot *old_snap)
{
    std::ostringstream out;
    out << (old_snap ? "# Metrics delta\n\n"
                     : "# Metrics snapshot\n\n");
    if (snap.empty()) {
        out << "(no metrics recorded)\n";
        return out.str();
    }

    if (!snap.counters.empty()) {
        out << "## Counters\n\n";
        if (old_snap) {
            out << "| counter | old | new | delta |\n";
            out << "|---|---:|---:|---:|\n";
            for (const auto &kv : snap.counters) {
                auto it = old_snap->counters.find(kv.first);
                std::uint64_t old_v =
                    it == old_snap->counters.end() ? 0 : it->second;
                out << "| `" << kv.first << "` | "
                    << u64Text(old_v) << " | " << u64Text(kv.second)
                    << " | " << deltaText(old_v, kv.second)
                    << " |\n";
            }
        } else {
            out << "| counter | value |\n";
            out << "|---|---:|\n";
            for (const auto &kv : snap.counters)
                out << "| `" << kv.first << "` | "
                    << u64Text(kv.second) << " |\n";
        }
        out << "\n";
    }

    if (!snap.gauges.empty()) {
        out << "## Gauges\n\n";
        if (old_snap) {
            out << "| gauge | old | new |\n";
            out << "|---|---:|---:|\n";
            for (const auto &kv : snap.gauges) {
                auto it = old_snap->gauges.find(kv.first);
                out << "| `" << kv.first << "` | "
                    << (it == old_snap->gauges.end()
                            ? std::string("-")
                            : doubleText(it->second))
                    << " | " << doubleText(kv.second) << " |\n";
            }
        } else {
            out << "| gauge | value |\n";
            out << "|---|---:|\n";
            for (const auto &kv : snap.gauges)
                out << "| `" << kv.first << "` | "
                    << doubleText(kv.second) << " |\n";
        }
        out << "\n";
    }

    if (!snap.histograms.empty()) {
        out << "## Histograms\n\n";
        if (old_snap) {
            out << "| histogram | old count | new count | old mean "
                   "| new mean |\n";
            out << "|---|---:|---:|---:|---:|\n";
            for (const auto &kv : snap.histograms) {
                auto it = old_snap->histograms.find(kv.first);
                const HistogramSnapshot *oh =
                    it == old_snap->histograms.end() ? nullptr
                                                     : &it->second;
                out << "| `" << kv.first << "` | "
                    << (oh ? u64Text(oh->count) : std::string("-"))
                    << " | " << u64Text(kv.second.count) << " | "
                    << (oh ? doubleText(oh->mean())
                           : std::string("-"))
                    << " | " << doubleText(kv.second.mean())
                    << " |\n";
            }
        } else {
            out << "| histogram | count | mean | min | max |\n";
            out << "|---|---:|---:|---:|---:|\n";
            for (const auto &kv : snap.histograms) {
                const HistogramSnapshot &h = kv.second;
                out << "| `" << kv.first << "` | "
                    << u64Text(h.count) << " | "
                    << doubleText(h.mean()) << " | "
                    << u64Text(h.min) << " | " << u64Text(h.max)
                    << " |\n";
            }
        }
        out << "\n";
    }
    return out.str();
}

} // namespace stems
