#include "obs/trace_span.hh"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

#include "common/mini_json.hh"

namespace stems {

namespace {

std::uint64_t
steadyNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Bumped on every attach/detach; invalidates the thread-local
 *  buffer caches so stale collector pointers are never used. */
std::atomic<std::uint64_t> &
generationCell()
{
    static std::atomic<std::uint64_t> cell{1};
    return cell;
}

int
processId()
{
#ifdef _WIN32
    return _getpid();
#else
    return static_cast<int>(getpid());
#endif
}

/** Microseconds with sub-µs precision, as Chrome's ts/dur expect. */
std::string
microsText(std::uint64_t ns)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%llu.%03u",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned>(ns % 1000));
    return buf;
}

} // namespace

std::atomic<SpanCollector *> &
SpanCollector::activeCell()
{
    static std::atomic<SpanCollector *> cell{nullptr};
    return cell;
}

SpanCollector::SpanCollector() : epochNs_(steadyNowNs()) {}

SpanCollector::~SpanCollector()
{
    detach();
}

void
SpanCollector::attach()
{
    generation_ =
        generationCell().fetch_add(1, std::memory_order_relaxed) + 1;
    activeCell().store(this, std::memory_order_release);
}

void
SpanCollector::detach()
{
    SpanCollector *expected = this;
    if (activeCell().compare_exchange_strong(
            expected, nullptr, std::memory_order_acq_rel)) {
        generationCell().fetch_add(1, std::memory_order_relaxed);
    }
}

std::uint64_t
SpanCollector::nowNs() const
{
    return steadyNowNs() - epochNs_;
}

span_detail::ThreadBuffer &
SpanCollector::threadBuffer()
{
    struct Cache
    {
        std::uint64_t generation = 0;
        SpanCollector *owner = nullptr;
        span_detail::ThreadBuffer *buffer = nullptr;
    };
    static thread_local Cache cache;
    std::uint64_t generation =
        generationCell().load(std::memory_order_relaxed);
    if (cache.buffer && cache.owner == this &&
        cache.generation == generation) {
        return *cache.buffer;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    auto buffer = std::make_shared<span_detail::ThreadBuffer>();
    buffer->tid = static_cast<int>(buffers_.size()) + 1;
    buffers_.push_back(buffer);
    cache.generation = generation;
    cache.owner = this;
    cache.buffer = buffer.get();
    return *buffer;
}

std::size_t
SpanCollector::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t total = 0;
    for (const auto &buffer : buffers_) {
        std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
        total += buffer->events.size();
    }
    return total;
}

std::string
SpanCollector::chromeJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const int pid = processId();
    std::ostringstream out;
    out << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
    bool first = true;
    auto sep = [&]() -> std::ostringstream & {
        out << (first ? "\n" : ",\n");
        first = false;
        return out;
    };
    // Thread-name metadata first, so viewers label the rows.
    for (const auto &buffer : buffers_) {
        sep() << "{\"ph\": \"M\", \"pid\": " << pid
              << ", \"tid\": " << buffer->tid
              << ", \"name\": \"thread_name\", \"args\": "
                 "{\"name\": \"thread-"
              << buffer->tid << "\"}}";
    }
    for (const auto &buffer : buffers_) {
        std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
        for (const SpanEvent &ev : buffer->events) {
            sep() << "{\"ph\": \"X\", \"pid\": " << pid
                  << ", \"tid\": " << buffer->tid << ", \"ts\": "
                  << microsText(ev.startNs) << ", \"dur\": "
                  << microsText(ev.durNs) << ", \"name\": \""
                  << jsonEscape(ev.name) << "\", \"cat\": \""
                  << jsonEscape(ev.category) << "\"";
            if (!ev.args.empty()) {
                out << ", \"args\": {";
                for (std::size_t i = 0; i < ev.args.size(); ++i) {
                    if (i)
                        out << ", ";
                    out << "\"" << jsonEscape(ev.args[i].first)
                        << "\": " << ev.args[i].second;
                }
                out << "}";
            }
            out << "}";
        }
    }
    out << (first ? "]}\n" : "\n]}\n");
    return out.str();
}

bool
SpanCollector::writeChromeJson(const std::string &path,
                               std::string *error) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        if (error)
            *error = "cannot write '" + path + "'";
        return false;
    }
    out << chromeJson();
    out.flush();
    if (!out) {
        if (error)
            *error = "write to '" + path + "' failed";
        return false;
    }
    return true;
}

void
ScopedSpan::arg(const char *key, std::uint64_t value)
{
    if (!collector_)
        return;
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    event_.args.emplace_back(key, buf);
}

void
ScopedSpan::arg(const char *key, const std::string &value)
{
    if (!collector_)
        return;
    event_.args.emplace_back(key, "\"" + jsonEscape(value) + "\"");
}

} // namespace stems
