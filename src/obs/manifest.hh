/**
 * @file
 * Per-sweep run manifests.
 *
 * A manifest is the "what ran, where, and how it went" record
 * written next to a sweep's `--json` results: the sweep
 * configuration and content digests, a host/hardware note, wall-
 * clock phase totals, the store diagnostics line, and the final
 * metrics snapshot — everything needed to diagnose a slow or stale
 * sweep from its artifacts, without re-running it under a profiler.
 *
 * Serialization follows the repo-wide JSON conventions (stable key
 * order, exact u64 integers, `%.17g` doubles); insertion order of
 * the config/phase vectors is preserved so callers control the
 * presentation order of their own keys.
 */

#ifndef STEMS_OBS_MANIFEST_HH
#define STEMS_OBS_MANIFEST_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hh"

namespace stems {

struct RunManifest
{
    std::string tool;    ///< binary / subcommand that ran the sweep
    std::string created; ///< human-readable local time (optional)
    std::string host;    ///< hostNote() or caller-supplied
    /** Sweep configuration as ordered (key, value) string pairs:
     *  records, seed, workloads, engines, digests, ... */
    std::vector<std::pair<std::string, std::string>> config;
    /** Wall-clock totals per phase, ordered, in nanoseconds. */
    std::vector<std::pair<std::string, std::uint64_t>> phaseNs;
    std::uint64_t wallNs = 0; ///< whole-run wall clock
    /** Final registry snapshot (includes the store counters). */
    MetricsSnapshot metrics;
};

/** "os arch · N hardware threads" note for the current host. */
std::string hostNote();

/** Manifest -> JSON document (schema "stems-manifest-v1"). */
std::string runManifestJson(const RunManifest &manifest);

/** Write runManifestJson() to `path`. */
bool writeRunManifestJson(const std::string &path,
                          const RunManifest &manifest,
                          std::string *error = nullptr);

} // namespace stems

#endif // STEMS_OBS_MANIFEST_HH
