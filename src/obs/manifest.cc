#include "obs/manifest.hh"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#ifndef _WIN32
#include <sys/utsname.h>
#endif

#include "common/mini_json.hh"

namespace stems {

std::string
hostNote()
{
    std::string note;
#ifndef _WIN32
    struct utsname uts;
    if (uname(&uts) == 0) {
        note += uts.sysname;
        note += " ";
        note += uts.machine;
    }
#endif
    if (note.empty())
        note = "unknown";
    unsigned threads = std::thread::hardware_concurrency();
    if (threads) {
        char buf[48];
        std::snprintf(buf, sizeof(buf),
                      " · %u hardware threads", threads);
        note += buf;
    }
    return note;
}

std::string
runManifestJson(const RunManifest &manifest)
{
    std::ostringstream out;
    out << "{\n  \"schema\": \"stems-manifest-v1\",\n";
    out << "  \"tool\": \"" << jsonEscape(manifest.tool) << "\",\n";
    if (!manifest.created.empty())
        out << "  \"created\": \"" << jsonEscape(manifest.created)
            << "\",\n";
    out << "  \"host\": \"" << jsonEscape(manifest.host) << "\",\n";
    out << "  \"config\": {";
    bool first = true;
    for (const auto &kv : manifest.config) {
        out << (first ? "\n" : ",\n") << "    \""
            << jsonEscape(kv.first) << "\": \""
            << jsonEscape(kv.second) << "\"";
        first = false;
    }
    out << (first ? "},\n" : "\n  },\n");
    out << "  \"phase_ns\": {";
    first = true;
    for (const auto &kv : manifest.phaseNs) {
        char num[24];
        std::snprintf(num, sizeof(num), "%llu",
                      static_cast<unsigned long long>(kv.second));
        out << (first ? "\n" : ",\n") << "    \""
            << jsonEscape(kv.first) << "\": " << num;
        first = false;
    }
    out << (first ? "},\n" : "\n  },\n");
    {
        char num[24];
        std::snprintf(
            num, sizeof(num), "%llu",
            static_cast<unsigned long long>(manifest.wallNs));
        out << "  \"wall_ns\": " << num << ",\n";
    }
    // Embed the metrics snapshot, reindented to nest cleanly.
    std::istringstream metrics(metricsJson(manifest.metrics));
    out << "  \"metrics\": ";
    std::string line;
    bool first_line = true;
    while (std::getline(metrics, line)) {
        if (!first_line)
            out << "\n  ";
        out << line;
        first_line = false;
    }
    out << "\n}\n";
    return out.str();
}

bool
writeRunManifestJson(const std::string &path,
                     const RunManifest &manifest, std::string *error)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        if (error)
            *error = "cannot write '" + path + "'";
        return false;
    }
    out << runManifestJson(manifest);
    out.flush();
    if (!out) {
        if (error)
            *error = "write to '" + path + "' failed";
        return false;
    }
    return true;
}

} // namespace stems
