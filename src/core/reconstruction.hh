/**
 * @file
 * Reconstruction engine — paper Section 4.2 and Figure 5.
 *
 * STeMS's key innovation: rebuilding the *total* predicted miss order
 * by interleaving the RMOB's temporal backbone with per-region PST
 * sequences. The initial miss goes to slot 0 of a 256-entry
 * reconstruction buffer; each subsequent RMOB entry advances the
 * temporal cursor by (delta + 1) slots; each PST element of a
 * predicted region advances that region's cursor by (delta + 1)
 * slots from its trigger. Collisions search up to two slots forward
 * or backward (paper: 99% of addresses place within +-2; 92% land in
 * their original slot — the displacement histogram feeds the
 * reconstruction ablation bench).
 */

#ifndef STEMS_CORE_RECONSTRUCTION_HH
#define STEMS_CORE_RECONSTRUCTION_HH

#include <functional>
#include <vector>

#include "common/stats.hh"
#include "core/pst.hh"
#include "core/rmob.hh"

namespace stems {

class StateWriter;
class StateReader;

/** Reconstruction configuration (paper defaults). */
struct ReconstructionParams
{
    /// Reconstruction buffer slots.
    std::size_t bufferSlots = 256;
    /// Max displacement searched when a slot is occupied.
    unsigned displacementWindow = 2;
};

/**
 * Rebuilds windows of the predicted total miss order.
 */
class Reconstructor
{
  public:
    /**
     * @param rmob  temporal backbone (not owned).
     * @param pst   spatial sequences (not owned).
     */
    Reconstructor(const RegionMissOrderBuffer &rmob,
                  const PatternSequenceTable &pst,
                  ReconstructionParams params = {});

    /** Result of reconstructing one window. */
    struct Window
    {
        /** Predicted miss order (slot 0 = the initiating miss). */
        std::vector<Addr> sequence;
        /** RMOB position to resume from for the next window. */
        RegionMissOrderBuffer::Position nextPos = 0;
        /** True when the RMOB had an entry at the start position. */
        bool valid = false;
    };

    /**
     * Reconstruct a window starting at an RMOB position.
     *
     * @param start_pos    RMOB position of the stream head.
     * @param note_region  optional: invoked with (region base, PST
     *                     index) for every region whose spatial
     *                     sequence was used — feeds the spatial-only
     *                     stream check of Section 4.2.
     */
    Window reconstruct(
        RegionMissOrderBuffer::Position start_pos,
        const std::function<void(Addr, std::uint64_t)> &note_region =
            nullptr);

    /** Displacement histogram (0 = original slot). */
    const Histogram &displacements() const { return displacements_; }

    /** Addresses dropped because no free slot was within reach. */
    std::uint64_t dropped() const { return dropped_; }

    /** Windows reconstructed (diagnostics). */
    std::uint64_t windows() const { return windows_; }

    /** Serialize the reconstruction statistics (checkpointing). The
     *  RMOB/PST references are wiring; their state is saved by their
     *  owners. */
    void saveState(StateWriter &w) const;

    /** Restore state written by saveState. */
    void loadState(StateReader &r);

  private:
    /** Place an address near a slot; updates displacement stats. */
    bool place(std::vector<Addr> &slots, std::size_t slot, Addr a);

    /** Expand one RMOB entry's spatial sequence into the buffer. */
    void expandSpatial(
        std::vector<Addr> &slots, std::size_t trigger_slot,
        const RmobEntry &entry,
        const std::function<void(Addr, std::uint64_t)> &note_region);

    /** A backbone entry laid down in phase one (see reconstruct). */
    struct Placed
    {
        RmobEntry entry;
        std::size_t slot;
    };

    const RegionMissOrderBuffer &rmob_;
    const PatternSequenceTable &pst_;
    ReconstructionParams params_;
    Histogram displacements_;
    std::uint64_t dropped_ = 0;
    std::uint64_t windows_ = 0;
    /// Per-call scratch held as members so repeated reconstructions
    /// reuse capacity instead of reallocating (reconstruct() is on
    /// the per-miss hot path). Contents are dead between calls.
    std::vector<SpatialElement> lookupScratch_;
    std::vector<Addr> slotScratch_;
    std::vector<Placed> backboneScratch_;
};

} // namespace stems

#endif // STEMS_CORE_RECONSTRUCTION_HH
