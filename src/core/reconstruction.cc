#include "core/reconstruction.hh"

#include "common/state_codec.hh"

namespace stems {

namespace {

constexpr std::uint32_t kReconTag = stateTag('R', 'C', 'O', 'N');

void
saveHistogram(StateWriter &w, const Histogram &h)
{
    const auto &buckets = h.buckets();
    w.u64(buckets.size());
    for (const auto &kv : buckets) { // std::map: stable key order
        w.i64(kv.first);
        w.u64(kv.second);
    }
}

void
loadHistogram(StateReader &r, Histogram &h)
{
    h = Histogram();
    std::uint64_t buckets = r.u64();
    for (std::uint64_t i = 0; i < buckets && r.ok(); ++i) {
        std::int64_t bucket = r.i64();
        std::uint64_t count = r.u64();
        h.add(bucket, count);
    }
}

} // namespace

Reconstructor::Reconstructor(const RegionMissOrderBuffer &rmob,
                             const PatternSequenceTable &pst,
                             ReconstructionParams params)
    : rmob_(rmob), pst_(pst), params_(params)
{
}

bool
Reconstructor::place(std::vector<Addr> &slots, std::size_t slot,
                     Addr a)
{
    if (slot >= slots.size())
        return false;
    if (slots[slot] == 0) {
        slots[slot] = a;
        displacements_.add(0);
        return true;
    }
    // Occupied: search adjacent slots, nearest first, forward before
    // backward (paper Section 4.3).
    for (unsigned d = 1; d <= params_.displacementWindow; ++d) {
        if (slot + d < slots.size() && slots[slot + d] == 0) {
            slots[slot + d] = a;
            displacements_.add(static_cast<std::int64_t>(d));
            return true;
        }
        if (slot >= d && slots[slot - d] == 0) {
            slots[slot - d] = a;
            displacements_.add(-static_cast<std::int64_t>(d));
            return true;
        }
    }
    ++dropped_;
    return false;
}

void
Reconstructor::expandSpatial(
    std::vector<Addr> &slots, std::size_t trigger_slot,
    const RmobEntry &entry,
    const std::function<void(Addr, std::uint64_t)> &note_region)
{
    std::uint64_t index =
        stemsPatternIndex(entry.pc16, regionOffset(entry.addr));
    if (!pst_.lookup(index, lookupScratch_))
        return;
    Addr region = regionBase(entry.addr);
    if (note_region)
        note_region(region, index);

    std::size_t cursor = trigger_slot;
    for (const SpatialElement &el : lookupScratch_) {
        cursor += el.delta + 1;
        if (cursor >= slots.size() + params_.displacementWindow)
            break;
        place(slots, cursor,
              addrFromRegionOffset(region, el.offset));
    }
}

Reconstructor::Window
Reconstructor::reconstruct(
    RegionMissOrderBuffer::Position start_pos,
    const std::function<void(Addr, std::uint64_t)> &note_region)
{
    Window w;
    auto head = rmob_.at(start_pos);
    if (!head.has_value()) {
        w.nextPos = start_pos;
        return w;
    }
    ++windows_;
    w.valid = true;

    std::vector<Addr> &slots = slotScratch_;
    slots.assign(params_.bufferSlots, 0);
    slots[0] = head->addr;

    // Phase one (paper Figure 5, step two): lay down the temporal
    // backbone — every RMOB entry at its delta-directed slot. Doing
    // this before any spatial expansion guarantees mispredicted
    // spatial sequences can displace predictions, never the recorded
    // miss order itself.
    std::vector<Placed> &backbone = backboneScratch_;
    backbone.clear();
    backbone.push_back({*head, 0});

    std::size_t cursor = 0;
    RegionMissOrderBuffer::Position pos = start_pos + 1;
    while (true) {
        auto e = rmob_.at(pos);
        if (!e.has_value())
            break; // overwritten or caught up with the frontier
        std::size_t next_cursor = cursor + e->delta + 1;
        if (next_cursor >= slots.size())
            break; // window full; resume here next time
        cursor = next_cursor;
        place(slots, cursor, e->addr);
        backbone.push_back({*e, cursor});
        ++pos;
    }
    w.nextPos = pos;

    // Phase two (Figure 5, step three): expand each backbone entry's
    // spatial sequence around its trigger slot.
    for (const Placed &p : backbone)
        expandSpatial(slots, p.slot, p.entry, note_region);

    w.sequence.reserve(params_.bufferSlots / 4);
    for (Addr a : slots)
        if (a != 0)
            w.sequence.push_back(a);
    return w;
}

void
Reconstructor::saveState(StateWriter &w) const
{
    w.tag(kReconTag);
    saveHistogram(w, displacements_);
    w.u64(dropped_);
    w.u64(windows_);
}

void
Reconstructor::loadState(StateReader &r)
{
    r.tag(kReconTag);
    loadHistogram(r, displacements_);
    dropped_ = r.u64();
    windows_ = r.u64();
}

} // namespace stems
