/**
 * @file
 * STeMS Active Generation Table (AGT) — paper Sections 4.1 and 4.3.
 *
 * Unlike the SMS AGT (a bit vector per active region), the STeMS AGT
 * accumulates the *sequence* of misses within each active generation
 * together with their reconstruction deltas, and remembers the PST
 * snapshot taken at the trigger (used to filter spatially predicted
 * misses out of the RMOB). 64 entries of a 40-byte sequence = 2.5 KB
 * of SRAM (paper Section 4.3).
 */

#ifndef STEMS_CORE_AGT_HH
#define STEMS_CORE_AGT_HH

#include <functional>

#include "common/arena.hh"
#include "common/lru_table.hh"
#include "core/pst.hh"

namespace stems {

class StateWriter;
class StateReader;

/** One active STeMS generation. */
struct StemsGeneration
{
    Addr regionBase = 0;
    std::uint16_t triggerPc16 = 0;
    std::uint8_t triggerOffset = 0;
    std::uint64_t index = 0; ///< stemsPatternIndex of the trigger
    std::uint32_t mask = 0;  ///< offsets missed this generation
    /** Offsets touched by any L1 access this generation. Counters
     *  train from this (hysteresis must not erode on L2 hits); the
     *  sequence/deltas come from the misses only. */
    std::uint32_t accessMask = 0;
    /** Non-trigger misses in first-access order, with deltas. At
     *  most one element per block offset, so the hard cap is
     *  kBlocksPerRegion — inline storage keeps a generation heap-free
     *  and the whole entry memcpy-copyable. */
    InlineVec<SpatialElement, kBlocksPerRegion> sequence;
    /** Global miss sequence number of the last access recorded. */
    std::uint64_t lastSeq = 0;
    /** PST snapshot at trigger time: offsets predicted spatially. */
    std::uint32_t predictedMask = 0;
    /** Spatial-only stream check already performed. */
    bool spatialChecked = false;

    bool
    accessed(unsigned offset) const
    {
        return ((mask | accessMask) >> offset) & 1u;
    }
};

/** AGT configuration. */
struct StemsAgtParams
{
    std::size_t entries = 64;
};

/**
 * The STeMS active generation table.
 */
class StemsAgt
{
  public:
    /** Called with generations as they end (feeds PST training). */
    using EndCallback = std::function<void(const StemsGeneration &)>;

    explicit StemsAgt(StemsAgtParams params = {});

    /** Register the generation-end observer. */
    void setEndCallback(EndCallback cb) { onEnd_ = std::move(cb); }

    /** Active generation for a region, or nullptr. */
    StemsGeneration *find(Addr region_base);

    /**
     * Open a generation for a region (capacity eviction ends the
     * victim's generation via the callback).
     *
     * @return the fresh generation.
     */
    StemsGeneration &open(Addr region_base);

    /**
     * A block left the L1; ends the covering generation when the
     * block was missed during it.
     */
    void blockRemoved(Addr a);

    /** Active generation count (diagnostics). */
    std::size_t active() const { return table_.occupancy(); }

    /** Serialize every active generation (checkpointing). The end
     *  callback is wiring; the owner re-registers it. */
    void saveState(StateWriter &w) const;

    /** Restore state saved from an identical geometry. */
    void loadState(StateReader &r);

  private:
    LruTable<StemsGeneration> table_; ///< keyed by region number
    EndCallback onEnd_;
};

} // namespace stems

#endif // STEMS_CORE_AGT_HH
