/**
 * @file
 * Pattern Sequence Table (PST) — paper Sections 4.1 and 4.3.
 *
 * Where SMS's history table stores a bit vector per pattern, the PST
 * stores the *sequence* of accesses within a spatial region: for each
 * of the 32 blocks, a 2-bit saturating counter (hysteresis over
 * stable vs unstable offsets), the block's position in the access
 * order, and its reconstruction delta — the number of global misses
 * interleaved between the previous access to this region and this
 * one. A spatial sequence costs 32 x 10 bits = 40 bytes, so a 16K
 * entry PST (640 KB) lives in main memory (paper Section 4.3).
 */

#ifndef STEMS_CORE_PST_HH
#define STEMS_CORE_PST_HH

#include <cstdint>
#include <vector>

#include "common/lru_table.hh"
#include "common/types.hh"

namespace stems {

class StateWriter;
class StateReader;

/**
 * STeMS pattern index: the 16-bit PC stored in RMOB/AGT entries
 * combined with the block offset (the SMS "PC+offset" index).
 */
constexpr std::uint64_t
stemsPatternIndex(std::uint16_t pc16, unsigned offset)
{
    return (std::uint64_t{pc16} << 5) ^ offset;
}

/** Truncate a full PC to the 16 bits STeMS stores (Section 4.3). */
constexpr std::uint16_t pc16Of(Pc pc)
{
    return static_cast<std::uint16_t>(pc & 0xffff);
}

/** One element of a spatial sequence (offset in access order). */
struct SpatialElement
{
    std::uint8_t offset = 0; ///< block offset within the region
    /** Global misses strictly between the previous access to this
     *  region (in this generation) and this access. */
    std::uint8_t delta = 0;
};

/** PST configuration (paper defaults). */
struct PstParams
{
    std::size_t entries = 16384;
    std::size_t ways = 8;
    /// Counter value required to predict an offset.
    unsigned predictThreshold = 2;
};

/**
 * The pattern sequence table.
 */
class PatternSequenceTable
{
  public:
    explicit PatternSequenceTable(PstParams params = {});

    /**
     * Train with a finished generation.
     *
     * @param index        stemsPatternIndex of the generation's
     *                     trigger.
     * @param sequence     non-trigger misses in first-access order
     *                     (defines order and deltas).
     * @param access_mask  every offset touched during the generation
     *                     (defines the counter updates; includes the
     *                     sequence offsets and cache-resident blocks).
     */
    void train(std::uint64_t index, const SpatialElement *sequence,
               std::size_t sequence_len, std::uint32_t access_mask);

    /** Convenience overload for vector-backed sequences. */
    void
    train(std::uint64_t index,
          const std::vector<SpatialElement> &sequence,
          std::uint32_t access_mask)
    {
        train(index, sequence.data(), sequence.size(), access_mask);
    }

    /**
     * Predicted sequence for an index: elements whose counters meet
     * the threshold, in stored access order.
     *
     * @return true when the index had an entry (even if no element
     *         currently predicts).
     */
    bool lookup(std::uint64_t index,
                std::vector<SpatialElement> &out) const;

    /**
     * Bitmask of offsets currently predicted for an index (used to
     * filter spatially-predictable misses out of the RMOB).
     */
    std::uint32_t predictedMask(std::uint64_t index) const;

    /** Number of trained patterns (diagnostics). */
    std::size_t trainedPatterns() const { return table_.occupancy(); }

    /** Serialize the full table (checkpointing). */
    void saveState(StateWriter &w) const;

    /** Restore state saved from an identical geometry. */
    void loadState(StateReader &r);

  private:
    /** Per-index storage: 2-bit counter, delta, order per block. */
    struct Entry
    {
        std::uint8_t counter[kBlocksPerRegion] = {};
        std::uint8_t delta[kBlocksPerRegion] = {};
        std::uint8_t order[kBlocksPerRegion] = {};
    };

    PstParams params_;
    LruTable<Entry> table_;
};

} // namespace stems

#endif // STEMS_CORE_PST_HH
