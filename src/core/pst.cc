#include "core/pst.hh"

#include <algorithm>

#include "common/state_codec.hh"

namespace stems {

PatternSequenceTable::PatternSequenceTable(PstParams params)
    : params_(params), table_(params.entries, params.ways)
{
}

void
PatternSequenceTable::train(
    std::uint64_t index, const SpatialElement *sequence,
    std::size_t sequence_len, std::uint32_t access_mask)
{
    Entry &e = table_.findOrInsert(index);

    std::uint8_t position = 0;
    for (std::size_t i = 0; i < sequence_len; ++i) {
        const SpatialElement &el = sequence[i];
        unsigned off = el.offset % kBlocksPerRegion;
        access_mask |= 1u << off;
        // The most recent occurrence defines order and delta (recent
        // history predicts best, Section 2.1).
        e.delta[off] = el.delta;
        e.order[off] = position++;
    }
    for (unsigned off = 0; off < kBlocksPerRegion; ++off) {
        if ((access_mask >> off) & 1u) {
            if (e.counter[off] < 3)
                ++e.counter[off];
        } else if (e.counter[off] > 0) {
            --e.counter[off];
        }
    }
}

bool
PatternSequenceTable::lookup(std::uint64_t index,
                             std::vector<SpatialElement> &out) const
{
    const Entry *e = table_.peek(index);
    if (e == nullptr)
        return false;

    struct Item
    {
        std::uint8_t order;
        SpatialElement element;
    };
    Item items[kBlocksPerRegion];
    unsigned n = 0;
    for (unsigned off = 0; off < kBlocksPerRegion; ++off) {
        if (e->counter[off] >= params_.predictThreshold) {
            items[n].order = e->order[off];
            items[n].element.offset = static_cast<std::uint8_t>(off);
            items[n].element.delta = e->delta[off];
            ++n;
        }
    }
    std::sort(items, items + n, [](const Item &a, const Item &b) {
        if (a.order != b.order)
            return a.order < b.order;
        return a.element.offset < b.element.offset;
    });
    out.clear();
    for (unsigned i = 0; i < n; ++i)
        out.push_back(items[i].element);
    return true;
}

std::uint32_t
PatternSequenceTable::predictedMask(std::uint64_t index) const
{
    const Entry *e = table_.peek(index);
    if (e == nullptr)
        return 0;
    std::uint32_t mask = 0;
    for (unsigned off = 0; off < kBlocksPerRegion; ++off)
        if (e->counter[off] >= params_.predictThreshold)
            mask |= 1u << off;
    return mask;
}

namespace {
constexpr std::uint32_t kPstTag = stateTag('P', 'S', 'T', '1');
} // namespace

void
PatternSequenceTable::saveState(StateWriter &w) const
{
    w.tag(kPstTag);
    table_.saveState(w, [](StateWriter &sw, const Entry &e) {
        for (unsigned off = 0; off < kBlocksPerRegion; ++off) {
            sw.u8(e.counter[off]);
            sw.u8(e.delta[off]);
            sw.u8(e.order[off]);
        }
    });
}

void
PatternSequenceTable::loadState(StateReader &r)
{
    r.tag(kPstTag);
    table_.loadState(r, [](StateReader &sr, Entry &e) {
        for (unsigned off = 0; off < kBlocksPerRegion; ++off) {
            e.counter[off] = sr.u8();
            e.delta[off] = sr.u8();
            e.order[off] = sr.u8();
        }
    });
}

} // namespace stems
