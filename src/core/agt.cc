#include "core/agt.hh"

namespace stems {

StemsAgt::StemsAgt(StemsAgtParams params)
    : table_(params.entries, params.entries)
{
}

StemsGeneration *
StemsAgt::find(Addr region_base)
{
    return table_.find(regionNumber(region_base));
}

StemsGeneration &
StemsAgt::open(Addr region_base)
{
    StemsGeneration &gen = table_.findOrInsert(
        regionNumber(region_base),
        [this](std::uint64_t, StemsGeneration &victim) {
            if (onEnd_)
                onEnd_(victim);
        });
    gen = StemsGeneration{};
    gen.regionBase = regionBase(region_base);
    return gen;
}

void
StemsAgt::blockRemoved(Addr a)
{
    StemsGeneration *gen = find(regionBase(a));
    if (gen == nullptr)
        return;
    if (gen->accessed(regionOffset(a))) {
        StemsGeneration finished = *gen;
        table_.erase(regionNumber(regionBase(a)));
        if (onEnd_)
            onEnd_(finished);
    }
}

} // namespace stems
