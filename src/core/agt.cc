#include "core/agt.hh"

#include "common/state_codec.hh"

namespace stems {

StemsAgt::StemsAgt(StemsAgtParams params)
    : table_(params.entries, params.entries)
{
}

StemsGeneration *
StemsAgt::find(Addr region_base)
{
    return table_.find(regionNumber(region_base));
}

StemsGeneration &
StemsAgt::open(Addr region_base)
{
    StemsGeneration &gen = table_.findOrInsert(
        regionNumber(region_base),
        [this](std::uint64_t, StemsGeneration &victim) {
            if (onEnd_)
                onEnd_(victim);
        });
    gen = StemsGeneration{};
    gen.regionBase = regionBase(region_base);
    return gen;
}

void
StemsAgt::blockRemoved(Addr a)
{
    StemsGeneration *gen = find(regionBase(a));
    if (gen == nullptr)
        return;
    if (gen->accessed(regionOffset(a))) {
        StemsGeneration finished = *gen;
        table_.erase(regionNumber(regionBase(a)));
        if (onEnd_)
            onEnd_(finished);
    }
}

namespace {
constexpr std::uint32_t kAgtTag = stateTag('S', 'A', 'G', 'T');
} // namespace

void
StemsAgt::saveState(StateWriter &w) const
{
    w.tag(kAgtTag);
    table_.saveState(w, [](StateWriter &sw,
                           const StemsGeneration &g) {
        sw.u64(g.regionBase);
        sw.u32(g.triggerPc16);
        sw.u8(g.triggerOffset);
        sw.u64(g.index);
        sw.u32(g.mask);
        sw.u32(g.accessMask);
        sw.u64(g.sequence.size());
        for (const SpatialElement &el : g.sequence) {
            sw.u8(el.offset);
            sw.u8(el.delta);
        }
        sw.u64(g.lastSeq);
        sw.u32(g.predictedMask);
        sw.boolean(g.spatialChecked);
    });
}

void
StemsAgt::loadState(StateReader &r)
{
    r.tag(kAgtTag);
    table_.loadState(r, [](StateReader &sr, StemsGeneration &g) {
        g.regionBase = sr.u64();
        g.triggerPc16 = static_cast<std::uint16_t>(sr.u32());
        g.triggerOffset = sr.u8();
        g.index = sr.u64();
        g.mask = sr.u32();
        g.accessMask = sr.u32();
        std::uint64_t n = sr.u64();
        // A generation records at most one element per block offset.
        if (n > kBlocksPerRegion) {
            sr.fail();
            return;
        }
        g.sequence.clear();
        for (std::uint64_t i = 0; i < n && sr.ok(); ++i) {
            SpatialElement el;
            el.offset = sr.u8();
            el.delta = sr.u8();
            g.sequence.push_back(el);
        }
        g.lastSeq = sr.u64();
        g.predictedMask = sr.u32();
        g.spatialChecked = sr.boolean();
    });
}

} // namespace stems
