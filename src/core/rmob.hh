/**
 * @file
 * Region Miss-Order Buffer (RMOB) — paper Sections 4.1 and 4.3.
 *
 * The temporal backbone of STeMS: a circular buffer recording, in
 * miss order, the off-chip read misses that the spatial predictor did
 * NOT predict (spatial triggers and spatial misses). Each entry holds
 * the block address, a 16-bit PC and the reconstruction delta — the
 * number of (spatially predicted, hence filtered) global misses
 * between the previous RMOB entry and this one. Filtering shrinks the
 * buffer from TMS's 384K entries (2 MB) to 128K entries (1 MB).
 *
 * An address index maps each block to its most recent RMOB position,
 * modelled after the main-memory hash table of the TMS follow-on
 * work; stale entries (overwritten positions) are detected on lookup.
 */

#ifndef STEMS_CORE_RMOB_HH
#define STEMS_CORE_RMOB_HH

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/circular_buffer.hh"
#include "common/types.hh"

namespace stems {

class StateWriter;
class StateReader;

/** One RMOB record (paper: 5 B address + 16 b PC + 8 b delta). */
struct RmobEntry
{
    Addr addr = 0;          ///< block-aligned miss address
    std::uint16_t pc16 = 0; ///< truncated PC of the miss instruction
    std::uint8_t delta = 0; ///< skipped global misses since previous
};

/**
 * The region miss-order buffer plus its address index.
 */
class RegionMissOrderBuffer
{
  public:
    using Position = CircularBuffer<RmobEntry>::Position;

    /** Construct with a fixed entry count (paper default 128K). */
    explicit RegionMissOrderBuffer(std::size_t entries = 128 * 1024);

    /**
     * Append a filtered miss.
     *
     * @return the logical position assigned.
     */
    Position append(Addr block_addr, std::uint16_t pc16,
                    unsigned delta);

    /** Entry at a position; nullopt when overwritten/unwritten. */
    std::optional<RmobEntry> at(Position pos) const;

    /**
     * Most recent position holding this block address, if it is
     * still resident.
     */
    std::optional<Position> lookup(Addr block_addr) const;

    /** Next position that will be assigned. */
    Position frontier() const { return buffer_.size(); }

    /** Fixed capacity. */
    std::size_t capacity() const { return buffer_.capacity(); }

    /** Entries currently resident. */
    std::size_t live() const { return buffer_.live(); }

    /** Serialize buffer + address index (checkpointing). */
    void saveState(StateWriter &w) const;

    /** Restore state saved from an equal-capacity buffer. */
    void loadState(StateReader &r);

  private:
    CircularBuffer<RmobEntry> buffer_;
    std::unordered_map<Addr, Position> index_;
};

} // namespace stems

#endif // STEMS_CORE_RMOB_HH
