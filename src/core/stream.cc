#include "core/stream.hh"

namespace stems {

StreamQueueSet::StreamQueueSet(StreamParams params)
    : params_(params), streams_(params.numStreams)
{
}

void
StreamQueueSet::maybeRefill(Stream &s)
{
    if (s.exhausted || !s.refill)
        return;
    if (s.pending.size() >= params_.refillLowWater)
        return;
    std::size_t before = s.pending.size();
    s.refill(s.pending, s.refillState);
    if (s.pending.size() == before)
        s.exhausted = true;
}

void
StreamQueueSet::issueFrom(Stream &s, int id)
{
    maybeRefill(s);
    unsigned target = s.confirmed ? params_.lookahead : 1;
    while (s.inFlight < static_cast<int>(target) &&
           globalInFlight_ <
               static_cast<int>(params_.maxGlobalInFlight) &&
           !s.pending.empty()) {
        PrefetchRequest req;
        req.addr = blockAlign(s.pending.front());
        req.streamId = id;
        req.sink = PrefetchSink::kBuffer;
        pendingReqs_.push_back(req);
        s.pending.pop_front();
        ++s.inFlight;
        ++globalInFlight_;
        maybeRefill(s);
    }
}

StreamQueueSet::Stream *
StreamQueueSet::decodeId(int stream_id, std::size_t *index_out)
{
    if (stream_id < 0)
        return nullptr;
    std::size_t index = static_cast<std::uint32_t>(stream_id) & 0xF;
    std::uint32_t generation =
        static_cast<std::uint32_t>(stream_id) >> 4;
    if (index >= streams_.size())
        return nullptr;
    Stream &s = streams_[index];
    if (!s.active || s.generation != generation)
        return nullptr; // the queue was reallocated since
    if (index_out)
        *index_out = index;
    return &s;
}

int
StreamQueueSet::allocate(const std::vector<Addr> &initial,
                         RefillFn refill, bool confirmed,
                         std::uint64_t refill_state)
{
    std::size_t victim = 0;
    for (std::size_t i = 0; i < streams_.size(); ++i) {
        if (!streams_[i].active) {
            victim = i;
            break;
        }
        if (streams_[i].lru < streams_[victim].lru)
            victim = i;
    }

    Stream &s = streams_[victim];
    // Reclaim the victim's outstanding budget (see TMS counterpart).
    globalInFlight_ -= s.inFlight;
    if (globalInFlight_ < 0)
        globalInFlight_ = 0;
    s.reset();
    ++s.generation;
    s.active = true;
    s.confirmed = confirmed;
    s.pending.assign(initial.begin(), initial.end());
    s.refill = std::move(refill);
    s.refillState = refill_state;
    s.lru = ++clock_;
    ++allocated_;
    int id = encodeId(victim, s.generation);
    issueFrom(s, id);
    return id;
}

bool
StreamQueueSet::resync(Addr a)
{
    Addr block = blockAlign(a);
    for (std::size_t i = 0; i < streams_.size(); ++i) {
        Stream &s = streams_[i];
        if (!s.active)
            continue;
        std::size_t window =
            std::min(params_.resyncWindow, s.pending.size());
        for (std::size_t k = 0; k < window; ++k) {
            if (blockAlign(s.pending[k]) == block) {
                s.pending.dropFront(k + 1);
                s.confirmed = true;
                s.lru = ++clock_;
                issueFrom(s, encodeId(i, s.generation));
                return true;
            }
        }
    }
    return false;
}

void
StreamQueueSet::onHit(int stream_id)
{
    Stream *s = decodeId(stream_id);
    if (!s)
        return; // stale stream: its budget was reclaimed at realloc
    if (s->inFlight > 0) {
        --s->inFlight;
        if (globalInFlight_ > 0)
            --globalInFlight_;
    }
    s->confirmed = true;
    s->lru = ++clock_;
    issueFrom(*s, stream_id);
}

void
StreamQueueSet::onDrop(int stream_id)
{
    // Evicted-unused: release the slot; do not push further (eviction
    // feedback would livelock the SVB).
    Stream *s = decodeId(stream_id);
    if (s && s->inFlight > 0) {
        --s->inFlight;
        if (globalInFlight_ > 0)
            --globalInFlight_;
    }
}

void
StreamQueueSet::onFiltered(int stream_id)
{
    Stream *s = decodeId(stream_id);
    if (!s)
        return;
    if (s->inFlight > 0) {
        --s->inFlight;
        if (globalInFlight_ > 0)
            --globalInFlight_;
        // The block was already resident: stream past it.
        issueFrom(*s, stream_id);
    }
}

void
StreamQueueSet::drainRequests(std::vector<PrefetchRequest> &out)
{
    out.insert(out.end(), pendingReqs_.begin(), pendingReqs_.end());
    pendingReqs_.clear();
}

namespace {
constexpr std::uint32_t kStreamsTag = stateTag('S', 'T', 'Q', 'S');
} // namespace

void
StreamQueueSet::saveState(StateWriter &w) const
{
    w.tag(kStreamsTag);
    w.i64(globalInFlight_);
    w.u64(clock_);
    w.u64(allocated_);
    w.u64(streams_.size());
    for (const Stream &s : streams_) {
        w.boolean(s.active);
        w.boolean(s.confirmed);
        w.boolean(s.exhausted);
        w.u64(s.pending.size());
        for (std::size_t k = 0; k < s.pending.size(); ++k)
            w.u64(s.pending[k]);
        w.boolean(static_cast<bool>(s.refill));
        w.u64(s.refillState);
        w.u64(s.lru);
        w.i64(s.inFlight);
        w.u32(s.generation);
    }
    savePrefetchRequests(w, pendingReqs_);
}

void
StreamQueueSet::loadState(StateReader &r, const RefillFn &refill)
{
    r.tag(kStreamsTag);
    globalInFlight_ = static_cast<int>(r.i64());
    clock_ = r.u64();
    allocated_ = r.u64();
    if (r.u64() != streams_.size()) {
        r.fail();
        return;
    }
    for (Stream &s : streams_) {
        s.reset();
        s.generation = 0;
        s.active = r.boolean();
        s.confirmed = r.boolean();
        s.exhausted = r.boolean();
        std::uint64_t pending = r.u64();
        // Queues hold reconstruction windows: cap the restored size
        // so a corrupt count cannot balloon memory.
        if (pending > (std::uint64_t{1} << 20)) {
            r.fail();
            return;
        }
        for (std::uint64_t i = 0; i < pending && r.ok(); ++i)
            s.pending.push_back(r.u64());
        if (r.boolean())
            s.refill = refill;
        s.refillState = r.u64();
        s.lru = r.u64();
        s.inFlight = static_cast<int>(r.i64());
        s.generation = r.u32();
        if (!r.ok())
            return;
    }
    loadPrefetchRequests(r, pendingReqs_);
}

} // namespace stems
