/**
 * @file
 * Spatio-Temporal Memory Streaming (STeMS) — the paper's primary
 * contribution (Section 4).
 *
 * Training: the AGT accumulates per-region miss sequences (offset +
 * interleave delta); finished generations train the PST. Misses the
 * PST already predicts are filtered out of the RMOB; spatial triggers
 * and spatial misses are appended with the count of filtered misses
 * as their delta.
 *
 * Streaming: an unpredicted off-chip miss looks up its most recent
 * RMOB occurrence and reconstructs the total predicted miss order
 * (temporal backbone interleaved with PST sequences), which feeds a
 * stream queue; the queue keeps `lookahead` blocks in the SVB and
 * resumes reconstruction when it runs low. Regions whose generation
 * begins with a different pattern index than reconstruction assumed
 * (or that reconstruction never predicted) start spatial-only
 * streams, giving coverage on compulsory regions.
 */

#ifndef STEMS_CORE_STEMS_HH
#define STEMS_CORE_STEMS_HH

#include <memory>

#include "common/arena.hh"
#include "common/lru_table.hh"
#include "core/agt.hh"
#include "core/pst.hh"
#include "core/reconstruction.hh"
#include "core/rmob.hh"
#include "core/stream.hh"
#include "prefetch/prefetcher.hh"

namespace stems {

/** STeMS configuration (paper defaults, Section 4.3). */
struct StemsParams
{
    StemsAgtParams agt;
    PstParams pst;
    std::size_t rmobEntries = 128 * 1024;
    ReconstructionParams reconstruction;
    StreamParams streams;
    /// Streamed value buffer entries.
    std::size_t svbEntries = 64;
    /// Track regions predicted during reconstruction (for the
    /// spatial-only stream check) in a bounded table.
    std::size_t reconIndexEntries = 16384;
};

/**
 * The STeMS prefetch engine.
 */
class StemsPrefetcher : public Prefetcher
{
  public:
    explicit StemsPrefetcher(StemsParams params = {});

    std::string name() const override { return "stems"; }

    std::size_t
    bufferCapacity() const override
    {
        return params_.svbEntries;
    }

    void onL1Access(Addr a, Pc pc, bool l1_hit) override;
    void onL1BlockRemoved(Addr a) override;
    void onOffChipRead(const OffChipRead &ev) override;
    void onPrefetchHit(Addr a, int stream_id) override;
    void onPrefetchDrop(Addr a, int stream_id) override;
    void onPrefetchFiltered(Addr a, int stream_id) override;
    void onInvalidate(Addr a) override;

    void drainRequests(std::vector<PrefetchRequest> &out) override;

    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

    /** Component access for diagnostics and the ablation benches. */
    const PatternSequenceTable &pst() const { return pst_; }
    const RegionMissOrderBuffer &rmob() const { return rmob_; }
    const Reconstructor &reconstructor() const { return recon_; }
    const StreamQueueSet &streams() const { return streams_; }

    /** RMOB appends filtered out as spatially predicted. */
    std::uint64_t filteredMisses() const { return filtered_; }

    /** Spatial-only streams started (compulsory-region coverage). */
    std::uint64_t
    spatialOnlyStreams() const
    {
        return spatialOnlyStreams_;
    }

  private:
    void onGenerationEnd(const StemsGeneration &gen);
    /** The shared refill closure of temporal streams (state-free;
     *  the resume position lives in the stream queue's cursor). */
    StreamQueueSet::RefillFn temporalRefill();
    void startTemporalStream(RegionMissOrderBuffer::Position pos);
    void maybeStartSpatialOnlyStream(const StemsGeneration &gen,
                                     bool trigger_covered);
    void noteReconstructedRegion(Addr region, std::uint64_t index);

    StemsParams params_;
    StemsAgt agt_;
    PatternSequenceTable pst_;
    RegionMissOrderBuffer rmob_;
    Reconstructor recon_;
    StreamQueueSet streams_;

    /** Regions predicted during reconstruction -> assumed PST index. */
    LruTable<std::uint64_t> reconIndex_;

    bool haveLastAppend_ = false;
    std::uint64_t lastAppendSeq_ = 0;
    std::uint64_t filtered_ = 0;
    std::uint64_t spatialOnlyStreams_ = 0;
    std::vector<SpatialElement> lookupScratch_;
    /** Recycled scratch for stream-start address lists (a temporal
     *  or spatial-only stream start builds one, hands it to
     *  StreamQueueSet::allocate by const reference, and returns the
     *  buffer). Steady state: no stream start allocates. */
    ScratchPool<Addr> addrPool_;
};

} // namespace stems

#endif // STEMS_CORE_STEMS_HH
