#include "core/stems.hh"

namespace stems {

namespace {

/** Misses strictly between two sequence numbers, clamped to 8 bits. */
std::uint8_t
gapDelta(std::uint64_t cur_seq, std::uint64_t prev_seq)
{
    if (cur_seq <= prev_seq + 1)
        return 0;
    std::uint64_t gap = cur_seq - prev_seq - 1;
    return static_cast<std::uint8_t>(gap > 255 ? 255 : gap);
}

} // namespace

StemsPrefetcher::StemsPrefetcher(StemsParams params)
    : params_(params),
      agt_(params.agt),
      pst_(params.pst),
      rmob_(params.rmobEntries),
      recon_(rmob_, pst_, params.reconstruction),
      streams_(params.streams),
      reconIndex_(params.reconIndexEntries, 8)
{
    agt_.setEndCallback(
        [this](const StemsGeneration &gen) { onGenerationEnd(gen); });
}

void
StemsPrefetcher::onGenerationEnd(const StemsGeneration &gen)
{
    pst_.train(gen.index, gen.sequence.data(), gen.sequence.size(),
               gen.accessMask);
}

void
StemsPrefetcher::onL1Access(Addr a, Pc pc, bool l1_hit)
{
    (void)pc;
    (void)l1_hit;
    // L1 accesses to an active generation's region keep its access
    // footprint complete: a block satisfied by the caches must not
    // erode the pattern counters (Section 4.3's hysteresis).
    if (StemsGeneration *gen = agt_.find(regionBase(a)))
        gen->accessMask |= 1u << regionOffset(a);
}

void
StemsPrefetcher::noteReconstructedRegion(Addr region,
                                         std::uint64_t index)
{
    reconIndex_.findOrInsert(regionNumber(region)) = index;
}

StreamQueueSet::RefillFn
StemsPrefetcher::temporalRefill()
{
    // The stream's resume position travels in the queue's refill
    // cursor, not in the closure, so a checkpointed queue set can
    // serialize it and reattach this (stateless) closure on restore.
    return [this](RingQueue<Addr> &pending,
                  std::uint64_t &resume_pos) {
        Reconstructor::Window more = recon_.reconstruct(
            resume_pos, [this](Addr region, std::uint64_t index) {
                noteReconstructedRegion(region, index);
            });
        if (!more.valid)
            return;
        resume_pos = more.nextPos;
        for (Addr a : more.sequence)
            pending.push_back(a);
    };
}

void
StemsPrefetcher::startTemporalStream(
    RegionMissOrderBuffer::Position pos)
{
    auto note = [this](Addr region, std::uint64_t index) {
        noteReconstructedRegion(region, index);
    };

    Reconstructor::Window w = recon_.reconstruct(pos, note);
    if (!w.valid || w.sequence.size() <= 1)
        return; // nothing predicted beyond the initiating miss

    // Slot 0 is the current demand miss itself; stream what follows.
    auto initial = addrPool_.acquire();
    initial->assign(w.sequence.begin() + 1, w.sequence.end());

    streams_.allocate(*initial, temporalRefill(),
                      /*confirmed=*/false,
                      /*refill_state=*/w.nextPos);
}

void
StemsPrefetcher::maybeStartSpatialOnlyStream(
    const StemsGeneration &gen, bool trigger_covered)
{
    // Reconstruction already placed this region with the right
    // index: the temporal stream will cover it.
    const std::uint64_t *assumed =
        reconIndex_.find(regionNumber(gen.regionBase));
    if (assumed != nullptr && *assumed == gen.index)
        return;

    // A covered trigger whose region reconstruction expanded under a
    // *different* index falls through to the spatial-only correction
    // below; an unexpanded region (no PST entry at the recorded
    // index) needs the spatial stream regardless of coverage.
    (void)trigger_covered;

    if (!pst_.lookup(gen.index, lookupScratch_) ||
        lookupScratch_.empty()) {
        return;
    }

    auto addrs = addrPool_.acquire();
    addrs->reserve(lookupScratch_.size());
    for (const SpatialElement &el : lookupScratch_) {
        if (el.offset == gen.triggerOffset)
            continue;
        addrs->push_back(
            addrFromRegionOffset(gen.regionBase, el.offset));
    }
    if (addrs->empty())
        return;

    ++spatialOnlyStreams_;
    // Spatial-only streams trust the pattern immediately (the delta
    // information is ignored, Section 4.2).
    streams_.allocate(*addrs, nullptr,
                      /*confirmed=*/true);
}

void
StemsPrefetcher::onOffChipRead(const OffChipRead &ev)
{
    Addr block = blockAlign(ev.addr);
    Addr region = regionBase(block);
    unsigned offset = regionOffset(block);
    std::uint16_t pc16 = pc16Of(ev.pc);

    // Locate the previous occurrence before this miss is recorded.
    auto prev = rmob_.lookup(block);

    // --- Training and RMOB filtering (Section 4.1) ---------------

    auto append_rmob = [&]() {
        unsigned delta =
            haveLastAppend_ ? gapDelta(ev.seq, lastAppendSeq_) : 0;
        rmob_.append(block, pc16, delta);
        lastAppendSeq_ = ev.seq;
        haveLastAppend_ = true;
    };

    StemsGeneration *gen = agt_.find(region);
    bool was_trigger = (gen == nullptr);
    if (was_trigger) {
        StemsGeneration &g = agt_.open(region);
        g.triggerPc16 = pc16;
        g.triggerOffset = static_cast<std::uint8_t>(offset);
        g.index = stemsPatternIndex(pc16, offset);
        g.mask = 1u << offset;
        g.accessMask = 1u << offset;
        g.lastSeq = ev.seq;
        g.predictedMask = pst_.predictedMask(g.index);
        append_rmob(); // triggers are always recorded
    } else {
        if (!gen->accessed(offset)) {
            gen->sequence.push_back(
                {static_cast<std::uint8_t>(offset),
                 gapDelta(ev.seq, gen->lastSeq)});
            gen->mask |= 1u << offset;
        }
        gen->lastSeq = ev.seq;
        if ((gen->predictedMask >> offset) & 1u) {
            // Spatially predicted: filtered out of the RMOB; it
            // contributes to the next entry's delta instead.
            ++filtered_;
        } else {
            append_rmob(); // spatial miss
        }
    }

    // --- Streaming (Section 4.2) ----------------------------------

    if (!ev.covered && !streams_.resync(block) && prev.has_value())
        startTemporalStream(*prev);

    if (was_trigger) {
        // Spatial-only stream check, after any reconstruction this
        // very miss performed has noted its regions.
        if (StemsGeneration *g = agt_.find(region))
            maybeStartSpatialOnlyStream(*g, ev.covered);
    }
}

void
StemsPrefetcher::onL1BlockRemoved(Addr a)
{
    agt_.blockRemoved(a);
}

void
StemsPrefetcher::onInvalidate(Addr a)
{
    agt_.blockRemoved(a);
}

void
StemsPrefetcher::onPrefetchHit(Addr a, int stream_id)
{
    (void)a;
    streams_.onHit(stream_id);
}

void
StemsPrefetcher::onPrefetchDrop(Addr a, int stream_id)
{
    (void)a;
    streams_.onDrop(stream_id);
}

void
StemsPrefetcher::onPrefetchFiltered(Addr a, int stream_id)
{
    (void)a;
    streams_.onFiltered(stream_id);
}

void
StemsPrefetcher::drainRequests(std::vector<PrefetchRequest> &out)
{
    streams_.drainRequests(out);
}

namespace {
constexpr std::uint32_t kStemsTag = stateTag('S', 'T', 'M', 'S');
} // namespace

void
StemsPrefetcher::saveState(StateWriter &w) const
{
    w.tag(kStemsTag);
    agt_.saveState(w);
    pst_.saveState(w);
    rmob_.saveState(w);
    recon_.saveState(w);
    streams_.saveState(w);
    reconIndex_.saveState(
        w, [](StateWriter &sw, const std::uint64_t &v) {
            sw.u64(v);
        });
    w.boolean(haveLastAppend_);
    w.u64(lastAppendSeq_);
    w.u64(filtered_);
    w.u64(spatialOnlyStreams_);
}

void
StemsPrefetcher::loadState(StateReader &r)
{
    r.tag(kStemsTag);
    agt_.loadState(r);
    pst_.loadState(r);
    rmob_.loadState(r);
    recon_.loadState(r);
    streams_.loadState(r, temporalRefill());
    reconIndex_.loadState(r,
                          [](StateReader &sr, std::uint64_t &v) {
                              v = sr.u64();
                          });
    haveLastAppend_ = r.boolean();
    lastAppendSeq_ = r.u64();
    filtered_ = r.u64();
    spatialOnlyStreams_ = r.u64();
}

} // namespace stems

// ---- registry hookup ----

#include "prefetch/engine_registry.hh"
#include "sim/config.hh"

namespace stems {
namespace {

// Bump when STeMS's serialized state or behaviour changes; folded
// into spec digests so old stored results/checkpoints are orphaned.
constexpr std::uint32_t kEngineStateVersion = 1;

const EngineRegistrar registerStems(
    "stems", 30, kEngineStateVersion,
    [](const SystemConfig &sys, const EngineOptions &opt) {
        StemsParams p = sys.stems;
        if (opt.scientific)
            p.streams.lookahead = 12;
        if (opt.lookahead)
            p.streams.lookahead = *opt.lookahead;
        if (opt.bufferEntries)
            p.rmobEntries = *opt.bufferEntries;
        if (opt.streamQueues)
            p.streams.numStreams = *opt.streamQueues;
        if (opt.displacementWindow) {
            p.reconstruction.displacementWindow =
                *opt.displacementWindow;
        }
        return std::make_unique<StemsPrefetcher>(p);
    });

} // namespace
} // namespace stems
