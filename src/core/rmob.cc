#include "core/rmob.hh"

#include "common/state_codec.hh"

#include <algorithm>
#include <utility>
#include <vector>

namespace stems {

RegionMissOrderBuffer::RegionMissOrderBuffer(std::size_t entries)
    : buffer_(entries)
{
    // One index entry per live buffer slot in steady state; reserve
    // up front so the fill phase never rehashes (128K inserts with
    // paper defaults).
    index_.reserve(entries);
}

RegionMissOrderBuffer::Position
RegionMissOrderBuffer::append(Addr block_addr, std::uint16_t pc16,
                              unsigned delta)
{
    RmobEntry e;
    e.addr = blockAlign(block_addr);
    e.pc16 = pc16;
    e.delta = static_cast<std::uint8_t>(delta > 255 ? 255 : delta);
    Position pos = buffer_.append(e);
    index_[e.addr] = pos;
    return pos;
}

std::optional<RmobEntry>
RegionMissOrderBuffer::at(Position pos) const
{
    return buffer_.at(pos);
}

std::optional<RegionMissOrderBuffer::Position>
RegionMissOrderBuffer::lookup(Addr block_addr) const
{
    auto it = index_.find(blockAlign(block_addr));
    if (it == index_.end())
        return std::nullopt;
    auto entry = buffer_.at(it->second);
    if (!entry.has_value() || entry->addr != blockAlign(block_addr))
        return std::nullopt; // overwritten: stale index entry
    return it->second;
}

namespace {
constexpr std::uint32_t kRmobTag = stateTag('R', 'M', 'O', 'B');
} // namespace

void
RegionMissOrderBuffer::saveState(StateWriter &w) const
{
    w.tag(kRmobTag);
    buffer_.saveState(w, [](StateWriter &sw, const RmobEntry &e) {
        sw.u64(e.addr);
        sw.u32(e.pc16);
        sw.u8(e.delta);
    });
    // Key-sorted: blob bytes must depend only on logical state so
    // speculative boundary validation can byte-compare checkpoints.
    std::vector<std::pair<Addr, Position>> entries(index_.begin(),
                                                   index_.end());
    std::sort(entries.begin(), entries.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    w.u64(entries.size());
    for (const auto &kv : entries) {
        w.u64(kv.first);
        w.u64(kv.second);
    }
}

void
RegionMissOrderBuffer::loadState(StateReader &r)
{
    r.tag(kRmobTag);
    buffer_.loadState(r, [](StateReader &sr, RmobEntry &e) {
        e.addr = sr.u64();
        e.pc16 = static_cast<std::uint16_t>(sr.u32());
        e.delta = sr.u8();
    });
    std::uint64_t entries = r.u64();
    index_.clear();
    for (std::uint64_t i = 0; i < entries && r.ok(); ++i) {
        Addr a = r.u64();
        Position p = r.u64();
        index_[a] = p;
    }
}

} // namespace stems
