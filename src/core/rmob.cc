#include "core/rmob.hh"

namespace stems {

RegionMissOrderBuffer::RegionMissOrderBuffer(std::size_t entries)
    : buffer_(entries)
{
}

RegionMissOrderBuffer::Position
RegionMissOrderBuffer::append(Addr block_addr, std::uint16_t pc16,
                              unsigned delta)
{
    RmobEntry e;
    e.addr = blockAlign(block_addr);
    e.pc16 = pc16;
    e.delta = static_cast<std::uint8_t>(delta > 255 ? 255 : delta);
    Position pos = buffer_.append(e);
    index_[e.addr] = pos;
    return pos;
}

std::optional<RmobEntry>
RegionMissOrderBuffer::at(Position pos) const
{
    return buffer_.at(pos);
}

std::optional<RegionMissOrderBuffer::Position>
RegionMissOrderBuffer::lookup(Addr block_addr) const
{
    auto it = index_.find(blockAlign(block_addr));
    if (it == index_.end())
        return std::nullopt;
    auto entry = buffer_.at(it->second);
    if (!entry.has_value() || entry->addr != blockAlign(block_addr))
        return std::nullopt; // overwritten: stale index entry
    return it->second;
}

} // namespace stems
