/**
 * @file
 * Stream queues — paper Sections 4.2 and 4.3.
 *
 * Eight LRU-managed queues hold predicted address sequences. A new
 * stream fetches a single block (confidence ramp); once a prefetched
 * block is consumed the stream is confirmed and keeps `lookahead`
 * blocks in flight. When a queue runs low it asks its refill source
 * (the reconstruction engine, for temporal streams) for more
 * addresses. A demand miss matching the head of a queue
 * re-synchronizes that stream instead of allocating a new one.
 */

#ifndef STEMS_CORE_STREAM_HH
#define STEMS_CORE_STREAM_HH

#include <deque>
#include <functional>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace stems {

/** Stream-engine configuration (paper defaults). */
struct StreamParams
{
    std::size_t numStreams = 8;
    /// Blocks kept in flight per confirmed stream (8 commercial, 12
    /// scientific, Section 4.3).
    unsigned lookahead = 8;
    /// Refill the queue below this many pending addresses.
    std::size_t refillLowWater = 8;
    /// A miss matching one of the first N pending addresses of a
    /// stream re-synchronizes it.
    std::size_t resyncWindow = 4;
    /// Total outstanding prefetches across all streams (must stay
    /// below the SVB capacity; see TmsParams::maxGlobalInFlight).
    unsigned maxGlobalInFlight = 48;
};

/**
 * The set of stream queues feeding the SVB.
 */
class StreamQueueSet
{
  public:
    /**
     * Refill source: append more predicted addresses to the queue;
     * appending nothing marks the stream exhausted.
     */
    using RefillFn = std::function<void(std::deque<Addr> &)>;

    explicit StreamQueueSet(StreamParams params = {});

    /**
     * Allocate a stream (victimizing an idle or the LRU queue).
     *
     * @param initial    predicted addresses, in order.
     * @param refill     refill source (may be null: finite stream).
     * @param confirmed  start past the confidence ramp (spatial-only
     *                   streams trust the pattern immediately).
     * @return the stream id.
     */
    int allocate(std::vector<Addr> initial, RefillFn refill,
                 bool confirmed = false);

    /**
     * Demand miss resync: when the address sits near the head of a
     * queue, skip to it and stream on.
     *
     * @return true when a stream claimed the miss.
     */
    bool resync(Addr a);

    /** A prefetched block of this stream was consumed. */
    void onHit(int stream_id);

    /** A prefetched block of this stream was discarded unused. */
    void onDrop(int stream_id);

    /** A request of this stream was filtered as already resident. */
    void onFiltered(int stream_id);

    /** Move pending prefetch requests into out. */
    void drainRequests(std::vector<PrefetchRequest> &out);

    /** Streams allocated so far (diagnostics). */
    std::uint64_t streamsAllocated() const { return allocated_; }

  private:
    struct Stream
    {
        bool active = false;
        bool confirmed = false;
        bool exhausted = false; ///< refill produced nothing
        std::deque<Addr> pending;
        RefillFn refill;
        std::uint64_t lru = 0;
        int inFlight = 0;
        /** Reallocation tag: SVB entries issued by a previous owner
         *  of this queue must not credit the new one. */
        std::uint32_t generation = 0;
    };

    /** Public stream id: queue index tagged with its generation. */
    static int
    encodeId(std::size_t index, std::uint32_t generation)
    {
        return static_cast<int>((generation << 4) |
                                static_cast<std::uint32_t>(index));
    }

    /** @return the stream, or null when the id is stale/invalid. */
    Stream *decodeId(int stream_id, std::size_t *index_out = nullptr);

    void issueFrom(Stream &s, int id);
    void maybeRefill(Stream &s);

    StreamParams params_;
    int globalInFlight_ = 0;
    std::vector<Stream> streams_;
    std::uint64_t clock_ = 0;
    std::uint64_t allocated_ = 0;
    std::vector<PrefetchRequest> pendingReqs_;
};

} // namespace stems

#endif // STEMS_CORE_STREAM_HH
