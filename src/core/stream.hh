/**
 * @file
 * Stream queues — paper Sections 4.2 and 4.3.
 *
 * Eight LRU-managed queues hold predicted address sequences. A new
 * stream fetches a single block (confidence ramp); once a prefetched
 * block is consumed the stream is confirmed and keeps `lookahead`
 * blocks in flight. When a queue runs low it asks its refill source
 * (the reconstruction engine, for temporal streams) for more
 * addresses. A demand miss matching the head of a queue
 * re-synchronizes that stream instead of allocating a new one.
 */

#ifndef STEMS_CORE_STREAM_HH
#define STEMS_CORE_STREAM_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/circular_buffer.hh"
#include "prefetch/prefetcher.hh"

namespace stems {

/** Stream-engine configuration (paper defaults). */
struct StreamParams
{
    std::size_t numStreams = 8;
    /// Blocks kept in flight per confirmed stream (8 commercial, 12
    /// scientific, Section 4.3).
    unsigned lookahead = 8;
    /// Refill the queue below this many pending addresses.
    std::size_t refillLowWater = 8;
    /// A miss matching one of the first N pending addresses of a
    /// stream re-synchronizes it.
    std::size_t resyncWindow = 4;
    /// Total outstanding prefetches across all streams (must stay
    /// below the SVB capacity; see TmsParams::maxGlobalInFlight).
    unsigned maxGlobalInFlight = 48;
};

/**
 * The set of stream queues feeding the SVB.
 */
class StreamQueueSet
{
  public:
    /**
     * Refill source: append more predicted addresses to the queue;
     * appending nothing marks the stream exhausted.
     *
     * The second argument is the stream's persistent refill cursor
     * (for temporal streams: the RMOB position to resume
     * reconstruction from). It lives in the queue, not in the
     * closure, so the queue set can serialize it at a checkpoint and
     * the owner can reattach a stateless closure on restore. The
     * closure itself must therefore capture only immortal context
     * (the owning engine), never per-stream state.
     */
    using RefillFn =
        std::function<void(RingQueue<Addr> &, std::uint64_t &)>;

    explicit StreamQueueSet(StreamParams params = {});

    /**
     * Allocate a stream (victimizing an idle or the LRU queue).
     *
     * @param initial       predicted addresses, in order.
     * @param refill        refill source (may be null: finite
     *                      stream).
     * @param confirmed     start past the confidence ramp
     *                      (spatial-only streams trust the pattern
     *                      immediately).
     * @param refill_state  initial refill cursor handed to `refill`.
     * @return the stream id.
     */
    int allocate(const std::vector<Addr> &initial, RefillFn refill,
                 bool confirmed = false,
                 std::uint64_t refill_state = 0);

    /**
     * Demand miss resync: when the address sits near the head of a
     * queue, skip to it and stream on.
     *
     * @return true when a stream claimed the miss.
     */
    bool resync(Addr a);

    /** A prefetched block of this stream was consumed. */
    void onHit(int stream_id);

    /** A prefetched block of this stream was discarded unused. */
    void onDrop(int stream_id);

    /** A request of this stream was filtered as already resident. */
    void onFiltered(int stream_id);

    /** Move pending prefetch requests into out. */
    void drainRequests(std::vector<PrefetchRequest> &out);

    /** Streams allocated so far (diagnostics). */
    std::uint64_t streamsAllocated() const { return allocated_; }

    /** Serialize the full queue-set state (checkpointing). A
     *  stream's refill closure is represented by a has-refill flag
     *  plus its cursor; the owner reattaches the closure on load. */
    void saveState(StateWriter &w) const;

    /**
     * Restore state written by saveState.
     *
     * @param refill  closure attached to every restored stream that
     *                had one (all refilling streams of one owner
     *                share the same stateless closure; per-stream
     *                state travels in the serialized cursor).
     */
    void loadState(StateReader &r, const RefillFn &refill);

  private:
    struct Stream
    {
        bool active = false;
        bool confirmed = false;
        bool exhausted = false; ///< refill produced nothing
        /// Flat ring, not std::deque: reset() keeps its storage, so
        /// steady-state stream turnover allocates nothing.
        RingQueue<Addr> pending;
        RefillFn refill;
        /** Persistent cursor passed to `refill` (see RefillFn). */
        std::uint64_t refillState = 0;
        std::uint64_t lru = 0;
        int inFlight = 0;
        /** Reallocation tag: SVB entries issued by a previous owner
         *  of this queue must not credit the new one. */
        std::uint32_t generation = 0;

        /** Back to the idle state, retaining the ring's storage
         *  (the allocation-free turnover path; `*this = Stream{}`
         *  would free it). The generation tag survives so stale ids
         *  keep failing decodeId. */
        void
        reset()
        {
            active = false;
            confirmed = false;
            exhausted = false;
            pending.clear();
            refill = nullptr;
            refillState = 0;
            lru = 0;
            inFlight = 0;
        }
    };

    /** Public stream id: queue index tagged with its generation. */
    static int
    encodeId(std::size_t index, std::uint32_t generation)
    {
        return static_cast<int>((generation << 4) |
                                static_cast<std::uint32_t>(index));
    }

    /** @return the stream, or null when the id is stale/invalid. */
    Stream *decodeId(int stream_id, std::size_t *index_out = nullptr);

    void issueFrom(Stream &s, int id);
    void maybeRefill(Stream &s);

    StreamParams params_;
    int globalInFlight_ = 0;
    std::vector<Stream> streams_;
    std::uint64_t clock_ = 0;
    std::uint64_t allocated_ = 0;
    std::vector<PrefetchRequest> pendingReqs_;
};

} // namespace stems

#endif // STEMS_CORE_STREAM_HH
