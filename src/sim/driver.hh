/**
 * @file
 * Parallel experiment driver: shards (workload x engine) cells of a
 * sweep across a std::thread pool.
 *
 * Compared with the serial ExperimentRunner, the driver
 *  - generates each workload's trace exactly once and shares it
 *    read-only across every engine run over that workload,
 *  - by default *batches* each workload's cold cells: one
 *    BatchSimulator pass traverses the trace once and advances the
 *    baseline, stride and every engine cell together instead of
 *    re-iterating the trace per cell (setBatching(false) restores
 *    the one-task-per-cell dispatch; results are bitwise identical
 *    either way),
 *  - caches the no-prefetch and stride baselines per workload across
 *    run() calls instead of recomputing them per call,
 *  - releases each trace as soon as its last cell completes, bounding
 *    peak memory to the in-flight workloads, and
 *  - when a persistent TraceStore is attached (setStore), consults it
 *    before generating any trace, simulating any baseline, or
 *    simulating any engine cell (results are keyed by trace content
 *    digest + engine-spec digest + config digest), and fills it
 *    afterwards — so the amortization above also survives across
 *    processes: a fully warm-store re-run of a sweep performs zero
 *    workload generations, zero baseline simulations and zero engine
 *    simulations (traceGenerations() / baselineRuns() / engineRuns()
 *    diagnostics pin this), with bitwise-identical results.
 *
 * Determinism: every cell (one PrefetchSimulator over one trace) is
 * independent and seeded only by the trace, and results are merged in
 * the fixed (workload order, engine order) the caller supplied — so a
 * sweep is bitwise identical for any thread count, and identical to a
 * serial ExperimentRunner reference run (sim/driver_test.cc pins
 * both properties).
 */

#ifndef STEMS_SIM_DRIVER_HH
#define STEMS_SIM_DRIVER_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/experiment.hh"
#include "sim/sweep_plan.hh"

namespace stems {

class TraceStore;

/**
 * One engine column of a sweep: a registered engine name plus the
 * per-cell parameter overrides (the knobs the ablation benches
 * sweep) and an optional post-run probe.
 */
struct EngineSpec
{
    EngineSpec() = default;
    EngineSpec(std::string engine_name) // NOLINT: implicit by design
        : engine(std::move(engine_name))
    {
    }
    EngineSpec(std::string engine_name, std::string result_label,
               EngineOptions opts = {})
        : engine(std::move(engine_name)),
          label(std::move(result_label)), options(std::move(opts))
    {
    }

    /// Registered engine name (EngineRegistry).
    std::string engine;
    /// Label reported in EngineResult::engine; defaults to `engine`.
    std::string label;
    /// Parameter overrides applied on top of the SystemConfig. The
    /// driver sets `options.scientific` from the workload class
    /// before instantiation.
    EngineOptions options;
    /// Optional post-run inspection hook, invoked on the worker
    /// thread right after the cell's simulation finishes; stash
    /// engine-specific metrics into EngineResult::extra. Must not
    /// touch shared state.
    std::function<void(const Prefetcher &, EngineResult &)> probe;
    /// Stable identity of `probe` for the persistent engine-result
    /// cache. A probe is opaque code, so a spec that sets one is
    /// only result-cacheable when it also names it here (bump the
    /// id when the probe's meaning changes). Specs without a probe
    /// are always cacheable.
    std::string probeId;

    /** The label reported in results. */
    const std::string &resultLabel() const
    {
        return label.empty() ? engine : label;
    }
};

/** Convenience: plain engine names -> specs with default options. */
std::vector<EngineSpec>
engineSpecs(const std::vector<std::string> &names);

/** The engine columns a plan describes, as runnable specs. */
std::vector<EngineSpec> planEngineSpecs(const SweepPlan &plan);

/**
 * The parallel sweep driver. One instance owns a baseline cache tied
 * to its ExperimentConfig; reuse the instance across calls to
 * amortize the baselines.
 */
class ExperimentDriver
{
  public:
    /**
     * @param config  experiment knobs (system, trace length, seed).
     * @param jobs    worker threads; 0 means hardware concurrency.
     */
    explicit ExperimentDriver(ExperimentConfig config,
                              unsigned jobs = 0);

    /** A driver awaiting a plan: Table 1 system, default knobs.
     *  Attach a store (setStore) and call run(plan). */
    ExperimentDriver() : ExperimentDriver(ExperimentConfig{}) {}

    /**
     * THE entry point: execute a declarative SweepPlan — workloads x
     * engines under the plan's trace, warmup and execution-policy
     * knobs — and return results merged in the plan's (workload,
     * engine) order. Equivalent to applyPlan(plan) followed by
     * run(plan.workloads, planEngineSpecs(plan)); bitwise identical
     * for any jobs/batch/segments/speculate policy.
     */
    std::vector<WorkloadResult> run(const SweepPlan &plan);

    /**
     * Plan-driven sweep with caller-built engine columns: for probe
     * and ablation sweeps whose EngineSpecs carry state a plan
     * cannot serialize (probes). The plan still supplies workloads,
     * config and execution policy; `engines` replaces the plan's
     * engine list.
     */
    std::vector<WorkloadResult>
    run(const SweepPlan &plan,
        const std::vector<EngineSpec> &engines);

    /**
     * Adopt a plan's configuration without running: trace knobs
     * (records/seed/warmup/timing), jobs, and the whole execution
     * policy, refreshed store digests included. The baseline cache
     * is dropped when the trace/warmup knobs change (cached
     * baselines would describe the old configuration). Used by
     * run(plan) and by harnesses that pair a plan with forEachTrace
     * or runWorkload.
     */
    void applyPlan(const SweepPlan &plan);

    /** Sweep (workloads x engines) by registered workload name.
     *  Unknown workload names are skipped (no result row). */
    std::vector<WorkloadResult>
    run(const std::vector<std::string> &workloads,
        const std::vector<EngineSpec> &engines);

    /**
     * Distributed-segment entry point (net/units.hh): advance one
     * cell column of `workload` across trace records
     * [seg_begin, seg_end) only, producing no results — its sole
     * deliverable is the checkpoints it persists, one at every
     * schedule boundary it crosses and one at seg_end, under
     * exactly the keys a continuous run writes. `engine` selects
     * the column: null is the baseline column (the no-prefetch
     * lane plus, under timing, the stride reference lane), non-null
     * a single engine lane. Each lane first resumes from the
     * newest trusted stored checkpoint at or before seg_end — a
     * segment whose predecessor committed starts at seg_begin;
     * with a cold store it recomputes from record 0 (slower, never
     * wrong). Requires an attached usable store.
     * @return false with *error set on store/workload/engine
     *         lookup failures.
     */
    bool runCellSegment(const std::string &workload,
                        const EngineSpec *engine,
                        std::size_t seg_begin, std::size_t seg_end,
                        std::string *error = nullptr);

    /** Sweep every registered workload (figure order). */
    std::vector<WorkloadResult>
    runSuite(const std::vector<EngineSpec> &engines);

    /** Run one externally-owned workload (e.g. a custom subclass not
     *  in the registry); engine cells still run in parallel. The
     *  baseline cache is bypassed: an external instance's behaviour
     *  is not determined by its name, so name-keyed caching could
     *  cross-contaminate differently-parameterized instances.
     *
     *  When the caller *can* vouch for the trace's identity — a
     *  FixedTraceWorkload replaying a captured trace — pass its
     *  content digest (traceDigest()) and an attached store will
     *  cache the baselines under it, exactly as for store-replayed
     *  registry traces. */
    WorkloadResult
    runWorkload(const Workload &workload,
                const std::vector<EngineSpec> &engines,
                std::optional<std::uint64_t> trace_digest =
                    std::nullopt);

    /**
     * Parallel map over workload traces (analysis benches): each
     * registered workload's trace is generated in the pool and handed
     * to `fn` with its position in `workloads`. `fn` runs on worker
     * threads, once per workload; writes must stay within the slot
     * `index` addresses.
     */
    void forEachTrace(
        const std::vector<std::string> &workloads,
        const std::function<void(std::size_t index, const Workload &,
                                 const Trace &)> &fn);

    /** The configuration in use. */
    const ExperimentConfig &config() const { return config_; }

    /** Resolved worker-thread count. */
    unsigned jobs() const { return jobs_; }

    /** The jobs-resolution rule: 0 means hardware concurrency. */
    static unsigned resolveJobs(unsigned jobs);

    /**
     * Attach a persistent trace/baseline store. Registry-workload
     * sweeps and forEachTrace then load traces and baselines from
     * disk when present and persist what they compute. Pass null to
     * detach.
     */
    void setStore(std::shared_ptr<TraceStore> store);

    /** The attached store (null when none). */
    const std::shared_ptr<TraceStore> &store() const
    {
        return store_;
    }

    // ------------------------------------------------------------
    // Execution-policy setters. DEPRECATED shims: new code should
    // describe the whole sweep as a SweepPlan and call run(plan) /
    // applyPlan(plan) instead of mutating the driver field by
    // field — a plan can be serialized, diffed, digested and
    // shipped to a worker; a setter chain cannot. Each setter
    // remains exactly equivalent to the matching plan field.
    // ------------------------------------------------------------

    /**
     * Enable/disable batched execution (default: enabled). Batched,
     * each workload's schedulable cells run as one task that
     * traverses the trace once through a BatchSimulator; unbatched,
     * every cell is its own task re-iterating the shared trace.
     * Purely an execution-strategy knob: results are bitwise
     * identical either way (tests/driver_test.cc pins this), so it
     * does not participate in any cache key.
     */
    void setBatching(bool on) { batching_ = on; }

    /** Whether batched execution is enabled. */
    bool batching() const { return batching_; }

    /**
     * Segmented execution: cut every cell's trace into `k` segments
     * and persist a simulator checkpoint at each segment boundary
     * (and at the trace end). Requires an attached store; 1 (the
     * default) disables segmentation. Each cold cell first resumes
     * from the newest stored checkpoint its trace prefix matches, so
     * re-runs — including runs extended to more --records over the
     * same workload/seed — only simulate the unseen suffix. Like the
     * batch toggle this is pure execution strategy: results are
     * bitwise identical to a continuous run (tests/checkpoint_test.cc
     * pins this per engine across {jobs} x {batching}), so it does
     * not participate in any result-cache key.
     */
    void setSegments(unsigned k) { segments_ = k == 0 ? 1 : k; }

    /** Configured segment count (1 = off). */
    unsigned segments() const { return segments_; }

    /**
     * Alternative checkpoint granularity: a boundary every `records`
     * records (plus the trace end), independent of the trace length.
     * Takes precedence over setSegments when nonzero. Stable
     * absolute boundaries are what let an extended-records re-run
     * find the shorter run's checkpoints.
     */
    void setCheckpointEvery(std::size_t records)
    {
        checkpointEvery_ = records;
    }

    /** Configured checkpoint interval (0 = off). */
    std::size_t checkpointEvery() const { return checkpointEvery_; }

    /**
     * Progress heartbeats for long sweeps: while a sweep's dispatch
     * is in flight, a monitor thread logs one line every `seconds` —
     * cells done/total and the record-step rate since the previous
     * beat — to stderr (via logInfo). 0 (the default) disables.
     * Purely observational: heartbeats never touch stdout, and
     * results are bitwise identical with them on or off.
     */
    void setHeartbeatSeconds(double seconds)
    {
        heartbeatSeconds_ = seconds < 0 ? 0.0 : seconds;
    }

    /** Configured heartbeat interval (0 = off). */
    double heartbeatSeconds() const { return heartbeatSeconds_; }

    /**
     * Speculative segment-parallel cold execution (requires an
     * attached store). A cold cell with stored interior checkpoints
     * — from a shorter, stale, different-seed, or cross-warmup run —
     * splits its trace at those boundaries and runs every segment as
     * a parallel lane: segment k+1 starts from the stored blob while
     * segment k re-executes, and each boundary is validated by
     * byte-comparing the live re-encoded state against the seed
     * (sim/speculate.hh). Stored state is *distrusted* by design:
     * unlike the trusted prefix-digest resume of segmented runs,
     * speculation re-executes every record, trading CPU for
     * wall-clock (all segments advance concurrently; a mispredicted
     * boundary rolls back to sequential re-execution of the
     * suffix). Results are bitwise identical to a continuous run in
     * both the all-commit and mispredict paths
     * (tests/speculation_test.cc pins this), so like batching it
     * joins no cache key. Only boundary states proven correct are
     * ever written back to the store.
     */
    void setSpeculate(bool on) { speculate_ = on; }

    /** Whether speculative execution is enabled. */
    bool speculate() const { return speculate_; }

    /** Baseline simulations actually executed (cache diagnostics). */
    std::uint64_t baselineRuns() const { return baselineRuns_; }

    /** Engine-cell simulations actually executed, as opposed to
     *  served from the store's engine-result cache (store
     *  diagnostics; a fully warm sweep re-run reports 0). Counts
     *  batched and unbatched executions alike — the split between
     *  the two is batchedRuns(). */
    std::uint64_t engineRuns() const { return engineRuns_; }

    /** Cell simulations (baseline, stride and engine cells alike)
     *  executed inside batched trace passes. 0 when batching is
     *  disabled; on a fully warm sweep 0 either way (warm cells are
     *  merged from the store and join no batch). */
    std::uint64_t batchedRuns() const { return batchedRuns_; }

    /** Workload traces actually generated, as opposed to replayed
     *  from the store (store diagnostics). */
    std::uint64_t traceGenerations() const
    {
        return traceGenerations_.load();
    }

    /** Cell simulations that resumed from a stored checkpoint
     *  instead of starting at record 0 (segmented execution). */
    std::uint64_t resumedRuns() const { return resumedRuns_.load(); }

    /** Record-steps skipped by checkpoint resumes, summed over all
     *  resumed cells: a fully warm-prefix re-run re-simulates only
     *  the suffix, so this equals (resume index x resumed cells) and
     *  the redundant re-simulated prefix is 0 records. */
    std::uint64_t
    resumedRecordsSkipped() const
    {
        return resumedRecordsSkipped_.load();
    }

    /** Checkpoints persisted to the store this driver's runs wrote. */
    std::uint64_t
    checkpointsWritten() const
    {
        return checkpointsWritten_.load();
    }

    /** Cells executed speculatively (segment-parallel with boundary
     *  validation) instead of through the normal cold path. */
    std::uint64_t
    speculativeCells() const
    {
        return speculativeCells_.load();
    }

    /** Speculative segment boundaries that validated (live state
     *  byte-matched the stored seed) and committed. */
    std::uint64_t
    speculativeCommits() const
    {
        return speculativeCommits_.load();
    }

    /** Speculative boundary mismatches: each one rolled back every
     *  later segment and re-executed the suffix sequentially from
     *  validated state (output identity preserved). */
    std::uint64_t
    speculativeMispredicts() const
    {
        return speculativeMispredicts_.load();
    }

    /** Drop the per-workload baseline cache. */
    void clearBaselineCache();

  private:
    struct Baseline
    {
        std::uint64_t misses = 0;
        double cycles = 0.0; ///< no-prefetch cycles (timing runs)
        double strideCycles = 0.0;
        double strideIpc = 0.0;
        bool haveStride = false;
    };

    /** @param cacheable  workloads came from the registry, so the
     *                     name-keyed baseline cache and trace-replay
     *                     store paths apply.
     *  @param external_digest  caller-vouched trace content digest
     *                     for the non-cacheable single-workload path;
     *                     keys the stored baselines. */
    std::vector<WorkloadResult>
    runCells(const std::vector<const Workload *> &workloads,
             const std::vector<EngineSpec> &engines, bool cacheable,
             std::optional<std::uint64_t> external_digest =
                 std::nullopt);

    void dispatch(std::size_t num_tasks,
                  const std::function<void(std::size_t)> &task);

    /** Load-or-generate one registry workload's trace, maintaining
     *  the generation counter and the store. `digest_out` (optional)
     *  receives the content digest when the store provided one. */
    Trace materializeTrace(const Workload &workload,
                           std::optional<std::uint64_t> *digest_out);

    ExperimentConfig config_;
    unsigned jobs_;

    std::mutex cacheMutex_;
    std::unordered_map<std::string, Baseline> baselineCache_;
    std::uint64_t baselineRuns_ = 0;

    std::shared_ptr<TraceStore> store_;
    /// Digest of (system config, warmup) keying stored baselines.
    std::uint64_t configDigest_ = 0;
    /// Digest keying stored engine results: the baseline digest
    /// inputs plus the timing mode and the result-format version
    /// (functional and timed runs are distinct entries).
    std::uint64_t resultConfigDigest_ = 0;
    /// Digest keying stored checkpoints: system + timing + blob
    /// version. Warmup is deliberately excluded — it joins each
    /// checkpoint's *state* digest instead, as "pending" while the
    /// boundary lies beyond the checkpoint index, so pre-warmup
    /// checkpoints are shareable across different warmup settings.
    std::uint64_t ckptConfigDigest_ = 0;
    std::uint64_t engineRuns_ = 0;
    std::uint64_t batchedRuns_ = 0;
    bool batching_ = true;
    bool speculate_ = false;
    unsigned segments_ = 1;
    std::size_t checkpointEvery_ = 0;
    double heartbeatSeconds_ = 0.0;
    std::atomic<std::uint64_t> traceGenerations_{0};
    std::atomic<std::uint64_t> resumedRuns_{0};
    std::atomic<std::uint64_t> resumedRecordsSkipped_{0};
    std::atomic<std::uint64_t> checkpointsWritten_{0};
    std::atomic<std::uint64_t> speculativeCells_{0};
    std::atomic<std::uint64_t> speculativeCommits_{0};
    std::atomic<std::uint64_t> speculativeMispredicts_{0};
};

} // namespace stems

#endif // STEMS_SIM_DRIVER_HH
