#include "sim/driver.hh"

#include <atomic>
#include <exception>
#include <thread>

#include "common/stats.hh"
#include "prefetch/engine_registry.hh"
#include "workloads/registry.hh"

namespace stems {

namespace {

/** Per-workload shard state shared by that workload's cells. */
struct WorkloadShard
{
    const Workload *workload = nullptr;
    bool scientific = false;

    /// Trace generated once (first cell to touch it) and shared
    /// read-only; released when the last cell finishes.
    std::once_flag traceOnce;
    Trace trace;
    std::size_t warmup = 0;
    std::atomic<std::size_t> remainingCells{0};

    bool needBaseline = false;
    bool needStride = false;
    /// Baseline metrics (from the cache, or filled by the baseline /
    /// stride cells; those cells write disjoint fields).
    std::uint64_t baselineMisses = 0;
    double baselineCycles = 0.0;
    double strideCycles = 0.0;
    double strideIpc = 0.0;

    std::vector<SimStats> engineStats;
    std::vector<std::map<std::string, double>> engineExtra;
};

/** One unit of work: a single simulation over one shard's trace. */
struct Cell
{
    enum Kind
    {
        kBaseline,
        kStride,
        kEngine,
    };

    std::size_t shard = 0;
    Kind kind = kEngine;
    std::size_t spec = 0; ///< engine index (kEngine only)
};

} // namespace

std::vector<EngineSpec>
engineSpecs(const std::vector<std::string> &names)
{
    std::vector<EngineSpec> specs;
    specs.reserve(names.size());
    for (const std::string &name : names)
        specs.emplace_back(name);
    return specs;
}

unsigned
ExperimentDriver::resolveJobs(unsigned jobs)
{
    return jobs != 0
               ? jobs
               : std::max(1u, std::thread::hardware_concurrency());
}

ExperimentDriver::ExperimentDriver(ExperimentConfig config,
                                   unsigned jobs)
    : config_(std::move(config)), jobs_(resolveJobs(jobs))
{
}

void
ExperimentDriver::clearBaselineCache()
{
    std::lock_guard<std::mutex> lock(cacheMutex_);
    baselineCache_.clear();
}

void
ExperimentDriver::dispatch(std::size_t num_tasks,
                           const std::function<void(std::size_t)> &task)
{
    std::size_t workers =
        std::min<std::size_t>(jobs_, num_tasks);
    if (workers <= 1) {
        for (std::size_t i = 0; i < num_tasks; ++i)
            task(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex error_mutex;
    std::exception_ptr error;

    auto body = [&] {
        while (!failed.load(std::memory_order_relaxed)) {
            std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= num_tasks)
                break;
            try {
                task(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!error)
                    error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t)
        pool.emplace_back(body);
    for (std::thread &t : pool)
        t.join();
    if (error)
        std::rethrow_exception(error);
}

std::vector<WorkloadResult>
ExperimentDriver::runCells(
    const std::vector<const Workload *> &workloads,
    const std::vector<EngineSpec> &engines, bool cacheable)
{
    const EngineRegistry &registry = EngineRegistry::instance();
    std::vector<bool> spec_known(engines.size());
    for (std::size_t j = 0; j < engines.size(); ++j)
        spec_known[j] = registry.contains(engines[j].engine);

    // ---- schedule ----
    std::vector<std::unique_ptr<WorkloadShard>> shards;
    std::vector<Cell> cells;
    shards.reserve(workloads.size());
    std::size_t baseline_cells = 0;
    for (const Workload *w : workloads) {
        auto shard = std::make_unique<WorkloadShard>();
        shard->workload = w;
        shard->scientific =
            w->workloadClass() == WorkloadClass::kScientific;
        shard->engineStats.resize(engines.size());
        shard->engineExtra.resize(engines.size());

        shard->needBaseline = true;
        shard->needStride = config_.enableTiming;
        if (cacheable) {
            std::lock_guard<std::mutex> lock(cacheMutex_);
            auto it = baselineCache_.find(w->name());
            if (it != baselineCache_.end()) {
                const Baseline &b = it->second;
                // A functional-only cache entry has valid misses but
                // no cycle accounting; a timing run must redo it.
                bool timed_enough =
                    !config_.enableTiming || b.cycles > 0.0;
                if (timed_enough) {
                    shard->needBaseline = false;
                    shard->baselineMisses = b.misses;
                    shard->baselineCycles = b.cycles;
                    if (b.haveStride) {
                        shard->needStride = false;
                        shard->strideCycles = b.strideCycles;
                        shard->strideIpc = b.strideIpc;
                    }
                }
            }
        }

        std::size_t shard_index = shards.size();
        std::size_t count = 0;
        if (shard->needBaseline) {
            cells.push_back({shard_index, Cell::kBaseline, 0});
            ++count;
            ++baseline_cells;
        }
        if (shard->needStride) {
            cells.push_back({shard_index, Cell::kStride, 0});
            ++count;
            ++baseline_cells;
        }
        for (std::size_t j = 0; j < engines.size(); ++j) {
            if (!spec_known[j])
                continue;
            cells.push_back({shard_index, Cell::kEngine, j});
            ++count;
        }
        shard->remainingCells.store(count);
        shards.push_back(std::move(shard));
    }

    // ---- execute ----
    SimParams sim_params;
    sim_params.hierarchy = config_.system.hierarchy;
    sim_params.enableTiming = config_.enableTiming;
    sim_params.timing = config_.system.timing;

    auto run_cell = [&](std::size_t index) {
        const Cell &cell = cells[index];
        WorkloadShard &shard = *shards[cell.shard];
        std::call_once(shard.traceOnce, [&] {
            shard.trace = shard.workload->generate(
                config_.seed, config_.traceRecords);
            shard.warmup = static_cast<std::size_t>(
                shard.trace.size() * config_.warmupFraction);
        });

        switch (cell.kind) {
        case Cell::kBaseline: {
            PrefetchSimulator sim(sim_params, nullptr);
            sim.run(shard.trace, shard.warmup);
            shard.baselineMisses = sim.stats().offChipReads;
            shard.baselineCycles = sim.stats().cycles;
            break;
        }
        case Cell::kStride: {
            EngineOptions options;
            options.scientific = shard.scientific;
            auto stride = registry.make("stride", config_.system,
                                        options);
            PrefetchSimulator sim(sim_params, stride.get());
            sim.run(shard.trace, shard.warmup);
            shard.strideCycles = sim.stats().cycles;
            shard.strideIpc = sim.stats().ipc();
            break;
        }
        case Cell::kEngine: {
            const EngineSpec &spec = engines[cell.spec];
            EngineOptions options = spec.options;
            options.scientific =
                options.scientific || shard.scientific;
            auto engine = registry.make(spec.engine, config_.system,
                                        options);
            PrefetchSimulator sim(sim_params, engine.get());
            sim.run(shard.trace, shard.warmup);
            shard.engineStats[cell.spec] = sim.stats();
            if (spec.probe) {
                EngineResult scratch;
                scratch.engine = spec.resultLabel();
                scratch.stats = sim.stats();
                spec.probe(*engine, scratch);
                shard.engineExtra[cell.spec] =
                    std::move(scratch.extra);
            }
            break;
        }
        }

        if (shard.remainingCells.fetch_sub(1) == 1) {
            // Last cell of this workload: release the trace early so
            // peak memory tracks in-flight workloads, not the suite.
            Trace().swap(shard.trace);
        }
    };
    dispatch(cells.size(), run_cell);

    // ---- update the baseline cache ----
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        baselineRuns_ += baseline_cells;
        for (const auto &shard : shards) {
            if (!cacheable ||
                (!shard->needBaseline && !shard->needStride))
                continue;
            Baseline &b = baselineCache_[shard->workload->name()];
            b.misses = shard->baselineMisses;
            b.cycles = shard->baselineCycles;
            if (config_.enableTiming) {
                b.strideCycles = shard->strideCycles;
                b.strideIpc = shard->strideIpc;
                b.haveStride = true;
            }
        }
    }

    // ---- merge, in fixed (workload, engine) order ----
    std::vector<WorkloadResult> results;
    results.reserve(shards.size());
    for (const auto &shard : shards) {
        WorkloadResult r;
        r.workload = shard->workload->name();
        r.workloadClass = shard->workload->workloadClass();
        r.baselineMisses = shard->baselineMisses;
        r.baselineCycles = shard->baselineCycles;
        r.strideCycles = shard->strideCycles;
        r.baselineIpc = shard->strideIpc;
        for (std::size_t j = 0; j < engines.size(); ++j) {
            if (!spec_known[j])
                continue;
            EngineResult er;
            er.engine = engines[j].resultLabel();
            er.stats = shard->engineStats[j];
            er.coverage =
                ratio(er.stats.covered(), r.baselineMisses);
            er.uncovered =
                ratio(er.stats.offChipReads, r.baselineMisses);
            er.overprediction =
                ratio(er.stats.overpredictions, r.baselineMisses);
            if (config_.enableTiming && er.stats.cycles > 0)
                er.speedup = r.strideCycles / er.stats.cycles;
            er.extra = std::move(shard->engineExtra[j]);
            r.engines.push_back(std::move(er));
        }
        results.push_back(std::move(r));
    }
    return results;
}

std::vector<WorkloadResult>
ExperimentDriver::run(const std::vector<std::string> &workloads,
                      const std::vector<EngineSpec> &engines)
{
    std::vector<std::unique_ptr<Workload>> owned;
    std::vector<const Workload *> ptrs;
    for (const std::string &name : workloads) {
        auto w = WorkloadRegistry::instance().make(name);
        if (!w)
            continue;
        ptrs.push_back(w.get());
        owned.push_back(std::move(w));
    }
    return runCells(ptrs, engines, /*cacheable=*/true);
}

std::vector<WorkloadResult>
ExperimentDriver::runSuite(const std::vector<EngineSpec> &engines)
{
    return run(WorkloadRegistry::instance().names(), engines);
}

WorkloadResult
ExperimentDriver::runWorkload(const Workload &workload,
                              const std::vector<EngineSpec> &engines)
{
    auto results =
        runCells({&workload}, engines, /*cacheable=*/false);
    return std::move(results.at(0));
}

void
ExperimentDriver::forEachTrace(
    const std::vector<std::string> &workloads,
    const std::function<void(std::size_t, const Workload &,
                             const Trace &)> &fn)
{
    std::vector<std::unique_ptr<Workload>> owned;
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        auto w = WorkloadRegistry::instance().make(workloads[i]);
        if (!w)
            continue;
        owned.push_back(std::move(w));
        indices.push_back(i);
    }
    dispatch(owned.size(), [&](std::size_t k) {
        const Workload &w = *owned[k];
        Trace trace =
            w.generate(config_.seed, config_.traceRecords);
        fn(indices[k], w, trace);
    });
}

} // namespace stems
