#include "sim/driver.hh"

#include <atomic>
#include <exception>
#include <iomanip>
#include <optional>
#include <sstream>
#include <thread>

#include "common/stats.hh"
#include "prefetch/engine_registry.hh"
#include "sim/batch_sim.hh"
#include "store/trace_store.hh"
#include "trace/trace_io.hh"
#include "workloads/registry.hh"

namespace stems {

namespace {

/** Per-workload shard state shared by that workload's cells. */
struct WorkloadShard
{
    const Workload *workload = nullptr;
    bool scientific = false;

    /// Trace generated once (first cell to touch it) and shared
    /// read-only; released when the last cell finishes.
    std::once_flag traceOnce;
    Trace trace;
    std::size_t warmup = 0;
    /// Record count of the materialized trace (outlives the early
    /// trace release; informational, for result sidecars).
    std::size_t traceSize = 0;
    std::atomic<std::size_t> remainingCells{0};

    bool needBaseline = false;
    bool needStride = false;
    /// Baseline metrics (from the cache, or filled by the baseline /
    /// stride cells; those cells write disjoint fields).
    std::uint64_t baselineMisses = 0;
    double baselineCycles = 0.0;
    double strideCycles = 0.0;
    double strideIpc = 0.0;

    /// Persistent-store state: registry workloads with an attached
    /// store replay traces from disk and key stored baselines by the
    /// trace's content digest.
    bool storeEligible = false;
    std::uint64_t traceDigest = 0;
    bool digestValid = false;

    std::vector<SimStats> engineStats;
    std::vector<std::map<std::string, double>> engineExtra;
    /// Per engine: cell served from the store's result cache, so it
    /// was never scheduled (and must not be re-persisted).
    std::vector<std::uint8_t> engineFromCache;
};

/** A spec that carries an anonymous probe cannot be result-cached:
 *  the probe's output is part of the result but its code has no
 *  stable identity. Naming the probe (probeId) opts back in. */
bool
specResultCacheable(const EngineSpec &spec)
{
    return !spec.probe || !spec.probeId.empty();
}

/** Digest of everything (besides trace + system config) that
 *  determines an engine cell's result. */
std::uint64_t
specResultDigest(const EngineSpec &spec, bool scientific)
{
    EngineOptions effective = spec.options;
    effective.scientific = effective.scientific || scientific;
    return storeDigest(describeEngineSpec(spec.engine, effective,
                                          spec.probeId));
}

/** One unit of work: a single simulation over one shard's trace. */
struct Cell
{
    enum Kind
    {
        kBaseline,
        kStride,
        kEngine,
    };

    std::size_t shard = 0;
    Kind kind = kEngine;
    std::size_t spec = 0; ///< engine index (kEngine only)
};

} // namespace

std::vector<EngineSpec>
engineSpecs(const std::vector<std::string> &names)
{
    std::vector<EngineSpec> specs;
    specs.reserve(names.size());
    for (const std::string &name : names)
        specs.emplace_back(name);
    return specs;
}

unsigned
ExperimentDriver::resolveJobs(unsigned jobs)
{
    return jobs != 0
               ? jobs
               : std::max(1u, std::thread::hardware_concurrency());
}

ExperimentDriver::ExperimentDriver(ExperimentConfig config,
                                   unsigned jobs)
    : config_(std::move(config)), jobs_(resolveJobs(jobs))
{
}

void
ExperimentDriver::clearBaselineCache()
{
    std::lock_guard<std::mutex> lock(cacheMutex_);
    baselineCache_.clear();
}

void
ExperimentDriver::setStore(std::shared_ptr<TraceStore> store)
{
    store_ = std::move(store);
    if (store_) {
        // Everything besides the trace itself that determines the
        // baseline metrics: the modelled system and the warmup split.
        // (Trace length and seed are part of the trace identity.)
        std::ostringstream os;
        os << describeSystem(config_.system) << "\nwarmup="
           << std::setprecision(17) << config_.warmupFraction;
        configDigest_ = storeDigest(os.str());
        // Engine results additionally depend on the timing mode (a
        // functional run's stats carry no cycles) and their on-disk
        // format version; baselines handle both via in-entry flags.
        std::ostringstream ros;
        ros << os.str() << "\ntiming=" << config_.enableTiming
            << "\nresultv=1";
        resultConfigDigest_ = storeDigest(ros.str());
    }
}

Trace
ExperimentDriver::materializeTrace(
    const Workload &workload,
    std::optional<std::uint64_t> *digest_out)
{
    if (store_) {
        TraceKey key{workload.name(), config_.traceRecords,
                     config_.seed};
        Trace trace;
        if (store_->loadTrace(key, trace)) {
            // Hash the records actually loaded rather than trusting
            // (and re-reading) the meta sidecar: baselines stay
            // keyed to the true content even if a meta file is
            // stale, at no extra I/O.
            if (digest_out)
                *digest_out = traceDigest(trace);
            return trace;
        }
        trace = workload.generate(config_.seed,
                                  config_.traceRecords);
        traceGenerations_.fetch_add(1);
        if (auto info = store_->putTrace(key, trace)) {
            if (digest_out)
                *digest_out = info->digest;
        }
        return trace;
    }
    traceGenerations_.fetch_add(1);
    return workload.generate(config_.seed, config_.traceRecords);
}

void
ExperimentDriver::dispatch(std::size_t num_tasks,
                           const std::function<void(std::size_t)> &task)
{
    std::size_t workers =
        std::min<std::size_t>(jobs_, num_tasks);
    if (workers <= 1) {
        for (std::size_t i = 0; i < num_tasks; ++i)
            task(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex error_mutex;
    std::exception_ptr error;

    auto body = [&] {
        while (!failed.load(std::memory_order_relaxed)) {
            std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= num_tasks)
                break;
            try {
                task(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!error)
                    error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t)
        pool.emplace_back(body);
    for (std::thread &t : pool)
        t.join();
    if (error)
        std::rethrow_exception(error);
}

std::vector<WorkloadResult>
ExperimentDriver::runCells(
    const std::vector<const Workload *> &workloads,
    const std::vector<EngineSpec> &engines, bool cacheable,
    std::optional<std::uint64_t> external_digest)
{
    const EngineRegistry &registry = EngineRegistry::instance();
    std::vector<bool> spec_known(engines.size());
    for (std::size_t j = 0; j < engines.size(); ++j)
        spec_known[j] = registry.contains(engines[j].engine);

    // ---- schedule ----
    std::vector<std::unique_ptr<WorkloadShard>> shards;
    std::vector<Cell> cells;
    shards.reserve(workloads.size());
    std::size_t baseline_cells = 0;
    std::size_t engine_cells = 0;
    for (const Workload *w : workloads) {
        auto shard = std::make_unique<WorkloadShard>();
        shard->workload = w;
        shard->scientific =
            w->workloadClass() == WorkloadClass::kScientific;
        shard->engineStats.resize(engines.size());
        shard->engineExtra.resize(engines.size());
        shard->engineFromCache.assign(engines.size(), 0);

        shard->needBaseline = true;
        shard->needStride = config_.enableTiming;
        shard->storeEligible = cacheable && store_ != nullptr;
        if (shard->storeEligible) {
            // Metadata-only probe: learn the trace's content digest
            // (the stored-baseline key) without decoding any records.
            if (auto info = store_->findTrace(
                    {w->name(), config_.traceRecords,
                     config_.seed})) {
                shard->traceDigest = info->digest;
                shard->digestValid = true;
            }
        } else if (store_ && external_digest) {
            // External workload with a caller-vouched trace digest
            // (a captured/imported trace): stored baselines apply
            // even though the name-keyed trace replay does not.
            shard->traceDigest = *external_digest;
            shard->digestValid = true;
        }
        if (cacheable) {
            std::lock_guard<std::mutex> lock(cacheMutex_);
            auto it = baselineCache_.find(w->name());
            if (it != baselineCache_.end()) {
                const Baseline &b = it->second;
                // A functional-only cache entry has valid misses but
                // no cycle accounting; a timing run must redo it.
                bool timed_enough =
                    !config_.enableTiming || b.cycles > 0.0;
                if (timed_enough) {
                    shard->needBaseline = false;
                    shard->baselineMisses = b.misses;
                    shard->baselineCycles = b.cycles;
                    if (b.haveStride) {
                        shard->needStride = false;
                        shard->strideCycles = b.strideCycles;
                        shard->strideIpc = b.strideIpc;
                    }
                }
            }
        }
        if ((shard->needBaseline || shard->needStride) &&
            shard->digestValid) {
            // Second-level lookup: the persistent store, keyed by
            // trace digest + system-config digest.
            if (auto b = store_->loadBaseline(shard->traceDigest,
                                              configDigest_)) {
                bool timed_enough =
                    !config_.enableTiming || b->haveTiming;
                if (timed_enough) {
                    if (shard->needBaseline) {
                        shard->needBaseline = false;
                        shard->baselineMisses = b->misses;
                        shard->baselineCycles = b->cycles;
                    }
                    if (shard->needStride && b->haveStride) {
                        shard->needStride = false;
                        shard->strideCycles = b->strideCycles;
                        shard->strideIpc = b->strideIpc;
                    }
                }
                if (cacheable && !shard->needBaseline &&
                    !shard->needStride) {
                    // Mirror into the in-memory cache so later
                    // run() calls skip the disk probe.
                    std::lock_guard<std::mutex> lock(cacheMutex_);
                    Baseline &mb = baselineCache_[w->name()];
                    mb.misses = shard->baselineMisses;
                    mb.cycles = shard->baselineCycles;
                    if (config_.enableTiming) {
                        mb.strideCycles = shard->strideCycles;
                        mb.strideIpc = shard->strideIpc;
                        mb.haveStride = true;
                    }
                }
            }
        }

        if (store_ && shard->digestValid) {
            // Probe the engine-result cache at schedule time: a warm
            // cell is merged straight from the store and never
            // scheduled, so a fully warm sweep dispatches no work at
            // all (and never even materializes the trace).
            for (std::size_t j = 0; j < engines.size(); ++j) {
                if (!spec_known[j] ||
                    !specResultCacheable(engines[j]))
                    continue;
                if (auto r = store_->loadResult(
                        shard->traceDigest,
                        specResultDigest(engines[j],
                                         shard->scientific),
                        resultConfigDigest_)) {
                    shard->engineStats[j] = r->stats;
                    shard->engineExtra[j] = std::move(r->extra);
                    shard->engineFromCache[j] = 1;
                }
            }
        }

        std::size_t shard_index = shards.size();
        std::size_t count = 0;
        if (shard->needBaseline) {
            cells.push_back({shard_index, Cell::kBaseline, 0});
            ++count;
            ++baseline_cells;
        }
        if (shard->needStride) {
            cells.push_back({shard_index, Cell::kStride, 0});
            ++count;
            ++baseline_cells;
        }
        for (std::size_t j = 0; j < engines.size(); ++j) {
            if (!spec_known[j] || shard->engineFromCache[j])
                continue;
            cells.push_back({shard_index, Cell::kEngine, j});
            ++count;
            ++engine_cells;
        }
        shard->remainingCells.store(count);
        shards.push_back(std::move(shard));
    }

    // ---- execute ----
    SimParams sim_params;
    sim_params.hierarchy = config_.system.hierarchy;
    sim_params.enableTiming = config_.enableTiming;
    sim_params.timing = config_.system.timing;

    auto materialize_shard = [&](WorkloadShard &shard) {
        std::call_once(shard.traceOnce, [&] {
            if (shard.storeEligible) {
                std::optional<std::uint64_t> digest;
                shard.trace =
                    materializeTrace(*shard.workload, &digest);
                if (digest) {
                    shard.traceDigest = *digest;
                    shard.digestValid = true;
                }
            } else {
                shard.trace = shard.workload->generate(
                    config_.seed, config_.traceRecords);
                traceGenerations_.fetch_add(1);
            }
            shard.traceSize = shard.trace.size();
            shard.warmup = static_cast<std::size_t>(
                shard.trace.size() * config_.warmupFraction);
        });
    };

    /** Build the cell's engine (null for the baseline cell). */
    auto make_cell_engine =
        [&](const Cell &cell,
            const WorkloadShard &shard) -> std::unique_ptr<Prefetcher> {
        if (cell.kind == Cell::kBaseline)
            return nullptr;
        if (cell.kind == Cell::kStride) {
            EngineOptions options;
            options.scientific = shard.scientific;
            return registry.make("stride", config_.system, options);
        }
        const EngineSpec &spec = engines[cell.spec];
        EngineOptions options = spec.options;
        options.scientific = options.scientific || shard.scientific;
        return registry.make(spec.engine, config_.system, options);
    };

    /** Record one finished cell's statistics into its shard. */
    auto collect_cell = [&](const Cell &cell, WorkloadShard &shard,
                            const SimStats &stats,
                            Prefetcher *engine) {
        switch (cell.kind) {
        case Cell::kBaseline:
            shard.baselineMisses = stats.offChipReads;
            shard.baselineCycles = stats.cycles;
            break;
        case Cell::kStride:
            shard.strideCycles = stats.cycles;
            shard.strideIpc = stats.ipc();
            break;
        case Cell::kEngine: {
            const EngineSpec &spec = engines[cell.spec];
            shard.engineStats[cell.spec] = stats;
            if (spec.probe) {
                EngineResult scratch;
                scratch.engine = spec.resultLabel();
                scratch.stats = stats;
                spec.probe(*engine, scratch);
                shard.engineExtra[cell.spec] =
                    std::move(scratch.extra);
            }
            break;
        }
        }
    };

    auto run_cell = [&](std::size_t index) {
        const Cell &cell = cells[index];
        WorkloadShard &shard = *shards[cell.shard];
        materialize_shard(shard);

        std::unique_ptr<Prefetcher> engine =
            make_cell_engine(cell, shard);
        PrefetchSimulator sim(sim_params, engine.get());
        sim.run(shard.trace, shard.warmup);
        collect_cell(cell, shard, sim.stats(), engine.get());

        if (shard.remainingCells.fetch_sub(1) == 1) {
            // Last cell of this workload: release the trace early so
            // peak memory tracks in-flight workloads, not the suite.
            Trace().swap(shard.trace);
        }
    };

    // Batched: all of a workload's schedulable cells become one task
    // that traverses the trace once, each cell an isolated lane of a
    // BatchSimulator. Unbatched: one task per cell, every cell
    // re-iterating the shared trace. Per-cell simulation state is
    // identical either way, so results are bitwise equal; what
    // changes is traversal count and dispatch granularity.
    if (batching_) {
        std::vector<std::vector<Cell>> shard_cells(shards.size());
        for (const Cell &cell : cells)
            shard_cells[cell.shard].push_back(cell);
        std::vector<std::size_t> batch_shards;
        for (std::size_t i = 0; i < shards.size(); ++i)
            if (!shard_cells[i].empty())
                batch_shards.push_back(i);

        // Batching coarsens dispatch to one task per workload; when
        // that leaves worker threads idle (fewer workloads than
        // jobs), hand the slack to each task as lane-level
        // parallelism inside its single trace pass. Lane results
        // cannot depend on this (lanes are independent), so any
        // split stays bitwise deterministic.
        unsigned lane_jobs = static_cast<unsigned>(std::max<std::size_t>(
            1, jobs_ / std::max<std::size_t>(1, batch_shards.size())));

        auto run_batch = [&](std::size_t task) {
            WorkloadShard &shard = *shards[batch_shards[task]];
            const std::vector<Cell> &batch =
                shard_cells[batch_shards[task]];
            materialize_shard(shard);

            BatchSimulator sim;
            std::vector<std::unique_ptr<Prefetcher>> lane_engines;
            lane_engines.reserve(batch.size());
            for (const Cell &cell : batch) {
                lane_engines.push_back(
                    make_cell_engine(cell, shard));
                sim.addLane(sim_params, lane_engines.back().get(),
                            shard.warmup);
            }
            sim.run(shard.trace, lane_jobs);
            for (std::size_t k = 0; k < batch.size(); ++k)
                collect_cell(batch[k], shard, sim.stats(k),
                             lane_engines[k].get());
            // The task owns all of this workload's cells: release
            // the trace as soon as its single pass completes.
            Trace().swap(shard.trace);
        };
        dispatch(batch_shards.size(), run_batch);
    } else {
        dispatch(cells.size(), run_cell);
    }

    // ---- update the baseline caches (in-memory, then store) ----
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        baselineRuns_ += baseline_cells;
        engineRuns_ += engine_cells;
        if (batching_)
            batchedRuns_ += cells.size();
        for (const auto &shard : shards) {
            if (!cacheable ||
                (!shard->needBaseline && !shard->needStride))
                continue;
            Baseline &b = baselineCache_[shard->workload->name()];
            b.misses = shard->baselineMisses;
            b.cycles = shard->baselineCycles;
            if (config_.enableTiming) {
                b.strideCycles = shard->strideCycles;
                b.strideIpc = shard->strideIpc;
                b.haveStride = true;
            }
        }
    }
    bool store_wrote = false;
    if (store_) {
        for (const auto &shard : shards) {
            if (!shard->digestValid ||
                (!shard->needBaseline && !shard->needStride))
                continue;
            store_wrote = true;
            StoredBaseline sb;
            sb.misses = shard->baselineMisses;
            sb.cycles = shard->baselineCycles;
            sb.strideCycles = shard->strideCycles;
            sb.strideIpc = shard->strideIpc;
            sb.haveStride = config_.enableTiming;
            sb.haveTiming = config_.enableTiming;
            store_->putBaseline(shard->traceDigest, configDigest_,
                                sb);
        }
    }

    // ---- merge, in fixed (workload, engine) order ----
    std::vector<WorkloadResult> results;
    results.reserve(shards.size());
    for (const auto &shard : shards) {
        WorkloadResult r;
        r.workload = shard->workload->name();
        r.workloadClass = shard->workload->workloadClass();
        r.baselineMisses = shard->baselineMisses;
        r.baselineCycles = shard->baselineCycles;
        r.strideCycles = shard->strideCycles;
        r.baselineIpc = shard->strideIpc;
        for (std::size_t j = 0; j < engines.size(); ++j) {
            if (!spec_known[j])
                continue;
            EngineResult er;
            er.engine = engines[j].resultLabel();
            er.stats = shard->engineStats[j];
            er.coverage =
                ratio(er.stats.covered(), r.baselineMisses);
            er.uncovered =
                ratio(er.stats.offChipReads, r.baselineMisses);
            er.overprediction =
                ratio(er.stats.overpredictions, r.baselineMisses);
            if (config_.enableTiming && er.stats.cycles > 0)
                er.speedup = r.strideCycles / er.stats.cycles;
            er.extra = std::move(shard->engineExtra[j]);
            if (store_ && shard->digestValid &&
                !shard->engineFromCache[j] &&
                specResultCacheable(engines[j])) {
                StoredEngineResult sr;
                sr.stats = er.stats;
                sr.extra = er.extra;
                StoredResultMeta meta;
                meta.workload = r.workload;
                meta.engine = er.engine;
                // Registry workloads: the trace-key length. External
                // traces: the actual replayed record count (their
                // length is not a config knob).
                meta.records = cacheable ? config_.traceRecords
                                         : shard->traceSize;
                meta.seed = cacheable ? config_.seed : 0;
                meta.coverage = er.coverage;
                meta.accuracy = ratio(er.stats.covered(),
                                      er.stats.prefetchesIssued);
                meta.speedup = er.speedup;
                meta.timing = config_.enableTiming;
                store_->putResult(
                    shard->traceDigest,
                    specResultDigest(engines[j],
                                     shard->scientific),
                    resultConfigDigest_, sr, meta);
                store_wrote = true;
            }
            r.engines.push_back(std::move(er));
        }
        results.push_back(std::move(r));
    }
    if (store_wrote) {
        // One budget pass for the whole sweep's baseline/result
        // writes (putTrace already self-enforces per trace).
        store_->enforceBudget();
    }
    return results;
}

std::vector<WorkloadResult>
ExperimentDriver::run(const std::vector<std::string> &workloads,
                      const std::vector<EngineSpec> &engines)
{
    std::vector<std::unique_ptr<Workload>> owned;
    std::vector<const Workload *> ptrs;
    for (const std::string &name : workloads) {
        auto w = WorkloadRegistry::instance().make(name);
        if (!w)
            continue;
        ptrs.push_back(w.get());
        owned.push_back(std::move(w));
    }
    return runCells(ptrs, engines, /*cacheable=*/true);
}

std::vector<WorkloadResult>
ExperimentDriver::runSuite(const std::vector<EngineSpec> &engines)
{
    return run(WorkloadRegistry::instance().names(), engines);
}

WorkloadResult
ExperimentDriver::runWorkload(
    const Workload &workload, const std::vector<EngineSpec> &engines,
    std::optional<std::uint64_t> trace_digest)
{
    auto results = runCells({&workload}, engines,
                            /*cacheable=*/false, trace_digest);
    return std::move(results.at(0));
}

void
ExperimentDriver::forEachTrace(
    const std::vector<std::string> &workloads,
    const std::function<void(std::size_t, const Workload &,
                             const Trace &)> &fn)
{
    std::vector<std::unique_ptr<Workload>> owned;
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        auto w = WorkloadRegistry::instance().make(workloads[i]);
        if (!w)
            continue;
        owned.push_back(std::move(w));
        indices.push_back(i);
    }
    dispatch(owned.size(), [&](std::size_t k) {
        const Workload &w = *owned[k];
        Trace trace = materializeTrace(w, nullptr);
        fn(indices[k], w, trace);
    });
}

} // namespace stems
