#include "sim/driver.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <map>
#include <optional>
#include <thread>

#include "common/log.hh"
#include "common/stats.hh"
#include "obs/metrics.hh"
#include "obs/trace_span.hh"
#include "prefetch/engine_registry.hh"
#include "sim/batch_sim.hh"
#include "sim/checkpoint.hh"
#include "sim/speculate.hh"
#include "store/keys.hh"
#include "store/trace_store.hh"
#include "trace/trace_io.hh"
#include "workloads/registry.hh"

namespace stems {

namespace {

/**
 * Process-wide registry mirrors of the driver diagnostics. The
 * per-driver counters stay authoritative for the accessor API
 * (tests assert them per instance); these aggregate across drivers
 * and feed metrics snapshots / run manifests.
 */
struct DriverMetrics
{
    Counter &traceGenerated;
    Counter &cellBaseline, &cellEngine, &cellBatched, &cellResumed;
    Counter &ckptSkippedRecords, &ckptWritten;
    Counter &cellSpeculative, &speculateCommit, &speculateMispredict;
    LatencyHistogram &engineNs, &baselineNs;

    DriverMetrics()
        : traceGenerated(
              registry().counter("driver.trace.generated")),
          cellBaseline(registry().counter("driver.cell.baseline")),
          cellEngine(registry().counter("driver.cell.engine")),
          cellBatched(registry().counter("driver.cell.batched")),
          cellResumed(registry().counter("driver.cell.resumed")),
          ckptSkippedRecords(
              registry().counter("ckpt.resume.skipped_records")),
          ckptWritten(registry().counter("ckpt.written")),
          cellSpeculative(
              registry().counter("driver.cell.speculative")),
          speculateCommit(
              registry().counter("ckpt.speculate.commit")),
          speculateMispredict(
              registry().counter("ckpt.speculate.mispredict")),
          engineNs(registry().histogram("driver.cell.engine_ns")),
          baselineNs(registry().histogram("driver.cell.baseline_ns"))
    {
    }

    static MetricsRegistry &
    registry()
    {
        return MetricsRegistry::instance();
    }
};

DriverMetrics &
driverMetrics()
{
    static DriverMetrics metrics;
    return metrics;
}

/** Per-workload shard state shared by that workload's cells. */
struct WorkloadShard
{
    const Workload *workload = nullptr;
    bool scientific = false;

    /// Trace generated once (first cell to touch it) and shared
    /// read-only; released when the last cell finishes.
    std::once_flag traceOnce;
    Trace trace;
    std::size_t warmup = 0;
    /// Record count of the materialized trace (outlives the early
    /// trace release; informational, for result sidecars).
    std::size_t traceSize = 0;
    std::atomic<std::size_t> remainingCells{0};

    bool needBaseline = false;
    bool needStride = false;
    /// Baseline metrics (from the cache, or filled by the baseline /
    /// stride cells; those cells write disjoint fields).
    std::uint64_t baselineMisses = 0;
    double baselineCycles = 0.0;
    double strideCycles = 0.0;
    double strideIpc = 0.0;

    /// Persistent-store state: registry workloads with an attached
    /// store replay traces from disk and key stored baselines by the
    /// trace's content digest.
    bool storeEligible = false;
    std::uint64_t traceDigest = 0;
    bool digestValid = false;

    /// Segmented execution: checkpoint boundaries over this trace
    /// (ascending, ending at trace.size()) and the trace-prefix
    /// digest at each boundary. Empty when checkpointing is off.
    std::vector<std::size_t> ckptBounds;
    std::vector<std::uint64_t> ckptBoundPrefixes;

    std::vector<SimStats> engineStats;
    std::vector<std::map<std::string, double>> engineExtra;
    /// Per engine: cell served from the store's result cache, so it
    /// was never scheduled (and must not be re-persisted).
    std::vector<std::uint8_t> engineFromCache;
};

/** A spec that carries an anonymous probe cannot be result-cached:
 *  the probe's output is part of the result but its code has no
 *  stable identity. Naming the probe (probeId) opts back in. */
bool
specResultCacheable(const EngineSpec &spec)
{
    return !spec.probe || !spec.probeId.empty();
}

/** Digest of everything (besides trace + system config) that
 *  determines an engine cell's result. */
std::uint64_t
specResultDigest(const EngineSpec &spec, bool scientific)
{
    EngineOptions effective = spec.options;
    effective.scientific = effective.scientific || scientific;
    return engineSpecDigest(spec.engine, effective, spec.probeId);
}

/** One unit of work: a single simulation over one shard's trace. */
struct Cell
{
    enum Kind
    {
        kBaseline,
        kStride,
        kEngine,
    };

    std::size_t shard = 0;
    Kind kind = kEngine;
    std::size_t spec = 0; ///< engine index (kEngine only)
};

} // namespace

std::vector<EngineSpec>
engineSpecs(const std::vector<std::string> &names)
{
    std::vector<EngineSpec> specs;
    specs.reserve(names.size());
    for (const std::string &name : names)
        specs.emplace_back(name);
    return specs;
}

std::vector<EngineSpec>
planEngineSpecs(const SweepPlan &plan)
{
    std::vector<EngineSpec> specs;
    specs.reserve(plan.engines.size());
    for (const PlanEngine &e : plan.engines)
        specs.emplace_back(e.engine, e.label, e.options);
    return specs;
}

unsigned
ExperimentDriver::resolveJobs(unsigned jobs)
{
    return jobs != 0
               ? jobs
               : std::max(1u, std::thread::hardware_concurrency());
}

ExperimentDriver::ExperimentDriver(ExperimentConfig config,
                                   unsigned jobs)
    : config_(std::move(config)), jobs_(resolveJobs(jobs))
{
}

void
ExperimentDriver::clearBaselineCache()
{
    std::lock_guard<std::mutex> lock(cacheMutex_);
    baselineCache_.clear();
}

void
ExperimentDriver::setStore(std::shared_ptr<TraceStore> store)
{
    store_ = std::move(store);
    if (store_) {
        // The store's key vocabulary lives in store/keys.hh; the
        // driver only caches the three config-context digests here.
        configDigest_ = baselineConfigDigest(config_);
        resultConfigDigest_ = stems::resultConfigDigest(config_);
        ckptConfigDigest_ = checkpointConfigDigest(config_);
    }
}

void
ExperimentDriver::applyPlan(const SweepPlan &plan)
{
    ExperimentConfig next = planExperimentConfig(plan);
    next.system = config_.system;
    // The name-keyed baseline cache describes the old trace/warmup
    // configuration; a changed plan would silently serve stale
    // baselines without this.
    const bool trace_knobs_changed =
        next.traceRecords != config_.traceRecords ||
        next.seed != config_.seed ||
        next.warmupFraction != config_.warmupFraction ||
        next.warmupRecords != config_.warmupRecords ||
        next.enableTiming != config_.enableTiming;
    config_ = next;
    if (trace_knobs_changed)
        clearBaselineCache();
    jobs_ = resolveJobs(plan.jobs);
    batching_ = plan.batch;
    segments_ = plan.segments == 0 ? 1 : plan.segments;
    checkpointEvery_ =
        static_cast<std::size_t>(plan.checkpointEvery);
    speculate_ = plan.speculate;
    heartbeatSeconds_ =
        plan.heartbeatSeconds < 0 ? 0.0 : plan.heartbeatSeconds;
    // Refresh the store-context digests for the new configuration.
    if (store_)
        setStore(store_);
}

Trace
ExperimentDriver::materializeTrace(
    const Workload &workload,
    std::optional<std::uint64_t> *digest_out)
{
    if (store_) {
        TraceKey key{workload.name(), config_.traceRecords,
                     config_.seed};
        Trace trace;
        if (store_->loadTrace(key, trace)) {
            // Hash the records actually loaded rather than trusting
            // (and re-reading) the meta sidecar: baselines stay
            // keyed to the true content even if a meta file is
            // stale, at no extra I/O.
            if (digest_out)
                *digest_out = traceDigest(trace);
            return trace;
        }
        trace = workload.generate(config_.seed,
                                  config_.traceRecords);
        traceGenerations_.fetch_add(1);
        driverMetrics().traceGenerated.add();
        if (auto info = store_->putTrace(key, trace)) {
            if (digest_out)
                *digest_out = info->digest;
        }
        return trace;
    }
    traceGenerations_.fetch_add(1);
    driverMetrics().traceGenerated.add();
    return workload.generate(config_.seed, config_.traceRecords);
}

void
ExperimentDriver::dispatch(std::size_t num_tasks,
                           const std::function<void(std::size_t)> &task)
{
    std::size_t workers =
        std::min<std::size_t>(jobs_, num_tasks);
    if (workers <= 1) {
        for (std::size_t i = 0; i < num_tasks; ++i)
            task(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex error_mutex;
    std::exception_ptr error;

    auto body = [&] {
        while (!failed.load(std::memory_order_relaxed)) {
            std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= num_tasks)
                break;
            try {
                task(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!error)
                    error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t)
        pool.emplace_back(body);
    for (std::thread &t : pool)
        t.join();
    if (error)
        std::rethrow_exception(error);
}

std::vector<WorkloadResult>
ExperimentDriver::runCells(
    const std::vector<const Workload *> &workloads,
    const std::vector<EngineSpec> &engines, bool cacheable,
    std::optional<std::uint64_t> external_digest)
{
    const EngineRegistry &registry = EngineRegistry::instance();
    std::vector<bool> spec_known(engines.size());
    for (std::size_t j = 0; j < engines.size(); ++j)
        spec_known[j] = registry.contains(engines[j].engine);

    // ---- schedule ----
    // Phase spans end early (before the next phase), so they live
    // behind unique_ptrs instead of plain RAII scopes.
    auto schedule_span = std::make_unique<ScopedSpan>(
        "driver.schedule", "driver");
    std::vector<std::unique_ptr<WorkloadShard>> shards;
    std::vector<Cell> cells;
    shards.reserve(workloads.size());
    std::size_t baseline_cells = 0;
    std::size_t engine_cells = 0;
    for (const Workload *w : workloads) {
        auto shard = std::make_unique<WorkloadShard>();
        shard->workload = w;
        shard->scientific =
            w->workloadClass() == WorkloadClass::kScientific;
        shard->engineStats.resize(engines.size());
        shard->engineExtra.resize(engines.size());
        shard->engineFromCache.assign(engines.size(), 0);

        shard->needBaseline = true;
        shard->needStride = config_.enableTiming;
        shard->storeEligible = cacheable && store_ != nullptr;
        if (shard->storeEligible) {
            // Metadata-only probe: learn the trace's content digest
            // (the stored-baseline key) without decoding any records.
            if (auto info = store_->findTrace(
                    {w->name(), config_.traceRecords,
                     config_.seed})) {
                shard->traceDigest = info->digest;
                shard->digestValid = true;
            }
        } else if (store_ && external_digest) {
            // External workload with a caller-vouched trace digest
            // (a captured/imported trace): stored baselines apply
            // even though the name-keyed trace replay does not.
            shard->traceDigest = *external_digest;
            shard->digestValid = true;
        }
        if (cacheable) {
            std::lock_guard<std::mutex> lock(cacheMutex_);
            auto it = baselineCache_.find(w->name());
            if (it != baselineCache_.end()) {
                const Baseline &b = it->second;
                // A functional-only cache entry has valid misses but
                // no cycle accounting; a timing run must redo it.
                bool timed_enough =
                    !config_.enableTiming || b.cycles > 0.0;
                if (timed_enough) {
                    shard->needBaseline = false;
                    shard->baselineMisses = b.misses;
                    shard->baselineCycles = b.cycles;
                    if (b.haveStride) {
                        shard->needStride = false;
                        shard->strideCycles = b.strideCycles;
                        shard->strideIpc = b.strideIpc;
                    }
                }
            }
        }
        if ((shard->needBaseline || shard->needStride) &&
            shard->digestValid) {
            // Second-level lookup: the persistent store, keyed by
            // trace digest + system-config digest.
            if (auto b = store_->loadBaseline(shard->traceDigest,
                                              configDigest_)) {
                bool timed_enough =
                    !config_.enableTiming || b->haveTiming;
                if (timed_enough) {
                    if (shard->needBaseline) {
                        shard->needBaseline = false;
                        shard->baselineMisses = b->misses;
                        shard->baselineCycles = b->cycles;
                    }
                    if (shard->needStride && b->haveStride) {
                        shard->needStride = false;
                        shard->strideCycles = b->strideCycles;
                        shard->strideIpc = b->strideIpc;
                    }
                }
                if (cacheable && !shard->needBaseline &&
                    !shard->needStride) {
                    // Mirror into the in-memory cache so later
                    // run() calls skip the disk probe.
                    std::lock_guard<std::mutex> lock(cacheMutex_);
                    Baseline &mb = baselineCache_[w->name()];
                    mb.misses = shard->baselineMisses;
                    mb.cycles = shard->baselineCycles;
                    if (config_.enableTiming) {
                        mb.strideCycles = shard->strideCycles;
                        mb.strideIpc = shard->strideIpc;
                        mb.haveStride = true;
                    }
                }
            }
        }

        if (store_ && shard->digestValid) {
            // Probe the engine-result cache at schedule time: a warm
            // cell is merged straight from the store and never
            // scheduled, so a fully warm sweep dispatches no work at
            // all (and never even materializes the trace).
            for (std::size_t j = 0; j < engines.size(); ++j) {
                if (!spec_known[j] ||
                    !specResultCacheable(engines[j]))
                    continue;
                if (auto r = store_->loadResult(
                        shard->traceDigest,
                        specResultDigest(engines[j],
                                         shard->scientific),
                        resultConfigDigest_)) {
                    shard->engineStats[j] = r->stats;
                    shard->engineExtra[j] = std::move(r->extra);
                    shard->engineFromCache[j] = 1;
                }
            }
        }

        std::size_t shard_index = shards.size();
        std::size_t count = 0;
        if (shard->needBaseline) {
            cells.push_back({shard_index, Cell::kBaseline, 0});
            ++count;
            ++baseline_cells;
        }
        if (shard->needStride) {
            cells.push_back({shard_index, Cell::kStride, 0});
            ++count;
            ++baseline_cells;
        }
        for (std::size_t j = 0; j < engines.size(); ++j) {
            if (!spec_known[j] || shard->engineFromCache[j])
                continue;
            cells.push_back({shard_index, Cell::kEngine, j});
            ++count;
            ++engine_cells;
        }
        shard->remainingCells.store(count);
        shards.push_back(std::move(shard));
    }
    if (schedule_span->active()) {
        schedule_span->arg(
            "cells", static_cast<std::uint64_t>(cells.size()));
        schedule_span->arg(
            "workloads",
            static_cast<std::uint64_t>(shards.size()));
    }
    schedule_span.reset();

    // ---- execute ----
    SimParams sim_params;
    sim_params.hierarchy = config_.system.hierarchy;
    sim_params.enableTiming = config_.enableTiming;
    sim_params.timing = config_.system.timing;

    // Segmented execution needs a store to put checkpoints in; with
    // neither granularity knob set it is off entirely.
    const bool ckpt_enabled =
        store_ != nullptr && store_->usable() &&
        (checkpointEvery_ > 0 || segments_ > 1);

    // The shared boundary schedule (sim/checkpoint.hh): the same
    // formula the distributed coordinator decomposes segment units
    // with, so unit endpoints land exactly on checkpoint indices.
    auto ckpt_bounds_for = [&](std::size_t size) {
        return checkpointBounds(size, checkpointEvery_, segments_);
    };

    auto materialize_shard = [&](WorkloadShard &shard) {
        std::call_once(shard.traceOnce, [&] {
            ScopedSpan span("trace.materialize", "driver");
            if (span.active())
                span.arg("workload", shard.workload->name());
            if (shard.storeEligible) {
                std::optional<std::uint64_t> digest;
                shard.trace =
                    materializeTrace(*shard.workload, &digest);
                if (digest) {
                    shard.traceDigest = *digest;
                    shard.digestValid = true;
                }
            } else {
                shard.trace = shard.workload->generate(
                    config_.seed, config_.traceRecords);
                traceGenerations_.fetch_add(1);
                driverMetrics().traceGenerated.add();
            }
            shard.traceSize = shard.trace.size();
            shard.warmup = effectiveWarmupRecords(
                config_, shard.trace.size());
            if (ckpt_enabled) {
                shard.ckptBounds =
                    ckpt_bounds_for(shard.trace.size());
                shard.ckptBoundPrefixes = tracePrefixDigests(
                    shard.trace, shard.ckptBounds);
            }
        });
    };

    // The state digest of a checkpoint (store/keys.hh): trace-prefix
    // content plus the warmup boundary's effect on that prefix.
    auto ckpt_state_digest = [](std::uint64_t prefix_digest,
                                std::size_t index,
                                std::size_t warmup) {
        return checkpointStateDigest(prefix_digest, index, warmup);
    };

    /** Checkpoint identity of a cell's simulator: the engine spec
     *  without labels or probe ids (a probe reads state post-run; it
     *  cannot change the simulation a checkpoint captures). */
    auto cell_ckpt_spec = [&](const Cell &cell,
                              const WorkloadShard &shard)
        -> std::uint64_t {
        switch (cell.kind) {
        case Cell::kBaseline:
            return storeDigest("cell:baseline:v1");
        case Cell::kStride: {
            EngineOptions options;
            options.scientific = shard.scientific;
            return engineSpecDigest("stride", options);
        }
        case Cell::kEngine:
        default: {
            const EngineSpec &spec = engines[cell.spec];
            EngineOptions options = spec.options;
            options.scientific =
                options.scientific || shard.scientific;
            return engineSpecDigest(spec.engine, options);
        }
        }
    };

    auto cell_label = [&](const Cell &cell) -> std::string {
        switch (cell.kind) {
        case Cell::kBaseline:
            return "baseline";
        case Cell::kStride:
            return "stride";
        case Cell::kEngine:
        default:
            return engines[cell.spec].resultLabel();
        }
    };

    /** Build the cell's engine (null for the baseline cell). */
    auto make_cell_engine =
        [&](const Cell &cell,
            const WorkloadShard &shard) -> std::unique_ptr<Prefetcher> {
        if (cell.kind == Cell::kBaseline)
            return nullptr;
        if (cell.kind == Cell::kStride) {
            EngineOptions options;
            options.scientific = shard.scientific;
            return registry.make("stride", config_.system, options);
        }
        const EngineSpec &spec = engines[cell.spec];
        EngineOptions options = spec.options;
        options.scientific = options.scientific || shard.scientific;
        return registry.make(spec.engine, config_.system, options);
    };

    /** Record one finished cell's statistics into its shard. */
    auto collect_cell = [&](const Cell &cell, WorkloadShard &shard,
                            const SimStats &stats,
                            Prefetcher *engine) {
        switch (cell.kind) {
        case Cell::kBaseline:
            shard.baselineMisses = stats.offChipReads;
            shard.baselineCycles = stats.cycles;
            break;
        case Cell::kStride:
            shard.strideCycles = stats.cycles;
            shard.strideIpc = stats.ipc();
            break;
        case Cell::kEngine: {
            const EngineSpec &spec = engines[cell.spec];
            shard.engineStats[cell.spec] = stats;
            if (spec.probe) {
                EngineResult scratch;
                scratch.engine = spec.resultLabel();
                scratch.stats = stats;
                spec.probe(*engine, scratch);
                shard.engineExtra[cell.spec] =
                    std::move(scratch.extra);
            }
            break;
        }
        }
    };

    /**
     * Speculative path for one cold cell (sim/speculate.hh): stored
     * checkpoints at interior indices — on-key or not; a stale,
     * cross-seed or cross-warmup state is a usable *prediction*, not
     * a trusted prefix — split the trace into segments that run as
     * parallel lanes with byte-compare validation at every boundary.
     * Only validated states are written back, under the on-key state
     * digest for this trace, so a committed stale entry becomes a
     * trusted one for future runs. @return true when the cell was
     * fully handled (stats collected); false falls back to the
     * normal cold path below.
     */
    auto speculate_cell =
        [&](const Cell &cell, WorkloadShard &shard,
            std::map<std::size_t, std::uint64_t> &prefix_memo,
            unsigned lane_jobs) -> bool {
        if (shard.trace.size() < 2)
            return false;
        const std::uint64_t spec = cell_ckpt_spec(cell, shard);
        const auto stored =
            store_->listCheckpoints(spec, ckptConfigDigest_);
        std::vector<std::size_t> indices;
        for (const StoredCheckpointKey &key : stored) {
            if (key.index == 0 || key.index >= shard.trace.size())
                continue; // can't seed a runnable segment
            std::size_t idx = static_cast<std::size_t>(key.index);
            if (indices.empty() || indices.back() != idx)
                indices.push_back(idx);
        }
        if (indices.empty())
            return false;
        std::vector<std::size_t> missing;
        for (std::size_t idx : indices)
            if (prefix_memo.find(idx) == prefix_memo.end())
                missing.push_back(idx);
        if (!missing.empty()) {
            auto computed =
                tracePrefixDigests(shard.trace, missing);
            for (std::size_t m = 0; m < missing.size(); ++m)
                prefix_memo[missing[m]] = computed[m];
        }
        // One seed per index: prefer the on-key state (it predicts
        // this exact run and will commit), else the smallest digest
        // so candidate choice is deterministic across runs.
        std::vector<SpeculationSeed> seeds;
        for (std::size_t idx : indices) {
            const std::uint64_t on_key = ckpt_state_digest(
                prefix_memo[idx], idx, shard.warmup);
            std::uint64_t chosen = 0;
            bool have = false;
            for (const StoredCheckpointKey &key : stored) {
                if (key.index != idx)
                    continue;
                if (key.stateDigest == on_key) {
                    chosen = on_key;
                    have = true;
                    break;
                }
                if (!have) {
                    chosen = key.stateDigest;
                    have = true;
                }
            }
            auto blob = store_->loadCheckpoint(
                spec, ckptConfigDigest_, idx, chosen);
            if (!blob)
                continue;
            seeds.push_back(
                SpeculationSeed{idx, std::move(*blob)});
        }
        if (seeds.empty())
            return false;

        ScopedSpan spec_span("driver.speculate", "ckpt");
        if (spec_span.active()) {
            spec_span.arg("workload", shard.workload->name());
            spec_span.arg("cell", cell_label(cell));
        }
        const auto start = std::chrono::steady_clock::now();
        auto outcome = runSpeculativeCell(
            sim_params, shard.warmup, shard.trace,
            [&] { return make_cell_engine(cell, shard); },
            std::move(seeds), lane_jobs);
        if (!outcome)
            return false; // no seed decoded; run cold as usual
        const auto ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count());
        (cell.kind == Cell::kEngine ? driverMetrics().engineNs
                                    : driverMetrics().baselineNs)
            .record(ns);
        if (spec_span.active()) {
            spec_span.arg("segments", static_cast<std::uint64_t>(
                                          outcome->segments));
            spec_span.arg("commits", static_cast<std::uint64_t>(
                                         outcome->commits));
            spec_span.arg("mispredicts",
                          static_cast<std::uint64_t>(
                              outcome->mispredicts));
            spec_span.arg("replayed_records",
                          static_cast<std::uint64_t>(
                              outcome->replayedRecords));
        }
        speculativeCells_.fetch_add(1);
        speculativeCommits_.fetch_add(outcome->commits);
        speculativeMispredicts_.fetch_add(outcome->mispredicts);
        driverMetrics().cellSpeculative.add();
        driverMetrics().speculateCommit.add(outcome->commits);
        driverMetrics().speculateMispredict.add(
            outcome->mispredicts);

        for (auto &validated : outcome->validated) {
            auto it = prefix_memo.find(validated.first);
            if (it == prefix_memo.end()) {
                auto computed = tracePrefixDigests(
                    shard.trace,
                    std::vector<std::size_t>{validated.first});
                it = prefix_memo
                         .emplace(validated.first, computed[0])
                         .first;
            }
            StoredCheckpointMeta meta;
            meta.workload = shard.workload->name();
            meta.engine = cell_label(cell);
            meta.index = validated.first;
            meta.warmup = shard.warmup;
            if (store_->putCheckpoint(
                    spec, ckptConfigDigest_, validated.first,
                    ckpt_state_digest(it->second, validated.first,
                                      shard.warmup),
                    validated.second, meta)) {
                checkpointsWritten_.fetch_add(1);
                driverMetrics().ckptWritten.add();
            }
        }
        collect_cell(cell, shard, outcome->stats,
                     outcome->engine.get());
        return true;
    };

    /**
     * Run a group of one workload's cells as lanes of one
     * BatchSimulator pass (the whole shard when batching, a single
     * cell otherwise — a 1-lane pass is bitwise identical to a
     * standalone PrefetchSimulator::run, which sim_test pins). When
     * speculation is on, each cell with stored boundary candidates
     * is peeled off into the segment-parallel path first. When
     * segmented execution is on, each remaining lane resumes from
     * the newest stored checkpoint whose trace prefix, warmup
     * boundary and engine spec match, and writes a checkpoint at
     * every boundary it crosses.
     */
    auto execute_cells = [&](WorkloadShard &shard,
                             std::vector<Cell> group,
                             unsigned lane_jobs) {
        ScopedSpan span("cells.execute", "driver");
        if (span.active()) {
            span.arg("workload", shard.workload->name());
            span.arg("lanes",
                     static_cast<std::uint64_t>(group.size()));
            span.arg("lane_jobs",
                     static_cast<std::uint64_t>(lane_jobs));
        }
        // Trace-prefix digests are a property of the trace, not a
        // lane: one memo serves the speculative and trusted-resume
        // paths alike (on-schedule indices are pre-seeded from
        // materialize_shard's boundary pass).
        std::map<std::size_t, std::uint64_t> prefix_memo;
        for (std::size_t b = 0; b < shard.ckptBounds.size(); ++b)
            prefix_memo[shard.ckptBounds[b]] =
                shard.ckptBoundPrefixes[b];

        if (speculate_ && store_ && store_->usable()) {
            std::vector<Cell> rest;
            rest.reserve(group.size());
            for (const Cell &cell : group)
                if (!speculate_cell(cell, shard, prefix_memo,
                                    lane_jobs))
                    rest.push_back(cell);
            group = std::move(rest);
            if (group.empty())
                return;
        }
        BatchSimulator sim;
        std::vector<std::unique_ptr<Prefetcher>> lane_engines;
        std::vector<std::uint64_t> lane_spec(group.size(), 0);
        lane_engines.reserve(group.size());
        for (const Cell &cell : group) {
            lane_engines.push_back(make_cell_engine(cell, shard));
            sim.addLane(sim_params, lane_engines.back().get(),
                        shard.warmup);
        }

        if (ckpt_enabled && !shard.ckptBounds.empty()) {
            for (std::size_t k = 0; k < group.size(); ++k) {
                ScopedSpan resume_span("ckpt.resume", "ckpt");
                lane_spec[k] = cell_ckpt_spec(group[k], shard);

                // Resume: candidate indices come from the store's
                // directory (they may include other workloads' or
                // record-schedules' checkpoints); each candidate is
                // verified against this trace by recomputing the
                // prefix digest, newest first. Candidates that sit
                // on this run's own boundary schedule — the common
                // case — reuse the digests materialize_shard already
                // computed; only off-schedule indices cost a hash
                // pass.
                auto candidates = store_->listCheckpointIndices(
                    lane_spec[k], ckptConfigDigest_);
                std::vector<std::size_t> usable;
                for (std::uint64_t c : candidates)
                    if (c > 0 && c <= shard.trace.size())
                        usable.push_back(
                            static_cast<std::size_t>(c));
                std::vector<std::size_t> missing;
                for (std::size_t c : usable)
                    if (prefix_memo.find(c) == prefix_memo.end())
                        missing.push_back(c);
                if (!missing.empty()) {
                    auto computed =
                        tracePrefixDigests(shard.trace, missing);
                    for (std::size_t m = 0; m < missing.size(); ++m)
                        prefix_memo[missing[m]] = computed[m];
                }
                std::vector<std::uint64_t> prefixes(usable.size());
                for (std::size_t c = 0; c < usable.size(); ++c)
                    prefixes[c] = prefix_memo[usable[c]];
                std::size_t resume = 0;
                for (std::size_t c = usable.size(); c-- > 0;) {
                    std::uint64_t state = ckpt_state_digest(
                        prefixes[c], usable[c], shard.warmup);
                    auto blob = store_->loadCheckpoint(
                        lane_spec[k], ckptConfigDigest_, usable[c],
                        state);
                    if (!blob)
                        continue;
                    std::uint64_t decoded = 0;
                    if (decodeCheckpoint(*blob, sim.simulator(k),
                                         &decoded) &&
                        decoded == usable[c]) {
                        resume = usable[c];
                        break;
                    }
                    // Structurally unrestorable despite a CRC pass
                    // (key collision / code skew): drop the stale
                    // entry so a fresh one replaces it, rebuild the
                    // possibly part-mutated lane, and keep trying
                    // older candidates against the clean state.
                    store_->dropCheckpoint(lane_spec[k],
                                           ckptConfigDigest_,
                                           usable[c], state);
                    lane_engines[k] =
                        make_cell_engine(group[k], shard);
                    sim.rebuildLane(k, lane_engines[k].get());
                }
                if (resume_span.active()) {
                    resume_span.arg("engine",
                                    cell_label(group[k]));
                    resume_span.arg(
                        "resume_index",
                        static_cast<std::uint64_t>(resume));
                }
                if (resume > 0) {
                    sim.setLaneStart(k, resume);
                    resumedRuns_.fetch_add(1);
                    resumedRecordsSkipped_.fetch_add(resume);
                    driverMetrics().cellResumed.add();
                    driverMetrics().ckptSkippedRecords.add(resume);
                }
                std::vector<std::size_t> lane_bounds;
                for (std::size_t b : shard.ckptBounds)
                    if (b > resume)
                        lane_bounds.push_back(b);
                sim.setLaneBoundaries(k, std::move(lane_bounds));
            }

            sim.setBoundaryCallback(
                [&](std::size_t lane, std::size_t index,
                    PrefetchSimulator &lane_sim) {
                    // May run concurrently from lane worker
                    // threads: only the thread-safe store and
                    // atomics below.
                    ScopedSpan write_span("ckpt.write", "ckpt");
                    if (write_span.active()) {
                        write_span.arg(
                            "lane",
                            static_cast<std::uint64_t>(lane));
                        write_span.arg(
                            "index",
                            static_cast<std::uint64_t>(index));
                    }
                    auto pos =
                        std::lower_bound(shard.ckptBounds.begin(),
                                         shard.ckptBounds.end(),
                                         index) -
                        shard.ckptBounds.begin();
                    StoredCheckpointMeta meta;
                    meta.workload = shard.workload->name();
                    meta.engine = cell_label(group[lane]);
                    meta.index = index;
                    meta.warmup = shard.warmup;
                    store_->putCheckpoint(
                        lane_spec[lane], ckptConfigDigest_, index,
                        ckpt_state_digest(
                            shard.ckptBoundPrefixes
                                [static_cast<std::size_t>(pos)],
                            index, shard.warmup),
                        encodeCheckpoint(lane_sim, index), meta);
                    checkpointsWritten_.fetch_add(1);
                    driverMetrics().ckptWritten.add();
                });
        }

        bool has_engine_cell = false;
        for (const Cell &cell : group)
            if (cell.kind == Cell::kEngine)
                has_engine_cell = true;
        const auto pass_start = std::chrono::steady_clock::now();
        sim.run(shard.trace, lane_jobs);
        // One sample per executed pass: a single cell unbatched, a
        // whole workload's lanes batched. Engine passes and pure
        // baseline/stride passes land in separate histograms.
        const auto pass_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - pass_start)
                .count());
        (has_engine_cell ? driverMetrics().engineNs
                         : driverMetrics().baselineNs)
            .record(pass_ns);
        for (std::size_t k = 0; k < group.size(); ++k)
            collect_cell(group[k], shard, sim.stats(k),
                         lane_engines[k].get());
    };

    // Progress accounting for the heartbeat: scheduled cells that
    // have finished executing (warm cells never appear — they were
    // merged from the store at schedule time).
    std::atomic<std::size_t> cells_done{0};

    auto run_cell = [&](std::size_t index) {
        const Cell &cell = cells[index];
        WorkloadShard &shard = *shards[cell.shard];
        ScopedSpan span("driver.cell", "driver");
        if (span.active()) {
            span.arg("workload", shard.workload->name());
            span.arg("cell", cell_label(cell));
        }
        materialize_shard(shard);

        execute_cells(shard, {cell}, 1);
        cells_done.fetch_add(1, std::memory_order_relaxed);

        if (shard.remainingCells.fetch_sub(1) == 1) {
            // Last cell of this workload: release the trace early so
            // peak memory tracks in-flight workloads, not the suite.
            Trace().swap(shard.trace);
        }
    };

    // ---- heartbeat (opt-in; stderr only) ----
    std::mutex hb_mutex;
    std::condition_variable hb_cv;
    bool hb_stop = false;
    std::thread hb_thread;
    if (heartbeatSeconds_ > 0 && !cells.empty()) {
        hb_thread = std::thread([&, total = cells.size()] {
            Counter &steps = MetricsRegistry::instance().counter(
                "batch.record_steps");
            std::uint64_t last_steps = steps.value();
            auto last_time = std::chrono::steady_clock::now();
            std::unique_lock<std::mutex> lock(hb_mutex);
            for (;;) {
                if (hb_cv.wait_for(
                        lock,
                        std::chrono::duration<double>(
                            heartbeatSeconds_),
                        [&] { return hb_stop; }))
                    return;
                auto now = std::chrono::steady_clock::now();
                std::uint64_t cur = steps.value();
                double secs =
                    std::chrono::duration<double>(now - last_time)
                        .count();
                double rate =
                    secs > 0 ? static_cast<double>(cur - last_steps) /
                                   secs
                             : 0.0;
                char line[128];
                std::snprintf(
                    line, sizeof(line),
                    "sweep progress: %zu/%zu cells, "
                    "%.2fM record-steps/s",
                    cells_done.load(std::memory_order_relaxed),
                    total, rate / 1e6);
                logInfo(line);
                last_steps = cur;
                last_time = now;
            }
        });
    }
    auto stop_heartbeat = [&] {
        if (!hb_thread.joinable())
            return;
        {
            std::lock_guard<std::mutex> lock(hb_mutex);
            hb_stop = true;
        }
        hb_cv.notify_all();
        hb_thread.join();
    };

    // Batched: all of a workload's schedulable cells become one task
    // that traverses the trace once, each cell an isolated lane of a
    // BatchSimulator. Unbatched: one task per cell, every cell
    // re-iterating the shared trace. Per-cell simulation state is
    // identical either way, so results are bitwise equal; what
    // changes is traversal count and dispatch granularity.
    if (batching_) {
        std::vector<std::vector<Cell>> shard_cells(shards.size());
        for (const Cell &cell : cells)
            shard_cells[cell.shard].push_back(cell);
        std::vector<std::size_t> batch_shards;
        for (std::size_t i = 0; i < shards.size(); ++i)
            if (!shard_cells[i].empty())
                batch_shards.push_back(i);

        // Batching coarsens dispatch to one task per workload; when
        // that leaves worker threads idle (fewer workloads than
        // jobs), hand the slack to each task as lane-level
        // parallelism inside its single trace pass. Lane results
        // cannot depend on this (lanes are independent), so any
        // split stays bitwise deterministic.
        unsigned lane_jobs = static_cast<unsigned>(std::max<std::size_t>(
            1, jobs_ / std::max<std::size_t>(1, batch_shards.size())));

        auto run_batch = [&](std::size_t task) {
            WorkloadShard &shard = *shards[batch_shards[task]];
            const std::vector<Cell> &batch =
                shard_cells[batch_shards[task]];
            ScopedSpan span("driver.batch", "driver");
            if (span.active()) {
                span.arg("workload", shard.workload->name());
                span.arg("cells",
                         static_cast<std::uint64_t>(batch.size()));
            }
            materialize_shard(shard);
            execute_cells(shard, batch, lane_jobs);
            cells_done.fetch_add(batch.size(),
                                 std::memory_order_relaxed);
            // The task owns all of this workload's cells: release
            // the trace as soon as its single pass completes.
            Trace().swap(shard.trace);
        };
        try {
            dispatch(batch_shards.size(), run_batch);
        } catch (...) {
            stop_heartbeat();
            throw;
        }
    } else {
        try {
            dispatch(cells.size(), run_cell);
        } catch (...) {
            stop_heartbeat();
            throw;
        }
    }
    stop_heartbeat();

    // ---- update the baseline caches (in-memory, then store) ----
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        baselineRuns_ += baseline_cells;
        engineRuns_ += engine_cells;
        driverMetrics().cellBaseline.add(baseline_cells);
        driverMetrics().cellEngine.add(engine_cells);
        if (batching_) {
            batchedRuns_ += cells.size();
            driverMetrics().cellBatched.add(cells.size());
        }
        for (const auto &shard : shards) {
            if (!cacheable ||
                (!shard->needBaseline && !shard->needStride))
                continue;
            Baseline &b = baselineCache_[shard->workload->name()];
            b.misses = shard->baselineMisses;
            b.cycles = shard->baselineCycles;
            if (config_.enableTiming) {
                b.strideCycles = shard->strideCycles;
                b.strideIpc = shard->strideIpc;
                b.haveStride = true;
            }
        }
    }
    auto persist_span =
        std::make_unique<ScopedSpan>("driver.persist", "driver");
    bool store_wrote = false;
    if (store_) {
        for (const auto &shard : shards) {
            if (!shard->digestValid ||
                (!shard->needBaseline && !shard->needStride))
                continue;
            store_wrote = true;
            StoredBaseline sb;
            sb.misses = shard->baselineMisses;
            sb.cycles = shard->baselineCycles;
            sb.strideCycles = shard->strideCycles;
            sb.strideIpc = shard->strideIpc;
            sb.haveStride = config_.enableTiming;
            sb.haveTiming = config_.enableTiming;
            store_->putBaseline(shard->traceDigest, configDigest_,
                                sb);
        }
    }
    persist_span.reset();

    // ---- merge, in fixed (workload, engine) order ----
    auto merge_span =
        std::make_unique<ScopedSpan>("driver.merge", "driver");
    std::vector<WorkloadResult> results;
    results.reserve(shards.size());
    for (const auto &shard : shards) {
        WorkloadResult r;
        r.workload = shard->workload->name();
        r.workloadClass = shard->workload->workloadClass();
        r.baselineMisses = shard->baselineMisses;
        r.baselineCycles = shard->baselineCycles;
        r.strideCycles = shard->strideCycles;
        r.baselineIpc = shard->strideIpc;
        for (std::size_t j = 0; j < engines.size(); ++j) {
            if (!spec_known[j])
                continue;
            EngineResult er;
            er.engine = engines[j].resultLabel();
            er.stats = shard->engineStats[j];
            er.coverage =
                ratio(er.stats.covered(), r.baselineMisses);
            er.uncovered =
                ratio(er.stats.offChipReads, r.baselineMisses);
            er.overprediction =
                ratio(er.stats.overpredictions, r.baselineMisses);
            if (config_.enableTiming && er.stats.cycles > 0)
                er.speedup = r.strideCycles / er.stats.cycles;
            er.extra = std::move(shard->engineExtra[j]);
            if (store_ && shard->digestValid &&
                !shard->engineFromCache[j] &&
                specResultCacheable(engines[j])) {
                StoredEngineResult sr;
                sr.stats = er.stats;
                sr.extra = er.extra;
                StoredResultMeta meta;
                meta.workload = r.workload;
                meta.engine = er.engine;
                // Registry workloads: the trace-key length. External
                // traces: the actual replayed record count (their
                // length is not a config knob).
                meta.records = cacheable ? config_.traceRecords
                                         : shard->traceSize;
                meta.seed = cacheable ? config_.seed : 0;
                meta.coverage = er.coverage;
                meta.accuracy = ratio(er.stats.covered(),
                                      er.stats.prefetchesIssued);
                meta.speedup = er.speedup;
                meta.timing = config_.enableTiming;
                store_->putResult(
                    shard->traceDigest,
                    specResultDigest(engines[j],
                                     shard->scientific),
                    resultConfigDigest_, sr, meta);
                store_wrote = true;
            }
            r.engines.push_back(std::move(er));
        }
        results.push_back(std::move(r));
    }
    merge_span.reset();
    if (store_wrote) {
        // One budget pass for the whole sweep's baseline/result
        // writes (putTrace already self-enforces per trace).
        store_->enforceBudget();
    }
    return results;
}

std::vector<WorkloadResult>
ExperimentDriver::run(const std::vector<std::string> &workloads,
                      const std::vector<EngineSpec> &engines)
{
    std::vector<std::unique_ptr<Workload>> owned;
    std::vector<const Workload *> ptrs;
    for (const std::string &name : workloads) {
        auto w = WorkloadRegistry::instance().make(name);
        if (!w)
            continue;
        ptrs.push_back(w.get());
        owned.push_back(std::move(w));
    }
    return runCells(ptrs, engines, /*cacheable=*/true);
}

bool
ExperimentDriver::runCellSegment(const std::string &workload_name,
                                 const EngineSpec *engine,
                                 std::size_t seg_begin,
                                 std::size_t seg_end,
                                 std::string *error)
{
    auto fail = [&](const std::string &text) {
        if (error)
            *error = text;
        return false;
    };
    if (!store_ || !store_->usable())
        return fail("segment execution requires an attached store");
    std::unique_ptr<Workload> workload =
        WorkloadRegistry::instance().make(workload_name);
    if (!workload)
        return fail("unknown workload '" + workload_name + "'");
    const EngineRegistry &registry = EngineRegistry::instance();
    if (engine && !registry.contains(engine->engine))
        return fail("unknown engine '" + engine->engine + "'");

    ScopedSpan span("cells.segment", "driver");
    if (span.active()) {
        span.arg("workload", workload_name);
        span.arg("begin", static_cast<std::uint64_t>(seg_begin));
        span.arg("end", static_cast<std::uint64_t>(seg_end));
    }

    Trace trace = materializeTrace(*workload, nullptr);
    const std::size_t size = trace.size();
    if (seg_end > size)
        seg_end = size;
    if (seg_begin >= seg_end)
        return true; // nothing to advance
    const std::size_t warmup =
        effectiveWarmupRecords(config_, size);
    const bool scientific =
        workload->workloadClass() == WorkloadClass::kScientific;

    SimParams sim_params;
    sim_params.hierarchy = config_.system.hierarchy;
    sim_params.enableTiming = config_.enableTiming;
    sim_params.timing = config_.system.timing;

    // The column's lanes, under the same checkpoint identities
    // runCells uses (cell_ckpt_spec / cell_label there): resuming
    // here finds a continuous run's checkpoints and vice versa.
    std::vector<std::string> labels;
    std::vector<std::uint64_t> lane_spec;
    std::vector<std::function<std::unique_ptr<Prefetcher>()>>
        factories;
    if (!engine) {
        labels.push_back("baseline");
        lane_spec.push_back(storeDigest("cell:baseline:v1"));
        factories.push_back(
            [] { return std::unique_ptr<Prefetcher>(); });
        if (config_.enableTiming) {
            EngineOptions options;
            options.scientific = scientific;
            labels.push_back("stride");
            lane_spec.push_back(
                engineSpecDigest("stride", options));
            factories.push_back([this, &registry, options] {
                return registry.make("stride", config_.system,
                                     options);
            });
        }
    } else {
        EngineOptions options = engine->options;
        options.scientific = options.scientific || scientific;
        labels.push_back(engine->resultLabel());
        lane_spec.push_back(
            engineSpecDigest(engine->engine, options));
        const std::string name = engine->engine;
        factories.push_back([this, &registry, name, options] {
            return registry.make(name, config_.system, options);
        });
    }

    // The shared boundary schedule plus any off-schedule resume
    // candidates; all read-only by the time callbacks fire.
    std::map<std::size_t, std::uint64_t> prefix_memo;
    std::vector<std::size_t> bounds =
        checkpointBounds(size, checkpointEvery_, segments_);
    {
        std::vector<std::uint64_t> digests =
            tracePrefixDigests(trace, bounds);
        for (std::size_t b = 0; b < bounds.size(); ++b)
            prefix_memo[bounds[b]] = digests[b];
        if (prefix_memo.find(seg_end) == prefix_memo.end())
            prefix_memo[seg_end] =
                tracePrefixDigests(trace, {seg_end})[0];
    }

    BatchSimulator sim;
    std::vector<std::unique_ptr<Prefetcher>> lane_engines;
    for (std::size_t k = 0; k < factories.size(); ++k) {
        lane_engines.push_back(factories[k]());
        sim.addLane(sim_params, lane_engines.back().get(), warmup);
    }

    // Per-lane trusted resume, capped at seg_end: the common case
    // restores the predecessor segment's seg_begin checkpoint; a
    // lane whose seg_end checkpoint already exists has nothing
    // left to step.
    std::size_t lanes_finished = 0;
    for (std::size_t k = 0; k < lane_engines.size(); ++k) {
        auto candidates = store_->listCheckpointIndices(
            lane_spec[k], ckptConfigDigest_);
        std::vector<std::size_t> usable;
        for (std::uint64_t c : candidates)
            if (c > 0 && c <= seg_end)
                usable.push_back(static_cast<std::size_t>(c));
        std::vector<std::size_t> missing;
        for (std::size_t c : usable)
            if (prefix_memo.find(c) == prefix_memo.end())
                missing.push_back(c);
        if (!missing.empty()) {
            auto computed = tracePrefixDigests(trace, missing);
            for (std::size_t m = 0; m < missing.size(); ++m)
                prefix_memo[missing[m]] = computed[m];
        }
        std::size_t resume = 0;
        std::sort(usable.begin(), usable.end());
        for (std::size_t c = usable.size(); c-- > 0;) {
            std::uint64_t state = checkpointStateDigest(
                prefix_memo[usable[c]], usable[c], warmup);
            auto blob = store_->loadCheckpoint(
                lane_spec[k], ckptConfigDigest_, usable[c], state);
            if (!blob)
                continue;
            std::uint64_t decoded = 0;
            if (decodeCheckpoint(*blob, sim.simulator(k),
                                 &decoded) &&
                decoded == usable[c]) {
                resume = usable[c];
                break;
            }
            store_->dropCheckpoint(lane_spec[k], ckptConfigDigest_,
                                   usable[c], state);
            lane_engines[k] = factories[k]();
            sim.rebuildLane(k, lane_engines[k].get());
        }
        if (resume > 0) {
            resumedRuns_.fetch_add(1);
            resumedRecordsSkipped_.fetch_add(resume);
            driverMetrics().cellResumed.add();
            driverMetrics().ckptSkippedRecords.add(resume);
        }
        if (resume == seg_end)
            lanes_finished++;
        sim.setLaneRange(k, resume, seg_end);
        std::vector<std::size_t> lane_bounds;
        for (std::size_t b : bounds)
            if (b > resume && b < seg_end)
                lane_bounds.push_back(b);
        sim.setLaneBoundaries(k, std::move(lane_bounds));
    }
    if (lanes_finished == lane_engines.size())
        return true; // the whole segment is already committed

    // Interior boundaries fire through the boundary callback; the
    // lane's own end index never does (runSegments convention), so
    // the segment's deliverable — the seg_end checkpoint the
    // successor unit resumes from — comes from the lane-end
    // observer. Both run concurrently from lane worker threads.
    auto write_ckpt = [&](std::size_t lane, std::size_t index,
                          PrefetchSimulator &lane_sim) {
        ScopedSpan write_span("ckpt.write", "ckpt");
        if (write_span.active()) {
            write_span.arg("lane",
                           static_cast<std::uint64_t>(lane));
            write_span.arg("index",
                           static_cast<std::uint64_t>(index));
        }
        StoredCheckpointMeta meta;
        meta.workload = workload->name();
        meta.engine = labels[lane];
        meta.index = index;
        meta.warmup = warmup;
        store_->putCheckpoint(
            lane_spec[lane], ckptConfigDigest_, index,
            checkpointStateDigest(prefix_memo.at(index), index,
                                  warmup),
            encodeCheckpoint(lane_sim, index), meta);
        checkpointsWritten_.fetch_add(1);
        driverMetrics().ckptWritten.add();
    };
    sim.setBoundaryCallback(write_ckpt);
    sim.setLaneEndCallback(write_ckpt);

    sim.runSegments(trace, jobs_);
    return true;
}

std::vector<WorkloadResult>
ExperimentDriver::run(const SweepPlan &plan)
{
    return run(plan, planEngineSpecs(plan));
}

std::vector<WorkloadResult>
ExperimentDriver::run(const SweepPlan &plan,
                      const std::vector<EngineSpec> &engines)
{
    applyPlan(plan);
    return run(plan.workloads, engines);
}

std::vector<WorkloadResult>
ExperimentDriver::runSuite(const std::vector<EngineSpec> &engines)
{
    return run(WorkloadRegistry::instance().names(), engines);
}

WorkloadResult
ExperimentDriver::runWorkload(
    const Workload &workload, const std::vector<EngineSpec> &engines,
    std::optional<std::uint64_t> trace_digest)
{
    auto results = runCells({&workload}, engines,
                            /*cacheable=*/false, trace_digest);
    return std::move(results.at(0));
}

void
ExperimentDriver::forEachTrace(
    const std::vector<std::string> &workloads,
    const std::function<void(std::size_t, const Workload &,
                             const Trace &)> &fn)
{
    std::vector<std::unique_ptr<Workload>> owned;
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        auto w = WorkloadRegistry::instance().make(workloads[i]);
        if (!w)
            continue;
        owned.push_back(std::move(w));
        indices.push_back(i);
    }
    dispatch(owned.size(), [&](std::size_t k) {
        const Workload &w = *owned[k];
        Trace trace = materializeTrace(w, nullptr);
        fn(indices[k], w, trace);
    });
}

} // namespace stems
