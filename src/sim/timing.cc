#include "sim/timing.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/state_codec.hh"

namespace stems {

TimingModel::TimingModel(TimingParams params) : params_(params)
{
    // The ring must reach the farthest lookback: the dependence cap,
    // or every access inside the instruction window (each access is
    // at least one instruction).
    std::size_t ring = std::max(params_.maxDepDistance + 1,
                                params_.robInstructions + 1) +
                       8;
    completionRing_.assign(ring, 0.0);
    retireRing_.assign(ring, 0.0);
    instrEndRing_.assign(ring, 0);
    missRing_.assign(params_.mshrs + 1, 0.0);
    if (params_.issueWidth <= 0)
        fatal("TimingModel: issue width must be positive");
}

double
TimingModel::completionOf(std::uint64_t index) const
{
    return completionRing_[static_cast<std::size_t>(
        index % completionRing_.size())];
}

void
TimingModel::demandAccess(const MemRecord &r, AccessLevel level,
                          double ready_time)
{
    const std::size_t ring = completionRing_.size();

    // Compute gap since the previous access.
    double issue = lastIssue_ + (1.0 + r.cpuOps) / params_.issueWidth;

    // ROB reach: this access's instruction cannot issue until the
    // instruction robInstructions older has retired. Advance the
    // gate to the most recent access wholly outside the window.
    if (instructions_ >= params_.robInstructions) {
        std::uint64_t horizon =
            instructions_ - params_.robInstructions;
        while (robGate_ + 1 < accessIndex_ &&
               robGate_ + ring > accessIndex_ &&
               instrEndRing_[static_cast<std::size_t>((robGate_ + 1) %
                                                      ring)] <=
                   horizon) {
            ++robGate_;
        }
        if (accessIndex_ > 0 && robGate_ < accessIndex_ &&
            robGate_ + ring > accessIndex_ &&
            instrEndRing_[static_cast<std::size_t>(robGate_ %
                                                   ring)] <= horizon) {
            issue = std::max(
                issue, retireRing_[static_cast<std::size_t>(
                           robGate_ % ring)]);
        }
    }

    // Address dependence: pointer chases serialize on the producer.
    if (r.depDist > 0 && r.depDist <= params_.maxDepDistance &&
        r.depDist <= accessIndex_) {
        issue = std::max(issue,
                         completionOf(accessIndex_ - r.depDist));
    }

    double completion = issue;
    if (r.isWrite()) {
        // Store-wait-free: no core stall. Off-chip write misses
        // consume channel bandwidth.
        if (level == AccessLevel::kMemory) {
            double slot = std::max(channelFree_, issue);
            channelFree_ = slot + params_.channelInterval;
        }
        completion = issue + params_.l1Latency;
    } else {
        switch (level) {
          case AccessLevel::kL1:
            completion = issue + params_.l1Latency;
            break;
          case AccessLevel::kL2:
          case AccessLevel::kL2Prefetch:
            completion = issue + params_.l2Latency;
            if (level == AccessLevel::kL2Prefetch &&
                ready_time > issue) {
                // The prefetch has not completed: residual latency.
                completion = ready_time + params_.l2Latency;
            }
            break;
          case AccessLevel::kSvb:
            completion =
                std::max(issue, ready_time) + params_.svbLatency;
            break;
          case AccessLevel::kMemory: {
            // MSHR occupancy bounds outstanding misses.
            if (missIndex_ >= params_.mshrs) {
                issue = std::max(
                    issue,
                    missRing_[static_cast<std::size_t>(
                        (missIndex_ - params_.mshrs) %
                        missRing_.size())]);
            }
            double slot = std::max(channelFree_, issue);
            channelFree_ = slot + params_.channelInterval;
            completion = slot + params_.memLatency;
            missRing_[static_cast<std::size_t>(missIndex_ %
                                               missRing_.size())] =
                completion;
            ++missIndex_;
            break;
          }
        }
    }

    // In-order retirement.
    lastRetire_ = std::max(lastRetire_, completion);
    instructions_ += 1 + r.cpuOps;

    std::size_t slot = static_cast<std::size_t>(accessIndex_ % ring);
    completionRing_[slot] = completion;
    retireRing_[slot] = lastRetire_;
    instrEndRing_[slot] = instructions_;
    ++accessIndex_;

    lastIssue_ = issue;
    maxCompletion_ = std::max(maxCompletion_, completion);
}

double
TimingModel::prefetchIssued()
{
    double slot = std::max(channelFree_, lastIssue_);
    channelFree_ = slot + params_.channelInterval;
    return slot + params_.memLatency;
}

namespace {
constexpr std::uint32_t kTimingTag = stateTag('T', 'I', 'M', 'E');
} // namespace

void
TimingModel::saveState(StateWriter &w) const
{
    w.tag(kTimingTag);
    w.u64(completionRing_.size());
    w.u64(missRing_.size());
    w.f64(lastIssue_);
    w.f64(maxCompletion_);
    w.f64(channelFree_);
    w.f64(lastRetire_);
    w.u64(instructions_);
    w.u64(accessIndex_);
    w.u64(missIndex_);
    w.u64(robGate_);
    for (double v : completionRing_)
        w.f64(v);
    for (double v : retireRing_)
        w.f64(v);
    for (std::uint64_t v : instrEndRing_)
        w.u64(v);
    for (double v : missRing_)
        w.f64(v);
}

void
TimingModel::loadState(StateReader &r)
{
    r.tag(kTimingTag);
    if (r.u64() != completionRing_.size() ||
        r.u64() != missRing_.size()) {
        r.fail();
        return;
    }
    lastIssue_ = r.f64();
    maxCompletion_ = r.f64();
    channelFree_ = r.f64();
    lastRetire_ = r.f64();
    instructions_ = r.u64();
    accessIndex_ = r.u64();
    missIndex_ = r.u64();
    robGate_ = r.u64();
    for (double &v : completionRing_)
        v = r.f64();
    for (double &v : retireRing_)
        v = r.f64();
    for (std::uint64_t &v : instrEndRing_)
        v = r.u64();
    for (double &v : missRing_)
        v = r.f64();
}

} // namespace stems
