/**
 * @file
 * System configuration (paper Table 1) bundling the cache geometry,
 * timing parameters and every engine's defaults, plus the experiment
 * knobs shared by the benchmark harnesses.
 */

#ifndef STEMS_SIM_CONFIG_HH
#define STEMS_SIM_CONFIG_HH

#include <algorithm>
#include <string>

#include "core/stems.hh"
#include "mem/hierarchy.hh"
#include "prefetch/sms.hh"
#include "prefetch/stride.hh"
#include "prefetch/tms.hh"
#include "sim/timing.hh"

namespace stems {

/** Full modelled-system configuration. */
struct SystemConfig
{
    HierarchyParams hierarchy;
    TimingParams timing;
    StrideParams stride;
    TmsParams tms;
    SmsParams sms;
    StemsParams stems;
};

/** The paper's Table 1 configuration. */
SystemConfig defaultSystemConfig();

/** Human-readable description of a configuration (Table 1 style). */
std::string describeSystem(const SystemConfig &config);

/** Experiment knobs shared by the benches. */
struct ExperimentConfig
{
    SystemConfig system;
    /// Records generated per workload trace.
    std::size_t traceRecords = 2'000'000;
    /// Leading fraction of the trace used as warmup (the paper
    /// launches measurements from warmed checkpoints).
    double warmupFraction = 0.5;
    /// Absolute warmup override: when nonzero, exactly this many
    /// leading records train unmeasured (clamped to the trace
    /// length) and warmupFraction is ignored. Incremental sweeps
    /// (sim/driver.hh segmented execution) use this so extending
    /// --records keeps the warmup boundary — and therefore the
    /// simulated prefix — identical.
    std::size_t warmupRecords = 0;
    /// Trace-generation seed.
    std::uint64_t seed = 42;
    /// Model timing (Figure 10) or run functional-only (Figure 9).
    bool enableTiming = false;
};

/** The warmup-record count a run over `trace_size` records uses:
 *  the absolute override when set, else the warmup fraction. Shared
 *  by the driver and the serial reference runner so their cells stay
 *  bitwise comparable. */
inline std::size_t
effectiveWarmupRecords(const ExperimentConfig &config,
                       std::size_t trace_size)
{
    if (config.warmupRecords > 0)
        return std::min(config.warmupRecords, trace_size);
    return static_cast<std::size_t>(trace_size *
                                    config.warmupFraction);
}

} // namespace stems

#endif // STEMS_SIM_CONFIG_HH
