/**
 * @file
 * System configuration (paper Table 1) bundling the cache geometry,
 * timing parameters and every engine's defaults, plus the experiment
 * knobs shared by the benchmark harnesses.
 */

#ifndef STEMS_SIM_CONFIG_HH
#define STEMS_SIM_CONFIG_HH

#include <string>

#include "core/stems.hh"
#include "mem/hierarchy.hh"
#include "prefetch/sms.hh"
#include "prefetch/stride.hh"
#include "prefetch/tms.hh"
#include "sim/timing.hh"

namespace stems {

/** Full modelled-system configuration. */
struct SystemConfig
{
    HierarchyParams hierarchy;
    TimingParams timing;
    StrideParams stride;
    TmsParams tms;
    SmsParams sms;
    StemsParams stems;
};

/** The paper's Table 1 configuration. */
SystemConfig defaultSystemConfig();

/** Human-readable description of a configuration (Table 1 style). */
std::string describeSystem(const SystemConfig &config);

/** Experiment knobs shared by the benches. */
struct ExperimentConfig
{
    SystemConfig system;
    /// Records generated per workload trace.
    std::size_t traceRecords = 2'000'000;
    /// Leading fraction of the trace used as warmup (the paper
    /// launches measurements from warmed checkpoints).
    double warmupFraction = 0.5;
    /// Trace-generation seed.
    std::uint64_t seed = 42;
    /// Model timing (Figure 10) or run functional-only (Figure 9).
    bool enableTiming = false;
};

} // namespace stems

#endif // STEMS_SIM_CONFIG_HH
