/**
 * @file
 * Speculative segment-parallel cold execution.
 *
 * A cold cell's trace is inherently sequential — but when a previous
 * run (shorter, stale, different seed, or prior engine version) left
 * checkpoints behind, those blobs predict the simulator state at
 * interior trace indices. runSpeculativeCell() splits the trace at
 * the predicted boundaries and runs every segment as a parallel
 * lane: segment 0 starts cold, segment k+1 starts from the stored
 * blob at its start boundary while segment k re-executes the records
 * that *produce* that boundary state.
 *
 * Validation is a byte comparison: when segment k reaches its end
 * boundary, its live state is re-encoded (sim/checkpoint.hh, whose
 * v2 payloads are a pure function of logical state) and compared
 * against the seed blob segment k+1 started from.
 *
 *   - match   -> COMMIT: segment k+1's execution was built on the
 *     true state, so its results are exactly what a continuous run
 *     would have produced.
 *   - mismatch -> ROLLBACK: every segment at or past the mismatch is
 *     discarded and the suffix re-executes sequentially from the
 *     last validated live state.
 *
 * Either way the output is bitwise identical to continuous
 * simulation; mis-speculation costs only wall-clock. The commit
 * argument is inductive: segment 0 is trivially the continuous
 * prefix, and a committed boundary k proves segment k+1's seed state
 * equals the continuous state there (byte-equal blobs restore to
 * behaviourally identical simulators — the save/load round-trip pin
 * of tests/checkpoint_test.cc), so the last segment of an all-commit
 * cascade ends in the continuous end state, accumulated SimStats
 * included.
 *
 * The driver (sim/driver.hh `setSpeculate`) feeds this from stored
 * candidates and never writes speculative state back to the store
 * until it has been validated here.
 */

#ifndef STEMS_SIM_SPECULATE_HH
#define STEMS_SIM_SPECULATE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sim/prefetch_sim.hh"

namespace stems {

/** One stored checkpoint blob predicting the state at an interior
 *  trace index — the start state of a speculative segment. */
struct SpeculationSeed
{
    std::size_t index = 0;             ///< boundary the blob claims
    std::vector<std::uint8_t> blob;    ///< framed checkpoint bytes
};

/** Result of one speculative cell execution. */
struct SpeculationOutcome
{
    /// Final measured statistics — bitwise identical to a continuous
    /// run of the same cell.
    SimStats stats;
    /// The engine whose training produced `stats` (for probes); null
    /// for engineless (baseline) cells.
    std::unique_ptr<Prefetcher> engine;
    std::size_t segments = 0;   ///< parallel lanes dispatched
    std::size_t commits = 0;    ///< boundaries that validated
    std::size_t mispredicts = 0; ///< 0 or 1 (first mismatch rolls
                                 ///< back every later segment)
    /// Records re-executed sequentially after the rollback (0 on an
    /// all-commit cascade).
    std::size_t replayedRecords = 0;
    /// Boundary blobs proven correct — safe for the caller to
    /// persist under trusted keys. Always includes the end-of-trace
    /// pre-finish state; on rollback, also the corrected blob at the
    /// mispredicted boundary.
    std::vector<std::pair<std::size_t, std::vector<std::uint8_t>>>
        validated;
};

/** Builds one engine instance per segment lane; may return null for
 *  engineless cells. Called once per lane plus once per seed for
 *  decode pre-validation, so it must be cheap and deterministic. */
using SpeculationEngineFactory =
    std::function<std::unique_ptr<Prefetcher>()>;

/**
 * Execute one cell speculatively.
 *
 * Seeds are sorted, de-duplicated by index, and filtered to interior
 * indices (0 < index < trace size); a seed whose blob fails framing
 * or structural decode is dropped (it predicts nothing usable). When
 * no seed survives — nothing to speculate on — returns nullopt and
 * the caller falls back to its normal cold path.
 *
 * @param params   system configuration of the cell.
 * @param warmup   warmup boundary (records before it are unmeasured).
 * @param trace    the full trace; must stay alive through the call.
 * @param make_engine  per-lane engine factory (see above).
 * @param seeds    candidate start states (need not be trustworthy).
 * @param jobs     worker threads for the parallel segment pass.
 */
std::optional<SpeculationOutcome>
runSpeculativeCell(const SimParams &params, std::size_t warmup,
                   const Trace &trace,
                   const SpeculationEngineFactory &make_engine,
                   std::vector<SpeculationSeed> seeds, unsigned jobs);

} // namespace stems

#endif // STEMS_SIM_SPECULATE_HH
