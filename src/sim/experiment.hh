/**
 * @file
 * Experiment runner: generates each workload's trace, runs the
 * requested prefetch engines over it, and produces the normalized
 * metrics the paper's Figures 9 and 10 report.
 *
 * Normalization follows Section 5.5: covered, uncovered and
 * overpredicted counts are expressed relative to the off-chip read
 * misses of the *no-prefetch* system, and speedups are relative to
 * the baseline system with only a stride prefetcher (Table 1).
 */

#ifndef STEMS_SIM_EXPERIMENT_HH
#define STEMS_SIM_EXPERIMENT_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "prefetch/engine_registry.hh"
#include "sim/config.hh"
#include "sim/prefetch_sim.hh"
#include "workloads/workload.hh"

namespace stems {

/** Metrics for one engine on one workload. */
struct EngineResult
{
    std::string engine;
    SimStats stats;
    /// covered / baseline off-chip read misses.
    double coverage = 0.0;
    /// uncovered / baseline off-chip read misses.
    double uncovered = 0.0;
    /// overpredictions / baseline off-chip read misses.
    double overprediction = 0.0;
    /// baseline-with-stride cycles / this engine's cycles (timing
    /// runs only; 0 otherwise).
    double speedup = 0.0;
    /// Engine-specific metrics collected by an EngineSpec probe
    /// (e.g. the reconstruction displacement distribution).
    std::map<std::string, double> extra;
};

/** All engines' metrics for one workload. */
struct WorkloadResult
{
    std::string workload;
    WorkloadClass workloadClass = WorkloadClass::kOltp;
    std::uint64_t baselineMisses = 0; ///< no-prefetch read misses
    double baselineIpc = 0.0;         ///< stride-baseline IPC
    double baselineCycles = 0.0;      ///< no-prefetch cycles (timing)
    double strideCycles = 0.0;        ///< stride-baseline cycles
    std::vector<EngineResult> engines;

    /** Result for a named engine; null when absent. */
    const EngineResult *find(const std::string &engine) const;
};

/**
 * Serial reference runner: builds engines via the EngineRegistry and
 * runs workload/engine sweeps one cell at a time, recomputing the
 * baselines on every call. Production sweeps should use the parallel,
 * baseline-caching ExperimentDriver (sim/driver.hh); this class is
 * kept as the independent serial reference the driver is validated
 * against.
 */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(ExperimentConfig config);

    /**
     * Instantiate a registered engine by name ("stride", "tms",
     * "sms", "stems", "tms+sms", plus any extensions). @return null
     * for unknown names.
     *
     * @param scientific  apply the scientific-workload lookahead of
     *                    12 (paper Section 4.3).
     */
    std::unique_ptr<Prefetcher> makeEngine(const std::string &name,
                                           bool scientific) const;

    /**
     * Run a list of engines over one workload. Always also runs the
     * no-prefetch baseline (for miss normalization) and, when timing
     * is enabled, the stride baseline (for speedups).
     */
    WorkloadResult runWorkload(const Workload &workload,
                               const std::vector<std::string> &engines);

    /** Run engines over the whole paper suite. */
    std::vector<WorkloadResult>
    runSuite(const std::vector<std::string> &engines);

    /** The configuration in use. */
    const ExperimentConfig &config() const { return config_; }

  private:
    ExperimentConfig config_;
};

} // namespace stems

#endif // STEMS_SIM_EXPERIMENT_HH
