/**
 * @file
 * The trace-driven prefetch simulator: drives demand traffic through
 * L1 -> L2 -> (SVB) -> memory, feeds the training hooks of an attached
 * prefetch engine, materializes its prefetch requests, and accounts
 * coverage and overprediction the way the paper's Figure 9 does:
 *
 *  - covered:        a demand read that would have gone off-chip was
 *                    satisfied by a prefetched block (SVB hit or
 *                    prefetch-tagged L2 hit);
 *  - uncovered:      an off-chip demand read miss;
 *  - overpredicted:  a prefetched block discarded without use
 *                    (evicted, invalidated, or left over at the end).
 *
 * When timing is enabled, every access also flows through the
 * TimingModel, and prefetches are stamped with fetch-completion times
 * so late prefetches pay residual latency.
 */

#ifndef STEMS_SIM_PREFETCH_SIM_HH
#define STEMS_SIM_PREFETCH_SIM_HH

#include <memory>
#include <unordered_map>

#include "mem/hierarchy.hh"
#include "mem/svb.hh"
#include "prefetch/prefetcher.hh"
#include "sim/timing.hh"
#include "trace/trace.hh"
#include "trace/trace_source.hh"

namespace stems {

/** Simulator configuration. */
struct SimParams
{
    HierarchyParams hierarchy;
    bool enableTiming = false;
    TimingParams timing;
};

/** Aggregated simulation statistics (measured window only). */
struct SimStats
{
    std::uint64_t records = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t invalidates = 0;

    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0; ///< ordinary L2 hits
    std::uint64_t l2PrefetchHits = 0; ///< covered via prefetch tag
    std::uint64_t svbHits = 0;        ///< covered via the SVB
    std::uint64_t offChipReads = 0;   ///< uncovered read misses
    std::uint64_t offChipWrites = 0;

    std::uint64_t prefetchesIssued = 0;
    std::uint64_t overpredictions = 0;

    double cycles = 0.0;
    std::uint64_t instructions = 0;

    /** Read misses eliminated by prefetching. */
    std::uint64_t covered() const { return svbHits + l2PrefetchHits; }

    /** Off-chip read events (baseline miss order length). */
    std::uint64_t
    offChipReadEvents() const
    {
        return covered() + offChipReads;
    }

    /** Aggregate user IPC (the paper's performance metric). */
    double
    ipc() const
    {
        return cycles > 0 ? instructions / cycles : 0.0;
    }
};

/**
 * Runs one engine (or none, for the no-prefetch baseline) over a
 * trace.
 */
class PrefetchSimulator
{
  public:
    /**
     * @param params  system configuration.
     * @param engine  attached engine; may be null (baseline). Not
     *                owned.
     */
    PrefetchSimulator(const SimParams &params, Prefetcher *engine);

    /** Process one record. */
    void step(const MemRecord &r);

    /**
     * Process a whole trace and finalize accounting.
     *
     * @param warmup_records  leading records that train state without
     *                        being measured.
     */
    void run(const Trace &trace, std::size_t warmup_records = 0);

    /**
     * Process every record a TraceSource yields (the source is reset
     * first) and finalize accounting. Record-for-record equivalent to
     * run(const Trace &): an mmap replay of a stored trace produces
     * bitwise-identical statistics. This is the streaming entry for
     * single-engine replay of big on-disk traces (no record vector
     * is materialized); the ExperimentDriver instead materializes
     * each trace once so many engine cells can share it.
     */
    void run(TraceSource &source, std::size_t warmup_records = 0);

    /** Enable/disable measurement (training always continues). */
    void setMeasuring(bool on);

    /** Flush end-of-run state (leftover prefetches become drops). */
    void finish();

    /** Statistics for the measured window. */
    const SimStats &stats() const { return stats_; }

    /** The attached engine (may be null). */
    Prefetcher *engine() const { return engine_; }

    /**
     * Serialize the complete simulator state — hierarchy, SVB,
     * timing, accounting, and the attached engine's state — so an
     * identically-constructed simulator can resume mid-trace
     * bitwise-exactly (sim/checkpoint.hh frames this into a
     * CRC-checked blob).
     */
    void saveState(StateWriter &w) const;

    /**
     * Restore state written by saveState. The simulator must have
     * been constructed with the same SimParams and an engine of the
     * same specification (or none, matching the saved run);
     * structural mismatches fail the reader without touching the
     * trace contract.
     */
    void loadState(StateReader &r);

  private:
    void drainAndIssue();
    void handleSvbVictim(const StreamedValueBuffer::Entry &e);

    SimParams params_;
    Hierarchy hier_;
    std::unique_ptr<StreamedValueBuffer> svb_;
    TimingModel timing_;
    Prefetcher *engine_;

    /** Ready times of prefetch-tagged L2 blocks (timing only). */
    std::unordered_map<Addr, double> l2PrefetchReady_;

    std::uint64_t missSeq_ = 0;
    bool measuring_ = true;
    bool finished_ = false;
    double cyclesAtMeasureStart_ = 0.0;
    std::uint64_t instrAtMeasureStart_ = 0;
    SimStats stats_;
    std::vector<PrefetchRequest> reqScratch_;
};

} // namespace stems

#endif // STEMS_SIM_PREFETCH_SIM_HH
