#include "sim/batch_sim.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/metrics.hh"
#include "obs/trace_span.hh"

namespace stems {

namespace {

/** Registry instruments, resolved once (stable for process life). */
struct BatchMetrics
{
    LatencyHistogram &chunkNs;
    Counter &recordSteps;

    BatchMetrics()
        : chunkNs(
              MetricsRegistry::instance().histogram("batch.chunk_ns")),
          recordSteps(
              MetricsRegistry::instance().counter("batch.record_steps"))
    {
    }
};

BatchMetrics &
batchMetrics()
{
    static BatchMetrics metrics;
    return metrics;
}

} // namespace

std::size_t
BatchSimulator::addLane(const SimParams &params, Prefetcher *engine,
                        std::size_t warmup_records)
{
    Lane lane;
    lane.sim = std::make_unique<PrefetchSimulator>(params, engine);
    lane.params = params;
    lane.engine = engine;
    lane.warmup = warmup_records;
    if (lane.warmup > 0)
        lane.sim->setMeasuring(false);
    lanes_.push_back(std::move(lane));
    return lanes_.size() - 1;
}

void
BatchSimulator::rebuildLane(std::size_t lane_index,
                            Prefetcher *engine)
{
    Lane &lane = lanes_.at(lane_index);
    lane.engine = engine;
    lane.sim =
        std::make_unique<PrefetchSimulator>(lane.params, engine);
    if (lane.warmup > 0)
        lane.sim->setMeasuring(false);
    lane.start = 0;
    lane.nextBoundary = 0;
}

void
BatchSimulator::setLaneStart(std::size_t lane_index,
                             std::size_t start_index)
{
    lanes_.at(lane_index).start = start_index;
}

void
BatchSimulator::setLaneRange(std::size_t lane_index,
                             std::size_t start_index,
                             std::size_t end_index)
{
    Lane &lane = lanes_.at(lane_index);
    lane.start = start_index;
    lane.end = end_index;
}

void
BatchSimulator::setLaneBoundaries(std::size_t lane_index,
                                  std::vector<std::size_t> boundaries)
{
    Lane &lane = lanes_.at(lane_index);
    lane.boundaries = std::move(boundaries);
    lane.nextBoundary = 0;
}

void
BatchSimulator::runLaneChunk(std::size_t lane_index,
                             const MemRecord *records,
                             std::size_t first, std::size_t count)
{
    // Mirrors PrefetchSimulator::run exactly: the measuring flip at
    // index == warmup is a no-op for warmup == 0 lanes (already on),
    // so the lane's step sequence matches a standalone run bitwise.
    // A resumed lane skips everything below its start index — flip
    // included, since the checkpointed state already contains it.
    Lane &lane = lanes_[lane_index];
    PrefetchSimulator &sim = *lane.sim;
    if (first + count <= lane.start)
        return; // whole chunk inside the resumed prefix
    if (first >= lane.end)
        return; // whole chunk past the lane's range end
    std::size_t skip = lane.start > first ? lane.start - first : 0;
    if (lane.end < first + count)
        count = lane.end - first;
    batchMetrics().recordSteps.add(count - skip);
    for (std::size_t i = skip; i < count; ++i) {
        std::size_t global = first + i;
        if (lane.nextBoundary < lane.boundaries.size() &&
            lane.boundaries[lane.nextBoundary] == global) {
            if (boundary_)
                boundary_(lane_index, global, sim);
            ++lane.nextBoundary;
        }
        if (global == lane.warmup)
            sim.setMeasuring(true);
        sim.step(records[i]);
    }
}

void
BatchSimulator::runChunk(const MemRecord *records, std::size_t first,
                         std::size_t count, unsigned jobs)
{
    ScopedSpan span("batch.chunk", "batch");
    if (span.active()) {
        span.arg("first", static_cast<std::uint64_t>(first));
        span.arg("records", static_cast<std::uint64_t>(count));
        span.arg("lanes",
                 static_cast<std::uint64_t>(lanes_.size()));
    }
    const auto chunk_start = std::chrono::steady_clock::now();
    // Lane-major within the chunk: a lane's tables stay hot for the
    // whole chunk while the chunk's records are served from cache
    // for every lane after the first. (Record-major — all lanes per
    // record — reloads every lane's working set per record and is
    // measurably slower.)
    const auto record_chunk_ns = [&chunk_start] {
        batchMetrics().chunkNs.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - chunk_start)
                .count()));
    };
    std::size_t workers =
        std::min<std::size_t>(jobs, lanes_.size());
    if (workers <= 1) {
        for (std::size_t li = 0; li < lanes_.size(); ++li)
            runLaneChunk(li, records, first, count);
        record_chunk_ns();
        return;
    }

    // Lanes are mutually independent, so they can advance through
    // the shared chunk concurrently; threads claim lanes dynamically
    // to absorb heterogeneous lane costs.
    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr error;
    auto body = [&] {
        for (;;) {
            std::size_t li =
                next.fetch_add(1, std::memory_order_relaxed);
            if (li >= lanes_.size())
                break;
            try {
                runLaneChunk(li, records, first, count);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!error)
                    error = std::current_exception();
            }
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t t = 0; t + 1 < workers; ++t)
        pool.emplace_back(body);
    body();
    for (std::thread &t : pool)
        t.join();
    if (error)
        std::rethrow_exception(error);
    record_chunk_ns();
}

void
BatchSimulator::finishAll(std::size_t total_records)
{
    for (std::size_t li = 0; li < lanes_.size(); ++li) {
        Lane &lane = lanes_[li];
        // An end-of-trace boundary captures the pre-finish state, so
        // a resumed run re-executes finish() exactly once, like the
        // continuous run it mirrors.
        while (lane.nextBoundary < lane.boundaries.size() &&
               lane.boundaries[lane.nextBoundary] <= total_records) {
            if (lane.boundaries[lane.nextBoundary] ==
                    total_records &&
                boundary_) {
                boundary_(li, total_records, *lane.sim);
            }
            ++lane.nextBoundary;
        }
        lane.sim->finish();
    }
}

void
BatchSimulator::runLaneRange(std::size_t lane_index,
                             const Trace &trace)
{
    Lane &lane = lanes_[lane_index];
    std::size_t end = std::min(lane.end, trace.size());
    ScopedSpan span("batch.segment", "batch");
    if (span.active()) {
        span.arg("lane", static_cast<std::uint64_t>(lane_index));
        span.arg("first", static_cast<std::uint64_t>(lane.start));
        span.arg("end", static_cast<std::uint64_t>(end));
    }
    for (std::size_t pos = lane.start; pos < end;
         pos += kChunkRecords) {
        std::size_t count = std::min(end - pos, kChunkRecords);
        runLaneChunk(lane_index, trace.data() + pos, pos, count);
    }
    if (laneEnd_)
        laneEnd_(lane_index, end, *lane.sim);
}

void
BatchSimulator::runSegments(const Trace &trace, unsigned jobs)
{
    // Lane-at-a-time, lanes in parallel: with disjoint per-lane
    // ranges the run() chunk traversal would leave every thread but
    // one idle per chunk, so here each worker owns whole lanes.
    std::size_t workers = std::min<std::size_t>(
        std::max(1u, jobs), lanes_.size());
    if (workers <= 1) {
        for (std::size_t li = 0; li < lanes_.size(); ++li)
            runLaneRange(li, trace);
        return;
    }
    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr error;
    auto body = [&] {
        for (;;) {
            std::size_t li =
                next.fetch_add(1, std::memory_order_relaxed);
            if (li >= lanes_.size())
                break;
            try {
                runLaneRange(li, trace);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!error)
                    error = std::current_exception();
            }
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t t = 0; t + 1 < workers; ++t)
        pool.emplace_back(body);
    body();
    for (std::thread &t : pool)
        t.join();
    if (error)
        std::rethrow_exception(error);
}

void
BatchSimulator::run(const Trace &trace, unsigned jobs)
{
    for (std::size_t start = 0; start < trace.size();
         start += kChunkRecords) {
        std::size_t count =
            std::min(trace.size() - start, kChunkRecords);
        runChunk(trace.data() + start, start, count, jobs);
    }
    finishAll(trace.size());
}

void
BatchSimulator::run(TraceSource &source, unsigned jobs)
{
    source.reset();
    std::vector<MemRecord> chunk(kChunkRecords);
    std::size_t first = 0;
    for (;;) {
        std::size_t count = 0;
        while (count < kChunkRecords && source.next(chunk[count]))
            ++count;
        if (count == 0)
            break;
        runChunk(chunk.data(), first, count, jobs);
        first += count;
        if (count < kChunkRecords)
            break;
    }
    finishAll(first);
}

} // namespace stems
