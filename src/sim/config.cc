#include "sim/config.hh"

#include <sstream>

namespace stems {

SystemConfig
defaultSystemConfig()
{
    // All defaults in the member structs already encode Table 1 /
    // Section 4.3; this function exists so call sites have one
    // explicit source of configuration.
    return SystemConfig{};
}

std::string
describeSystem(const SystemConfig &c)
{
    std::ostringstream os;
    os << "Modelled node (paper Table 1)\n"
       << "  Core        : " << c.timing.issueWidth
       << "-wide OoO approximation, ROB reach "
       << c.timing.robInstructions << " instructions, "
       << c.timing.mshrs
       << " MSHRs, store-wait-free\n"
       << "  L1D         : " << c.hierarchy.l1Bytes / 1024 << " KB "
       << c.hierarchy.l1Ways << "-way, 64 B blocks, "
       << c.timing.l1Latency << "-cycle load-to-use\n"
       << "  L2          : "
       << c.hierarchy.l2Bytes / (1024 * 1024) << " MB "
       << c.hierarchy.l2Ways << "-way, 64 B blocks, "
       << c.timing.l2Latency << "-cycle hit\n"
       << "  Memory      : " << c.timing.memLatency
       << "-cycle latency, 1 fetch per "
       << c.timing.channelInterval << " cycles channel bandwidth\n"
       << "  Stride      : " << c.stride.tableEntries
       << " PC entries, " << c.stride.bufferEntries
       << "-entry buffer, degree " << c.stride.degree << "\n"
       << "  TMS         : " << c.tms.bufferEntries / 1024
       << "K-entry miss-order buffer, " << c.tms.numStreams
       << " stream queues, lookahead " << c.tms.lookahead << ", "
       << c.tms.svbEntries << "-entry SVB\n"
       << "  SMS         : " << c.sms.agtEntries << "-entry AGT, "
       << c.sms.phtEntries / 1024 << "K-entry PHT, "
       << (c.sms.useCounters ? "2-bit counters" : "bit vectors")
       << "\n"
       << "  STeMS       : " << c.stems.agt.entries
       << "-entry AGT, " << c.stems.pst.entries / 1024
       << "K-entry PST, " << c.stems.rmobEntries / 1024
       << "K-entry RMOB, "
       << c.stems.reconstruction.bufferSlots
       << "-slot reconstruction buffer (displacement +-"
       << c.stems.reconstruction.displacementWindow << "), "
       << c.stems.streams.numStreams
       << " stream queues, lookahead "
       << c.stems.streams.lookahead << ", " << c.stems.svbEntries
       << "-entry SVB\n";
    return os.str();
}

} // namespace stems
