#include "sim/prefetch_sim.hh"

#include <algorithm>
#include <utility>
#include <vector>

namespace stems {

PrefetchSimulator::PrefetchSimulator(const SimParams &params,
                                     Prefetcher *engine)
    : params_(params),
      hier_(params.hierarchy),
      timing_(params.timing),
      engine_(engine)
{
    if (engine_ != nullptr && engine_->bufferCapacity() > 0) {
        svb_ = std::make_unique<StreamedValueBuffer>(
            engine_->bufferCapacity());
    }

    hier_.setL1EvictCallback([this](Addr a) {
        if (engine_)
            engine_->onL1BlockRemoved(a);
    });
    hier_.setL2PrefetchDropCallback([this](Addr a) {
        if (measuring_)
            ++stats_.overpredictions;
        l2PrefetchReady_.erase(blockAlign(a));
        if (engine_)
            engine_->onPrefetchDrop(a, -1);
    });
}

void
PrefetchSimulator::setMeasuring(bool on)
{
    if (on && !measuring_) {
        cyclesAtMeasureStart_ = timing_.totalCycles();
        instrAtMeasureStart_ = timing_.instructions();
    }
    measuring_ = on;
}

void
PrefetchSimulator::handleSvbVictim(const StreamedValueBuffer::Entry &e)
{
    if (measuring_)
        ++stats_.overpredictions;
    if (engine_)
        engine_->onPrefetchDrop(e.addr, e.streamId);
}

void
PrefetchSimulator::step(const MemRecord &r)
{
    if (measuring_)
        ++stats_.records;

    if (r.isInvalidate()) {
        if (measuring_)
            ++stats_.invalidates;
        hier_.invalidate(r.vaddr);
        if (svb_) {
            if (auto e = svb_->invalidate(r.vaddr))
                handleSvbVictim(*e);
        }
        if (engine_)
            engine_->onInvalidate(r.vaddr);
        drainAndIssue();
        return;
    }

    if (measuring_) {
        if (r.isRead())
            ++stats_.reads;
        else
            ++stats_.writes;
    }

    bool l1_hit = hier_.accessL1(r.vaddr);
    if (engine_)
        engine_->onL1Access(r.vaddr, r.pc, l1_hit);

    AccessLevel level = AccessLevel::kL1;
    double ready = 0.0;

    if (l1_hit) {
        if (measuring_)
            ++stats_.l1Hits;
    } else {
        auto l2 = hier_.accessL2(r.vaddr);
        if (l2.hit) {
            hier_.fillL1(r.vaddr);
            if (l2.coveredByPrefetch) {
                level = AccessLevel::kL2Prefetch;
                auto it =
                    l2PrefetchReady_.find(blockAlign(r.vaddr));
                if (it != l2PrefetchReady_.end()) {
                    ready = it->second;
                    l2PrefetchReady_.erase(it);
                }
                if (r.isRead()) {
                    if (measuring_)
                        ++stats_.l2PrefetchHits;
                    if (engine_) {
                        engine_->onPrefetchHit(r.vaddr, -1);
                        engine_->onOffChipRead({blockAlign(r.vaddr),
                                                r.pc, missSeq_++,
                                                true, -1});
                    }
                } else {
                    // A write consuming a prefetched block is still
                    // a successful prefetch (it clears the prefetch
                    // tag, so the block can never be swept as an
                    // overprediction): advance the owning stream,
                    // mirroring the SVB write path below. Like that
                    // path it does not count toward covered() --
                    // coverage measures eliminated *read* misses.
                    if (measuring_)
                        ++stats_.l2Hits;
                    if (engine_)
                        engine_->onPrefetchHit(r.vaddr, -1);
                }
            } else {
                level = AccessLevel::kL2;
                if (measuring_)
                    ++stats_.l2Hits;
            }
        } else {
            auto svb_entry =
                svb_ ? svb_->consume(r.vaddr) : std::nullopt;
            if (svb_entry.has_value()) {
                level = AccessLevel::kSvb;
                ready = static_cast<double>(svb_entry->readyTime);
                hier_.fill(r.vaddr);
                if (r.isRead()) {
                    if (measuring_)
                        ++stats_.svbHits;
                    if (engine_) {
                        engine_->onPrefetchHit(r.vaddr,
                                               svb_entry->streamId);
                        engine_->onOffChipRead(
                            {blockAlign(r.vaddr), r.pc, missSeq_++,
                             true, svb_entry->streamId});
                    }
                } else if (engine_) {
                    // A write consuming a prefetched block still
                    // advances the owning stream.
                    engine_->onPrefetchHit(r.vaddr,
                                           svb_entry->streamId);
                }
            } else {
                level = AccessLevel::kMemory;
                hier_.fill(r.vaddr);
                if (r.isRead()) {
                    if (measuring_)
                        ++stats_.offChipReads;
                    if (engine_)
                        engine_->onOffChipRead({blockAlign(r.vaddr),
                                                r.pc, missSeq_++,
                                                false, -1});
                } else if (measuring_) {
                    ++stats_.offChipWrites;
                }
            }
        }
    }

    if (params_.enableTiming)
        timing_.demandAccess(r, level, ready);

    drainAndIssue();
}

void
PrefetchSimulator::drainAndIssue()
{
    if (!engine_)
        return;
    reqScratch_.clear();
    engine_->drainRequests(reqScratch_);
    for (const PrefetchRequest &req : reqScratch_) {
        Addr addr = blockAlign(req.addr);
        if (req.sink == PrefetchSink::kBuffer) {
            if (!svb_ || svb_->contains(addr) ||
                hier_.l2().contains(addr)) {
                // Redundant prefetch: filtered. The owning stream
                // must still learn its request completed, or its
                // in-flight accounting leaks and the stream stalls.
                engine_->onPrefetchFiltered(addr, req.streamId);
                continue;
            }
            double ready = params_.enableTiming
                               ? timing_.prefetchIssued()
                               : 0.0;
            StreamedValueBuffer::Entry e;
            e.addr = addr;
            e.streamId = req.streamId;
            e.readyTime = static_cast<Cycles>(ready);
            if (measuring_)
                ++stats_.prefetchesIssued;
            if (auto victim = svb_->insert(e))
                handleSvbVictim(*victim);
        } else {
            if (hier_.l2().contains(addr))
                continue;
            double ready = params_.enableTiming
                               ? timing_.prefetchIssued()
                               : 0.0;
            if (params_.enableTiming)
                l2PrefetchReady_[addr] = ready;
            if (measuring_)
                ++stats_.prefetchesIssued;
            hier_.fillPrefetchL2(addr);
        }
    }
}

void
PrefetchSimulator::finish()
{
    if (finished_)
        return;
    finished_ = true;

    // Anything still unconsumed was fetched in vain.
    if (svb_) {
        while (auto e = svb_->consumeAny())
            handleSvbVictim(*e);
    }
    if (measuring_) {
        stats_.overpredictions +=
            hier_.l2().unreferencedPrefetches();
    }

    stats_.cycles = timing_.totalCycles() - cyclesAtMeasureStart_;
    stats_.instructions =
        timing_.instructions() - instrAtMeasureStart_;
}

void
PrefetchSimulator::run(const Trace &trace, std::size_t warmup_records)
{
    if (warmup_records > 0)
        setMeasuring(false);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (i == warmup_records)
            setMeasuring(true);
        step(trace[i]);
    }
    finish();
}

void
PrefetchSimulator::run(TraceSource &source,
                       std::size_t warmup_records)
{
    source.reset();
    if (warmup_records > 0)
        setMeasuring(false);
    MemRecord r;
    std::size_t i = 0;
    while (source.next(r)) {
        if (i == warmup_records)
            setMeasuring(true);
        step(r);
        ++i;
    }
    finish();
}

namespace {
constexpr std::uint32_t kSimTag = stateTag('P', 'S', 'I', 'M');
} // namespace

void
PrefetchSimulator::saveState(StateWriter &w) const
{
    w.tag(kSimTag);
    w.boolean(params_.enableTiming);
    w.boolean(svb_ != nullptr);
    w.boolean(engine_ != nullptr);
    hier_.saveState(w);
    if (svb_)
        svb_->saveState(w);
    timing_.saveState(w);
    // Serialized state must be a pure function of logical state:
    // speculative execution validates boundaries by byte-comparing
    // blobs, and unordered_map iteration order is history-dependent.
    std::vector<std::pair<Addr, double>> ready(l2PrefetchReady_.begin(),
                                               l2PrefetchReady_.end());
    std::sort(ready.begin(), ready.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    w.u64(ready.size());
    for (const auto &kv : ready) {
        w.u64(kv.first);
        w.f64(kv.second);
    }
    w.u64(missSeq_);
    w.boolean(measuring_);
    w.boolean(finished_);
    w.f64(cyclesAtMeasureStart_);
    w.u64(instrAtMeasureStart_);
    w.u64(stats_.records);
    w.u64(stats_.reads);
    w.u64(stats_.writes);
    w.u64(stats_.invalidates);
    w.u64(stats_.l1Hits);
    w.u64(stats_.l2Hits);
    w.u64(stats_.l2PrefetchHits);
    w.u64(stats_.svbHits);
    w.u64(stats_.offChipReads);
    w.u64(stats_.offChipWrites);
    w.u64(stats_.prefetchesIssued);
    w.u64(stats_.overpredictions);
    w.f64(stats_.cycles);
    w.u64(stats_.instructions);
    if (engine_)
        engine_->saveState(w);
}

void
PrefetchSimulator::loadState(StateReader &r)
{
    r.tag(kSimTag);
    // Construction-time structure must match the saved run exactly:
    // a timing/SVB/engine mismatch means the caller keyed the
    // checkpoint wrong.
    if (r.boolean() != params_.enableTiming ||
        r.boolean() != (svb_ != nullptr) ||
        r.boolean() != (engine_ != nullptr)) {
        r.fail();
        return;
    }
    hier_.loadState(r);
    if (svb_)
        svb_->loadState(r);
    timing_.loadState(r);
    std::uint64_t ready = r.u64();
    l2PrefetchReady_.clear();
    for (std::uint64_t i = 0; i < ready && r.ok(); ++i) {
        Addr a = r.u64();
        double t = r.f64();
        l2PrefetchReady_[a] = t;
    }
    missSeq_ = r.u64();
    measuring_ = r.boolean();
    finished_ = r.boolean();
    cyclesAtMeasureStart_ = r.f64();
    instrAtMeasureStart_ = r.u64();
    stats_.records = r.u64();
    stats_.reads = r.u64();
    stats_.writes = r.u64();
    stats_.invalidates = r.u64();
    stats_.l1Hits = r.u64();
    stats_.l2Hits = r.u64();
    stats_.l2PrefetchHits = r.u64();
    stats_.svbHits = r.u64();
    stats_.offChipReads = r.u64();
    stats_.offChipWrites = r.u64();
    stats_.prefetchesIssued = r.u64();
    stats_.overpredictions = r.u64();
    stats_.cycles = r.f64();
    stats_.instructions = r.u64();
    if (engine_)
        engine_->loadState(r);
}

} // namespace stems
