/**
 * @file
 * Simulation-state checkpoints: a CRC-framed binary blob capturing a
 * PrefetchSimulator (hierarchy, SVB, timing model, statistics, and
 * the attached engine's complete training state) at a record index,
 * such that restoring it into an identically-constructed simulator
 * and stepping the remaining records is bitwise identical to never
 * having stopped (tests/checkpoint_test.cc pins this per registered
 * engine).
 *
 * Blob layout (little-endian):
 *
 *   offset  0  8-byte magic "STeMSckp"
 *   offset  8  u32 version
 *   offset 12  u64 record index (records stepped before the save)
 *   offset 20  u64 payload byte length
 *   offset 28  u32 CRC-32 of the payload bytes
 *   offset 32  payload: the StateWriter field stream produced by
 *              PrefetchSimulator::saveState
 *
 * The checkpoint convention: a checkpoint "at index i" is taken
 * after records [0, i) were stepped and *before* the warmup
 * measuring flip that record i's iteration would perform — so a
 * resumed run re-executes the flip check for record i exactly like a
 * continuous run does.
 *
 * Decoding is reject-only: magic/version/length/CRC are verified
 * before any simulator mutation, and a structural mismatch inside
 * the payload (wrong geometry, wrong engine shape) fails the load.
 * The TraceStore persists these blobs as its fourth entry class,
 * keyed by (trace-prefix digest, engine-spec digest, config digest,
 * record index) — see store/trace_store.hh.
 */

#ifndef STEMS_SIM_CHECKPOINT_HH
#define STEMS_SIM_CHECKPOINT_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/prefetch_sim.hh"

namespace stems {

/**
 * Checkpoint boundaries over a trace of `trace_size` records under
 * the segments/checkpoint-every policy: ascending multiples of
 * `checkpoint_every` below the trace end (absolute indices, stable
 * across record counts, which is what lets an extended re-run find a
 * shorter run's checkpoints), or — when `checkpoint_every` is 0 —
 * `segments` equal cuts; plus the trace end itself so a follow-up
 * run can extend from the full prefix. Empty for an empty trace.
 *
 * THE boundary schedule: the driver's segmented execution and the
 * distributed coordinator's segment-unit decomposition
 * (net/units.hh) both call this, so a segment unit's endpoints
 * provably sit on the indices workers checkpoint at.
 */
std::vector<std::size_t> checkpointBounds(std::size_t trace_size,
                                          std::size_t checkpoint_every,
                                          unsigned segments);

/**
 * Current checkpoint blob format version.
 *
 * v2: container serialization is key-canonical (unordered_map state
 * is emitted key-sorted), making the payload a pure function of
 * logical simulator state. Speculative segment execution depends on
 * this: boundary validation byte-compares a live re-executed state
 * against a stored blob, so two simulators in the same logical state
 * must always serialize to identical bytes.
 */
inline constexpr std::uint32_t kCheckpointVersion = 2;

/**
 * Serialize a simulator into a framed checkpoint blob.
 *
 * @param sim           the simulator to capture (mid-run, before
 *                      finish()).
 * @param record_index  records stepped so far (see file comment).
 */
std::vector<std::uint8_t>
encodeCheckpoint(const PrefetchSimulator &sim,
                 std::uint64_t record_index);

/**
 * Validate a blob's framing (magic, version, length, CRC) without
 * touching any simulator. @return false on any mismatch.
 */
bool checkpointValid(const std::vector<std::uint8_t> &blob);

/**
 * Peek a valid blob's record index. @return false when the framing
 * is invalid.
 */
bool checkpointRecordIndex(const std::vector<std::uint8_t> &blob,
                           std::uint64_t &index_out);

/**
 * Restore a checkpoint into a simulator constructed with the same
 * SimParams and an equivalently-specified engine.
 *
 * Framing is verified before any mutation; on a framing failure the
 * simulator is untouched. A payload-structure failure (possible only
 * under key collisions or code-version skew) can leave the simulator
 * partially mutated — the caller must then discard and rebuild it.
 *
 * @param index_out  receives the blob's record index on success.
 * @return true when the simulator now holds the checkpointed state.
 */
bool decodeCheckpoint(const std::vector<std::uint8_t> &blob,
                      PrefetchSimulator &sim,
                      std::uint64_t *index_out = nullptr);

/**
 * FNV-1a digest of a valid blob's payload (the serialized simulator
 * state, excluding the frame header). Two blobs taken at the same
 * boundary digest equal iff the captured states serialize
 * identically. @return 0 when the framing is invalid.
 */
std::uint64_t checkpointStateDigest(const std::vector<std::uint8_t> &blob);

/**
 * Byte equality of two valid blobs' payloads — the speculative
 * boundary-validation predicate. Compares state only (the frame
 * record index is not part of the comparison, though callers always
 * compare blobs taken at the same boundary). @return false when
 * either framing is invalid.
 */
bool checkpointStateEquals(const std::vector<std::uint8_t> &a,
                           const std::vector<std::uint8_t> &b);

} // namespace stems

#endif // STEMS_SIM_CHECKPOINT_HH
