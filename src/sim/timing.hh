/**
 * @file
 * MLP-aware trace timing model.
 *
 * This replaces the paper's cycle-accurate FLEXUS timing simulation
 * with an out-of-order-core approximation that preserves the effects
 * the evaluation depends on (see DESIGN.md Section 1):
 *
 *  - dependent (pointer-chase) misses serialize: a load whose address
 *    came from an earlier load cannot issue before that load's data
 *    returns — the latency chains temporal streaming breaks;
 *  - independent misses overlap, bounded by the reorder window and
 *    MSHRs — why covering already-parallel spatial misses buys OLTP
 *    little (paper Section 5.6);
 *  - off-chip fetches (demand and prefetch) share a finite-bandwidth
 *    memory channel, so overprediction traffic delays demand fetches
 *    (the naive-hybrid penalty of Section 5.5);
 *  - prefetched blocks carry a ready time: a demand arriving before
 *    the fetch completes pays the residual latency (timeliness,
 *    Section 5.6's ocean/sparse discussion);
 *  - stores are store-wait-free (paper Section 5.1): they consume
 *    bandwidth but do not stall the core.
 */

#ifndef STEMS_SIM_TIMING_HH
#define STEMS_SIM_TIMING_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "trace/record.hh"

namespace stems {

class StateWriter;
class StateReader;

/** Where a demand access was satisfied (timing view). */
enum class AccessLevel : std::uint8_t
{
    kL1 = 0,
    kL2 = 1,
    kL2Prefetch = 2, ///< L2 hit on a prefetched block
    kSvb = 3,        ///< streamed-value-buffer hit
    kMemory = 4,     ///< off-chip
};

/** Timing-model parameters (derived from paper Table 1). */
struct TimingParams
{
    /// Core issue width: non-memory instructions per cycle.
    double issueWidth = 4.0;
    /// Reorder-buffer reach in *instructions* (Table 1: 96-entry
    /// ROB): an instruction cannot issue until the instruction
    /// robInstructions older has retired. This is what bounds the
    /// memory-level parallelism of compute-dense scans.
    std::size_t robInstructions = 96;
    /// Outstanding off-chip misses (Table 1: 32 MSHRs).
    std::size_t mshrs = 32;
    Cycles l1Latency = 2;   ///< Table 1: 2-cycle load-to-use
    Cycles l2Latency = 25;  ///< Table 1: 25-cycle L2 hit
    Cycles svbLatency = 25; ///< SVB hit treated like an L2 hit
    /// Off-chip latency: 40 ns DRAM + directory + interconnect hops
    /// at 4 GHz lands in the few-hundred-cycle range.
    Cycles memLatency = 300;
    /// Cycles between off-chip fetches the channel sustains.
    Cycles channelInterval = 4;
    /// Dependence links farther than this are ignored (history cap).
    std::size_t maxDepDistance = 256;
};

/**
 * The timing model. Feed it every demand access in trace order.
 */
class TimingModel
{
  public:
    explicit TimingModel(TimingParams params = {});

    /**
     * Account one demand access.
     *
     * @param r           the trace record (kind, cpuOps, depDist).
     * @param level       where the memory system satisfied it.
     * @param ready_time  for prefetched data: when the fetch
     *                    completes (0 = already resident).
     */
    void demandAccess(const MemRecord &r, AccessLevel level,
                      double ready_time);

    /**
     * Account a prefetch issue on the memory channel.
     *
     * @return the time the fetched block becomes available.
     */
    double prefetchIssued();

    /** Current issue frontier (approximate "now"). */
    double now() const { return lastIssue_; }

    /** Completion frontier: total cycles consumed so far. */
    double totalCycles() const { return maxCompletion_; }

    /** Instructions retired (memory ops + compute gaps). */
    std::uint64_t instructions() const { return instructions_; }

    /** Demand accesses processed. */
    std::uint64_t accesses() const { return accessIndex_; }

    /** Serialize the full timing state (checkpointing). */
    void saveState(StateWriter &w) const;

    /** Restore state saved from an identically-parameterized model;
     *  fails the reader on a ring-geometry mismatch. */
    void loadState(StateReader &r);

  private:
    TimingParams params_;

    double lastIssue_ = 0.0;
    double maxCompletion_ = 0.0;
    double channelFree_ = 0.0;
    double lastRetire_ = 0.0;
    std::uint64_t instructions_ = 0;
    std::uint64_t accessIndex_ = 0;
    std::uint64_t missIndex_ = 0;

    /** Rings of recent per-access state (dependences, ROB). */
    std::vector<double> completionRing_;
    std::vector<double> retireRing_;
    std::vector<std::uint64_t> instrEndRing_;
    /** Ring of off-chip miss completion times (MSHR occupancy). */
    std::vector<double> missRing_;

    /** Index of the access gating the ROB window (two-pointer). */
    std::uint64_t robGate_ = 0;

    double completionOf(std::uint64_t index) const;
};

} // namespace stems

#endif // STEMS_SIM_TIMING_HH
