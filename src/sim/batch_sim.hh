/**
 * @file
 * Batched trace execution: one pass over a trace advances N
 * independent simulation lanes.
 *
 * Each lane is a full PrefetchSimulator — its own MemoryHierarchy,
 * SVB, timing model, SimStats, and (optionally) prefetch engine — so
 * lanes never share mutable state and a lane's statistics are bitwise
 * identical to what a standalone PrefetchSimulator::run over the same
 * trace would produce (tests/sim_test.cc pins this). What the batch
 * amortizes is the trace traversal itself: every record is fetched
 * (or decoded, for a TraceSource replay) exactly once and stepped
 * through every lane, instead of once per lane. Records are
 * processed in chunks, lane-major within each chunk, so a lane's
 * working set stays cache-hot across the chunk while the chunk's
 * records are re-served from cache to every subsequent lane.
 *
 * This is the single-pass, multi-consumer structure trace-driven
 * simulators use to evaluate many configurations per trace read; the
 * ExperimentDriver uses it to run a workload's baseline, stride and
 * engine cells in one traversal (see sim/driver.hh `setBatching`).
 */

#ifndef STEMS_SIM_BATCH_SIM_HH
#define STEMS_SIM_BATCH_SIM_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "sim/prefetch_sim.hh"

namespace stems {

/**
 * Advances several independent PrefetchSimulators from a single
 * decode of each trace record.
 */
class BatchSimulator
{
  public:
    /**
     * Add one simulation lane.
     *
     * @param params  system configuration for this lane.
     * @param engine  attached engine; may be null (the no-prefetch
     *                baseline). Not owned; must outlive run().
     * @param warmup_records  leading records that train this lane
     *                without being measured (lanes may differ).
     * @return the lane's index, for stats()/simulator().
     */
    std::size_t addLane(const SimParams &params, Prefetcher *engine,
                        std::size_t warmup_records = 0);

    /** Number of lanes added. */
    std::size_t lanes() const { return lanes_.size(); }

    /**
     * One pass over an in-memory trace: each record is stepped
     * through every lane, honoring per-lane warmup, then every lane
     * is finalized. Call at most once per BatchSimulator.
     *
     * @param jobs  worker threads advancing lanes within each chunk
     *              (lanes are mutually independent, so lane-level
     *              parallelism cannot change any lane's results;
     *              clamped to the lane count, 1 = serial).
     */
    void run(const Trace &trace, unsigned jobs = 1);

    /**
     * One pass over a TraceSource (the source is reset first): each
     * record is decoded exactly once and stepped through every lane.
     * Record-for-record equivalent to run(const Trace &) over the
     * materialized trace.
     */
    void run(TraceSource &source, unsigned jobs = 1);

    /** Statistics of one lane's measured window (valid after run). */
    const SimStats &stats(std::size_t lane) const
    {
        return lanes_.at(lane).sim->stats();
    }

    /** The lane's underlying simulator (e.g. for probe access). */
    PrefetchSimulator &simulator(std::size_t lane)
    {
        return *lanes_.at(lane).sim;
    }

    /**
     * Replace a lane's simulator with a freshly-constructed one
     * (same SimParams and warmup as addLane received). Used when a
     * checkpoint restore fails structurally after partially mutating
     * the lane: the caller recreates the engine and the lane starts
     * cold.
     */
    void rebuildLane(std::size_t lane, Prefetcher *engine);

    /**
     * Start a lane at a trace position instead of record 0: records
     * before `start_index` are skipped entirely. The lane's
     * simulator must hold the matching checkpointed state
     * (sim/checkpoint.hh), which bakes in any warmup flip at or
     * before the start — the skipped records' flip checks are
     * skipped with them.
     */
    void setLaneStart(std::size_t lane, std::size_t start_index);

    /**
     * Restrict a lane to the record range [start_index, end_index):
     * records before the start are skipped (the simulator must hold
     * the matching checkpointed state, as with setLaneStart) and
     * records at or past the end are never stepped. Ranges are the
     * substrate of speculative segment execution: each segment is a
     * lane over one slice of the trace, advanced by runSegments().
     * An end past the trace length is clamped to it.
     */
    void setLaneRange(std::size_t lane, std::size_t start_index,
                      std::size_t end_index);

    /**
     * Advance every lane over its own [start, end) range, lanes in
     * parallel on up to `jobs` threads (each lane runs entirely on
     * one thread; threads claim lanes dynamically). Unlike run(),
     * lanes_ ranges may be disjoint trace slices — the per-chunk
     * lane-major traversal of run() would serialize those — and NO
     * lane is finish()ed: the caller owns segment finalization,
     * because a speculative segment's end state must be captured
     * pre-finish and may be discarded. The lane-end callback fires
     * for each lane when it reaches its end index (after stepping
     * records [start, end), before the warmup-flip check of record
     * `end` — the checkpoint convention). Call at most once.
     */
    void runSegments(const Trace &trace, unsigned jobs = 1);

    /** Lane-end observer for runSegments: (lane, end index, lane
     *  simulator). Invoked concurrently from lane worker threads;
     *  must only touch per-lane or thread-safe state. */
    using LaneEndFn = std::function<void(std::size_t, std::size_t,
                                         PrefetchSimulator &)>;

    /** Register the lane-end observer (one per batch). */
    void setLaneEndCallback(LaneEndFn fn) { laneEnd_ = std::move(fn); }

    /**
     * Checkpoint boundaries for a lane, ascending and strictly
     * greater than its start index. At each boundary index i the
     * boundary callback fires after records [0, i) were stepped and
     * before the warmup-flip check of record i (the checkpoint
     * convention of sim/checkpoint.hh); a boundary equal to the
     * trace length fires after the last record, before finish().
     */
    void setLaneBoundaries(std::size_t lane,
                           std::vector<std::size_t> boundaries);

    /** Boundary observer: (lane, record index, lane simulator). May
     *  be invoked concurrently from different lanes' worker threads
     *  when run() parallelizes lanes; it must only touch per-lane or
     *  thread-safe state. */
    using BoundaryFn = std::function<void(
        std::size_t, std::size_t, PrefetchSimulator &)>;

    /** Register the boundary observer (one per batch). */
    void setBoundaryCallback(BoundaryFn fn)
    {
        boundary_ = std::move(fn);
    }

  private:
    struct Lane
    {
        std::unique_ptr<PrefetchSimulator> sim;
        SimParams params;
        Prefetcher *engine = nullptr;
        std::size_t warmup = 0;
        std::size_t start = 0;
        /// One past the last record this lane steps; records beyond
        /// it are ignored (npos = unbounded, the run() default).
        std::size_t end = static_cast<std::size_t>(-1);
        std::vector<std::size_t> boundaries;
        std::size_t nextBoundary = 0; ///< cursor into boundaries
    };

    /// Records stepped per lane before switching lanes (or, with
    /// jobs > 1, the lane-parallel synchronization quantum): big
    /// enough to amortize reloading a lane's working set and the
    /// per-chunk thread handoff, small enough that the chunk (2 MiB
    /// of records) stays cache-resident for the next lane.
    static constexpr std::size_t kChunkRecords = 65536;

    /** Step `count` records (trace positions [first, first+count))
     *  through every lane, lane-major, on up to `jobs` threads. */
    void runChunk(const MemRecord *records, std::size_t first,
                  std::size_t count, unsigned jobs);

    /** One lane's share of a chunk. */
    void runLaneChunk(std::size_t lane_index,
                      const MemRecord *records, std::size_t first,
                      std::size_t count);

    /** One lane's whole [start, end) range (runSegments body). */
    void runLaneRange(std::size_t lane_index, const Trace &trace);

    /** Fire end-of-trace boundaries, then finish every lane. */
    void finishAll(std::size_t total_records);

    std::vector<Lane> lanes_;
    BoundaryFn boundary_;
    LaneEndFn laneEnd_;
};

} // namespace stems

#endif // STEMS_SIM_BATCH_SIM_HH
