#include "sim/sweep_plan.hh"

#include <cstdio>

#include "common/mini_json.hh"
#include "common/state_codec.hh"

namespace stems {

namespace {

constexpr std::uint32_t kPlanTag = stateTag('S', 'W', 'P', 'L');
constexpr std::uint32_t kPlanEndTag = stateTag('S', 'W', 'P', 'E');
// v2 added unit_granularity; v1 streams are rejected (the service
// already rejects cross-version peers at the Hello stage, so a
// version skew here means something worse than an old binary).
constexpr std::uint32_t kPlanVersion = 2;

std::string
u64Token(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** `null` for unset optional engine knobs, so every options object
 *  carries every key and equal plans have equal bytes. */
template <typename T>
std::string
optToken(const std::optional<T> &v)
{
    return v ? u64Token(static_cast<std::uint64_t>(*v)) : "null";
}

std::string
optBoolToken(const std::optional<bool> &v)
{
    if (!v)
        return "null";
    return *v ? "true" : "false";
}

const char *
boolToken(bool v)
{
    return v ? "true" : "false";
}

// ---- strict parse helpers -----------------------------------------

bool
parseFail(std::string *error, const std::string &what)
{
    if (error && error->empty())
        *error = what;
    return false;
}

bool
asU64(const JsonValue &v, std::uint64_t &out)
{
    if (v.kind != JsonValue::Kind::kNumber || !v.isInteger)
        return false;
    out = v.integer;
    return true;
}

bool
asBool(const JsonValue &v, bool &out)
{
    if (v.kind != JsonValue::Kind::kBool)
        return false;
    out = v.boolean;
    return true;
}

bool
asDouble(const JsonValue &v, double &out)
{
    if (v.kind != JsonValue::Kind::kNumber)
        return false;
    out = v.number;
    return true;
}

bool
parseOptions(const JsonValue &v, EngineOptions &options,
             std::string *error)
{
    if (v.kind != JsonValue::Kind::kObject)
        return parseFail(error, "engine options must be an object");
    for (const auto &kv : v.members) {
        const std::string &key = kv.first;
        const JsonValue &val = kv.second;
        const bool is_null = val.kind == JsonValue::Kind::kNull;
        std::uint64_t u = 0;
        bool b = false;
        if (key == "buffer_entries") {
            if (is_null)
                continue;
            if (!asU64(val, u))
                return parseFail(error, "bad buffer_entries");
            options.bufferEntries = static_cast<std::size_t>(u);
        } else if (key == "displacement_window") {
            if (is_null)
                continue;
            if (!asU64(val, u))
                return parseFail(error, "bad displacement_window");
            options.displacementWindow = static_cast<unsigned>(u);
        } else if (key == "lookahead") {
            if (is_null)
                continue;
            if (!asU64(val, u))
                return parseFail(error, "bad lookahead");
            options.lookahead = static_cast<unsigned>(u);
        } else if (key == "scientific") {
            if (!asBool(val, b))
                return parseFail(error, "bad scientific");
            options.scientific = b;
        } else if (key == "sms_use_counters") {
            if (is_null)
                continue;
            if (!asBool(val, b))
                return parseFail(error, "bad sms_use_counters");
            options.smsUseCounters = b;
        } else if (key == "stream_queues") {
            if (is_null)
                continue;
            if (!asU64(val, u))
                return parseFail(error, "bad stream_queues");
            options.streamQueues = static_cast<std::size_t>(u);
        } else {
            return parseFail(error,
                             "unknown engine option '" + key + "'");
        }
    }
    return true;
}

bool
parseEngine(const JsonValue &v, PlanEngine &engine,
            std::string *error)
{
    if (v.kind != JsonValue::Kind::kObject)
        return parseFail(error, "engine entry must be an object");
    bool have_name = false;
    for (const auto &kv : v.members) {
        const std::string &key = kv.first;
        const JsonValue &val = kv.second;
        if (key == "engine") {
            if (val.kind != JsonValue::Kind::kString)
                return parseFail(error, "bad engine name");
            engine.engine = val.text;
            have_name = true;
        } else if (key == "label") {
            if (val.kind != JsonValue::Kind::kString)
                return parseFail(error, "bad engine label");
            engine.label = val.text;
        } else if (key == "options") {
            if (!parseOptions(val, engine.options, error))
                return false;
        } else {
            return parseFail(error,
                             "unknown engine field '" + key + "'");
        }
    }
    if (!have_name || engine.engine.empty())
        return parseFail(error, "engine entry missing a name");
    return true;
}

// ---- binary string helpers ----------------------------------------

void
writeString(StateWriter &w, const std::string &s)
{
    w.u64(s.size());
    for (char c : s)
        w.u8(static_cast<std::uint8_t>(c));
}

std::string
readString(StateReader &r)
{
    // Strings here are short names/labels; cap the announced length
    // so a corrupt stream cannot force a huge allocation.
    constexpr std::uint64_t kMaxLen = 1 << 16;
    std::uint64_t len = r.u64();
    if (len > kMaxLen) {
        r.fail();
        return {};
    }
    std::string s;
    s.reserve(static_cast<std::size_t>(len));
    for (std::uint64_t i = 0; i < len && r.ok(); ++i)
        s += static_cast<char>(r.u8());
    return s;
}

template <typename T>
void
writeOptU64(StateWriter &w, const std::optional<T> &v)
{
    w.boolean(v.has_value());
    w.u64(v ? static_cast<std::uint64_t>(*v) : 0);
}

void
writeOptBool(StateWriter &w, const std::optional<bool> &v)
{
    w.boolean(v.has_value());
    w.boolean(v.value_or(false));
}

} // namespace

const char *
unitGranularityName(UnitGranularity granularity)
{
    switch (granularity) {
    case UnitGranularity::kCell:
        return "cell";
    case UnitGranularity::kSegment:
        return "segment";
    case UnitGranularity::kWorkload:
    default:
        return "workload";
    }
}

bool
parseUnitGranularity(const std::string &text, UnitGranularity &out)
{
    if (text == "workload")
        out = UnitGranularity::kWorkload;
    else if (text == "cell")
        out = UnitGranularity::kCell;
    else if (text == "segment")
        out = UnitGranularity::kSegment;
    else
        return false;
    return true;
}

std::string
sweepPlanJson(const SweepPlan &plan)
{
    std::string out;
    out += "{\n";
    out += "  \"batch\": ";
    out += boolToken(plan.batch);
    out += ",\n  \"checkpoint_every\": " +
           u64Token(plan.checkpointEvery);
    out += ",\n  \"engines\": [";
    for (std::size_t i = 0; i < plan.engines.size(); ++i) {
        const PlanEngine &e = plan.engines[i];
        out += i == 0 ? "\n" : ",\n";
        out += "    {\n";
        out += "      \"engine\": \"" + jsonEscape(e.engine) +
               "\",\n";
        out += "      \"label\": \"" + jsonEscape(e.label) + "\",\n";
        out += "      \"options\": {\n";
        out += "        \"buffer_entries\": " +
               optToken(e.options.bufferEntries) + ",\n";
        out += "        \"displacement_window\": " +
               optToken(e.options.displacementWindow) + ",\n";
        out += "        \"lookahead\": " +
               optToken(e.options.lookahead) + ",\n";
        out += std::string("        \"scientific\": ") +
               boolToken(e.options.scientific) + ",\n";
        out += "        \"sms_use_counters\": " +
               optBoolToken(e.options.smsUseCounters) + ",\n";
        out += "        \"stream_queues\": " +
               optToken(e.options.streamQueues) + "\n";
        out += "      }\n";
        out += "    }";
    }
    out += plan.engines.empty() ? "]" : "\n  ]";
    out += ",\n  \"heartbeat_seconds\": " +
           jsonDouble(plan.heartbeatSeconds);
    out += ",\n  \"jobs\": " + u64Token(plan.jobs);
    out += ",\n  \"records\": " + u64Token(plan.records);
    out += ",\n  \"schema\": \"";
    out += kSweepPlanSchema;
    out += "\"";
    out += ",\n  \"seed\": " + u64Token(plan.seed);
    out += ",\n  \"segments\": " + u64Token(plan.segments);
    out += ",\n  \"speculate\": ";
    out += boolToken(plan.speculate);
    out += ",\n  \"timing\": ";
    out += boolToken(plan.timing);
    out += ",\n  \"unit_granularity\": \"";
    out += unitGranularityName(plan.unitGranularity);
    out += "\"";
    out += ",\n  \"warmup_fraction\": " +
           jsonDouble(plan.warmupFraction);
    out += ",\n  \"warmup_records\": " + u64Token(plan.warmupRecords);
    out += ",\n  \"workloads\": [";
    for (std::size_t i = 0; i < plan.workloads.size(); ++i) {
        out += i == 0 ? "\n" : ",\n";
        out += "    \"" + jsonEscape(plan.workloads[i]) + "\"";
    }
    out += plan.workloads.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

bool
parseSweepPlanJson(const std::string &text, SweepPlan &plan,
                   std::string *error)
{
    JsonParser parser(text);
    JsonValue root;
    if (!parser.parseValue(root))
        return parseFail(error, "bad JSON: " + parser.error);
    parser.skipWs();
    if (parser.p != parser.end)
        return parseFail(error, "trailing content after plan");
    if (root.kind != JsonValue::Kind::kObject)
        return parseFail(error, "plan must be a JSON object");

    SweepPlan out;
    bool have_schema = false;
    for (const auto &kv : root.members) {
        const std::string &key = kv.first;
        const JsonValue &val = kv.second;
        std::uint64_t u = 0;
        if (key == "schema") {
            if (val.kind != JsonValue::Kind::kString ||
                val.text != kSweepPlanSchema)
                return parseFail(error, "unsupported plan schema");
            have_schema = true;
        } else if (key == "batch") {
            if (!asBool(val, out.batch))
                return parseFail(error, "bad batch");
        } else if (key == "checkpoint_every") {
            if (!asU64(val, out.checkpointEvery))
                return parseFail(error, "bad checkpoint_every");
        } else if (key == "engines") {
            if (val.kind != JsonValue::Kind::kArray)
                return parseFail(error, "engines must be an array");
            for (const JsonValue &item : val.items) {
                PlanEngine engine;
                if (!parseEngine(item, engine, error))
                    return false;
                out.engines.push_back(std::move(engine));
            }
        } else if (key == "heartbeat_seconds") {
            if (!asDouble(val, out.heartbeatSeconds))
                return parseFail(error, "bad heartbeat_seconds");
        } else if (key == "jobs") {
            if (!asU64(val, u))
                return parseFail(error, "bad jobs");
            out.jobs = static_cast<unsigned>(u);
        } else if (key == "records") {
            if (!asU64(val, out.records))
                return parseFail(error, "bad records");
        } else if (key == "seed") {
            if (!asU64(val, out.seed))
                return parseFail(error, "bad seed");
        } else if (key == "segments") {
            if (!asU64(val, u))
                return parseFail(error, "bad segments");
            out.segments = static_cast<unsigned>(u);
        } else if (key == "speculate") {
            if (!asBool(val, out.speculate))
                return parseFail(error, "bad speculate");
        } else if (key == "timing") {
            if (!asBool(val, out.timing))
                return parseFail(error, "bad timing");
        } else if (key == "unit_granularity") {
            if (val.kind != JsonValue::Kind::kString ||
                !parseUnitGranularity(val.text,
                                      out.unitGranularity))
                return parseFail(error, "bad unit_granularity");
        } else if (key == "warmup_fraction") {
            if (!asDouble(val, out.warmupFraction))
                return parseFail(error, "bad warmup_fraction");
        } else if (key == "warmup_records") {
            if (!asU64(val, out.warmupRecords))
                return parseFail(error, "bad warmup_records");
        } else if (key == "workloads") {
            if (val.kind != JsonValue::Kind::kArray)
                return parseFail(error, "workloads must be an array");
            for (const JsonValue &item : val.items) {
                if (item.kind != JsonValue::Kind::kString)
                    return parseFail(error,
                                     "workloads must be strings");
                out.workloads.push_back(item.text);
            }
        } else {
            return parseFail(error,
                             "unknown plan field '" + key + "'");
        }
    }
    if (!have_schema)
        return parseFail(error, "plan is missing the schema tag");
    plan = std::move(out);
    return true;
}

std::vector<std::uint8_t>
encodeSweepPlan(const SweepPlan &plan)
{
    StateWriter w;
    w.tag(kPlanTag);
    w.u32(kPlanVersion);
    w.u64(plan.workloads.size());
    for (const std::string &name : plan.workloads)
        writeString(w, name);
    w.u64(plan.engines.size());
    for (const PlanEngine &e : plan.engines) {
        writeString(w, e.engine);
        writeString(w, e.label);
        w.boolean(e.options.scientific);
        writeOptU64(w, e.options.lookahead);
        writeOptU64(w, e.options.bufferEntries);
        writeOptU64(w, e.options.streamQueues);
        writeOptBool(w, e.options.smsUseCounters);
        writeOptU64(w, e.options.displacementWindow);
    }
    w.u64(plan.records);
    w.u64(plan.seed);
    w.f64(plan.warmupFraction);
    w.u64(plan.warmupRecords);
    w.boolean(plan.timing);
    w.u32(plan.jobs);
    w.boolean(plan.batch);
    w.u32(plan.segments);
    w.u64(plan.checkpointEvery);
    w.boolean(plan.speculate);
    w.f64(plan.heartbeatSeconds);
    w.u8(static_cast<std::uint8_t>(plan.unitGranularity));
    w.tag(kPlanEndTag);
    return w.take();
}

bool
decodeSweepPlan(const std::vector<std::uint8_t> &bytes,
                SweepPlan &plan)
{
    StateReader r(bytes.data(), bytes.size());
    r.tag(kPlanTag);
    if (r.u32() != kPlanVersion)
        return false;
    SweepPlan out;
    // Corrupt counts fail via the per-element bounds checks (every
    // element is at least one byte, so a huge count cannot pass),
    // but bail out early on an obviously impossible one.
    std::uint64_t n = r.u64();
    if (n > bytes.size())
        return false;
    for (std::uint64_t i = 0; i < n && r.ok(); ++i)
        out.workloads.push_back(readString(r));
    n = r.u64();
    if (n > bytes.size())
        return false;
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
        PlanEngine e;
        e.engine = readString(r);
        e.label = readString(r);
        e.options.scientific = r.boolean();
        if (r.boolean())
            e.options.lookahead = static_cast<unsigned>(r.u64());
        else
            r.u64();
        if (r.boolean())
            e.options.bufferEntries =
                static_cast<std::size_t>(r.u64());
        else
            r.u64();
        if (r.boolean())
            e.options.streamQueues =
                static_cast<std::size_t>(r.u64());
        else
            r.u64();
        if (r.boolean())
            e.options.smsUseCounters = r.boolean();
        else
            r.boolean();
        if (r.boolean())
            e.options.displacementWindow =
                static_cast<unsigned>(r.u64());
        else
            r.u64();
        out.engines.push_back(std::move(e));
    }
    out.records = r.u64();
    out.seed = r.u64();
    out.warmupFraction = r.f64();
    out.warmupRecords = r.u64();
    out.timing = r.boolean();
    out.jobs = r.u32();
    out.batch = r.boolean();
    out.segments = r.u32();
    out.checkpointEvery = r.u64();
    out.speculate = r.boolean();
    out.heartbeatSeconds = r.f64();
    const std::uint8_t granularity = r.u8();
    if (granularity >
        static_cast<std::uint8_t>(UnitGranularity::kSegment))
        return false;
    out.unitGranularity = static_cast<UnitGranularity>(granularity);
    r.tag(kPlanEndTag);
    if (!r.atEnd())
        return false;
    plan = std::move(out);
    return true;
}

ExperimentConfig
planExperimentConfig(const SweepPlan &plan)
{
    ExperimentConfig config;
    config.traceRecords = static_cast<std::size_t>(plan.records);
    config.seed = plan.seed;
    config.warmupFraction = plan.warmupFraction;
    config.warmupRecords =
        static_cast<std::size_t>(plan.warmupRecords);
    config.enableTiming = plan.timing;
    return config;
}

} // namespace stems
