#include "sim/checkpoint.hh"

#include <cstring>

#include "common/crc32.hh"
#include "common/state_codec.hh"

namespace stems {

namespace {

constexpr char kCheckpointMagic[8] = {'S', 'T', 'e', 'M',
                                      'S', 'c', 'k', 'p'};
constexpr std::size_t kHeaderBytes = 32;
constexpr std::size_t kIndexOffset = 12;
constexpr std::size_t kPayloadLenOffset = 20;
constexpr std::size_t kCrcOffset = 28;

template <typename T>
void
putScalar(std::vector<std::uint8_t> &buf, std::size_t offset, T v)
{
    std::memcpy(buf.data() + offset, &v, sizeof(v));
}

template <typename T>
T
getScalar(const std::vector<std::uint8_t> &buf, std::size_t offset)
{
    T v{};
    std::memcpy(&v, buf.data() + offset, sizeof(v));
    return v;
}

} // namespace

std::vector<std::size_t>
checkpointBounds(std::size_t trace_size,
                 std::size_t checkpoint_every, unsigned segments)
{
    std::vector<std::size_t> bounds;
    if (trace_size == 0)
        return bounds;
    if (checkpoint_every > 0) {
        for (std::size_t b = checkpoint_every; b < trace_size;
             b += checkpoint_every)
            bounds.push_back(b);
    } else {
        for (unsigned k = 1; k < segments; ++k) {
            std::size_t b = trace_size * k / segments;
            if (b > 0 && b < trace_size &&
                (bounds.empty() || bounds.back() != b))
                bounds.push_back(b);
        }
    }
    bounds.push_back(trace_size);
    return bounds;
}

std::vector<std::uint8_t>
encodeCheckpoint(const PrefetchSimulator &sim,
                 std::uint64_t record_index)
{
    StateWriter w;
    sim.saveState(w);
    const std::vector<std::uint8_t> &payload = w.bytes();

    std::vector<std::uint8_t> blob(kHeaderBytes + payload.size());
    std::memcpy(blob.data(), kCheckpointMagic,
                sizeof(kCheckpointMagic));
    putScalar<std::uint32_t>(blob, 8, kCheckpointVersion);
    putScalar<std::uint64_t>(blob, kIndexOffset, record_index);
    putScalar<std::uint64_t>(blob, kPayloadLenOffset,
                             payload.size());
    putScalar<std::uint32_t>(blob, kCrcOffset,
                             crc32(payload.data(), payload.size()));
    std::memcpy(blob.data() + kHeaderBytes, payload.data(),
                payload.size());
    return blob;
}

bool
checkpointValid(const std::vector<std::uint8_t> &blob)
{
    if (blob.size() < kHeaderBytes)
        return false;
    if (std::memcmp(blob.data(), kCheckpointMagic,
                    sizeof(kCheckpointMagic)) != 0)
        return false;
    if (getScalar<std::uint32_t>(blob, 8) != kCheckpointVersion)
        return false;
    std::uint64_t payload_len =
        getScalar<std::uint64_t>(blob, kPayloadLenOffset);
    if (payload_len != blob.size() - kHeaderBytes)
        return false;
    std::uint32_t crc = getScalar<std::uint32_t>(blob, kCrcOffset);
    return crc32(blob.data() + kHeaderBytes,
                 static_cast<std::size_t>(payload_len)) == crc;
}

bool
checkpointRecordIndex(const std::vector<std::uint8_t> &blob,
                      std::uint64_t &index_out)
{
    if (!checkpointValid(blob))
        return false;
    index_out = getScalar<std::uint64_t>(blob, kIndexOffset);
    return true;
}

bool
decodeCheckpoint(const std::vector<std::uint8_t> &blob,
                 PrefetchSimulator &sim, std::uint64_t *index_out)
{
    if (!checkpointValid(blob))
        return false;
    StateReader r(blob.data() + kHeaderBytes,
                  blob.size() - kHeaderBytes);
    sim.loadState(r);
    if (!r.atEnd())
        return false;
    if (index_out)
        *index_out = getScalar<std::uint64_t>(blob, kIndexOffset);
    return true;
}

std::uint64_t
checkpointStateDigest(const std::vector<std::uint8_t> &blob)
{
    if (!checkpointValid(blob))
        return 0;
    std::uint64_t h = 1469598103934665603ull; // FNV-1a offset basis
    for (std::size_t i = kHeaderBytes; i < blob.size(); ++i) {
        h ^= blob[i];
        h *= 1099511628211ull;
    }
    return h;
}

bool
checkpointStateEquals(const std::vector<std::uint8_t> &a,
                      const std::vector<std::uint8_t> &b)
{
    if (!checkpointValid(a) || !checkpointValid(b))
        return false;
    if (a.size() != b.size())
        return false;
    return std::memcmp(a.data() + kHeaderBytes, b.data() + kHeaderBytes,
                       a.size() - kHeaderBytes) == 0;
}

} // namespace stems
