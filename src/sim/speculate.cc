#include "sim/speculate.hh"

#include <algorithm>

#include "obs/metrics.hh"
#include "sim/batch_sim.hh"
#include "sim/checkpoint.hh"

namespace stems {

namespace {

/** Seeds sorted by index, one per index, interior only. */
std::vector<SpeculationSeed>
planSeeds(std::vector<SpeculationSeed> seeds, std::size_t trace_size)
{
    std::stable_sort(seeds.begin(), seeds.end(),
                     [](const SpeculationSeed &a,
                        const SpeculationSeed &b) {
                         return a.index < b.index;
                     });
    std::vector<SpeculationSeed> planned;
    for (SpeculationSeed &s : seeds) {
        if (s.index == 0 || s.index >= trace_size)
            continue; // can't seed a runnable segment
        if (!planned.empty() && planned.back().index == s.index)
            continue;
        planned.push_back(std::move(s));
    }
    return planned;
}

} // namespace

std::optional<SpeculationOutcome>
runSpeculativeCell(const SimParams &params, std::size_t warmup,
                   const Trace &trace,
                   const SpeculationEngineFactory &make_engine,
                   std::vector<SpeculationSeed> seeds, unsigned jobs)
{
    std::vector<SpeculationSeed> planned =
        planSeeds(std::move(seeds), trace.size());

    // Pre-validate structural decodability into scratch simulators: a
    // blob from a perturbed engine spec or bit-rot that slipped past
    // the CRC predicts nothing usable, and dropping it up front keeps
    // the segment plan fixed once lanes exist.
    {
        std::vector<SpeculationSeed> decodable;
        decodable.reserve(planned.size());
        for (SpeculationSeed &s : planned) {
            std::unique_ptr<Prefetcher> probe_engine = make_engine();
            PrefetchSimulator probe(params, probe_engine.get());
            if (decodeCheckpoint(s.blob, probe))
                decodable.push_back(std::move(s));
        }
        planned = std::move(decodable);
    }
    if (planned.empty())
        return std::nullopt;

    // Segment k covers [bounds[k], bounds[k+1]).
    std::vector<std::size_t> bounds;
    bounds.push_back(0);
    for (const SpeculationSeed &s : planned)
        bounds.push_back(s.index);
    bounds.push_back(trace.size());
    const std::size_t segments = bounds.size() - 1;

    BatchSimulator batch;
    std::vector<std::unique_ptr<Prefetcher>> engines;
    engines.reserve(segments);
    for (std::size_t k = 0; k < segments; ++k) {
        engines.push_back(make_engine());
        batch.addLane(params, engines.back().get(), warmup);
        batch.setLaneRange(k, bounds[k], bounds[k + 1]);
        if (k > 0 &&
            !decodeCheckpoint(planned[k - 1].blob,
                              batch.simulator(k)))
            return std::nullopt; // pre-validated; cannot happen
    }

    // Each lane's live pre-finish end state, captured at its range
    // end under the checkpoint convention (before record `end`'s
    // warmup-flip check). Slots are disjoint, so no locking.
    std::vector<std::vector<std::uint8_t>> end_blobs(segments);
    batch.setLaneEndCallback([&](std::size_t lane, std::size_t index,
                                 PrefetchSimulator &sim) {
        end_blobs[lane] = encodeCheckpoint(sim, index);
    });
    batch.runSegments(trace, jobs);

    // Validate left to right: boundary k commits when segment k-1's
    // live end state byte-matches the seed segment k started from.
    std::size_t committed = 0;
    std::size_t mispredict_at = segments; // sentinel: none
    for (std::size_t k = 1; k < segments; ++k) {
        if (checkpointStateEquals(end_blobs[k - 1],
                                  planned[k - 1].blob)) {
            ++committed;
        } else {
            mispredict_at = k;
            break;
        }
    }

    SpeculationOutcome out;
    out.segments = segments;
    out.commits = committed;
    // Committed seed blobs are proven on-path; the caller may persist
    // them under trusted keys.
    for (std::size_t k = 1; k <= committed; ++k)
        out.validated.emplace_back(bounds[k], planned[k - 1].blob);

    if (mispredict_at == segments) {
        // All-commit: the last lane was built on the true state all
        // the way through, so its simulator IS the continuous run's
        // end state (stats accumulated across every committed
        // segment travel inside the blobs).
        std::size_t last = segments - 1;
        out.validated.emplace_back(trace.size(),
                                   std::move(end_blobs[last]));
        batch.simulator(last).finish();
        out.stats = batch.stats(last);
        out.engine = std::move(engines[last]);
        return out;
    }

    // Rollback: segments mispredict_at.. were built on a wrong (or
    // unluckily stale) state. Segment mispredict_at-1's live end
    // state is correct by induction, so re-execute the suffix from
    // it sequentially — this is exactly the continuous run's record
    // sequence, so output identity is preserved by construction.
    out.mispredicts = 1;
    std::size_t resume_lane = mispredict_at - 1;
    std::size_t resume_at = bounds[mispredict_at];
    // The live state at the mispredicted boundary is itself a
    // validated checkpoint — persisting it converts the stale store
    // entry into one the next run can trust.
    out.validated.emplace_back(resume_at,
                               std::move(end_blobs[resume_lane]));
    PrefetchSimulator &sim = batch.simulator(resume_lane);
    Counter &steps =
        MetricsRegistry::instance().counter("batch.record_steps");
    const MemRecord *records = trace.data();
    for (std::size_t i = resume_at; i < trace.size(); ++i) {
        if (i == warmup)
            sim.setMeasuring(true);
        sim.step(records[i]);
    }
    steps.add(trace.size() - resume_at);
    out.replayedRecords = trace.size() - resume_at;
    out.validated.emplace_back(trace.size(),
                               encodeCheckpoint(sim, trace.size()));
    sim.finish();
    out.stats = batch.stats(resume_lane);
    out.engine = std::move(engines[resume_lane]);
    return out;
}

} // namespace stems
