#include "sim/experiment.hh"

#include "common/stats.hh"
#include "prefetch/engine_registry.hh"
#include "workloads/registry.hh"

namespace stems {

const EngineResult *
WorkloadResult::find(const std::string &engine) const
{
    for (const EngineResult &r : engines)
        if (r.engine == engine)
            return &r;
    return nullptr;
}

ExperimentRunner::ExperimentRunner(ExperimentConfig config)
    : config_(std::move(config))
{
}

std::unique_ptr<Prefetcher>
ExperimentRunner::makeEngine(const std::string &name,
                             bool scientific) const
{
    EngineOptions options;
    options.scientific = scientific;
    return EngineRegistry::instance().make(name, config_.system,
                                           options);
}

WorkloadResult
ExperimentRunner::runWorkload(const Workload &workload,
                              const std::vector<std::string> &engines)
{
    WorkloadResult result;
    result.workload = workload.name();
    result.workloadClass = workload.workloadClass();

    Trace trace =
        workload.generate(config_.seed, config_.traceRecords);
    std::size_t warmup = effectiveWarmupRecords(config_, trace.size());

    SimParams sim_params;
    sim_params.hierarchy = config_.system.hierarchy;
    sim_params.enableTiming = config_.enableTiming;
    sim_params.timing = config_.system.timing;

    bool scientific =
        workload.workloadClass() == WorkloadClass::kScientific;

    // No-prefetch baseline: defines the miss-count normalization.
    PrefetchSimulator base_sim(sim_params, nullptr);
    base_sim.run(trace, warmup);
    result.baselineMisses = base_sim.stats().offChipReads;
    result.baselineCycles = base_sim.stats().cycles;

    // Stride baseline: defines the speedup normalization (Table 1's
    // baseline system includes the stride prefetcher).
    double stride_cycles = 0.0;
    if (config_.enableTiming) {
        auto stride = makeEngine("stride", scientific);
        PrefetchSimulator stride_sim(sim_params, stride.get());
        stride_sim.run(trace, warmup);
        stride_cycles = stride_sim.stats().cycles;
        result.baselineIpc = stride_sim.stats().ipc();
        result.strideCycles = stride_cycles;
    }

    for (const std::string &name : engines) {
        auto engine = makeEngine(name, scientific);
        if (!engine)
            continue;
        PrefetchSimulator sim(sim_params, engine.get());
        sim.run(trace, warmup);

        EngineResult er;
        er.engine = name;
        er.stats = sim.stats();
        er.coverage =
            ratio(er.stats.covered(), result.baselineMisses);
        er.uncovered =
            ratio(er.stats.offChipReads, result.baselineMisses);
        er.overprediction =
            ratio(er.stats.overpredictions, result.baselineMisses);
        if (config_.enableTiming && er.stats.cycles > 0)
            er.speedup = stride_cycles / er.stats.cycles;
        result.engines.push_back(std::move(er));
    }
    return result;
}

std::vector<WorkloadResult>
ExperimentRunner::runSuite(const std::vector<std::string> &engines)
{
    std::vector<WorkloadResult> results;
    for (const auto &w : makeAllWorkloads())
        results.push_back(runWorkload(*w, engines));
    return results;
}

} // namespace stems
