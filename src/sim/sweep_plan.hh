/**
 * @file
 * Declarative sweep description: the one value type that configures
 * an ExperimentDriver run.
 *
 * A SweepPlan captures everything the driver's former setter chain
 * (setBatching/setSegments/setCheckpointEvery/setSpeculate/
 * setHeartbeatSeconds, plus the ExperimentConfig knobs) expressed —
 * workloads x engine columns, records/seed/warmup, and the execution
 * policy — as plain data. Unlike a mutated driver, a plan can be
 * serialized, diffed, digested and handed to a remote worker: the
 * distributed sweep service (net/coord.hh, net/worker.hh) ships the
 * binary form over the wire, and `--plan-out` dumps the canonical
 * JSON form for any bench invocation.
 *
 * Two codecs, both canonical:
 *  - JSON (sweepPlanJson / parseSweepPlanJson): key-sorted,
 *    mini_json conventions (`%.17g` doubles, exact u64 integers),
 *    schema-tagged "stems-sweep-plan-v1". Every field is always
 *    emitted (unset optional engine knobs as `null`), so two plans
 *    are equal iff their JSON bytes are equal, and the parser
 *    rejects unknown fields instead of guessing.
 *  - binary (encodeSweepPlan / decodeSweepPlan): a state_codec
 *    field stream framed by 'SWPL'/'SWPE' tags, used as wire
 *    payload. Reject-never-misdecode like every other codec here.
 *
 * The plan's identity in the store's key vocabulary is
 * sweepPlanDigest() (store/keys.hh): a digest of the canonical JSON,
 * which coordinator and worker compare before executing anything.
 *
 * Deliberately NOT in the plan: the SystemConfig (every harness runs
 * the paper's Table 1 system; describeSystem() already keys stored
 * artifacts) and probes (opaque code — probe sweeps construct
 * EngineSpecs directly and pass them to run(plan, specs)).
 */

#ifndef STEMS_SIM_SWEEP_PLAN_HH
#define STEMS_SIM_SWEEP_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "prefetch/engine_registry.hh"
#include "sim/config.hh"

namespace stems {

/// Canonical JSON schema tag (also the digest domain prefix).
inline constexpr const char *kSweepPlanSchema = "stems-sweep-plan-v1";

/**
 * One engine column of a plan: a registered engine name, the label
 * results report it under (empty = the name), and the per-cell
 * parameter overrides. The serializable subset of EngineSpec.
 */
struct PlanEngine
{
    std::string engine;
    std::string label;
    EngineOptions options;
};

/**
 * Work-unit granularity for the distributed sweep service: how the
 * coordinator (net/coord.hh) decomposes this plan into units. Pure
 * scheduling policy — results are bitwise identical for any
 * setting — but part of the plan (and thus the digest) so every
 * worker agrees on the unit numbering the wire messages reference.
 */
enum class UnitGranularity : std::uint8_t
{
    kWorkload = 0, ///< one unit = one workload row (the default)
    kCell = 1,     ///< one unit = one (workload, engine column) cell
    kSegment = 2,  ///< one unit = one checkpoint-delimited slice of
                   ///< a cell, per the segments/checkpointEvery policy
};

/** Canonical lower-case name ("workload" | "cell" | "segment"). */
const char *unitGranularityName(UnitGranularity granularity);

/** Parse a canonical granularity name; false on anything else. */
bool parseUnitGranularity(const std::string &text,
                          UnitGranularity &out);

/** A complete, serializable sweep description. */
struct SweepPlan
{
    /// Registered workload names, in merge order.
    std::vector<std::string> workloads;
    /// Engine columns, in merge order.
    std::vector<PlanEngine> engines;

    /// Records generated per workload trace.
    std::uint64_t records = 2'000'000;
    /// Trace-generation seed.
    std::uint64_t seed = 42;
    /// Leading warmup fraction (ignored when warmupRecords is set).
    double warmupFraction = 0.5;
    /// Absolute warmup override (0 = use the fraction).
    std::uint64_t warmupRecords = 0;
    /// Model timing (Figure 10) or run functional-only (Figure 9).
    bool timing = false;

    // Execution policy. Every knob below is pure strategy: results
    // are bitwise identical for any setting (the driver tests pin
    // this), so none of them joins any cache key.
    /// Worker threads (0 = hardware concurrency).
    unsigned jobs = 0;
    /// Batched execution (one trace pass per workload).
    bool batch = true;
    /// Segmented execution: segment count (1 = off).
    unsigned segments = 1;
    /// Absolute checkpoint interval (0 = off; wins over segments).
    std::uint64_t checkpointEvery = 0;
    /// Speculative segment-parallel cold execution.
    bool speculate = false;
    /// Progress-heartbeat interval in seconds (0 = off).
    double heartbeatSeconds = 0.0;
    /// Distributed work-unit decomposition (net/units.hh).
    UnitGranularity unitGranularity = UnitGranularity::kWorkload;
};

/**
 * Canonical key-sorted JSON form (trailing newline included). Equal
 * plans produce equal bytes; parseSweepPlanJson(sweepPlanJson(p))
 * re-emits the identical bytes (sweep_plan_test.cc pins this).
 */
std::string sweepPlanJson(const SweepPlan &plan);

/**
 * Parse the canonical JSON form. Strict: the schema tag must match,
 * unknown or type-mismatched fields at any level (plan, engine,
 * options) are rejected, and trailing garbage is an error.
 *
 * @param error  optional; receives a one-line reason on failure.
 * @return false (plan unspecified) on any error.
 */
bool parseSweepPlanJson(const std::string &text, SweepPlan &plan,
                        std::string *error = nullptr);

/** Binary wire form ('SWPL' state_codec stream). */
std::vector<std::uint8_t> encodeSweepPlan(const SweepPlan &plan);

/** Decode the binary wire form; false on any structural mismatch. */
bool decodeSweepPlan(const std::vector<std::uint8_t> &bytes,
                     SweepPlan &plan);

/**
 * The ExperimentConfig a plan describes: Table 1 system plus the
 * plan's trace and warmup knobs.
 */
ExperimentConfig planExperimentConfig(const SweepPlan &plan);

} // namespace stems

#endif // STEMS_SIM_SWEEP_PLAN_HH
