/**
 * @file
 * Joint temporal/spatial predictability classification (paper
 * Figure 6) and miss-sequence extraction (input to the Figure 7
 * Sequitur study).
 *
 * Both analyses work on *off-chip read misses*, the metric used
 * throughout the paper's evaluation. Predictability is judged by
 * idealized (unbounded-table) oracles:
 *
 *  - temporal: the miss follows one of the last W misses in a
 *    previously observed windowed (predecessor, successor) miss pair.
 *    The window (default 4, the paper's reordering-window scale from
 *    Section 5.4) models a streaming engine's tolerance to interleaved
 *    unrelated misses and small reorderings -- a strict
 *    consecutive-pair oracle would understate what TMS streams
 *    actually cover;
 *  - spatial: the miss's block offset was part of the pattern recorded
 *    the last time this generation's lookup index (PC+offset) was
 *    observed, and the miss is not itself the generation trigger — the
 *    idealization of SMS.
 */

#ifndef STEMS_ANALYSIS_COVERAGE_HH
#define STEMS_ANALYSIS_COVERAGE_HH

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/generations.hh"
#include "mem/hierarchy.hh"
#include "trace/trace.hh"

namespace stems {

/** Figure 6 result: off-chip read misses by predictability class. */
struct JointCoverage
{
    std::uint64_t both = 0;
    std::uint64_t tmsOnly = 0;
    std::uint64_t smsOnly = 0;
    std::uint64_t neither = 0;

    std::uint64_t
    total() const
    {
        return both + tmsOnly + smsOnly + neither;
    }

    /** Fraction predictable temporally (both + tmsOnly). */
    double temporalFraction() const;

    /** Fraction predictable spatially (both + smsOnly). */
    double spatialFraction() const;

    /** Fraction predictable by at least one technique. */
    double jointFraction() const;
};

/**
 * Streams a trace through an L1/L2 model and classifies every off-chip
 * read miss.
 */
class JointCoverageAnalyzer
{
  public:
    /**
     * @param params           cache geometry delimiting misses.
     * @param temporal_window  lookback window of the temporal oracle.
     */
    explicit JointCoverageAnalyzer(const HierarchyParams &params = {},
                                   unsigned temporal_window = 4);

    /** Feed one trace record. */
    void step(const MemRecord &r);

    /**
     * Run a whole trace.
     *
     * @param warmup_records  records used to warm caches and oracle
     *                        state without being counted (the paper
     *                        measures from warmed checkpoints).
     */
    void run(const Trace &trace, std::size_t warmup_records = 0);

    /** Classification counts so far. */
    const JointCoverage &result() const { return result_; }

    /** Enable/disable counting (training continues regardless). */
    void setMeasuring(bool on) { measuring_ = on; }

  private:
    void onGenerationEnd(const Generation &g);

    Hierarchy hier_;
    GenerationTracker tracker_;
    JointCoverage result_;
    bool measuring_ = true;
    unsigned window_;

    // Temporal oracle state.
    std::vector<Addr> recentMisses_; ///< ring of the last W misses
    std::size_t recentPos_ = 0;
    std::unordered_set<std::uint64_t> pairsSeen_;

    // Spatial oracle state.
    std::unordered_map<std::uint64_t, std::uint32_t> patterns_;
    std::unordered_map<Addr, std::uint32_t> genSnapshot_;
};

/** Off-chip read-miss sequence plus its spatial-trigger subsequence. */
struct MissSequences
{
    /** Block addresses of all off-chip read misses, in order. */
    std::vector<Addr> allMisses;
    /** The subset of allMisses that were generation triggers. */
    std::vector<Addr> triggers;
};

/**
 * Extract the off-chip read-miss sequence and the trigger subsequence
 * for a trace (input to the Figure 7 repetition study).
 */
MissSequences extractMissSequences(const Trace &trace,
                                   const HierarchyParams &params = {});

} // namespace stems

#endif // STEMS_ANALYSIS_COVERAGE_HH
