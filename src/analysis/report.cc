#include "analysis/report.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <sstream>

#include "common/mini_json.hh"
#include "common/stats.hh"

namespace stems {

double
RunEngineRow::accuracy() const
{
    return ratio(covered, prefetchesIssued);
}

const RunEngineRow *
RunData::find(const std::string &workload,
              const std::string &engine) const
{
    for (const RunWorkloadRow &w : workloads) {
        if (w.workload != workload)
            continue;
        for (const RunEngineRow &e : w.engines)
            if (e.engine == engine)
                return &e;
    }
    return nullptr;
}

// ---- writer ----
// (jsonEscape / jsonDouble / the mini-JSON parser live in
// common/mini_json.hh, shared with the obs/ artifact writers.)

bool
writeResultsJson(const std::string &path, std::uint64_t records,
                 std::uint64_t seed,
                 const std::vector<WorkloadResult> &results,
                 std::string *error)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        if (error)
            *error = "cannot write " + path;
        return false;
    }
    std::fprintf(f,
                 "{\n  \"records\": %llu,\n  \"seed\": %llu,\n"
                 "  \"workloads\": [\n",
                 static_cast<unsigned long long>(records),
                 static_cast<unsigned long long>(seed));
    for (std::size_t i = 0; i < results.size(); ++i) {
        const WorkloadResult &r = results[i];
        std::fprintf(
            f,
            "    {\n      \"workload\": \"%s\",\n"
            "      \"class\": \"%s\",\n"
            "      \"baselineMisses\": %llu,\n"
            "      \"baselineIpc\": %s,\n"
            "      \"baselineCycles\": %s,\n"
            "      \"strideCycles\": %s,\n"
            "      \"engines\": [\n",
            jsonEscape(r.workload).c_str(),
            jsonEscape(workloadClassName(r.workloadClass)).c_str(),
            static_cast<unsigned long long>(r.baselineMisses),
            jsonDouble(r.baselineIpc).c_str(),
            jsonDouble(r.baselineCycles).c_str(),
            jsonDouble(r.strideCycles).c_str());
        for (std::size_t j = 0; j < r.engines.size(); ++j) {
            const EngineResult &e = r.engines[j];
            std::fprintf(
                f,
                "        {\"engine\": \"%s\", \"coverage\": %s, "
                "\"uncovered\": %s, \"overprediction\": %s, "
                "\"speedup\": %s, \"prefetchesIssued\": %llu, "
                "\"offChipReads\": %llu, \"covered\": %llu",
                jsonEscape(e.engine).c_str(),
                jsonDouble(e.coverage).c_str(),
                jsonDouble(e.uncovered).c_str(),
                jsonDouble(e.overprediction).c_str(),
                jsonDouble(e.speedup).c_str(),
                static_cast<unsigned long long>(
                    e.stats.prefetchesIssued),
                static_cast<unsigned long long>(
                    e.stats.offChipReads),
                static_cast<unsigned long long>(
                    e.stats.covered()));
            if (!e.extra.empty()) {
                std::fprintf(f, ", \"extra\": {");
                bool first = true;
                for (const auto &kv : e.extra) {
                    std::fprintf(f, "%s\"%s\": %s",
                                 first ? "" : ", ",
                                 jsonEscape(kv.first).c_str(),
                                 jsonDouble(kv.second).c_str());
                    first = false;
                }
                std::fprintf(f, "}");
            }
            std::fprintf(f, "}%s\n",
                         j + 1 < r.engines.size() ? "," : "");
        }
        std::fprintf(f, "      ]\n    }%s\n",
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
}

// ---- parser ----

bool
loadResultsJson(const std::string &path, RunData &out,
                std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error)
            *error = "cannot read " + path;
        return false;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    std::string text = ss.str();

    JsonParser parser(text);
    JsonValue root;
    if (!parser.parseValue(root) ||
        root.kind != JsonValue::Kind::kObject) {
        if (error)
            *error = path + ": " +
                     (parser.error.empty() ? "not a JSON object"
                                           : parser.error);
        return false;
    }

    out = RunData();
    out.source = path;
    out.records = root.uint("records");
    out.seed = root.uint("seed");
    const JsonValue *workloads = root.get("workloads");
    if (!workloads || workloads->kind != JsonValue::Kind::kArray) {
        if (error)
            *error = path + ": missing \"workloads\" array";
        return false;
    }
    for (const JsonValue &w : workloads->items) {
        if (w.kind != JsonValue::Kind::kObject)
            continue;
        RunWorkloadRow row;
        row.workload = w.str("workload");
        row.workloadClass = w.str("class");
        row.baselineMisses = w.uint("baselineMisses");
        row.baselineIpc = w.num("baselineIpc");
        row.baselineCycles = w.num("baselineCycles");
        row.strideCycles = w.num("strideCycles");
        if (const JsonValue *engines = w.get("engines")) {
            for (const JsonValue &e : engines->items) {
                if (e.kind != JsonValue::Kind::kObject)
                    continue;
                RunEngineRow er;
                er.engine = e.str("engine");
                er.coverage = e.num("coverage");
                er.uncovered = e.num("uncovered");
                er.overprediction = e.num("overprediction");
                er.speedup = e.num("speedup");
                er.prefetchesIssued = e.uint("prefetchesIssued");
                er.offChipReads = e.uint("offChipReads");
                er.covered = e.uint("covered");
                er.hasCovered = e.get("covered") != nullptr;
                if (const JsonValue *extra = e.get("extra"))
                    for (const auto &kv : extra->members)
                        if (kv.second.kind ==
                            JsonValue::Kind::kNumber)
                            er.extra[kv.first] = kv.second.number;
                row.engines.push_back(std::move(er));
            }
        }
        out.workloads.push_back(std::move(row));
    }
    return true;
}

// ---- comparison ----

RunComparison
compareRuns(const RunData &old_run, const RunData &new_run,
            double threshold)
{
    RunComparison cmp;
    cmp.configMismatch = old_run.records != new_run.records ||
                         old_run.seed != new_run.seed;

    auto moved = [threshold](double a, double b) {
        return std::fabs(b - a) > threshold;
    };
    auto worse = [threshold](double from, double to) {
        return from - to > threshold;
    };

    auto classify = [&](DeltaRow &row) {
        if (!row.inOld || !row.inNew) {
            row.changed = true;
            return;
        }
        // A run written before the "covered" field existed cannot
        // report accuracy; comparing against a fabricated 0 would
        // flag every cell, so the column is excluded instead.
        bool acc_moved = row.accComparable &&
                         moved(row.accOld, row.accNew);
        bool acc_worse = row.accComparable &&
                         worse(row.accOld, row.accNew);
        row.changed = moved(row.covOld, row.covNew) || acc_moved ||
                      moved(row.overOld, row.overNew) ||
                      moved(row.spOld, row.spNew) ||
                      row.baseOld != row.baseNew;
        row.regression = worse(row.covOld, row.covNew) ||
                         acc_worse ||
                         worse(row.spOld, row.spNew) ||
                         worse(row.overNew, row.overOld);
    };

    auto fillOld = [](DeltaRow &row, std::uint64_t base,
                      const RunEngineRow &e) {
        row.inOld = true;
        row.baseOld = base;
        row.covOld = e.coverage;
        row.accOld = e.accuracy();
        row.accComparable = row.accComparable && e.hasCovered;
        row.overOld = e.overprediction;
        row.spOld = e.speedup;
    };
    auto fillNew = [](DeltaRow &row, std::uint64_t base,
                      const RunEngineRow &e) {
        row.inNew = true;
        row.baseNew = base;
        row.covNew = e.coverage;
        row.accNew = e.accuracy();
        row.accComparable = row.accComparable && e.hasCovered;
        row.overNew = e.overprediction;
        row.spNew = e.speedup;
    };

    // Old-run order first, then cells only the new run has.
    for (const RunWorkloadRow &w : old_run.workloads) {
        for (const RunEngineRow &e : w.engines) {
            DeltaRow row;
            row.workload = w.workload;
            row.engine = e.engine;
            fillOld(row, w.baselineMisses, e);
            for (const RunWorkloadRow &nw : new_run.workloads) {
                if (nw.workload != w.workload)
                    continue;
                for (const RunEngineRow &ne : nw.engines)
                    if (ne.engine == e.engine)
                        fillNew(row, nw.baselineMisses, ne);
            }
            classify(row);
            cmp.rows.push_back(std::move(row));
        }
    }
    for (const RunWorkloadRow &w : new_run.workloads) {
        for (const RunEngineRow &e : w.engines) {
            if (old_run.find(w.workload, e.engine))
                continue;
            DeltaRow row;
            row.workload = w.workload;
            row.engine = e.engine;
            fillNew(row, w.baselineMisses, e);
            classify(row);
            cmp.rows.push_back(std::move(row));
        }
    }

    for (const DeltaRow &row : cmp.rows) {
        if (row.changed)
            ++cmp.changed;
        if (row.regression)
            ++cmp.regressions;
    }
    return cmp;
}

// ---- rendering ----

namespace {

std::string
pct(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f%%", 100.0 * v);
    return buf;
}

std::string
pp(double delta)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.2f", 100.0 * delta);
    return buf;
}

std::string
mult(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3fx", v);
    return buf;
}

std::string
rowFlag(const DeltaRow &row)
{
    if (!row.inNew)
        return "removed";
    if (!row.inOld)
        return "added";
    if (row.regression)
        return "REGRESSION";
    if (row.changed)
        return "changed";
    return "";
}

std::string
utcTime(std::int64_t unix_seconds)
{
    std::time_t t = static_cast<std::time_t>(unix_seconds);
    std::tm tm{};
    gmtime_r(&t, &tm);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%d %H:%M:%S", &tm);
    return buf;
}

} // namespace

std::string
renderComparisonMarkdown(const RunComparison &cmp,
                         const RunData &old_run,
                         const RunData &new_run, double threshold)
{
    std::ostringstream os;
    os << "# Run comparison\n\n";
    os << "| run | file | records | seed |\n";
    os << "| --- | --- | ---: | ---: |\n";
    os << "| old | " << old_run.source << " | " << old_run.records
       << " | " << old_run.seed << " |\n";
    os << "| new | " << new_run.source << " | " << new_run.records
       << " | " << new_run.seed << " |\n\n";
    if (cmp.configMismatch)
        os << "**Warning:** records/seed differ — the runs compare "
              "different experiments.\n\n";
    os << cmp.rows.size() << " cells, " << cmp.changed
       << " changed, " << cmp.regressions
       << " regressions (threshold " << jsonDouble(threshold)
       << ").\n\n";
    os << "| workload | engine | coverage | Δcov (pp) | accuracy | "
          "Δacc (pp) | overpred | Δover (pp) | speedup | Δspd | "
          "flag |\n";
    os << "| --- | --- | --- | ---: | --- | ---: | --- | ---: | "
          "--- | ---: | --- |\n";
    for (const DeltaRow &row : cmp.rows) {
        auto arrow = [&](const std::string &a, const std::string &b)
            -> std::string {
            if (!row.inOld)
                return "— → " + b;
            if (!row.inNew)
                return a + " → —";
            return a == b ? a : a + " → " + b;
        };
        os << "| " << row.workload << " | " << row.engine << " | "
           << arrow(pct(row.covOld), pct(row.covNew)) << " | "
           << (row.inOld && row.inNew
                   ? pp(row.covNew - row.covOld)
                   : "")
           << " | "
           << (row.accComparable
                   ? arrow(pct(row.accOld), pct(row.accNew))
                   : "n/a")
           << " | "
           << (row.inOld && row.inNew && row.accComparable
                   ? pp(row.accNew - row.accOld)
                   : "")
           << " | " << arrow(pct(row.overOld), pct(row.overNew))
           << " | "
           << (row.inOld && row.inNew
                   ? pp(row.overNew - row.overOld)
                   : "")
           << " | " << arrow(mult(row.spOld), mult(row.spNew))
           << " | "
           << (row.inOld && row.inNew
                   ? (std::string(row.spNew >= row.spOld ? "+" : "") +
                      mult(row.spNew - row.spOld))
                   : "")
           << " | " << rowFlag(row) << " |\n";
    }
    return os.str();
}

std::string
renderComparisonCsv(const RunComparison &cmp)
{
    std::ostringstream os;
    os << "workload,engine,status,coverageOld,coverageNew,"
          "accuracyOld,accuracyNew,overpredictionOld,"
          "overpredictionNew,speedupOld,speedupNew,"
          "baselineMissesOld,baselineMissesNew\n";
    for (const DeltaRow &row : cmp.rows) {
        std::string flag = rowFlag(row);
        os << row.workload << ',' << row.engine << ','
           << (flag.empty() ? "ok" : flag) << ','
           << jsonDouble(row.covOld) << ','
           << jsonDouble(row.covNew) << ','
           // Empty accuracy fields when a pre-"covered" file is
           // involved: the value would be fabricated.
           << (row.accComparable ? jsonDouble(row.accOld) : "")
           << ','
           << (row.accComparable ? jsonDouble(row.accNew) : "")
           << ','
           << jsonDouble(row.overOld) << ','
           << jsonDouble(row.overNew) << ','
           << jsonDouble(row.spOld) << ','
           << jsonDouble(row.spNew) << ',' << row.baseOld << ','
           << row.baseNew << '\n';
    }
    return os.str();
}

std::string
renderHistoryMarkdown(const std::vector<StoredResultInfo> &entries,
                      const std::string &store_dir)
{
    std::ostringstream os;
    os << "# Stored-run trajectory — " << store_dir << "\n\n";
    if (entries.empty()) {
        os << "No cached engine results in this store.\n";
        return os.str();
    }
    os << entries.size()
       << " cached engine results, oldest first.\n\n";
    os << "| saved (UTC) | workload | engine | records | seed | "
          "timing | coverage | accuracy | speedup |\n";
    os << "| --- | --- | --- | ---: | ---: | --- | ---: | ---: | "
          "---: |\n";
    for (const StoredResultInfo &e : entries) {
        os << "| " << utcTime(e.savedAtUnix) << " | "
           << e.meta.workload << " | " << e.meta.engine << " | "
           << e.meta.records << " | " << e.meta.seed << " | "
           << (e.meta.timing ? "yes" : "no") << " | "
           << pct(e.meta.coverage) << " | " << pct(e.meta.accuracy)
           << " | "
           << (e.meta.timing ? mult(e.meta.speedup) : "—")
           << " |\n";
    }
    return os.str();
}

std::string
renderHistoryCsv(const std::vector<StoredResultInfo> &entries)
{
    std::ostringstream os;
    os << "savedAtUnix,workload,engine,records,seed,timing,"
          "coverage,accuracy,speedup\n";
    for (const StoredResultInfo &e : entries) {
        os << e.savedAtUnix << ',' << e.meta.workload << ','
           << e.meta.engine << ',' << e.meta.records << ','
           << e.meta.seed << ',' << (e.meta.timing ? 1 : 0) << ','
           << jsonDouble(e.meta.coverage) << ','
           << jsonDouble(e.meta.accuracy) << ','
           << jsonDouble(e.meta.speedup) << '\n';
    }
    return os.str();
}

// ---- performance snapshots (BENCH_*.json) ----------------------

const BenchComponentRow *
BenchSnapshot::find(const std::string &name) const
{
    for (const BenchComponentRow &c : components)
        if (c.name == name)
            return &c;
    return nullptr;
}

bool
writeBenchSnapshotJson(const std::string &path,
                       const BenchSnapshot &snap, std::string *error)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        if (error)
            *error = "cannot write " + path;
        return false;
    }
    std::fprintf(f,
                 "{\n  \"schema\": \"%s\",\n"
                 "  \"records\": %llu,\n  \"seed\": %llu,\n"
                 "  \"repeat\": %llu,\n  \"comment\": \"%s\",\n",
                 jsonEscape(snap.schema).c_str(),
                 static_cast<unsigned long long>(snap.records),
                 static_cast<unsigned long long>(snap.seed),
                 static_cast<unsigned long long>(snap.repeat),
                 jsonEscape(snap.comment).c_str());
    auto string_list = [&](const char *key,
                           const std::vector<std::string> &v) {
        std::fprintf(f, "  \"%s\": [", key);
        for (std::size_t i = 0; i < v.size(); ++i)
            std::fprintf(f, "%s\"%s\"", i ? ", " : "",
                         jsonEscape(v[i]).c_str());
        std::fprintf(f, "],\n");
    };
    string_list("workloads", snap.workloads);
    string_list("engines", snap.engines);
    std::fprintf(f, "  \"wallSeconds\": %s,\n  \"components\": [\n",
                 jsonDouble(snap.wallSeconds).c_str());
    for (std::size_t i = 0; i < snap.components.size(); ++i) {
        const BenchComponentRow &c = snap.components[i];
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"ops\": %llu, "
                     "\"nsPerOp\": %s, \"opsPerSec\": %s}%s\n",
                     jsonEscape(c.name).c_str(),
                     static_cast<unsigned long long>(c.ops),
                     jsonDouble(c.nsPerOp).c_str(),
                     jsonDouble(c.opsPerSec).c_str(),
                     i + 1 < snap.components.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
}

bool
loadBenchSnapshotJson(const std::string &path, BenchSnapshot &out,
                      std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error)
            *error = "cannot read " + path;
        return false;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    std::string text = ss.str();

    JsonParser parser(text);
    JsonValue root;
    if (!parser.parseValue(root) ||
        root.kind != JsonValue::Kind::kObject) {
        if (error)
            *error = path + ": " +
                     (parser.error.empty() ? "not a JSON object"
                                           : parser.error);
        return false;
    }
    out = BenchSnapshot();
    out.source = path;
    out.schema = root.str("schema");
    if (out.schema != "stems-micro-v1" &&
        out.schema != "stems-perf-v1") {
        if (error)
            *error = path + ": not a performance snapshot (schema '" +
                     out.schema + "')";
        return false;
    }
    out.records = root.uint("records");
    out.seed = root.uint("seed");
    out.repeat = root.uint("repeat");
    out.comment = root.str("comment");
    out.wallSeconds = root.num("wallSeconds");
    auto read_strings = [&](const char *key,
                            std::vector<std::string> &v) {
        const JsonValue *arr = root.get(key);
        if (!arr || arr->kind != JsonValue::Kind::kArray)
            return;
        for (const JsonValue &item : arr->items)
            if (item.kind == JsonValue::Kind::kString)
                v.push_back(item.text);
    };
    read_strings("workloads", out.workloads);
    read_strings("engines", out.engines);
    const JsonValue *components = root.get("components");
    if (!components ||
        components->kind != JsonValue::Kind::kArray) {
        if (error)
            *error = path + ": missing components array";
        return false;
    }
    for (const JsonValue &c : components->items) {
        if (c.kind != JsonValue::Kind::kObject)
            continue;
        BenchComponentRow row;
        row.name = c.str("name");
        row.ops = c.uint("ops");
        row.nsPerOp = c.num("nsPerOp");
        row.opsPerSec = c.num("opsPerSec");
        out.components.push_back(std::move(row));
    }
    return true;
}

BenchComparison
compareBenchSnapshots(const BenchSnapshot &old_snap,
                      const BenchSnapshot &new_snap,
                      double tolerance)
{
    BenchComparison cmp;
    cmp.configMismatch = old_snap.schema != new_snap.schema ||
                         old_snap.records != new_snap.records ||
                         old_snap.seed != new_snap.seed;

    auto add_row = [&](const std::string &name) {
        for (const BenchDeltaRow &r : cmp.rows)
            if (r.name == name)
                return;
        BenchDeltaRow row;
        row.name = name;
        const BenchComponentRow *o = old_snap.find(name);
        const BenchComponentRow *n = new_snap.find(name);
        row.inOld = o != nullptr;
        row.inNew = n != nullptr;
        if (o && n) {
            row.opsPerSecOld = o->opsPerSec;
            row.opsPerSecNew = n->opsPerSec;
            if (o->opsPerSec > 0)
                row.speedup = n->opsPerSec / o->opsPerSec;
            row.regression =
                n->opsPerSec < o->opsPerSec * (1.0 - tolerance);
        } else {
            // A component that appeared or vanished is a harness
            // change the baseline does not cover: flag it.
            row.regression = true;
        }
        if (row.regression)
            ++cmp.regressions;
        cmp.rows.push_back(std::move(row));
    };
    for (const BenchComponentRow &c : old_snap.components)
        add_row(c.name);
    for (const BenchComponentRow &c : new_snap.components)
        add_row(c.name);
    return cmp;
}

std::string
renderBenchComparisonMarkdown(const BenchComparison &cmp,
                              const BenchSnapshot &old_snap,
                              const BenchSnapshot &new_snap,
                              double tolerance)
{
    std::ostringstream os;
    os << "# Performance comparison\n\n"
       << "- old: `" << old_snap.source << "`"
       << (old_snap.comment.empty() ? ""
                                    : " — " + old_snap.comment)
       << "\n- new: `" << new_snap.source << "`"
       << (new_snap.comment.empty() ? ""
                                    : " — " + new_snap.comment)
       << "\n- tolerance: throughput may drop at most "
       << static_cast<int>(tolerance * 100 + 0.5) << "%\n";
    if (cmp.configMismatch) {
        os << "\n**warning: schema/records/seed differ — "
              "throughputs compare different experiments**\n";
    }
    os << "\n| component | old ops/s | new ops/s | speedup | |\n"
       << "|---|---:|---:|---:|---|\n";
    char buf[64];
    auto fmt = [&](double v) {
        std::snprintf(buf, sizeof(buf), "%.3g", v);
        return std::string(buf);
    };
    for (const BenchDeltaRow &r : cmp.rows) {
        os << "| " << r.name << " | "
           << (r.inOld ? fmt(r.opsPerSecOld) : std::string("-"))
           << " | "
           << (r.inNew ? fmt(r.opsPerSecNew) : std::string("-"))
           << " | ";
        std::snprintf(buf, sizeof(buf), "%.2fx", r.speedup);
        os << (r.inOld && r.inNew ? buf : "-") << " | "
           << (r.regression ? "**REGRESSION**" : "") << " |\n";
    }
    os << "\n" << cmp.regressions << " regression(s)\n";
    return os.str();
}

std::string
renderBenchHistoryMarkdown(const std::vector<BenchSnapshot> &snaps)
{
    std::ostringstream os;
    os << "# Committed performance trajectory\n\n"
       << "| snapshot | schema | records | seed | component | "
          "ops/s | note |\n"
       << "|---|---|---:|---:|---|---:|---|\n";
    char buf[64];
    for (const BenchSnapshot &s : snaps) {
        std::string file = s.source;
        std::size_t slash = file.find_last_of('/');
        if (slash != std::string::npos)
            file = file.substr(slash + 1);
        for (const BenchComponentRow &c : s.components) {
            std::snprintf(buf, sizeof(buf), "%.3g", c.opsPerSec);
            os << "| " << file << " | " << s.schema << " | "
               << s.records << " | " << s.seed << " | " << c.name
               << " | " << buf << " | " << s.comment << " |\n";
        }
    }
    return os.str();
}

} // namespace stems
