/**
 * @file
 * Intra-generation correlation-distance analysis (paper Figure 8).
 *
 * For each terminating spatial generation, the access sequence is
 * compared against the previous occurrence of the same generation
 * (identified by its spatial lookup index). For every pair of
 * consecutive offsets in the new sequence, the correlation distance is
 * the separation of those two offsets in the prior sequence: +1 means
 * perfect repetition; anything else is a reordering.
 */

#ifndef STEMS_ANALYSIS_CORRELATION_HH
#define STEMS_ANALYSIS_CORRELATION_HH

#include <unordered_map>
#include <vector>

#include "analysis/generations.hh"
#include "common/stats.hh"
#include "mem/cache.hh"
#include "trace/trace.hh"

namespace stems {

/**
 * Computes the Figure 8 correlation-distance distribution for a trace.
 */
class CorrelationAnalyzer
{
  public:
    /** Construct with the L1 geometry that delimits generations. */
    explicit CorrelationAnalyzer(std::size_t l1_bytes = 64 * 1024,
                                 std::size_t l1_ways = 2);

    /** Feed one trace record. */
    void step(const MemRecord &r);

    /** Run a whole trace and terminate outstanding generations. */
    void run(const Trace &trace);

    /** Terminate all active generations (end of input). */
    void finish();

    /** Distance histogram (bucket +1 = perfect repetition). */
    const Histogram &distances() const { return distances_; }

    /**
     * Fraction of consecutive-access pairs whose distance lies in
     * [-window, +window]. The paper reports windows of 2 and 4.
     */
    double fractionWithinWindow(std::int64_t window) const;

    /** Pairs whose offsets were absent from the prior sequence. */
    std::uint64_t unmatchedPairs() const { return unmatched_; }

    /** Generations with no prior occurrence of their index. */
    std::uint64_t coldGenerations() const { return cold_; }

  private:
    void onGenerationEnd(const Generation &g);

    Cache l1_;
    GenerationTracker tracker_;
    Histogram distances_;
    std::uint64_t unmatched_ = 0;
    std::uint64_t cold_ = 0;
    /** Last observed sequence per spatial lookup index. */
    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>>
        prior_;
};

} // namespace stems

#endif // STEMS_ANALYSIS_CORRELATION_HH
