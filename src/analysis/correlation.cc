#include "analysis/correlation.hh"

namespace stems {

CorrelationAnalyzer::CorrelationAnalyzer(std::size_t l1_bytes,
                                         std::size_t l1_ways)
    : l1_("corr-l1", l1_bytes, l1_ways)
{
    tracker_.setTerminateCallback(
        [this](const Generation &g) { onGenerationEnd(g); });
}

void
CorrelationAnalyzer::step(const MemRecord &r)
{
    if (r.isInvalidate()) {
        if (l1_.invalidate(r.vaddr))
            tracker_.blockRemoved(r.vaddr);
        return;
    }

    tracker_.access(r.vaddr, r.pc);
    if (!l1_.access(r.vaddr)) {
        auto victim = l1_.insert(blockAlign(r.vaddr));
        if (victim)
            tracker_.blockRemoved(victim->addr);
    }
}

void
CorrelationAnalyzer::run(const Trace &trace)
{
    for (const MemRecord &r : trace)
        step(r);
    finish();
}

void
CorrelationAnalyzer::finish()
{
    tracker_.flush();
}

void
CorrelationAnalyzer::onGenerationEnd(const Generation &g)
{
    auto it = prior_.find(g.index);
    if (it == prior_.end()) {
        ++cold_;
        prior_.emplace(g.index, g.sequence);
        return;
    }

    const std::vector<std::uint8_t> &old = it->second;

    // Position of each offset in the prior sequence (-1 if absent).
    int pos[kBlocksPerRegion];
    for (unsigned i = 0; i < kBlocksPerRegion; ++i)
        pos[i] = -1;
    for (std::size_t i = 0; i < old.size(); ++i)
        pos[old[i]] = static_cast<int>(i);

    for (std::size_t i = 0; i + 1 < g.sequence.size(); ++i) {
        int p1 = pos[g.sequence[i]];
        int p2 = pos[g.sequence[i + 1]];
        if (p1 < 0 || p2 < 0) {
            ++unmatched_;
            continue;
        }
        distances_.add(p2 - p1);
    }

    it->second = g.sequence;
}

double
CorrelationAnalyzer::fractionWithinWindow(std::int64_t window) const
{
    return distances_.fractionBetween(-window, window);
}

} // namespace stems
