/**
 * @file
 * Run-comparison reporting: the machine-readable `--json` result
 * format every bench emits (one writer, one parser, so the two can
 * never drift), per-(workload, engine) delta computation between two
 * stored runs with regression highlighting, and Markdown/CSV
 * rendering — the backend of the `stems_report` tool.
 */

#ifndef STEMS_ANALYSIS_REPORT_HH
#define STEMS_ANALYSIS_REPORT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "store/trace_store.hh"

namespace stems {

/** One engine's metrics as stored in a `--json` result file. */
struct RunEngineRow
{
    std::string engine;
    double coverage = 0.0;
    double uncovered = 0.0;
    double overprediction = 0.0;
    double speedup = 0.0;
    std::uint64_t covered = 0;
    /// The file carried a "covered" field (older writers did not;
    /// without it the accuracy column cannot be computed).
    bool hasCovered = false;
    std::uint64_t prefetchesIssued = 0;
    std::uint64_t offChipReads = 0;
    std::map<std::string, double> extra;

    /** covered / prefetches issued (0 when none were issued). */
    double accuracy() const;
};

/** One workload's row of a stored run. */
struct RunWorkloadRow
{
    std::string workload;
    std::string workloadClass;
    std::uint64_t baselineMisses = 0;
    double baselineIpc = 0.0;
    double baselineCycles = 0.0;
    double strideCycles = 0.0;
    std::vector<RunEngineRow> engines;
};

/** A parsed `--json` result file. */
struct RunData
{
    std::string source; ///< path the run was loaded from
    std::uint64_t records = 0;
    std::uint64_t seed = 0;
    std::vector<RunWorkloadRow> workloads;

    /** Engine row for (workload, engine); null when absent. */
    const RunEngineRow *find(const std::string &workload,
                             const std::string &engine) const;
};

/**
 * Write sweep results as JSON (full %.17g doubles, stable key
 * order) — the single serializer behind every bench's `--json`.
 * @return false (with *error set) when the file cannot be written.
 */
bool writeResultsJson(const std::string &path, std::uint64_t records,
                      std::uint64_t seed,
                      const std::vector<WorkloadResult> &results,
                      std::string *error = nullptr);

/** Parse a file written by writeResultsJson. Unknown fields are
 *  ignored (forward compatibility). */
bool loadResultsJson(const std::string &path, RunData &out,
                     std::string *error = nullptr);

/** One (workload, engine) line of a run comparison. */
struct DeltaRow
{
    std::string workload;
    std::string engine;
    bool inOld = false;
    bool inNew = false;
    double covOld = 0.0, covNew = 0.0;
    double accOld = 0.0, accNew = 0.0;
    /// Both runs carried the data accuracy derives from; when
    /// false (a pre-"covered" file is involved) the accuracy
    /// columns are not compared and render as n/a.
    bool accComparable = true;
    double overOld = 0.0, overNew = 0.0;
    double spOld = 0.0, spNew = 0.0;
    std::uint64_t baseOld = 0, baseNew = 0;
    /// Any watched metric moved beyond the threshold (or the row
    /// exists in only one run, or the baselines differ).
    bool changed = false;
    /// A watched metric moved beyond the threshold in the *bad*
    /// direction: coverage/accuracy/speedup down, overprediction up.
    bool regression = false;
};

/** Comparison of two runs over the union of their cells. */
struct RunComparison
{
    std::vector<DeltaRow> rows;
    std::size_t changed = 0;
    std::size_t regressions = 0;
    /// records/seed differ: deltas compare different experiments.
    bool configMismatch = false;
};

/**
 * Compare two runs cell by cell. A metric counts as changed when
 * |new - old| > threshold, so threshold 0 flags any non-identical
 * value (the CI cold-vs-warm check relies on that exactness).
 */
RunComparison compareRuns(const RunData &old_run,
                          const RunData &new_run, double threshold);

std::string renderComparisonMarkdown(const RunComparison &cmp,
                                     const RunData &old_run,
                                     const RunData &new_run,
                                     double threshold);

std::string renderComparisonCsv(const RunComparison &cmp);

/** Trajectory table over a store's result entries, oldest first
 *  (`stems_report history`). */
std::string
renderHistoryMarkdown(const std::vector<StoredResultInfo> &entries,
                      const std::string &store_dir);

std::string
renderHistoryCsv(const std::vector<StoredResultInfo> &entries);

// ---- performance snapshots (BENCH_*.json) ----------------------

/** One measured throughput row of a performance snapshot: a
 *  micro-suite component, or the whole pinned sweep. */
struct BenchComponentRow
{
    std::string name;
    std::uint64_t ops = 0;    ///< operations timed
    double nsPerOp = 0.0;     ///< wall nanoseconds per operation
    double opsPerSec = 0.0;   ///< throughput (the gated metric)
};

/**
 * A performance snapshot — the committed records/sec trajectory.
 *
 * Two schemas share this shape: "stems-micro-v1" (per-component
 * micro-costs from bench/micro_engines) and "stems-perf-v1" (whole
 * pinned-sweep records/sec, written by a driver bench's --perf
 * flag). Both carry their rows in `components`, so one comparison
 * path gates both.
 */
struct BenchSnapshot
{
    std::string source; ///< path the snapshot was loaded from
    std::string schema;
    std::uint64_t records = 0;
    std::uint64_t seed = 0;
    std::uint64_t repeat = 0; ///< best-of repetitions (micro)
    /// Free-form provenance: hardware, compiler, pin note.
    std::string comment;
    /// Sweep shape (perf schema; empty for micro).
    std::vector<std::string> workloads;
    std::vector<std::string> engines;
    double wallSeconds = 0.0; ///< sweep wall time (perf schema)
    std::vector<BenchComponentRow> components;

    /** Row by component name; null when absent. */
    const BenchComponentRow *find(const std::string &name) const;
};

/** Write a snapshot (stable key order, %.17g doubles). */
bool writeBenchSnapshotJson(const std::string &path,
                            const BenchSnapshot &snap,
                            std::string *error = nullptr);

/** Parse a file written by writeBenchSnapshotJson. */
bool loadBenchSnapshotJson(const std::string &path,
                           BenchSnapshot &out,
                           std::string *error = nullptr);

/** One component line of a snapshot comparison. */
struct BenchDeltaRow
{
    std::string name;
    bool inOld = false;
    bool inNew = false;
    double opsPerSecOld = 0.0;
    double opsPerSecNew = 0.0;
    /// new/old throughput (1.0 when either side is missing).
    double speedup = 1.0;
    /// Throughput dropped by more than the tolerance fraction (or
    /// the row exists in only one snapshot).
    bool regression = false;
};

/** Comparison of two snapshots over the union of components. */
struct BenchComparison
{
    std::vector<BenchDeltaRow> rows;
    std::size_t regressions = 0;
    /// Schema/records/seed differ: throughputs are not comparable.
    bool configMismatch = false;
};

/**
 * Compare two snapshots. A component regresses when its throughput
 * fell below old * (1 - tolerance); tolerance 0.15 is the CI gate.
 */
BenchComparison compareBenchSnapshots(const BenchSnapshot &old_snap,
                                      const BenchSnapshot &new_snap,
                                      double tolerance);

std::string renderBenchComparisonMarkdown(
    const BenchComparison &cmp, const BenchSnapshot &old_snap,
    const BenchSnapshot &new_snap, double tolerance);

/** Trajectory table over committed snapshots, in the given order
 *  (`stems_report history --bench DIR` sorts by file name). */
std::string
renderBenchHistoryMarkdown(const std::vector<BenchSnapshot> &snaps);

} // namespace stems

#endif // STEMS_ANALYSIS_REPORT_HH
