#include "analysis/sequitur.hh"

#include "common/log.hh"

namespace stems {

Sequitur::Sequitur()
{
    // Grammar growth is unbounded by config, but the per-insert cost
    // is dominated by digram-index churn: pre-sizing the hot maps
    // past the libstdc++ default (13 buckets) skips the rehash
    // cascade every fresh grammar otherwise pays while small.
    index_.reserve(kInitialBuckets);
    valueCounts_.reserve(kInitialBuckets);
    liveSyms_.reserve(kInitialBuckets);

    root_ = newRule();
    // The root rule does not participate in utility accounting.
    rules_.erase(root_);
}

Sequitur::~Sequitur()
{
    auto free_rule_storage = [](Rule *r) {
        Sym *s = r->guard->next;
        while (s != r->guard) {
            Sym *next = s->next;
            delete s;
            s = next;
        }
        delete r->guard;
        delete r;
    };
    for (Rule *r : rules_)
        free_rule_storage(r);
    free_rule_storage(root_);
}

std::uint64_t
Sequitur::code(const Sym *s)
{
    // Terminals and nonterminals must never collide: terminals encode
    // as even numbers, rule references as odd.
    if (s->rule)
        return (static_cast<std::uint64_t>(s->rule->id) << 1) | 1;
    return s->value << 1;
}

Sequitur::DigramKey
Sequitur::key(const Sym *a)
{
    return {code(a), code(a->next)};
}

Sequitur::Rule *
Sequitur::newRule()
{
    Rule *r = new Rule;
    r->id = nextRuleId_++;
    r->useCount = 0;
    r->guard = new Sym;
    r->guard->guard = true;
    r->guard->owner = r;
    r->guard->next = r->guard;
    r->guard->prev = r->guard;
    rules_.insert(r);
    return r;
}

Sequitur::Sym *
Sequitur::newTerminal(std::uint64_t value)
{
    Sym *s = new Sym;
    s->value = value;
    liveSyms_.insert(s);
    return s;
}

Sequitur::Sym *
Sequitur::newNonterminal(Rule *r)
{
    Sym *s = new Sym;
    s->rule = r;
    ++r->useCount;
    liveSyms_.insert(s);
    return s;
}

void
Sequitur::freeSym(Sym *s)
{
    if (s->rule) {
        if (s->rule->useCount == 0)
            panic("sequitur: rule use count underflow");
        --s->rule->useCount;
    }
    liveSyms_.erase(s);
    delete s;
}

void
Sequitur::join(Sym *a, Sym *b)
{
    a->next = b;
    b->prev = a;
}

void
Sequitur::insertAfter(Sym *pos, Sym *s)
{
    join(s, pos->next);
    join(pos, s);
}

bool
Sequitur::removeDigramEntry(Sym *a)
{
    if (a->guard || a->next->guard)
        return false;
    auto it = index_.find(key(a));
    if (it != index_.end() && it->second == a) {
        index_.erase(it);
        return true;
    }
    return false;
}

void
Sequitur::scrubDigram(Sym *a)
{
    // The digram (a, a->next) is about to die. If it owned the index
    // entry for its type, an *overlapping* twin occurrence (runs like
    // "x x x" index only their first digram) may survive unindexed;
    // requeue both potential twins so they regain index coverage.
    if (removeDigramEntry(a)) {
        queueCheck(a->prev); // left twin: (a->prev, a)
        queueCheck(a->next); // right twin: (a->next, a->next->next)
    }
}

void
Sequitur::unlinkAndFree(Sym *s)
{
    // Both digrams touching s die with it; scrub their index entries
    // eagerly so the index never holds a pointer to freed storage.
    scrubDigram(s->prev);
    scrubDigram(s);
    join(s->prev, s->next);
    freeSym(s);
}

void
Sequitur::append(std::uint64_t value)
{
    ++inputLength_;
    ++valueCounts_[value];
    Sym *s = newTerminal(value);
    insertAfter(root_->guard->prev, s);
    queueCheck(s->prev);
    drainChecks();
}

void
Sequitur::queueCheck(Sym *a)
{
    if (a != nullptr && !a->guard)
        pending_.push_back(a);
}

void
Sequitur::drainChecks()
{
    while (!pending_.empty()) {
        Sym *a = pending_.back();
        pending_.pop_back();
        // A queued symbol may have been rewritten away; its digram
        // died with it, and any digram created by that rewrite was
        // queued by the rewrite itself.
        if (!liveSyms_.count(a))
            continue;
        checkDigram(a);
    }
}

void
Sequitur::checkDigram(Sym *a)
{
    if (a == nullptr || a->guard || a->next->guard)
        return;

    DigramKey k = key(a);
    auto it = index_.find(k);
    if (it == index_.end()) {
        index_.emplace(k, a);
        return;
    }

    Sym *found = it->second;
    if (found == a)
        return;
    if (found->next == a || a->next == found) {
        // Overlapping occurrence (e.g. "aaa"): leave as is.
        return;
    }

    match(a, found);
}

void
Sequitur::match(Sym *fresh, Sym *found)
{
    Rule *r = nullptr;

    if (found->prev->guard && found->next->next->guard) {
        // The found occurrence is a complete rule body: reuse it.
        r = found->prev->owner;
        substitute(fresh, r);
    } else {
        // Form a new rule from a copy of the digram.
        r = newRule();
        Sym *c1 = fresh->rule ? newNonterminal(fresh->rule)
                              : newTerminal(fresh->value);
        Sym *c2 = fresh->next->rule
                      ? newNonterminal(fresh->next->rule)
                      : newTerminal(fresh->next->value);
        insertAfter(r->guard, c1);
        insertAfter(c1, c2);
        substitute(found, r);
        substitute(fresh, r);
        index_[key(r->first())] = r->first();
    }

    // Rule utility: the substitutions above may have consumed the
    // second-to-last reference of a sub-rule appearing in r's body.
    // Expansions are local splices (their boundary digram checks are
    // deferred), so both body edges can be handled here safely.
    Sym *f = r->first();
    if (f->rule && f->rule->useCount == 1)
        expandUnderusedRule(f);
    Sym *l = r->last();
    if (l->rule && l->rule->useCount == 1)
        expandUnderusedRule(l);
}

Sequitur::Sym *
Sequitur::substitute(Sym *first, Rule *r)
{
    Sym *prev = first->prev;
    unlinkAndFree(first->next);
    unlinkAndFree(first);
    Sym *n = newNonterminal(r);
    insertAfter(prev, n);
    // LIFO: the (prev, n) digram is examined before (n, next); if the
    // former rewrites n away, the latter's job is dropped by the
    // liveness filter.
    queueCheck(n);
    queueCheck(prev);
    return n;
}

void
Sequitur::expandUnderusedRule(Sym *s)
{
    Rule *q = s->rule;
    if (q == nullptr || q->useCount != 1)
        panic("sequitur: expanding a rule that is not underused");

    Sym *left = s->prev;
    Sym *right = s->next;
    Sym *f = q->first();
    Sym *l = q->last();

    // Digrams touching s die; scrub their entries.
    scrubDigram(left);
    scrubDigram(s);

    // Splice q's body in place of s.
    join(left, f);
    join(l, right);

    // Retire the rule: its body now belongs to the containing rule.
    rules_.erase(q);
    s->rule = nullptr; // consume the final use without deuse recursion
    liveSyms_.erase(s);
    delete s;
    delete q->guard;
    delete q;

    // The splice created (left, f) and (l, right); queue both for
    // proper uniqueness handling (a blind index write here would
    // orphan any existing occurrence of the same digram).
    queueCheck(l);
    queueCheck(left);
}

std::size_t
Sequitur::ruleCount() const
{
    return rules_.size();
}

std::uint64_t
Sequitur::expandedLength(const Rule *r) const
{
    std::uint64_t len = 0;
    for (const Sym *s = r->guard->next; s != r->guard; s = s->next) {
        if (s->rule) {
            auto it = lengthMemo_.find(s->rule);
            if (it != lengthMemo_.end()) {
                len += it->second;
            } else {
                std::uint64_t sub = expandedLength(s->rule);
                lengthMemo_.emplace(s->rule, sub);
                len += sub;
            }
        } else {
            ++len;
        }
    }
    return len;
}

void
Sequitur::expandInto(const Rule *r, std::vector<std::uint64_t> &out) const
{
    for (const Sym *s = r->guard->next; s != r->guard; s = s->next) {
        if (s->rule)
            expandInto(s->rule, out);
        else
            out.push_back(s->value);
    }
}

std::vector<std::uint64_t>
Sequitur::expand() const
{
    std::vector<std::uint64_t> out;
    out.reserve(static_cast<std::size_t>(inputLength_));
    expandInto(root_, out);
    return out;
}

bool
Sequitur::checkInvariants() const
{
    return invariantViolation().empty();
}

std::string
Sequitur::invariantViolation() const
{
    // Digram uniqueness: collect every digram occurrence in every rule
    // body; two non-overlapping occurrences of the same digram violate
    // the invariant.
    std::unordered_map<DigramKey, std::vector<const Sym *>, DigramHash>
        occurrences;

    auto scan_rule = [&](const Rule *r) {
        for (const Sym *s = r->guard->next; s != r->guard;
             s = s->next) {
            if (!s->next->guard)
                occurrences[key(s)].push_back(s);
        }
    };
    scan_rule(root_);
    for (const Rule *r : rules_)
        scan_rule(r);

    for (const auto &[k, occs] : occurrences) {
        for (std::size_t i = 0; i < occs.size(); ++i) {
            for (std::size_t j = i + 1; j < occs.size(); ++j) {
                const Sym *a = occs[i];
                const Sym *b = occs[j];
                if (a->next != b && b->next != a) {
                    auto where = [&](const Sym *s) {
                        std::string ctx = "[prev=";
                        ctx += s->prev->guard
                                   ? "G"
                                   : std::to_string(code(s->prev));
                        ctx += " next2=";
                        ctx += s->next->next->guard
                                   ? "G"
                                   : std::to_string(
                                         code(s->next->next));
                        auto idx = index_.find(k);
                        ctx += idx == index_.end()
                                   ? " noidx"
                                   : (idx->second == s ? " IDX"
                                                       : " other");
                        return ctx + "]";
                    };
                    return "duplicate digram (" +
                           std::to_string(k.first) + "," +
                           std::to_string(k.second) + ") " +
                           where(a) + " vs " + where(b);
                }
            }
        }
    }

    // Rule utility: every non-root rule referenced at least twice, and
    // stored use counts must match actual reference counts.
    std::unordered_map<const Rule *, std::uint32_t> refs;
    auto count_refs = [&](const Rule *r) {
        for (const Sym *s = r->guard->next; s != r->guard; s = s->next)
            if (s->rule)
                ++refs[s->rule];
    };
    count_refs(root_);
    for (const Rule *r : rules_)
        count_refs(r);

    for (const Rule *r : rules_) {
        auto it = refs.find(r);
        std::uint32_t actual = it == refs.end() ? 0 : it->second;
        if (actual < 2) {
            return "rule " + std::to_string(r->id) + " used " +
                   std::to_string(actual) + " time(s)";
        }
        if (actual != r->useCount) {
            return "rule " + std::to_string(r->id) +
                   " use count mismatch: stored " +
                   std::to_string(r->useCount) + ", actual " +
                   std::to_string(actual);
        }
    }
    return "";
}

Sequitur::Classification
Sequitur::classify() const
{
    lengthMemo_.clear();
    Classification c;
    std::unordered_set<const Rule *> seen_rules;
    std::unordered_set<std::uint64_t> seen_values;

    for (const Sym *s = root_->guard->next; s != root_->guard;
         s = s->next) {
        if (s->rule) {
            std::uint64_t len = expandedLength(s->rule);
            if (seen_rules.insert(s->rule).second) {
                c.newFirst += len;
            } else {
                c.head += 1;
                c.opportunity += len - 1;
            }
        } else {
            auto it = valueCounts_.find(s->value);
            std::uint64_t total =
                it == valueCounts_.end() ? 0 : it->second;
            if (total <= 1)
                c.nonRepetitive += 1;
            else if (seen_values.insert(s->value).second)
                c.newFirst += 1;
            else
                c.head += 1;
        }
    }
    return c;
}

} // namespace stems
