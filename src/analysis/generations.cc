#include "analysis/generations.hh"

namespace stems {

GenerationTracker::AccessResult
GenerationTracker::access(Addr a, Pc pc)
{
    AccessResult res;
    Addr base = regionBase(a);
    unsigned offset = regionOffset(a);

    auto it = active_.find(base);
    if (it == active_.end()) {
        Generation g;
        g.regionBase = base;
        g.triggerPc = pc;
        g.triggerOffset = offset;
        g.index = spatialPatternIndex(pc, offset);
        g.sequence.push_back(static_cast<std::uint8_t>(offset));
        g.accessedMask = 1u << offset;
        auto [ins, ok] = active_.emplace(base, std::move(g));
        (void)ok;
        res.wasTrigger = true;
        res.firstTouchOfBlock = true;
        res.generation = &ins->second;
        return res;
    }

    Generation &g = it->second;
    if (!g.accessed(offset)) {
        g.sequence.push_back(static_cast<std::uint8_t>(offset));
        g.accessedMask |= 1u << offset;
        res.firstTouchOfBlock = true;
    }
    res.generation = &g;
    return res;
}

void
GenerationTracker::blockRemoved(Addr a)
{
    Addr base = regionBase(a);
    auto it = active_.find(base);
    if (it == active_.end())
        return;
    if (it->second.accessed(regionOffset(a)))
        terminate(base);
}

void
GenerationTracker::terminate(Addr region_base)
{
    auto it = active_.find(region_base);
    if (it == active_.end())
        return;
    Generation g = std::move(it->second);
    active_.erase(it);
    ++terminated_;
    if (onTerminate_)
        onTerminate_(g);
}

void
GenerationTracker::flush()
{
    // Drain deterministically: collect keys first because the callback
    // may inspect tracker state.
    std::vector<Addr> keys;
    keys.reserve(active_.size());
    for (const auto &[base, g] : active_)
        keys.push_back(base);
    for (Addr base : keys)
        terminate(base);
}

const Generation *
GenerationTracker::activeGeneration(Addr a) const
{
    auto it = active_.find(regionBase(a));
    return it == active_.end() ? nullptr : &it->second;
}

} // namespace stems
