#include "analysis/coverage.hh"

#include "common/stats.hh"

namespace stems {

namespace {

/** splitmix64 finalizer: strong 64-bit mixing. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Hash a (predecessor, successor) miss pair into one key. */
std::uint64_t
pairKey(Addr prev, Addr cur)
{
    return mix64(blockNumber(prev)) ^
           (mix64(blockNumber(cur)) * 0x9e3779b97f4a7c15ULL);
}

} // namespace

double
JointCoverage::temporalFraction() const
{
    return ratio(both + tmsOnly, total());
}

double
JointCoverage::spatialFraction() const
{
    return ratio(both + smsOnly, total());
}

double
JointCoverage::jointFraction() const
{
    return ratio(both + tmsOnly + smsOnly, total());
}

JointCoverageAnalyzer::JointCoverageAnalyzer(
    const HierarchyParams &params, unsigned temporal_window)
    : hier_(params), window_(temporal_window == 0 ? 1 : temporal_window)
{
    hier_.setL1EvictCallback(
        [this](Addr a) { tracker_.blockRemoved(a); });
    tracker_.setTerminateCallback(
        [this](const Generation &g) { onGenerationEnd(g); });
}

void
JointCoverageAnalyzer::onGenerationEnd(const Generation &g)
{
    patterns_[g.index] = g.accessedMask;
    genSnapshot_.erase(g.regionBase);
}

void
JointCoverageAnalyzer::step(const MemRecord &r)
{
    if (r.isInvalidate()) {
        hier_.invalidate(r.vaddr);
        return;
    }

    auto gen = tracker_.access(r.vaddr, r.pc);
    if (gen.wasTrigger) {
        auto it = patterns_.find(gen.generation->index);
        genSnapshot_[gen.generation->regionBase] =
            it == patterns_.end() ? 0 : it->second;
    }

    if (hier_.accessL1(r.vaddr))
        return;
    auto l2 = hier_.accessL2(r.vaddr);
    if (l2.hit) {
        hier_.fillL1(r.vaddr);
        return;
    }
    hier_.fill(r.vaddr);

    if (!r.isRead())
        return;

    // Off-chip read miss: classify.
    Addr block = blockAlign(r.vaddr);

    bool temporal = false;
    for (Addr prev : recentMisses_) {
        if (pairsSeen_.count(pairKey(prev, block)) > 0) {
            temporal = true;
            break;
        }
    }

    bool spatial = false;
    if (!gen.wasTrigger) {
        auto it = genSnapshot_.find(regionBase(block));
        if (it != genSnapshot_.end())
            spatial = (it->second >> regionOffset(block)) & 1u;
    }

    if (measuring_) {
        if (temporal && spatial)
            ++result_.both;
        else if (temporal)
            ++result_.tmsOnly;
        else if (spatial)
            ++result_.smsOnly;
        else
            ++result_.neither;
    }

    // Train: this miss is a windowed successor of each recent miss.
    for (Addr prev : recentMisses_)
        pairsSeen_.insert(pairKey(prev, block));
    if (recentMisses_.size() < window_) {
        recentMisses_.push_back(block);
    } else {
        recentMisses_[recentPos_] = block;
        recentPos_ = (recentPos_ + 1) % window_;
    }
}

void
JointCoverageAnalyzer::run(const Trace &trace,
                           std::size_t warmup_records)
{
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (i == warmup_records)
            setMeasuring(true);
        else if (i == 0 && warmup_records > 0)
            setMeasuring(false);
        step(trace[i]);
    }
}

MissSequences
extractMissSequences(const Trace &trace, const HierarchyParams &params)
{
    MissSequences out;
    Hierarchy hier(params);
    GenerationTracker tracker;
    hier.setL1EvictCallback(
        [&tracker](Addr a) { tracker.blockRemoved(a); });

    for (const MemRecord &r : trace) {
        if (r.isInvalidate()) {
            hier.invalidate(r.vaddr);
            continue;
        }
        auto gen = tracker.access(r.vaddr, r.pc);
        if (hier.accessL1(r.vaddr))
            continue;
        auto l2 = hier.accessL2(r.vaddr);
        if (l2.hit) {
            hier.fillL1(r.vaddr);
            continue;
        }
        hier.fill(r.vaddr);
        if (!r.isRead())
            continue;
        Addr block = blockAlign(r.vaddr);
        out.allMisses.push_back(block);
        if (gen.wasTrigger)
            out.triggers.push_back(block);
    }
    return out;
}

} // namespace stems
