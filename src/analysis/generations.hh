/**
 * @file
 * Spatial-generation tracking (unbounded, for analysis passes).
 *
 * A spatial generation (paper Section 2.4) begins with the first
 * (trigger) access to an inactive 2 KB region and ends when one of the
 * blocks accessed during the generation is evicted or invalidated from
 * the L1. This tracker is the analysis-side counterpart of the
 * hardware AGT: it has unbounded capacity and exists to delimit
 * generations for the Figure 6/7/8 characterization studies.
 *
 * The tracker is cache-agnostic: the caller drives it with access and
 * eviction/invalidation notifications from whatever L1 model it runs.
 */

#ifndef STEMS_ANALYSIS_GENERATIONS_HH
#define STEMS_ANALYSIS_GENERATIONS_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace stems {

/** SMS-style pattern index: trigger PC combined with trigger offset. */
constexpr std::uint64_t
spatialPatternIndex(Pc pc, unsigned trigger_offset)
{
    return (pc << 5) ^ trigger_offset;
}

/**
 * One active (or just-terminated) spatial generation.
 */
struct Generation
{
    Addr regionBase = 0;          ///< 2 KB region base address
    std::uint64_t index = 0;      ///< spatialPatternIndex of trigger
    Pc triggerPc = 0;             ///< PC of the trigger access
    unsigned triggerOffset = 0;   ///< block offset of the trigger
    /** Block offsets in first-access order (each appears once). */
    std::vector<std::uint8_t> sequence;
    /** Bitmask over the 32 offsets accessed during the generation. */
    std::uint32_t accessedMask = 0;

    bool
    accessed(unsigned offset) const
    {
        return (accessedMask >> offset) & 1u;
    }
};

/**
 * Tracks the set of active generations.
 */
class GenerationTracker
{
  public:
    /** Invoked with each generation as it terminates. */
    using TerminateCallback = std::function<void(const Generation &)>;

    /** Register the termination observer (may be null). */
    void
    setTerminateCallback(TerminateCallback cb)
    {
        onTerminate_ = std::move(cb);
    }

    /** Result of notifying a demand access. */
    struct AccessResult
    {
        bool wasTrigger = false;      ///< access started a generation
        bool firstTouchOfBlock = false; ///< block's first access in gen
        const Generation *generation = nullptr;
    };

    /**
     * Notify a demand access (read or write).
     */
    AccessResult access(Addr a, Pc pc);

    /**
     * Notify that a block left the L1 (eviction or invalidation).
     * Terminates the block's generation when the block was accessed
     * during it.
     */
    void blockRemoved(Addr a);

    /** Terminate every active generation (end of trace). */
    void flush();

    /** Active generation covering an address, or nullptr. */
    const Generation *activeGeneration(Addr a) const;

    /** Number of currently active generations. */
    std::size_t activeCount() const { return active_.size(); }

    /** Total generations terminated so far. */
    std::uint64_t terminated() const { return terminated_; }

  private:
    void terminate(Addr region_base);

    std::unordered_map<Addr, Generation> active_; ///< key: region base
    TerminateCallback onTerminate_;
    std::uint64_t terminated_ = 0;
};

} // namespace stems

#endif // STEMS_ANALYSIS_GENERATIONS_HH
