/**
 * @file
 * Sequitur hierarchical grammar inference (Nevill-Manning & Witten,
 * JAIR 1997).
 *
 * The paper (Section 5.3) uses Sequitur to quantify temporal repetition
 * in miss-address sequences: the grammar's production rules correspond
 * to distinct repetitive subsequences. This is a from-scratch,
 * linear-time implementation maintaining the two Sequitur invariants:
 *
 *  - digram uniqueness: no pair of adjacent symbols appears more than
 *    once in the grammar;
 *  - rule utility: every rule (except the root) is referenced at least
 *    twice.
 *
 * On top of the grammar we implement the paper's Figure 7 miss
 * classification: each input symbol is attributed to one of
 * {non-repetitive, new, head, opportunity}.
 */

#ifndef STEMS_ANALYSIS_SEQUITUR_HH
#define STEMS_ANALYSIS_SEQUITUR_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace stems {

/**
 * Incremental Sequitur grammar over 64-bit symbols.
 */
class Sequitur
{
  public:
    Sequitur();
    ~Sequitur();

    Sequitur(const Sequitur &) = delete;
    Sequitur &operator=(const Sequitur &) = delete;

    /** Append one input symbol, maintaining the grammar invariants. */
    void append(std::uint64_t value);

    /** Number of input symbols appended so far. */
    std::uint64_t inputLength() const { return inputLength_; }

    /** Number of production rules, excluding the root. */
    std::size_t ruleCount() const;

    /**
     * Expand the grammar back into the input sequence.
     *
     * Primarily a correctness oracle for tests: the expansion must
     * equal the appended input exactly.
     */
    std::vector<std::uint64_t> expand() const;

    /**
     * Verify the two Sequitur invariants by brute force.
     *
     * @return true when no digram repeats and every non-root rule is
     *         used at least twice.
     */
    bool checkInvariants() const;

    /**
     * Brute-force invariant check with diagnostics.
     *
     * @return an empty string when the invariants hold, otherwise a
     *         description of the first violation found.
     */
    std::string invariantViolation() const;

    /**
     * Figure 7 miss classification (counts over the input symbols).
     *
     * Categories, following Section 5.3:
     *  - nonRepetitive: symbols not belonging to any repeated
     *    subsequence and whose value never recurs;
     *  - newFirst: symbols in the first occurrence of a repeated
     *    subsequence (the occurrence that trains a predictor);
     *  - head: the leading symbol of each subsequent occurrence (the
     *    miss that locates the stream; not itself predictable);
     *  - opportunity: the non-head symbols of subsequent occurrences
     *    (the misses a temporal streaming engine can cover).
     */
    struct Classification
    {
        std::uint64_t nonRepetitive = 0;
        std::uint64_t newFirst = 0;
        std::uint64_t head = 0;
        std::uint64_t opportunity = 0;

        std::uint64_t
        total() const
        {
            return nonRepetitive + newFirst + head + opportunity;
        }
    };

    /** Classify the input symbols (see Classification). */
    Classification classify() const;

  private:
    struct Rule;

    struct Sym
    {
        Sym *next = nullptr;
        Sym *prev = nullptr;
        std::uint64_t value = 0; ///< terminal payload
        Rule *rule = nullptr;    ///< non-null: nonterminal reference
        bool guard = false;      ///< rule's sentinel node
        Rule *owner = nullptr;   ///< for guards: the owning rule
    };

    struct Rule
    {
        std::uint32_t id = 0;
        std::uint32_t useCount = 0;
        Sym *guard = nullptr;

        Sym *first() const { return guard->next; }
        Sym *last() const { return guard->prev; }
    };

    using DigramKey = std::pair<std::uint64_t, std::uint64_t>;

    struct DigramHash
    {
        std::size_t
        operator()(const DigramKey &k) const
        {
            std::uint64_t h = k.first * 0x9e3779b97f4a7c15ULL;
            h ^= k.second + 0x9e3779b97f4a7c15ULL + (h << 6) +
                 (h >> 2);
            return static_cast<std::size_t>(h);
        }
    };

    static std::uint64_t code(const Sym *s);
    static DigramKey key(const Sym *a);

    Rule *newRule();
    void freeRule(Rule *r);
    Sym *newTerminal(std::uint64_t value);
    Sym *newNonterminal(Rule *r);
    void freeSym(Sym *s);

    static void join(Sym *a, Sym *b);
    void insertAfter(Sym *pos, Sym *s);

    /**
     * Remove the index entry for the digram starting at a when the
     * entry points at this occurrence. @return true when erased.
     */
    bool removeDigramEntry(Sym *a);

    /**
     * Scrub a dying digram's index entry and requeue any surviving
     * overlap twins (see implementation comment).
     */
    void scrubDigram(Sym *a);

    void unlinkAndFree(Sym *s);

    /**
     * Queue the digram starting at a for a (deferred) uniqueness
     * check. Deferral avoids re-entrant rewrites: jobs are validated
     * against the live-symbol set when they are drained, so a rewrite
     * can never act on freed storage.
     */
    void queueCheck(Sym *a);

    /** Drain the pending digram checks until the grammar is stable. */
    void drainChecks();

    /** Enforce digram uniqueness for one digram (called by drain). */
    void checkDigram(Sym *a);

    void match(Sym *fresh, Sym *found);
    Sym *substitute(Sym *first, Rule *r);
    void expandUnderusedRule(Sym *nonterminal);

    std::uint64_t expandedLength(const Rule *r) const;
    void expandInto(const Rule *r,
                    std::vector<std::uint64_t> &out) const;

    /** Initial bucket reservation for the hot hash containers (a
     *  grammar over a few thousand distinct values fits without
     *  rehashing; see the constructor). */
    static constexpr std::size_t kInitialBuckets = 4096;

    Rule *root_ = nullptr;
    std::uint32_t nextRuleId_ = 0;
    std::uint64_t inputLength_ = 0;
    std::unordered_map<DigramKey, Sym *, DigramHash> index_;
    std::unordered_set<Rule *> rules_;
    std::unordered_map<std::uint64_t, std::uint64_t> valueCounts_;
    mutable std::unordered_map<const Rule *, std::uint64_t> lengthMemo_;

    /** LIFO of digram-check jobs (symbol = first of the digram). */
    std::vector<Sym *> pending_;
    /** Live non-guard symbols; validates queued jobs. */
    std::unordered_set<Sym *> liveSyms_;
};

} // namespace stems

#endif // STEMS_ANALYSIS_SEQUITUR_HH
