/**
 * @file
 * Sweep coordinator: decomposes a SweepPlan into work units (one
 * unit = one workload row) and hands them to connected workers over
 * the net/protocol.hh pull protocol until every unit is complete.
 *
 * Single-threaded poll() loop; no driver dependency — the
 * coordinator never simulates, it only schedules. Workers populate
 * the shared content-addressed store; the caller (stems_trace
 * serve) afterwards merges by running the same plan locally over
 * the warm store, which reproduces the single-process output
 * bitwise in fixed plan order.
 *
 * Fault model: a worker that disconnects mid-unit (crash, kill -9,
 * network loss) has its unit requeued and handed to the next
 * requester; because unit execution is idempotent against the store
 * (re-running writes identical bytes under identical keys), partial
 * work from the lost worker is either reused or redone, never
 * corrupted. Workers that break framing or speak the wrong protocol
 * version are dropped the same way.
 */

#ifndef STEMS_NET_COORD_HH
#define STEMS_NET_COORD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/socket.hh"
#include "sim/sweep_plan.hh"

namespace stems {

class SweepCoordinator
{
  public:
    explicit SweepCoordinator(const SweepPlan &plan);
    ~SweepCoordinator();

    SweepCoordinator(const SweepCoordinator &) = delete;
    SweepCoordinator &operator=(const SweepCoordinator &) = delete;

    /** Bind the service port (0 picks an ephemeral one). */
    bool listen(std::uint16_t port, std::string *error = nullptr);

    /** The bound port, valid after listen(). */
    std::uint16_t port() const { return listener_.port(); }

    /**
     * Distribute every unit; returns when all are complete (true)
     * or when `timeout_seconds` passes without the sweep finishing
     * (false, *error set; 0 = wait forever). Blocks the calling
     * thread; safe to run on a dedicated thread in-process.
     */
    bool serve(double timeout_seconds = 0.0,
               std::string *error = nullptr);

    std::uint64_t unitsCompleted() const { return completed_; }
    std::uint64_t unitsRequeued() const { return requeued_; }
    std::uint64_t workersSeen() const { return workersSeen_; }

  private:
    enum class UnitState : std::uint8_t
    {
        kPending,
        kInFlight,
        kDone
    };

    enum class ConnState : std::uint8_t
    {
        kAwaitHello, ///< accepted, no kMsgHello yet
        kAwaitAck,   ///< plan sent, no kMsgPlanAck yet
        kIdle,       ///< ready, no outstanding unit request
        kParked,     ///< asked for work while none was pending
        kWorking     ///< owns an in-flight unit
    };

    struct Conn
    {
        std::unique_ptr<FramedConn> io;
        ConnState state = ConnState::kAwaitHello;
        std::size_t unit = 0; ///< valid in kWorking
    };

    bool assignUnit(Conn &conn);
    void finishConn(Conn &conn);
    void dropConn(std::size_t index);
    bool handleFrame(std::size_t index, const Frame &frame);
    bool allDone() const { return completed_ == units_.size(); }

    SweepPlan plan_;
    std::string planJson_;
    std::uint64_t planDigest_ = 0;
    TcpListener listener_;
    std::vector<UnitState> units_;
    std::vector<Conn> conns_;
    std::uint64_t completed_ = 0;
    std::uint64_t requeued_ = 0;
    std::uint64_t workersSeen_ = 0;
};

} // namespace stems

#endif // STEMS_NET_COORD_HH
