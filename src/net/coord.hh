/**
 * @file
 * Sweep coordinator: decomposes a SweepPlan into work units
 * (net/units.hh — whole workloads, cells, or checkpoint segments)
 * and hands them to connected workers over the net/protocol.hh pull
 * protocol until every unit is complete.
 *
 * Single-threaded poll() loop; no driver dependency — the
 * coordinator never simulates, it only schedules. Workers populate
 * the shared content-addressed store; the caller (stems_trace
 * serve) afterwards merges by running the same plan locally over
 * the warm store, which reproduces the single-process output
 * bitwise in fixed plan order.
 *
 * Unit lifecycle: pending -> in-flight -> (resumable ->) done.
 *
 *  - pending: unassigned. Assignable once its dependency (segment
 *    chains, WorkUnit::dependsOn) is done; lowest index first.
 *  - in-flight: owned by one worker connection/session.
 *  - resumable: the owning connection was lost mid-unit. The unit
 *    stays reserved for that session for a grace window
 *    (setResumeGraceSeconds) so a reconnecting worker can reclaim
 *    it with kResume and finish from its last store-committed
 *    checkpoint; when the grace expires it is requeued to pending.
 *  - done: completed (a duplicate kUnitDone for a done unit is
 *    ignored — retransmits after a resume are harmless).
 *
 * Fault model: a worker that disconnects mid-unit (crash, kill -9,
 * network loss) has its unit resumed or requeued as above; because
 * unit execution is idempotent against the store (re-running writes
 * identical bytes under identical keys), partial work from the lost
 * worker is either reused or redone, never corrupted. Workers that
 * break framing are dropped the same way; peers speaking another
 * protocol version are refused with a clean kBye at the Hello
 * stage. A slow-worker watchdog (setUnitTimeoutSeconds) drops any
 * connection holding a unit longer than the limit and requeues the
 * unit, so one hung worker cannot stall sweep completion.
 */

#ifndef STEMS_NET_COORD_HH
#define STEMS_NET_COORD_HH

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/socket.hh"
#include "net/units.hh"
#include "sim/sweep_plan.hh"

namespace stems {

class SweepCoordinator
{
  public:
    /** Decompose the plan without a store: workload or cell
     *  granularity as the plan asks; segment granularity (which
     *  needs a store for its seeding pass) falls back to cells.
     *  Use the two-argument form to serve store-seeded units. */
    explicit SweepCoordinator(const SweepPlan &plan);

    /** Serve a precomputed decomposition (decomposeSweepPlan). */
    SweepCoordinator(const SweepPlan &plan,
                     std::vector<WorkUnit> units);

    ~SweepCoordinator();

    SweepCoordinator(const SweepCoordinator &) = delete;
    SweepCoordinator &operator=(const SweepCoordinator &) = delete;

    /** Bind the service port (0 picks an ephemeral one). */
    bool listen(std::uint16_t port, std::string *error = nullptr);

    /** The bound port, valid after listen(). */
    std::uint16_t port() const { return listener_.port(); }

    /**
     * Distribute every unit; returns when all are complete (true)
     * or when `timeout_seconds` passes without the sweep finishing
     * (false, *error set; 0 = wait forever). Blocks the calling
     * thread; safe to run on a dedicated thread in-process.
     */
    bool serve(double timeout_seconds = 0.0,
               std::string *error = nullptr);

    /** How long a lost worker's unit stays reserved for its session
     *  before being requeued (seconds; 0 requeues immediately,
     *  disabling resume). Default 5. */
    void setResumeGraceSeconds(double seconds)
    {
        resumeGraceSeconds_ = seconds < 0.0 ? 0.0 : seconds;
    }

    /** Slow-worker watchdog: a unit held in-flight longer than this
     *  has its connection dropped and is requeued (seconds; 0 = no
     *  watchdog, the default). */
    void setUnitTimeoutSeconds(double seconds)
    {
        unitTimeoutSeconds_ = seconds < 0.0 ? 0.0 : seconds;
    }

    std::size_t unitCount() const { return units_.size(); }
    std::uint64_t unitsCompleted() const { return completed_; }
    std::uint64_t unitsRequeued() const { return requeued_; }
    std::uint64_t unitsResumed() const { return resumed_; }
    std::uint64_t workersSeen() const { return workersSeen_; }

  private:
    enum class UnitState : std::uint8_t
    {
        kPending,
        kInFlight,
        kResumable, ///< reserved for its session's reconnect
        kDone
    };

    enum class ConnState : std::uint8_t
    {
        kAwaitHello, ///< accepted, no kMsgHello yet
        kAwaitAck,   ///< plan sent, no kMsgPlanAck yet
        kIdle,       ///< ready, no outstanding unit request
        kParked,     ///< asked for work while none was assignable
        kWorking     ///< owns an in-flight unit
    };

    struct Unit
    {
        WorkUnit work;
        UnitState state = UnitState::kPending;
        std::uint64_t session = 0; ///< owner (in-flight/resumable)
        std::chrono::steady_clock::time_point assignedAt{};
        std::chrono::steady_clock::time_point resumableAt{};
    };

    struct Conn
    {
        std::unique_ptr<FramedConn> io;
        ConnState state = ConnState::kAwaitHello;
        std::size_t unit = 0;      ///< valid in kWorking
        std::uint64_t session = 0; ///< assigned at kMsgHello
    };

    bool unitAssignable(std::size_t index) const;
    bool assignUnit(Conn &conn);
    void finishConn(Conn &conn);
    void dropConn(std::size_t index);
    bool handleFrame(std::size_t index, const Frame &frame);
    /** Offer newly-assignable units to parked workers. */
    void pumpParked();
    /** Requeue expired resumable units and watchdog overdue ones. */
    void expireUnits();
    bool allDone() const { return completed_ == units_.size(); }

    SweepPlan plan_;
    std::string planJson_;
    std::uint64_t planDigest_ = 0;
    TcpListener listener_;
    std::vector<Unit> units_;
    std::vector<Conn> conns_;
    double resumeGraceSeconds_ = 5.0;
    double unitTimeoutSeconds_ = 0.0;
    std::uint64_t nextSession_ = 1;
    std::uint64_t completed_ = 0;
    std::uint64_t requeued_ = 0;
    std::uint64_t resumed_ = 0;
    std::uint64_t workersSeen_ = 0;
};

} // namespace stems

#endif // STEMS_NET_COORD_HH
