#include "net/units.hh"

#include <algorithm>
#include <map>

#include "sim/checkpoint.hh"
#include "sim/config.hh"
#include "store/keys.hh"
#include "store/trace_store.hh"
#include "trace/trace_io.hh"
#include "workloads/registry.hh"

namespace stems {

namespace {

void
setError(std::string *error, const std::string &text)
{
    if (error)
        *error = text;
}

/**
 * Checkpoint spec digests of one cell's lanes — the same identities
 * driver.cc's cell_ckpt_spec writes checkpoints under: the baseline
 * column is the no-prefetch lane plus, under timing, the stride
 * reference lane; an engine column is the engine spec without
 * labels or probes (a probe reads state post-run; it cannot change
 * the simulation a checkpoint captures).
 */
std::vector<std::uint64_t>
columnCkptSpecs(const SweepPlan &plan, bool scientific,
                std::int32_t column)
{
    std::vector<std::uint64_t> specs;
    if (column < 0) {
        specs.push_back(storeDigest("cell:baseline:v1"));
        if (plan.timing) {
            EngineOptions options;
            options.scientific = scientific;
            specs.push_back(engineSpecDigest("stride", options));
        }
        return specs;
    }
    const PlanEngine &e =
        plan.engines[static_cast<std::size_t>(column)];
    EngineOptions options = e.options;
    options.scientific = options.scientific || scientific;
    specs.push_back(engineSpecDigest(e.engine, options));
    return specs;
}

/** Stored-checkpoint directory of every lane spec, listed once. */
using SpecListings =
    std::map<std::uint64_t, std::vector<StoredCheckpointKey>>;

const std::vector<StoredCheckpointKey> &
listingFor(SpecListings &memo, TraceStore &store, std::uint64_t spec,
           std::uint64_t config_digest)
{
    auto it = memo.find(spec);
    if (it == memo.end())
        it = memo
                 .emplace(spec,
                          store.listCheckpoints(spec, config_digest))
                 .first;
    return it->second;
}

/** True when every lane spec has a checkpoint stored at `index`
 *  under exactly the on-key state digest. Off-key entries (stale
 *  seed, different warmup schedule) never qualify. */
bool
trustedCheckpointAt(SpecListings &memo, TraceStore &store,
                    const std::vector<std::uint64_t> &specs,
                    std::uint64_t config_digest, std::uint64_t index,
                    std::uint64_t state_digest)
{
    for (std::uint64_t spec : specs) {
        bool found = false;
        for (const StoredCheckpointKey &key :
             listingFor(memo, store, spec, config_digest)) {
            if (key.index == index &&
                key.stateDigest == state_digest) {
                found = true;
                break;
            }
        }
        if (!found)
            return false;
    }
    return true;
}

} // namespace

std::vector<WorkUnit>
decomposeSweepPlan(const SweepPlan &plan, TraceStore *store,
                   std::string *error)
{
    std::vector<WorkUnit> units;
    const WorkloadRegistry &registry = WorkloadRegistry::instance();

    if (plan.unitGranularity == UnitGranularity::kWorkload) {
        for (const std::string &name : plan.workloads) {
            WorkUnit u;
            u.kind = UnitKind::kWorkload;
            u.workload = name;
            units.push_back(std::move(u));
        }
        return units;
    }

    const bool segmented =
        plan.unitGranularity == UnitGranularity::kSegment;
    if (segmented && (!store || !store->usable())) {
        setError(error,
                 "segment units need a usable trace store (the "
                 "seeding pass writes traces and reads boundary "
                 "checkpoints)");
        return {};
    }

    const ExperimentConfig config = planExperimentConfig(plan);
    const std::uint64_t ckpt_config = checkpointConfigDigest(config);
    const bool have_schedule =
        plan.checkpointEvery > 0 || plan.segments > 1;

    for (const std::string &name : plan.workloads) {
        if (!registry.contains(name)) {
            // run() skips unknown workload names; keeping them as
            // whole-workload units keeps the distributed run's
            // behaviour identical to the local one.
            WorkUnit u;
            u.kind = UnitKind::kWorkload;
            u.workload = name;
            units.push_back(std::move(u));
            continue;
        }

        std::vector<std::int32_t> columns;
        columns.push_back(-1);
        for (std::size_t j = 0; j < plan.engines.size(); ++j)
            columns.push_back(static_cast<std::int32_t>(j));

        if (!segmented) {
            for (std::int32_t c : columns) {
                WorkUnit u;
                u.kind = UnitKind::kCell;
                u.workload = name;
                u.column = c;
                units.push_back(std::move(u));
            }
            continue;
        }

        // Seeding pass. Generators may overshoot plan.records, so
        // the true trace length — which fixes the boundary
        // schedule — is only known from the trace itself; writing
        // it here also pre-populates the data plane every worker
        // will replay from.
        std::unique_ptr<Workload> workload = registry.make(name);
        const bool scientific = workload->workloadClass() ==
                                WorkloadClass::kScientific;
        TraceKey key{name, plan.records, plan.seed};
        Trace trace;
        if (!store->loadTrace(key, trace)) {
            trace = workload->generate(
                plan.seed, static_cast<std::size_t>(plan.records));
            if (!store->putTrace(key, trace)) {
                setError(error, "cannot seed trace for '" + name +
                                    "' into the store");
                return {};
            }
        }

        std::vector<std::size_t> bounds =
            have_schedule
                ? checkpointBounds(
                      trace.size(),
                      static_cast<std::size_t>(plan.checkpointEvery),
                      plan.segments)
                : std::vector<std::size_t>{trace.size()};
        if (bounds.empty())
            bounds.push_back(0); // empty trace: one no-op segment
        const std::size_t warmup =
            effectiveWarmupRecords(config, trace.size());
        const std::vector<std::uint64_t> prefixes =
            tracePrefixDigests(trace, bounds);

        SpecListings memo;
        for (std::int32_t c : columns) {
            const std::vector<std::uint64_t> specs =
                columnCkptSpecs(plan, scientific, c);
            std::int64_t prev = -1;
            std::uint64_t start = 0;
            for (std::size_t b = 0; b < bounds.size(); ++b) {
                WorkUnit u;
                u.kind = UnitKind::kSegment;
                u.workload = name;
                u.column = c;
                u.segBegin = start;
                u.segEnd = bounds[b];
                u.finalSegment = b + 1 == bounds.size();
                if (start != 0) {
                    // `start` is bounds[b - 1]; a trusted stored
                    // checkpoint there lets this segment start
                    // without waiting for its predecessor.
                    const std::uint64_t state =
                        checkpointStateDigest(
                            prefixes[b - 1],
                            static_cast<std::size_t>(start),
                            warmup);
                    if (!trustedCheckpointAt(memo, *store, specs,
                                             ckpt_config, start,
                                             state))
                        u.dependsOn = prev;
                }
                prev = static_cast<std::int64_t>(units.size());
                units.push_back(std::move(u));
                start = bounds[b];
            }
        }
    }
    return units;
}

std::uint64_t
unitLastCheckpointIndex(const SweepPlan &plan, const WorkUnit &unit,
                        TraceStore &store)
{
    if (unit.kind == UnitKind::kWorkload)
        return 0; // spans many cells; the driver probes per lane
    const WorkloadRegistry &registry = WorkloadRegistry::instance();
    std::unique_ptr<Workload> workload =
        registry.make(unit.workload);
    if (!workload)
        return 0;
    TraceKey key{unit.workload, plan.records, plan.seed};
    Trace trace;
    if (!store.loadTrace(key, trace))
        return 0;
    const std::uint64_t limit =
        unit.kind == UnitKind::kSegment
            ? std::min<std::uint64_t>(unit.segEnd, trace.size())
            : trace.size();

    const ExperimentConfig config = planExperimentConfig(plan);
    const std::uint64_t ckpt_config = checkpointConfigDigest(config);
    const std::size_t warmup =
        effectiveWarmupRecords(config, trace.size());
    const std::vector<std::uint64_t> specs = columnCkptSpecs(
        plan,
        workload->workloadClass() == WorkloadClass::kScientific,
        unit.column);

    SpecListings memo;
    std::vector<std::size_t> candidates;
    for (const StoredCheckpointKey &k :
         listingFor(memo, store, specs.front(), ckpt_config))
        if (k.index > 0 && k.index <= limit)
            candidates.push_back(static_cast<std::size_t>(k.index));
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(
        std::unique(candidates.begin(), candidates.end()),
        candidates.end());
    if (candidates.empty())
        return 0;
    const std::vector<std::uint64_t> prefixes =
        tracePrefixDigests(trace, candidates);
    for (std::size_t i = candidates.size(); i-- > 0;) {
        const std::uint64_t state = checkpointStateDigest(
            prefixes[i], candidates[i], warmup);
        if (trustedCheckpointAt(memo, store, specs, ckpt_config,
                                candidates[i], state))
            return candidates[i];
    }
    return 0;
}

} // namespace stems
