/**
 * @file
 * Sweep-service protocol: the messages exchanged between
 * `stems_trace serve` (coordinator) and `stems_trace worker`.
 *
 * The protocol is a pull model over the content-addressed store:
 * the wire carries only control traffic, the store directory is the
 * data plane. A worker connects, proves version compatibility
 * (kHello), receives the full declarative SweepPlan as canonical
 * JSON plus its digest (kPlan, acknowledged by echoing the digest
 * in kPlanAck), then loops requesting work units (kRequestUnit ->
 * kUnit). One unit is one workload of the plan; executing it runs
 * every cell of that workload's row through the normal driver lane
 * path, persisting baselines and results into the shared store.
 * kUnitDone reports completion; when every unit of the plan is
 * complete the coordinator answers pending requests with kBye.
 *
 * Determinism: because workers only ever *populate* the store —
 * under exactly the keys a single-process sweep would use — the
 * coordinator's merge is a plain local run of the same plan over
 * the now-warm store, which makes the distributed result bitwise
 * identical to the single-process one by construction, regardless
 * of worker count, scheduling, or mid-sweep worker loss (a lost
 * unit is requeued; re-execution writes the same bytes).
 *
 * Payload encodings use common/state_codec.hh with the same
 * bounds-checked "reject, never mis-decode" discipline as the
 * checkpoint codec; the frame layer (net/frame.hh) already
 * CRC-protects every message.
 */

#ifndef STEMS_NET_PROTOCOL_HH
#define STEMS_NET_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace stems {

/** Bumped on any wire-visible change; kHello carries it. */
inline constexpr std::uint32_t kNetProtocolVersion = 1;

/** Frame types (net/frame.hh `type` field). */
enum NetMsg : std::uint32_t
{
    kMsgHello = 1,       ///< worker -> coord: protocol version
    kMsgPlan = 2,        ///< coord -> worker: plan JSON + digest
    kMsgPlanAck = 3,     ///< worker -> coord: echoes plan digest
    kMsgRequestUnit = 4, ///< worker -> coord: give me work
    kMsgUnit = 5,        ///< coord -> worker: one work unit
    kMsgUnitDone = 6,    ///< worker -> coord: unit completed
    kMsgBye = 7,         ///< coord -> worker: sweep finished
};

/** kMsgHello payload. */
struct HelloMsg
{
    std::uint32_t version = kNetProtocolVersion;
};

/** kMsgPlan payload: the canonical plan JSON plus its digest
 *  (store/keys.hh sweepPlanDigest) so the worker can verify the
 *  text it parsed is the plan the coordinator is running. */
struct PlanMsg
{
    std::uint64_t planDigest = 0;
    std::string planJson;
};

/** kMsgPlanAck payload. */
struct PlanAckMsg
{
    std::uint64_t planDigest = 0;
};

/** kMsgUnit payload: one workload row of the plan. */
struct UnitMsg
{
    std::uint64_t unitIndex = 0;
    std::string workload;
};

/** kMsgUnitDone payload. */
struct UnitDoneMsg
{
    std::uint64_t unitIndex = 0;
};

std::vector<std::uint8_t> encodeHello(const HelloMsg &msg);
bool decodeHello(const std::vector<std::uint8_t> &bytes,
                 HelloMsg &out);

std::vector<std::uint8_t> encodePlanMsg(const PlanMsg &msg);
bool decodePlanMsg(const std::vector<std::uint8_t> &bytes,
                   PlanMsg &out);

std::vector<std::uint8_t> encodePlanAck(const PlanAckMsg &msg);
bool decodePlanAck(const std::vector<std::uint8_t> &bytes,
                   PlanAckMsg &out);

std::vector<std::uint8_t> encodeUnit(const UnitMsg &msg);
bool decodeUnit(const std::vector<std::uint8_t> &bytes,
                UnitMsg &out);

std::vector<std::uint8_t> encodeUnitDone(const UnitDoneMsg &msg);
bool decodeUnitDone(const std::vector<std::uint8_t> &bytes,
                    UnitDoneMsg &out);

} // namespace stems

#endif // STEMS_NET_PROTOCOL_HH
