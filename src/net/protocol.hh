/**
 * @file
 * Sweep-service protocol: the messages exchanged between
 * `stems_trace serve` (coordinator) and `stems_trace worker`.
 *
 * The protocol is a pull model over the content-addressed store:
 * the wire carries only control traffic, the store directory is the
 * data plane. A worker connects, proves version compatibility
 * (kHello; a coordinator answers a mismatched version with kBye and
 * closes — old peers are rejected cleanly, never mis-served),
 * receives the full declarative SweepPlan as canonical JSON plus
 * its digest and a coordinator-assigned session id (kPlan,
 * acknowledged by echoing the digest in kPlanAck), then loops
 * requesting work units (kRequestUnit -> kUnit). A unit is one of
 * three granularities (net/units.hh): a whole workload row, one
 * (workload, engine-column) cell, or one checkpoint-delimited
 * segment of a cell; executing it runs the same driver lane path a
 * local sweep uses, persisting baselines, checkpoints and results
 * into the shared store. kUnitDone reports completion; when every
 * unit of the plan is complete the coordinator answers pending
 * requests with kBye.
 *
 * Reconnect-resume: a worker that lost its connection mid-unit
 * reconnects, repeats kHello carrying its previous session id, and
 * sends kResume naming the unit it still holds plus the newest
 * checkpoint index it committed to the store. A coordinator that
 * still has that unit reserved for the session re-assigns it in
 * place (kResumeAck accepted=1) and the worker finishes it from the
 * store-committed checkpoint instead of restarting at record 0;
 * otherwise the unit was already requeued or completed and the
 * worker falls through to requesting fresh work (accepted=0).
 *
 * Determinism: because workers only ever *populate* the store —
 * under exactly the keys a single-process sweep would use — the
 * coordinator's merge is a plain local run of the same plan over
 * the now-warm store, which makes the distributed result bitwise
 * identical to the single-process one by construction, regardless
 * of worker count, unit granularity, scheduling, or mid-sweep
 * worker loss (a lost unit is requeued or resumed; re-execution
 * writes the same bytes).
 *
 * Payload encodings use common/state_codec.hh with the same
 * bounds-checked "reject, never mis-decode" discipline as the
 * checkpoint codec; the frame layer (net/frame.hh) already
 * CRC-protects every message. The v2 kUnit payload uses a fresh
 * payload tag, so a v1 decoder rejects it outright instead of
 * reading a prefix of it.
 */

#ifndef STEMS_NET_PROTOCOL_HH
#define STEMS_NET_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "net/units.hh"

namespace stems {

/** Bumped on any wire-visible change; kHello carries it.
 *  v2: session ids, Resume/ResumeAck, tagged multi-granularity
 *  units with a prefetch hint. */
inline constexpr std::uint32_t kNetProtocolVersion = 2;

/** Frame types (net/frame.hh `type` field). */
enum NetMsg : std::uint32_t
{
    kMsgHello = 1,       ///< worker -> coord: version + session id
    kMsgPlan = 2,        ///< coord -> worker: plan JSON + digest
    kMsgPlanAck = 3,     ///< worker -> coord: echoes plan digest
    kMsgRequestUnit = 4, ///< worker -> coord: give me work
    kMsgUnit = 5,        ///< coord -> worker: one work unit
    kMsgUnitDone = 6,    ///< worker -> coord: unit completed
    kMsgBye = 7,         ///< coord -> worker: sweep finished (or
                         ///< version refused, at the Hello stage)
    kMsgResume = 8,      ///< worker -> coord: reclaim a held unit
    kMsgResumeAck = 9,   ///< coord -> worker: reclaim verdict
};

/** kMsgHello payload. A returning worker repeats the session id the
 *  coordinator assigned it (kMsgPlan); 0 asks for a fresh one. The
 *  v1 form (version only) still decodes — the coordinator must read
 *  an old peer's Hello to refuse it politely. */
struct HelloMsg
{
    std::uint32_t version = kNetProtocolVersion;
    std::uint64_t sessionId = 0;
};

/** kMsgPlan payload: the canonical plan JSON plus its digest
 *  (store/keys.hh sweepPlanDigest) so the worker can verify the
 *  text it parsed is the plan the coordinator is running, and the
 *  session id this connection is registered under. */
struct PlanMsg
{
    std::uint64_t planDigest = 0;
    std::string planJson;
    std::uint64_t sessionId = 0;
};

/** kMsgPlanAck payload. */
struct PlanAckMsg
{
    std::uint64_t planDigest = 0;
};

/** kMsgUnit payload: one work unit (net/units.hh), plus a prefetch
 *  hint — the workload of the next unit the coordinator expects to
 *  hand out, which the worker may materialize into the store in the
 *  background while this unit simulates (empty = no hint). */
struct UnitMsg
{
    std::uint64_t unitIndex = 0;
    std::string workload;
    UnitKind kind = UnitKind::kWorkload;
    /// Engine column (cell/segment units): -1 = the baseline
    /// column, >= 0 indexes the plan's engine list.
    std::int32_t column = -1;
    std::uint64_t segBegin = 0; ///< segment units: first record
    std::uint64_t segEnd = 0;   ///< segment units: one past last
    /// Segment units: this is the cell's final segment (its end is
    /// the trace end), so results must be computed and persisted.
    bool finalSegment = false;
    std::string prefetchWorkload;
};

/** kMsgUnitDone payload. */
struct UnitDoneMsg
{
    std::uint64_t unitIndex = 0;
};

/** kMsgResume payload: after reconnecting, reclaim the unit this
 *  session still holds. lastCheckpointIndex is the newest checkpoint
 *  the worker committed to the store for the unit (0 = none) — the
 *  store remains the source of truth for the actual resume point;
 *  the field makes the handshake observable in logs and tests. */
struct ResumeMsg
{
    std::uint64_t sessionId = 0;
    std::uint64_t unitIndex = 0;
    std::uint64_t lastCheckpointIndex = 0;
};

/** kMsgResumeAck payload. accepted=0 means the unit is no longer
 *  reserved (requeued, reassigned, or already done): drop it and
 *  request fresh work. */
struct ResumeAckMsg
{
    std::uint64_t unitIndex = 0;
    bool accepted = false;
};

std::vector<std::uint8_t> encodeHello(const HelloMsg &msg);
bool decodeHello(const std::vector<std::uint8_t> &bytes,
                 HelloMsg &out);

std::vector<std::uint8_t> encodePlanMsg(const PlanMsg &msg);
bool decodePlanMsg(const std::vector<std::uint8_t> &bytes,
                   PlanMsg &out);

std::vector<std::uint8_t> encodePlanAck(const PlanAckMsg &msg);
bool decodePlanAck(const std::vector<std::uint8_t> &bytes,
                   PlanAckMsg &out);

std::vector<std::uint8_t> encodeUnit(const UnitMsg &msg);
bool decodeUnit(const std::vector<std::uint8_t> &bytes,
                UnitMsg &out);

std::vector<std::uint8_t> encodeUnitDone(const UnitDoneMsg &msg);
bool decodeUnitDone(const std::vector<std::uint8_t> &bytes,
                    UnitDoneMsg &out);

std::vector<std::uint8_t> encodeResume(const ResumeMsg &msg);
bool decodeResume(const std::vector<std::uint8_t> &bytes,
                  ResumeMsg &out);

std::vector<std::uint8_t> encodeResumeAck(const ResumeAckMsg &msg);
bool decodeResumeAck(const std::vector<std::uint8_t> &bytes,
                     ResumeAckMsg &out);

} // namespace stems

#endif // STEMS_NET_PROTOCOL_HH
