#include "net/protocol.hh"

#include "common/state_codec.hh"

namespace stems {

namespace {

constexpr std::uint32_t kHelloTag = stateTag('N', 'H', 'L', 'O');
constexpr std::uint32_t kPlanTag = stateTag('N', 'P', 'L', 'N');
constexpr std::uint32_t kPlanAckTag = stateTag('N', 'P', 'A', 'K');
// v2 unit payload: a fresh tag (v1 used 'NUNT'), so a v1 decoder
// rejects the richer layout outright instead of mis-reading a
// prefix of it.
constexpr std::uint32_t kUnitTag = stateTag('N', 'U', 'N', '2');
constexpr std::uint32_t kUnitDoneTag = stateTag('N', 'U', 'D', 'N');
constexpr std::uint32_t kResumeTag = stateTag('N', 'R', 'S', 'M');
constexpr std::uint32_t kResumeAckTag = stateTag('N', 'R', 'S', 'A');

/** Plan JSON is small; anything near the frame cap is hostile. */
constexpr std::size_t kMaxStringBytes = 4u << 20;

void
writeString(StateWriter &w, const std::string &s)
{
    w.u64(s.size());
    for (char c : s)
        w.u8(static_cast<std::uint8_t>(c));
}

/** Strict boolean: only the canonical 0/1 bytes decode, so every
 *  accepted payload re-encodes to exactly the bytes received
 *  (reject-never-misdecode extends to the payload layer). */
bool
readBool(StateReader &r, bool &out)
{
    const std::uint8_t v = r.u8();
    if (v > 1) {
        r.fail();
        return false;
    }
    out = v != 0;
    return true;
}

std::string
readString(StateReader &r, std::size_t limit = kMaxStringBytes)
{
    std::uint64_t n = r.u64();
    if (n > limit) {
        r.fail();
        return {};
    }
    std::string s;
    s.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n && r.ok(); ++i)
        s.push_back(static_cast<char>(r.u8()));
    return r.ok() ? s : std::string();
}

} // namespace

std::vector<std::uint8_t>
encodeHello(const HelloMsg &msg)
{
    StateWriter w;
    w.tag(kHelloTag);
    w.u32(msg.version);
    w.u64(msg.sessionId);
    return w.take();
}

bool
decodeHello(const std::vector<std::uint8_t> &bytes, HelloMsg &out)
{
    StateReader r(bytes.data(), bytes.size());
    r.tag(kHelloTag);
    out.version = r.u32();
    if (r.atEnd()) {
        // The v1 form stopped here. Decoding it (session 0) is what
        // lets the coordinator *read* an old peer's Hello and
        // refuse it with a polite kMsgBye instead of dropping the
        // socket mid-handshake.
        out.sessionId = 0;
        return true;
    }
    out.sessionId = r.u64();
    return r.atEnd();
}

std::vector<std::uint8_t>
encodePlanMsg(const PlanMsg &msg)
{
    StateWriter w;
    w.tag(kPlanTag);
    w.u64(msg.planDigest);
    writeString(w, msg.planJson);
    w.u64(msg.sessionId);
    return w.take();
}

bool
decodePlanMsg(const std::vector<std::uint8_t> &bytes, PlanMsg &out)
{
    StateReader r(bytes.data(), bytes.size());
    r.tag(kPlanTag);
    out.planDigest = r.u64();
    out.planJson = readString(r);
    out.sessionId = r.u64();
    return r.atEnd();
}

std::vector<std::uint8_t>
encodePlanAck(const PlanAckMsg &msg)
{
    StateWriter w;
    w.tag(kPlanAckTag);
    w.u64(msg.planDigest);
    return w.take();
}

bool
decodePlanAck(const std::vector<std::uint8_t> &bytes,
              PlanAckMsg &out)
{
    StateReader r(bytes.data(), bytes.size());
    r.tag(kPlanAckTag);
    out.planDigest = r.u64();
    return r.atEnd();
}

std::vector<std::uint8_t>
encodeUnit(const UnitMsg &msg)
{
    StateWriter w;
    w.tag(kUnitTag);
    w.u64(msg.unitIndex);
    writeString(w, msg.workload);
    w.u8(static_cast<std::uint8_t>(msg.kind));
    // Columns are small signed values; bias by one so the baseline
    // column (-1) encodes as 0 and the codec stays unsigned.
    w.u64(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(msg.column) + 1));
    w.u64(msg.segBegin);
    w.u64(msg.segEnd);
    w.boolean(msg.finalSegment);
    writeString(w, msg.prefetchWorkload);
    return w.take();
}

bool
decodeUnit(const std::vector<std::uint8_t> &bytes, UnitMsg &out)
{
    StateReader r(bytes.data(), bytes.size());
    r.tag(kUnitTag);
    out.unitIndex = r.u64();
    out.workload = readString(r, 64u << 10);
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(UnitKind::kSegment)) {
        r.fail();
        return false;
    }
    out.kind = static_cast<UnitKind>(kind);
    const std::uint64_t column = r.u64();
    if (column > static_cast<std::uint64_t>(INT32_MAX)) {
        r.fail();
        return false;
    }
    out.column =
        static_cast<std::int32_t>(static_cast<std::int64_t>(column) -
                                  1);
    out.segBegin = r.u64();
    out.segEnd = r.u64();
    if (!readBool(r, out.finalSegment))
        return false;
    out.prefetchWorkload = readString(r, 64u << 10);
    return r.atEnd();
}

std::vector<std::uint8_t>
encodeUnitDone(const UnitDoneMsg &msg)
{
    StateWriter w;
    w.tag(kUnitDoneTag);
    w.u64(msg.unitIndex);
    return w.take();
}

bool
decodeUnitDone(const std::vector<std::uint8_t> &bytes,
               UnitDoneMsg &out)
{
    StateReader r(bytes.data(), bytes.size());
    r.tag(kUnitDoneTag);
    out.unitIndex = r.u64();
    return r.atEnd();
}

std::vector<std::uint8_t>
encodeResume(const ResumeMsg &msg)
{
    StateWriter w;
    w.tag(kResumeTag);
    w.u64(msg.sessionId);
    w.u64(msg.unitIndex);
    w.u64(msg.lastCheckpointIndex);
    return w.take();
}

bool
decodeResume(const std::vector<std::uint8_t> &bytes, ResumeMsg &out)
{
    StateReader r(bytes.data(), bytes.size());
    r.tag(kResumeTag);
    out.sessionId = r.u64();
    out.unitIndex = r.u64();
    out.lastCheckpointIndex = r.u64();
    return r.atEnd();
}

std::vector<std::uint8_t>
encodeResumeAck(const ResumeAckMsg &msg)
{
    StateWriter w;
    w.tag(kResumeAckTag);
    w.u64(msg.unitIndex);
    w.boolean(msg.accepted);
    return w.take();
}

bool
decodeResumeAck(const std::vector<std::uint8_t> &bytes,
                ResumeAckMsg &out)
{
    StateReader r(bytes.data(), bytes.size());
    r.tag(kResumeAckTag);
    out.unitIndex = r.u64();
    if (!readBool(r, out.accepted))
        return false;
    return r.atEnd();
}

} // namespace stems
