#include "net/protocol.hh"

#include "common/state_codec.hh"

namespace stems {

namespace {

constexpr std::uint32_t kHelloTag = stateTag('N', 'H', 'L', 'O');
constexpr std::uint32_t kPlanTag = stateTag('N', 'P', 'L', 'N');
constexpr std::uint32_t kPlanAckTag = stateTag('N', 'P', 'A', 'K');
constexpr std::uint32_t kUnitTag = stateTag('N', 'U', 'N', 'T');
constexpr std::uint32_t kUnitDoneTag = stateTag('N', 'U', 'D', 'N');

/** Plan JSON is small; anything near the frame cap is hostile. */
constexpr std::size_t kMaxStringBytes = 4u << 20;

void
writeString(StateWriter &w, const std::string &s)
{
    w.u64(s.size());
    for (char c : s)
        w.u8(static_cast<std::uint8_t>(c));
}

std::string
readString(StateReader &r, std::size_t limit = kMaxStringBytes)
{
    std::uint64_t n = r.u64();
    if (n > limit) {
        r.fail();
        return {};
    }
    std::string s;
    s.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n && r.ok(); ++i)
        s.push_back(static_cast<char>(r.u8()));
    return r.ok() ? s : std::string();
}

} // namespace

std::vector<std::uint8_t>
encodeHello(const HelloMsg &msg)
{
    StateWriter w;
    w.tag(kHelloTag);
    w.u32(msg.version);
    return w.take();
}

bool
decodeHello(const std::vector<std::uint8_t> &bytes, HelloMsg &out)
{
    StateReader r(bytes.data(), bytes.size());
    r.tag(kHelloTag);
    out.version = r.u32();
    return r.atEnd();
}

std::vector<std::uint8_t>
encodePlanMsg(const PlanMsg &msg)
{
    StateWriter w;
    w.tag(kPlanTag);
    w.u64(msg.planDigest);
    writeString(w, msg.planJson);
    return w.take();
}

bool
decodePlanMsg(const std::vector<std::uint8_t> &bytes, PlanMsg &out)
{
    StateReader r(bytes.data(), bytes.size());
    r.tag(kPlanTag);
    out.planDigest = r.u64();
    out.planJson = readString(r);
    return r.atEnd();
}

std::vector<std::uint8_t>
encodePlanAck(const PlanAckMsg &msg)
{
    StateWriter w;
    w.tag(kPlanAckTag);
    w.u64(msg.planDigest);
    return w.take();
}

bool
decodePlanAck(const std::vector<std::uint8_t> &bytes,
              PlanAckMsg &out)
{
    StateReader r(bytes.data(), bytes.size());
    r.tag(kPlanAckTag);
    out.planDigest = r.u64();
    return r.atEnd();
}

std::vector<std::uint8_t>
encodeUnit(const UnitMsg &msg)
{
    StateWriter w;
    w.tag(kUnitTag);
    w.u64(msg.unitIndex);
    writeString(w, msg.workload);
    return w.take();
}

bool
decodeUnit(const std::vector<std::uint8_t> &bytes, UnitMsg &out)
{
    StateReader r(bytes.data(), bytes.size());
    r.tag(kUnitTag);
    out.unitIndex = r.u64();
    out.workload = readString(r, 64u << 10);
    return r.atEnd();
}

std::vector<std::uint8_t>
encodeUnitDone(const UnitDoneMsg &msg)
{
    StateWriter w;
    w.tag(kUnitDoneTag);
    w.u64(msg.unitIndex);
    return w.take();
}

bool
decodeUnitDone(const std::vector<std::uint8_t> &bytes,
               UnitDoneMsg &out)
{
    StateReader r(bytes.data(), bytes.size());
    r.tag(kUnitDoneTag);
    out.unitIndex = r.u64();
    return r.atEnd();
}

} // namespace stems
