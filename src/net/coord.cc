#include "net/coord.hh"

#include <cerrno>
#include <poll.h>

#include "net/protocol.hh"
#include "obs/metrics.hh"
#include "obs/trace_span.hh"
#include "store/keys.hh"

namespace stems {

namespace {

void
setError(std::string *error, const std::string &text)
{
    if (error)
        *error = text;
}

Counter &
coordCounter(const char *name)
{
    return MetricsRegistry::instance().counter(name);
}

const char *
unitKindCounter(UnitKind kind)
{
    switch (kind) {
    case UnitKind::kCell:
        return "net.unit.cell";
    case UnitKind::kSegment:
        return "net.unit.segment";
    case UnitKind::kWorkload:
    default:
        return "net.unit.workload";
    }
}

std::vector<WorkUnit>
storelessUnits(const SweepPlan &plan)
{
    // Without a store there is no seeding pass, so segment
    // granularity degrades to the finest storeless decomposition
    // (cells). Purely a scheduling matter: results are identical at
    // any granularity.
    SweepPlan local = plan;
    if (local.unitGranularity == UnitGranularity::kSegment)
        local.unitGranularity = UnitGranularity::kCell;
    return decomposeSweepPlan(local, nullptr);
}

} // namespace

SweepCoordinator::SweepCoordinator(const SweepPlan &plan)
    : SweepCoordinator(plan, storelessUnits(plan))
{
}

SweepCoordinator::SweepCoordinator(const SweepPlan &plan,
                                   std::vector<WorkUnit> units)
    : plan_(plan),
      planJson_(sweepPlanJson(plan)),
      planDigest_(sweepPlanDigest(plan))
{
    units_.reserve(units.size());
    for (WorkUnit &work : units) {
        Unit unit;
        unit.work = std::move(work);
        units_.push_back(std::move(unit));
    }
}

SweepCoordinator::~SweepCoordinator() = default;

bool
SweepCoordinator::listen(std::uint16_t port, std::string *error)
{
    return listener_.open(port, error);
}

bool
SweepCoordinator::unitAssignable(std::size_t index) const
{
    const Unit &unit = units_[index];
    if (unit.state != UnitState::kPending)
        return false;
    const std::int64_t dep = unit.work.dependsOn;
    return dep < 0 ||
           units_[static_cast<std::size_t>(dep)].state ==
               UnitState::kDone;
}

bool
SweepCoordinator::assignUnit(Conn &conn)
{
    // Lowest assignable index first: deterministic hand-out order
    // (the results themselves are order-independent, but
    // predictable scheduling keeps logs and tests readable), and
    // segment chains advance front-to-back so dependents unblock as
    // early as possible.
    for (std::size_t i = 0; i < units_.size(); ++i) {
        if (!unitAssignable(i))
            continue;
        const WorkUnit &work = units_[i].work;
        UnitMsg msg;
        msg.unitIndex = i;
        msg.workload = work.workload;
        msg.kind = work.kind;
        msg.column = work.column;
        msg.segBegin = work.segBegin;
        msg.segEnd = work.segEnd;
        msg.finalSegment = work.finalSegment;
        // Prefetch hint: the next pending unit with a *different*
        // workload — its trace can be materialized into the store
        // while this unit simulates.
        for (std::size_t j = 0; j < units_.size(); ++j) {
            if (j == i ||
                units_[j].state != UnitState::kPending ||
                units_[j].work.workload == work.workload)
                continue;
            msg.prefetchWorkload = units_[j].work.workload;
            break;
        }
        if (!conn.io->sendFrame(kMsgUnit, encodeUnit(msg)))
            return false;
        units_[i].state = UnitState::kInFlight;
        units_[i].session = conn.session;
        units_[i].assignedAt = std::chrono::steady_clock::now();
        conn.state = ConnState::kWorking;
        conn.unit = i;
        coordCounter("coord.units.assigned").add();
        coordCounter(unitKindCounter(work.kind)).add();
        return true;
    }
    return false; // nothing assignable
}

/** Graceful end-of-sweep: kBye then close (not a failure path). */
void
SweepCoordinator::finishConn(Conn &conn)
{
    if (conn.io->closed())
        return;
    conn.io->sendFrame(kMsgBye, {});
    conn.io->close();
}

/** Abrupt loss: reserve the conn's unit for a session reconnect
 *  (or requeue it outright when resume is disabled) and close. */
void
SweepCoordinator::dropConn(std::size_t index)
{
    Conn &conn = conns_[index];
    if (conn.io->closed())
        return;
    if (conn.state == ConnState::kWorking &&
        units_[conn.unit].state == UnitState::kInFlight &&
        units_[conn.unit].session == conn.session) {
        Unit &unit = units_[conn.unit];
        if (resumeGraceSeconds_ > 0.0 && conn.session != 0) {
            unit.state = UnitState::kResumable;
            unit.resumableAt = std::chrono::steady_clock::now();
        } else {
            unit.state = UnitState::kPending;
            unit.session = 0;
            requeued_++;
            coordCounter("coord.units.requeued").add();
        }
    }
    conn.io->close();
    coordCounter("coord.workers.disconnected").add();
    // A parked worker can take over anything now assignable.
    pumpParked();
}

void
SweepCoordinator::pumpParked()
{
    for (Conn &conn : conns_) {
        if (conn.io->closed() || conn.state != ConnState::kParked)
            continue;
        conn.state = ConnState::kIdle;
        if (!assignUnit(conn))
            conn.state = ConnState::kParked;
    }
}

void
SweepCoordinator::expireUnits()
{
    const auto now = std::chrono::steady_clock::now();
    const auto grace = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(resumeGraceSeconds_));
    const auto unit_limit = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(unitTimeoutSeconds_));
    bool changed = false;

    for (std::size_t i = 0; i < units_.size(); ++i) {
        Unit &unit = units_[i];
        if (unit.state == UnitState::kResumable &&
            now - unit.resumableAt >= grace) {
            // The session never came back: give the unit away.
            unit.state = UnitState::kPending;
            unit.session = 0;
            requeued_++;
            coordCounter("coord.units.requeued").add();
            changed = true;
        } else if (unit.state == UnitState::kInFlight &&
                   unitTimeoutSeconds_ > 0.0 &&
                   now - unit.assignedAt >= unit_limit) {
            // Slow-worker watchdog: one hung worker must not stall
            // the sweep. Drop the connection (if it is still
            // around) and requeue; a late kUnitDone from the
            // zombie for an already-redone unit is ignored by the
            // duplicate-done path.
            for (Conn &conn : conns_) {
                if (!conn.io->closed() &&
                    conn.state == ConnState::kWorking &&
                    conn.unit == i &&
                    conn.session == unit.session) {
                    conn.io->close();
                    coordCounter("coord.workers.disconnected")
                        .add();
                    break;
                }
            }
            unit.state = UnitState::kPending;
            unit.session = 0;
            requeued_++;
            coordCounter("coord.units.requeued").add();
            coordCounter("coord.units.watchdog").add();
            changed = true;
        }
    }
    if (changed)
        pumpParked();
}

/** @return false when the connection must be dropped. */
bool
SweepCoordinator::handleFrame(std::size_t index, const Frame &frame)
{
    Conn &conn = conns_[index];
    switch (frame.type) {
    case kMsgHello: {
        HelloMsg hello;
        if (conn.state != ConnState::kAwaitHello ||
            !decodeHello(frame.payload, hello))
            return false;
        if (hello.version != kNetProtocolVersion) {
            // Clean cross-version rejection: an old (or newer) peer
            // gets a definite kBye instead of a dead socket, so it
            // reports a refusal rather than hanging in a retry.
            finishConn(conn);
            return true;
        }
        conn.session =
            hello.sessionId != 0 ? hello.sessionId : nextSession_++;
        PlanMsg plan_msg;
        plan_msg.planDigest = planDigest_;
        plan_msg.planJson = planJson_;
        plan_msg.sessionId = conn.session;
        if (!conn.io->sendFrame(kMsgPlan, encodePlanMsg(plan_msg)))
            return false;
        conn.state = ConnState::kAwaitAck;
        return true;
    }
    case kMsgPlanAck: {
        PlanAckMsg ack;
        if (conn.state != ConnState::kAwaitAck ||
            !decodePlanAck(frame.payload, ack) ||
            ack.planDigest != planDigest_)
            return false;
        conn.state = ConnState::kIdle;
        return true;
    }
    case kMsgResume: {
        ResumeMsg resume;
        if (conn.state != ConnState::kIdle ||
            !decodeResume(frame.payload, resume))
            return false;
        Unit *unit = resume.unitIndex < units_.size()
                         ? &units_[resume.unitIndex]
                         : nullptr;
        ResumeAckMsg ack;
        ack.unitIndex = resume.unitIndex;
        if (unit && unit->state == UnitState::kResumable &&
            unit->session == resume.sessionId &&
            resume.sessionId == conn.session) {
            unit->state = UnitState::kInFlight;
            unit->assignedAt = std::chrono::steady_clock::now();
            conn.state = ConnState::kWorking;
            conn.unit = static_cast<std::size_t>(resume.unitIndex);
            ack.accepted = true;
            resumed_++;
            coordCounter("net.unit.resumed").add();
        }
        return conn.io->sendFrame(kMsgResumeAck,
                                  encodeResumeAck(ack));
    }
    case kMsgRequestUnit: {
        if (conn.state != ConnState::kIdle)
            return false;
        if (allDone()) {
            finishConn(conn);
            return true;
        }
        if (!assignUnit(conn))
            conn.state = ConnState::kParked;
        return true;
    }
    case kMsgUnitDone: {
        UnitDoneMsg done;
        if (!decodeUnitDone(frame.payload, done))
            return false;
        if (conn.state == ConnState::kWorking &&
            done.unitIndex == conn.unit &&
            units_[conn.unit].state == UnitState::kInFlight &&
            units_[conn.unit].session == conn.session) {
            units_[conn.unit].state = UnitState::kDone;
            completed_++;
            coordCounter("coord.units.completed").add();
            conn.state = ConnState::kIdle;
            // Completion may unblock segment-chain dependents.
            pumpParked();
            return true;
        }
        // Duplicate completion for a unit that is already done
        // (retransmit after a resume, or a worker hook sending
        // kUnitDone twice): idempotent, ignore.
        if (done.unitIndex < units_.size() &&
            units_[static_cast<std::size_t>(done.unitIndex)]
                    .state == UnitState::kDone)
            return true;
        return false;
    }
    default:
        return false;
    }
}

bool
SweepCoordinator::serve(double timeout_seconds, std::string *error)
{
    if (listener_.fd() < 0) {
        setError(error, "serve before listen");
        return false;
    }
    ScopedSpan span("coord.serve", "net");
    span.arg("units", static_cast<std::uint64_t>(units_.size()));

    const bool bounded = timeout_seconds > 0.0;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(
                bounded ? timeout_seconds : 0.0));

    while (!allDone()) {
        if (bounded &&
            std::chrono::steady_clock::now() >= deadline) {
            setError(error,
                     "sweep service timed out with " +
                         std::to_string(units_.size() - completed_) +
                         " unit(s) unfinished");
            for (std::size_t i = 0; i < conns_.size(); ++i)
                dropConn(i);
            return false;
        }
        expireUnits();
        if (allDone())
            break;

        std::vector<pollfd> fds;
        fds.push_back({listener_.fd(), POLLIN, 0});
        // Map pollfd index -> conns_ index (closed conns skipped).
        std::vector<std::size_t> conn_of;
        for (std::size_t i = 0; i < conns_.size(); ++i) {
            if (conns_[i].io->closed())
                continue;
            fds.push_back({conns_[i].io->fd(), POLLIN, 0});
            conn_of.push_back(i);
        }
        int ready = ::poll(fds.data(),
                           static_cast<nfds_t>(fds.size()), 100);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            setError(error, "poll failed");
            return false;
        }
        if (ready == 0)
            continue;

        if (fds[0].revents & POLLIN) {
            int fd = listener_.accept();
            if (fd >= 0) {
                Conn conn;
                conn.io = std::make_unique<FramedConn>(fd);
                conns_.push_back(std::move(conn));
                workersSeen_++;
                coordCounter("coord.workers.connected").add();
            }
        }

        for (std::size_t k = 0; k < conn_of.size(); ++k) {
            if (!(fds[k + 1].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            std::size_t ci = conn_of[k];
            if (conns_[ci].io->closed())
                continue; // closed while handling an earlier event
            if (!conns_[ci].io->readAvailable()) {
                dropConn(ci);
                continue;
            }
            Frame frame;
            bool drop = false;
            while (!drop && conns_[ci].io->nextFrame(frame))
                drop = !handleFrame(ci, frame);
            if (drop || conns_[ci].io->frameError())
                dropConn(ci);
        }

        // Garbage-collect closed connections so long sweeps with
        // worker churn don't grow the table unboundedly.
        std::size_t alive = 0;
        for (std::size_t i = 0; i < conns_.size(); ++i)
            if (!conns_[i].io->closed())
                conns_[alive++] = std::move(conns_[i]);
        conns_.resize(alive);
    }

    for (Conn &conn : conns_)
        finishConn(conn);
    conns_.clear();
    listener_.close();
    return true;
}

} // namespace stems
