#include "net/coord.hh"

#include <cerrno>
#include <chrono>
#include <poll.h>

#include "net/protocol.hh"
#include "obs/metrics.hh"
#include "obs/trace_span.hh"
#include "store/keys.hh"

namespace stems {

namespace {

void
setError(std::string *error, const std::string &text)
{
    if (error)
        *error = text;
}

Counter &
coordCounter(const char *name)
{
    return MetricsRegistry::instance().counter(name);
}

} // namespace

SweepCoordinator::SweepCoordinator(const SweepPlan &plan)
    : plan_(plan),
      planJson_(sweepPlanJson(plan)),
      planDigest_(sweepPlanDigest(plan)),
      units_(plan.workloads.size(), UnitState::kPending)
{
}

SweepCoordinator::~SweepCoordinator() = default;

bool
SweepCoordinator::listen(std::uint16_t port, std::string *error)
{
    return listener_.open(port, error);
}

bool
SweepCoordinator::assignUnit(Conn &conn)
{
    // Lowest pending index first: deterministic hand-out order (the
    // results themselves are order-independent, but predictable
    // scheduling keeps logs and tests readable).
    for (std::size_t i = 0; i < units_.size(); ++i) {
        if (units_[i] != UnitState::kPending)
            continue;
        UnitMsg msg;
        msg.unitIndex = i;
        msg.workload = plan_.workloads[i];
        if (!conn.io->sendFrame(kMsgUnit, encodeUnit(msg)))
            return false;
        units_[i] = UnitState::kInFlight;
        conn.state = ConnState::kWorking;
        conn.unit = i;
        coordCounter("coord.units.assigned").add();
        return true;
    }
    return false; // nothing pending
}

/** Graceful end-of-sweep: kBye then close (not a failure path). */
void
SweepCoordinator::finishConn(Conn &conn)
{
    if (conn.io->closed())
        return;
    conn.io->sendFrame(kMsgBye, {});
    conn.io->close();
}

/** Abrupt loss: requeue the conn's unit and close. */
void
SweepCoordinator::dropConn(std::size_t index)
{
    Conn &conn = conns_[index];
    if (conn.io->closed())
        return;
    if (conn.state == ConnState::kWorking &&
        units_[conn.unit] == UnitState::kInFlight) {
        units_[conn.unit] = UnitState::kPending;
        requeued_++;
        coordCounter("coord.units.requeued").add();
        // A parked worker can take over the requeued unit at once.
        for (Conn &other : conns_) {
            if (&other != &conn && !other.io->closed() &&
                other.state == ConnState::kParked) {
                if (assignUnit(other))
                    break;
            }
        }
    }
    conn.io->close();
    coordCounter("coord.workers.disconnected").add();
}

/** @return false when the connection must be dropped. */
bool
SweepCoordinator::handleFrame(std::size_t index, const Frame &frame)
{
    Conn &conn = conns_[index];
    switch (frame.type) {
    case kMsgHello: {
        HelloMsg hello;
        if (conn.state != ConnState::kAwaitHello ||
            !decodeHello(frame.payload, hello) ||
            hello.version != kNetProtocolVersion)
            return false;
        PlanMsg plan_msg;
        plan_msg.planDigest = planDigest_;
        plan_msg.planJson = planJson_;
        if (!conn.io->sendFrame(kMsgPlan, encodePlanMsg(plan_msg)))
            return false;
        conn.state = ConnState::kAwaitAck;
        return true;
    }
    case kMsgPlanAck: {
        PlanAckMsg ack;
        if (conn.state != ConnState::kAwaitAck ||
            !decodePlanAck(frame.payload, ack) ||
            ack.planDigest != planDigest_)
            return false;
        conn.state = ConnState::kIdle;
        return true;
    }
    case kMsgRequestUnit: {
        if (conn.state != ConnState::kIdle)
            return false;
        if (allDone()) {
            finishConn(conn);
            return true;
        }
        if (!assignUnit(conn))
            conn.state = ConnState::kParked;
        return true;
    }
    case kMsgUnitDone: {
        UnitDoneMsg done;
        if (conn.state != ConnState::kWorking ||
            !decodeUnitDone(frame.payload, done) ||
            done.unitIndex != conn.unit ||
            units_[conn.unit] != UnitState::kInFlight)
            return false;
        units_[conn.unit] = UnitState::kDone;
        completed_++;
        coordCounter("coord.units.completed").add();
        conn.state = ConnState::kIdle;
        return true;
    }
    default:
        return false;
    }
}

bool
SweepCoordinator::serve(double timeout_seconds, std::string *error)
{
    if (listener_.fd() < 0) {
        setError(error, "serve before listen");
        return false;
    }
    ScopedSpan span("coord.serve", "net");
    span.arg("units", static_cast<std::uint64_t>(units_.size()));

    const bool bounded = timeout_seconds > 0.0;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(
                bounded ? timeout_seconds : 0.0));

    while (!allDone()) {
        if (bounded &&
            std::chrono::steady_clock::now() >= deadline) {
            setError(error,
                     "sweep service timed out with " +
                         std::to_string(units_.size() - completed_) +
                         " unit(s) unfinished");
            for (std::size_t i = 0; i < conns_.size(); ++i)
                dropConn(i);
            return false;
        }

        std::vector<pollfd> fds;
        fds.push_back({listener_.fd(), POLLIN, 0});
        // Map pollfd index -> conns_ index (closed conns skipped).
        std::vector<std::size_t> conn_of;
        for (std::size_t i = 0; i < conns_.size(); ++i) {
            if (conns_[i].io->closed())
                continue;
            fds.push_back({conns_[i].io->fd(), POLLIN, 0});
            conn_of.push_back(i);
        }
        int ready = ::poll(fds.data(),
                           static_cast<nfds_t>(fds.size()), 100);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            setError(error, "poll failed");
            return false;
        }
        if (ready == 0)
            continue;

        if (fds[0].revents & POLLIN) {
            int fd = listener_.accept();
            if (fd >= 0) {
                Conn conn;
                conn.io = std::make_unique<FramedConn>(fd);
                conns_.push_back(std::move(conn));
                workersSeen_++;
                coordCounter("coord.workers.connected").add();
            }
        }

        for (std::size_t k = 0; k < conn_of.size(); ++k) {
            if (!(fds[k + 1].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            std::size_t ci = conn_of[k];
            if (conns_[ci].io->closed())
                continue; // closed while handling an earlier event
            if (!conns_[ci].io->readAvailable()) {
                dropConn(ci);
                continue;
            }
            Frame frame;
            bool drop = false;
            while (!drop && conns_[ci].io->nextFrame(frame))
                drop = !handleFrame(ci, frame);
            if (drop || conns_[ci].io->frameError())
                dropConn(ci);
        }

        // Garbage-collect closed connections so long sweeps with
        // worker churn don't grow the table unboundedly.
        std::size_t alive = 0;
        for (std::size_t i = 0; i < conns_.size(); ++i)
            if (!conns_[i].io->closed())
                conns_[alive++] = std::move(conns_[i]);
        conns_.resize(alive);
    }

    for (Conn &conn : conns_)
        finishConn(conn);
    conns_.clear();
    listener_.close();
    return true;
}

} // namespace stems
