#include "net/frame.hh"

#include <cstring>

#include "common/crc32.hh"

namespace stems {

namespace {

std::uint32_t
loadU32(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

std::uint64_t
loadU64(const std::uint8_t *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

void
storeU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    const auto *p = reinterpret_cast<const std::uint8_t *>(&v);
    out.insert(out.end(), p, p + sizeof(v));
}

void
storeU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    const auto *p = reinterpret_cast<const std::uint8_t *>(&v);
    out.insert(out.end(), p, p + sizeof(v));
}

/** CRC over type + length + payload (everything but the magic). */
std::uint32_t
frameCrc(std::uint32_t type, std::uint64_t length,
         const std::uint8_t *payload)
{
    std::uint32_t crc = crc32Update(0, &type, sizeof(type));
    crc = crc32Update(crc, &length, sizeof(length));
    return crc32Update(crc, payload,
                       static_cast<std::size_t>(length));
}

} // namespace

std::vector<std::uint8_t>
encodeFrame(std::uint32_t type,
            const std::vector<std::uint8_t> &payload)
{
    std::vector<std::uint8_t> out;
    out.reserve(kFrameHeaderBytes + payload.size());
    storeU32(out, kFrameMagic);
    storeU32(out, type);
    storeU64(out, payload.size());
    storeU32(out, frameCrc(type, payload.size(), payload.data()));
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

void
FrameParser::reject(const char *reason)
{
    error_ = true;
    errorText_ = reason;
    // Drop everything buffered: once framing is lost nothing after
    // this point can be trusted, and holding bytes would let a bad
    // peer grow the buffer behind a latched error.
    buf_.clear();
    buf_.shrink_to_fit();
    off_ = 0;
}

void
FrameParser::feed(const void *data, std::size_t len)
{
    if (error_)
        return;
    const auto *p = static_cast<const std::uint8_t *>(data);
    buf_.insert(buf_.end(), p, p + len);
    // Validate the header as soon as it is complete — before any of
    // the payload has necessarily arrived — so a corrupt magic or an
    // oversized length is rejected without waiting for (or
    // buffering toward) a payload that will never be accepted.
    if (buf_.size() - off_ >= kFrameHeaderBytes) {
        const std::uint8_t *h = buf_.data() + off_;
        if (loadU32(h) != kFrameMagic) {
            reject("bad frame magic");
            return;
        }
        if (loadU64(h + 8) > kMaxFramePayload)
            reject("oversized frame length");
    }
}

bool
FrameParser::next(Frame &out)
{
    if (error_ || buf_.size() - off_ < kFrameHeaderBytes)
        return false;
    const std::uint8_t *h = buf_.data() + off_;
    // feed() validated magic and length for the frame at the front;
    // frames behind it are validated when they reach the front.
    const std::uint64_t len = loadU64(h + 8);
    if (buf_.size() - off_ <
        kFrameHeaderBytes + static_cast<std::size_t>(len))
        return false;
    const std::uint32_t want_crc = loadU32(h + 16);
    const std::uint8_t *payload = h + kFrameHeaderBytes;
    if (frameCrc(loadU32(h + 4), len, payload) != want_crc) {
        reject("frame checksum mismatch");
        return false;
    }
    out.type = loadU32(h + 4);
    out.payload.assign(payload,
                       payload + static_cast<std::size_t>(len));
    off_ += kFrameHeaderBytes + static_cast<std::size_t>(len);
    if (off_ == buf_.size()) {
        buf_.clear();
        off_ = 0;
    } else if (off_ >= (64u << 10)) {
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<std::ptrdiff_t>(off_));
        off_ = 0;
    }
    // Re-validate the header now at the front (feed() only checks
    // the frame that was at the front when the bytes arrived).
    if (buf_.size() - off_ >= kFrameHeaderBytes) {
        const std::uint8_t *nh = buf_.data() + off_;
        if (loadU32(nh) != kFrameMagic)
            reject("bad frame magic");
        else if (loadU64(nh + 8) > kMaxFramePayload)
            reject("oversized frame length");
    }
    return true;
}

} // namespace stems
