/**
 * @file
 * Minimal POSIX TCP plumbing for the sweep service: a listener, a
 * connect-with-retry client helper, and FramedConn — one connection
 * speaking the net/frame.hh wire format.
 *
 * Scope is deliberately small: IPv4, blocking sockets (the
 * coordinator multiplexes with poll() and reads only sockets poll
 * reported readable; frames are small enough that blocking writes
 * cannot deadlock the pull-model protocol), loopback-oriented
 * defaults. Every byte in or out is counted into the process
 * metrics registry (net.bytes.*, net.frames.*), so stems_report
 * metrics shows the wire traffic of a distributed sweep alongside
 * the store and driver counters.
 */

#ifndef STEMS_NET_SOCKET_HH
#define STEMS_NET_SOCKET_HH

#include <cstdint>
#include <string>

#include "net/frame.hh"

namespace stems {

/**
 * Listening TCP socket. Binds on construction-time open(); port 0
 * picks an ephemeral port, readable afterwards through port() (how
 * the loopback tests wire workers to an in-process coordinator).
 */
class TcpListener
{
  public:
    TcpListener() = default;
    ~TcpListener();

    TcpListener(const TcpListener &) = delete;
    TcpListener &operator=(const TcpListener &) = delete;

    /** Bind + listen on 0.0.0.0:`port`. */
    bool open(std::uint16_t port, std::string *error = nullptr);

    /** Accept one pending connection; -1 when none/failed. */
    int accept();

    /** The bound port (resolves port-0 binds). */
    std::uint16_t port() const { return port_; }

    int fd() const { return fd_; }

    void close();

  private:
    int fd_ = -1;
    std::uint16_t port_ = 0;
};

/**
 * Connect to host:port, retrying until `timeout_seconds` elapses
 * (the worker may start before the coordinator is listening).
 * @return the connected fd, or -1 with *error set.
 */
int connectWithRetry(const std::string &host, std::uint16_t port,
                     double timeout_seconds,
                     std::string *error = nullptr);

/**
 * One framed connection: owns the fd, sends whole frames, and
 * decodes received bytes through a FrameParser. Receive side is
 * split so both uses fit: the coordinator calls readAvailable()
 * once per poll() readiness then drains nextFrame(); the worker
 * blocks in recvFrame().
 */
class FramedConn
{
  public:
    explicit FramedConn(int fd) : fd_(fd) {}
    ~FramedConn() { close(); }

    FramedConn(const FramedConn &) = delete;
    FramedConn &operator=(const FramedConn &) = delete;

    /** Send one whole frame (blocking). */
    bool sendFrame(std::uint32_t type,
                   const std::vector<std::uint8_t> &payload,
                   std::string *error = nullptr);

    /**
     * One recv() into the parser. @return false on EOF, socket
     * error, or malformed framing (frameError() distinguishes).
     */
    bool readAvailable(std::string *error = nullptr);

    /** Drain the next complete frame, if any. */
    bool nextFrame(Frame &out);

    /** Block until a whole frame arrives (worker side). */
    bool recvFrame(Frame &out, std::string *error = nullptr);

    /** True once the peer broke the framing protocol. */
    bool frameError() const { return parser_.error(); }

    const std::string &frameErrorText() const
    {
        return parser_.errorText();
    }

    int fd() const { return fd_; }

    bool closed() const { return fd_ < 0; }

    void close();

  private:
    int fd_;
    FrameParser parser_;
};

} // namespace stems

#endif // STEMS_NET_SOCKET_HH
