/**
 * @file
 * Length-prefixed, CRC-framed wire format for the sweep service.
 *
 * Every message on a coordinator/worker connection is one frame:
 *
 *   offset  0  u32 magic   "SNET"
 *   offset  4  u32 type    protocol message type (net/protocol.hh)
 *   offset  8  u64 length  payload bytes that follow the header
 *   offset 16  u32 crc     CRC-32 (common/crc32.hh) of type,
 *                          length, and payload — a corrupted type
 *                          or length is a rejected frame, not a
 *                          different message
 *   offset 20  payload
 *
 * All fields little-endian, as everywhere else in the codebase. The
 * parser follows the v2 trace codec's "reject, never mis-decode"
 * discipline: the header is fully validated — magic, then the length
 * against kMaxFramePayload — before a single payload byte is
 * buffered for the frame, so a corrupt or hostile length field can
 * never drive an allocation; a CRC mismatch rejects the frame. Any
 * rejection latches the parser into an error state (the connection
 * is unrecoverable once framing is lost).
 */

#ifndef STEMS_NET_FRAME_HH
#define STEMS_NET_FRAME_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/state_codec.hh"

namespace stems {

/** Frame magic ("SNET" little-endian). */
inline constexpr std::uint32_t kFrameMagic =
    stateTag('S', 'N', 'E', 'T');

/** Bytes before the payload: magic + type + length + CRC. */
inline constexpr std::size_t kFrameHeaderBytes = 20;

/** Hard cap on one frame's payload. The largest real payload is a
 *  plan JSON (a few KiB); 16 MiB leaves headroom without letting a
 *  corrupt length field look plausible. */
inline constexpr std::size_t kMaxFramePayload = 16u << 20;

/** One decoded frame. */
struct Frame
{
    std::uint32_t type = 0;
    std::vector<std::uint8_t> payload;
};

/** Serialize one frame (header + payload), ready to send. */
std::vector<std::uint8_t> encodeFrame(
    std::uint32_t type, const std::vector<std::uint8_t> &payload);

/**
 * Incremental frame decoder. feed() raw received bytes, then drain
 * complete frames with next(). After any malformed input (bad
 * magic, oversized length, CRC mismatch) error() latches true,
 * next() always returns false and further feed()s are ignored — the
 * caller must drop the connection.
 */
class FrameParser
{
  public:
    void feed(const void *data, std::size_t len);

    /** Extract the next complete frame. @return false when no
     *  complete frame is buffered (or the parser is in error). */
    bool next(Frame &out);

    bool error() const { return error_; }

    /** Human-readable reason once error() is true. */
    const std::string &errorText() const { return errorText_; }

    /** Bytes currently buffered (tests assert boundedness). */
    std::size_t bufferedBytes() const { return buf_.size() - off_; }

  private:
    void reject(const char *reason);

    std::vector<std::uint8_t> buf_;
    std::size_t off_ = 0;
    bool error_ = false;
    std::string errorText_;
};

} // namespace stems

#endif // STEMS_NET_FRAME_HH
