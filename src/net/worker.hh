/**
 * @file
 * Sweep worker: connects to a coordinator (net/coord.hh), receives
 * the declarative SweepPlan, and executes work units — whole
 * workload rows, (workload, engine-column) cells, or checkpoint
 * segments of a cell (net/units.hh) — through the exact same
 * ExperimentDriver lane path a local sweep uses, persisting
 * baselines, checkpoints and per-engine results into the shared
 * content-addressed store. The wire never carries results; the
 * store is the data plane.
 *
 * The worker re-derives the plan digest from the JSON it parsed and
 * refuses a coordinator whose digest disagrees (a mismatch means
 * the canonical-JSON contract broke somewhere — running anyway
 * would poison the store under wrong keys).
 *
 * Reconnect-resume: when a connection is lost while a unit is held,
 * the worker reconnects (bounded retries), repeats the handshake
 * under its original session id, and sends kResume to reclaim the
 * held unit; execution then restarts from the newest checkpoint the
 * store already holds for it, not from record 0. Trace prefetch:
 * each unit carries a hint naming the next unit's workload, which a
 * background thread materializes into the store while the current
 * unit simulates.
 */

#ifndef STEMS_NET_WORKER_HH
#define STEMS_NET_WORKER_HH

#include <cstdint>
#include <string>

namespace stems {

struct WorkerOptions
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /// Shared store directory (the data plane). Must exist.
    std::string storeDir;
    /// How long to retry the initial connect (the worker may start
    /// before the coordinator listens).
    double connectTimeoutSeconds = 10.0;
    /// Reconnect attempts after a lost connection before giving up.
    unsigned maxReconnects = 3;
    /// Materialize prefetch-hint traces in the background.
    bool prefetchTraces = true;
    /// Test hook: after completing this many units, vanish without
    /// a goodbye (simulates kill -9) the moment the next unit
    /// arrives. 0 = never abandon.
    unsigned abandonAfterUnits = 0;
    /// Test/CI hook: after completing this many units, drop the
    /// connection the moment the next unit arrives — keeping that
    /// unit — optionally stall, then reconnect and kResume it.
    /// Fires once. 0 = never drop.
    unsigned dropAfterUnits = 0;
    /// Stall before reconnecting after the dropAfterUnits hook
    /// (simulates a network outage, seconds).
    double reconnectStallSeconds = 0.0;
    /// Test hook: send every kUnitDone twice (the coordinator must
    /// treat the duplicate as idempotent).
    bool duplicateUnitDone = false;
};

struct WorkerReport
{
    std::uint64_t unitsCompleted = 0;
    std::uint64_t unitsResumed = 0;
    std::uint64_t reconnects = 0;
    bool abandoned = false;
};

/**
 * Run the worker loop until the coordinator says kMsgBye (or the
 * abandon hook fires). @return false with *error set on connection,
 * protocol, store, or plan failures. One asymmetry: a *re*-connect
 * that goes unanswered is a graceful (true) exit, not a failure —
 * the coordinator stops listening the moment every unit is done, so
 * a worker whose connection died near the end of a sweep may simply
 * have outlived it; everything it completed is already committed to
 * the shared store.
 */
bool runWorker(const WorkerOptions &options,
               WorkerReport *report = nullptr,
               std::string *error = nullptr);

} // namespace stems

#endif // STEMS_NET_WORKER_HH
