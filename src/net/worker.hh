/**
 * @file
 * Sweep worker: connects to a coordinator (net/coord.hh), receives
 * the declarative SweepPlan, and executes work units — one workload
 * row each — through the exact same ExperimentDriver lane path a
 * local sweep uses, persisting baselines and per-engine results
 * into the shared content-addressed store. The wire never carries
 * results; the store is the data plane.
 *
 * The worker re-derives the plan digest from the JSON it parsed and
 * refuses a coordinator whose digest disagrees (a mismatch means
 * the canonical-JSON contract broke somewhere — running anyway
 * would poison the store under wrong keys).
 */

#ifndef STEMS_NET_WORKER_HH
#define STEMS_NET_WORKER_HH

#include <cstdint>
#include <string>

namespace stems {

struct WorkerOptions
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /// Shared store directory (the data plane). Must exist.
    std::string storeDir;
    /// How long to retry the initial connect (the worker may start
    /// before the coordinator listens).
    double connectTimeoutSeconds = 10.0;
    /// Test hook: after completing this many units, vanish without
    /// a goodbye (simulates kill -9) the moment the next unit
    /// arrives. 0 = never abandon.
    unsigned abandonAfterUnits = 0;
};

struct WorkerReport
{
    std::uint64_t unitsCompleted = 0;
    bool abandoned = false;
};

/**
 * Run the worker loop until the coordinator says kMsgBye (or the
 * abandon hook fires). @return false with *error set on connection,
 * protocol, store, or plan failures.
 */
bool runWorker(const WorkerOptions &options,
               WorkerReport *report = nullptr,
               std::string *error = nullptr);

} // namespace stems

#endif // STEMS_NET_WORKER_HH
