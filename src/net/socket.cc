#include "net/socket.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include "obs/metrics.hh"

namespace stems {

namespace {

void
setError(std::string *error, const std::string &text)
{
    if (error)
        *error = text;
}

std::string
errnoText(const char *what)
{
    return std::string(what) + ": " + std::strerror(errno);
}

Counter &
bytesSent()
{
    static Counter &c =
        MetricsRegistry::instance().counter("net.bytes.sent");
    return c;
}

Counter &
bytesReceived()
{
    static Counter &c =
        MetricsRegistry::instance().counter("net.bytes.received");
    return c;
}

} // namespace

TcpListener::~TcpListener() { close(); }

bool
TcpListener::open(std::uint16_t port, std::string *error)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        setError(error, errnoText("socket"));
        return false;
    }
    int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(port);
    if (::bind(fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        setError(error, errnoText("bind"));
        close();
        return false;
    }
    if (::listen(fd_, 16) != 0) {
        setError(error, errnoText("listen"));
        close();
        return false;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) == 0)
        port_ = ntohs(addr.sin_port);
    else
        port_ = port;
    return true;
}

int
TcpListener::accept()
{
    if (fd_ < 0)
        return -1;
    int conn = ::accept(fd_, nullptr, nullptr);
    if (conn >= 0) {
        int one = 1;
        ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
    }
    return conn;
}

void
TcpListener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

int
connectWithRetry(const std::string &host, std::uint16_t port,
                 double timeout_seconds, std::string *error)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        setError(error, "bad host address '" + host + "'");
        return -1;
    }
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout_seconds));
    std::string last = "connect never attempted";
    for (;;) {
        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) {
            setError(error, errnoText("socket"));
            return -1;
        }
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0) {
            int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
            return fd;
        }
        last = errnoText("connect");
        ::close(fd);
        if (std::chrono::steady_clock::now() >= deadline)
            break;
        // The coordinator may simply not be listening yet.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(50));
    }
    setError(error, last + " (retried " +
                        std::to_string(timeout_seconds) + "s)");
    return -1;
}

bool
FramedConn::sendFrame(std::uint32_t type,
                      const std::vector<std::uint8_t> &payload,
                      std::string *error)
{
    if (fd_ < 0) {
        setError(error, "send on closed connection");
        return false;
    }
    const std::vector<std::uint8_t> wire =
        encodeFrame(type, payload);
    std::size_t sent = 0;
    while (sent < wire.size()) {
        ssize_t n = ::send(fd_, wire.data() + sent,
                           wire.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            setError(error, errnoText("send"));
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    bytesSent().add(wire.size());
    MetricsRegistry::instance().counter("net.frames.sent").add();
    return true;
}

bool
FramedConn::readAvailable(std::string *error)
{
    if (fd_ < 0) {
        setError(error, "read on closed connection");
        return false;
    }
    std::uint8_t chunk[64 * 1024];
    ssize_t n;
    do {
        n = ::recv(fd_, chunk, sizeof(chunk), 0);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
        setError(error, errnoText("recv"));
        return false;
    }
    if (n == 0) {
        setError(error, "connection closed by peer");
        return false;
    }
    bytesReceived().add(static_cast<std::uint64_t>(n));
    parser_.feed(chunk, static_cast<std::size_t>(n));
    if (parser_.error()) {
        MetricsRegistry::instance()
            .counter("net.frames.rejected")
            .add();
        setError(error, parser_.errorText());
        return false;
    }
    return true;
}

bool
FramedConn::nextFrame(Frame &out)
{
    if (!parser_.next(out))
        return false;
    MetricsRegistry::instance()
        .counter("net.frames.received")
        .add();
    return true;
}

bool
FramedConn::recvFrame(Frame &out, std::string *error)
{
    for (;;) {
        if (nextFrame(out))
            return true;
        if (parser_.error()) {
            setError(error, parser_.errorText());
            return false;
        }
        if (!readAvailable(error))
            return false;
    }
}

void
FramedConn::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

} // namespace stems
