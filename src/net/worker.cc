#include "net/worker.hh"

#include <filesystem>
#include <memory>

#include "net/protocol.hh"
#include "net/socket.hh"
#include "obs/metrics.hh"
#include "obs/trace_span.hh"
#include "sim/driver.hh"
#include "store/keys.hh"
#include "store/trace_store.hh"

namespace stems {

namespace {

void
setError(std::string *error, const std::string &text)
{
    if (error)
        *error = text;
}

} // namespace

bool
runWorker(const WorkerOptions &options, WorkerReport *report,
          std::string *error)
{
    WorkerReport local;
    WorkerReport &out = report ? *report : local;
    out = WorkerReport{};

    // The store directory must already exist — it is the shared
    // data plane the coordinator merges from. Creating a fresh one
    // here (TraceStore would) means the worker writes results where
    // no merge will ever look; fail before touching the network.
    std::error_code ec;
    if (!std::filesystem::is_directory(options.storeDir, ec)) {
        setError(error, "no trace store at '" + options.storeDir +
                            "'");
        return false;
    }
    auto store = std::make_shared<TraceStore>(options.storeDir);
    if (!store->usable()) {
        setError(error, "cannot open trace store '" +
                            options.storeDir + "'");
        return false;
    }

    int fd = connectWithRetry(options.host, options.port,
                              options.connectTimeoutSeconds, error);
    if (fd < 0)
        return false;
    FramedConn conn(fd);

    HelloMsg hello;
    if (!conn.sendFrame(kMsgHello, encodeHello(hello), error))
        return false;

    Frame frame;
    if (!conn.recvFrame(frame, error))
        return false;
    PlanMsg plan_msg;
    if (frame.type != kMsgPlan ||
        !decodePlanMsg(frame.payload, plan_msg)) {
        setError(error, "expected plan, got frame type " +
                            std::to_string(frame.type));
        return false;
    }
    SweepPlan plan;
    std::string parse_error;
    if (!parseSweepPlanJson(plan_msg.planJson, plan,
                            &parse_error)) {
        setError(error, "bad plan: " + parse_error);
        return false;
    }
    // Round-tripping the parsed plan must land on the digest the
    // coordinator advertised; anything else means we would execute
    // (and key the store for) a different sweep than it merges.
    if (sweepPlanDigest(plan) != plan_msg.planDigest) {
        setError(error, "plan digest mismatch");
        return false;
    }
    PlanAckMsg ack;
    ack.planDigest = plan_msg.planDigest;
    if (!conn.sendFrame(kMsgPlanAck, encodePlanAck(ack), error))
        return false;

    // One driver for the whole session: policy from the plan, the
    // shared store attached, baseline cache warm across units.
    ExperimentDriver driver;
    driver.applyPlan(plan);
    driver.setStore(store);

    for (;;) {
        if (!conn.sendFrame(kMsgRequestUnit, {}, error))
            return false;
        if (!conn.recvFrame(frame, error))
            return false;
        if (frame.type == kMsgBye)
            return true;
        UnitMsg unit;
        if (frame.type != kMsgUnit ||
            !decodeUnit(frame.payload, unit)) {
            setError(error, "expected unit, got frame type " +
                                std::to_string(frame.type));
            return false;
        }
        if (options.abandonAfterUnits > 0 &&
            out.unitsCompleted >= options.abandonAfterUnits) {
            // Vanish mid-unit: the coordinator must requeue it.
            conn.close();
            out.abandoned = true;
            return true;
        }
        {
            ScopedSpan span("worker.unit", "net");
            span.arg("workload", unit.workload);
            span.arg("unit", unit.unitIndex);
            SweepPlan unit_plan = plan;
            unit_plan.workloads = {unit.workload};
            // Results go to the store under the same keys a local
            // sweep would use; the return value is irrelevant here.
            driver.run(unit_plan);
        }
        out.unitsCompleted++;
        MetricsRegistry::instance()
            .counter("worker.units.completed")
            .add();
        UnitDoneMsg done;
        done.unitIndex = unit.unitIndex;
        if (!conn.sendFrame(kMsgUnitDone, encodeUnitDone(done),
                            error))
            return false;
    }
}

} // namespace stems
