#include "net/worker.hh"

#include <chrono>
#include <filesystem>
#include <memory>
#include <optional>
#include <thread>

#include "net/protocol.hh"
#include "net/socket.hh"
#include "net/units.hh"
#include "obs/metrics.hh"
#include "obs/trace_span.hh"
#include "sim/driver.hh"
#include "store/keys.hh"
#include "store/trace_store.hh"
#include "workloads/registry.hh"

namespace stems {

namespace {

void
setError(std::string *error, const std::string &text)
{
    if (error)
        *error = text;
}

/** One background trace-prefetch slot: at most one hint in flight;
 *  joined before the next launch and on scope exit (putTrace is
 *  atomic, so a prefetch racing a foreground materialization of the
 *  same trace is wasted work, never corruption). */
class TracePrefetcher
{
  public:
    explicit TracePrefetcher(std::shared_ptr<TraceStore> store)
        : store_(std::move(store))
    {
    }

    ~TracePrefetcher() { join(); }

    void launch(const std::string &workload, std::uint64_t records,
                std::uint64_t seed)
    {
        join();
        TraceKey key{workload, records, seed};
        if (store_->findTrace(key))
            return; // already materialized
        std::shared_ptr<TraceStore> store = store_;
        thread_ = std::thread([store, key] {
            std::unique_ptr<Workload> w =
                WorkloadRegistry::instance().make(key.workload);
            if (!w)
                return;
            ScopedSpan span("worker.prefetch", "net");
            if (span.active())
                span.arg("workload", key.workload);
            Trace trace = w->generate(
                key.seed, static_cast<std::size_t>(key.records));
            if (store->putTrace(key, trace))
                MetricsRegistry::instance()
                    .counter("worker.trace.prefetched")
                    .add();
        });
    }

    void join()
    {
        if (thread_.joinable())
            thread_.join();
    }

  private:
    std::shared_ptr<TraceStore> store_;
    std::thread thread_;
};

WorkUnit
toWorkUnit(const UnitMsg &msg)
{
    WorkUnit work;
    work.kind = msg.kind;
    work.workload = msg.workload;
    work.column = msg.column;
    work.segBegin = msg.segBegin;
    work.segEnd = msg.segEnd;
    work.finalSegment = msg.finalSegment;
    return work;
}

} // namespace

bool
runWorker(const WorkerOptions &options, WorkerReport *report,
          std::string *error)
{
    WorkerReport local;
    WorkerReport &out = report ? *report : local;
    out = WorkerReport{};

    // The store directory must already exist — it is the shared
    // data plane the coordinator merges from. Creating a fresh one
    // here (TraceStore would) means the worker writes results where
    // no merge will ever look; fail before touching the network.
    std::error_code ec;
    if (!std::filesystem::is_directory(options.storeDir, ec)) {
        setError(error, "no trace store at '" + options.storeDir +
                            "'");
        return false;
    }
    auto store = std::make_shared<TraceStore>(options.storeDir);
    if (!store->usable()) {
        setError(error, "cannot open trace store '" +
                            options.storeDir + "'");
        return false;
    }

    // Session state carried across reconnects.
    ExperimentDriver driver;
    std::vector<EngineSpec> engine_specs;
    SweepPlan plan;
    bool have_plan = false;
    std::uint64_t plan_digest = 0;
    std::uint64_t session_id = 0;
    std::optional<UnitMsg> held; // unit kept across a connection drop
    bool drop_fired = false;
    unsigned reconnects_left = options.maxReconnects;
    TracePrefetcher prefetcher(store);

    /** Execute one unit through the driver; every store write lands
     *  under exactly the keys a single-process sweep would use. The
     *  return value of the driver calls is irrelevant here.
     *  @return false on a protocol-level violation (*error set). */
    auto execute = [&](const UnitMsg &unit) -> bool {
        ScopedSpan span("worker.unit", "net");
        if (span.active()) {
            span.arg("workload", unit.workload);
            span.arg("unit", unit.unitIndex);
        }
        if (unit.column >=
            static_cast<std::int32_t>(plan.engines.size())) {
            setError(error, "unit engine column out of range");
            return false;
        }
        switch (unit.kind) {
        case UnitKind::kWorkload: {
            SweepPlan unit_plan = plan;
            unit_plan.workloads = {unit.workload};
            driver.run(unit_plan);
            break;
        }
        case UnitKind::kCell: {
            std::vector<EngineSpec> specs;
            if (unit.column >= 0)
                specs.push_back(engine_specs[static_cast<std::size_t>(
                    unit.column)]);
            driver.run({unit.workload}, specs);
            break;
        }
        case UnitKind::kSegment: {
            const EngineSpec *engine =
                unit.column >= 0
                    ? &engine_specs[static_cast<std::size_t>(
                          unit.column)]
                    : nullptr;
            if (unit.finalSegment) {
                // The cell's last slice: run the cell through the
                // normal path — the driver resumes from the newest
                // trusted checkpoint (the predecessor unit's end
                // state) and computes and persists the results.
                std::vector<EngineSpec> specs;
                if (engine)
                    specs.push_back(*engine);
                driver.run({unit.workload}, specs);
            } else {
                std::string seg_error;
                if (!driver.runCellSegment(
                        unit.workload, engine,
                        static_cast<std::size_t>(unit.segBegin),
                        static_cast<std::size_t>(unit.segEnd),
                        &seg_error)) {
                    setError(error, "segment unit failed: " +
                                        seg_error);
                    return false;
                }
            }
            break;
        }
        }
        out.unitsCompleted++;
        MetricsRegistry::instance()
            .counter("worker.units.completed")
            .add();
        return true;
    };

    // Per-connection outcomes: finished (graceful kBye), failed
    // (protocol violation or unusable unit — unrecoverable), or
    // lost (the connection died; reconnect if budget remains).
    enum class Outcome
    {
        kFinished,
        kFailed,
        kLost,
    };

    auto runConnection = [&](int fd) -> Outcome {
        FramedConn conn(fd);

        HelloMsg hello;
        hello.sessionId = session_id;
        if (!conn.sendFrame(kMsgHello, encodeHello(hello), error))
            return have_plan ? Outcome::kLost : Outcome::kFailed;

        Frame frame;
        if (!conn.recvFrame(frame, error))
            return have_plan ? Outcome::kLost : Outcome::kFailed;
        if (frame.type == kMsgBye) {
            // The coordinator refused the session outright —
            // either the sweep already completed (a late joiner's
            // clean exit) or the protocol versions disagree.
            if (have_plan)
                return Outcome::kFinished;
            setError(error,
                     "coordinator refused the connection (version "
                     "mismatch or sweep already finished)");
            return Outcome::kFailed;
        }
        PlanMsg plan_msg;
        if (frame.type != kMsgPlan ||
            !decodePlanMsg(frame.payload, plan_msg)) {
            setError(error, "expected plan, got frame type " +
                                std::to_string(frame.type));
            return Outcome::kFailed;
        }
        if (!have_plan) {
            std::string parse_error;
            if (!parseSweepPlanJson(plan_msg.planJson, plan,
                                    &parse_error)) {
                setError(error, "bad plan: " + parse_error);
                return Outcome::kFailed;
            }
            // Round-tripping the parsed plan must land on the
            // digest the coordinator advertised; anything else
            // means we would execute (and key the store for) a
            // different sweep than it merges.
            if (sweepPlanDigest(plan) != plan_msg.planDigest) {
                setError(error, "plan digest mismatch");
                return Outcome::kFailed;
            }
            plan_digest = plan_msg.planDigest;
            engine_specs = planEngineSpecs(plan);
            // One driver for the whole session: policy from the
            // plan, the shared store attached, baseline cache warm
            // across units.
            driver.applyPlan(plan);
            driver.setStore(store);
            have_plan = true;
        } else if (plan_msg.planDigest != plan_digest) {
            setError(error,
                     "coordinator changed plans across reconnect");
            return Outcome::kFailed;
        }
        session_id = plan_msg.sessionId;

        PlanAckMsg ack;
        ack.planDigest = plan_msg.planDigest;
        if (!conn.sendFrame(kMsgPlanAck, encodePlanAck(ack), error))
            return Outcome::kLost;

        // Reclaim a unit held across the previous connection's
        // loss: resume it from the last store-committed checkpoint
        // instead of letting the grace window expire into a
        // from-zero requeue.
        if (held) {
            ResumeMsg resume;
            resume.sessionId = session_id;
            resume.unitIndex = held->unitIndex;
            resume.lastCheckpointIndex = unitLastCheckpointIndex(
                plan, toWorkUnit(*held), *store);
            if (!conn.sendFrame(kMsgResume, encodeResume(resume),
                                error) ||
                !conn.recvFrame(frame, error))
                return Outcome::kLost;
            ResumeAckMsg verdict;
            if (frame.type != kMsgResumeAck ||
                !decodeResumeAck(frame.payload, verdict)) {
                setError(error,
                         "expected resume ack, got frame type " +
                             std::to_string(frame.type));
                return Outcome::kFailed;
            }
            if (verdict.accepted) {
                UnitMsg unit = *held;
                held.reset();
                out.unitsResumed++;
                if (!execute(unit))
                    return Outcome::kFailed;
                UnitDoneMsg done;
                done.unitIndex = unit.unitIndex;
                if (!conn.sendFrame(kMsgUnitDone,
                                    encodeUnitDone(done), error))
                    return Outcome::kLost;
            } else {
                // Requeued or completed while we were away; the
                // coordinator will hand out whatever is pending.
                held.reset();
            }
        }

        for (;;) {
            if (!conn.sendFrame(kMsgRequestUnit, {}, error))
                return Outcome::kLost;
            if (!conn.recvFrame(frame, error))
                return Outcome::kLost;
            if (frame.type == kMsgBye)
                return Outcome::kFinished;
            UnitMsg unit;
            if (frame.type != kMsgUnit ||
                !decodeUnit(frame.payload, unit)) {
                setError(error, "expected unit, got frame type " +
                                    std::to_string(frame.type));
                return Outcome::kFailed;
            }
            if (options.abandonAfterUnits > 0 &&
                out.unitsCompleted >= options.abandonAfterUnits) {
                // Vanish mid-unit: the coordinator must requeue it
                // (after the resume grace — we are not coming
                // back).
                conn.close();
                out.abandoned = true;
                return Outcome::kFinished;
            }
            if (options.dropAfterUnits > 0 && !drop_fired &&
                out.unitsCompleted >= options.dropAfterUnits) {
                // Lose the connection but keep the unit: reconnect
                // and reclaim it via kResume.
                drop_fired = true;
                conn.close();
                held = unit;
                if (options.reconnectStallSeconds > 0.0)
                    std::this_thread::sleep_for(
                        std::chrono::duration<double>(
                            options.reconnectStallSeconds));
                return Outcome::kLost;
            }
            if (options.prefetchTraces &&
                !unit.prefetchWorkload.empty() &&
                unit.prefetchWorkload != unit.workload)
                prefetcher.launch(unit.prefetchWorkload,
                                  plan.records, plan.seed);
            if (!execute(unit))
                return Outcome::kFailed;
            UnitDoneMsg done;
            done.unitIndex = unit.unitIndex;
            if (!conn.sendFrame(kMsgUnitDone, encodeUnitDone(done),
                                error))
                return Outcome::kLost;
            if (options.duplicateUnitDone &&
                !conn.sendFrame(kMsgUnitDone, encodeUnitDone(done),
                                error))
                return Outcome::kLost;
        }
    };

    for (;;) { // one iteration per connection
        int fd =
            connectWithRetry(options.host, options.port,
                             options.connectTimeoutSeconds, error);
        if (fd < 0) {
            if (have_plan) {
                // A *re*-connect went unanswered. The likeliest
                // cause is a sweep that finished while we were
                // away (the coordinator stops listening once every
                // unit is done); every unit we completed is
                // already committed to the shared store either
                // way, so exit gracefully rather than fail a sweep
                // we can no longer observe.
                if (error)
                    error->clear();
                return true;
            }
            return false;
        }

        switch (runConnection(fd)) {
        case Outcome::kFinished:
            return true;
        case Outcome::kFailed:
            return false;
        case Outcome::kLost:
            break;
        }

        if (reconnects_left == 0) {
            if (error && error->empty())
                setError(error, "connection lost");
            return false;
        }
        reconnects_left--;
        out.reconnects++;
        if (error)
            error->clear();
    }
}

} // namespace stems
