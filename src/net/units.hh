/**
 * @file
 * Distributed work units: the decomposition of a SweepPlan into the
 * units the sweep service schedules (net/coord.hh) and executes
 * (net/worker.hh), at the granularity the plan asks for:
 *
 *  - kWorkload: one unit = one workload row (every cell of it).
 *  - kCell:     one unit = one (workload, engine-column) cell. The
 *               baseline column (column == -1) covers the
 *               no-prefetch lane and, under timing, the stride
 *               reference lane.
 *  - kSegment:  one unit = one checkpoint-delimited slice
 *               [segBegin, segEnd) of a cell, cut on the shared
 *               boundary schedule (sim/checkpoint.hh
 *               checkpointBounds) so unit endpoints land exactly on
 *               the indices the driver checkpoints at.
 *
 * Segment decomposition runs a *seeding pass*: the decomposer
 * materializes each workload's trace into the store (generators may
 * overshoot the requested record count, so the true trace length —
 * and with it the boundary schedule — is only known from the trace
 * itself), and probes the store for trusted boundary checkpoints.
 * An interior segment depends on its predecessor unless a stored
 * checkpoint at its start index is *trusted* — present under
 * exactly the on-key state digest (trace-prefix content + warmup
 * boundary, store/keys.hh) for every lane of the cell. Untrusted or
 * stale entries never unblock a segment: a cross-seed store costs
 * scheduling freedom (time), never correctness.
 *
 * Unit order is deterministic (workload-major, baseline column
 * first, segments ascending), and the coordinator assigns
 * lowest-pending-first, so the numbering is stable across runs of
 * the same plan against the same store state.
 */

#ifndef STEMS_NET_UNITS_HH
#define STEMS_NET_UNITS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/sweep_plan.hh"

namespace stems {

class TraceStore;

/** Work-unit kind; the wire encoding of UnitGranularity per unit
 *  (a plan's decomposition may mix kinds: an unregistered workload
 *  stays a whole-workload unit at any granularity). */
enum class UnitKind : std::uint8_t
{
    kWorkload = 0,
    kCell = 1,
    kSegment = 2,
};

/** One schedulable unit of a sweep. */
struct WorkUnit
{
    UnitKind kind = UnitKind::kWorkload;
    std::string workload;
    /// Engine column for kCell/kSegment: -1 = the baseline column
    /// (no-prefetch lane, plus stride under timing), >= 0 indexes
    /// the plan's engine list.
    std::int32_t column = -1;
    std::uint64_t segBegin = 0; ///< kSegment: first record index
    std::uint64_t segEnd = 0;   ///< kSegment: one past the last
    /// kSegment: segEnd is the trace end — executing this unit
    /// computes and persists the cell's results.
    bool finalSegment = false;
    /// Index (into the decomposition) of the unit that must complete
    /// first, or -1. Segment chains: each interior segment depends
    /// on its predecessor until a trusted checkpoint at segBegin
    /// exists in the store.
    std::int64_t dependsOn = -1;
};

/**
 * Decompose a plan into work units at plan.unitGranularity.
 *
 * Segment granularity requires a usable store (the seeding pass
 * writes traces into it); without one this fails with *error set.
 * When the plan's checkpoint policy is off (checkpointEvery == 0
 * and segments <= 1) there is no boundary schedule, and segment
 * granularity decomposes each cell as its single final segment.
 *
 * @return the units, in deterministic schedule order; empty with
 *         *error set on failure (an empty plan yields empty units
 *         and no error).
 */
std::vector<WorkUnit>
decomposeSweepPlan(const SweepPlan &plan, TraceStore *store,
                   std::string *error = nullptr);

/**
 * The newest store-committed checkpoint index usable by `unit` —
 * trusted under the unit's lane specs, at or below the unit's end
 * (segment units) or the trace end (cell units); 0 when none or not
 * determinable. This is what a reconnecting worker reports in
 * ResumeMsg::lastCheckpointIndex.
 */
std::uint64_t unitLastCheckpointIndex(const SweepPlan &plan,
                                      const WorkUnit &unit,
                                      TraceStore &store);

} // namespace stems

#endif // STEMS_NET_UNITS_HH
