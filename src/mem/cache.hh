/**
 * @file
 * Set-associative cache model with LRU replacement, prefetch tagging
 * and eviction/invalidation callbacks.
 *
 * This is a functional (hit/miss) model: it tracks tags and metadata,
 * not data. Timing is layered on separately by src/sim/timing.
 */

#ifndef STEMS_MEM_CACHE_HH
#define STEMS_MEM_CACHE_HH

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace stems {

class StateWriter;
class StateReader;

/**
 * A single-level, set-associative, LRU-replaced cache of 64 B blocks.
 */
class Cache
{
  public:
    /** Information about a block displaced by an insertion. */
    struct Victim
    {
        Addr addr = 0;        ///< block-aligned address evicted
        bool prefetched = false; ///< block was filled by a prefetch
        bool referenced = false; ///< block was demand-referenced
    };

    /**
     * Construct a cache.
     *
     * @param name        label used in statistics output.
     * @param size_bytes  total capacity; must be a multiple of the
     *                    block size times the associativity.
     * @param ways        associativity.
     */
    Cache(std::string name, std::size_t size_bytes, std::size_t ways);

    /**
     * Demand lookup. Promotes the block to MRU and marks it referenced
     * on hit. Does not allocate.
     *
     * @return true on hit.
     */
    bool access(Addr a);

    /** Non-destructive presence check (no LRU update). */
    bool contains(Addr a) const;

    /**
     * Insert a block (fill). Evicts the set's LRU block when needed.
     *
     * @param a           address of the block to fill.
     * @param prefetched  mark the block as a prefetch fill.
     * @return the displaced victim, if any.
     */
    std::optional<Victim> insert(Addr a, bool prefetched = false);

    /**
     * Invalidate a block if present.
     *
     * @return metadata of the invalidated block, if it was present.
     */
    std::optional<Victim> invalidate(Addr a);

    /**
     * True when the block is present, was filled by a prefetch, and
     * has not yet been demand-referenced.
     */
    bool isPrefetchedUnreferenced(Addr a) const;

    /**
     * Number of resident blocks filled by prefetches and never
     * demand-referenced (end-of-run overprediction sweep).
     */
    std::size_t unreferencedPrefetches() const;

    /** Number of sets. */
    std::size_t numSets() const { return sets_; }

    /** Associativity. */
    std::size_t numWays() const { return ways_; }

    /** Name given at construction. */
    const std::string &name() const { return name_; }

    /** Demand accesses observed. */
    std::uint64_t accesses() const { return accesses_; }

    /** Demand misses observed. */
    std::uint64_t misses() const { return misses_; }

    /** Serialize the full cache state (checkpointing). */
    void saveState(StateWriter &w) const;

    /** Restore state saved from an identically-shaped cache; fails
     *  the reader on a geometry mismatch. */
    void loadState(StateReader &r);

  private:
    struct Line
    {
        bool valid = false;
        Addr tag = 0; ///< block number
        std::uint64_t lru = 0;
        bool prefetched = false;
        bool referenced = false;
    };

    std::size_t setIndex(Addr a) const
    {
        return static_cast<std::size_t>(blockNumber(a)) % sets_;
    }

    Line *findLine(Addr a);
    const Line *findLine(Addr a) const;

    std::string name_;
    std::size_t ways_;
    std::size_t sets_;
    std::uint64_t clock_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
    std::vector<Line> lines_;
};

} // namespace stems

#endif // STEMS_MEM_CACHE_HH
