/**
 * @file
 * Two-level cache hierarchy (split-L1 modelled as L1D only, unified
 * L2) matching the paper's Table 1 node configuration: 64 KB 2-way L1D
 * and 8 MB 8-way unified L2, 64 B blocks.
 *
 * The hierarchy exposes the fine-grained steps (L1 lookup, L2 lookup,
 * fills) separately so the prefetch simulator can interpose the
 * streamed value buffer between the L2 and memory.
 */

#ifndef STEMS_MEM_HIERARCHY_HH
#define STEMS_MEM_HIERARCHY_HH

#include <functional>

#include "mem/cache.hh"

namespace stems {

/** Where a demand access was satisfied. */
enum class HitLevel : std::uint8_t
{
    kL1 = 0,
    kL2 = 1,
    kSvb = 2,    ///< satisfied by the streamed value buffer
    kMemory = 3, ///< off-chip
};

/** Default hierarchy geometry (paper Table 1). */
struct HierarchyParams
{
    std::size_t l1Bytes = 64 * 1024;
    std::size_t l1Ways = 2;
    std::size_t l2Bytes = 8 * 1024 * 1024;
    std::size_t l2Ways = 8;
};

/**
 * L1D + unified L2, with the callbacks the prefetchers need:
 * L1 evictions/invalidations terminate SMS/STeMS spatial generations,
 * and L2 evictions of unreferenced prefetches count as overpredictions
 * for cache-sink prefetchers.
 */
class Hierarchy
{
  public:
    /** Callback invoked with the block address leaving the L1. */
    using EvictCallback = std::function<void(Addr)>;

    explicit Hierarchy(const HierarchyParams &params = {});

    /** Register the L1 eviction/invalidation observer (may be null). */
    void setL1EvictCallback(EvictCallback cb) { l1Evict_ = std::move(cb); }

    /** Register the observer for unused L2 prefetch evictions. */
    void
    setL2PrefetchDropCallback(EvictCallback cb)
    {
        l2PrefetchDrop_ = std::move(cb);
    }

    /** L1 demand lookup (promote/reference on hit). @return hit? */
    bool accessL1(Addr a);

    /** Result of an L2 demand lookup. */
    struct L2Result
    {
        bool hit = false;
        /** Hit on a block a prefetcher filled that was never demand
         *  referenced before — i.e. the prefetch covered this miss. */
        bool coveredByPrefetch = false;
    };

    /** L2 demand lookup (promote/reference on hit). */
    L2Result accessL2(Addr a);

    /** Fill the L1 only (used after an L2 hit). */
    void fillL1(Addr a);

    /** Demand fill from memory/SVB into both L2 and L1. */
    void fill(Addr a);

    /** Prefetch fill into the L2 (cache-sink prefetchers, e.g. SMS). */
    void fillPrefetchL2(Addr a);

    /** Coherence invalidation: drop the block from both levels. */
    void invalidate(Addr a);

    /** Underlying caches (for statistics). */
    const Cache &l1() const { return l1_; }
    const Cache &l2() const { return l2_; }

    /** Serialize both cache levels (checkpointing). Callbacks are
     *  wiring, not state: the owner re-registers them. */
    void saveState(StateWriter &w) const;

    /** Restore state saved from an identical geometry. */
    void loadState(StateReader &r);

  private:
    void handleL1Victim(const std::optional<Cache::Victim> &v);
    void handleL2Victim(const std::optional<Cache::Victim> &v);

    Cache l1_;
    Cache l2_;
    EvictCallback l1Evict_;
    EvictCallback l2PrefetchDrop_;
};

} // namespace stems

#endif // STEMS_MEM_HIERARCHY_HH
