#include "mem/svb.hh"

#include "common/log.hh"
#include "common/state_codec.hh"

namespace stems {

StreamedValueBuffer::StreamedValueBuffer(std::size_t capacity)
    : slots_(capacity)
{
    if (capacity == 0)
        fatal("SVB capacity must be > 0");
}

StreamedValueBuffer::Slot *
StreamedValueBuffer::findSlot(Addr a)
{
    Addr key = blockAlign(a);
    for (Slot &s : slots_)
        if (s.valid && s.entry.addr == key)
            return &s;
    return nullptr;
}

const StreamedValueBuffer::Slot *
StreamedValueBuffer::findSlot(Addr a) const
{
    Addr key = blockAlign(a);
    for (const Slot &s : slots_)
        if (s.valid && s.entry.addr == key)
            return &s;
    return nullptr;
}

std::optional<StreamedValueBuffer::Entry>
StreamedValueBuffer::insert(const Entry &e)
{
    Entry norm = e;
    norm.addr = blockAlign(e.addr);

    if (Slot *resident = findSlot(norm.addr)) {
        resident->entry = norm;
        resident->lru = ++clock_;
        return std::nullopt;
    }

    Slot *victim = nullptr;
    for (Slot &s : slots_) {
        if (!s.valid) {
            victim = &s;
            break;
        }
        if (!victim || s.lru < victim->lru)
            victim = &s;
    }

    std::optional<Entry> displaced;
    if (victim->valid)
        displaced = victim->entry;
    victim->valid = true;
    victim->entry = norm;
    victim->lru = ++clock_;
    return displaced;
}

std::optional<StreamedValueBuffer::Entry>
StreamedValueBuffer::consume(Addr a)
{
    Slot *s = findSlot(a);
    if (!s)
        return std::nullopt;
    s->valid = false;
    return s->entry;
}

bool
StreamedValueBuffer::contains(Addr a) const
{
    return findSlot(a) != nullptr;
}

std::optional<StreamedValueBuffer::Entry>
StreamedValueBuffer::invalidate(Addr a)
{
    return consume(a);
}

std::optional<StreamedValueBuffer::Entry>
StreamedValueBuffer::consumeAny()
{
    for (Slot &s : slots_) {
        if (s.valid) {
            s.valid = false;
            return s.entry;
        }
    }
    return std::nullopt;
}

std::size_t
StreamedValueBuffer::occupancy() const
{
    std::size_t n = 0;
    for (const Slot &s : slots_)
        if (s.valid)
            ++n;
    return n;
}

std::size_t
StreamedValueBuffer::occupancyForStream(int stream_id) const
{
    std::size_t n = 0;
    for (const Slot &s : slots_)
        if (s.valid && s.entry.streamId == stream_id)
            ++n;
    return n;
}

namespace {
constexpr std::uint32_t kSvbTag = stateTag('S', 'V', 'B', '1');
} // namespace

void
StreamedValueBuffer::saveState(StateWriter &w) const
{
    w.tag(kSvbTag);
    w.u64(slots_.size());
    w.u64(clock_);
    // Slot order decides consumeAny()'s drain order: positional.
    for (const Slot &s : slots_) {
        w.boolean(s.valid);
        if (!s.valid)
            continue;
        w.u64(s.lru);
        w.u64(s.entry.addr);
        w.i64(s.entry.streamId);
        w.u64(s.entry.readyTime);
    }
}

void
StreamedValueBuffer::loadState(StateReader &r)
{
    r.tag(kSvbTag);
    if (r.u64() != slots_.size()) {
        r.fail();
        return;
    }
    clock_ = r.u64();
    for (Slot &s : slots_) {
        s = Slot{};
        s.valid = r.boolean();
        if (!s.valid)
            continue;
        s.lru = r.u64();
        s.entry.addr = r.u64();
        s.entry.streamId = static_cast<int>(r.i64());
        s.entry.readyTime = r.u64();
        if (!r.ok())
            return;
    }
}

} // namespace stems
