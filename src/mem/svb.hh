/**
 * @file
 * Streamed Value Buffer (SVB).
 *
 * Prefetched blocks are placed in a small fully-associative buffer
 * rather than the caches (paper Section 4.2): a demand hit consumes the
 * entry (the block then moves into the caches and the owning stream
 * advances); an entry evicted or invalidated without being consumed is
 * an overprediction. The paper uses 64 entries for TMS/STeMS and a
 * 32-entry buffer for the baseline stride prefetcher.
 */

#ifndef STEMS_MEM_SVB_HH
#define STEMS_MEM_SVB_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace stems {

class StateWriter;
class StateReader;

/**
 * Fully-associative prefetch buffer with LRU replacement.
 */
class StreamedValueBuffer
{
  public:
    /** One buffered prefetched block. */
    struct Entry
    {
        Addr addr = 0;       ///< block-aligned address
        int streamId = -1;   ///< owning stream queue (engine-defined)
        Cycles readyTime = 0; ///< when the fetch completes (timing)
    };

    /** Construct with a fixed entry count. */
    explicit StreamedValueBuffer(std::size_t capacity);

    /**
     * Insert a prefetched block.
     *
     * A re-insert of a resident address refreshes its recency. When the
     * buffer is full, the LRU entry is evicted.
     *
     * @return the evicted (never-consumed) entry, if any.
     */
    std::optional<Entry> insert(const Entry &e);

    /**
     * Demand lookup; the entry is removed (consumed) on hit.
     *
     * @return the consumed entry, if present.
     */
    std::optional<Entry> consume(Addr a);

    /** Presence check without consuming. */
    bool contains(Addr a) const;

    /**
     * Coherence invalidation; the entry is dropped.
     *
     * @return the dropped entry, if present.
     */
    std::optional<Entry> invalidate(Addr a);

    /**
     * Remove and return an arbitrary resident entry (end-of-run
     * drain). @return std::nullopt when the buffer is empty.
     */
    std::optional<Entry> consumeAny();

    /** Current number of buffered blocks. */
    std::size_t occupancy() const;

    /** Number of buffered blocks belonging to one stream. */
    std::size_t occupancyForStream(int stream_id) const;

    /** Fixed capacity. */
    std::size_t capacity() const { return slots_.size(); }

    /** Serialize the full buffer state (checkpointing). */
    void saveState(StateWriter &w) const;

    /** Restore state saved from an equal-capacity buffer; fails the
     *  reader on a capacity mismatch. */
    void loadState(StateReader &r);

  private:
    struct Slot
    {
        bool valid = false;
        std::uint64_t lru = 0;
        Entry entry;
    };

    Slot *findSlot(Addr a);
    const Slot *findSlot(Addr a) const;

    std::uint64_t clock_ = 0;
    std::vector<Slot> slots_;
};

} // namespace stems

#endif // STEMS_MEM_SVB_HH
