#include "mem/hierarchy.hh"

namespace stems {

Hierarchy::Hierarchy(const HierarchyParams &params)
    : l1_("L1D", params.l1Bytes, params.l1Ways),
      l2_("L2", params.l2Bytes, params.l2Ways)
{
}

bool
Hierarchy::accessL1(Addr a)
{
    return l1_.access(a);
}

Hierarchy::L2Result
Hierarchy::accessL2(Addr a)
{
    L2Result r;
    r.coveredByPrefetch = l2_.isPrefetchedUnreferenced(a);
    r.hit = l2_.access(a);
    if (!r.hit)
        r.coveredByPrefetch = false;
    return r;
}

void
Hierarchy::handleL1Victim(const std::optional<Cache::Victim> &v)
{
    if (v && l1Evict_)
        l1Evict_(v->addr);
}

void
Hierarchy::handleL2Victim(const std::optional<Cache::Victim> &v)
{
    if (v && v->prefetched && !v->referenced && l2PrefetchDrop_)
        l2PrefetchDrop_(v->addr);
}

void
Hierarchy::fillL1(Addr a)
{
    handleL1Victim(l1_.insert(blockAlign(a)));
}

void
Hierarchy::fill(Addr a)
{
    handleL2Victim(l2_.insert(blockAlign(a)));
    handleL1Victim(l1_.insert(blockAlign(a)));
}

void
Hierarchy::fillPrefetchL2(Addr a)
{
    handleL2Victim(l2_.insert(blockAlign(a), /*prefetched=*/true));
}

void
Hierarchy::invalidate(Addr a)
{
    if (auto v = l1_.invalidate(blockAlign(a)); v && l1Evict_)
        l1Evict_(v->addr);
    if (auto v = l2_.invalidate(blockAlign(a));
        v && v->prefetched && !v->referenced && l2PrefetchDrop_) {
        l2PrefetchDrop_(v->addr);
    }
}

void
Hierarchy::saveState(StateWriter &w) const
{
    l1_.saveState(w);
    l2_.saveState(w);
}

void
Hierarchy::loadState(StateReader &r)
{
    l1_.loadState(r);
    l2_.loadState(r);
}

} // namespace stems
