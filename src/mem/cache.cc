#include "mem/cache.hh"

#include "common/log.hh"
#include "common/state_codec.hh"

namespace stems {

Cache::Cache(std::string name, std::size_t size_bytes, std::size_t ways)
    : name_(std::move(name)), ways_(ways)
{
    if (ways == 0 || size_bytes == 0)
        fatal("cache " + name_ + ": zero size or associativity");
    std::size_t blocks = size_bytes / kBlockBytes;
    if (blocks % ways != 0)
        fatal("cache " + name_ + ": size not divisible by ways");
    sets_ = blocks / ways;
    lines_.resize(blocks);
}

Cache::Line *
Cache::findLine(Addr a)
{
    Addr tag = blockNumber(a);
    std::size_t base = setIndex(a) * ways_;
    for (std::size_t w = 0; w < ways_; ++w) {
        Line &l = lines_[base + w];
        if (l.valid && l.tag == tag)
            return &l;
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr a) const
{
    Addr tag = blockNumber(a);
    std::size_t base = setIndex(a) * ways_;
    for (std::size_t w = 0; w < ways_; ++w) {
        const Line &l = lines_[base + w];
        if (l.valid && l.tag == tag)
            return &l;
    }
    return nullptr;
}

bool
Cache::access(Addr a)
{
    ++accesses_;
    Line *l = findLine(a);
    if (!l) {
        ++misses_;
        return false;
    }
    l->lru = ++clock_;
    l->referenced = true;
    return true;
}

bool
Cache::contains(Addr a) const
{
    return findLine(a) != nullptr;
}

std::optional<Cache::Victim>
Cache::insert(Addr a, bool prefetched)
{
    Line *l = findLine(a);
    if (l) {
        // Refill of a resident block: refresh recency only.
        l->lru = ++clock_;
        return std::nullopt;
    }

    std::size_t base = setIndex(a) * ways_;
    Line *victim = &lines_[base];
    for (std::size_t w = 0; w < ways_; ++w) {
        Line &cand = lines_[base + w];
        if (!cand.valid) {
            victim = &cand;
            break;
        }
        if (cand.lru < victim->lru)
            victim = &cand;
    }

    std::optional<Victim> displaced;
    if (victim->valid) {
        displaced = Victim{victim->tag << kBlockShift,
                           victim->prefetched, victim->referenced};
    }
    victim->valid = true;
    victim->tag = blockNumber(a);
    victim->lru = ++clock_;
    victim->prefetched = prefetched;
    victim->referenced = false;
    return displaced;
}

std::optional<Cache::Victim>
Cache::invalidate(Addr a)
{
    Line *l = findLine(a);
    if (!l)
        return std::nullopt;
    Victim v{l->tag << kBlockShift, l->prefetched, l->referenced};
    l->valid = false;
    return v;
}

bool
Cache::isPrefetchedUnreferenced(Addr a) const
{
    const Line *l = findLine(a);
    return l && l->prefetched && !l->referenced;
}

std::size_t
Cache::unreferencedPrefetches() const
{
    std::size_t n = 0;
    for (const Line &l : lines_)
        if (l.valid && l.prefetched && !l.referenced)
            ++n;
    return n;
}

namespace {
constexpr std::uint32_t kCacheTag = stateTag('C', 'A', 'C', 'H');
} // namespace

void
Cache::saveState(StateWriter &w) const
{
    w.tag(kCacheTag);
    w.u64(sets_);
    w.u64(ways_);
    w.u64(clock_);
    w.u64(accesses_);
    w.u64(misses_);
    // Line positions within a set decide future victim scans, so
    // every line is written positionally, invalid ones included.
    for (const Line &l : lines_) {
        w.boolean(l.valid);
        if (!l.valid)
            continue;
        w.u64(l.tag);
        w.u64(l.lru);
        w.boolean(l.prefetched);
        w.boolean(l.referenced);
    }
}

void
Cache::loadState(StateReader &r)
{
    r.tag(kCacheTag);
    if (r.u64() != sets_ || r.u64() != ways_) {
        r.fail();
        return;
    }
    clock_ = r.u64();
    accesses_ = r.u64();
    misses_ = r.u64();
    for (Line &l : lines_) {
        l = Line{};
        l.valid = r.boolean();
        if (!l.valid)
            continue;
        l.tag = r.u64();
        l.lru = r.u64();
        l.prefetched = r.boolean();
        l.referenced = r.boolean();
        if (!r.ok())
            return;
    }
}

} // namespace stems
