/**
 * @file
 * The store's key vocabulary, in one place.
 *
 * Every artifact the content-addressed TraceStore holds — and every
 * identity the distributed sweep protocol (net/) puts on the wire —
 * is named by a 64-bit FNV-1a digest (storeDigest) of a stable
 * descriptive string. This header collects the digest family so the
 * definitions cannot drift between the driver, the tools and the
 * wire protocol:
 *
 *  - engineSpecDigest      what engine ran (name + effective options
 *                          [+ probe id]); keys results/checkpoints.
 *  - baselineConfigDigest  what system + warmup produced a baseline.
 *  - resultConfigDigest    baselineConfigDigest inputs + timing mode
 *                          + result-format version; keys results.
 *  - checkpointConfigDigest system + timing + checkpoint blob
 *                          version; keys checkpoints. Warmup is
 *                          deliberately excluded — it joins the
 *                          per-checkpoint *state* digest instead.
 *  - checkpointStateDigest the state identity of one checkpoint:
 *                          trace-prefix content digest + the warmup
 *                          boundary's effect on that prefix
 *                          ("pending" while it lies at or beyond
 *                          the index).
 *  - sweepPlanDigest       a whole sweep's identity: digest of the
 *                          canonical SweepPlan JSON. Coordinator and
 *                          worker compare it before executing.
 *
 * The remaining family members live with their data: trace content
 * digests and trace-prefix digests (trace/trace_io.hh traceDigest /
 * tracePrefixDigests) hash record bytes rather than a description,
 * and TraceStore::storeDigest is the common string-digest primitive
 * all of the above are built on.
 */

#ifndef STEMS_STORE_KEYS_HH
#define STEMS_STORE_KEYS_HH

#include <cstdint>
#include <string>

#include "prefetch/engine_registry.hh"
#include "sim/config.hh"
#include "sim/sweep_plan.hh"

namespace stems {

/** Key of an engine instantiation: digest of describeEngineSpec
 *  (name, every option field, optional probe id, and the engine's
 *  registered state version). */
std::uint64_t engineSpecDigest(const std::string &name,
                               const EngineOptions &options,
                               const std::string &probe_id = {});

/** Key of the (system, warmup) context a stored baseline belongs
 *  to. Trace length and seed are part of the trace identity, not
 *  this digest. */
std::uint64_t baselineConfigDigest(const ExperimentConfig &config);

/** Key of the context a stored engine result belongs to: the
 *  baseline inputs plus the timing mode and the on-disk result
 *  format version. */
std::uint64_t resultConfigDigest(const ExperimentConfig &config);

/** Key of the context a stored checkpoint belongs to: system +
 *  timing + blob version, warmup excluded (see file comment). */
std::uint64_t checkpointConfigDigest(const ExperimentConfig &config);

/** State identity of a checkpoint at `index` over a trace whose
 *  prefix digest is `prefix_digest`: the warmup boundary joins as
 *  its exact value once the prefix has crossed it, else as
 *  "pending" (the prefix state cannot depend on it yet — which is
 *  what makes pre-warmup checkpoints shareable across warmup
 *  settings and record counts). */
std::uint64_t checkpointStateDigest(std::uint64_t prefix_digest,
                                    std::size_t index,
                                    std::size_t warmup);

/** Identity of a whole sweep: digest of the canonical plan JSON
 *  (which embeds the schema tag, so a schema bump re-keys). */
std::uint64_t sweepPlanDigest(const SweepPlan &plan);

} // namespace stems

#endif // STEMS_STORE_KEYS_HH
