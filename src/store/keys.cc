#include "store/keys.hh"

#include <iomanip>
#include <sstream>

#include "sim/checkpoint.hh"
#include "store/trace_store.hh"

namespace stems {

namespace {

/** The (system, warmup) description shared by the baseline and
 *  result digests. The warmupRecords line is appended only when set
 *  so stores written before the absolute-warmup knob existed keep
 *  their keys. */
std::string
describeBaselineConfig(const ExperimentConfig &config)
{
    std::ostringstream os;
    os << describeSystem(config.system) << "\nwarmup="
       << std::setprecision(17) << config.warmupFraction;
    if (config.warmupRecords > 0)
        os << "\nwarmupRecords=" << config.warmupRecords;
    return os.str();
}

} // namespace

std::uint64_t
engineSpecDigest(const std::string &name,
                 const EngineOptions &options,
                 const std::string &probe_id)
{
    return storeDigest(describeEngineSpec(name, options, probe_id));
}

std::uint64_t
baselineConfigDigest(const ExperimentConfig &config)
{
    return storeDigest(describeBaselineConfig(config));
}

std::uint64_t
resultConfigDigest(const ExperimentConfig &config)
{
    // Engine results additionally depend on the timing mode (a
    // functional run's stats carry no cycles) and their on-disk
    // format version; baselines handle both via in-entry flags.
    std::ostringstream os;
    os << describeBaselineConfig(config)
       << "\ntiming=" << config.enableTiming << "\nresultv=1";
    return storeDigest(os.str());
}

std::uint64_t
checkpointConfigDigest(const ExperimentConfig &config)
{
    std::ostringstream os;
    os << describeSystem(config.system)
       << "\ntiming=" << config.enableTiming
       << "\nckptv=" << kCheckpointVersion;
    return storeDigest(os.str());
}

std::uint64_t
checkpointStateDigest(std::uint64_t prefix_digest, std::size_t index,
                      std::size_t warmup)
{
    std::ostringstream os;
    os << std::hex << prefix_digest << "|warmup=";
    if (warmup < index)
        os << std::dec << warmup;
    else
        os << "pending";
    return storeDigest(os.str());
}

std::uint64_t
sweepPlanDigest(const SweepPlan &plan)
{
    return storeDigest(sweepPlanJson(plan));
}

} // namespace stems
